// End-to-end application tests: every app, both variants, must produce the
// sequentially verified result on single- and multi-node clusters, and the
// Initial variant must cause more protocol traffic than the Optimized one
// where the paper says the optimizations matter.
#include <gtest/gtest.h>

#include "apps/app.h"

namespace dex::apps {
namespace {

struct Case {
  const char* app;
  int nodes;
  Variant variant;
};

class AppCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(AppCorrectness, VerifiesAgainstReference) {
  const Case c = GetParam();
  App* app = find_app(c.app);
  ASSERT_NE(app, nullptr);
  RunConfig config;
  config.nodes = c.nodes;
  config.threads_per_node = 2;
  config.variant = c.variant;
  config.scale = 0.05;
  config.pacing = 0.0;  // correctness only: run unpaced
  const RunResult result = run_app(*app, config);
  EXPECT_TRUE(result.verified)
      << c.app << " nodes=" << c.nodes << " variant=" << to_string(c.variant)
      << " checksum=" << result.checksum;
  EXPECT_GT(result.elapsed_ns, 0u);
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const char* app : {"GRP", "KMN", "BT", "EP", "FT", "BLK", "BFS",
                          "BP"}) {
    for (const int nodes : {1, 3}) {
      for (const Variant v : {Variant::kInitial, Variant::kOptimized}) {
        cases.push_back(Case{app, nodes, v});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppCorrectness,
                         ::testing::ValuesIn(make_cases()),
                         [](const auto& info) {
                           const Case& c = info.param;
                           return std::string(c.app) + "_n" +
                                  std::to_string(c.nodes) + "_" +
                                  to_string(c.variant);
                         });

TEST(AppRegistry, HasAllEightApps) {
  EXPECT_EQ(all_apps().size(), 8u);
  for (const char* name :
       {"GRP", "KMN", "BT", "EP", "FT", "BLK", "BFS", "BP"}) {
    EXPECT_NE(find_app(name), nullptr) << name;
  }
  EXPECT_EQ(find_app("nope"), nullptr);
}

TEST(AppBehaviour, InitialCausesMoreInvalidationsThanOptimized) {
  // GRP is the clearest case: per-match shared-counter updates vs staged.
  App* app = find_app("GRP");
  ASSERT_NE(app, nullptr);
  RunConfig config;
  config.nodes = 2;
  config.threads_per_node = 4;
  config.scale = 0.4;

  // Contention is a statistical effect of real thread overlap; under a
  // heavily loaded host a single run can come out flat, so allow one
  // retry before declaring the shape wrong.
  for (int attempt = 0; attempt < 2; ++attempt) {
    config.variant = Variant::kInitial;
    const RunResult initial = run_app(*app, config);
    config.variant = Variant::kOptimized;
    const RunResult optimized = run_app(*app, config);

    ASSERT_TRUE(initial.verified);
    ASSERT_TRUE(optimized.verified);
    // Per-match shared-counter updates force ownership ping-pong that the
    // staged variant avoids.
    const bool shape_holds =
        initial.invalidations > 3 * optimized.invalidations + 5 &&
        initial.elapsed_ns > optimized.elapsed_ns;
    if (shape_holds) return;
    if (attempt == 1) {
      EXPECT_GT(initial.invalidations, 3 * optimized.invalidations + 5);
      EXPECT_GT(initial.elapsed_ns, optimized.elapsed_ns);
    }
  }
}

}  // namespace
}  // namespace dex::apps
