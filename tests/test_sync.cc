// Distributed synchronization primitives (§III-A futex delegation).
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/api.h"

namespace dex {
namespace {

class SyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_nodes = 3;
    cluster_ = std::make_unique<Cluster>(config);
    process_ = cluster_->create_process(ProcessOptions{});
  }
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Process> process_;
};

TEST_F(SyncTest, MutexMutualExclusionSameNode) {
  DexMutex mutex(*process_);
  GArray<std::uint64_t> value(*process_, 8, "value");
  constexpr int kThreads = 4, kIters = 300;
  std::vector<DexThread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.push_back(process_->spawn([&] {
      for (int i = 0; i < kIters; ++i) {
        DexLockGuard guard(mutex);
        value.set(0, value.get(0) + 1);  // non-atomic: relies on the lock
      }
    }));
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(value.get(0), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST_F(SyncTest, MutexMutualExclusionCrossNode) {
  DexMutex mutex(*process_);
  GArray<std::uint64_t> value(*process_, 8, "value");
  constexpr int kThreads = 6, kIters = 100;
  std::vector<DexThread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.push_back(process_->spawn([&, t] {
      migrate(t % 3);
      for (int i = 0; i < kIters; ++i) {
        DexLockGuard guard(mutex);
        value.set(0, value.get(0) + 1);
      }
      migrate_back();
    }));
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(value.get(0), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST_F(SyncTest, TryLockFailsWhileHeld) {
  DexMutex mutex(*process_);
  mutex.lock();
  std::atomic<int> result{-1};
  DexThread t = process_->spawn([&] {
    result = mutex.try_lock() ? 1 : 0;
  });
  t.join();
  EXPECT_EQ(result.load(), 0);
  mutex.unlock();
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST_F(SyncTest, BarrierRendezvousRepeated) {
  constexpr int kThreads = 6, kRounds = 50;
  DexBarrier barrier(*process_, kThreads);
  GArray<std::uint64_t> counts(*process_, kRounds, "counts");
  std::vector<DexThread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.push_back(process_->spawn([&, t] {
      migrate(t % 3);
      for (int r = 0; r < kRounds; ++r) {
        process_->atomic_fetch_add(counts.addr(static_cast<std::size_t>(r)),
                                   1);
        barrier.wait();
        // After the barrier, every participant must see the full count.
        ASSERT_EQ(process_->atomic_load(
                      counts.addr(static_cast<std::size_t>(r))),
                  static_cast<std::uint64_t>(kThreads));
      }
      migrate_back();
    }));
  }
  for (auto& t : threads) t.join();
}

TEST_F(SyncTest, BarrierExactlyOneSerialThreadPerRound) {
  constexpr int kThreads = 4, kRounds = 30;
  DexBarrier barrier(*process_, kThreads);
  std::atomic<int> serial_count{0};
  std::vector<DexThread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.push_back(process_->spawn([&] {
      for (int r = 0; r < kRounds; ++r) {
        if (barrier.wait()) serial_count.fetch_add(1);
      }
    }));
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(serial_count.load(), kRounds);
}

TEST_F(SyncTest, BarrierJoinsVirtualClocks) {
  DexBarrier barrier(*process_, 2);
  std::atomic<std::uint64_t> fast_after{0};
  DexThread slow = process_->spawn([&] {
    compute(1000000);  // 1 ms of virtual work
    barrier.wait();
  });
  DexThread fast = process_->spawn([&] {
    barrier.wait();
    fast_after = now();
  });
  slow.join();
  fast.join();
  EXPECT_GE(fast_after.load(), 1000000u);
}

TEST_F(SyncTest, CondVarNotifyOneAndAll) {
  DexMutex mutex(*process_);
  DexCondVar cv(*process_);
  GArray<std::uint64_t> state(*process_, 8, "state");
  constexpr int kWaiters = 3;

  std::vector<DexThread> waiters;
  for (int t = 0; t < kWaiters; ++t) {
    waiters.push_back(process_->spawn([&] {
      mutex.lock();
      while (state.get(0) == 0) cv.wait(mutex);
      mutex.unlock();
    }));
  }
  DexThread signaller = process_->spawn([&] {
    mutex.lock();
    state.set(0, 1);
    mutex.unlock();
    cv.notify_all();
  });
  signaller.join();
  for (auto& t : waiters) t.join();
  SUCCEED();
}

TEST_F(SyncTest, FutexWaitValueChangedReturnsImmediately) {
  GCounter word(*process_, "futexword");
  word.store(7);
  // Expected value mismatch: must not block.
  process_->futex_wait(word.addr(), 3);
  SUCCEED();
}

TEST_F(SyncTest, FutexWakeWithNoWaitersReturnsZero) {
  GCounter word(*process_, "futexword");
  EXPECT_EQ(process_->futex_wake(word.addr(), 10), 0);
}

TEST_F(SyncTest, RemoteFutexDelegationCounted) {
  GCounter word(*process_, "futexword");
  word.store(1);
  const auto before = process_->delegation_count();
  DexThread t = process_->spawn([&] {
    migrate(1);
    process_->futex_wait(word.addr(), 99);  // mismatch: returns, but remote
    migrate_back();
  });
  t.join();
  EXPECT_GT(process_->delegation_count(), before);
}

}  // namespace
}  // namespace dex
