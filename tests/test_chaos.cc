// Chaos-fabric tests: deterministic fault injection, RPC timeout/retry/
// backoff with duplicate suppression, typed RpcError/NodeDeadError, and
// graceful node-failure degradation (page reclaim, thread loss reporting,
// heal/rejoin). The soak test at the end runs a full workload under random
// drops plus a mid-run node failure and must terminate with exact results
// for every surviving thread.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/api.h"
#include "core/engine.h"
#include "net/rpc_error.h"

namespace dex {
namespace {

using net::FaultDecision;
using net::FaultInjector;
using net::FaultPolicy;
using net::FaultRule;
using net::Message;
using net::MsgStatus;
using net::MsgType;
using net::NodeDeadError;
using net::RetryPolicy;
using net::RpcError;

// "No hangs" is part of the contract under test: a wedged chaos test must
// abort loudly instead of eating the CI timeout.
class Watchdog {
 public:
  explicit Watchdog(int seconds)
      : thread_([this, seconds] {
          std::unique_lock<std::mutex> lock(mu_);
          if (!cv_.wait_for(lock, std::chrono::seconds(seconds),
                            [this] { return done_; })) {
            std::fprintf(stderr,
                         "chaos watchdog: test exceeded %d s, aborting\n",
                         seconds);
            std::abort();
          }
        }) {}
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// FaultInjector: determinism, rule matching, budgets, liveness bits
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, UnarmedInjectorDeliversEverything) {
  FaultInjector injector(4);
  EXPECT_FALSE(injector.armed());
  for (int i = 0; i < 100; ++i) {
    const FaultDecision d = injector.decide(MsgType::kVmaUpdate, 0, 1);
    EXPECT_FALSE(d.drop);
    EXPECT_FALSE(d.duplicate);
    EXPECT_EQ(d.delay_ns, 0u);
  }
  EXPECT_EQ(injector.drops(), 0u);
}

FaultPolicy mixed_policy(std::uint64_t seed) {
  FaultPolicy policy;
  policy.seed = seed;
  FaultRule rule;
  rule.drop_prob = 0.2;
  rule.dup_prob = 0.1;
  rule.delay_prob = 0.2;
  rule.delay_ns = 123;
  policy.rules.push_back(rule);
  return policy;
}

std::vector<FaultDecision> run_schedule(FaultInjector& injector) {
  std::vector<FaultDecision> out;
  const MsgType types[] = {MsgType::kPageRequestRead, MsgType::kVmaUpdate,
                           MsgType::kMigrateThread};
  for (int i = 0; i < 512; ++i) {
    const NodeId src = i % 4;
    const NodeId dst = (i + 1 + i / 4) % 4;
    out.push_back(injector.decide(types[i % 3], src, dst));
  }
  return out;
}

bool same_schedule(const std::vector<FaultDecision>& a,
                   const std::vector<FaultDecision>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].drop != b[i].drop || a[i].duplicate != b[i].duplicate ||
        a[i].delay_ns != b[i].delay_ns) {
      return false;
    }
  }
  return true;
}

TEST(FaultInjectorTest, SameSeedReplaysIdenticalSchedule) {
  FaultInjector a(4), b(4);
  a.configure(mixed_policy(42));
  b.configure(mixed_policy(42));
  const auto schedule_a = run_schedule(a);
  const auto schedule_b = run_schedule(b);
  EXPECT_TRUE(same_schedule(schedule_a, schedule_b));
  EXPECT_EQ(a.drops(), b.drops());
  EXPECT_EQ(a.duplicates(), b.duplicates());
  EXPECT_EQ(a.delays(), b.delays());
  EXPECT_GT(a.drops() + a.duplicates() + a.delays(), 0u);

  // Reconfiguring resets the per-stream counters: the schedule replays.
  a.configure(mixed_policy(42));
  a.reset_stats();
  EXPECT_TRUE(same_schedule(run_schedule(a), schedule_b));
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultInjector a(4), b(4);
  a.configure(mixed_policy(42));
  b.configure(mixed_policy(43));
  EXPECT_FALSE(same_schedule(run_schedule(a), run_schedule(b)));
}

TEST(FaultInjectorTest, FirstMatchingRuleWins) {
  FaultInjector injector(4);
  FaultPolicy policy;
  policy.seed = 1;
  FaultRule drop_vma;
  drop_vma.type = MsgType::kVmaUpdate;
  drop_vma.drop_prob = 1.0;
  policy.rules.push_back(drop_vma);
  FaultRule delay_all;
  delay_all.delay_prob = 1.0;
  delay_all.delay_ns = 5;
  policy.rules.push_back(delay_all);
  injector.configure(policy);

  const FaultDecision vma = injector.decide(MsgType::kVmaUpdate, 0, 1);
  EXPECT_TRUE(vma.drop);
  EXPECT_EQ(vma.delay_ns, 0u);  // narrower rule shadowed the wildcard
  const FaultDecision other = injector.decide(MsgType::kPageGrant, 0, 1);
  EXPECT_FALSE(other.drop);
  EXPECT_EQ(other.delay_ns, 5u);
}

TEST(FaultInjectorTest, SrcDstWildcardsRestrictMatching) {
  FaultInjector injector(4);
  FaultPolicy policy;
  policy.seed = 9;
  FaultRule rule;
  rule.src = 2;
  rule.dst = 0;
  rule.drop_prob = 1.0;
  policy.rules.push_back(rule);
  injector.configure(policy);
  EXPECT_TRUE(injector.decide(MsgType::kVmaUpdate, 2, 0).drop);
  EXPECT_FALSE(injector.decide(MsgType::kVmaUpdate, 0, 2).drop);
  EXPECT_FALSE(injector.decide(MsgType::kVmaUpdate, 2, 1).drop);
}

TEST(FaultInjectorTest, MaxFaultsBudgetDisarmsRule) {
  FaultInjector injector(2);
  FaultPolicy policy;
  policy.seed = 7;
  FaultRule rule;
  rule.drop_prob = 1.0;
  rule.max_faults = 3;
  policy.rules.push_back(rule);
  injector.configure(policy);
  int dropped = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.decide(MsgType::kVmaUpdate, 0, 1).drop) ++dropped;
  }
  EXPECT_EQ(dropped, 3);
  EXPECT_EQ(injector.drops(), 3u);
}

TEST(FaultInjectorTest, NodeLivenessBits) {
  FaultInjector injector(4);
  EXPECT_FALSE(injector.node_dead(2));
  injector.fail_node(2);
  EXPECT_TRUE(injector.node_dead(2));
  EXPECT_FALSE(injector.node_dead(1));
  injector.fail_node(1);
  injector.heal_node(2);
  EXPECT_FALSE(injector.node_dead(2));
  EXPECT_TRUE(injector.node_dead(1));
}

TEST(RetryPolicyTest, BackoffDoublesAndCaps) {
  RetryPolicy retry;  // base 10us, cap 400us
  EXPECT_EQ(retry.backoff_for(1), 10'000u);
  EXPECT_EQ(retry.backoff_for(2), 20'000u);
  EXPECT_EQ(retry.backoff_for(3), 40'000u);
  EXPECT_EQ(retry.backoff_for(10), 400'000u);
}

TEST(RetryPolicyTest, JitterDesynchronizesCollidingRetriers) {
  // Two retriers hitting the same overloaded home would, with pure
  // exponential backoff, collide on every retry forever. Per-(src,dst,type)
  // seeded jitter spreads them without giving up determinism.
  RetryPolicy retry;
  retry.jitter = 0.3;
  retry.seed = 42;
  const std::uint64_t salt_a =
      RetryPolicy::salt_of(0, 1, MsgType::kPageRequestRead);
  const std::uint64_t salt_b =
      RetryPolicy::salt_of(2, 1, MsgType::kPageRequestRead);
  bool diverged = false;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const VirtNs a = retry.backoff_for(attempt, salt_a);
    const VirtNs b = retry.backoff_for(attempt, salt_b);
    // Jitter only adds: the exponential base stays the latency floor.
    EXPECT_GE(a, retry.backoff_for(attempt));
    EXPECT_GE(b, retry.backoff_for(attempt));
    // Deterministic: same (seed, salt, attempt) -> same delay.
    EXPECT_EQ(a, retry.backoff_for(attempt, salt_a));
    EXPECT_EQ(b, retry.backoff_for(attempt, salt_b));
    if (a != b) diverged = true;
  }
  EXPECT_TRUE(diverged);

  // The ablation knob: jitter=0 is the seed schedule exactly, salt or not.
  RetryPolicy plain;
  EXPECT_EQ(plain.backoff_for(2, salt_a), 20'000u);
  EXPECT_EQ(plain.backoff_for(2, salt_b), 20'000u);
}

// ---------------------------------------------------------------------------
// Fabric: timeout/retry/backoff, dedup, typed errors
// ---------------------------------------------------------------------------

class ChaosFabricTest : public ::testing::Test {
 protected:
  ChaosFabricTest() : fabric_(make_options()) {
    // kVmaUpdate is idempotent, kDelegateFutex is not; both handlers echo
    // payload + 1 and count their executions.
    for (MsgType type : {MsgType::kVmaUpdate, MsgType::kDelegateFutex}) {
      fabric_.register_handler(type, [this, type](const Message& msg) {
        handler_runs_.fetch_add(1, std::memory_order_relaxed);
        Message reply;
        reply.type = type;
        reply.set_payload(msg.payload_as<std::uint64_t>() + 1);
        return reply;
      });
    }
  }

  static net::FabricOptions make_options() {
    net::FabricOptions options;
    options.num_nodes = 3;
    return options;
  }

  static Message make_request(MsgType type, NodeId dst, std::uint64_t value) {
    Message msg;
    msg.type = type;
    msg.dst = dst;
    msg.set_payload(value);
    return msg;
  }

  /// Installs one rule dropping traversals on the src->dst leg only.
  void drop_leg(NodeId src, NodeId dst, std::uint64_t budget) {
    FaultPolicy policy;
    policy.seed = 3;
    FaultRule rule;
    rule.src = src;
    rule.dst = dst;
    rule.drop_prob = 1.0;
    rule.max_faults = budget;
    policy.rules.push_back(rule);
    fabric_.injector().configure(policy);
  }

  net::Fabric fabric_;
  std::atomic<int> handler_runs_{0};
};

TEST_F(ChaosFabricTest, DroppedRequestRetriesTransparently) {
  drop_leg(0, 1, 2);  // first two request legs lost
  const Message reply =
      fabric_.call(0, make_request(MsgType::kVmaUpdate, 1, 41));
  EXPECT_EQ(reply.payload_as<std::uint64_t>(), 42u);
  EXPECT_EQ(handler_runs_.load(), 1);  // dropped requests never ran
  EXPECT_EQ(fabric_.rpc_timeouts(), 2u);
  EXPECT_EQ(fabric_.rpc_retries(), 2u);
}

TEST_F(ChaosFabricTest, ExhaustedRetriesThrowRpcError) {
  drop_leg(0, 1, std::numeric_limits<std::uint64_t>::max());
  VirtualClock clock;
  ScopedClockBinding bind(&clock);
  try {
    fabric_.call(0, make_request(MsgType::kVmaUpdate, 1, 1));
    FAIL() << "expected RpcError";
  } catch (const RpcError& error) {
    EXPECT_EQ(error.type(), MsgType::kVmaUpdate);
    EXPECT_EQ(error.src(), 0);
    EXPECT_EQ(error.dst(), 1);
    EXPECT_EQ(error.attempts(), fabric_.retry_policy().max_attempts);
  }
  // Every attempt charged one timeout plus its backoff to the caller.
  const RetryPolicy& retry = fabric_.retry_policy();
  VirtNs expected = 0;
  for (int a = 1; a <= retry.max_attempts; ++a) {
    expected += retry.timeout_ns + retry.backoff_for(a);
  }
  EXPECT_GE(clock.now(), expected);
  EXPECT_EQ(handler_runs_.load(), 0);
}

TEST_F(ChaosFabricTest, DroppedReplyReExecutesIdempotent) {
  drop_leg(1, 0, 1);  // first reply leg lost
  const Message reply =
      fabric_.call(0, make_request(MsgType::kVmaUpdate, 1, 10));
  EXPECT_EQ(reply.payload_as<std::uint64_t>(), 11u);
  EXPECT_EQ(handler_runs_.load(), 2);  // re-executed, converged
  EXPECT_EQ(fabric_.dedup_suppressed(), 0u);
}

TEST_F(ChaosFabricTest, DroppedReplySuppressedForNonIdempotent) {
  drop_leg(1, 0, 1);
  const Message reply =
      fabric_.call(0, make_request(MsgType::kDelegateFutex, 1, 10));
  EXPECT_EQ(reply.payload_as<std::uint64_t>(), 11u);
  // The retransmitted request hit the dedup cache: exactly-once execution,
  // cached reply returned.
  EXPECT_EQ(handler_runs_.load(), 1);
  EXPECT_EQ(fabric_.dedup_suppressed(), 1u);
}

TEST_F(ChaosFabricTest, DuplicatedRequestSuppressedForNonIdempotent) {
  FaultPolicy policy;
  policy.seed = 5;
  FaultRule rule;
  rule.src = 0;
  rule.dst = 1;
  rule.dup_prob = 1.0;
  rule.max_faults = 1;
  policy.rules.push_back(rule);
  fabric_.injector().configure(policy);

  const Message reply =
      fabric_.call(0, make_request(MsgType::kDelegateFutex, 1, 20));
  EXPECT_EQ(reply.payload_as<std::uint64_t>(), 21u);
  EXPECT_EQ(handler_runs_.load(), 1);  // second delivery suppressed
  EXPECT_EQ(fabric_.injector().duplicates(), 1u);
  EXPECT_EQ(fabric_.dedup_suppressed(), 1u);

  handler_runs_.store(0);
  const Message again =
      fabric_.call(0, make_request(MsgType::kDelegateFutex, 1, 30));
  EXPECT_EQ(again.payload_as<std::uint64_t>(), 31u);
  EXPECT_EQ(handler_runs_.load(), 1);  // budget spent: clean delivery
}

TEST_F(ChaosFabricTest, DuplicatedRequestReExecutesIdempotent) {
  FaultPolicy policy;
  policy.seed = 5;
  FaultRule rule;
  rule.src = 0;
  rule.dst = 1;
  rule.dup_prob = 1.0;
  rule.max_faults = 1;
  policy.rules.push_back(rule);
  fabric_.injector().configure(policy);

  const Message reply =
      fabric_.call(0, make_request(MsgType::kVmaUpdate, 1, 20));
  EXPECT_EQ(reply.payload_as<std::uint64_t>(), 21u);
  EXPECT_EQ(handler_runs_.load(), 2);  // idempotent: both deliveries ran
}

TEST_F(ChaosFabricTest, CallToDeadNodeThrowsThenHealRestores) {
  fabric_.injector().fail_node(1);
  try {
    fabric_.call(0, make_request(MsgType::kVmaUpdate, 1, 1));
    FAIL() << "expected NodeDeadError";
  } catch (const NodeDeadError& error) {
    EXPECT_EQ(error.dead_node(), 1);
  }
  EXPECT_EQ(handler_runs_.load(), 0);

  fabric_.injector().heal_node(1);
  const Message reply =
      fabric_.call(0, make_request(MsgType::kVmaUpdate, 1, 1));
  EXPECT_EQ(reply.payload_as<std::uint64_t>(), 2u);
}

TEST_F(ChaosFabricTest, CallFromDeadNodeThrows) {
  fabric_.injector().fail_node(0);
  EXPECT_THROW(fabric_.call(0, make_request(MsgType::kVmaUpdate, 1, 1)),
               NodeDeadError);
}

TEST_F(ChaosFabricTest, PostToDeadNodeIsDiscarded) {
  fabric_.injector().fail_node(1);
  fabric_.post(0, make_request(MsgType::kVmaUpdate, 1, 1));  // no throw
  EXPECT_EQ(handler_runs_.load(), 0);
  EXPECT_EQ(fabric_.posts_to_dead(), 1u);
}

TEST_F(ChaosFabricTest, DroppedPostRetransmits) {
  drop_leg(0, 1, 2);
  fabric_.post(0, make_request(MsgType::kVmaUpdate, 1, 1));
  EXPECT_EQ(handler_runs_.load(), 1);  // delivered on the third attempt
  EXPECT_EQ(fabric_.rpc_retries(), 2u);
}

TEST_F(ChaosFabricTest, ErrorStatusReplyThrowsRpcError) {
  fabric_.register_handler(MsgType::kAck, [](const Message&) {
    return Message::error_reply(MsgStatus::kUnknownProcess);
  });
  try {
    fabric_.call(0, make_request(MsgType::kAck, 1, 0));
    FAIL() << "expected RpcError";
  } catch (const RpcError& error) {
    EXPECT_EQ(error.status(), MsgStatus::kUnknownProcess);
  }
}

// ---------------------------------------------------------------------------
// Cluster-level degradation: reclaim, thread loss, heal, dispatcher errors
// ---------------------------------------------------------------------------

class ChaosClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_nodes = 4;
    // Generous budget so the 2% soak drop rate cannot plausibly exhaust a
    // call's retries (p ~ 0.02^6); failures below come from fail_node only.
    config.retry.max_attempts = 6;
    cluster_ = std::make_unique<Cluster>(config);
    process_ = cluster_->create_process(ProcessOptions{});
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Process> process_;
};

TEST_F(ChaosClusterTest, MalformedPayloadYieldsTypedError) {
  Message msg;
  msg.type = MsgType::kVmaInfoRequest;
  msg.dst = 0;  // dispatcher requires a leading 64-bit process id
  try {
    cluster_->fabric().call(1, msg);
    FAIL() << "expected RpcError";
  } catch (const RpcError& error) {
    EXPECT_EQ(error.status(), MsgStatus::kBadPayload);
  }
}

TEST_F(ChaosClusterTest, UnknownProcessYieldsTypedError) {
  Message msg;
  msg.type = MsgType::kVmaInfoRequest;
  msg.dst = 0;
  msg.set_payload(std::uint64_t{999999});
  try {
    cluster_->fabric().call(1, msg);
    FAIL() << "expected RpcError";
  } catch (const RpcError& error) {
    EXPECT_EQ(error.status(), MsgStatus::kUnknownProcess);
  }
}

TEST_F(ChaosClusterTest, FailNodeReclaimsDirtyPagesToOriginFrame) {
  Watchdog dog(60);
  GArray<std::uint64_t> arr(*process_, 1024, "reclaim");  // two pages
  DexThread writer = process_->spawn([&] {
    migrate(2);
    for (std::size_t i = 0; i < arr.size(); ++i) arr.set(i, i + 1);
    migrate_back();
  });
  writer.join();
  EXPECT_FALSE(writer.failed());

  // Node 2 still owns both dirty pages; its copies die with it. The origin
  // frames (never written back) become authoritative again: zeros.
  cluster_->fail_node(2);
  auto& failure = process_->dsm().failure_stats();
  EXPECT_EQ(failure.node_failures.load(), 1u);
  EXPECT_GE(failure.pages_reclaimed.load(), 2u);
  EXPECT_GE(failure.dirty_pages_lost.load(), 2u);
  for (std::size_t i = 0; i < arr.size(); i += 129) {
    EXPECT_EQ(arr.get(i), 0u);
  }
  EXPECT_TRUE(process_->dsm().check_invariants());

  // A healed node rejoins empty and refaults everything.
  cluster_->heal_node(2);
  std::atomic<bool> ok{true};
  DexThread rewriter = process_->spawn([&] {
    migrate(2);
    for (std::size_t i = 0; i < arr.size(); ++i) arr.set(i, i + 9);
    if (arr.get(7) != 16) ok = false;
    migrate_back();
  });
  rewriter.join();
  EXPECT_FALSE(rewriter.failed());
  EXPECT_TRUE(ok);
  EXPECT_EQ(arr.get(7), 16u);
  EXPECT_TRUE(process_->dsm().check_invariants());
}

TEST_F(ChaosClusterTest, ThreadOnDeadNodeObservesTypedFailure) {
  Watchdog dog(60);
  GArray<std::uint64_t> arr(*process_, 512, "doomed");
  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  DexThread victim = process_->spawn([&] {
    migrate(2);
    arr.set(0, 7);
    parked.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // The node died while we were parked; the next fabric interaction
    // (refault after our PTE was wiped) surfaces NodeDeadError, which
    // unwinds the body and marks the thread failed.
    arr.set(1, 8);
  });
  while (!parked.load(std::memory_order_acquire)) std::this_thread::yield();

  cluster_->fail_node(2);
  release.store(true, std::memory_order_release);
  victim.join();
  EXPECT_TRUE(victim.failed());
  EXPECT_EQ(process_->dsm().failure_stats().threads_lost.load(), 1u);
  EXPECT_EQ(arr.get(0), 0u);  // dirty write died with the node
  EXPECT_TRUE(process_->dsm().check_invariants());
}

TEST_F(ChaosClusterTest, MigrateToDeadNodeFailsThenHealRecovers) {
  Watchdog dog(60);
  cluster_->fail_node(2);
  DexThread doomed = process_->spawn([&] { migrate(2); });
  doomed.join();
  EXPECT_TRUE(doomed.failed());

  cluster_->heal_node(2);
  GArray<std::uint64_t> arr(*process_, 64, "healed");
  DexThread worker = process_->spawn([&] {
    migrate(2);
    arr.set(3, 33);
    migrate_back();
  });
  worker.join();
  EXPECT_FALSE(worker.failed());
  EXPECT_EQ(arr.get(3), 33u);
  EXPECT_TRUE(process_->dsm().check_invariants());
}

/// Checkpoint-style churn on `arr`'s first page: the origin repeatedly
/// snapshots it read-only and restores write access while `faulter`
/// rewrites it — the consecutive-fault pattern that migrates the page's
/// home to `faulter` (see mem/dsm.cc, maybe_migrate_home).
void churn_first_page(Process& process, GArray<std::uint64_t>& arr,
                      int rounds, NodeId faulter) {
  DexThread worker = process.spawn([&, rounds, faulter] {
    migrate(faulter);
    for (int r = 1; r <= rounds; ++r) {
      process.mprotect(arr.addr(0), kPageSize, mem::kProtRead);
      process.mprotect(arr.addr(0), kPageSize, mem::kProtReadWrite);
      arr.set(0, static_cast<std::uint64_t>(r));
    }
    migrate_back();
  });
  worker.join();
  EXPECT_FALSE(worker.failed());
}

TEST_F(ChaosClusterTest, DroppedHomeMigrateLeavesEntryAtTheOldHome) {
  Watchdog dog(60);
  GArray<std::uint64_t> arr(*process_, 512, "handoff-chaos");
  arr.set(0, 0);

  // Every kHomeMigrate hand-off dies on the wire past the retry budget.
  // The migration must abort cleanly each time it re-arms: the entry
  // stays at the origin and the protocol keeps running there.
  FaultPolicy policy;
  policy.seed = 17;
  FaultRule rule;
  rule.type = MsgType::kHomeMigrate;
  rule.drop_prob = 1.0;
  policy.rules.push_back(rule);
  cluster_->fabric().injector().configure(policy);

  churn_first_page(*process_, arr, /*rounds=*/5, /*faulter=*/1);

  auto& stats = process_->dsm().stats();
  EXPECT_EQ(stats.home_migrations.load(), 0u);
  EXPECT_EQ(process_->dsm().home_of_page(arr.addr(0)), 0);
  EXPECT_GT(cluster_->fabric().injector().drops(), 0u);
  EXPECT_EQ(arr.get(0), 5u);
  EXPECT_TRUE(process_->dsm().check_invariants());
}

TEST_F(ChaosClusterTest, DeadHomeIsReclaimedByTheOrigin) {
  Watchdog dog(60);
  GArray<std::uint64_t> arr(*process_, 512, "dead-home");
  arr.set(0, 0);
  churn_first_page(*process_, arr, /*rounds=*/4, /*faulter=*/2);
  ASSERT_EQ(process_->dsm().home_of_page(arr.addr(0)), 2);

  // Node 2 dies homing the entry and owning the page dirty. The entry's
  // authority falls back to the origin (epoch-fencing every hint minted
  // for node 2) and the dirty copy is reported lost; the origin frame —
  // last refreshed by round 3's snapshot, value 2 — is authoritative.
  cluster_->fail_node(2);
  auto& failure = process_->dsm().failure_stats();
  auto& stats = process_->dsm().stats();
  EXPECT_GE(failure.homes_reclaimed.load(), 1u);
  EXPECT_GE(stats.homes_reclaimed.load(), 1u);
  EXPECT_GE(failure.dirty_pages_lost.load(), 1u);
  EXPECT_EQ(process_->dsm().home_of_page(arr.addr(0)), 0);
  EXPECT_EQ(arr.get(0), 2u);
  EXPECT_TRUE(process_->dsm().check_invariants());

  // The reclaimed entry serializes new transactions at the origin again.
  DexThread writer = process_->spawn([&] {
    migrate(1);
    arr.set(0, 99);
    migrate_back();
  });
  writer.join();
  EXPECT_FALSE(writer.failed());
  EXPECT_EQ(arr.get(0), 99u);
  EXPECT_TRUE(process_->dsm().check_invariants());
}

TEST_F(ChaosClusterTest, HintChaseExhaustionFallsBackToTheOrigin) {
  Watchdog dog(60);
  GArray<std::uint64_t> arr(*process_, 512, "chase");
  arr.set(0, 123);
  const GAddr page = arr.addr(0);

  // Poison the hint caches into a cycle that never reaches the real home
  // (the origin): node 2 believes node 1 homes the page, nodes 1 and 3
  // point at each other. The chase must consume exactly kMaxHomeChase
  // non-authoritative bounces, then give up on hints and ask the origin.
  auto& dsm = process_->dsm();
  dsm.home_cache(2).update(page, 1, 0);
  dsm.home_cache(1).update(page, 3, 0);
  dsm.home_cache(3).update(page, 1, 0);

  DexThread reader = process_->spawn([&] {
    migrate(2);
    EXPECT_EQ(arr.get(0), 123u);
    migrate_back();
  });
  reader.join();
  EXPECT_FALSE(reader.failed());

  auto& stats = dsm.stats();
  EXPECT_EQ(stats.wrong_home_bounces.load(),
            static_cast<std::uint64_t>(mem::kMaxHomeChase));
  EXPECT_EQ(stats.home_chases.load(), 1u);
  // The authoritative grant corrected the poisoned hint.
  EXPECT_EQ(dsm.home_cache(2).lookup(page).home, 0);
  EXPECT_TRUE(dsm.check_invariants());
}

TEST_F(ChaosClusterTest, FanoutRevocationSurvivesDroppedLeg) {
  Watchdog dog(60);
  GArray<std::uint64_t> arr(*process_, 512, "fanout-chaos");
  arr.set(0, 7);  // origin takes the page exclusive

  // Replicate the page on every node so the write below fans out.
  std::vector<DexThread> readers;
  for (NodeId n = 1; n <= 3; ++n) {
    readers.push_back(process_->spawn([&, n] {
      migrate(n);
      EXPECT_EQ(arr.get(0), 7u);
      migrate_back();
    }));
  }
  for (auto& r : readers) r.join();

  // Lose exactly one revocation leg (origin -> node 3) once; the fan-out
  // must retry that leg transparently while the other leg proceeds.
  FaultPolicy policy;
  policy.seed = 11;
  FaultRule rule;
  rule.type = MsgType::kRevokeOwnership;
  rule.src = 0;
  rule.dst = 3;
  rule.drop_prob = 1.0;
  rule.max_faults = 1;
  policy.rules.push_back(rule);
  cluster_->fabric().injector().configure(policy);

  DexThread writer = process_->spawn([&] {
    migrate(1);
    arr.set(0, 8);  // revokes the copies on nodes 2 and 3
    migrate_back();
  });
  writer.join();
  EXPECT_FALSE(writer.failed());

  EXPECT_EQ(arr.get(0), 8u);
  EXPECT_EQ(cluster_->fabric().injector().drops(), 1u);
  EXPECT_GT(cluster_->fabric().rpc_retries(), 0u);
  auto& stats = process_->dsm().stats();
  EXPECT_EQ(stats.revoke_failures.load(), 0u);
  EXPECT_GE(stats.revoke_fanouts.load(), 1u);
  EXPECT_GE(stats.revoke_legs_overlapped.load(), 2u);
  EXPECT_TRUE(process_->dsm().check_invariants());
}

TEST_F(ChaosClusterTest, RevokeRetryExhaustionReclaimsSharer) {
  Watchdog dog(60);
  GArray<std::uint64_t> arr(*process_, 512, "revoke-exhaust");
  arr.set(0, 7);

  std::vector<DexThread> readers;
  for (NodeId n = 1; n <= 3; ++n) {
    readers.push_back(process_->spawn([&, n] {
      migrate(n);
      EXPECT_EQ(arr.get(0), 7u);
      migrate_back();
    }));
  }
  for (auto& r : readers) r.join();

  // Node 3 never acknowledges a revoke: the leg exhausts its retries. The
  // write must still complete, with the unreachable sharer fenced off and
  // counted instead of wedging the fan-out.
  FaultPolicy policy;
  policy.seed = 12;
  FaultRule rule;
  rule.type = MsgType::kRevokeOwnership;
  rule.src = 0;
  rule.dst = 3;
  rule.drop_prob = 1.0;
  policy.rules.push_back(rule);
  cluster_->fabric().injector().configure(policy);

  DexThread writer = process_->spawn([&] {
    migrate(1);
    arr.set(0, 9);
    migrate_back();
  });
  writer.join();
  EXPECT_FALSE(writer.failed());
  EXPECT_EQ(arr.get(0), 9u);
  auto& stats = process_->dsm().stats();
  EXPECT_GE(stats.revoke_failures.load(), 1u);
  EXPECT_TRUE(process_->dsm().check_invariants());

  // Once the wire heals, the fenced node refaults cleanly and sees the
  // committed write.
  cluster_->fabric().injector().configure(FaultPolicy{});
  DexThread victim = process_->spawn([&] {
    migrate(3);
    EXPECT_EQ(arr.get(0), 9u);
    migrate_back();
  });
  victim.join();
  EXPECT_FALSE(victim.failed());
  EXPECT_TRUE(process_->dsm().check_invariants());
}

// The acceptance soak: 6 threads spread over nodes 1..3 write disjoint
// page-aligned slices under a 2% wire drop rate; node 2 is failed mid-run.
// Deterministic under the fixed seed: survivors finish with exact results,
// the two threads on node 2 unwind with a typed failure, nothing hangs.
TEST_F(ChaosClusterTest, SoakDropsPlusNodeDeathDeterministic) {
  Watchdog dog(120);
  FaultPolicy policy;
  policy.seed = 0xD5EA11;
  // CI's chaos-soak matrix re-runs this soak under several seeds; the
  // invariants below must hold for all of them, not just the default.
  if (const char* env = std::getenv("DEX_CHAOS_SEED")) {
    policy.seed = std::strtoull(env, nullptr, 0);
  }
  FaultRule drops;
  drops.drop_prob = 0.02;
  policy.rules.push_back(drops);
  cluster_->fabric().injector().configure(policy);

  constexpr int kThreads = 6;
  constexpr std::size_t kSlice = 1024;  // u64s: exactly two pages per slice
  auto expected = [](int t, std::size_t i) {
    return static_cast<std::uint64_t>(t + 1) * 1000003u + i;
  };
  GArray<std::uint64_t> arr(*process_, kThreads * kSlice, "soak");
  GCounter phase(*process_, "phase", /*isolated=*/true);
  std::array<std::atomic<bool>, kThreads> parked{};
  std::atomic<bool> release{false};

  std::vector<DexThread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.push_back(process_->spawn([&, t] {
      migrate(static_cast<NodeId>(1 + t % 3));
      const std::size_t base = static_cast<std::size_t>(t) * kSlice;
      for (std::size_t i = 0; i < kSlice / 2; ++i) {
        arr.set(base + i, expected(t, i));
      }
      phase.fetch_add(1);
      parked[static_cast<std::size_t>(t)].store(true,
                                                std::memory_order_release);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (std::size_t i = kSlice / 2; i < kSlice; ++i) {
        arr.set(base + i, expected(t, i));
      }
      migrate_back();
    }));
  }
  for (auto& flag : parked) {
    while (!flag.load(std::memory_order_acquire)) std::this_thread::yield();
  }
  EXPECT_EQ(phase.load(), static_cast<std::uint64_t>(kThreads));

  cluster_->fail_node(2);
  release.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();

  int lost = 0;
  for (int t = 0; t < kThreads; ++t) {
    if (1 + t % 3 == 2) {
      EXPECT_TRUE(threads[static_cast<std::size_t>(t)].failed()) << t;
      ++lost;
    } else {
      EXPECT_FALSE(threads[static_cast<std::size_t>(t)].failed()) << t;
    }
  }
  EXPECT_EQ(lost, 2);

  auto& failure = process_->dsm().failure_stats();
  EXPECT_EQ(failure.threads_lost.load(), 2u);
  EXPECT_GT(failure.pages_reclaimed.load(), 0u);
  EXPECT_GT(failure.dirty_pages_lost.load(), 0u);
  // The chaos actually bit: wire losses happened and were retried.
  EXPECT_GT(cluster_->fabric().injector().drops(), 0u);
  EXPECT_GT(cluster_->fabric().rpc_retries(), 0u);

  // Survivor slices are exact despite drops and the concurrent failure;
  // the dead threads' slices reverted to the origin's zero frames.
  cluster_->heal_node(2);
  for (int t = 0; t < kThreads; ++t) {
    const std::size_t base = static_cast<std::size_t>(t) * kSlice;
    const bool survived = 1 + t % 3 != 2;
    for (std::size_t i = 0; i < kSlice; ++i) {
      const std::uint64_t want = survived ? expected(t, i) : 0u;
      ASSERT_EQ(arr.get(base + i), want) << "thread " << t << " slot " << i;
    }
  }
  EXPECT_TRUE(process_->dsm().check_invariants());

  const std::string report = prof::ChaosCounters::instance().report();
  EXPECT_NE(report.find("chaos:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Two-hop grant forwarding under chaos (kForwardRecall / kForwardGrant)
// ---------------------------------------------------------------------------

class ForwardChaosTest : public ChaosClusterTest {
 protected:
  /// Seeds word 0 and hands the page to node 1 exclusively, so the next
  /// write from node 2 recalls it through the forwarded two-hop path
  /// (origin -> owner kForwardRecall, owner -> requester kForwardGrant).
  void hand_page_to_owner(GArray<std::uint64_t>& arr) {
    arr.set(0, 5);
    DexThread owner = process_->spawn([&] {
      migrate(1);
      arr.set(0, 6);
      migrate_back();
    });
    owner.join();
    ASSERT_FALSE(owner.failed());
    ASSERT_EQ(process_->probe_data_location(arr.addr(0)), 1);
  }

  std::uint64_t write_from_node2(GArray<std::uint64_t>& arr) {
    DexThread writer = process_->spawn([&] {
      migrate(2);
      arr.set(0, 9);
      migrate_back();
    });
    writer.join();
    EXPECT_FALSE(writer.failed());
    return process_->dsm().stats().forwarded_grants.load();
  }
};

TEST_F(ForwardChaosTest, DroppedForwardedGrantRetriesTransparently) {
  Watchdog dog(60);
  GArray<std::uint64_t> arr(*process_, 512, "fwd-drop");
  hand_page_to_owner(arr);

  // Lose the first owner->requester page push on the wire. The push is an
  // idempotent RDMA write: the owner retransmits after backoff and the
  // grant still forwards — no fallback to the classic two-transfer path.
  FaultPolicy policy;
  policy.seed = 17;
  FaultRule rule;
  rule.type = MsgType::kForwardGrant;
  rule.src = 1;
  rule.dst = 2;
  rule.drop_prob = 1.0;
  rule.max_faults = 1;
  policy.rules.push_back(rule);
  cluster_->fabric().injector().configure(policy);

  EXPECT_GE(write_from_node2(arr), 1u);
  EXPECT_EQ(cluster_->fabric().injector().drops(), 1u);
  EXPECT_GT(cluster_->fabric().rpc_retries(), 0u);
  EXPECT_EQ(process_->dsm().stats().forward_fallbacks.load(), 0u);
  EXPECT_EQ(arr.get(0), 9u);
  EXPECT_TRUE(process_->dsm().check_invariants());
}

TEST_F(ForwardChaosTest, ForwardBudgetExhaustionFallsBackToClassicRecall) {
  Watchdog dog(60);
  GArray<std::uint64_t> arr(*process_, 512, "fwd-exhaust");
  hand_page_to_owner(arr);

  // Every owner->requester push dies on the wire. Once the owner's retry
  // budget is spent it must degrade to the classic protocol: full on-path
  // writeback to the origin, which installs the grant itself. The write
  // still completes with the owner's data intact.
  FaultPolicy policy;
  policy.seed = 18;
  FaultRule rule;
  rule.type = MsgType::kForwardGrant;
  rule.src = 1;
  rule.dst = 2;
  rule.drop_prob = 1.0;
  policy.rules.push_back(rule);
  cluster_->fabric().injector().configure(policy);

  EXPECT_EQ(write_from_node2(arr), 0u);
  auto& stats = process_->dsm().stats();
  EXPECT_GE(stats.forward_fallbacks.load(), 1u);
  EXPECT_GE(stats.writebacks.load(), 1u);
  EXPECT_GT(cluster_->fabric().injector().drops(), 0u);
  EXPECT_EQ(arr.get(0), 9u);
  EXPECT_TRUE(process_->dsm().check_invariants());
}

TEST_F(ForwardChaosTest, OwnerDeathMidForwardReclaimsToOriginFrame) {
  Watchdog dog(60);
  GArray<std::uint64_t> arr(*process_, 512, "fwd-owner-dead");
  hand_page_to_owner(arr);

  // Kill the owner at the fabric level only (no eager directory reclaim),
  // so the forwarded recall itself discovers the death mid-transaction.
  // The dirty copy (6) dies with the owner; the origin's stale frame (5)
  // becomes authoritative and the requester's write proceeds over it.
  cluster_->fabric().injector().fail_node(1);

  EXPECT_EQ(write_from_node2(arr), 0u);
  auto& failure = process_->dsm().failure_stats();
  EXPECT_GE(failure.dirty_pages_lost.load(), 1u);
  EXPECT_EQ(process_->dsm().stats().forward_fallbacks.load(), 0u);
  EXPECT_EQ(arr.get(0), 9u);
  EXPECT_TRUE(process_->dsm().check_invariants());

  // Healing sweeps the dead owner's grants; the cluster stays usable.
  cluster_->heal_node(1);
  DexThread reader = process_->spawn([&] {
    migrate(1);
    EXPECT_EQ(arr.get(0), 9u);
    migrate_back();
  });
  reader.join();
  EXPECT_FALSE(reader.failed());
  EXPECT_TRUE(process_->dsm().check_invariants());
}

// ---------------------------------------------------------------------------
// Async protocol engine under chaos
// ---------------------------------------------------------------------------

class ChaosEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_nodes = 3;
    config.retry.max_attempts = 6;
    cluster_ = std::make_unique<Cluster>(config);
    ProcessOptions options;
    options.async_engine = true;
    options.max_inflight_transactions = 8;
    options.prefetch_max_pages = 4;
    process_ = cluster_->create_process(options);
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Process> process_;
};

// A dropped doorbell-batch leg is retried by the fabric's post-retransmit
// machinery for that leg alone: every transaction sharing the doorbell
// still completes, the memory image is exact, and no engine slot leaks.
TEST_F(ChaosEngineTest, DroppedDoorbellLegRetriesIndependently) {
  Watchdog dog(60);
  constexpr std::size_t kPages = 24;
  GArray<std::uint64_t> data(*process_, kPages * kPageSize / 8, "scan");
  for (std::size_t p = 0; p < kPages; ++p) data.set(p * 512, p + 1);

  FaultPolicy policy;
  policy.seed = 11;
  FaultRule rule;
  rule.type = MsgType::kPageRequestBatch;
  rule.src = 1;
  rule.dst = 0;
  rule.drop_prob = 1.0;
  rule.max_faults = 1;
  policy.rules.push_back(rule);
  cluster_->fabric().injector().configure(policy);

  // Two scanners on one node: their demand faults and prefetch windows
  // share doorbells, so the dropped leg rides next to healthy ones.
  std::vector<DexThread> scanners;
  for (int t = 0; t < 2; ++t) {
    scanners.push_back(process_->spawn([&, t] {
      migrate(1);
      const std::size_t begin = t == 0 ? 0 : kPages / 2;
      const std::size_t end = t == 0 ? kPages / 2 : kPages;
      for (std::size_t p = begin; p < end; ++p) {
        EXPECT_EQ(data.get(p * 512), p + 1);
      }
      migrate_back();
    }));
  }
  for (auto& s : scanners) {
    s.join();
    EXPECT_FALSE(s.failed());
  }

  EXPECT_EQ(cluster_->fabric().injector().drops(), 1u);
  auto& stats = process_->dsm().stats();
  EXPECT_GT(stats.engine_submitted.load(), 0u);
  EXPECT_GT(stats.doorbell_batches.load(), 0u);
  // No parked transaction survived the workload: every submitted
  // transaction completed and woke its faulter.
  EXPECT_EQ(process_->dsm().engine()->outstanding(), 0u);
  EXPECT_TRUE(process_->dsm().check_invariants());
}

// A transaction whose destination dies mid-flight completes with a
// kNodeDead leg outcome instead of leaving the faulter parked forever:
// the resume falls back to the origin (which reclaims dead homes), the
// faulter wakes with good data, and neither engine slots nor FramePool
// credit leak.
TEST_F(ChaosEngineTest, NodeDeathCompletesParkedTransactions) {
  Watchdog dog(60);
  ClusterConfig config;
  config.num_nodes = 4;
  config.retry.max_attempts = 6;
  Cluster cluster(config);
  ProcessOptions options;
  options.async_engine = true;
  options.max_inflight_transactions = 8;
  options.prefetch_max_pages = 4;
  options.home_migration = true;  // homes can sit on a killable node
  options.frame_budget_bytes = 64 * kPageSize;  // admission credit in play
  auto process = cluster.create_process(options);

  constexpr std::size_t kPages = 8;
  GArray<std::uint64_t> data(*process, kPages * kPageSize / 8, "hostage");

  // Node 2 rewrites the range until every entry homes there.
  DexThread adopter = process->spawn([&] {
    migrate(2);
    for (int round = 0; round < 6; ++round) {
      for (std::size_t p = 0; p < kPages; ++p) {
        data.set(p * 512, static_cast<std::uint64_t>(p) * 10 + 1);
      }
    }
    migrate_back();
  });
  adopter.join();
  EXPECT_FALSE(adopter.failed());

  // Replicate the values to the origin first: node 2's dirty frames die
  // with it, and the origin's shared copies become authoritative.
  for (std::size_t p = 0; p < kPages; ++p) {
    EXPECT_EQ(data.get(p * 512), p * 10 + 1);
  }

  // Kill the adopted home. Every engine leg node 1 sends there — demand
  // faults and the scan's prefetch windows alike — lands kNodeDead; the
  // resume falls back to the origin and wakes the faulter instead of
  // leaving it parked on a slot that can never complete.
  cluster.fail_node(2);
  DexThread faulter = process->spawn([&] {
    migrate(1);
    for (std::size_t p = 0; p < kPages; ++p) {
      EXPECT_EQ(data.get(p * 512), p * 10 + 1);
    }
    migrate_back();
  });
  faulter.join();
  EXPECT_FALSE(faulter.failed());

  auto& stats = process->dsm().stats();
  EXPECT_GT(stats.engine_submitted.load(), 0u);
  EXPECT_EQ(process->dsm().engine()->outstanding(), 0u);
  // Admission credit reserved for in-flight doorbells was fully returned.
  for (NodeId n = 0; n < 4; ++n) {
    if (n == 2) continue;
    EXPECT_EQ(process->dsm().frame_pool(n).credit_bytes(), 0u) << n;
  }
  EXPECT_TRUE(process->dsm().check_invariants());
}

}  // namespace
}  // namespace dex
