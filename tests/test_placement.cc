// Joint thread<->page placement tests: the PlacementAdvisor's decision
// model in isolation (dominance windows, hysteresis runs, single-hot-page
// arbitration, cooldown + budget bounds under adversarial alternation), and
// the end-to-end loop — a misplaced thread's fault mass pulls it to its
// data, the load veto stops stampedes, hint warming keeps a migrated
// thread's first faults off the chase path, and the async engine's parked
// transactions defer moves without leaking frame credits.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/time_gate.h"
#include "common/virtual_clock.h"
#include "core/api.h"
#include "core/engine.h"
#include "core/placement.h"
#include "mem/directory.h"
#include "mem/frame_pool.h"
#include "mem/home_cache.h"
#include "prof/trace.h"

namespace dex {
namespace {

constexpr std::size_t kWordsPerPage = kPageSize / sizeof(std::uint64_t);

// Same contract as the recovery suite: a wedged placement test must abort
// loudly instead of eating the CI timeout.
class Watchdog {
 public:
  explicit Watchdog(int seconds)
      : thread_([this, seconds] {
          std::unique_lock<std::mutex> lock(mu_);
          if (!cv_.wait_for(lock, std::chrono::seconds(seconds),
                            [this] { return done_; })) {
            std::fprintf(stderr,
                         "placement watchdog: test exceeded %d s, aborting\n",
                         seconds);
            std::abort();
          }
        }) {}
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// PlacementAdvisor unit behavior (synthetic fault feeds, no cluster)
// ---------------------------------------------------------------------------

/// Feeds one full decision window: `window_faults` granted faults for
/// `task`, all served by `home`, across distinct pages (page addresses are
/// salted by `salt` so consecutive windows do not collapse the distinct-
/// page signature).
void feed_window(core::PlacementAdvisor& advisor, NodeId node, TaskId task,
                 NodeId home, int window_faults, int salt) {
  for (int i = 0; i < window_faults; ++i) {
    const GAddr page =
        static_cast<GAddr>(salt * window_faults + i + 1) * kPageSize;
    advisor.note_fault(node, task, page, home);
  }
}

TEST(PlacementAdvisorTest, DominantRemoteMassArmsAfterTheRun) {
  core::PlacementConfig config;
  core::PlacementAdvisor advisor(config);
  constexpr TaskId kTask = 7;

  // Windows 1..migrate_run-1 agree on node 1 but the run is still short.
  for (int w = 0; w < config.migrate_run - 1; ++w) {
    feed_window(advisor, /*node=*/0, kTask, /*home=*/1, config.window_faults,
                w);
    EXPECT_EQ(advisor.take_pending(), kInvalidNode) << "window " << w;
  }
  // The run-completing window arms the pending target.
  feed_window(advisor, /*node=*/0, kTask, /*home=*/1, config.window_faults,
              config.migrate_run);
  EXPECT_EQ(advisor.take_pending(), 1);
  // take_pending is one-shot.
  EXPECT_EQ(advisor.take_pending(), kInvalidNode);
  EXPECT_EQ(advisor.stats().windows.load(),
            static_cast<std::uint64_t>(config.migrate_run));
}

TEST(PlacementAdvisorTest, LocalMassAnchorsTheThread) {
  core::PlacementConfig config;
  core::PlacementAdvisor advisor(config);
  // All mass on the thread's own node: never a reason to move.
  for (int w = 0; w < 4 * config.migrate_run; ++w) {
    feed_window(advisor, /*node=*/2, /*task=*/3, /*home=*/2,
                config.window_faults, w);
  }
  EXPECT_EQ(advisor.take_pending(), kInvalidNode);
  EXPECT_EQ(advisor.stats().migrations.load(), 0u);
}

TEST(PlacementAdvisorTest, SingleHotPageCedesToHomeMigration) {
  core::PlacementConfig config;
  core::PlacementAdvisor advisor(config);
  constexpr TaskId kTask = 9;
  // Every fault lands on ONE page: that page's entry migrates to this
  // thread (PR-4 home migration); moving the thread too would have the
  // two chasing each other. The advisor must cede every window.
  for (int w = 0; w < 4 * config.migrate_run; ++w) {
    for (int i = 0; i < config.window_faults; ++i) {
      advisor.note_fault(/*node=*/0, kTask, /*page=*/kPageSize, /*home=*/1);
    }
  }
  EXPECT_EQ(advisor.take_pending(), kInvalidNode);
  EXPECT_GT(advisor.stats().arbitration_skips.load(), 0u);
  EXPECT_EQ(advisor.stats().migrations.load(), 0u);
}

TEST(PlacementAdvisorTest, AlternatingMassNeverArms) {
  // The two-node adversarial pattern: fault mass flips between node 1 and
  // node 2 every window, so no dominant node ever survives `migrate_run`
  // consecutive windows. The hysteresis must hold: zero armed migrations
  // over an arbitrarily long alternation.
  core::PlacementConfig config;
  core::PlacementAdvisor advisor(config);
  constexpr TaskId kTask = 11;
  for (int w = 0; w < 20; ++w) {
    feed_window(advisor, /*node=*/0, kTask, /*home=*/1 + w % 2,
                config.window_faults, w);
    EXPECT_EQ(advisor.take_pending(), kInvalidNode) << "window " << w;
  }
  EXPECT_EQ(advisor.stats().migrations.load(), 0u);
  EXPECT_EQ(advisor.stats().windows.load(), 20u);
}

TEST(PlacementAdvisorTest, CooldownAndBudgetBoundSlowPingPong) {
  // A slow adversary that holds each side exactly long enough to trip the
  // run threshold. Cooldown absorbs the windows right after each move and
  // the per-thread budget caps lifetime moves outright, so even this
  // worst case is bounded.
  core::PlacementConfig config;
  core::PlacementAdvisor advisor(config);
  constexpr TaskId kTask = 13;
  std::uint64_t moves = 0;
  for (int stint = 0; stint < 40; ++stint) {
    const NodeId side = 1 + stint % 2;
    for (int w = 0; w < config.migrate_run; ++w) {
      feed_window(advisor, /*node=*/0, kTask, side, config.window_faults,
                  stint * config.migrate_run + w);
      if (advisor.take_pending() != kInvalidNode) {
        advisor.on_migrated(kTask);
        ++moves;
      }
    }
  }
  EXPECT_GT(moves, 0u);  // the adversary is genuinely adversarial...
  EXPECT_LE(moves,
            static_cast<std::uint64_t>(config.migration_budget));  // ...bounded
  EXPECT_EQ(advisor.stats().migrations.load(), moves);
}

TEST(PlacementAdvisorTest, VetoForcesAQuietWindowThenRearms) {
  core::PlacementConfig config;
  core::PlacementAdvisor advisor(config);
  constexpr TaskId kTask = 17;
  for (int w = 0; w < config.migrate_run; ++w) {
    feed_window(advisor, /*node=*/0, kTask, /*home=*/1, config.window_faults,
                w);
  }
  ASSERT_EQ(advisor.take_pending(), 1);
  advisor.on_vetoed(kTask);
  // The cooldown window right after a veto must not re-arm.
  feed_window(advisor, /*node=*/0, kTask, /*home=*/1, config.window_faults,
              100);
  EXPECT_EQ(advisor.take_pending(), kInvalidNode);
  // With the imbalance persisting, the run rebuilds and re-fires.
  for (int w = 0; w < config.migrate_run; ++w) {
    feed_window(advisor, /*node=*/0, kTask, /*home=*/1, config.window_faults,
                200 + w);
  }
  EXPECT_EQ(advisor.take_pending(), 1);
  EXPECT_EQ(advisor.stats().vetoes.load(), 1u);
}

TEST(PlacementAdvisorTest, RecentPagesDedupesOldestToNewest) {
  core::PlacementConfig config;
  core::PlacementAdvisor advisor(config);
  constexpr TaskId kTask = 19;
  advisor.note_fault(0, kTask, 1 * kPageSize, 1);
  advisor.note_fault(0, kTask, 2 * kPageSize, 1);
  advisor.note_fault(0, kTask, 1 * kPageSize, 1);
  advisor.note_fault(0, kTask, 3 * kPageSize, 1);
  const std::vector<GAddr> pages = advisor.recent_pages(kTask);
  ASSERT_EQ(pages.size(), 3u);
  EXPECT_EQ(pages[0], 1 * kPageSize);
  EXPECT_EQ(pages[1], 2 * kPageSize);
  EXPECT_EQ(pages[2], 3 * kPageSize);
  EXPECT_TRUE(advisor.recent_pages(/*task=*/0).empty());
}

// ---------------------------------------------------------------------------
// End-to-end: the thread follows its fault mass
// ---------------------------------------------------------------------------

/// The misplaced-thread pattern every integration test below uses: the
/// worker churns `pages` of `arr` from wherever it stands (checkpoint-style
/// mprotect downgrade + rewrite, so every round re-faults every page), and
/// its fault mass points at whatever node serves those faults.
void churn_rounds(Process& process, GArray<std::uint64_t>& arr,
                  std::size_t pages, int rounds) {
  for (int r = 1; r <= rounds; ++r) {
    process.mprotect(arr.addr(0), pages * kPageSize, mem::kProtRead);
    process.mprotect(arr.addr(0), pages * kPageSize, mem::kProtReadWrite);
    for (std::size_t p = 0; p < pages; ++p) {
      arr.set(p * kWordsPerPage, static_cast<std::uint64_t>(r) * 100 + p);
    }
  }
}

TEST(PlacementTest, MisplacedThreadConvergesToItsData) {
  Watchdog dog(60);
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster cluster(config);
  ProcessOptions options;
  options.auto_thread_migration = true;
  options.home_migration = false;  // pages stay pinned: the thread must move
  options.prefetch_max_pages = 0;
  auto process = cluster.create_process(options);
  process->trace().enable();

  constexpr std::size_t kPages = 8;
  constexpr int kRounds = 14;
  GArray<std::uint64_t> arr(*process, kPages * kWordsPerPage, "parts");
  for (std::size_t p = 0; p < kPages; ++p) arr.set(p * kWordsPerPage, p);

  std::atomic<NodeId> final_node{kInvalidNode};
  DexThread worker = process->spawn([&] {
    migrate(1);  // the misplaced starting position; data is homed at 0
    churn_rounds(*process, arr, kPages, kRounds);
    final_node.store(current_node(), std::memory_order_release);
  });
  worker.join();
  EXPECT_FALSE(worker.failed());

  // The advisor pulled the thread to its fault mass and anchored it there.
  EXPECT_EQ(final_node.load(), 0);
  auto& stats = process->dsm().stats();
  EXPECT_EQ(stats.thread_migrations_auto.load(), 1u);
  EXPECT_GT(stats.placement_windows.load(), 0u);
  for (std::size_t p = 0; p < kPages; ++p) {
    EXPECT_EQ(arr.get(p * kWordsPerPage),
              static_cast<std::uint64_t>(kRounds) * 100 + p);
  }
  bool traced = false;
  for (const auto& e : process->trace().snapshot()) {
    if (e.kind == prof::FaultKind::kThreadMigrate) traced = true;
  }
  EXPECT_TRUE(traced);
  EXPECT_TRUE(process->dsm().check_invariants());
}

TEST(PlacementTest, LoadVetoStopsTheStampede) {
  Watchdog dog(60);
  ClusterConfig config;
  config.num_nodes = 2;
  config.cores_per_node = 1;  // one core per node: a squatter fills node 0
  Cluster cluster(config);
  ProcessOptions options;
  options.auto_thread_migration = true;
  options.home_migration = false;
  options.prefetch_max_pages = 0;
  auto process = cluster.create_process(options);

  constexpr std::size_t kPages = 8;
  GArray<std::uint64_t> arr(*process, kPages * kWordsPerPage, "veto");
  for (std::size_t p = 0; p < kPages; ++p) arr.set(p * kWordsPerPage, p);

  // Load accounting tracks DeX threads, not the host harness — park a
  // spawned thread on node 0 for the whole run so its single core is
  // genuinely occupied when the worker's armed moves reach the veto.
  std::atomic<bool> release{false};
  DexThread squatter = process->spawn([&] {
    ScopedGateBlock gate_block("veto squatter");
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });

  std::atomic<NodeId> final_node{kInvalidNode};
  DexThread worker = process->spawn([&] {
    migrate(1);
    churn_rounds(*process, arr, kPages, /*rounds=*/14);
    final_node.store(current_node(), std::memory_order_release);
  });
  worker.join();
  release.store(true, std::memory_order_release);
  squatter.join();
  EXPECT_FALSE(worker.failed());
  EXPECT_FALSE(squatter.failed());

  // Node 0 was full (the squatter occupied its one core): the armed
  // moves are vetoed and the worker stays put.
  EXPECT_EQ(final_node.load(), 1);
  auto& stats = process->dsm().stats();
  EXPECT_EQ(stats.thread_migrations_auto.load(), 0u);
  EXPECT_GT(stats.placement_vetoes.load(), 0u);
  EXPECT_TRUE(process->dsm().check_invariants());
}

// Satellite regression: a freshly migrated thread's HomeHintCache context
// is whatever its destination node last learned — stale or cold for the
// working set the thread brings along. Arrival must warm the destination's
// hints from the local directory so the thread's first faults go straight
// to the serving home instead of bouncing off the origin (kWrongHome).
TEST(PlacementTest, ArrivalWarmsHomeHintsFromTheDirectory) {
  Watchdog dog(60);
  ClusterConfig config;
  config.num_nodes = 3;
  Cluster cluster(config);
  ProcessOptions options;
  options.auto_thread_migration = true;
  options.home_migration = true;  // hints only matter with migrated homes
  options.prefetch_max_pages = 0;
  auto process = cluster.create_process(options);

  constexpr std::size_t kPages = 8;
  GArray<std::uint64_t> arr(*process, kPages * kWordsPerPage, "warm");
  for (std::size_t p = 0; p < kPages; ++p) arr.set(p * kWordsPerPage, p);

  // Hand the region's homes to node 1 the PR-4 way: a resident single
  // faulter churns until every entry follows it.
  DexThread resident = process->spawn([&] {
    migrate(1);
    churn_rounds(*process, arr, kPages, /*rounds=*/5);
    migrate_back();
  });
  resident.join();
  ASSERT_FALSE(resident.failed());
  for (std::size_t p = 0; p < kPages; ++p) {
    ASSERT_EQ(process->dsm().home_of_page(arr.addr(p * kWordsPerPage)), 1);
  }

  // The misplaced worker on node 2 keeps faulting against home 1 until the
  // advisor moves it there. A second resident churns the same region from
  // node 1 in strict alternation (host-side turn passing, gate-excluded
  // spins): its home-local faults reset every entry's hot_run each round,
  // so PR-4 home migration deterministically never fires and the pages
  // stay pinned at node 1 — the thread, not the data, has to move. The
  // worker's recent working set rides along: arrival warms node 1's hint
  // slots for exactly those pages.
  constexpr int kRounds = 16;
  std::atomic<int> turn{0};  // 0 = worker writes, 1 = resident churns
  std::atomic<VirtNs> turn_vts{0};
  auto await_turn = [&](int who) {
    {
      ScopedGateBlock gate_block("placement_turn");
      while (turn.load(std::memory_order_acquire) != who) {
        std::this_thread::yield();
      }
    }
    vclock::observe(turn_vts.load());
  };
  auto pass_turn = [&](int next) {
    const VirtNs me = vclock::now();
    VirtNs seen = turn_vts.load();
    while (me > seen && !turn_vts.compare_exchange_weak(seen, me)) {
    }
    turn.store(next, std::memory_order_release);
  };
  std::atomic<NodeId> final_node{kInvalidNode};
  DexThread worker = process->spawn([&] {
    migrate(2);
    for (int r = 1; r <= kRounds; ++r) {
      await_turn(0);
      churn_rounds(*process, arr, kPages, /*rounds=*/1);
      pass_turn(1);
    }
    final_node.store(current_node(), std::memory_order_release);
  });
  DexThread keeper = process->spawn([&] {
    migrate(1);
    for (int r = 1; r <= kRounds; ++r) {
      await_turn(1);
      churn_rounds(*process, arr, kPages, /*rounds=*/1);
      pass_turn(0);
    }
  });
  worker.join();
  keeper.join();
  EXPECT_FALSE(worker.failed());
  EXPECT_FALSE(keeper.failed());

  EXPECT_EQ(final_node.load(), 1);
  // The keeper's resets really did pin the pages: the data never moved.
  for (std::size_t p = 0; p < kPages; ++p) {
    EXPECT_EQ(process->dsm().home_of_page(arr.addr(p * kWordsPerPage)), 1);
  }
  auto& stats = process->dsm().stats();
  EXPECT_GE(stats.thread_migrations_auto.load(), 1u);
  EXPECT_GT(stats.placement_hints_warmed.load(), 0u);
  // The warmed slots resolve the thread's working set at its new node.
  for (std::size_t p = 0; p < kPages; ++p) {
    const auto hint = process->dsm().home_cache(1).lookup(
        page_base(arr.addr(p * kWordsPerPage)));
    EXPECT_TRUE(hint.valid) << "page " << p;
    EXPECT_EQ(hint.home, 1) << "page " << p;
  }
  EXPECT_TRUE(process->dsm().check_invariants());
}

// Satellite regression: migration x async engine. The advisor must never
// move a thread over a node with parked engine transactions (it defers
// instead), and a completed run leaves zero engine transactions
// outstanding and zero frame-admission credits held by any worker.
TEST(PlacementTest, EngineInterplayLeavesNoParkedWorkOrCredits) {
  Watchdog dog(120);
  ClusterConfig config;
  config.num_nodes = 3;
  Cluster cluster(config);
  ProcessOptions options;
  options.auto_thread_migration = true;
  options.home_migration = false;
  options.async_engine = true;
  options.max_inflight_transactions = 8;
  options.prefetch_max_pages = 4;  // streams keep the engine busy
  // A real (generous) budget so admission credits actually flow — the
  // leak audit below would be vacuous against the budget-0 no-op path.
  options.frame_budget_bytes = 64 * kPageSize;
  auto process = cluster.create_process(options);

  constexpr int kWorkers = 2;
  constexpr int kRounds = 24;
  constexpr std::size_t kPages = 8;
  GArray<std::uint64_t> arr(*process, kWorkers * kPages * kWordsPerPage,
                            "engine");
  for (std::size_t p = 0; p < kWorkers * kPages; ++p) {
    arr.set(p * kWordsPerPage, p);
  }

  std::atomic<int> leaked_credits{0};
  std::vector<DexThread> workers;
  for (int t = 0; t < kWorkers; ++t) {
    workers.push_back(process->spawn([&, t] {
      migrate(1 + t);  // misplaced: both partitions are homed at node 0
      const std::size_t base = static_cast<std::size_t>(t) * kPages;
      for (int r = 1; r <= kRounds; ++r) {
        process->mprotect(arr.addr(base * kWordsPerPage), kPages * kPageSize,
                          mem::kProtRead);
        process->mprotect(arr.addr(base * kWordsPerPage), kPages * kPageSize,
                          mem::kProtReadWrite);
        for (std::size_t p = 0; p < kPages; ++p) {
          arr.set((base + p) * kWordsPerPage,
                  static_cast<std::uint64_t>(r) * 100 + p);
        }
      }
      // Credits are per-(thread, pool): only the owning thread can see a
      // leak, so each worker audits its own before exiting.
      for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
        if (process->dsm().frame_pool(n).credit_bytes() != 0) {
          leaked_credits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }));
  }
  for (auto& w : workers) w.join();
  for (auto& w : workers) EXPECT_FALSE(w.failed());

  EXPECT_EQ(leaked_credits.load(), 0);
  ASSERT_NE(process->engine(), nullptr);
  EXPECT_EQ(process->engine()->outstanding(), 0u);
  auto& stats = process->dsm().stats();
  EXPECT_GE(stats.thread_migrations_auto.load(),
            static_cast<std::uint64_t>(kWorkers));
  EXPECT_GT(stats.engine_submitted.load(), 0u);
  for (std::size_t p = 0; p < kWorkers * kPages; ++p) {
    EXPECT_EQ(arr.get(p * kWordsPerPage),
              static_cast<std::uint64_t>(kRounds) * 100 + p % kPages);
  }
  EXPECT_TRUE(process->dsm().check_invariants());
}

// The ablation: auto_thread_migration=false must be the seed protocol to
// the counter — no advisor, no placement traffic, zero new messages.
TEST(PlacementTest, KnobOffKeepsEveryPlacementCounterZero)  {
  Watchdog dog(60);
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster cluster(config);
  ProcessOptions options;
  options.auto_thread_migration = false;
  options.home_migration = false;
  options.prefetch_max_pages = 0;
  auto process = cluster.create_process(options);

  constexpr std::size_t kPages = 8;
  GArray<std::uint64_t> arr(*process, kPages * kWordsPerPage, "off");
  for (std::size_t p = 0; p < kPages; ++p) arr.set(p * kWordsPerPage, p);

  std::atomic<NodeId> final_node{kInvalidNode};
  DexThread worker = process->spawn([&] {
    migrate(1);
    churn_rounds(*process, arr, kPages, /*rounds=*/14);
    final_node.store(current_node(), std::memory_order_release);
  });
  worker.join();
  EXPECT_FALSE(worker.failed());

  EXPECT_EQ(final_node.load(), 1);  // nobody moved it
  EXPECT_EQ(process->placement(), nullptr);
  auto& stats = process->dsm().stats();
  EXPECT_EQ(stats.thread_migrations_auto.load(), 0u);
  EXPECT_EQ(stats.placement_windows.load(), 0u);
  EXPECT_EQ(stats.placement_vetoes.load(), 0u);
  EXPECT_EQ(stats.placement_deferrals.load(), 0u);
  EXPECT_EQ(stats.placement_arbitrations.load(), 0u);
  EXPECT_EQ(stats.placement_hints_warmed.load(), 0u);
  EXPECT_TRUE(process->dsm().check_invariants());
}

}  // namespace
}  // namespace dex
