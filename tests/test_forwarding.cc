// Two-hop grant forwarding tests: a recall whose requester is a third node
// ships the page straight from the owner (kForwardGrant) instead of
// bouncing it through the origin frame; the ablation knobs
// (forward_grants=off, dir_shards=1) reproduce the classic two-transfer
// protocol exactly; NodeSet bound checks abort on out-of-range nodes; and
// a failed recall never counts a writeback.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "core/api.h"
#include "mem/directory.h"

namespace dex {
namespace {

using net::FaultPolicy;
using net::FaultRule;
using net::MsgType;

constexpr std::size_t kWordsPerPage = kPageSize / sizeof(std::uint64_t);

/// Directory end state, per page: (version, sharers, exclusive_owner,
/// materialized). Forwarding changes the data path of a recall, never the
/// resulting ownership state — twin runs must agree exactly.
using DirSnapshot =
    std::map<std::uint64_t, std::tuple<std::uint64_t, std::uint64_t, NodeId,
                                       bool>>;

DirSnapshot snapshot_directory(Process& process) {
  DirSnapshot snap;
  process.dsm().directory().for_each(
      [&](std::uint64_t page_idx, mem::DirEntry& entry) {
        snap[page_idx] = {entry.version, entry.sharers.raw(),
                          entry.exclusive_owner, entry.materialized};
      });
  return snap;
}

class ForwardingTest : public ::testing::Test {
 protected:
  void start(int num_nodes, bool forward_grants,
             int dir_shards = mem::Directory::kDirShards) {
    // Twin-run tests call start() twice: the process must go before the
    // cluster it unregisters from.
    process_.reset();
    cluster_.reset();
    ClusterConfig config;
    config.num_nodes = num_nodes;
    cluster_ = std::make_unique<Cluster>(config);
    ProcessOptions options;
    options.forward_grants = forward_grants;
    options.dir_shards = dir_shards;
    options.prefetch_max_pages = 0;  // deterministic one-fault-per-page
    process_ = cluster_->create_process(options);
  }

  /// The migratory-sharing pattern the two-hop path exists for: one thread
  /// bounces a page between nodes 1 and 2, so every write fault after the
  /// first recalls the page from the *other* remote — past the origin.
  /// `verify_reads` adds a read before each write; the read downgrades the
  /// owner first, turning the write into a plain sharer-revoke upgrade, so
  /// latency/writeback comparisons use the pure write-only hand-off.
  void ping_pong(GArray<std::uint64_t>& arr, int rounds,
                 bool verify_reads = false) {
    DexThread worker = process_->spawn([&, rounds, verify_reads] {
      std::uint64_t expect = 0;
      for (int r = 0; r < rounds; ++r) {
        migrate(1 + r % 2);
        if (verify_reads) {
          EXPECT_EQ(arr.get(0), expect);
        }
        arr.set(0, ++expect);
        migrate_back();
      }
    });
    worker.join();
    EXPECT_FALSE(worker.failed());
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Process> process_;
};

TEST_F(ForwardingTest, MigratoryWritesForwardPastTheOrigin) {
  start(/*num_nodes=*/3, /*forward_grants=*/true);
  GArray<std::uint64_t> arr(*process_, kWordsPerPage, "migratory");
  arr.set(0, 0);  // origin takes the page exclusive

  ping_pong(arr, 10, /*verify_reads=*/true);

  auto& stats = process_->dsm().stats();
  // Round 1 recalls from the origin itself (no forward possible); every
  // later round recalls from the other remote and must forward. The read
  // before each write faults too, and its grant forwards as well.
  EXPECT_GE(stats.forwarded_grants.load(), 9u);
  EXPECT_EQ(stats.forward_fallbacks.load(), 0u);
  EXPECT_GT(cluster_->fabric().messages_of(MsgType::kForwardRecall), 0u);
  EXPECT_GT(cluster_->fabric().messages_of(MsgType::kForwardGrant), 0u);
  EXPECT_EQ(arr.get(0), 10u);
  EXPECT_TRUE(process_->dsm().check_invariants());
}

TEST_F(ForwardingTest, ForwardedReadRefreshesOriginFrame) {
  start(/*num_nodes=*/3, /*forward_grants=*/true);
  GArray<std::uint64_t> arr(*process_, kWordsPerPage, "fwd-read");
  arr.set(0, 7);

  // Node 1 takes the page exclusive; node 2 then *reads* it: the grant
  // forwards owner->requester while the writeback rides the off-path ack
  // into the origin frame, which must end up current (origin stays a
  // sharer per the §III-B home-based invariant).
  DexThread writer = process_->spawn([&] {
    migrate(1);
    arr.set(0, 41);
    migrate_back();
  });
  writer.join();
  DexThread reader = process_->spawn([&] {
    migrate(2);
    EXPECT_EQ(arr.get(0), 41u);
    migrate_back();
  });
  reader.join();
  EXPECT_FALSE(reader.failed());

  auto& stats = process_->dsm().stats();
  EXPECT_GE(stats.forwarded_grants.load(), 1u);
  EXPECT_GE(stats.writebacks.load(), 1u);  // the downgrade ack carried data
  EXPECT_EQ(arr.get(0), 41u);              // origin frame is current
  EXPECT_TRUE(process_->dsm().check_invariants());
}

// The acceptance criterion: the migratory bench must show >= 1.5x lower
// owner-recall fault latency with forwarding on. Deterministic single
// thread, so the per-run mean fault latency is exact virtual time.
TEST_F(ForwardingTest, TwoHopCutsOwnerRecallFaultLatency) {
  constexpr int kRounds = 100;
  double mean_ns[2] = {0, 0};
  for (int on = 0; on <= 1; ++on) {
    start(/*num_nodes=*/3, /*forward_grants=*/on != 0);
    GArray<std::uint64_t> arr(*process_, kWordsPerPage, "latency");
    arr.set(0, 0);
    ping_pong(arr, kRounds);
    mean_ns[on] = process_->dsm().stats().fault_latency.mean();
    EXPECT_TRUE(process_->dsm().check_invariants());
  }
  ASSERT_GT(mean_ns[1], 0.0);
  const double speedup = mean_ns[0] / mean_ns[1];
  EXPECT_GE(speedup, 1.5) << "classic mean " << mean_ns[0]
                          << " ns vs forwarded mean " << mean_ns[1] << " ns";
}

TEST_F(ForwardingTest, AblationOffReproducesClassicProtocolExactly) {
  // Twin runs of the same deterministic workload. The off-run must be the
  // classic protocol to the message: zero forward traffic, one writeback
  // per owner recall. And since forwarding only changes the data path, the
  // on-run must converge to the *identical* directory state and data.
  constexpr int kRounds = 8;
  DirSnapshot snaps[2];
  std::uint64_t writebacks[2] = {0, 0};
  std::uint64_t faults[2] = {0, 0};
  for (int on = 0; on <= 1; ++on) {
    start(/*num_nodes=*/3, /*forward_grants=*/on != 0, /*dir_shards=*/
          on != 0 ? mem::Directory::kDirShards : 1);
    GArray<std::uint64_t> arr(*process_, kWordsPerPage, "ablation");
    arr.set(0, 0);
    ping_pong(arr, kRounds);
    EXPECT_EQ(arr.get(0), static_cast<std::uint64_t>(kRounds));
    auto& stats = process_->dsm().stats();
    faults[on] = stats.total_faults();
    writebacks[on] = stats.writebacks.load();
    snaps[on] = snapshot_directory(*process_);
    if (on == 0) {
      EXPECT_EQ(cluster_->fabric().messages_of(MsgType::kForwardRecall), 0u);
      EXPECT_EQ(cluster_->fabric().messages_of(MsgType::kForwardGrant), 0u);
      EXPECT_EQ(stats.forwarded_grants.load(), 0u);
      EXPECT_EQ(stats.forward_fallbacks.load(), 0u);
      EXPECT_EQ(process_->dsm().directory().shards(), 1);
    }
    EXPECT_TRUE(process_->dsm().check_invariants());
  }
  // Same fault pattern, same end state, on or off.
  EXPECT_EQ(faults[0], faults[1]);
  EXPECT_EQ(snaps[0], snaps[1]);
  // Forwarding skips the on-path writeback for exclusive hand-offs, so the
  // classic run writes back strictly more often.
  EXPECT_GT(writebacks[0], writebacks[1]);
}

TEST_F(ForwardingTest, ShardedDirectoryMatchesSingleShard) {
  // Same workload over many pages with 64 shards vs 1: identical data and
  // directory state; the sharded run takes no shard-lock contention in a
  // single-threaded (hence uncontended) schedule.
  constexpr std::size_t kPages = 32;
  DirSnapshot snaps[2];
  for (int sharded = 0; sharded <= 1; ++sharded) {
    start(/*num_nodes=*/3, /*forward_grants=*/true,
          /*dir_shards=*/sharded != 0 ? mem::Directory::kDirShards : 1);
    GArray<std::uint64_t> arr(*process_, kPages * kWordsPerPage, "shards");
    for (std::size_t p = 0; p < kPages; ++p) arr.set(p * kWordsPerPage, p);
    DexThread worker = process_->spawn([&] {
      migrate(1);
      for (std::size_t p = 0; p < kPages; ++p) {
        arr.set(p * kWordsPerPage, p + 100);
      }
      migrate_back();
    });
    worker.join();
    EXPECT_FALSE(worker.failed());
    for (std::size_t p = 0; p < kPages; ++p) {
      EXPECT_EQ(arr.get(p * kWordsPerPage), p + 100);
    }
    EXPECT_EQ(process_->dsm().directory().lock_contention(), 0u);
    EXPECT_EQ(process_->dsm().directory().tracked_pages(), kPages);
    snaps[sharded] = snapshot_directory(*process_);
    EXPECT_TRUE(process_->dsm().check_invariants());
  }
  EXPECT_EQ(snaps[0], snaps[1]);
}

// Satellite: a recall whose RPC fails after the retry budget must not be
// counted as a writeback — nothing was written back; the owner is fenced
// and the loss reported instead.
TEST_F(ForwardingTest, FailedRecallDoesNotCountAWriteback) {
  for (int on = 0; on <= 1; ++on) {
    start(/*num_nodes=*/3, /*forward_grants=*/on != 0);
    GArray<std::uint64_t> arr(*process_, kWordsPerPage, "lost-recall");
    arr.set(0, 5);
    DexThread owner = process_->spawn([&] {
      migrate(1);
      arr.set(0, 6);
      migrate_back();
    });
    owner.join();
    ASSERT_EQ(process_->probe_data_location(arr.addr(0)), 1);
    const std::uint64_t writebacks_before =
        process_->dsm().stats().writebacks.load();

    // The owner never acknowledges the recall (classic or forwarded): the
    // requester's write must still complete against the stale origin frame.
    FaultPolicy policy;
    policy.seed = 31;
    FaultRule rule;
    rule.type = on != 0 ? MsgType::kForwardRecall : MsgType::kRevokeOwnership;
    rule.src = 0;
    rule.dst = 1;
    rule.drop_prob = 1.0;
    policy.rules.push_back(rule);
    cluster_->fabric().injector().configure(policy);

    DexThread writer = process_->spawn([&] {
      migrate(2);
      arr.set(0, 9);
      migrate_back();
    });
    writer.join();
    EXPECT_FALSE(writer.failed());

    auto& stats = process_->dsm().stats();
    EXPECT_EQ(stats.writebacks.load(), writebacks_before);
    EXPECT_GE(stats.revoke_failures.load(), 1u);
    EXPECT_EQ(stats.forwarded_grants.load(), 0u);
    EXPECT_GE(process_->dsm().failure_stats().dirty_pages_lost.load(), 1u);
    EXPECT_EQ(arr.get(0), 9u);  // the new write, over the stale frame
    EXPECT_TRUE(process_->dsm().check_invariants());
  }
}

// Satellite: NodeSet shifts were UB for node >= 64 (or negative); the
// bound check must abort instead of silently corrupting the sharer mask.
using NodeSetDeathTest = ForwardingTest;

TEST_F(NodeSetDeathTest, OutOfRangeNodesAbort) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  mem::NodeSet set;
  set.add(0);
  set.add(mem::kMaxNodes - 1);
  EXPECT_TRUE(set.contains(0));
  EXPECT_EQ(set.count(), 2);
  EXPECT_DEATH(set.add(mem::kMaxNodes), "DEX_CHECK failed");
  EXPECT_DEATH(set.remove(mem::kMaxNodes + 3), "DEX_CHECK failed");
  EXPECT_DEATH((void)set.contains(-1), "DEX_CHECK failed");
}

}  // namespace
}  // namespace dex
