// Thread-migration semantics (§III-A, Table II / Figure 3).
#include <gtest/gtest.h>

#include "core/api.h"

namespace dex {
namespace {

class MigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_nodes = 4;
    cluster_ = std::make_unique<Cluster>(config);
    process_ = cluster_->create_process(ProcessOptions{});
  }
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Process> process_;
};

TEST_F(MigrationTest, ThreadObservesItsCurrentNode) {
  DexThread t = process_->spawn([&] {
    EXPECT_EQ(current_node(), 0);
    migrate(2);
    EXPECT_EQ(current_node(), 2);
    migrate(1);  // remote-to-remote migration is allowed
    EXPECT_EQ(current_node(), 1);
    migrate_back();
    EXPECT_EQ(current_node(), 0);
  });
  t.join();
}

TEST_F(MigrationTest, MigrateToCurrentNodeIsNoOp) {
  DexThread t = process_->spawn([&] {
    const VirtNs before = now();
    migrate(0);  // already there
    EXPECT_EQ(now(), before);
  });
  t.join();
  EXPECT_TRUE(process_->migration_log().empty());
}

TEST_F(MigrationTest, FirstMigrationPaysRemoteWorkerSetup) {
  DexThread t = process_->spawn([&] {
    migrate(1);
    migrate_back();
    migrate(1);  // remote worker already exists
    migrate_back();
  });
  t.join();

  const auto log = process_->migration_log();
  ASSERT_EQ(log.size(), 4u);
  const auto& first = log[0];
  const auto& second = log[2];
  EXPECT_FALSE(first.backward);
  EXPECT_TRUE(first.first_on_node);
  EXPECT_GT(first.remote_worker_ns, 0u);
  EXPECT_FALSE(second.first_on_node);
  EXPECT_EQ(second.remote_worker_ns, 0u);
  // Table II: the 1st forward migration is several times the 2nd.
  EXPECT_GT(first.total_ns, 2 * second.total_ns);
  // Backward migrations are an order of magnitude cheaper than forward.
  EXPECT_LT(log[1].total_ns, second.total_ns / 2);
  EXPECT_TRUE(log[1].backward);
}

TEST_F(MigrationTest, RemoteWorkerSharedAcrossThreads) {
  // Thread A's migration creates the per-process remote worker on node 2;
  // thread B's later migration there must take the cheap path.
  DexThread a = process_->spawn([&] {
    migrate(2);
    migrate_back();
  });
  a.join();
  EXPECT_TRUE(process_->remote_worker_exists(2));
  EXPECT_FALSE(process_->remote_worker_exists(3));

  DexThread b = process_->spawn([&] {
    migrate(2);
    migrate_back();
  });
  b.join();

  const auto log = process_->migration_log();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_TRUE(log[0].first_on_node);
  EXPECT_FALSE(log[2].first_on_node);  // B reused A's remote worker
  EXPECT_GT(log[2].thread_setup_ns, 0u);
}

TEST_F(MigrationTest, MigrationChargesCallerClock) {
  VirtNs spent = 0;
  DexThread t = process_->spawn([&] {
    const VirtNs before = now();
    migrate(3);
    spent = now() - before;
    migrate_back();
  });
  t.join();
  const auto& cost = cluster_->cost();
  // First forward migration: collect + transfer + worker + thread setup.
  EXPECT_GT(spent, cost.remote_worker_setup_ns);
  EXPECT_LT(spent, 2 * (cost.remote_worker_setup_ns +
                        cost.remote_thread_setup_first_ns +
                        cost.migrate_collect_first_ns + 100000));
}

TEST_F(MigrationTest, NodeLoadTracksThreadPlacement) {
  auto& load = cluster_->node_load();
  DexBarrier barrier(*process_, 2);
  DexThread t = process_->spawn([&] {
    migrate(1);
    barrier.wait();  // parked at node 1
    barrier.wait();
    migrate_back();
  });
  DexThread observer = process_->spawn([&] {
    barrier.wait();
    EXPECT_GE(load.on(1), 1);
    barrier.wait();
  });
  t.join();
  observer.join();
  EXPECT_EQ(load.on(1), 0);
  EXPECT_EQ(load.on(0), 0);  // all threads exited
}

TEST_F(MigrationTest, SubsequentMigrationsMatchSecondCost) {
  DexThread t = process_->spawn([&] {
    for (int i = 0; i < 5; ++i) {
      migrate(1);
      migrate_back();
    }
  });
  t.join();
  const auto log = process_->migration_log();
  ASSERT_EQ(log.size(), 10u);
  const VirtNs second = log[2].total_ns;
  for (std::size_t i = 4; i < log.size(); i += 2) {
    EXPECT_EQ(log[i].total_ns, second) << i;
  }
}

TEST_F(MigrationTest, DelegatedMmapFromRemote) {
  GAddr addr = kNullGAddr;
  DexThread t = process_->spawn([&] {
    migrate(2);
    // VMA manipulation from a remote thread: delegated to the origin.
    addr = process_->mmap(kPageSize, mem::kProtReadWrite, "remote-mmap");
    process_->store<int>(addr, 77);
    migrate_back();
  });
  t.join();
  ASSERT_NE(addr, kNullGAddr);
  EXPECT_EQ(process_->load<int>(addr), 77);
  EXPECT_GT(process_->delegation_count(), 0u);
}

}  // namespace
}  // namespace dex
