// §VII extensions: scheduler-initiated (least-loaded) migration and
// computation-near-data placement.
#include <gtest/gtest.h>

#include "core/api.h"

namespace dex {
namespace {

class ExtensionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_nodes = 4;
    cluster_ = std::make_unique<Cluster>(config);
    process_ = cluster_->create_process(ProcessOptions{});
  }
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Process> process_;
};

TEST_F(ExtensionTest, LeastLoadedMigrationSpreadsThreads) {
  constexpr int kThreads = 8;
  DexBarrier barrier(*process_, kThreads);
  std::array<std::atomic<int>, 4> placement{};
  std::vector<DexThread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.push_back(process_->spawn([&] {
      process_->migrate_to_least_loaded();
      placement[static_cast<std::size_t>(current_node())].fetch_add(1);
      barrier.wait();  // hold position until everyone placed
      migrate_back();
    }));
  }
  for (auto& t : threads) t.join();
  // 8 threads over 4 nodes: balanced placement, 2 per node.
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ(placement[static_cast<std::size_t>(n)].load(), 2) << n;
  }
}

TEST_F(ExtensionTest, ProbeDataLocationTracksExclusiveOwner) {
  GArray<std::uint64_t> data(*process_, 512, "probe");
  data.set(0, 1);  // origin takes exclusive ownership
  EXPECT_EQ(process_->probe_data_location(data.addr(0)), 0);

  DexThread writer = process_->spawn([&] {
    migrate(3);
    data.set(0, 2);  // node 3 takes exclusive ownership
    migrate_back();
  });
  writer.join();
  EXPECT_EQ(process_->probe_data_location(data.addr(0)), 3);

  // A read from the origin downgrades to shared: data considered homed.
  EXPECT_EQ(data.get(0), 2u);
  EXPECT_EQ(process_->probe_data_location(data.addr(0)), 0);
}

TEST_F(ExtensionTest, MigrateToDataMovesComputationNearData) {
  GArray<std::uint64_t> data(*process_, kPageSize / 8, "near");
  // Node 2 produces the data.
  DexThread producer = process_->spawn([&] {
    migrate(2);
    for (std::size_t i = 0; i < data.size(); ++i) data.set(i, i * 2);
    migrate_back();
  });
  producer.join();

  // A consumer relocates itself next to the data before scanning it: its
  // reads become node-local (no wire traffic for the scan itself).
  auto& stats = process_->dsm().stats();
  DexThread consumer = process_->spawn([&] {
    const NodeId where = process_->migrate_to_data(data.addr(0));
    EXPECT_EQ(where, 2);
    const auto remote_before = stats.remote_faults.load();
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < data.size(); ++i) sum += data.get(i);
    EXPECT_EQ(sum, (data.size() - 1) * data.size());
    EXPECT_EQ(stats.remote_faults.load(), remote_before);
    migrate_back();
  });
  consumer.join();
}

TEST_F(ExtensionTest, ProbeUnmappedAddressDefaultsToOrigin) {
  EXPECT_EQ(process_->probe_data_location(0xdead000), 0);
}

}  // namespace
}  // namespace dex
