// Self-healing tests: the accrual failure detector and epoch-stamped
// membership (silent failures declared dead within a bounded number of
// heartbeat rounds, zero false positives on clean runs, off = zero
// membership traffic), writeback leases (off reproduces the unleased
// protocol bit-for-bit; on bounds dirty loss so a dead owner's journaled
// pages recover to the fault-free image across cluster shapes), robust
// futex sweeps (a waiter with a dead counterpart unblocks), lost-thread
// restart at the origin, and the heal -> re-migrate path.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "common/virtual_clock.h"
#include "core/api.h"
#include "mem/directory.h"
#include "net/failure_detector.h"
#include "prof/trace.h"

namespace dex {
namespace {

using net::MsgType;

constexpr std::size_t kWordsPerPage = kPageSize / sizeof(std::uint64_t);

// "No hangs" is part of the contract under test: a wedged recovery test
// must abort loudly instead of eating the CI timeout.
class Watchdog {
 public:
  explicit Watchdog(int seconds)
      : thread_([this, seconds] {
          std::unique_lock<std::mutex> lock(mu_);
          if (!cv_.wait_for(lock, std::chrono::seconds(seconds),
                            [this] { return done_; })) {
            std::fprintf(stderr,
                         "recovery watchdog: test exceeded %d s, aborting\n",
                         seconds);
            std::abort();
          }
        }) {}
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

/// (version, exclusive_owner, materialized) per page — the twin-run
/// equality fingerprint (same shape as the home-migration ablation test).
using DirSnapshot =
    std::map<std::uint64_t, std::tuple<std::uint64_t, NodeId, bool>>;

DirSnapshot snapshot_directory(Process& process) {
  DirSnapshot snap;
  process.dsm().directory().for_each(
      [&](std::uint64_t page_idx, mem::DirEntry& entry) {
        snap[page_idx] = {entry.version, entry.exclusive_owner,
                          entry.materialized};
      });
  return snap;
}

// ---------------------------------------------------------------------------
// AccrualDetector unit behavior
// ---------------------------------------------------------------------------

TEST(AccrualDetectorTest, PhiGrowsWithSilenceAndResetsOnArrival) {
  constexpr VirtNs kInterval = 50'000;
  net::AccrualDetector detector(4, kInterval);

  // Never-heard nodes are never suspected: phi stays exactly zero.
  EXPECT_EQ(detector.phi(2, 1'000'000), 0.0);

  // Regular arrivals: one missed interval scores well under suspicion,
  // ~7 silent intervals crosses the phi=3 death threshold.
  VirtNs t = 100'000;
  for (int i = 0; i < 10; ++i) {
    detector.record_heartbeat(1, t);
    t += kInterval;
  }
  const VirtNs last = detector.last_arrival(1);
  EXPECT_LT(detector.phi(1, last + kInterval), 1.0);
  EXPECT_LT(detector.phi(1, last + 2 * kInterval), detector.phi(1, last + 4 * kInterval));
  EXPECT_GE(detector.phi(1, last + 8 * kInterval), 3.0);

  // A fresh arrival clears the suspicion.
  detector.record_heartbeat(1, last + 8 * kInterval);
  EXPECT_EQ(detector.phi(1, last + 8 * kInterval), 0.0);
}

// ---------------------------------------------------------------------------
// Membership: bounded detection, agreement, clean-run false positives
// ---------------------------------------------------------------------------

TEST(MembershipTest, SilentFailureDeclaredDeadWithinBoundedRounds) {
  Watchdog dog(60);
  prof::ChaosCounters::instance().reset();
  ClusterConfig config;
  config.num_nodes = 4;
  config.detector.enabled = true;
  Cluster cluster(config);

  // History warm-up: every node heartbeats on schedule, nobody suspected.
  for (int r = 0; r < 8; ++r) EXPECT_EQ(cluster.run_membership_round(), 0);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(cluster.member_state(n), MemberState::kAlive) << n;
  }

  // Silent failure: node 2's links go dark without the oracle marking it
  // dead — only the missing heartbeats can reveal it.
  cluster.fabric().injector().isolate_node(2);
  int rounds = 1;
  while (cluster.run_membership_round() == 0 && rounds < 12) ++rounds;

  // Declared within a bounded number of heartbeat intervals (phi=3 with a
  // regular history crosses at ~7 silent intervals).
  EXPECT_LE(rounds, 9);
  EXPECT_EQ(cluster.member_state(2), MemberState::kDead);
  EXPECT_TRUE(cluster.node_dead(2));  // fenced, not just suspected
  EXPECT_EQ(prof::ChaosCounters::instance().nodes_declared_dead.load(), 1u);

  // Epoch-stamped agreement: every surviving node adopted the verdict.
  const std::uint64_t epoch = cluster.membership_epoch();
  EXPECT_GE(epoch, 1u);
  for (NodeId n : {NodeId{0}, NodeId{1}, NodeId{3}}) {
    EXPECT_EQ(cluster.view_epoch(n), epoch) << n;
    EXPECT_EQ((cluster.view_dead_mask(n) >> 2) & 1u, 1u) << n;
  }

  // Survivors keep heartbeating; no cascade.
  for (int r = 0; r < 4; ++r) EXPECT_EQ(cluster.run_membership_round(), 0);
  EXPECT_EQ(cluster.member_state(1), MemberState::kAlive);
  EXPECT_EQ(cluster.member_state(3), MemberState::kAlive);
}

TEST(MembershipTest, CleanRunHasZeroFalsePositives) {
  Watchdog dog(60);
  prof::ChaosCounters::instance().reset();
  ClusterConfig config;
  config.num_nodes = 4;
  config.detector.enabled = true;
  Cluster cluster(config);
  auto process = cluster.create_process(ProcessOptions{});

  // Real protocol traffic in flight while the membership pump runs.
  GArray<std::uint64_t> arr(*process, 4 * kWordsPerPage, "clean");
  std::atomic<bool> stop{false};
  DexThread worker = process->spawn([&] {
    migrate(1);
    std::uint64_t v = 1;
    while (!stop.load(std::memory_order_acquire)) {
      for (std::size_t p = 0; p < 4; ++p) arr.set(p * kWordsPerPage, v + p);
      ++v;
    }
    migrate_back();
  });

  for (int r = 0; r < 40; ++r) EXPECT_EQ(cluster.run_membership_round(), 0);
  stop.store(true, std::memory_order_release);
  worker.join();
  EXPECT_FALSE(worker.failed());

  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(cluster.member_state(n), MemberState::kAlive) << n;
  }
  auto& chaos = prof::ChaosCounters::instance();
  EXPECT_EQ(chaos.nodes_suspected.load(), 0u);
  EXPECT_EQ(chaos.nodes_declared_dead.load(), 0u);
  EXPECT_GT(chaos.heartbeats.load(), 0u);
}

TEST(MembershipTest, DetectorOffSendsNoMembershipTraffic) {
  Watchdog dog(60);
  ClusterConfig config;  // detector.enabled defaults to false
  config.num_nodes = 3;
  Cluster cluster(config);
  auto process = cluster.create_process(ProcessOptions{});

  GArray<std::uint64_t> arr(*process, 2 * kWordsPerPage, "off");
  DexThread worker = process->spawn([&] {
    migrate(1);
    for (std::size_t p = 0; p < 2; ++p) arr.set(p * kWordsPerPage, p + 1);
    migrate_back();
  });
  worker.join();
  EXPECT_FALSE(worker.failed());

  // The pump is inert and the wire carries zero detector traffic: the
  // seed failure model, bit for bit.
  EXPECT_EQ(cluster.run_membership_round(), 0);
  EXPECT_EQ(cluster.fabric().messages_of(MsgType::kHeartbeat), 0u);
  EXPECT_EQ(cluster.fabric().messages_of(MsgType::kMembershipUpdate), 0u);
  EXPECT_EQ(cluster.membership_epoch(), 0u);
}

// ---------------------------------------------------------------------------
// Writeback leases
// ---------------------------------------------------------------------------

class LeaseTest : public ::testing::Test {
 protected:
  void start(int num_nodes, VirtNs lease_ns) {
    process_.reset();
    cluster_.reset();
    ClusterConfig config;
    config.num_nodes = num_nodes;
    cluster_ = std::make_unique<Cluster>(config);
    ProcessOptions options;
    options.lease_ns = lease_ns;
    options.prefetch_max_pages = 0;  // deterministic one-fault-per-page
    options.home_migration = false;  // homes stay at the origin
    process_ = cluster_->create_process(options);
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Process> process_;
};

TEST_F(LeaseTest, AblationOffReproducesTheUnleasedProtocolBitForBit) {
  Watchdog dog(60);
  // Twin runs of the same deterministic workload, leases off vs on. The
  // off-run must be the unleased protocol to the message: zero kLeaseRenew
  // traffic, zero lease counters, zero lease state in the directory. And
  // since renewal moves only journal copies, both runs converge to the
  // identical data and (version, owner) directory state.
  constexpr std::size_t kPages = 4;
  constexpr int kRounds = 5;
  constexpr VirtNs kLease = 20'000;
  DirSnapshot snaps[2];
  std::uint64_t faults[2] = {0, 0};
  for (int on = 0; on <= 1; ++on) {
    start(/*num_nodes=*/2, /*lease_ns=*/on != 0 ? kLease : 0);
    GArray<std::uint64_t> arr(*process_, kPages * kWordsPerPage, "ablation");
    DexThread worker = process_->spawn([&] {
      migrate(1);
      for (int r = 1; r <= kRounds; ++r) {
        for (std::size_t p = 0; p < kPages; ++p) {
          arr.set(p * kWordsPerPage,
                  static_cast<std::uint64_t>(r) * 100 + p);
        }
        // Outlive the lease window so the next round's writes renew.
        vclock::advance(kLease + 1);
      }
      migrate_back();
    });
    worker.join();
    EXPECT_FALSE(worker.failed());
    for (std::size_t p = 0; p < kPages; ++p) {
      EXPECT_EQ(arr.get(p * kWordsPerPage),
                static_cast<std::uint64_t>(kRounds) * 100 + p);
    }
    auto& stats = process_->dsm().stats();
    faults[on] = stats.total_faults();
    snaps[on] = snapshot_directory(*process_);
    if (on == 0) {
      EXPECT_EQ(cluster_->fabric().messages_of(MsgType::kLeaseRenew), 0u);
      EXPECT_EQ(stats.lease_renewals.load(), 0u);
      EXPECT_EQ(stats.writebacks_piggybacked.load(), 0u);
      EXPECT_EQ(stats.lease_recalls.load(), 0u);
      process_->dsm().directory().for_each(
          [&](std::uint64_t, mem::DirEntry& entry) {
            EXPECT_EQ(entry.lease_until, 0);
            EXPECT_EQ(entry.journal_ts, 0);
          });
    } else {
      EXPECT_GT(stats.lease_renewals.load(), 0u);
      EXPECT_EQ(stats.writebacks_piggybacked.load(),
                stats.lease_renewals.load());
    }
    EXPECT_TRUE(process_->dsm().check_invariants());
  }
  EXPECT_EQ(faults[0], faults[1]);
  EXPECT_EQ(snaps[0], snaps[1]);
}

// The acceptance property: across cluster shapes, a node death after the
// working set was journaled (last write older than one lease window) loses
// zero dirty pages, and the recovered memory image equals the fault-free
// run's image.
class LeaseRecoveryProperty : public ::testing::TestWithParam<int> {};

TEST_P(LeaseRecoveryProperty, DeadOwnersJournaledPagesRecoverExactly) {
  Watchdog dog(90);
  const int nodes = GetParam();
  const NodeId victim = static_cast<NodeId>(nodes - 1);
  constexpr std::size_t kPages = 8;
  constexpr VirtNs kLease = 20'000;
  auto pattern = [](std::size_t p) {
    return 0xBEEF0000u + static_cast<std::uint64_t>(p);
  };

  std::array<std::vector<std::uint64_t>, 2> images;
  for (int inject = 0; inject <= 1; ++inject) {
    ClusterConfig config;
    config.num_nodes = nodes;
    Cluster cluster(config);
    ProcessOptions options;
    options.lease_ns = kLease;
    options.prefetch_max_pages = 0;
    options.home_migration = false;
    auto process = cluster.create_process(options);

    GArray<std::uint64_t> arr(*process, kPages * kWordsPerPage, "journal");
    std::atomic<bool> parked{false};
    std::atomic<bool> release{false};
    DexThread writer = process->spawn([&] {
      migrate(victim);
      for (std::size_t p = 0; p < kPages; ++p) {
        arr.set(p * kWordsPerPage, pattern(p));
      }
      // Outlive the lease window, then rewrite the same values: each
      // write renews first, journaling the current (final) frame at the
      // home before the identical store lands.
      vclock::advance(kLease + 1);
      for (std::size_t p = 0; p < kPages; ++p) {
        arr.set(p * kWordsPerPage, pattern(p));
      }
      parked.store(true, std::memory_order_release);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
    while (!parked.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }

    if (inject != 0) cluster.fail_node(victim);
    release.store(true, std::memory_order_release);
    writer.join();
    EXPECT_FALSE(writer.failed());

    auto& failure = process->dsm().failure_stats();
    if (inject != 0) {
      // Every dirty page had a journaled copy: nothing lost.
      EXPECT_EQ(failure.dirty_pages_lost.load(), 0u) << nodes << " nodes";
      EXPECT_EQ(failure.pages_recovered.load(), kPages);
    } else {
      EXPECT_EQ(failure.pages_recovered.load(), 0u);
    }

    images[static_cast<std::size_t>(inject)].clear();
    for (std::size_t p = 0; p < kPages; ++p) {
      images[static_cast<std::size_t>(inject)].push_back(
          arr.get(p * kWordsPerPage));
    }
    EXPECT_TRUE(process->dsm().check_invariants());
  }

  // The recovered image is indistinguishable from the fault-free run.
  EXPECT_EQ(images[0], images[1]);
  for (std::size_t p = 0; p < kPages; ++p) {
    EXPECT_EQ(images[1][p], pattern(p)) << "page " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, LeaseRecoveryProperty,
                         ::testing::Values(2, 3, 4),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Robust futex sweep and lost-thread restart
// ---------------------------------------------------------------------------

TEST(RecoveryTest, BarrierWaiterWithDeadParticipantUnblocks) {
  Watchdog dog(60);
  ClusterConfig config;
  config.num_nodes = 3;
  Cluster cluster(config);
  auto process = cluster.create_process(ProcessOptions{});

  const GAddr word = process->mmap(kPageSize, mem::kProtReadWrite, "barrier");
  process->store<std::uint64_t>(word, 0);

  // A waits for a wake that only B would deliver; B dies with its node.
  std::atomic<bool> woke{false};
  DexThread a = process->spawn([&] {
    process->futex_wait(word, 0);
    woke.store(true, std::memory_order_release);
  });
  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  GArray<std::uint64_t> touch(*process, kWordsPerPage, "touch");
  DexThread b = process->spawn([&] {
    migrate(2);
    touch.set(0, 7);
    parked.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    touch.set(0, 8);  // faults against the fenced fabric and unwinds
  });

  while (process->futex_table().total_waits() == 0 ||
         !parked.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(woke.load(std::memory_order_acquire));

  // Node death sweeps every waiter with owner-died status: A unblocks even
  // though its waker died without ever calling wake.
  cluster.fail_node(2);
  a.join();
  EXPECT_TRUE(woke.load(std::memory_order_acquire));
  EXPECT_FALSE(a.failed());

  release.store(true, std::memory_order_release);
  b.join();
  EXPECT_TRUE(b.failed());
}

TEST(RecoveryTest, LostThreadRestartsAtOriginAndCompletes) {
  Watchdog dog(60);
  ClusterConfig config;
  config.num_nodes = 3;
  Cluster cluster(config);
  ProcessOptions options;
  options.restart_lost_threads = true;
  auto process = cluster.create_process(options);

  constexpr std::size_t kWords = 2 * kWordsPerPage;
  auto expected = [](std::size_t i) {
    return 1000003u * (static_cast<std::uint64_t>(i) + 1);
  };
  GArray<std::uint64_t> arr(*process, kWords, "restart");
  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  std::atomic<int> attempts{0};

  // The entry closure is idempotent and re-runnable: the restarted thread
  // re-executes it from the top at the origin (the node check keeps it
  // from re-migrating onto the corpse).
  DexThread worker = process->spawn([&] {
    attempts.fetch_add(1, std::memory_order_relaxed);
    if (!cluster.node_dead(2)) migrate(2);
    for (std::size_t i = 0; i < kWords / 2; ++i) arr.set(i, expected(i));
    parked.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    for (std::size_t i = kWords / 2; i < kWords; ++i) arr.set(i, expected(i));
  });
  while (!parked.load(std::memory_order_acquire)) std::this_thread::yield();

  cluster.fail_node(2);
  release.store(true, std::memory_order_release);
  worker.join();

  // The thread was lost, restarted once at the origin, and finished the
  // whole job there — the app run completes with correct output.
  EXPECT_FALSE(worker.failed());
  EXPECT_EQ(attempts.load(), 2);
  auto& failure = process->dsm().failure_stats();
  EXPECT_EQ(failure.threads_restarted.load(), 1u);
  EXPECT_EQ(failure.threads_lost.load(), 0u);
  for (std::size_t i = 0; i < kWords; ++i) {
    ASSERT_EQ(arr.get(i), expected(i)) << "slot " << i;
  }
  EXPECT_TRUE(process->dsm().check_invariants());
}

TEST(RecoveryTest, LostThreadRestartsInPlaceWhenItsNodeSurvives) {
  Watchdog dog(60);
  ClusterConfig config;
  config.num_nodes = 3;
  // Chaos schedule: the first write-fault RPC issued from node 1 loses
  // every wire traversal until the retry budget (4 attempts) is spent,
  // then the rule disarms. The thread dies to RpcError while its node is
  // perfectly healthy — the restart must happen *in place* at node 1, not
  // back at the origin.
  net::FaultRule rule;
  rule.type = MsgType::kPageRequestWrite;
  rule.src = 1;
  rule.drop_prob = 1.0;
  rule.max_faults = 4;
  config.faults.seed = 17;
  config.faults.rules.push_back(rule);
  Cluster cluster(config);
  ProcessOptions options;
  options.restart_lost_threads = true;
  auto process = cluster.create_process(options);

  constexpr std::size_t kWords = 2 * kWordsPerPage;
  auto expected = [](std::size_t i) {
    return 7000007u * (static_cast<std::uint64_t>(i) + 1);
  };
  GArray<std::uint64_t> arr(*process, kWords, "restart_in_place");
  std::atomic<int> attempts{0};
  std::array<NodeId, 2> placement_at_entry = {kInvalidNode, kInvalidNode};

  DexThread worker = process->spawn([&] {
    const int attempt = attempts.fetch_add(1, std::memory_order_relaxed);
    if (attempt < 2) placement_at_entry[static_cast<std::size_t>(attempt)] =
        current_node();
    migrate(1);
    for (std::size_t i = 0; i < kWords; ++i) arr.set(i, expected(i));
  });
  worker.join();

  // Attempt 1 entered at the origin and died mid-write on node 1; attempt
  // 2 entered *already on node 1* (restart at last placement — its node
  // never failed), the chaos rule had disarmed, and the job completed.
  EXPECT_FALSE(worker.failed());
  EXPECT_EQ(attempts.load(), 2);
  EXPECT_EQ(placement_at_entry[0], 0);
  EXPECT_EQ(placement_at_entry[1], 1);
  auto& failure = process->dsm().failure_stats();
  EXPECT_EQ(failure.threads_restarted.load(), 1u);
  EXPECT_EQ(failure.threads_lost.load(), 0u);
  EXPECT_FALSE(cluster.node_dead(1));
  for (std::size_t i = 0; i < kWords; ++i) {
    ASSERT_EQ(arr.get(i), expected(i)) << "slot " << i;
  }
  EXPECT_TRUE(process->dsm().check_invariants());
}

// ---------------------------------------------------------------------------
// Origin failover (ProcessOptions::origin_failover)
// ---------------------------------------------------------------------------

// Knob off is the seed failure model with one improvement: origin death is
// reported as a typed error and the process degrades instead of the old
// hard abort, so chaos soaks keep running and keep their statistics.
TEST(OriginFailoverTest, OriginDeathWithKnobOffDegradesInsteadOfAborting) {
  Watchdog dog(60);
  ClusterConfig config;
  config.num_nodes = 3;
  Cluster cluster(config);
  auto process = cluster.create_process(ProcessOptions{});  // knob off

  GArray<std::uint64_t> arr(*process, kWordsPerPage, "knob_off");
  DexThread worker = process->spawn([&] {
    migrate(1);
    arr.set(0, 99);
    migrate_back();
  });
  worker.join();
  EXPECT_FALSE(worker.failed());

  // The unsupported death: no deputy exists, so nothing can promote. The
  // process reports mem::OriginDeadError internally and stays alive.
  cluster.fail_node(0);
  EXPECT_EQ(process->origin(), NodeId{0});
  auto& failure = process->dsm().failure_stats();
  EXPECT_EQ(failure.origin_failovers.load(), 0u);
  EXPECT_EQ(failure.node_failures.load(), 1u);
  EXPECT_EQ(process->dsm().stats().dir_mutations_replicated.load(), 0u);
}

// The tentpole acceptance scenario: a double failure. The writer's node
// dies first (classic journal recovery installs the leased images at the
// origin), then the origin itself dies — taking the journal frames with
// it. The deputy promotes, rebuilds from its replicated directory
// metadata, and every journal-covered page survives with the image equal
// to the fault-free run's.
TEST(OriginFailoverTest, OriginDeathPromotesDeputyAndRecoversJournaledPages) {
  Watchdog dog(90);
  constexpr int kNodes = 4;
  const NodeId victim = 3;  // the writer's node; deputy of origin 0 is 1
  constexpr std::size_t kPages = 8;
  constexpr VirtNs kLease = 20'000;
  auto pattern = [](std::size_t p) {
    return 0xFA170000u + static_cast<std::uint64_t>(p);
  };

  std::array<std::vector<std::uint64_t>, 2> images;
  for (int inject = 0; inject <= 1; ++inject) {
    ClusterConfig config;
    config.num_nodes = kNodes;
    Cluster cluster(config);
    ProcessOptions options;
    options.origin_failover = true;
    options.lease_ns = kLease;
    options.prefetch_max_pages = 0;
    options.home_migration = false;
    auto process = cluster.create_process(options);

    GArray<std::uint64_t> arr(*process, kPages * kWordsPerPage, "failover");
    std::atomic<bool> parked{false};
    std::atomic<bool> release{false};
    DexThread writer = process->spawn([&] {
      migrate(victim);
      for (std::size_t p = 0; p < kPages; ++p) {
        arr.set(p * kWordsPerPage, pattern(p));
      }
      // Outlive the lease, then rewrite: each write renews its lease
      // first, journaling the final image at the home (the origin) — and,
      // with the knob on, replicating that journal image to the deputy.
      vclock::advance(kLease + 1);
      for (std::size_t p = 0; p < kPages; ++p) {
        arr.set(p * kWordsPerPage, pattern(p));
      }
      parked.store(true, std::memory_order_release);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
    while (!parked.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // Push the captured journal records to the deputy before any failure.
    process->dsm().flush_replication();

    if (inject != 0) {
      // First death: the dirty owner. Classic journal recovery installs
      // the leased images into the origin's frames.
      cluster.fail_node(victim);
    }
    release.store(true, std::memory_order_release);
    writer.join();
    EXPECT_FALSE(writer.failed());

    auto& failure = process->dsm().failure_stats();
    auto& stats = process->dsm().stats();
    if (inject != 0) {
      EXPECT_EQ(failure.pages_recovered.load(), kPages);
      EXPECT_EQ(failure.dirty_pages_lost.load(), 0u);

      // Second death: the origin itself — its directory and journal
      // frames die with it. The deputy self-promotes and serves.
      cluster.fail_node(0);
      EXPECT_EQ(failure.origin_failovers.load(), 1u);
      EXPECT_EQ(process->origin(), NodeId{1});
      EXPECT_EQ(failure.dirty_pages_lost.load(), 0u);
      // Every journal-covered page was rescued from the deputy's replica.
      EXPECT_EQ(stats.replica_journal_pages.load(), kPages);

      // The promoted deputy serves directory lookups: a fresh thread
      // (spawned at the *current* origin) reads every page through it.
      std::vector<std::uint64_t> seen(kPages, 0);
      DexThread checker = process->spawn([&] {
        for (std::size_t p = 0; p < kPages; ++p) {
          seen[p] = arr.get(p * kWordsPerPage);
        }
      });
      checker.join();
      EXPECT_FALSE(checker.failed());
      images[1] = seen;
    } else {
      EXPECT_EQ(failure.origin_failovers.load(), 0u);
      images[0].clear();
      for (std::size_t p = 0; p < kPages; ++p) {
        images[0].push_back(arr.get(p * kWordsPerPage));
      }
    }
    EXPECT_TRUE(process->dsm().check_invariants());
  }

  // Image equality vs the fault-free run: the double failure is invisible
  // to the surviving readers.
  EXPECT_EQ(images[0], images[1]);
  for (std::size_t p = 0; p < kPages; ++p) {
    EXPECT_EQ(images[1][p], pattern(p)) << "page " << p;
  }
}

// Coordinator succession under chaos: node 0 — membership coordinator AND
// origin — is silently killed mid-soak while a lossy wire drops
// heartbeats. Across 8 chaos seeds, every survivor adopts the successor's
// epoch-stamped view (zero split-brain) and the deputy is promoted.
TEST(OriginFailoverTest, CoordinatorDeathElectsSuccessorWithoutSplitBrain) {
  Watchdog dog(120);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    ClusterConfig config;
    config.num_nodes = 4;
    config.detector.enabled = true;
    config.detector.succession = true;
    net::FaultRule lossy;
    lossy.type = MsgType::kHeartbeat;
    lossy.drop_prob = 0.15;  // lossy but far from 7 consecutive silences
    config.faults.seed = seed;
    config.faults.rules.push_back(lossy);
    Cluster cluster(config);
    ProcessOptions options;
    options.origin_failover = true;
    auto process = cluster.create_process(options);

    // Warm-up soak: heartbeat history accrues through the drops.
    for (int r = 0; r < 10; ++r) cluster.run_membership_round();
    ASSERT_EQ(cluster.coordinator(), NodeId{0}) << "seed " << seed;

    // Kill the coordinator silently: only its missing heartbeats tell.
    cluster.fabric().injector().isolate_node(0);
    int rounds = 0;
    while (cluster.member_state(0) != MemberState::kDead && rounds < 24) {
      cluster.run_membership_round();
      ++rounds;
    }
    ASSERT_EQ(cluster.member_state(0), MemberState::kDead)
        << "seed " << seed;
    // Drop-inflated inter-arrival history stretches the phi=3 horizon
    // past the clean ~8 rounds (a doubled interval in the 16-sample
    // window scales the mean); still bounded.
    EXPECT_LE(rounds, 20) << "seed " << seed;

    // The lowest-id survivor self-elected...
    EXPECT_EQ(cluster.coordinator(), NodeId{1}) << "seed " << seed;
    // ...and the origin role failed over with it.
    EXPECT_EQ(process->origin(), NodeId{1}) << "seed " << seed;
    EXPECT_EQ(process->dsm().failure_stats().origin_failovers.load(), 1u)
        << "seed " << seed;

    // Zero split-brain: all survivors hold the identical adopted view.
    const std::uint64_t epoch = cluster.membership_epoch();
    for (NodeId n : {NodeId{1}, NodeId{2}, NodeId{3}}) {
      EXPECT_EQ(cluster.view_epoch(n), epoch) << "seed " << seed << " n" << n;
      EXPECT_EQ(cluster.view_dead_mask(n), std::uint64_t{1})
          << "seed " << seed << " n" << n;
    }

    // The successor coordinates cleanly: no cascade among survivors.
    for (int r = 0; r < 4; ++r) EXPECT_EQ(cluster.run_membership_round(), 0);
    EXPECT_EQ(cluster.coordinator(), NodeId{1}) << "seed " << seed;
  }
}

// Gray failure: the origin's *outbound* links die while inbound traffic
// still reaches it — it keeps serving requests but its heartbeats vanish.
// The detector must not be fooled: the origin is declared dead and
// succeeded exactly as if it had crashed.
TEST(OriginFailoverTest, GrayFailedOriginIsDeclaredDeadAndSucceeded) {
  Watchdog dog(90);
  ClusterConfig config;
  config.num_nodes = 4;
  config.detector.enabled = true;
  config.detector.succession = true;
  Cluster cluster(config);
  ProcessOptions options;
  options.origin_failover = true;
  auto process = cluster.create_process(options);

  for (int r = 0; r < 8; ++r) cluster.run_membership_round();

  // One-way cut: node 0 can hear but cannot speak.
  cluster.fabric().injector().isolate_outbound(0);
  EXPECT_TRUE(cluster.fabric().injector().outbound_cut(0));
  EXPECT_FALSE(cluster.fabric().injector().inbound_cut(0));
  EXPECT_FALSE(cluster.fabric().injector().node_isolated(0));

  int rounds = 0;
  while (cluster.member_state(0) != MemberState::kDead && rounds < 16) {
    cluster.run_membership_round();
    ++rounds;
  }
  // Indistinguishable from a crash to the accrual detector: declared dead
  // within the same bounded horizon and succeeded by the standby.
  ASSERT_EQ(cluster.member_state(0), MemberState::kDead);
  EXPECT_LE(rounds, 12);
  EXPECT_TRUE(cluster.node_dead(0));
  EXPECT_EQ(cluster.coordinator(), NodeId{1});
  EXPECT_EQ(process->origin(), NodeId{1});
  EXPECT_EQ(process->dsm().failure_stats().origin_failovers.load(), 1u);
  const std::uint64_t epoch = cluster.membership_epoch();
  for (NodeId n : {NodeId{1}, NodeId{2}, NodeId{3}}) {
    EXPECT_EQ(cluster.view_epoch(n), epoch) << n;
    EXPECT_EQ((cluster.view_dead_mask(n) >> 0) & 1u, 1u) << n;
  }
}

TEST(RecoveryTest, HealThenRemigrateRecreatesTheRemoteWorker) {
  Watchdog dog(60);
  ClusterConfig config;
  config.num_nodes = 3;
  Cluster cluster(config);
  auto process = cluster.create_process(ProcessOptions{});

  GArray<std::uint64_t> arr(*process, kWordsPerPage, "heal");
  DexThread first = process->spawn([&] {
    migrate(2);
    arr.set(0, 11);
    migrate_back();
  });
  first.join();
  EXPECT_FALSE(first.failed());
  EXPECT_TRUE(process->remote_worker_exists(2));
  // Read at the origin: downgrades the page to shared so the home holds a
  // valid copy and the upcoming death loses no data (no lease configured).
  EXPECT_EQ(arr.get(0), 11u);

  cluster.fail_node(2);
  // The worker died with its node; the record must reflect that.
  EXPECT_FALSE(process->remote_worker_exists(2));
  cluster.heal_node(2);
  EXPECT_FALSE(process->remote_worker_exists(2));

  // The next migration rebuilds the worker from scratch and refaults the
  // (reclaimed) page cleanly.
  process->clear_migration_log();
  DexThread second = process->spawn([&] {
    migrate(2);
    EXPECT_EQ(arr.get(0), 11u);
    arr.set(0, 12);
    migrate_back();
  });
  second.join();
  EXPECT_FALSE(second.failed());
  EXPECT_TRUE(process->remote_worker_exists(2));
  const auto log = process->migration_log();
  ASSERT_FALSE(log.empty());
  EXPECT_TRUE(log.front().first_on_node);
  EXPECT_GT(log.front().remote_worker_ns, 0);
  EXPECT_EQ(arr.get(0), 12u);
  EXPECT_TRUE(process->dsm().check_invariants());
}

}  // namespace
}  // namespace dex
