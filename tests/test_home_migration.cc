// Adaptive home-migration tests: a page's directory entry follows its
// dominant faulter (checkpoint-style mprotect churn keeps re-faulting one
// node until the consecutive-run threshold trips), hint-directed requests
// then resolve at the new home without touching the origin, stale hints
// bounce via authoritative kWrongHome redirects, and the ablation knob
// restores the fixed-origin protocol with zero migration traffic.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>

#include "core/api.h"
#include "mem/directory.h"
#include "prof/trace.h"

namespace dex {
namespace {

using net::MsgType;

constexpr std::size_t kWordsPerPage = kPageSize / sizeof(std::uint64_t);

/// (version, exclusive_owner, materialized) per page. Migration moves the
/// serialization point, never the data path outcome: twin runs agree.
using DirSnapshot =
    std::map<std::uint64_t, std::tuple<std::uint64_t, NodeId, bool>>;

DirSnapshot snapshot_directory(Process& process) {
  DirSnapshot snap;
  process.dsm().directory().for_each(
      [&](std::uint64_t page_idx, mem::DirEntry& entry) {
        snap[page_idx] = {entry.version, entry.exclusive_owner,
                          entry.materialized};
      });
  return snap;
}

class HomeMigrationTest : public ::testing::Test {
 protected:
  void start(int num_nodes, bool home_migration, int run = 3) {
    process_.reset();
    cluster_.reset();
    ClusterConfig config;
    config.num_nodes = num_nodes;
    cluster_ = std::make_unique<Cluster>(config);
    ProcessOptions options;
    options.home_migration = home_migration;
    options.home_migrate_run = run;
    options.prefetch_max_pages = 0;  // deterministic one-fault-per-page
    process_ = cluster_->create_process(options);
  }

  /// The checkpoint pattern home migration exists for: the origin keeps
  /// downgrading the range to read-only (snapshotting it) and restoring
  /// write access, while one remote node `faulter` rewrites every page.
  /// Each round re-faults every page at the directory with `faulter` as
  /// the only requester, so the consecutive-run counter climbs and the
  /// entries hand themselves off.
  void churn(GArray<std::uint64_t>& arr, std::size_t pages, int rounds,
             NodeId faulter) {
    DexThread worker = process_->spawn([&, pages, rounds, faulter] {
      migrate(faulter);
      for (int r = 1; r <= rounds; ++r) {
        process_->mprotect(arr.addr(0), pages * kPageSize, mem::kProtRead);
        process_->mprotect(arr.addr(0), pages * kPageSize,
                           mem::kProtReadWrite);
        for (std::size_t p = 0; p < pages; ++p) {
          arr.set(p * kWordsPerPage, static_cast<std::uint64_t>(r) * 100 + p);
        }
      }
      migrate_back();
    });
    worker.join();
    EXPECT_FALSE(worker.failed());
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Process> process_;
};

TEST_F(HomeMigrationTest, DominantFaulterTakesTheHome) {
  start(/*num_nodes=*/2, /*home_migration=*/true);
  process_->trace().enable();
  GArray<std::uint64_t> arr(*process_, kWordsPerPage, "hot");
  arr.set(0, 0);
  ASSERT_EQ(process_->dsm().home_of_page(arr.addr(0)), 0);

  churn(arr, /*pages=*/1, /*rounds=*/5, /*faulter=*/1);

  auto& stats = process_->dsm().stats();
  EXPECT_EQ(process_->dsm().home_of_page(arr.addr(0)), 1);
  EXPECT_EQ(stats.home_migrations.load(), 1u);
  EXPECT_GE(cluster_->fabric().messages_of(MsgType::kHomeMigrate), 1u);
  EXPECT_EQ(arr.get(0), 500u);
  bool traced = false;
  for (const auto& e : process_->trace().snapshot()) {
    if (e.kind == prof::FaultKind::kHomeMigrate) traced = true;
  }
  EXPECT_TRUE(traced);
  EXPECT_TRUE(process_->dsm().check_invariants());
}

// The acceptance criterion: once the entries live at the faulter, its
// faults are intra-node transactions (no wire on the critical path) — mean
// fault latency must drop >= 2x vs the fixed-origin run of the identical
// workload, with hints steering >= 90% of remote faults straight to the
// serving home.
TEST_F(HomeMigrationTest, MigratedHomeCutsSteadyStateFaultLatency) {
  constexpr std::size_t kPages = 8;
  constexpr int kRounds = 30;
  double mean_ns[2] = {0, 0};
  for (int on = 0; on <= 1; ++on) {
    start(/*num_nodes=*/2, /*home_migration=*/on != 0);
    GArray<std::uint64_t> arr(*process_, kPages * kWordsPerPage, "steady");
    for (std::size_t p = 0; p < kPages; ++p) arr.set(p * kWordsPerPage, p);

    churn(arr, kPages, kRounds, /*faulter=*/1);

    auto& stats = process_->dsm().stats();
    mean_ns[on] = stats.fault_latency.mean();
    if (on != 0) {
      EXPECT_EQ(stats.home_migrations.load(), kPages);
      EXPECT_EQ(stats.home_chases.load(), 0u);
      const double hits = static_cast<double>(stats.home_hint_hits.load());
      const double remote = static_cast<double>(stats.remote_faults.load());
      ASSERT_GT(remote, 0.0);
      EXPECT_GE(hits / remote, 0.9);
    } else {
      EXPECT_EQ(stats.home_migrations.load(), 0u);
    }
    EXPECT_TRUE(process_->dsm().check_invariants());
  }
  ASSERT_GT(mean_ns[1], 0.0);
  const double speedup = mean_ns[0] / mean_ns[1];
  EXPECT_GE(speedup, 2.0) << "fixed-origin mean " << mean_ns[0]
                          << " ns vs migrated mean " << mean_ns[1] << " ns";
}

TEST_F(HomeMigrationTest, AblationOffPinsEveryEntryAtTheOrigin) {
  // Twin runs of the same deterministic workload. The off-run must be the
  // fixed-origin protocol to the message: zero kHomeMigrate traffic, zero
  // redirect/hand-off counters, every entry homed at the origin. And since
  // migration moves only the serialization point, both runs converge to
  // the identical data and (version, owner) directory state.
  constexpr std::size_t kPages = 4;
  constexpr int kRounds = 6;
  DirSnapshot snaps[2];
  std::uint64_t faults[2] = {0, 0};
  for (int on = 0; on <= 1; ++on) {
    start(/*num_nodes=*/2, /*home_migration=*/on != 0);
    GArray<std::uint64_t> arr(*process_, kPages * kWordsPerPage, "ablation");
    for (std::size_t p = 0; p < kPages; ++p) arr.set(p * kWordsPerPage, p);
    churn(arr, kPages, kRounds, /*faulter=*/1);
    for (std::size_t p = 0; p < kPages; ++p) {
      EXPECT_EQ(arr.get(p * kWordsPerPage),
                static_cast<std::uint64_t>(kRounds) * 100 + p);
    }
    auto& stats = process_->dsm().stats();
    faults[on] = stats.total_faults();
    snaps[on] = snapshot_directory(*process_);
    if (on == 0) {
      EXPECT_EQ(cluster_->fabric().messages_of(MsgType::kHomeMigrate), 0u);
      EXPECT_EQ(stats.home_migrations.load(), 0u);
      EXPECT_EQ(stats.home_hint_hits.load(), 0u);
      EXPECT_EQ(stats.home_chases.load(), 0u);
      EXPECT_EQ(stats.wrong_home_bounces.load(), 0u);
      process_->dsm().directory().for_each(
          [&](std::uint64_t, mem::DirEntry& entry) {
            EXPECT_EQ(entry.home, kInvalidNode);
            EXPECT_EQ(entry.home_epoch, 0u);
          });
    }
    EXPECT_TRUE(process_->dsm().check_invariants());
  }
  EXPECT_EQ(faults[0], faults[1]);
  EXPECT_EQ(snaps[0], snaps[1]);
}

TEST_F(HomeMigrationTest, StaleRequesterIsRedirectedByTheOrigin) {
  start(/*num_nodes=*/3, /*home_migration=*/true);
  GArray<std::uint64_t> arr(*process_, kWordsPerPage, "redirect");
  arr.set(0, 3);
  churn(arr, /*pages=*/1, /*rounds=*/4, /*faulter=*/1);
  ASSERT_EQ(process_->dsm().home_of_page(arr.addr(0)), 1);

  // Node 2 knows nothing about the hand-off: its first fault defaults to
  // the origin, which answers with an authoritative kWrongHome redirect;
  // the retry lands at node 1 and the learned hint steers the follow-up
  // write there directly.
  auto& stats = process_->dsm().stats();
  const std::uint64_t hits_before = stats.home_hint_hits.load();
  DexThread late = process_->spawn([&] {
    migrate(2);
    EXPECT_EQ(arr.get(0), 400u);
    arr.set(0, 77);
    migrate_back();
  });
  late.join();
  EXPECT_FALSE(late.failed());

  EXPECT_EQ(stats.wrong_home_bounces.load(), 1u);
  EXPECT_EQ(stats.home_chases.load(), 1u);
  // The read bounced once; the write then hit the learned hint.
  EXPECT_GE(stats.home_hint_hits.load(), hits_before + 1);
  EXPECT_EQ(arr.get(0), 77u);
  EXPECT_TRUE(process_->dsm().check_invariants());
}

TEST_F(HomeMigrationTest, MunmapFencesHintsAndResetsTheHome) {
  start(/*num_nodes=*/2, /*home_migration=*/true);
  GArray<std::uint64_t> arr(*process_, kWordsPerPage, "unmap");
  arr.set(0, 1);
  churn(arr, /*pages=*/1, /*rounds=*/4, /*faulter=*/1);
  const GAddr old_base = arr.addr(0);
  ASSERT_EQ(process_->dsm().home_of_page(old_base), 1);

  ASSERT_TRUE(process_->munmap(old_base, kPageSize));
  // Remap the same range: the recycled entry must be back at the origin
  // with all locality state wiped, and node 1's hint (which pointed at
  // itself) must have been invalidated by the unmap fence.
  const GAddr base = process_->mmap(kPageSize, mem::kProtReadWrite, "fresh",
                                    old_base);
  ASSERT_EQ(base, old_base);
  EXPECT_EQ(process_->dsm().home_of_page(base), 0);
  EXPECT_FALSE(process_->dsm().home_cache(1).lookup(base).valid);

  DexThread reader = process_->spawn([&] {
    migrate(1);
    EXPECT_EQ(process_->load<std::uint64_t>(base), 0u);  // fresh zero page
    migrate_back();
  });
  reader.join();
  EXPECT_FALSE(reader.failed());
  EXPECT_TRUE(process_->dsm().check_invariants());
}

}  // namespace
}  // namespace dex
