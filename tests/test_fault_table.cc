// Leader-follower fault coalescing (§III-C) — including the regression for
// the completed-entry livelock: joiners that find a completed round must
// lead a fresh one, never absorb the stale completion.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mem/fault_table.h"

namespace dex::mem {
namespace {

TEST(FaultTable, FirstJoinerLeads) {
  FaultTable table;
  const auto join = table.join(0x1000, Access::kRead);
  EXPECT_TRUE(join.is_leader);
  ASSERT_NE(join.token, nullptr);
  EXPECT_EQ(table.in_flight(), 1u);
  table.complete(join, 0x1000, Access::kRead, 42);
  EXPECT_EQ(table.in_flight(), 0u);
}

TEST(FaultTable, DifferentAccessTypesDoNotCoalesce) {
  FaultTable table;
  const auto reader = table.join(0x1000, Access::kRead);
  const auto writer = table.join(0x1000, Access::kWrite);
  EXPECT_TRUE(reader.is_leader);
  EXPECT_TRUE(writer.is_leader);
  EXPECT_EQ(table.in_flight(), 2u);
  table.complete(reader, 0x1000, Access::kRead, 1);
  table.complete(writer, 0x1000, Access::kWrite, 2);
}

TEST(FaultTable, DifferentPagesDoNotCoalesce) {
  FaultTable table;
  const auto a = table.join(0x1000, Access::kRead);
  const auto b = table.join(0x2000, Access::kRead);
  EXPECT_TRUE(a.is_leader);
  EXPECT_TRUE(b.is_leader);
  table.complete(a, 0x1000, Access::kRead, 1);
  table.complete(b, 0x2000, Access::kRead, 1);
}

TEST(FaultTable, FollowersBlockUntilLeaderCompletes) {
  FaultTable table;
  const auto lead = table.join(0x3000, Access::kWrite);
  ASSERT_TRUE(lead.is_leader);

  std::atomic<int> finished{0};
  std::vector<std::thread> followers;
  for (int i = 0; i < 4; ++i) {
    followers.emplace_back([&] {
      const auto join = table.join(0x3000, Access::kWrite);
      EXPECT_FALSE(join.is_leader);
      EXPECT_EQ(join.completion_ts, 777u);
      finished.fetch_add(1);
    });
  }
  while (table.coalesced_count() < 4) std::this_thread::yield();
  EXPECT_EQ(finished.load(), 0);
  table.complete(lead, 0x3000, Access::kWrite, 777);
  for (auto& t : followers) t.join();
  EXPECT_EQ(finished.load(), 4);
  EXPECT_EQ(table.coalesced_count(), 4u);
}

TEST(FaultTable, JoinAfterCompletionLeadsFreshRound) {
  // Regression: a completed entry must not absorb new joiners. Under
  // ping-pong contention that spins forever without re-running the
  // protocol.
  FaultTable table;
  const auto first = table.join(0x4000, Access::kWrite);
  table.complete(first, 0x4000, Access::kWrite, 10);

  const auto second = table.join(0x4000, Access::kWrite);
  EXPECT_TRUE(second.is_leader) << "stale completed round was joined";
  EXPECT_NE(second.token, first.token);
  table.complete(second, 0x4000, Access::kWrite, 20);
}

TEST(FaultTable, CompleteOnlyRetiresOwnRound) {
  FaultTable table;
  const auto old_round = table.join(0x5000, Access::kRead);
  table.complete(old_round, 0x5000, Access::kRead, 1);
  const auto new_round = table.join(0x5000, Access::kRead);
  ASSERT_TRUE(new_round.is_leader);
  // A late duplicate complete of the old round must not remove the new one.
  table.complete(old_round, 0x5000, Access::kRead, 1);
  EXPECT_EQ(table.in_flight(), 1u);
  table.complete(new_round, 0x5000, Access::kRead, 2);
  EXPECT_EQ(table.in_flight(), 0u);
}

TEST(FaultTable, ConcurrentChurnElectsExactlyOneLeaderPerRound) {
  FaultTable table;
  constexpr int kThreads = 8;
  constexpr int kRounds = 500;
  std::atomic<int> leaders{0};
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        const auto join = table.join(0x6000, Access::kWrite);
        total.fetch_add(1);
        if (join.is_leader) {
          leaders.fetch_add(1);
          table.complete(join, 0x6000, Access::kWrite,
                         static_cast<VirtNs>(r));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), kThreads * kRounds);
  EXPECT_GT(leaders.load(), 0);
  // Every follower was woken by some leader's completion.
  EXPECT_EQ(table.in_flight(), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(total.load() - leaders.load()),
            table.coalesced_count());
}

}  // namespace
}  // namespace dex::mem
