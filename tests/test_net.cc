// Messaging-layer tests (§III-E): buffer-pool lifecycle, RDMA sink, RPC
// dispatch, cost accounting, bulk paths, counters.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/virtual_clock.h"
#include "net/buffer_pool.h"
#include "net/fabric.h"
#include "net/rdma_sink.h"

namespace dex::net {
namespace {

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

TEST(BufferPool, AcquireReleaseCycles) {
  BufferPool pool(4, 128);
  EXPECT_EQ(pool.available(), 4u);
  {
    PooledBuffer a = pool.acquire();
    PooledBuffer b = pool.acquire();
    EXPECT_TRUE(a.valid());
    EXPECT_EQ(pool.available(), 2u);
    a.release();
    EXPECT_EQ(pool.available(), 3u);
  }  // b released by RAII
  EXPECT_EQ(pool.available(), 4u);
  EXPECT_EQ(pool.total_acquired(), 2u);
}

TEST(BufferPool, TryAcquireFailsWhenExhausted) {
  BufferPool pool(2, 64);
  PooledBuffer a = pool.acquire();
  PooledBuffer b = pool.acquire();
  PooledBuffer c = pool.try_acquire();
  EXPECT_FALSE(c.valid());
}

TEST(BufferPool, BlockingAcquireWakesOnRelease) {
  BufferPool pool(1, 64);
  PooledBuffer held = pool.acquire();
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    bool stalled = false;
    PooledBuffer buf = pool.acquire(&stalled);
    EXPECT_TRUE(stalled);
    got = true;
  });
  // Give the waiter time to block, then release.
  while (pool.stall_count() == 0) std::this_thread::yield();
  EXPECT_FALSE(got.load());
  held.release();
  waiter.join();
  EXPECT_TRUE(got.load());
  EXPECT_EQ(pool.stall_count(), 1u);
}

TEST(BufferPool, MoveTransfersOwnership) {
  BufferPool pool(1, 64);
  PooledBuffer a = pool.acquire();
  PooledBuffer b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  b.release();
  EXPECT_EQ(pool.available(), 1u);
}

TEST(BufferPool, ConcurrentChurnNeverLosesSlots) {
  BufferPool pool(8, 64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < 2000; ++i) {
        PooledBuffer buf = pool.acquire();
        buf.data()[0] = static_cast<std::uint8_t>(i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.available(), 8u);
  EXPECT_EQ(pool.total_acquired(), 16000u);
}

// ---------------------------------------------------------------------------
// RdmaSink
// ---------------------------------------------------------------------------

TEST(RdmaSink, CopyOutAndReleaseRecycles) {
  RdmaSink sink(2, 4096);
  SinkBuffer chunk = sink.reserve();
  ASSERT_TRUE(chunk.valid());
  for (int i = 0; i < 4096; ++i) {
    chunk.data()[i] = static_cast<std::uint8_t>(i & 0xff);
  }
  std::vector<std::uint8_t> out(4096);
  EXPECT_EQ(chunk.copy_out_and_release(out.data(), out.size()), 4096u);
  EXPECT_FALSE(chunk.valid());
  EXPECT_EQ(out[255], 255u);
  EXPECT_EQ(sink.available(), 2u);
}

TEST(RdmaSink, ReserveBlocksUntilRelease) {
  RdmaSink sink(1, 4096);
  SinkBuffer held = sink.reserve();
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    SinkBuffer chunk = sink.reserve();
    got = true;
  });
  while (sink.stall_count() == 0) std::this_thread::yield();
  EXPECT_FALSE(got.load());
  held.release();
  waiter.join();
  EXPECT_TRUE(got.load());
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : fabric_(make_options()) {}
  static FabricOptions make_options() {
    FabricOptions options;
    options.num_nodes = 3;
    return options;
  }
  Fabric fabric_;
};

TEST_F(FabricTest, CallDispatchesToHandlerAndReturnsReply) {
  fabric_.register_handler(MsgType::kDelegateFutex, [](const Message& msg) {
    Message reply;
    reply.type = MsgType::kDelegateFutex;
    const auto v = msg.payload_as<std::uint64_t>();
    reply.set_payload(v * 2);
    return reply;
  });
  Message msg;
  msg.type = MsgType::kDelegateFutex;
  msg.dst = 2;
  msg.set_payload(std::uint64_t{21});
  const Message reply = fabric_.call(0, msg);
  EXPECT_EQ(reply.payload_as<std::uint64_t>(), 42u);
  EXPECT_EQ(reply.src, 2);
  EXPECT_EQ(reply.dst, 0);
  EXPECT_EQ(fabric_.messages_of(MsgType::kDelegateFutex), 1u);
}

TEST_F(FabricTest, CrossNodeCallChargesVirtualTime) {
  fabric_.register_handler(MsgType::kVmaUpdate, [](const Message&) {
    Message reply;
    reply.type = MsgType::kVmaUpdate;
    return reply;
  });
  VirtualClock clock;
  ScopedClockBinding bind(&clock);

  Message msg;
  msg.type = MsgType::kVmaUpdate;
  msg.dst = 1;
  fabric_.call(0, msg);
  const VirtNs cross = clock.now();
  EXPECT_GT(cross, 2 * fabric_.cost().verb_oneway_ns);

  clock.reset();
  msg.dst = 0;
  fabric_.call(0, msg);  // intra-node: wire short-circuited
  EXPECT_LT(clock.now(), cross / 4);
}

TEST_F(FabricTest, BulkReplyTakesRdmaSinkPath) {
  fabric_.register_handler(MsgType::kPageGrant, [](const Message&) {
    Message reply;
    reply.type = MsgType::kPageGrant;
    reply.payload.assign(kPageSize, 0xab);
    return reply;
  });
  Message msg;
  msg.type = MsgType::kPageGrant;
  msg.dst = 1;
  const auto rdma_before = fabric_.total_rdma_ops();
  const Message reply = fabric_.call(0, msg);
  EXPECT_EQ(reply.payload.size(), kPageSize);
  EXPECT_EQ(reply.payload[100], 0xab);
  EXPECT_EQ(fabric_.total_rdma_ops(), rdma_before + 1);
}

TEST_F(FabricTest, BulkTransferMovesBytesAndCharges) {
  std::vector<std::uint8_t> src(kPageSize, 0x5c), dst(kPageSize, 0);
  VirtualClock clock;
  ScopedClockBinding bind(&clock);
  const VirtNs cost = fabric_.bulk_transfer(0, 2, src.data(), src.size(),
                                            dst.data());
  EXPECT_EQ(dst, src);
  EXPECT_GT(cost, 0u);
  EXPECT_EQ(clock.now(), cost);
}

TEST_F(FabricTest, InjectedDelayAddsLatency) {
  fabric_.register_handler(MsgType::kVmaUpdate, [](const Message&) {
    Message reply;
    reply.type = MsgType::kVmaUpdate;
    return reply;
  });
  VirtualClock clock;
  ScopedClockBinding bind(&clock);
  Message msg;
  msg.type = MsgType::kVmaUpdate;
  msg.dst = 1;
  fabric_.call(0, msg);
  const VirtNs base = clock.now();

  FaultPolicy policy;
  policy.seed = 7;
  FaultRule rule;
  rule.type = MsgType::kVmaUpdate;
  rule.delay_prob = 1.0;
  rule.delay_ns = 50000;
  policy.rules.push_back(rule);
  fabric_.injector().configure(policy);
  clock.reset();
  fabric_.call(0, msg);
  // Both legs (request + reply) match the rule.
  EXPECT_GE(clock.now(), base + 2 * 50000);
  EXPECT_GE(fabric_.injector().delays(), 2u);
}

TEST(FabricModes, NoPoolsChargesDmaMapping) {
  FabricOptions with_pools;
  with_pools.num_nodes = 2;
  FabricOptions no_pools = with_pools;
  no_pools.mode.use_buffer_pools = false;

  auto measure = [](Fabric& fabric) {
    fabric.register_handler(MsgType::kVmaUpdate, [](const Message&) {
      Message reply;
      reply.type = MsgType::kVmaUpdate;
      return reply;
    });
    VirtualClock clock;
    ScopedClockBinding bind(&clock);
    Message msg;
    msg.type = MsgType::kVmaUpdate;
    msg.dst = 1;
    fabric.call(0, msg);
    return clock.now();
  };

  Fabric a(with_pools), b(no_pools);
  const VirtNs pooled = measure(a);
  const VirtNs mapped = measure(b);
  // Each direction pays two DMA mappings when pools are disabled.
  EXPECT_GE(mapped, pooled + 4 * with_pools.cost.dma_map_ns -
                        2 * with_pools.cost.compose_ns);
}

TEST(FabricModes, BulkPathCostsOrdered) {
  auto measure = [](FabricMode::BulkPath path) {
    FabricOptions options;
    options.num_nodes = 2;
    options.mode.bulk_path = path;
    Fabric fabric(options);
    std::vector<std::uint8_t> src(kPageSize, 1), dst(kPageSize);
    VirtualClock clock;
    ScopedClockBinding bind(&clock);
    fabric.bulk_transfer(0, 1, src.data(), src.size(), dst.data());
    EXPECT_EQ(dst, src);
    return clock.now();
  };
  const VirtNs sink = measure(FabricMode::BulkPath::kRdmaSink);
  const VirtNs per_reg = measure(FabricMode::BulkPath::kRdmaPerPageReg);
  const VirtNs verb = measure(FabricMode::BulkPath::kVerbFragmented);
  // The paper's hybrid beats per-transfer registration and fragmentation.
  EXPECT_LT(sink, per_reg);
  EXPECT_LT(sink, verb);
}

TEST_F(FabricTest, PerPairConnectionCounters) {
  fabric_.register_handler(MsgType::kVmaUpdate, [](const Message&) {
    Message reply;
    reply.type = MsgType::kVmaUpdate;
    return reply;
  });
  Message msg;
  msg.type = MsgType::kVmaUpdate;
  msg.dst = 1;
  fabric_.call(0, msg);
  fabric_.call(0, msg);
  EXPECT_EQ(fabric_.connection(0, 1).messages(), 2u);
  EXPECT_EQ(fabric_.connection(1, 0).messages(), 2u);  // replies
  EXPECT_EQ(fabric_.connection(0, 2).messages(), 0u);
}

}  // namespace
}  // namespace dex::net
