// Memory-consistency protocol tests (§III-B/C): ownership transitions,
// data movement, version-based ownership-only grants, invalidation,
// concurrent-fault coalescing, and directory invariants under stress.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "core/api.h"

namespace dex {
namespace {

class DsmProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_nodes = 4;
    cluster_ = std::make_unique<Cluster>(config);
    process_ = cluster_->create_process(ProcessOptions{});
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Process> process_;
};

TEST_F(DsmProtocolTest, FirstTouchReturnsZeros) {
  GArray<std::uint64_t> arr(*process_, 1024, "zeros");
  for (std::size_t i = 0; i < arr.size(); i += 97) {
    EXPECT_EQ(arr.get(i), 0u);
  }
}

TEST_F(DsmProtocolTest, WriteThenReadBackLocally) {
  GArray<int> arr(*process_, 2048, "rw");
  for (std::size_t i = 0; i < arr.size(); ++i) {
    arr.set(i, static_cast<int>(i * 3));
  }
  for (std::size_t i = 0; i < arr.size(); ++i) {
    ASSERT_EQ(arr.get(i), static_cast<int>(i * 3));
  }
}

TEST_F(DsmProtocolTest, RemoteThreadSeesOriginWrites) {
  GArray<std::uint64_t> arr(*process_, 4096, "shared");
  for (std::size_t i = 0; i < arr.size(); ++i) arr.set(i, i + 7);

  std::atomic<bool> ok{true};
  DexThread t = process_->spawn([&] {
    migrate(2);
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (arr.get(i) != i + 7) ok = false;
    }
    migrate_back();
  });
  t.join();
  EXPECT_TRUE(ok);
  EXPECT_TRUE(process_->dsm().check_invariants());
}

TEST_F(DsmProtocolTest, OriginSeesRemoteWrites) {
  GArray<std::uint64_t> arr(*process_, 1024, "shared");
  DexThread t = process_->spawn([&] {
    migrate(3);
    for (std::size_t i = 0; i < arr.size(); ++i) arr.set(i, i * i);
    migrate_back();
  });
  t.join();
  for (std::size_t i = 0; i < arr.size(); ++i) {
    ASSERT_EQ(arr.get(i), i * i);
  }
  EXPECT_TRUE(process_->dsm().check_invariants());
}

TEST_F(DsmProtocolTest, WriteInvalidatesOtherReaders) {
  GArray<std::uint64_t> arr(*process_, 8, "flag");
  arr.set(0, 1);

  // Reader on node 1 pulls a shared copy; then origin writes; reader must
  // see the new value (its copy was invalidated).
  DexThread t = process_->spawn([&] {
    migrate(1);
    EXPECT_EQ(arr.get(0), 1u);
    migrate_back();
  });
  t.join();

  arr.set(0, 2);

  DexThread t2 = process_->spawn([&] {
    migrate(1);
    EXPECT_EQ(arr.get(0), 2u);
    migrate_back();
  });
  t2.join();
  EXPECT_TRUE(process_->dsm().check_invariants());
}

TEST_F(DsmProtocolTest, OwnershipOnlyGrantWhenCopyCurrent) {
  GArray<std::uint64_t> arr(*process_, 8, "upgrade");
  auto& stats = process_->dsm().stats();

  DexThread t = process_->spawn([&] {
    migrate(1);
    // Read fault: data grant.
    EXPECT_EQ(arr.get(0), 0u);
    const auto data_grants = stats.grants_data.load();
    // Write fault on the same (current) copy: ownership-only upgrade.
    arr.set(0, 42);
    EXPECT_EQ(stats.grants_data.load(), data_grants);
    migrate_back();
  });
  t.join();
  EXPECT_GT(stats.grants_ownership_only.load(), 0u);
}

TEST_F(DsmProtocolTest, PingPongPageKeepsLatestValue) {
  GArray<std::uint64_t> arr(*process_, 8, "pingpong");
  constexpr int kRounds = 50;

  for (int round = 0; round < kRounds; ++round) {
    const NodeId node = round % 2 == 0 ? 1 : 2;
    DexThread t = process_->spawn([&, node, round] {
      migrate(node);
      EXPECT_EQ(arr.get(0), static_cast<std::uint64_t>(round));
      arr.set(0, static_cast<std::uint64_t>(round + 1));
      migrate_back();
    });
    t.join();
  }
  EXPECT_EQ(arr.get(0), static_cast<std::uint64_t>(kRounds));
  EXPECT_TRUE(process_->dsm().check_invariants());
}

TEST_F(DsmProtocolTest, ConcurrentSameNodeFaultsAreCoalesced) {
  GArray<std::uint64_t> arr(*process_, kPageSize / 8, "coalesce");
  for (std::size_t i = 0; i < arr.size(); ++i) arr.set(i, i);

  // Many threads on node 1 read-fault the same page simultaneously.
  constexpr int kThreads = 8;
  std::vector<DexThread> threads;
  DexBarrier barrier(*process_, kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.push_back(process_->spawn([&, i] {
      migrate(1);
      barrier.wait();
      EXPECT_EQ(arr.get(static_cast<std::size_t>(i)),
                static_cast<std::uint64_t>(i));
      migrate_back();
    }));
  }
  for (auto& t : threads) t.join();
  // At least the barrier page and data page faults overlap sometimes; the
  // counter is best-effort, but the protocol result must be correct and
  // invariants must hold.
  EXPECT_TRUE(process_->dsm().check_invariants());
}

TEST_F(DsmProtocolTest, AtomicsAreGloballyAtomic) {
  GCounter counter(*process_, "counter");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 200;

  std::vector<DexThread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.push_back(process_->spawn([&, i] {
      migrate(i % 4);
      for (int k = 0; k < kIncrements; ++k) counter.fetch_add(1);
      migrate_back();
    }));
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.load(), static_cast<std::uint64_t>(kThreads) *
                                kIncrements);
}

TEST_F(DsmProtocolTest, ConcurrentWritersToDistinctPagesStress) {
  constexpr int kThreads = 12;
  constexpr std::size_t kPerThread = kPageSize / 8 * 3;
  GArray<std::uint64_t> arr(*process_, kPerThread * kThreads, "stress");

  std::vector<DexThread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.push_back(process_->spawn([&, i] {
      migrate(i % 4);
      const std::size_t base = static_cast<std::size_t>(i) * kPerThread;
      for (std::size_t k = 0; k < kPerThread; ++k) {
        arr.set(base + k, static_cast<std::uint64_t>(i) * 1000003 + k);
      }
      migrate_back();
    }));
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kThreads; ++i) {
    const std::size_t base = static_cast<std::size_t>(i) * kPerThread;
    for (std::size_t k = 0; k < kPerThread; k += 61) {
      ASSERT_EQ(arr.get(base + k),
                static_cast<std::uint64_t>(i) * 1000003 + k);
    }
  }
  EXPECT_TRUE(process_->dsm().check_invariants());
}

TEST_F(DsmProtocolTest, FalseSharingStressKeepsBothValuesCorrect) {
  // Two nodes write disjoint halves of the same page under a mutex — the
  // classic false-sharing pattern. Values must never be lost.
  GArray<std::uint64_t> arr(*process_, kPageSize / 8, "falseshare");
  DexMutex mutex(*process_);
  constexpr int kRounds = 100;

  auto worker = [&](NodeId node, std::size_t slot) {
    migrate(node);
    for (int r = 0; r < kRounds; ++r) {
      DexLockGuard guard(mutex);
      arr.set(slot, arr.get(slot) + 1);
    }
    migrate_back();
  };
  DexThread a = process_->spawn([&] { worker(1, 0); });
  DexThread b = process_->spawn([&] { worker(2, 100); });
  a.join();
  b.join();
  EXPECT_EQ(arr.get(0), static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(arr.get(100), static_cast<std::uint64_t>(kRounds));
  EXPECT_GT(process_->dsm().stats().invalidations.load(), 0u);
}

TEST_F(DsmProtocolTest, NoLostUpdatesWhenRemoteStealsOriginExclusivePage) {
  // Regression: a write grant to a remote node used to copy the origin
  // frame *before* revoking the origin's write access, so an in-flight
  // origin-side atomic could land after the copy and be lost.
  GCounter counter(*process_, "steal");
  constexpr int kOriginThreads = 3;
  constexpr int kIncrements = 400;

  std::vector<DexThread> threads;
  for (int t = 0; t < kOriginThreads; ++t) {
    threads.push_back(process_->spawn([&] {
      for (int i = 0; i < kIncrements; ++i) counter.fetch_add(1);
    }));
  }
  // Remote thieves keep stealing exclusive ownership mid-stream.
  for (int t = 0; t < 2; ++t) {
    threads.push_back(process_->spawn([&, t] {
      migrate(1 + t);
      for (int i = 0; i < kIncrements; ++i) counter.fetch_add(1);
      migrate_back();
    }));
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.load(),
            static_cast<std::uint64_t>(kOriginThreads + 2) * kIncrements);
}

TEST_F(DsmProtocolTest, SegfaultOnUnmappedAccess) {
  EXPECT_THROW(process_->load<int>(0x500), SegfaultError);
}

TEST_F(DsmProtocolTest, SegfaultOnWriteToReadOnly) {
  const GAddr addr = process_->mmap(kPageSize, kProtRead, "ro");
  ASSERT_NE(addr, kNullGAddr);
  EXPECT_EQ(process_->load<int>(addr), 0);
  EXPECT_THROW(process_->store<int>(addr, 1), SegfaultError);
}

TEST_F(DsmProtocolTest, MunmapRevokesRemoteAccess) {
  const GAddr addr = process_->mmap(4 * kPageSize, kProtReadWrite, "gone");
  process_->store<int>(addr, 99);

  DexThread t = process_->spawn([&] {
    migrate(1);
    EXPECT_EQ(process_->load<int>(addr), 99);  // replica VMA cached
    migrate_back();
  });
  t.join();

  ASSERT_TRUE(process_->munmap(addr, 4 * kPageSize));

  DexThread t2 = process_->spawn([&] {
    migrate(1);
    EXPECT_THROW(process_->load<int>(addr), SegfaultError);
    migrate_back();
  });
  t2.join();
  EXPECT_THROW(process_->load<int>(addr), SegfaultError);
}

TEST_F(DsmProtocolTest, RemappedRangeStartsZeroed) {
  const GAddr addr = process_->mmap(kPageSize, kProtReadWrite, "cycle");
  process_->store<std::uint64_t>(addr, 0xdeadbeef);
  ASSERT_TRUE(process_->munmap(addr, kPageSize));
  const GAddr again = process_->mmap(kPageSize, kProtReadWrite, "cycle2",
                                     /*hint=*/addr);
  ASSERT_EQ(again, addr);
  EXPECT_EQ(process_->load<std::uint64_t>(addr), 0u);
}

TEST_F(DsmProtocolTest, VmaOnDemandSync) {
  auto& stats = process_->dsm().stats();
  const GAddr addr = process_->mmap(kPageSize, kProtReadWrite, "ondemand");
  process_->store<int>(addr, 5);

  const auto syncs_before = stats.vma_syncs.load();
  DexThread t = process_->spawn([&] {
    migrate(2);
    EXPECT_EQ(process_->load<int>(addr), 5);
    migrate_back();
  });
  t.join();
  EXPECT_GT(stats.vma_syncs.load(), syncs_before);
}

// A busy directory entry answers kRetry (the contended tail of §V-D): the
// faulting node backs off and refaults instead of blocking the handler.
TEST_F(DsmProtocolTest, BusyEntryAnswersRetryUntilReleased) {
  GArray<std::uint64_t> arr(*process_, 8, "busy");
  arr.set(0, 77);
  auto& stats = process_->dsm().stats();
  mem::DirEntry& entry = process_->dsm().directory().entry(arr.addr(0));

  std::unique_lock<dex::HybridLatch> hold(entry.latch);  // simulate a long transaction
  std::atomic<std::uint64_t> seen{0};
  DexThread reader = process_->spawn([&] {
    migrate(1);
    seen = arr.get(0);
    migrate_back();
  });
  // The remote fault spins on kRetry grants while we hold the entry.
  while (stats.retries.load() < 2) std::this_thread::yield();
  EXPECT_EQ(seen.load(), 0u);  // still not granted
  hold.unlock();
  reader.join();
  EXPECT_EQ(seen.load(), 77u);
  EXPECT_GE(stats.retries.load(), 2u);
  EXPECT_TRUE(process_->dsm().check_invariants());
}

// After DsmConfig::max_retries busy answers the requester escalates to a
// blocking directory acquire (forward-progress guarantee): it stops
// consuming retry grants and completes as soon as the entry is released.
TEST_F(DsmProtocolTest, MaxRetriesEscalatesToBlockingAcquire) {
  ProcessOptions options;
  options.max_retries = 3;
  auto process = cluster_->create_process(options);
  EXPECT_EQ(process->dsm().config().max_retries, 3);

  GArray<std::uint64_t> arr(*process, 8, "escalate");
  arr.set(0, 55);
  auto& stats = process->dsm().stats();
  mem::DirEntry& entry = process->dsm().directory().entry(arr.addr(0));

  std::unique_lock<dex::HybridLatch> hold(entry.latch);
  std::atomic<std::uint64_t> seen{0};
  DexThread reader = process->spawn([&] {
    migrate(2);
    seen = arr.get(0);
    migrate_back();
  });
  // Wait until the retry budget is spent; the next request carries the
  // blocking flag and parks on the entry mutex instead of spinning.
  while (stats.retries.load() < 3) std::this_thread::yield();
  const auto retries_at_escalation = stats.retries.load();
  EXPECT_EQ(seen.load(), 0u);
  hold.unlock();
  reader.join();
  EXPECT_EQ(seen.load(), 55u);
  EXPECT_GE(retries_at_escalation, 3u);
  EXPECT_TRUE(process->dsm().check_invariants());
}

}  // namespace
}  // namespace dex
