// Stride-prefetch tests: sequential scans trigger multi-page batch grants
// that collapse the read-fault count, the ablation switch restores the
// one-page-per-fault protocol exactly, prefetch never steals exclusivity
// from a writer, and a dropped batch reply is retried to completion.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/api.h"

namespace dex {
namespace {

using net::FaultPolicy;
using net::FaultRule;
using net::MsgType;

constexpr std::size_t kWordsPerPage = kPageSize / sizeof(std::uint64_t);

class PrefetchTest : public ::testing::Test {
 protected:
  void start(int num_nodes, int prefetch_max_pages) {
    ClusterConfig config;
    config.num_nodes = num_nodes;
    cluster_ = std::make_unique<Cluster>(config);
    ProcessOptions options;
    options.prefetch_max_pages = prefetch_max_pages;
    process_ = cluster_->create_process(options);
  }

  /// Sequentially reads the first word of pages [0, pages) on `node`,
  /// verifying the value seeded by seed_pages(). Returns the number of
  /// read faults the scan took.
  std::uint64_t scan_pages(NodeId node, GArray<std::uint64_t>& arr,
                           std::size_t pages) {
    auto& stats = process_->dsm().stats();
    const std::uint64_t before = stats.read_faults.load();
    DexThread scanner = process_->spawn([&, node, pages] {
      migrate(node);
      for (std::size_t p = 0; p < pages; ++p) {
        EXPECT_EQ(arr.get(p * kWordsPerPage), p);
      }
      migrate_back();
    });
    scanner.join();
    EXPECT_FALSE(scanner.failed());
    return stats.read_faults.load() - before;
  }

  void seed_pages(GArray<std::uint64_t>& arr, std::size_t pages) {
    for (std::size_t p = 0; p < pages; ++p) arr.set(p * kWordsPerPage, p);
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Process> process_;
};

TEST_F(PrefetchTest, SequentialScanTriggersBatchGrants) {
  start(/*num_nodes=*/2, /*prefetch_max_pages=*/8);
  constexpr std::size_t kPages = 256;
  GArray<std::uint64_t> arr(*process_, kPages * kWordsPerPage, "scan");
  seed_pages(arr, kPages);

  const std::uint64_t faults = scan_pages(1, arr, kPages);

  // Three faults establish the stride, then each fault pulls up to 9 pages:
  // the scan must take far fewer faults than pages.
  EXPECT_LT(faults, kPages / 2);
  EXPECT_GT(cluster_->fabric().messages_of(MsgType::kPageRequestBatch), 0u);
  auto& stats = process_->dsm().stats();
  EXPECT_GT(stats.prefetch_issued.load(), 0u);
  EXPECT_GT(stats.prefetch_grants.load(), 0u);
  EXPECT_GT(stats.prefetch_hits.load(), 0u);
  EXPECT_TRUE(process_->dsm().check_invariants());
}

TEST_F(PrefetchTest, AblationOffRestoresOneFaultPerPage) {
  start(/*num_nodes=*/2, /*prefetch_max_pages=*/0);
  constexpr std::size_t kPages = 64;
  GArray<std::uint64_t> arr(*process_, kPages * kWordsPerPage, "noprefetch");
  seed_pages(arr, kPages);

  const std::uint64_t faults = scan_pages(1, arr, kPages);

  EXPECT_EQ(faults, kPages);
  EXPECT_EQ(cluster_->fabric().messages_of(MsgType::kPageRequestBatch), 0u);
  auto& stats = process_->dsm().stats();
  EXPECT_EQ(stats.prefetch_issued.load(), 0u);
  EXPECT_EQ(stats.prefetch_hits.load(), 0u);
  EXPECT_TRUE(process_->dsm().check_invariants());
}

TEST_F(PrefetchTest, NeverStealsExclusiveOwnership) {
  start(/*num_nodes=*/3, /*prefetch_max_pages=*/8);
  constexpr std::size_t kPages = 24;
  constexpr std::size_t kOwned = 16;  // the page a writer holds exclusive
  GArray<std::uint64_t> arr(*process_, kPages * kWordsPerPage, "steal");
  seed_pages(arr, kPages);

  DexThread writer = process_->spawn([&] {
    migrate(2);
    arr.set(kOwned * kWordsPerPage, 999);
    migrate_back();
  });
  writer.join();
  ASSERT_EQ(process_->probe_data_location(arr.addr(kOwned * kWordsPerPage)),
            2);

  // Scan pages 0..11: the stride is established by page 2, and the batch
  // issued at page 11 covers pages 12..19 — including the exclusively
  // owned page 16, which must be skipped (a granted_mask hole), not
  // recalled from its writer.
  const std::uint64_t faults = scan_pages(1, arr, 12);
  EXPECT_LT(faults, 12u);
  EXPECT_GT(process_->dsm().stats().prefetch_grants.load(), 0u);
  EXPECT_EQ(process_->probe_data_location(arr.addr(kOwned * kWordsPerPage)),
            2);

  // A demand read still recalls the page properly and sees the write.
  EXPECT_EQ(arr.get(kOwned * kWordsPerPage), 999u);
  EXPECT_TRUE(process_->dsm().check_invariants());
}

TEST_F(PrefetchTest, DroppedBatchReplyRetriesToCompletion) {
  start(/*num_nodes=*/2, /*prefetch_max_pages=*/8);
  constexpr std::size_t kPages = 64;
  GArray<std::uint64_t> arr(*process_, kPages * kWordsPerPage, "chaos-batch");
  seed_pages(arr, kPages);

  // Lose one batch grant reply (origin -> scanner). The batch request is
  // idempotent: the retransmit re-executes the grant and the scan still
  // observes every page exactly once.
  FaultPolicy policy;
  policy.seed = 21;
  FaultRule rule;
  rule.type = MsgType::kPageGrantBatch;
  rule.src = 0;
  rule.dst = 1;
  rule.drop_prob = 1.0;
  rule.max_faults = 1;
  policy.rules.push_back(rule);
  cluster_->fabric().injector().configure(policy);

  const std::uint64_t faults = scan_pages(1, arr, kPages);

  EXPECT_LT(faults, kPages / 2);
  EXPECT_EQ(cluster_->fabric().injector().drops(), 1u);
  EXPECT_GT(cluster_->fabric().rpc_retries(), 0u);
  EXPECT_TRUE(process_->dsm().check_invariants());
}

// Regression: stride state learned on a region must die with its mapping.
// Before Dsm::munmap was wired to StridePrefetcher::reset, a fresh mapping
// recycling the same addresses inherited the old mapping's hot run and
// fired a bogus batch request on its very first fault.
TEST_F(PrefetchTest, MunmapResetsStrideStateForRecycledAddresses) {
  start(/*num_nodes=*/2, /*prefetch_max_pages=*/8);
  constexpr std::size_t kPages = 32;
  GArray<std::uint64_t> arr(*process_, kPages * kWordsPerPage, "recycle");
  seed_pages(arr, kPages);
  const GAddr base = arr.addr(0);

  auto& stats = process_->dsm().stats();
  DexThread worker = process_->spawn([&] {
    migrate(1);
    // Heat the stream: faults at pages 0,1,2 establish the stride, the
    // batches at 3 and 11 pull through page 19, and the detector is left
    // expecting page 20 next.
    for (std::size_t p = 0; p < 20; ++p) {
      EXPECT_EQ(arr.get(p * kWordsPerPage), p);
    }
    ASSERT_GT(stats.prefetch_issued.load(), 0u);

    // Recycle the whole range at the same base address.
    ASSERT_TRUE(process_->munmap(base, kPages * kPageSize));
    const GAddr again = process_->mmap(kPages * kPageSize,
                                       mem::kProtReadWrite, "fresh", base);
    ASSERT_EQ(again, base);

    const std::uint64_t batches_before =
        cluster_->fabric().messages_of(MsgType::kPageRequestBatch);
    const std::uint64_t issued_before = stats.prefetch_issued.load();
    // First fault on the recycled mapping, at exactly the page the stale
    // stream pointed to: it must go out as a plain one-page request.
    EXPECT_EQ(process_->load<std::uint64_t>(base + 20 * kPageSize), 0u);
    EXPECT_EQ(cluster_->fabric().messages_of(MsgType::kPageRequestBatch),
              batches_before);
    EXPECT_EQ(stats.prefetch_issued.load(), issued_before);
    migrate_back();
  });
  worker.join();
  EXPECT_FALSE(worker.failed());
  EXPECT_TRUE(process_->dsm().check_invariants());
}

}  // namespace
}  // namespace dex
