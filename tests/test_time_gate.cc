// Time-gate (conservative virtual-time coupling) tests, including the
// lost-wakeup regressions: observe-jumps raising the minimum, and the
// watermark going stale across unblock-with-old-clock transitions.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/time_gate.h"
#include "common/virtual_clock.h"

namespace dex {
namespace {

class TimeGateTest : public ::testing::Test {
 protected:
  void TearDown() override { TimeGate::instance().disable(); }
};

TEST_F(TimeGateTest, DisabledGateNeverBlocks) {
  VirtualClock clock(1000000);
  TimeGate::instance().throttle(&clock);  // must return immediately
  SUCCEED();
}

TEST_F(TimeGateTest, AheadThreadWaitsForBehindThread) {
  TimeGate::instance().enable(10000);
  VirtualClock behind(0), ahead(50000);
  TimeGate::instance().add(&behind);
  TimeGate::instance().add(&ahead);

  std::atomic<bool> ahead_released{false};
  std::thread ahead_thread([&] {
    TimeGate::instance().throttle(&ahead);
    ahead_released = true;
  });
  // ahead is 50 us past behind with a 10 us window: must block.
  while (true) {
    std::this_thread::yield();
    if (ahead_released.load()) FAIL() << "ahead thread was not gated";
    break;  // one scheduling quantum is enough of a smoke check
  }
  // Advance the slow clock past the window; its throttle must release the
  // waiter.
  behind.advance(45000);
  TimeGate::instance().throttle(&behind);
  ahead_thread.join();
  EXPECT_TRUE(ahead_released.load());
}

TEST_F(TimeGateTest, BlockedThreadsDoNotHoldTheMinimum) {
  TimeGate::instance().enable(10000);
  VirtualClock sleeper(0), runner(100000);
  TimeGate::instance().add(&sleeper);
  TimeGate::instance().add(&runner);
  TimeGate::instance().block(&sleeper);  // sleeper excluded
  // runner is far ahead of the sleeper but must pass: no runnable minimum
  // below it.
  TimeGate::instance().throttle(&runner);
  SUCCEED();
  TimeGate::instance().unblock(&sleeper);
}

TEST_F(TimeGateTest, ObserveJumpReleasesWaiters) {
  // Regression: a clock jump (happens-before observe) that raises the
  // minimum must wake gated threads; it used to be silent.
  TimeGate::instance().enable(10000);
  VirtualClock low(0), high(60000);
  TimeGate::instance().add(&low);
  TimeGate::instance().add(&high);

  std::atomic<bool> released{false};
  std::thread waiter([&] {
    ScopedClockBinding bind(&high);
    vclock::advance(1);  // enters the gate; 60 us ahead of `low`
    released = true;
  });
  while (!released.load()) {
    // Jump the low clock forward through the public observe path.
    ScopedClockBinding bind(&low);
    vclock::observe(58000);
    std::this_thread::yield();
  }
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST_F(TimeGateTest, UnblockWithOldClockThenAdvanceWakesWaiters) {
  // Regression for the stale-watermark deadlock: a thread unblocks with an
  // old (low) clock, dragging the minimum down; when it advances back past
  // sleeping waiters the rise must still notify them.
  TimeGate::instance().enable(5000);
  VirtualClock straggler(0), waiter_clock(20000);
  TimeGate::instance().add(&straggler);
  TimeGate::instance().add(&waiter_clock);

  TimeGate::instance().block(&straggler);
  // waiter enters the gate; minimum is only the waiter itself now -> pass.
  TimeGate::instance().throttle(&waiter_clock);

  // Straggler returns at clock 0 (min drops), then waiter tries again and
  // must block.
  TimeGate::instance().unblock(&straggler);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    TimeGate::instance().throttle(&waiter_clock);
    released = true;
  });
  // Let the waiter reach the cv, then advance the straggler past it in
  // small batched steps (the deadlocking pattern).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(released.load());
  for (int i = 0; i < 10; ++i) {
    straggler.advance(3000);
    TimeGate::instance().throttle(&straggler);
    if (released.load()) break;
  }
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST_F(TimeGateTest, LeaveReleasesWaiters) {
  TimeGate::instance().enable(10000);
  VirtualClock transient(0), waiter_clock(50000);
  TimeGate::instance().add(&transient);
  TimeGate::instance().add(&waiter_clock);

  std::atomic<bool> released{false};
  std::thread waiter([&] {
    TimeGate::instance().throttle(&waiter_clock);
    released = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(released.load());
  TimeGate::instance().leave(&transient);  // last low clock disappears
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST_F(TimeGateTest, ManyThreadsStayWithinWindowUnderCoupling) {
  TimeGate::instance().enable(8000);
  constexpr int kThreads = 6;
  std::vector<VirtualClock> clocks(kThreads);
  for (auto& c : clocks) TimeGate::instance().add(&c);

  std::atomic<VirtNs> max_skew{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ScopedClockBinding bind(&clocks[static_cast<std::size_t>(t)]);
      for (int i = 0; i < 200; ++i) {
        vclock::advance(5000);
        // Sample the skew against the slowest sibling.
        VirtNs min = ~VirtNs{0};
        for (const auto& c : clocks) min = std::min(min, c.now());
        const VirtNs skew = vclock::now() - min;
        VirtNs seen = max_skew.load();
        while (skew > seen && !max_skew.compare_exchange_weak(seen, skew)) {
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Skew is bounded by window + one batch (plus sampling slop).
  EXPECT_LE(max_skew.load(), 8000u + 5000u + 5000u);
}

}  // namespace
}  // namespace dex
