// ProtocolEngine unit tests: doorbell batching, window bounding by the
// depth knob, pump-role handoff, background drain, and the pump's
// CPU-cost accounting — all against a bare Fabric, no DSM above.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/virtual_clock.h"
#include "core/engine.h"
#include "core/futex.h"
#include "net/fabric.h"

namespace dex::core {
namespace {

using net::Message;
using net::MsgType;

class EngineTest : public ::testing::Test {
 protected:
  static net::FabricOptions make_options() {
    net::FabricOptions options;
    options.num_nodes = 3;
    return options;
  }

  EngineTest() : fabric_(make_options()) {
    fabric_.register_handler(MsgType::kVmaUpdate, [this](const Message& msg) {
      handler_runs_.fetch_add(1, std::memory_order_relaxed);
      Message reply;
      reply.type = MsgType::kVmaUpdate;
      reply.set_payload(msg.payload_as<std::uint64_t>() + 1);
      return reply;
    });
  }

  /// A one-leg transaction: echo request to `dst`, done on first reply.
  ProtocolEngine::Submit echo(NodeId src, NodeId dst, std::uint64_t value,
                              std::atomic<int>* completed = nullptr) {
    ProtocolEngine::Submit submit;
    submit.node = src;
    submit.request.type = MsgType::kVmaUpdate;
    submit.request.dst = dst;
    submit.request.set_payload(value);
    submit.resume = [value, completed](net::CallOutcome&& out) {
      ProtocolEngine::Step step;
      if (out.status == net::CallOutcome::Status::kOk) {
        EXPECT_EQ(out.reply.payload_as<std::uint64_t>(), value + 1);
        if (completed != nullptr) {
          completed->fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        step.status = out.status;
      }
      return step;
    };
    return submit;
  }

  net::Fabric fabric_;
  FutexTable futex_;
  std::atomic<int> handler_runs_{0};
};

// Background transactions submitted back-to-back to one destination leave
// in doorbell batches, not single posts: drain() must retire them all in
// far fewer doorbells than transactions.
TEST_F(EngineTest, BackgroundDrainBatchesDoorbells) {
  ProtocolEngine engine(fabric_, 3, /*max_inflight=*/8);
  engine.bind_futex(futex_);

  std::atomic<int> completed{0};
  constexpr int kTxns = 8;
  for (int i = 0; i < kTxns; ++i) {
    engine.submit_background(
        echo(0, 1, static_cast<std::uint64_t>(i), &completed));
  }
  engine.drain(0);

  EXPECT_EQ(completed.load(), kTxns);
  EXPECT_EQ(handler_runs_.load(), kTxns);
  EXPECT_EQ(engine.outstanding(), 0u);
  EXPECT_EQ(engine.stats().submitted.load(),
            static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(engine.stats().completions.load(),
            static_cast<std::uint64_t>(kTxns));
  // One pump pass takes the whole backlog: one doorbell, kTxns legs.
  EXPECT_EQ(fabric_.doorbell_batches(), 1u);
  EXPECT_EQ(fabric_.batched_posts(), static_cast<std::uint64_t>(kTxns));
}

// The depth knob bounds every doorbell window: 6 transactions through a
// depth-2 engine need at least 3 doorbells, never one wide one.
TEST_F(EngineTest, WindowNeverExceedsMaxInflight) {
  ProtocolEngine engine(fabric_, 3, /*max_inflight=*/2);
  engine.bind_futex(futex_);

  std::atomic<int> completed{0};
  constexpr int kTxns = 6;
  for (int i = 0; i < kTxns; ++i) {
    engine.submit_background(
        echo(0, 1, static_cast<std::uint64_t>(i), &completed));
  }
  engine.drain(0);

  EXPECT_EQ(completed.load(), kTxns);
  EXPECT_GE(fabric_.doorbell_batches(), 3u);
  EXPECT_EQ(fabric_.batched_posts(), static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(engine.outstanding(), 0u);
}

// Transactions from one node to different destinations split into
// per-destination doorbells within a single pump pass.
TEST_F(EngineTest, DoorbellsGroupByDestination) {
  ProtocolEngine engine(fabric_, 3, /*max_inflight=*/8);
  engine.bind_futex(futex_);

  std::atomic<int> completed{0};
  for (int i = 0; i < 4; ++i) {
    engine.submit_background(
        echo(0, 1 + i % 2, static_cast<std::uint64_t>(i), &completed));
  }
  engine.drain(0);

  EXPECT_EQ(completed.load(), 4);
  EXPECT_GE(fabric_.doorbell_batches(), 2u);  // one per destination
  EXPECT_EQ(fabric_.batched_posts(), 4u);
}

// A foreground submitter that finds the pump role taken parks; when the
// pump's own transaction completes, the role is handed off with a poke
// and the parked submitter elects itself. Forced deterministically: the
// first transaction's handler stalls in real time until the second
// submitter has had ample time to enqueue and park.
TEST_F(EngineTest, PumpHandoffPokesParkedSubmitter) {
  ProtocolEngine engine(fabric_, 3, /*max_inflight=*/8);
  engine.bind_futex(futex_);

  std::atomic<bool> second_submitted{false};
  fabric_.register_handler(MsgType::kAck, [&](const Message& msg) {
    // Hold the pump inside its own leg until the second submitter queued.
    for (int spin = 0; spin < 2000 && !second_submitted.load(); ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Message reply;
    reply.type = MsgType::kAck;
    reply.set_payload(msg.payload_as<std::uint64_t>() + 1);
    return reply;
  });

  std::thread first([&] {
    VirtualClock clock(0);
    ScopedClockBinding bind(&clock);
    ProtocolEngine::Submit submit;
    submit.node = 0;
    submit.request.type = MsgType::kAck;
    submit.request.dst = 1;
    submit.request.set_payload(std::uint64_t{7});
    submit.resume = [](net::CallOutcome&& out) {
      EXPECT_EQ(out.reply.payload_as<std::uint64_t>(), 8u);
      return ProtocolEngine::Step{};
    };
    EXPECT_EQ(engine.run(std::move(submit)),
              net::CallOutcome::Status::kOk);
  });

  std::thread second([&] {
    VirtualClock clock(0);
    ScopedClockBinding bind(&clock);
    // Give the first submitter time to take the pump role and post.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::atomic<int> completed{0};
    auto submit = echo(0, 1, 21, &completed);
    second_submitted.store(true);
    EXPECT_EQ(engine.run(std::move(submit)),
              net::CallOutcome::Status::kOk);
    EXPECT_EQ(completed.load(), 1);
  });

  first.join();
  second.join();
  EXPECT_EQ(engine.outstanding(), 0u);
  // The handoff fired iff the second submitter was still parked when the
  // first released the role; the stalling handler makes that the common
  // case, but a slow first thread may complete the second's transaction
  // in its own pump window instead — both end with everything retired.
  EXPECT_LE(engine.stats().pump_handoffs.load(), 1u);
}

// The pump charges its own clock per-leg CPU costs only (submit charge on
// the caller, posting gap and resume per leg): a foreground run()'s caller
// clock must advance by at least those plus one wire round trip.
TEST_F(EngineTest, RunChargesSubmitPostGapAndResume) {
  ProtocolEngine engine(fabric_, 3, /*max_inflight=*/8);
  engine.bind_futex(futex_);

  VirtualClock clock(0);
  ScopedClockBinding bind(&clock);
  std::atomic<int> completed{0};
  EXPECT_EQ(engine.run(echo(0, 1, 3, &completed)),
            net::CallOutcome::Status::kOk);
  EXPECT_EQ(completed.load(), 1);

  const net::CostModel& cost = fabric_.cost();
  // Lower bound: the engine's own CPU charges plus a nonzero wire leg.
  EXPECT_GE(clock.now(), cost.engine_submit_ns + cost.fanout_post_gap_ns +
                             cost.engine_resume_ns);
  EXPECT_EQ(engine.stats().resumes.load(), 1u);
  EXPECT_EQ(engine.stats().completions.load(), 1u);
}

}  // namespace
}  // namespace dex::core
