// HybridLatch unit tests (optimistic restart, upgrades, version wrap), a
// many-reader/one-writer stress, and the twin-run property that
// DsmConfig::optimistic_latching never changes the memory image.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/hybrid_latch.h"
#include "common/rand.h"
#include "core/api.h"

namespace dex {
namespace {

// ---------------------------------------------------------------------------
// HybridLatch unit tests
// ---------------------------------------------------------------------------

TEST(HybridLatch, OptimisticSnapshotInvalidatedByExclusiveSection) {
  HybridLatch latch;
  GuardO before(latch);
  EXPECT_TRUE(before.validate());

  latch.lock();
  latch.unlock();  // the version bump is what kills the snapshot

  EXPECT_FALSE(before.validate());
  GuardO after(latch);
  EXPECT_TRUE(after.validate());
}

TEST(HybridLatch, NonBlockingProbeFailsFastWhileExclusiveHeld) {
  HybridLatch latch;
  latch.lock();
  GuardO probe(latch, GuardO::kNonBlocking);
  EXPECT_FALSE(probe.engaged());
  EXPECT_FALSE(probe.validate());  // never validates, by contract
  latch.unlock();

  GuardO retry(latch, GuardO::kNonBlocking);
  EXPECT_TRUE(retry.engaged());
  EXPECT_TRUE(retry.validate());
}

TEST(HybridLatch, TryLockBacksOutUnbumpedWhenReadersAreIn) {
  HybridLatch latch;
  GuardO snapshot(latch);
  latch.lock_shared();
  // The acquire must fail, and because nothing was written it must NOT
  // invalidate outstanding optimistic snapshots.
  EXPECT_FALSE(latch.try_lock());
  EXPECT_TRUE(snapshot.validate());
  latch.unlock_shared();

  EXPECT_TRUE(latch.try_lock());
  latch.unlock();
  EXPECT_FALSE(snapshot.validate());
}

TEST(HybridLatch, SharedModeNeverBumpsTheVersion) {
  HybridLatch latch;
  GuardO snapshot(latch);
  {
    GuardS shared(latch);
    EXPECT_TRUE(shared.owns());
    EXPECT_TRUE(snapshot.validate());  // readers invalidate nothing
  }
  EXPECT_TRUE(snapshot.validate());
}

TEST(HybridLatch, GuardXUpgradeSucceedsWhenUnraced) {
  HybridLatch latch;
  GuardO opt(latch);
  GuardX exclusive = GuardX::upgrade(latch, opt);
  EXPECT_TRUE(exclusive.owns());
  exclusive.reset();  // release bumps the version
  EXPECT_FALSE(opt.validate());
}

TEST(HybridLatch, GuardXUpgradeFailsWhenSnapshotWasInvalidated) {
  HybridLatch latch;
  GuardO opt(latch);
  latch.lock();
  latch.unlock();  // a writer slipped in before the upgrade landed
  GuardX exclusive = GuardX::upgrade(latch, opt);
  EXPECT_FALSE(exclusive.owns());
  // The failed upgrade released the latch: a fresh acquire must work.
  EXPECT_TRUE(latch.try_lock());
  latch.unlock();
}

TEST(HybridLatch, GuardSUpgradeFollowsTheSameRules) {
  HybridLatch latch;
  {
    GuardO opt(latch);
    GuardS shared = GuardS::upgrade(latch, opt);
    EXPECT_TRUE(shared.owns());
  }
  {
    GuardO opt(latch);
    latch.lock();
    latch.unlock();
    GuardS shared = GuardS::upgrade(latch, opt);
    EXPECT_FALSE(shared.owns());
    EXPECT_TRUE(latch.try_lock());  // nothing left held
    latch.unlock();
  }
}

TEST(HybridLatch, VersionWrapsInsideTheMaskNotIntoTheExclusiveBit) {
  HybridLatch latch(HybridLatch::kVersionMask);  // one bump from wrapping
  EXPECT_EQ(latch.version(), HybridLatch::kVersionMask);
  GuardO stale(latch);

  latch.lock();
  latch.unlock();

  // The version wrapped to zero instead of carrying into the exclusive
  // bit, and the wrap still invalidates pre-wrap snapshots.
  EXPECT_EQ(latch.version(), 0u);
  EXPECT_FALSE(stale.validate());
  GuardO fresh(latch);
  EXPECT_TRUE(fresh.engaged());
  EXPECT_TRUE(fresh.validate());
}

// Many optimistic readers against one exclusive writer: a validated read
// must never observe a torn pair, and the Lockable face (std::lock_guard)
// must compose with the optimistic mode.
TEST(HybridLatch, ManyReadersOneWriterStress) {
  HybridLatch latch;
  // Invariant under the latch: a == b. Atomics with relaxed ordering:
  // optimistic readers race the writer's stores by design, and the latch
  // validation — not the memory order — is what rejects torn pairs.
  std::atomic<std::uint64_t> a{0};
  std::atomic<std::uint64_t> b{0};

  constexpr int kReaders = 4;
  constexpr int kWrites = 4000;
  constexpr int kReads = 8000;
  std::atomic<std::uint64_t> validated{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t ok = 0;
      for (int i = 0; i < kReads; ++i) {
        GuardO guard(latch);
        const std::uint64_t ra = a.load(std::memory_order_relaxed);
        const std::uint64_t rb = b.load(std::memory_order_relaxed);
        if (guard.validate()) {
          ASSERT_EQ(ra, rb);  // a torn pair must never validate
          ++ok;
        }
      }
      validated.fetch_add(ok, std::memory_order_relaxed);
    });
  }

  for (int i = 0; i < kWrites; ++i) {
    std::lock_guard<HybridLatch> guard(latch);
    a.fetch_add(1, std::memory_order_relaxed);
    b.fetch_add(1, std::memory_order_relaxed);
  }
  for (auto& t : readers) t.join();

  EXPECT_EQ(a.load(), static_cast<std::uint64_t>(kWrites));
  EXPECT_EQ(a.load(), b.load());
  // Post-writer reads are unraced, so validations are guaranteed even on
  // a host that serializes the writer ahead of every reader.
  EXPECT_GT(validated.load(), 0u);
}

// ---------------------------------------------------------------------------
// Twin-run property: the latching discipline is invisible to memory
// ---------------------------------------------------------------------------

struct Shape {
  int nodes;
  int threads;
  bool coalesce;
};

class LatchingProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(LatchingProperty, OptimisticLatchingPreservesTheMemoryImage) {
  const Shape shape = GetParam();
  constexpr std::size_t kSlots = 4096;  // 8 pages of strided slots

  std::vector<std::uint64_t> image[2];
  for (int on = 0; on <= 1; ++on) {
    ClusterConfig config;
    config.num_nodes = shape.nodes;
    Cluster cluster(config);
    ProcessOptions options;
    options.coalesce_faults = shape.coalesce;
    options.optimistic_latching = on != 0;
    auto process = cluster.create_process(options);

    GArray<std::uint64_t> slots(*process, kSlots, "slots");
    std::vector<DexThread> threads;
    for (int t = 0; t < shape.threads; ++t) {
      threads.push_back(process->spawn([&, t] {
        Xoshiro256 rng(static_cast<std::uint64_t>(t) * 911 + 17);
        migrate(static_cast<NodeId>(t % shape.nodes));
        for (int round = 0; round < 80; ++round) {
          // Strided single-writer slots, plus a read of the thread's own
          // previous slot so the read fault path runs under both modes.
          const std::size_t slot =
              static_cast<std::size_t>(t) +
              static_cast<std::size_t>(rng.next_below(
                  kSlots / static_cast<std::size_t>(shape.threads))) *
                  static_cast<std::size_t>(shape.threads);
          slots.set(slot, (static_cast<std::uint64_t>(t) << 32) |
                              static_cast<std::uint64_t>(round));
          (void)slots.get(slot);
        }
        migrate_back();
      }));
    }
    for (auto& t : threads) t.join();
    EXPECT_TRUE(process->dsm().check_invariants());

    EXPECT_EQ(process->dsm().directory().optimistic(), on != 0);
    EXPECT_EQ(process->dsm().fault_table(options.origin).shards(),
              on != 0 ? mem::FaultTable::kShards : 1);
    auto& stats = process->dsm().stats();
    if (on == 0) {
      // The knob off is the seed pessimistic protocol bit-for-bit: no
      // optimistic machinery may even be reached.
      EXPECT_EQ(stats.latch_restarts.load(), 0u);
      EXPECT_EQ(stats.latch_upgrades.load(), 0u);
    } else {
      // Every entry creation escalates through the upgrade path.
      EXPECT_GT(stats.latch_upgrades.load(), 0u);
    }

    image[on].resize(kSlots);
    slots.read_block(0, kSlots, image[on].data());
  }
  EXPECT_EQ(image[0], image[1]);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LatchingProperty,
    ::testing::Values(Shape{1, 4, true}, Shape{2, 4, true},
                      Shape{2, 8, false}, Shape{4, 8, true},
                      Shape{8, 8, true}, Shape{3, 6, false}),
    [](const auto& info) {
      const Shape& s = info.param;
      return "n" + std::to_string(s.nodes) + "t" +
             std::to_string(s.threads) +
             (s.coalesce ? "_coalesce" : "_nocoalesce");
    });

}  // namespace
}  // namespace dex
