// Profiling toolchain tests (§IV): trace capture, site interning, and the
// post-processing analyses.
#include <gtest/gtest.h>

#include "core/api.h"
#include "prof/analysis.h"

namespace dex::prof {
namespace {

FaultEvent make_event(VirtNs t, NodeId node, TaskId task, FaultKind kind,
                      std::uint32_t site, GAddr addr, const char* tag) {
  FaultEvent e;
  e.time = t;
  e.node = node;
  e.task = task;
  e.kind = kind;
  e.site = site;
  e.addr = addr;
  e.set_tag(tag);
  return e;
}

TEST(SiteRegistry, InternsAndResolves) {
  auto& reg = SiteRegistry::instance();
  const auto a = reg.intern("test:alpha");
  const auto b = reg.intern("test:beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.intern("test:alpha"), a);  // idempotent
  EXPECT_EQ(reg.name(a), "test:alpha");
  EXPECT_EQ(reg.name(0), "<unknown>");
}

TEST(ScopedSiteTest, NestsAndRestores) {
  const auto outer_before = current_site();
  {
    ScopedSite outer("test:outer");
    const auto outer_id = current_site();
    {
      ScopedSite inner("test:inner");
      EXPECT_NE(current_site(), outer_id);
    }
    EXPECT_EQ(current_site(), outer_id);
  }
  EXPECT_EQ(current_site(), outer_before);
}

TEST(FaultTraceTest, DisabledRecordsNothing) {
  FaultTrace trace;
  trace.record(make_event(1, 0, 0, FaultKind::kRead, 0, 0x1000, "x"));
  EXPECT_EQ(trace.size(), 0u);
  trace.enable();
  trace.record(make_event(1, 0, 0, FaultKind::kRead, 0, 0x1000, "x"));
  EXPECT_EQ(trace.size(), 1u);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

class AnalysisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto hot = SiteRegistry::instance().intern("test:hot_loop");
    const auto cold = SiteRegistry::instance().intern("test:cold");
    // Page A: written from two nodes (false sharing); page B: single node.
    for (int i = 0; i < 10; ++i) {
      events_.push_back(make_event(
          static_cast<VirtNs>(i) * 1000, i % 2, i % 4,
          i % 2 ? FaultKind::kWrite : FaultKind::kRead, hot,
          0x10000 + static_cast<GAddr>(i), "pageA"));
    }
    events_.push_back(make_event(500, 0, 1, FaultKind::kRead, cold, 0x20008,
                                 "pageB"));
    events_.push_back(
        make_event(9000, 1, -1, FaultKind::kInvalidate, 0, 0x10000, ""));
    events_.push_back(
        make_event(9500, 1, 2, FaultKind::kRetry, hot, 0x10010, "pageA"));
  }
  std::vector<FaultEvent> events_;
};

TEST_F(AnalysisTest, TopPagesRankedByFaults) {
  TraceAnalysis analysis(events_);
  const auto pages = analysis.top_pages(10);
  ASSERT_GE(pages.size(), 2u);
  EXPECT_EQ(pages[0].page, 0x10000u);
  EXPECT_GT(pages[0].total(), pages[1].total());
  EXPECT_EQ(pages[0].tag, "pageA");
}

TEST_F(AnalysisTest, FalseSharingDetectsMultiNodeWrites) {
  TraceAnalysis analysis(events_);
  const auto suspects = analysis.false_sharing_suspects(10);
  ASSERT_EQ(suspects.size(), 1u);  // only page A conflicts
  EXPECT_EQ(suspects[0].page, 0x10000u);
  EXPECT_EQ(suspects[0].nodes.size(), 2u);
}

TEST_F(AnalysisTest, SiteReportAggregatesKinds) {
  TraceAnalysis analysis(events_);
  const auto sites = analysis.top_sites(10);
  ASSERT_FALSE(sites.empty());
  EXPECT_EQ(sites[0].name, "test:hot_loop");
  EXPECT_EQ(sites[0].reads + sites[0].writes, 10u);
  EXPECT_EQ(sites[0].retries, 1u);
}

TEST_F(AnalysisTest, TimeSeriesBucketsByVirtualTime) {
  TraceAnalysis analysis(events_);
  const auto series = analysis.time_series(1000);
  ASSERT_GE(series.size(), 10u);
  EXPECT_EQ(series[0], 2u);  // t=0 and t=500 events
  EXPECT_EQ(series[9], 3u);  // t=9000 (x2: write + invalidate) and t=9500
}

TEST_F(AnalysisTest, PerTaskSkipsAnonymous) {
  TraceAnalysis analysis(events_);
  const auto per_task = analysis.per_task();
  std::uint64_t total = 0;
  for (const auto& [task, count] : per_task) {
    EXPECT_GE(task, 0);
    total += count;
  }
  EXPECT_EQ(total, events_.size() - 1);  // the invalidate has task -1
}

TEST_F(AnalysisTest, FormatReportMentionsContention) {
  TraceAnalysis analysis(events_);
  const std::string report = analysis.format_report();
  EXPECT_NE(report.find("CONTENDED"), std::string::npos);
  EXPECT_NE(report.find("test:hot_loop"), std::string::npos);
  EXPECT_NE(report.find("pageA"), std::string::npos);
}

TEST(EndToEndTrace, DsmFaultsProduceSixTuples) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster cluster(config);
  auto process = cluster.create_process(ProcessOptions{});
  process->trace().enable();

  GArray<int> arr(*process, 1024, "traced");
  DexThread t = process->spawn([&] {
    migrate(1);
    ScopedSite site("test:traced_loop");
    arr.set(0, 5);
    migrate_back();
  });
  t.join();

  const auto events = process->trace().snapshot();
  ASSERT_FALSE(events.empty());
  bool saw_remote_write = false;
  for (const auto& e : events) {
    if (e.node == 1 && e.kind == FaultKind::kWrite) {
      saw_remote_write = true;
      EXPECT_STREQ(e.tag, "traced");
      EXPECT_EQ(SiteRegistry::instance().name(e.site), "test:traced_loop");
      EXPECT_GT(e.time, 0u);
    }
  }
  EXPECT_TRUE(saw_remote_write);
}

}  // namespace
}  // namespace dex::prof
