// Bounded-frame tests: the per-node FramePool (budget accounting, admission
// credits, the cold-tier spill round trip), the kEvictPage protocol (pinned
// frames fail closed, stale evictions fail closed, bytes actually return to
// the pressured pool), discard-path byte accounting (munmap and node
// reclamation drain every pool back to its baseline), the lease-journal
// gauge + patrol GC, and the chaos paths: an owner whose eviction writeback
// cannot reach the home loses nothing, and evictions racing live
// fault/install traffic never corrupt the memory image.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "common/virtual_clock.h"
#include "core/api.h"
#include "mem/directory.h"
#include "mem/frame_pool.h"
#include "mem/page_table.h"
#include "net/message.h"

namespace dex {
namespace {

using mem::FramePool;
using net::EvictPageAckPayload;
using net::EvictPagePayload;
using net::EvictResult;
using net::MsgType;

constexpr std::size_t kWordsPerPage = kPageSize / sizeof(std::uint64_t);

// Same contract as the recovery suite: a wedged eviction test must abort
// loudly instead of eating the CI timeout.
class Watchdog {
 public:
  explicit Watchdog(int seconds)
      : thread_([this, seconds] {
          std::unique_lock<std::mutex> lock(mu_);
          if (!cv_.wait_for(lock, std::chrono::seconds(seconds),
                            [this] { return done_; })) {
            std::fprintf(stderr,
                         "eviction watchdog: test exceeded %d s, aborting\n",
                         seconds);
            std::abort();
          }
        }) {}
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// FramePool unit behavior
// ---------------------------------------------------------------------------

TEST(FramePoolTest, BudgetAccountingAndAdmissionCredits) {
  FramePool pool(2 * kPageSize, /*spill_enabled=*/false, 0, 0);

  // Credit admission: a reservation is consumed by allocate(), not charged
  // twice, and the budget caps further reservations until bytes come back.
  EXPECT_TRUE(pool.try_reserve_upto(kPageSize));
  EXPECT_EQ(pool.credit_bytes(), kPageSize);
  std::uint8_t* a = pool.allocate();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(pool.used_bytes(), kPageSize);
  EXPECT_EQ(pool.credit_bytes(), 0u);

  EXPECT_TRUE(pool.try_reserve_upto(kPageSize));
  std::uint8_t* b = pool.allocate();
  EXPECT_EQ(pool.used_bytes(), 2 * kPageSize);
  EXPECT_FALSE(pool.try_reserve_upto(kPageSize));  // budget exhausted

  // Recycled frames come back zeroed and uncharge their bytes.
  a[0] = 0xAB;
  pool.release(a);
  EXPECT_EQ(pool.used_bytes(), kPageSize);
  EXPECT_TRUE(pool.try_reserve_upto(kPageSize));
  std::uint8_t* c = pool.allocate();
  ASSERT_NE(c, nullptr);
  for (std::size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(c[i], 0) << i;

  // force_reserve is the bounded-backpressure escape hatch: it admits over
  // budget and the high-water mark records the overshoot.
  pool.force_reserve_upto(kPageSize);
  std::uint8_t* d = pool.allocate();
  EXPECT_EQ(pool.used_bytes(), 3 * kPageSize);
  EXPECT_TRUE(pool.over_budget());
  EXPECT_GE(pool.high_water_bytes(), 3 * kPageSize);

  pool.release(b);
  pool.release(c);
  pool.release(d);
  EXPECT_EQ(pool.used_bytes(), 0u);
  // TL credits are keyed by pool address: return them before the pool dies
  // so a later pool reusing the address cannot inherit stale credit.
  pool.drop_credit();
}

TEST(FramePoolTest, SpillRoundTripPreservesTheImage) {
  FramePool pool(kPageSize, /*spill_enabled=*/true, 100, 100);
  ASSERT_TRUE(pool.spill_enabled());

  std::uint8_t* frame = pool.allocate();
  ASSERT_NE(frame, nullptr);
  for (std::size_t i = 0; i < kPageSize; ++i) {
    frame[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  const std::uint32_t slot = pool.spill_out(frame);
  ASSERT_NE(slot, mem::SpillFile::kNoSlot);
  EXPECT_EQ(pool.spilled_bytes(), kPageSize);
  EXPECT_EQ(pool.spills_out(), 1u);
  pool.release(frame);
  EXPECT_EQ(pool.used_bytes(), 0u);

  std::uint8_t* back = pool.allocate();
  ASSERT_NE(back, nullptr);
  pool.spill_in(slot, back);
  for (std::size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(back[i], static_cast<std::uint8_t>(i * 7 + 3)) << i;
  }
  EXPECT_EQ(pool.spilled_bytes(), 0u);  // slot recycled on read-back
  EXPECT_EQ(pool.spills_in(), 1u);
  pool.release(back);
  pool.drop_credit();
}

// ---------------------------------------------------------------------------
// Budgeted runs: eviction keeps the pool bounded and the data intact
// ---------------------------------------------------------------------------

TEST(EvictionTest, BudgetedWorkingSetCompletesWithTheExactImage) {
  Watchdog dog(90);
  constexpr std::size_t kPages = 12;
  constexpr std::uint64_t kBudget = 3 * kPageSize;  // 25% of the working set
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster cluster(config);
  ProcessOptions options;
  options.frame_budget_bytes = kBudget;
  options.spill_cold_pages = true;  // home frames must be able to shrink too
  options.prefetch_max_pages = 0;   // one-frame-per-fault admission
  options.home_migration = false;
  auto process = cluster.create_process(options);

  GArray<std::uint64_t> arr(*process, kPages * kWordsPerPage, "budgeted");
  DexThread writer = process->spawn([&] {
    migrate(1);
    for (int round = 1; round <= 3; ++round) {
      for (std::size_t p = 0; p < kPages; ++p) {
        arr.set(p * kWordsPerPage,
                static_cast<std::uint64_t>(round) * 1000 + p);
      }
    }
    migrate_back();
  });
  writer.join();
  EXPECT_FALSE(writer.failed());

  // A 4x-over-budget working set streamed three times: the exact image
  // survives the evict/writeback/re-fault churn.
  for (std::size_t p = 0; p < kPages; ++p) {
    EXPECT_EQ(arr.get(p * kWordsPerPage), 3000 + p) << "page " << p;
  }

  auto& stats = process->dsm().stats();
  const std::uint64_t evictions = stats.evictions_shared.load() +
                                  stats.evictions_exclusive.load() +
                                  stats.evictions_local.load();
  EXPECT_GT(evictions, 0u);
  EXPECT_GT(stats.evictions_exclusive.load(), 0u);  // writebacks happened
  // The budget is a real ceiling whenever backpressure never had to punt.
  if (stats.backpressure_overshoots.load() == 0) {
    EXPECT_LE(process->dsm().frame_high_water_bytes(), kBudget);
  }
  EXPECT_TRUE(process->dsm().check_invariants());
}

TEST(EvictionTest, UnbudgetedRunKeepsEveryEvictionCounterAtZero) {
  Watchdog dog(60);
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster cluster(config);
  auto process = cluster.create_process(ProcessOptions{});  // budget 0

  GArray<std::uint64_t> arr(*process, 4 * kWordsPerPage, "unbounded");
  DexThread worker = process->spawn([&] {
    migrate(1);
    for (std::size_t p = 0; p < 4; ++p) arr.set(p * kWordsPerPage, p + 1);
    migrate_back();
  });
  worker.join();
  process->dsm().frame_patrol();  // must be inert with budget 0

  auto& stats = process->dsm().stats();
  EXPECT_EQ(cluster.fabric().messages_of(MsgType::kEvictPage), 0u);
  EXPECT_EQ(stats.evictions_shared.load(), 0u);
  EXPECT_EQ(stats.evictions_exclusive.load(), 0u);
  EXPECT_EQ(stats.evictions_local.load(), 0u);
  EXPECT_EQ(stats.spills_out.load(), 0u);
  EXPECT_EQ(stats.backpressure_stalls.load(), 0u);
  EXPECT_EQ(stats.backpressure_overshoots.load(), 0u);
  EXPECT_EQ(process->dsm().frame_pool(0).budget_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Discard-path byte accounting (the frame-byte audit)
// ---------------------------------------------------------------------------

TEST(EvictionTest, MunmapReturnsEveryFrameByteToEveryPool) {
  Watchdog dog(90);
  constexpr std::size_t kPages = 6;
  ClusterConfig config;
  config.num_nodes = 3;
  Cluster cluster(config);
  ProcessOptions options;
  options.frame_budget_bytes = 2 * kPageSize;
  options.spill_cold_pages = true;
  options.prefetch_max_pages = 0;
  options.home_migration = false;
  auto process = cluster.create_process(options);

  std::vector<std::uint64_t> baseline;
  for (NodeId n = 0; n < 3; ++n) {
    baseline.push_back(process->dsm().frame_pool(n).used_bytes());
  }

  const GAddr base =
      process->mmap(kPages * kPageSize, kProtReadWrite, "audit");
  ASSERT_NE(base, kNullGAddr);
  GArray<std::uint64_t> arr(*process, base, kPages * kWordsPerPage);

  // Touch the range from two remote nodes and the origin so shared
  // replicas, written-back exclusives and spilled home frames all exist.
  for (NodeId target = 1; target <= 2; ++target) {
    DexThread worker = process->spawn([&, target] {
      migrate(target);
      for (std::size_t p = 0; p < kPages; ++p) {
        arr.set(p * kWordsPerPage, static_cast<std::uint64_t>(target));
      }
      migrate_back();
    });
    worker.join();
    EXPECT_FALSE(worker.failed());
  }
  for (std::size_t p = 0; p < kPages; ++p) {
    EXPECT_EQ(arr.get(p * kWordsPerPage), 2u);
  }
  // Drive the patrol so the over-budget home pool parks frames in the
  // cold tier — munmap must drop those slots too, not just live frames.
  process->dsm().frame_patrol();
  std::uint64_t spilled = 0;
  for (NodeId n = 0; n < 3; ++n) {
    spilled += process->dsm().frame_pool(n).spilled_bytes();
  }
  EXPECT_GT(spilled, 0u);

  ASSERT_TRUE(process->munmap(base, kPages * kPageSize));
  for (NodeId n = 0; n < 3; ++n) {
    FramePool& pool = process->dsm().frame_pool(n);
    EXPECT_EQ(pool.used_bytes(), baseline[static_cast<std::size_t>(n)])
        << "node " << n << " leaked frame bytes across munmap";
    EXPECT_EQ(pool.spilled_bytes(), 0u) << "node " << n;
  }
  EXPECT_TRUE(process->dsm().check_invariants());
}

// ---------------------------------------------------------------------------
// kEvictPage protocol: pinned and stale copies fail closed
// ---------------------------------------------------------------------------

TEST(EvictionTest, PinnedFrameRefusesEvictionUntilUnpinned) {
  Watchdog dog(60);
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster cluster(config);
  ProcessOptions options;
  options.prefetch_max_pages = 0;
  options.home_migration = false;
  auto process = cluster.create_process(options);

  GArray<std::uint64_t> arr(*process, kWordsPerPage, "pinned");
  arr.set(0, 77);  // materialize at the origin
  DexThread reader = process->spawn([&] {
    migrate(1);
    EXPECT_EQ(arr.get(0), 77u);  // shared replica at node 1
    migrate_back();
  });
  reader.join();

  const GAddr page = arr.addr(0);
  mem::DirEntry* entry = process->dsm().directory().find(page);
  ASSERT_NE(entry, nullptr);
  mem::Pte* pte = process->dsm().page_table(1).find(page);
  ASSERT_NE(pte, nullptr);
  ASSERT_NE(pte->data(), nullptr);
  const std::uint64_t bytes_before =
      process->dsm().frame_pool(1).used_bytes();

  EvictPagePayload payload{};
  payload.process_id = process->dsm().config().process_id;
  payload.page = page;
  payload.version = entry->version;
  payload.node = 1;
  payload.exclusive = 0;
  net::Message msg;
  msg.type = MsgType::kEvictPage;
  msg.src = 1;
  msg.dst = 0;
  msg.set_payload(payload);

  // The install-in-flight race, staged deterministically: the fault leader
  // pins its PTE before snapshotting known_version, so a concurrent
  // eviction must see the pin and fail closed instead of retiring the
  // frame a grant is about to reference.
  pte->pin();
  net::Message reply = process->dsm().handle_evict_page(msg);
  EXPECT_EQ(reply.payload_as<EvictPageAckPayload>().result,
            static_cast<std::uint8_t>(EvictResult::kBusy));
  EXPECT_NE(pte->data(), nullptr);  // the frame is still there
  EXPECT_EQ(process->dsm().frame_pool(1).used_bytes(), bytes_before);

  // A stale version (the copy was re-granted since the snapshot) also
  // fails closed, pinned or not.
  payload.version = entry->version + 1;
  msg.set_payload(payload);
  reply = process->dsm().handle_evict_page(msg);
  EXPECT_EQ(reply.payload_as<EvictPageAckPayload>().result,
            static_cast<std::uint8_t>(EvictResult::kStale));

  // Unpinned with the true version, the same request retires the replica
  // and the bytes come back to the pressured node's pool.
  pte->unpin();
  payload.version = entry->version;
  msg.set_payload(payload);
  reply = process->dsm().handle_evict_page(msg);
  EXPECT_EQ(reply.payload_as<EvictPageAckPayload>().result,
            static_cast<std::uint8_t>(EvictResult::kEvicted));
  EXPECT_EQ(pte->data(), nullptr);
  EXPECT_EQ(process->dsm().frame_pool(1).used_bytes(),
            bytes_before - kPageSize);
  {
    std::lock_guard<dex::HybridLatch> lock(entry->latch);
    EXPECT_FALSE(entry->sharers.contains(1));
  }

  // The dropped replica is a clean re-fault, not a data loss.
  DexThread refault = process->spawn([&] {
    migrate(1);
    EXPECT_EQ(arr.get(0), 77u);
    migrate_back();
  });
  refault.join();
  EXPECT_TRUE(process->dsm().check_invariants());
}

// ---------------------------------------------------------------------------
// Chaos: eviction writeback vs. owner death, eviction vs. live installs
// ---------------------------------------------------------------------------

TEST(EvictionTest, UnreachableHomeSkipsTheEvictionAndLosesNothing) {
  Watchdog dog(90);
  constexpr std::size_t kPages = 4;
  constexpr VirtNs kLease = 20'000;
  const NodeId victim = 1;
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster cluster(config);
  ProcessOptions options;
  options.lease_ns = kLease;
  // Budget == working set: no pressure while the journal is being built;
  // the test applies the overage by hand once the stage is set.
  options.frame_budget_bytes = kPages * kPageSize;
  options.prefetch_max_pages = 0;
  options.home_migration = false;
  auto process = cluster.create_process(options);

  auto pattern = [](std::size_t p) {
    return 0xD00D0000u + static_cast<std::uint64_t>(p);
  };
  GArray<std::uint64_t> arr(*process, kPages * kWordsPerPage, "chaos");
  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  DexThread writer = process->spawn([&] {
    migrate(victim);
    for (std::size_t p = 0; p < kPages; ++p) {
      arr.set(p * kWordsPerPage, pattern(p));
    }
    // Outlive the lease and rewrite so every dirty page has a journaled
    // writeback at the home before the links go dark.
    vclock::advance(kLease + 1);
    for (std::size_t p = 0; p < kPages; ++p) {
      arr.set(p * kWordsPerPage, pattern(p));
    }
    parked.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!parked.load(std::memory_order_acquire)) std::this_thread::yield();

  // The owner's links go dark mid-pressure: its eviction writebacks cannot
  // reach the home. Two stray allocations push the pool over budget so the
  // patrol has real work; it must skip — never free a frame, never count a
  // loss — because each journaled home copy plus the live dirty frame are
  // the only two copies of this data.
  cluster.fabric().injector().isolate_node(victim);
  FramePool& vpool = process->dsm().frame_pool(victim);
  std::uint8_t* stray_a = vpool.allocate();
  std::uint8_t* stray_b = vpool.allocate();
  ASSERT_GT(vpool.used_bytes(), vpool.budget_bytes());
  auto& stats = process->dsm().stats();
  const std::uint64_t skips_before = stats.eviction_skips.load();
  const std::uint64_t evicted_before = stats.evictions_exclusive.load();
  process->dsm().frame_patrol();
  EXPECT_GT(stats.eviction_skips.load(), skips_before);
  EXPECT_EQ(stats.evictions_exclusive.load(), evicted_before);
  vpool.release(stray_a);
  vpool.release(stray_b);
  vpool.drop_credit();
  auto& failure = process->dsm().failure_stats();
  EXPECT_EQ(failure.dirty_pages_lost.load(), 0u);
  for (std::size_t p = 0; p < kPages; ++p) {
    mem::Pte* pte = process->dsm().page_table(victim).find(arr.addr(
        p * kWordsPerPage));
    ASSERT_NE(pte, nullptr);
    EXPECT_NE(pte->data(), nullptr) << "page " << p << " freed on a failed "
                                    << "eviction writeback";
  }

  // The failure detector's verdict lands: recovery finds the journaled
  // copies and recovers every page instead of double-counting the aborted
  // eviction as dirty loss.
  cluster.fail_node(victim);
  release.store(true, std::memory_order_release);
  writer.join();
  EXPECT_FALSE(writer.failed());
  EXPECT_EQ(failure.pages_recovered.load(), kPages);
  EXPECT_EQ(failure.dirty_pages_lost.load(), 0u);
  // Node reclamation drained the dead pool: no leaked frame bytes.
  EXPECT_EQ(process->dsm().frame_pool(victim).used_bytes(), 0u);
  for (std::size_t p = 0; p < kPages; ++p) {
    EXPECT_EQ(arr.get(p * kWordsPerPage), pattern(p)) << "page " << p;
  }
  EXPECT_TRUE(process->dsm().check_invariants());
}

TEST(EvictionTest, PatrolRacingLiveFaultsKeepsTheImageExact) {
  Watchdog dog(120);
  constexpr std::size_t kPages = 16;
  constexpr int kThreads = 4;
  constexpr int kRounds = 60;
  ClusterConfig config;
  config.num_nodes = 4;
  Cluster cluster(config);
  ProcessOptions options;
  options.frame_budget_bytes = 4 * kPageSize;
  options.spill_cold_pages = true;
  options.home_migration = false;
  auto process = cluster.create_process(options);

  // Strided single-writer slots across a working set 4x the budget, with
  // prefetch batches on (the batch-install path must hold its frames via
  // pins while the patrol sweeps concurrently).
  GArray<std::uint64_t> slots(*process, kPages * kWordsPerPage, "race");
  std::atomic<bool> stop{false};
  std::thread patrol([&] {
    while (!stop.load(std::memory_order_acquire)) {
      process->dsm().frame_patrol();
      std::this_thread::yield();
    }
  });

  std::vector<DexThread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.push_back(process->spawn([&, t] {
      migrate(static_cast<NodeId>(t % 4));
      for (int round = 1; round <= kRounds; ++round) {
        for (std::size_t p = 0; p < kPages; ++p) {
          const std::size_t slot = p * kWordsPerPage +
                                   static_cast<std::size_t>(t);
          slots.set(slot, (static_cast<std::uint64_t>(t) << 32) |
                              static_cast<std::uint64_t>(round));
        }
      }
      migrate_back();
    }));
  }
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  patrol.join();

  for (int t = 0; t < kThreads; ++t) {
    for (std::size_t p = 0; p < kPages; ++p) {
      const std::size_t slot = p * kWordsPerPage +
                               static_cast<std::size_t>(t);
      EXPECT_EQ(slots.get(slot),
                (static_cast<std::uint64_t>(t) << 32) |
                    static_cast<std::uint64_t>(kRounds))
          << "thread " << t << " page " << p;
    }
  }
  EXPECT_TRUE(process->dsm().check_invariants());
}

// ---------------------------------------------------------------------------
// Lease-journal gauge and the patrol's journal GC
// ---------------------------------------------------------------------------

TEST(EvictionTest, JournalGaugeTracksRenewalsAndPatrolGCsOrphans) {
  Watchdog dog(90);
  constexpr std::size_t kPages = 3;
  constexpr VirtNs kLease = 20'000;
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster cluster(config);
  ProcessOptions options;
  options.lease_ns = kLease;
  options.prefetch_max_pages = 0;
  options.home_migration = false;
  auto process = cluster.create_process(options);

  GArray<std::uint64_t> arr(*process, kPages * kWordsPerPage, "journal");
  DexThread writer = process->spawn([&] {
    migrate(1);
    for (std::size_t p = 0; p < kPages; ++p) arr.set(p * kWordsPerPage, p);
    vclock::advance(kLease + 1);
    for (std::size_t p = 0; p < kPages; ++p) arr.set(p * kWordsPerPage, p);
  });
  writer.join();
  EXPECT_FALSE(writer.failed());

  // Every renewed page holds one live journaled image at the home.
  auto& stats = process->dsm().stats();
  EXPECT_EQ(stats.journal_bytes.load(), kPages * kPageSize);
  EXPECT_EQ(stats.journal_gcs.load(), 0u);

  // A demand recall releases the grant and its journal entry with it: the
  // gauge drops without any GC.
  EXPECT_EQ(arr.get(0), 0u);
  EXPECT_EQ(stats.journal_bytes.load(), (kPages - 1) * kPageSize);

  // Orphaned entry: simulate a home hand-off that landed on the owner
  // itself (owner == home), the state every natural release path skips —
  // the journaled image at the old home no longer backs any remote dirty
  // copy, and only the patrol's GC can drop it.
  const GAddr orphan = arr.addr(1 * kWordsPerPage);
  mem::DirEntry* entry = process->dsm().directory().find(orphan);
  ASSERT_NE(entry, nullptr);
  {
    std::lock_guard<dex::HybridLatch> lock(entry->latch);
    ASSERT_EQ(entry->exclusive_owner, 1);
    ASSERT_GT(entry->journal_ts, 0);
    entry->home = 1;
  }
  // The patrol runs on this thread's virtual clock; step it past every
  // outstanding lease so the expired-lease recall (page 2) fires too.
  vclock::advance(4 * kLease);
  process->dsm().lease_patrol();
  EXPECT_GE(stats.journal_gcs.load(), 1u);
  {
    std::lock_guard<dex::HybridLatch> lock(entry->latch);
    EXPECT_EQ(entry->journal_ts, 0);
    entry->home = kInvalidNode;  // hand the entry back for teardown
  }
  // The patrol also recalled the remaining expired lease (page 2), so the
  // gauge is fully drained: journal bytes never outlive their owners.
  EXPECT_EQ(stats.journal_bytes.load(), 0u);
  EXPECT_TRUE(process->dsm().check_invariants());
}

}  // namespace
}  // namespace dex
