// Parameterized property tests over the DSM protocol: randomized workloads
// swept across cluster shapes, checked against a sequential reference model
// and the directory invariants.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rand.h"
#include "core/api.h"

namespace dex {
namespace {

struct Shape {
  int nodes;
  int threads;
  bool coalesce;
};

class ProtocolProperty : public ::testing::TestWithParam<Shape> {};

// Property: per-slot single-writer histories. Each thread owns a disjoint
// slot set scattered across shared pages; after any interleaving of writes
// and migrations, every slot holds its owner's last write.
TEST_P(ProtocolProperty, SingleWriterSlotsAlwaysConverge) {
  const Shape shape = GetParam();
  ClusterConfig config;
  config.num_nodes = shape.nodes;
  Cluster cluster(config);
  ProcessOptions options;
  options.coalesce_faults = shape.coalesce;
  auto process = cluster.create_process(options);

  constexpr std::size_t kSlots = 4096;  // 8 pages, heavily interleaved
  GArray<std::uint64_t> slots(*process, kSlots, "slots");

  std::vector<DexThread> threads;
  for (int t = 0; t < shape.threads; ++t) {
    threads.push_back(process->spawn([&, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) * 7919 + 1);
      for (int round = 0; round < 120; ++round) {
        if (round % 40 == 0) {
          migrate(static_cast<NodeId>(
              rng.next_below(static_cast<std::uint64_t>(shape.nodes))));
        }
        // Strided ownership: thread t owns slots where i % threads == t.
        const std::size_t slot =
            static_cast<std::size_t>(t) +
            static_cast<std::size_t>(rng.next_below(
                kSlots / static_cast<std::size_t>(shape.threads))) *
                static_cast<std::size_t>(shape.threads);
        slots.set(slot, (static_cast<std::uint64_t>(t) << 32) |
                            static_cast<std::uint64_t>(round));
      }
      migrate_back();
    }));
  }
  for (auto& t : threads) t.join();

  // Every written slot's tag matches its owner.
  for (std::size_t i = 0; i < kSlots; ++i) {
    const std::uint64_t v = slots.get(i);
    if (v == 0) continue;
    EXPECT_EQ(v >> 32, i % static_cast<std::size_t>(shape.threads)) << i;
  }
  EXPECT_TRUE(process->dsm().check_invariants());
}

// Property: atomic counters over random pages are exact under migration
// churn regardless of cluster shape.
TEST_P(ProtocolProperty, ScatteredAtomicsAreExact) {
  const Shape shape = GetParam();
  ClusterConfig config;
  config.num_nodes = shape.nodes;
  Cluster cluster(config);
  ProcessOptions options;
  options.coalesce_faults = shape.coalesce;
  auto process = cluster.create_process(options);

  constexpr std::size_t kCounters = 64;  // packed: 1 page, max contention
  GArray<std::uint64_t> counters(*process, kCounters, "counters");
  constexpr int kOps = 150;

  std::vector<DexThread> threads;
  for (int t = 0; t < shape.threads; ++t) {
    threads.push_back(process->spawn([&, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 99);
      migrate(static_cast<NodeId>(t % shape.nodes));
      for (int op = 0; op < kOps; ++op) {
        process->atomic_fetch_add(
            counters.addr(static_cast<std::size_t>(rng.next_below(
                kCounters))),
            1);
      }
      migrate_back();
    }));
  }
  for (auto& t : threads) t.join();

  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kCounters; ++i) {
    total += process->atomic_load(counters.addr(i));
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(shape.threads) * kOps);
  EXPECT_TRUE(process->dsm().check_invariants());
}

// Property: read-only data replicated everywhere stays bit-identical.
TEST_P(ProtocolProperty, ReplicatedReadsMatchEverywhere) {
  const Shape shape = GetParam();
  ClusterConfig config;
  config.num_nodes = shape.nodes;
  Cluster cluster(config);
  auto process = cluster.create_process(ProcessOptions{});

  constexpr std::size_t kWords = 3 * kPageSize / 8;
  GArray<std::uint64_t> data(*process, kWords, "golden");
  Xoshiro256 rng(4242);
  std::vector<std::uint64_t> golden(kWords);
  for (auto& w : golden) w = rng.next();
  data.write_block(0, kWords, golden.data());

  std::atomic<int> mismatches{0};
  std::vector<DexThread> threads;
  for (int t = 0; t < shape.threads; ++t) {
    threads.push_back(process->spawn([&, t] {
      migrate(static_cast<NodeId>(t % shape.nodes));
      std::vector<std::uint64_t> copy(kWords);
      data.read_block(0, kWords, copy.data());
      if (copy != golden) mismatches.fetch_add(1);
      migrate_back();
    }));
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_TRUE(process->dsm().check_invariants());
}

// Property: adaptive home migration is invisible to the memory image. The
// same randomized workload — contended strided writers plus a checkpoint-
// churned hot region that actually trips hand-offs — must end bit-identical
// with the knob on and off, with the directory invariants holding after
// every phase.
TEST_P(ProtocolProperty, HomeMigrationPreservesTheMemoryImage) {
  const Shape shape = GetParam();
  constexpr std::size_t kSlots = 2048;       // 4 pages of strided slots
  constexpr std::size_t kHotPages = 4;
  constexpr std::size_t kHotWords = kHotPages * kPageSize / 8;
  const NodeId faulter = shape.nodes > 1 ? 1 : 0;

  std::vector<std::uint64_t> image[2];
  std::uint64_t migrations[2] = {0, 0};
  for (int on = 0; on <= 1; ++on) {
    ClusterConfig config;
    config.num_nodes = shape.nodes;
    Cluster cluster(config);
    ProcessOptions options;
    options.coalesce_faults = shape.coalesce;
    options.home_migration = on != 0;
    auto process = cluster.create_process(options);

    GArray<std::uint64_t> slots(*process, kSlots, "slots");
    GArray<std::uint64_t> hot(*process, kHotWords, "hot");

    for (int phase = 0; phase < 3; ++phase) {
      std::vector<DexThread> threads;
      for (int t = 0; t < shape.threads; ++t) {
        threads.push_back(process->spawn([&, t, phase] {
          Xoshiro256 rng(static_cast<std::uint64_t>(t) * 131 +
                         static_cast<std::uint64_t>(phase) + 7);
          migrate(static_cast<NodeId>(t % shape.nodes));
          for (int round = 0; round < 40; ++round) {
            const std::size_t slot =
                static_cast<std::size_t>(t) +
                static_cast<std::size_t>(rng.next_below(
                    kSlots / static_cast<std::size_t>(shape.threads))) *
                    static_cast<std::size_t>(shape.threads);
            slots.set(slot, (static_cast<std::uint64_t>(t) << 32) |
                                static_cast<std::uint64_t>(round));
          }
          migrate_back();
        }));
      }
      // The hot region's single writer: checkpoint churn (snapshot the
      // range read-only, restore, rewrite) re-faults every hot page with
      // one dominant requester — the pattern that migrates homes.
      threads.push_back(process->spawn([&, phase] {
        migrate(faulter);
        for (int r = 0; r < 4; ++r) {
          process->mprotect(hot.addr(0), kHotPages * kPageSize,
                            mem::kProtRead);
          process->mprotect(hot.addr(0), kHotPages * kPageSize,
                            mem::kProtReadWrite);
          for (std::size_t p = 0; p < kHotPages; ++p) {
            hot.set(p * kPageSize / 8,
                    static_cast<std::uint64_t>(phase) * 1000 +
                        static_cast<std::uint64_t>(r) * 10 + p);
          }
        }
        migrate_back();
      }));
      for (auto& t : threads) t.join();
      EXPECT_TRUE(process->dsm().check_invariants()) << "phase " << phase;
    }

    image[on].resize(kSlots + kHotWords);
    slots.read_block(0, kSlots, image[on].data());
    hot.read_block(0, kHotWords, image[on].data() + kSlots);
    migrations[on] = process->dsm().stats().home_migrations.load();
  }
  EXPECT_EQ(image[0], image[1]);
  EXPECT_EQ(migrations[0], 0u);
  if (shape.nodes > 1) {
    EXPECT_GT(migrations[1], 0u);  // the churned pages really moved home
  }
}

// Property: a frame budget is invisible to the memory image. The same
// randomized workload — contended strided writers over a working set well
// past the per-node budget — must end bit-identical with the budget off
// (unbounded seed behavior, all eviction machinery provably inert) and on
// (evictions actually firing on multi-node shapes), with the directory
// invariants holding throughout.
TEST_P(ProtocolProperty, BudgetedRunPreservesTheMemoryImage) {
  const Shape shape = GetParam();
  constexpr std::size_t kSlots = 4096;  // 8 pages of strided slots
  constexpr std::uint64_t kBudget = 4 * kPageSize;

  std::vector<std::uint64_t> image[2];
  for (int on = 0; on <= 1; ++on) {
    ClusterConfig config;
    config.num_nodes = shape.nodes;
    Cluster cluster(config);
    ProcessOptions options;
    options.coalesce_faults = shape.coalesce;
    options.frame_budget_bytes = on != 0 ? kBudget : 0;
    options.spill_cold_pages = on != 0;  // home frames can shrink too
    auto process = cluster.create_process(options);

    GArray<std::uint64_t> slots(*process, kSlots, "slots");
    std::vector<DexThread> threads;
    for (int t = 0; t < shape.threads; ++t) {
      threads.push_back(process->spawn([&, t] {
        Xoshiro256 rng(static_cast<std::uint64_t>(t) * 271 + 5);
        migrate(static_cast<NodeId>(t % shape.nodes));
        for (int round = 0; round < 80; ++round) {
          const std::size_t slot =
              static_cast<std::size_t>(t) +
              static_cast<std::size_t>(rng.next_below(
                  kSlots / static_cast<std::size_t>(shape.threads))) *
                  static_cast<std::size_t>(shape.threads);
          slots.set(slot, (static_cast<std::uint64_t>(t) << 32) |
                              static_cast<std::uint64_t>(round));
        }
        migrate_back();
      }));
    }
    for (auto& t : threads) t.join();
    process->dsm().frame_patrol();
    EXPECT_TRUE(process->dsm().check_invariants());

    auto& stats = process->dsm().stats();
    const std::uint64_t evictions = stats.evictions_shared.load() +
                                    stats.evictions_exclusive.load() +
                                    stats.evictions_local.load();
    if (on == 0) {
      // Budget 0 is the seed protocol bit-for-bit: zero eviction traffic,
      // zero spills, zero backpressure.
      EXPECT_EQ(evictions, 0u);
      EXPECT_EQ(stats.spills_out.load(), 0u);
      EXPECT_EQ(stats.backpressure_stalls.load(), 0u);
      EXPECT_EQ(stats.backpressure_overshoots.load(), 0u);
    } else {
      // Pressure was real: something had to give (remote evictions on
      // multi-node shapes; on one node the cold tier absorbs the overage).
      EXPECT_GT(evictions + stats.spills_out.load(), 0u);
      if (stats.backpressure_overshoots.load() == 0) {
        EXPECT_LE(process->dsm().frame_high_water_bytes(), kBudget);
      }
    }

    image[on].resize(kSlots);
    slots.read_block(0, kSlots, image[on].data());
  }
  EXPECT_EQ(image[0], image[1]);
}

// Property: the async protocol engine is invisible to the memory image.
// The same randomized workload — contended strided writers plus a
// sequential read scan that arms prefetch streams — must end bit-identical
// with the engine off (blocking seed protocol, every engine counter
// provably zero) and on (transactions actually flowing through doorbell
// batches on multi-node shapes), with directory invariants throughout.
TEST_P(ProtocolProperty, AsyncEnginePreservesTheMemoryImage) {
  const Shape shape = GetParam();
  constexpr std::size_t kSlots = 4096;  // 8 pages of strided slots

  std::vector<std::uint64_t> image[2];
  for (int on = 0; on <= 1; ++on) {
    ClusterConfig config;
    config.num_nodes = shape.nodes;
    Cluster cluster(config);
    ProcessOptions options;
    options.coalesce_faults = shape.coalesce;
    options.async_engine = on != 0;
    options.max_inflight_transactions = 8;
    options.prefetch_max_pages = 4;  // scans arm engine-ridden streams
    auto process = cluster.create_process(options);

    GArray<std::uint64_t> slots(*process, kSlots, "slots");
    std::vector<DexThread> threads;
    for (int t = 0; t < shape.threads; ++t) {
      threads.push_back(process->spawn([&, t] {
        Xoshiro256 rng(static_cast<std::uint64_t>(t) * 613 + 11);
        migrate(static_cast<NodeId>(t % shape.nodes));
        for (int round = 0; round < 80; ++round) {
          const std::size_t slot =
              static_cast<std::size_t>(t) +
              static_cast<std::size_t>(rng.next_below(
                  kSlots / static_cast<std::size_t>(shape.threads))) *
                  static_cast<std::size_t>(shape.threads);
          slots.set(slot, (static_cast<std::uint64_t>(t) << 32) |
                              static_cast<std::uint64_t>(round));
        }
        // Sequential sweep: the stride detector proves a stream and the
        // engine (when on) runs the chained prefetch windows.
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < kSlots; i += 64) sum += slots.get(i);
        (void)sum;
        migrate_back();
      }));
    }
    for (auto& t : threads) t.join();
    EXPECT_TRUE(process->dsm().check_invariants());

    auto& stats = process->dsm().stats();
    if (on == 0) {
      // Engine off is the blocking seed protocol bit-for-bit: no
      // transaction ever touches the engine, no doorbell ever posts.
      EXPECT_EQ(stats.engine_submitted.load(), 0u);
      EXPECT_EQ(stats.engine_resumes.load(), 0u);
      EXPECT_EQ(stats.doorbell_batches.load(), 0u);
      EXPECT_EQ(stats.batched_posts.load(), 0u);
      EXPECT_EQ(stats.engine_pump_handoffs.load(), 0u);
    } else if (shape.nodes > 1) {
      // Remote faults existed, so they rode the engine.
      EXPECT_GT(stats.engine_submitted.load(), 0u);
    }

    image[on].resize(kSlots);
    slots.read_block(0, kSlots, image[on].data());
  }
  EXPECT_EQ(image[0], image[1]);
}

// Property: joint thread<->page placement is invisible to the memory
// image. The same workload — contended strided writers plus a misplaced
// checkpoint churner whose sustained remote fault mass actually trips
// thread migration — must end bit-identical with the knob off (seed
// placement, every advisor counter provably zero) and on (threads really
// moving on multi-node shapes), with directory invariants throughout.
TEST_P(ProtocolProperty, AutoThreadMigrationPreservesTheMemoryImage) {
  const Shape shape = GetParam();
  constexpr std::size_t kSlots = 2048;       // 4 pages of strided slots
  constexpr std::size_t kHotPages = 8;
  constexpr std::size_t kHotWords = kHotPages * kPageSize / 8;
  const NodeId misplaced = shape.nodes > 1 ? 1 : 0;

  std::vector<std::uint64_t> image[2];
  std::uint64_t migrations[2] = {0, 0};
  for (int on = 0; on <= 1; ++on) {
    ClusterConfig config;
    config.num_nodes = shape.nodes;
    Cluster cluster(config);
    ProcessOptions options;
    options.coalesce_faults = shape.coalesce;
    // Pin the homes: with pages unable to chase their faulter, a
    // misplaced thread's only path to locality is moving itself.
    options.home_migration = false;
    options.auto_thread_migration = on != 0;
    auto process = cluster.create_process(options);

    GArray<std::uint64_t> slots(*process, kSlots, "slots");
    GArray<std::uint64_t> hot(*process, kHotWords, "hot");

    std::vector<DexThread> threads;
    for (int t = 0; t < shape.threads; ++t) {
      threads.push_back(process->spawn([&, t] {
        Xoshiro256 rng(static_cast<std::uint64_t>(t) * 947 + 3);
        migrate(static_cast<NodeId>(t % shape.nodes));
        for (int round = 0; round < 40; ++round) {
          const std::size_t slot =
              static_cast<std::size_t>(t) +
              static_cast<std::size_t>(rng.next_below(
                  kSlots / static_cast<std::size_t>(shape.threads))) *
                  static_cast<std::size_t>(shape.threads);
          slots.set(slot, (static_cast<std::uint64_t>(t) << 32) |
                              static_cast<std::uint64_t>(round));
        }
        migrate_back();
      }));
    }
    // The misplaced thread: parked away from its origin-homed hot region,
    // checkpoint churn re-faults every hot page against home 0 each round
    // — the sustained multi-page remote mass the advisor migrates for.
    threads.push_back(process->spawn([&] {
      migrate(misplaced);
      for (int r = 1; r <= 12; ++r) {
        process->mprotect(hot.addr(0), kHotPages * kPageSize,
                          mem::kProtRead);
        process->mprotect(hot.addr(0), kHotPages * kPageSize,
                          mem::kProtReadWrite);
        for (std::size_t p = 0; p < kHotPages; ++p) {
          hot.set(p * kPageSize / 8,
                  static_cast<std::uint64_t>(r) * 10 + p);
        }
      }
      migrate_back();
    }));
    for (auto& t : threads) t.join();
    EXPECT_TRUE(process->dsm().check_invariants());

    auto& stats = process->dsm().stats();
    migrations[on] = stats.thread_migrations_auto.load();
    if (on == 0) {
      // Knob off is the seed placement bit-for-bit: no advisor exists, no
      // placement counter can tick.
      EXPECT_EQ(process->placement(), nullptr);
      EXPECT_EQ(stats.thread_migrations_auto.load(), 0u);
      EXPECT_EQ(stats.placement_windows.load(), 0u);
      EXPECT_EQ(stats.placement_vetoes.load(), 0u);
      EXPECT_EQ(stats.placement_deferrals.load(), 0u);
      EXPECT_EQ(stats.placement_arbitrations.load(), 0u);
      EXPECT_EQ(stats.placement_hints_warmed.load(), 0u);
    }

    image[on].resize(kSlots + kHotWords);
    slots.read_block(0, kSlots, image[on].data());
    hot.read_block(0, kHotWords, image[on].data() + kSlots);
  }
  EXPECT_EQ(image[0], image[1]);
  EXPECT_EQ(migrations[0], 0u);
  if (shape.nodes > 1) {
    EXPECT_GT(migrations[1], 0u);  // the misplaced thread really moved
  }
}

// Property: origin-failover replication is invisible to the memory image.
// The same randomized workload — contended strided writers whose faults at
// origin-homed pages feed the capture queue — must end bit-identical with
// the knob off (seed protocol, every replication counter provably zero)
// and on (directory mutations really streaming to the deputy on
// multi-node shapes), with directory invariants throughout. No failure is
// injected here; the recovery path is exercised in test_recovery.cc.
TEST_P(ProtocolProperty, OriginFailoverPreservesTheMemoryImage) {
  const Shape shape = GetParam();
  constexpr std::size_t kSlots = 4096;  // 8 pages of strided slots

  std::vector<std::uint64_t> image[2];
  std::uint64_t replicated[2] = {0, 0};
  for (int on = 0; on <= 1; ++on) {
    ClusterConfig config;
    config.num_nodes = shape.nodes;
    Cluster cluster(config);
    ProcessOptions options;
    options.coalesce_faults = shape.coalesce;
    options.origin_failover = on != 0;
    auto process = cluster.create_process(options);

    GArray<std::uint64_t> slots(*process, kSlots, "slots");
    std::vector<DexThread> threads;
    for (int t = 0; t < shape.threads; ++t) {
      threads.push_back(process->spawn([&, t] {
        Xoshiro256 rng(static_cast<std::uint64_t>(t) * 389 + 17);
        migrate(static_cast<NodeId>(t % shape.nodes));
        for (int round = 0; round < 80; ++round) {
          const std::size_t slot =
              static_cast<std::size_t>(t) +
              static_cast<std::size_t>(rng.next_below(
                  kSlots / static_cast<std::size_t>(shape.threads))) *
                  static_cast<std::size_t>(shape.threads);
          slots.set(slot, (static_cast<std::uint64_t>(t) << 32) |
                              static_cast<std::uint64_t>(round));
        }
        migrate_back();
      }));
    }
    for (auto& t : threads) t.join();
    process->dsm().flush_replication();  // drain the capture tail
    EXPECT_TRUE(process->dsm().check_invariants());

    auto& stats = process->dsm().stats();
    replicated[on] = stats.dir_mutations_replicated.load();
    if (on == 0) {
      // Knob off is the seed protocol bit-for-bit: no capture queue, no
      // replication traffic, no deputy store, no failover.
      EXPECT_EQ(stats.dir_mutations_replicated.load(), 0u);
      EXPECT_EQ(stats.replication_batches.load(), 0u);
      EXPECT_EQ(stats.replica_journal_pages.load(), 0u);
      EXPECT_EQ(stats.scavenge_pages_rebuilt.load(), 0u);
      EXPECT_EQ(stats.replication_lag.load(), 0u);
      EXPECT_EQ(process->dsm().failure_stats().origin_failovers.load(), 0u);
    }
    // The origin never died, so no run promotes a deputy.
    EXPECT_EQ(process->dsm().failure_stats().origin_failovers.load(), 0u);
    EXPECT_EQ(process->origin(), NodeId{0});

    image[on].resize(kSlots);
    slots.read_block(0, kSlots, image[on].data());
  }
  EXPECT_EQ(image[0], image[1]);
  EXPECT_EQ(replicated[0], 0u);
  if (shape.nodes > 1) {
    EXPECT_GT(replicated[1], 0u);  // mutations really reached the deputy
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ProtocolProperty,
    ::testing::Values(Shape{1, 4, true}, Shape{2, 4, true},
                      Shape{2, 8, false}, Shape{4, 8, true},
                      Shape{8, 8, true}, Shape{3, 6, false}),
    [](const auto& info) {
      const Shape& s = info.param;
      return "n" + std::to_string(s.nodes) + "t" +
             std::to_string(s.threads) +
             (s.coalesce ? "_coalesce" : "_nocoalesce");
    });

}  // namespace
}  // namespace dex
