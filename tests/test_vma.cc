// AddressSpace / VMA tests (§III-D substrate).
#include <gtest/gtest.h>

#include "mem/vma.h"

namespace dex::mem {
namespace {

TEST(AddressSpace, MmapReturnsPageAlignedDisjointRanges) {
  AddressSpace space;
  const GAddr a = space.mmap(1000, kProtReadWrite, "a");
  const GAddr b = space.mmap(5000, kProtRead, "b");
  ASSERT_NE(a, kNullGAddr);
  ASSERT_NE(b, kNullGAddr);
  EXPECT_EQ(page_offset(a), 0u);
  EXPECT_EQ(page_offset(b), 0u);
  const auto va = space.find(a);
  const auto vb = space.find(b);
  ASSERT_TRUE(va && vb);
  EXPECT_EQ(va->length(), kPageSize);       // rounded up
  EXPECT_EQ(vb->length(), 2 * kPageSize);
  EXPECT_TRUE(va->end <= vb->start || vb->end <= va->start);
}

TEST(AddressSpace, GuardGapBetweenMappings) {
  // Adjacent allocations must not share a page boundary (see
  // find_free_range_locked) — unrelated objects never co-locate.
  AddressSpace space;
  const GAddr a = space.mmap(kPageSize, kProtReadWrite);
  const GAddr b = space.mmap(kPageSize, kProtReadWrite);
  EXPECT_GE(b > a ? b - (a + kPageSize) : a - (b + kPageSize), kPageSize);
}

TEST(AddressSpace, FindMissesUnmappedAddresses) {
  AddressSpace space;
  const GAddr a = space.mmap(kPageSize, kProtReadWrite);
  EXPECT_TRUE(space.find(a).has_value());
  EXPECT_TRUE(space.find(a + kPageSize - 1).has_value());
  EXPECT_FALSE(space.find(a + kPageSize).has_value());
  EXPECT_FALSE(space.find(kNullGAddr).has_value());
}

TEST(AddressSpace, MmapHintRespectedAndOverlapRejected) {
  AddressSpace space;
  const GAddr hint = AddressSpace::kBase + 64 * kPageSize;
  const GAddr a = space.mmap(2 * kPageSize, kProtReadWrite, "fixed", hint);
  EXPECT_EQ(a, hint);
  // Overlapping fixed mapping is rejected.
  EXPECT_EQ(space.mmap(kPageSize, kProtRead, "clash", hint + kPageSize),
            kNullGAddr);
}

TEST(AddressSpace, MunmapWholeAndPartial) {
  AddressSpace space;
  const GAddr a = space.mmap(4 * kPageSize, kProtReadWrite, "big");
  // Punch a hole in the middle: VMA splits into two.
  EXPECT_TRUE(space.munmap(a + kPageSize, kPageSize));
  EXPECT_TRUE(space.find(a).has_value());
  EXPECT_FALSE(space.find(a + kPageSize).has_value());
  EXPECT_TRUE(space.find(a + 2 * kPageSize).has_value());
  EXPECT_EQ(space.vma_count(), 2u);
  // Unmapping an untouched range fails.
  EXPECT_FALSE(space.munmap(a + 64 * kPageSize, kPageSize));
}

TEST(AddressSpace, MprotectSplitsAndChangesPermissions) {
  AddressSpace space;
  const GAddr a = space.mmap(3 * kPageSize, kProtReadWrite, "rw");
  EXPECT_TRUE(space.mprotect(a + kPageSize, kPageSize, kProtRead));
  EXPECT_EQ(space.find(a)->prot, kProtReadWrite);
  EXPECT_EQ(space.find(a + kPageSize)->prot, kProtRead);
  EXPECT_EQ(space.find(a + 2 * kPageSize)->prot, kProtReadWrite);
  // Tag preserved through the split.
  EXPECT_EQ(space.find(a + kPageSize)->tag, "rw");
}

TEST(AddressSpace, InstallReplicaOverwritesStaleEntries) {
  AddressSpace replica;
  replica.install_replica(Vma{0x10000, 0x12000, kProtReadWrite, "v1"});
  replica.install_replica(Vma{0x11000, 0x13000, kProtRead, "v2"});
  EXPECT_EQ(replica.find(0x10000)->tag, "v1");
  EXPECT_EQ(replica.find(0x11500)->tag, "v2");
  EXPECT_EQ(replica.find(0x11500)->prot, kProtRead);
}

TEST(AddressSpace, VersionBumpsOnEveryMutation) {
  AddressSpace space;
  const auto v0 = space.version();
  const GAddr a = space.mmap(kPageSize, kProtReadWrite);
  EXPECT_GT(space.version(), v0);
  const auto v1 = space.version();
  space.mprotect(a, kPageSize, kProtRead);
  EXPECT_GT(space.version(), v1);
}

TEST(VmaRecord, RoundTrip) {
  Vma vma{0x1000, 0x3000, kProtRead, "mytag"};
  const Vma back = from_record(to_record(vma));
  EXPECT_EQ(back.start, vma.start);
  EXPECT_EQ(back.end, vma.end);
  EXPECT_EQ(back.prot, vma.prot);
  EXPECT_EQ(back.tag, vma.tag);
}

}  // namespace
}  // namespace dex::mem
