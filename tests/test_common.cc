// Unit tests for the common substrate: radix tree, histogram, RNGs,
// generators, virtual clocks.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

#include "common/histogram.h"
#include "common/radix_tree.h"
#include "common/rand.h"
#include "common/rmat.h"
#include "common/textgen.h"
#include "common/virtual_clock.h"

namespace dex {
namespace {

// ---------------------------------------------------------------------------
// RadixTree
// ---------------------------------------------------------------------------

TEST(RadixTree, LookupMissingReturnsNull) {
  RadixTree<int> tree;
  EXPECT_EQ(tree.lookup(0), nullptr);
  EXPECT_EQ(tree.lookup(12345), nullptr);
  EXPECT_TRUE(tree.empty());
}

TEST(RadixTree, GetOrCreateRoundTrips) {
  RadixTree<int> tree;
  tree.get_or_create(42) = 7;
  ASSERT_NE(tree.lookup(42), nullptr);
  EXPECT_EQ(*tree.lookup(42), 7);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RadixTree, DistinguishesNearbyAndFarKeys) {
  RadixTree<std::uint64_t> tree;
  const std::uint64_t keys[] = {0, 1, 63, 64, 65, 4095, 4096,
                                std::uint64_t{1} << 40,
                                (std::uint64_t{1} << 52) - 1};
  for (const auto k : keys) tree.get_or_create(k) = k * 3 + 1;
  for (const auto k : keys) {
    ASSERT_NE(tree.lookup(k), nullptr) << k;
    EXPECT_EQ(*tree.lookup(k), k * 3 + 1);
  }
  EXPECT_EQ(tree.size(), std::size(keys));
}

TEST(RadixTree, EraseRemovesOnlyTarget) {
  RadixTree<int> tree;
  tree.get_or_create(10) = 1;
  tree.get_or_create(11) = 2;
  EXPECT_TRUE(tree.erase(10));
  EXPECT_FALSE(tree.erase(10));
  EXPECT_EQ(tree.lookup(10), nullptr);
  ASSERT_NE(tree.lookup(11), nullptr);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RadixTree, ForEachVisitsInKeyOrder) {
  RadixTree<int> tree;
  for (const std::uint64_t k : {900u, 5u, 77u, 4096u, 12u}) {
    tree.get_or_create(k) = static_cast<int>(k);
  }
  std::vector<std::uint64_t> seen;
  tree.for_each([&](std::uint64_t k, int& v) {
    seen.push_back(k);
    EXPECT_EQ(v, static_cast<int>(k));
  });
  const std::vector<std::uint64_t> expect = {5, 12, 77, 900, 4096};
  EXPECT_EQ(seen, expect);
}

TEST(RadixTree, SparseStressAgainstStdMap) {
  RadixTree<std::uint64_t> tree;
  std::map<std::uint64_t, std::uint64_t> model;
  Xoshiro256 rng(99);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t key = rng.next() >> (rng.next_below(40));
    const std::uint64_t masked = key & ((std::uint64_t{1} << 52) - 1);
    if (rng.next_below(4) == 0) {
      EXPECT_EQ(tree.erase(masked), model.erase(masked) > 0);
    } else {
      tree.get_or_create(masked) = i;
      model[masked] = static_cast<std::uint64_t>(i);
    }
  }
  EXPECT_EQ(tree.size(), model.size());
  for (const auto& [k, v] : model) {
    ASSERT_NE(tree.lookup(k), nullptr);
    EXPECT_EQ(*tree.lookup(k), v);
  }
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(Histogram, BasicStats) {
  LatencyHistogram h;
  for (const std::uint64_t v : {100u, 200u, 300u}) h.record(v);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 300u);
}

TEST(Histogram, PercentileApproximation) {
  LatencyHistogram h;
  for (int i = 0; i < 900; ++i) h.record(1000);
  for (int i = 0; i < 100; ++i) h.record(100000);
  // p50 near 1000 (within one bucket), p99 near 100000.
  EXPECT_LE(h.percentile(0.5), 2000u);
  EXPECT_GE(h.percentile(0.99), 60000u);
}

TEST(Histogram, DetectsBimodalDistribution) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.record(19000 + (i % 100));
  for (int i = 0; i < 300; ++i) h.record(159000 + (i % 100));
  const auto modes = h.modes(0.05);
  ASSERT_GE(modes.size(), 2u);
  // One mode in each cluster.
  bool low = false, high = false;
  for (const auto m : modes) {
    if (m > 10000 && m < 40000) low = true;
    if (m > 100000 && m < 300000) high = true;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(Histogram, ThreadSafeRecording) {
  LatencyHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 10000; ++i) h.record(500);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), 40000u);
}

// ---------------------------------------------------------------------------
// RNGs
// ---------------------------------------------------------------------------

TEST(NpbRand, MatchesReferenceFirstValues) {
  // randlc with the EP seed: values must lie in (0,1) and be reproducible.
  NpbRand a(271828183.0), b(271828183.0);
  for (int i = 0; i < 1000; ++i) {
    const double va = a.next();
    EXPECT_GT(va, 0.0);
    EXPECT_LT(va, 1.0);
    EXPECT_DOUBLE_EQ(va, b.next());
  }
}

TEST(NpbRand, SkipMatchesSequentialAdvance) {
  NpbRand seq(271828183.0);
  for (int i = 0; i < 777; ++i) seq.next();
  NpbRand jump(271828183.0);
  jump.skip(777);
  EXPECT_DOUBLE_EQ(seq.next(), jump.next());
}

TEST(Xoshiro, DoublesInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ---------------------------------------------------------------------------
// R-MAT / CSR
// ---------------------------------------------------------------------------

TEST(Rmat, GeneratesRequestedEdgeCount) {
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 4;
  const auto edges = generate_rmat(params);
  EXPECT_EQ(edges.size(), (1u << 10) * 4u);
  for (const auto& e : edges) {
    EXPECT_LT(e.src, 1u << 10);
    EXPECT_LT(e.dst, 1u << 10);
  }
}

TEST(Rmat, DeterministicForSeed) {
  RmatParams params;
  params.scale = 8;
  const auto a = generate_rmat(params);
  const auto b = generate_rmat(params);
  EXPECT_EQ(a, b);
}

TEST(Rmat, SkewedDegreeDistribution) {
  // R-MAT with Graph500 parameters is heavy-tailed: the max degree should
  // far exceed the average.
  RmatParams params;
  params.scale = 12;
  params.edge_factor = 8;
  const auto csr = build_csr(1u << 12, generate_rmat(params), true);
  std::uint64_t max_deg = 0;
  for (std::uint32_t v = 0; v < csr.num_vertices; ++v) {
    max_deg = std::max(max_deg, csr.degree(v));
  }
  const double avg = static_cast<double>(csr.num_edges()) /
                     csr.num_vertices;
  EXPECT_GT(static_cast<double>(max_deg), 8.0 * avg);
}

TEST(Csr, SymmetrizeDropsSelfLoopsAndMirrors) {
  const std::vector<Edge> edges = {{0, 1}, {1, 1}, {2, 0}};
  const auto csr = build_csr(3, edges, true);
  EXPECT_EQ(csr.num_edges(), 4u);  // 0-1, 1-0, 2-0, 0-2
  EXPECT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.degree(1), 1u);
  EXPECT_EQ(csr.degree(2), 1u);
}

TEST(Csr, OffsetsConsistent) {
  RmatParams params;
  params.scale = 9;
  const auto csr = build_csr(1u << 9, generate_rmat(params), false);
  EXPECT_EQ(csr.offsets.front(), 0u);
  EXPECT_EQ(csr.offsets.back(), csr.num_edges());
  for (std::uint32_t v = 0; v < csr.num_vertices; ++v) {
    EXPECT_LE(csr.offsets[v], csr.offsets[v + 1]);
  }
}

// ---------------------------------------------------------------------------
// Text generator
// ---------------------------------------------------------------------------

TEST(TextGen, PlantedCountsAreExact) {
  TextGenParams params;
  params.bytes = 1 << 18;
  const auto text = generate_text(params);
  ASSERT_EQ(text.key_counts.size(), params.keys.size());
  for (std::size_t k = 0; k < params.keys.size(); ++k) {
    EXPECT_EQ(count_occurrences(text.data.data(), text.data.size(),
                                params.keys[k]),
              text.key_counts[k])
        << params.keys[k];
    EXPECT_GT(text.key_counts[k], 0u);
  }
}

TEST(TextGen, DeterministicForSeed) {
  TextGenParams params;
  params.bytes = 4096;
  const auto a = generate_text(params);
  const auto b = generate_text(params);
  EXPECT_EQ(a.data, b.data);
  EXPECT_EQ(a.key_counts, b.key_counts);
}

TEST(TextGen, CountOccurrencesHandlesOverlaps) {
  const char* s = "aaaa";
  EXPECT_EQ(count_occurrences(s, 4, "aa"), 3u);
  EXPECT_EQ(count_occurrences(s, 4, "aaaa"), 1u);
  EXPECT_EQ(count_occurrences(s, 4, "aaaaa"), 0u);
  EXPECT_EQ(count_occurrences(s, 4, ""), 0u);
}

// ---------------------------------------------------------------------------
// VirtualClock
// ---------------------------------------------------------------------------

TEST(VirtualClock, AdvanceAndObserve) {
  VirtualClock clock;
  clock.advance(100);
  EXPECT_EQ(clock.now(), 100u);
  clock.observe(50);  // in the past: no-op
  EXPECT_EQ(clock.now(), 100u);
  clock.observe(500);
  EXPECT_EQ(clock.now(), 500u);
}

TEST(VirtualClock, ThreadLocalBindingIsScoped) {
  VirtualClock mine(1000);
  {
    ScopedClockBinding bind(&mine);
    EXPECT_EQ(vclock::now(), 1000u);
    vclock::advance(5);
    EXPECT_EQ(mine.now(), 1005u);
  }
  // Fallback clock restored; advancing it must not touch `mine`.
  vclock::advance(7);
  EXPECT_EQ(mine.now(), 1005u);
}

TEST(VirtualClock, ObserveIsMonotonicUnderRaces) {
  VirtualClock clock;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&clock, t] {
      for (int i = 0; i < 10000; ++i) {
        clock.observe(static_cast<VirtNs>(t * 10000 + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(clock.now(), 79999u);
}

}  // namespace
}  // namespace dex
