// Team (pooled OpenMP-style workers) and parallel helpers.
#include <gtest/gtest.h>

#include <atomic>

#include "core/api.h"

namespace dex {
namespace {

class TeamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.num_nodes = 3;
    cluster_ = std::make_unique<Cluster>(config);
    process_ = cluster_->create_process(ProcessOptions{});
  }
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Process> process_;
};

TEST_F(TeamTest, RunsEveryWorkerExactlyOncePerRegion) {
  TeamOptions options;
  options.nodes = 3;
  options.threads_per_node = 2;
  core::Team team(*process_, options);

  std::atomic<int> hits{0};
  std::atomic<int> wrong_node{0};
  for (int region = 0; region < 4; ++region) {
    team.run_region([&](int tid, int nthreads) {
      EXPECT_EQ(nthreads, 6);
      if (current_node() != options.node_of(tid)) wrong_node.fetch_add(1);
      hits.fetch_add(1);
    });
  }
  EXPECT_EQ(hits.load(), 24);
  EXPECT_EQ(wrong_node.load(), 0);
}

TEST_F(TeamTest, RepeatedRegionsReuseRemoteWorkers) {
  TeamOptions options;
  options.nodes = 2;
  options.threads_per_node = 2;
  core::Team team(*process_, options);

  team.run_region([](int, int) {});
  const VirtNs first = team.run_region([](int, int) {});
  const VirtNs third = team.run_region([](int, int) {});
  // After the first region the migrations take the fork-from-worker path;
  // region costs settle.
  EXPECT_NEAR(static_cast<double>(first), static_cast<double>(third),
              0.25 * static_cast<double>(first));
}

TEST_F(TeamTest, RegionSpanCoversSlowestWorker) {
  TeamOptions options;
  options.nodes = 1;
  options.threads_per_node = 4;
  options.migrate = false;
  core::Team team(*process_, options);
  const VirtNs span = team.run_region([](int tid, int) {
    compute(tid == 2 ? 5000000 : 1000);  // one slow worker: 5 ms
  });
  EXPECT_GE(span, 5000000u);
  EXPECT_LT(span, 8000000u);
}

TEST_F(TeamTest, ForRegionCoversRangeExactlyOnce) {
  TeamOptions options;
  options.nodes = 3;
  options.threads_per_node = 2;
  core::Team team(*process_, options);
  GArray<std::uint64_t> marks(*process_, 1000, "marks");
  team.for_region(0, 1000, [&](std::uint64_t lo, std::uint64_t hi, int) {
    for (std::uint64_t i = lo; i < hi; ++i) {
      marks.set(i, marks.get(i) + 1);
    }
  });
  for (std::uint64_t i = 0; i < 1000; i += 37) {
    ASSERT_EQ(marks.get(i), 1u) << i;
  }
}

TEST_F(TeamTest, RunTeamJoinsClocks) {
  TeamOptions options;
  options.nodes = 1;
  options.threads_per_node = 3;
  options.migrate = false;
  const VirtNs before = now();
  const VirtNs span = run_team(*process_, options, [&](int, int) {
    compute(2000000);
  });
  EXPECT_GE(span, 2000000u);
  // The caller's clock advanced past every worker's finish time.
  EXPECT_GE(now() - before, span);
}

TEST_F(TeamTest, ParallelForPartitionsDisjointly) {
  TeamOptions options;
  options.nodes = 2;
  options.threads_per_node = 2;
  GArray<std::uint64_t> counters(*process_, 512, "pf");
  parallel_for(*process_, options, 0, 512,
               [&](std::uint64_t lo, std::uint64_t hi, int) {
                 for (std::uint64_t i = lo; i < hi; ++i) {
                   counters.set(i, counters.get(i) + 1);
                 }
               });
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < 512; ++i) total += counters.get(i);
  EXPECT_EQ(total, 512u);
}

}  // namespace
}  // namespace dex
