// Ablation: §III-E bulk-transfer strategies.
//
// The paper's hybrid (pre-registered RDMA sink + one memcpy) vs the two
// alternatives it rejects: registering an RDMA memory region per transfer
// (registration dominates) and fragmenting page data into VERB-sized
// control messages. Also quantifies the pre-mapped send/receive buffer
// pools vs per-message DMA mapping.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/virtual_clock.h"
#include "net/fabric.h"

namespace {

dex::VirtNs measure_bulk(dex::net::FabricMode::BulkPath path,
                         std::size_t pages) {
  using namespace dex;
  net::FabricOptions options;
  options.num_nodes = 2;
  options.mode.bulk_path = path;
  net::Fabric fabric(options);

  std::vector<std::uint8_t> src(kPageSize, 0x77), dst(kPageSize);
  VirtualClock clock;
  ScopedClockBinding bind(&clock);
  for (std::size_t i = 0; i < pages; ++i) {
    fabric.bulk_transfer(0, 1, src.data(), src.size(), dst.data());
  }
  return clock.now() / pages;
}

dex::VirtNs measure_small(bool pools, int messages) {
  using namespace dex;
  net::FabricOptions options;
  options.num_nodes = 2;
  options.mode.use_buffer_pools = pools;
  net::Fabric fabric(options);
  fabric.register_handler(net::MsgType::kDelegateFutex,
                          [](const net::Message&) {
                            net::Message reply;
                            reply.type = net::MsgType::kDelegateFutex;
                            return reply;
                          });
  VirtualClock clock;
  ScopedClockBinding bind(&clock);
  net::Message msg;
  msg.type = net::MsgType::kDelegateFutex;
  msg.dst = 1;
  msg.set_payload(std::uint64_t{1});
  for (int i = 0; i < messages; ++i) (void)fabric.call(0, msg);
  return clock.now() / static_cast<VirtNs>(messages);
}

}  // namespace

int main() {
  using namespace dex;
  using namespace dex::bench;
  constexpr std::size_t kPages = 1000;

  print_header("Ablation: SIII-E bulk page-transfer paths (4 KB x 1000)");
  std::printf("%-38s %16s\n", "strategy", "per page (us)");
  print_rule(58);
  std::printf("%-38s %16s\n", "RDMA sink + copy (DeX hybrid)",
              us(measure_bulk(net::FabricMode::BulkPath::kRdmaSink, kPages))
                  .c_str());
  std::printf(
      "%-38s %16s\n", "per-transfer RDMA registration",
      us(measure_bulk(net::FabricMode::BulkPath::kRdmaPerPageReg, kPages))
          .c_str());
  std::printf(
      "%-38s %16s\n", "fragmented over VERB",
      us(measure_bulk(net::FabricMode::BulkPath::kVerbFragmented, kPages))
          .c_str());

  std::printf("\n");
  print_header("Ablation: SIII-E pooled vs per-message DMA-mapped buffers");
  std::printf("%-38s %16s\n", "mode", "round trip (us)");
  print_rule(58);
  std::printf("%-38s %16s\n", "pre-mapped buffer pools (DeX)",
              us(measure_small(true, 2000)).c_str());
  std::printf("%-38s %16s\n", "DMA map per message",
              us(measure_small(false, 2000)).c_str());

  std::printf(
      "\nThe hybrid avoids the ~45 us per-page registration and the "
      "per-fragment VERB\noverheads at the cost of one local memcpy "
      "(SIII-E).\n");
  return 0;
}
