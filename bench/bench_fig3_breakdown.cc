// Figure 3: "Breakdown of the migration latency at the remote node."
//
// Splits the remote-side cost of the 1st and 2nd forward migration into
// the per-process remote-worker bring-up and the remote-thread fork +
// context load. The paper's bars: 1st = ~620 us remote worker + ~180 us
// thread setup; 2nd = ~230 us thread setup only.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"

int main() {
  using namespace dex;
  using namespace dex::bench;

  ClusterConfig cluster_config;
  cluster_config.num_nodes = 2;
  Cluster cluster(cluster_config);
  auto process = cluster.create_process(ProcessOptions{});

  DexThread thread = process->spawn([&] {
    for (int i = 0; i < 3; ++i) {
      migrate(1);
      migrate_back();
    }
  });
  thread.join();

  print_header("Figure 3: breakdown of forward-migration latency at the "
               "remote node (us)");
  std::printf("%-14s %16s %16s %12s %12s\n", "migration", "remote worker",
              "thread setup", "transfer", "total");
  print_rule();

  int forward = 0;
  for (const auto& record : process->migration_log()) {
    if (record.backward) continue;
    ++forward;
    char label[16];
    std::snprintf(label, sizeof(label), "%d%s", forward,
                  forward == 1 ? "st" : (forward == 2 ? "nd" : "rd"));
    std::printf("%-14s %16s %16s %12s %12s\n", label,
                us(record.remote_worker_ns).c_str(),
                us(record.thread_setup_ns).c_str(),
                us(record.transfer_ns + record.origin_side_ns).c_str(),
                us(record.total_ns).c_str());
  }
  print_rule();

  // ASCII bars, normalized to the 1st migration.
  const auto log = process->migration_log();
  VirtNs first_total = 0;
  for (const auto& r : log) {
    if (!r.backward) {
      first_total = r.total_ns;
      break;
    }
  }
  std::printf("\n");
  forward = 0;
  for (const auto& record : log) {
    if (record.backward) continue;
    ++forward;
    const int worker_bar = static_cast<int>(
        60.0 * static_cast<double>(record.remote_worker_ns) /
        static_cast<double>(first_total));
    const int thread_bar = static_cast<int>(
        60.0 * static_cast<double>(record.thread_setup_ns) /
        static_cast<double>(first_total));
    std::printf("  %d: [", forward);
    for (int i = 0; i < worker_bar; ++i) std::putchar('#');   // remote worker
    for (int i = 0; i < thread_bar; ++i) std::putchar('=');   // thread setup
    std::printf("]\n");
  }
  std::printf("  # remote worker bring-up   = thread fork + context load\n");
  std::printf(
      "\nPaper Figure 3: the 1st migration is dominated by ~620 us of "
      "per-process remote\nworker setup; the 2nd collapses to the ~230 us "
      "fork-from-worker path.\n");
  return 0;
}
