// §V-D page-fault handling microbenchmark.
//
// The paper forks two threads, migrates one, and has both continually
// update one global variable, forcing the consistency protocol to shuffle
// the page for exclusive ownership. It observes:
//   - the messaging layer takes a constant ~13.6 us to retrieve a 4 KB page,
//   - 27.5% of faults complete in ~19.3 us (uncontended),
//   - contended faults that lose the race and retry average ~158.8 us,
// i.e. a bimodal fault-latency distribution.
//
// We measure the two modes separately so each is statistically clean on
// any host: an uncontended sweep over cold remote pages, and a
// many-thread ping-pong on one word that forces directory-entry races and
// retries (with only two threads a single-core host serializes the
// transactions and the contended path never triggers).
#include <algorithm>
#include <atomic>
#include <limits>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/time_gate.h"
#include "common/virtual_clock.h"
#include "core/api.h"
#include "mem/directory.h"
#include "mem/fault_table.h"

namespace {

dex::LatencyHistogram* fault_histogram(dex::Process& process) {
  return &process.dsm().stats().fault_latency;
}

/// Write-fault latency with 7 remote sharers to revoke per fault, with the
/// scatter-gather fan-out on or off (the revocation ablation).
struct FanoutResult {
  double mean_fault_ns = 0;
  std::uint64_t faults = 0;
  std::uint64_t fanouts = 0;
  std::uint64_t legs_overlapped = 0;
};

FanoutResult run_fanout(bool overlapped) {
  using namespace dex;
  ClusterConfig cluster_config;
  cluster_config.num_nodes = 9;  // origin + 7 sharers + 1 writer
  cluster_config.mode.overlapped_fanout = overlapped;
  Cluster cluster(cluster_config);
  auto process = cluster.create_process(ProcessOptions{});
  constexpr std::size_t kPages = 64;
  GArray<std::uint64_t> data(*process, kPages * kPageSize / 8, "fanout");
  for (std::size_t i = 0; i < data.size(); i += 512) data.set(i, i);

  // Seven readers replicate every page, so each write fault below must
  // revoke seven remote copies.
  std::vector<DexThread> readers;
  for (int n = 1; n <= 7; ++n) {
    readers.push_back(process->spawn([&, n] {
      migrate(n);
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < data.size(); i += 512) sum += data.get(i);
      (void)sum;
      migrate_back();
    }));
  }
  for (auto& r : readers) r.join();

  fault_histogram(*process)->reset();
  DexThread writer = process->spawn([&] {
    migrate(8);
    for (std::size_t i = 0; i < data.size(); i += 512) data.set(i, i + 1);
    migrate_back();
  });
  writer.join();

  auto* hist = fault_histogram(*process);
  auto& stats = process->dsm().stats();
  FanoutResult result;
  result.mean_fault_ns = hist->mean();
  result.faults = hist->count();
  result.fanouts = stats.revoke_fanouts.load();
  result.legs_overlapped = stats.revoke_legs_overlapped.load();
  return result;
}

/// Read-fault count of a sequential scan over cold remote pages, with the
/// stride prefetcher on (max extra pages) or off (the prefetch ablation).
struct ScanResult {
  std::uint64_t read_faults = 0;
  std::uint64_t issued = 0;
  std::uint64_t grants = 0;
  std::uint64_t hits = 0;
  std::uint64_t wasted = 0;
  std::uint64_t batch_messages = 0;
  double mean_fault_ns = 0;
};

ScanResult run_scan(int prefetch_max_pages) {
  using namespace dex;
  ClusterConfig cluster_config;
  cluster_config.num_nodes = 2;
  Cluster cluster(cluster_config);
  ProcessOptions options;
  options.prefetch_max_pages = prefetch_max_pages;
  auto process = cluster.create_process(options);
  constexpr std::size_t kPages = 2000;
  GArray<std::uint64_t> data(*process, kPages * kPageSize / 8, "scan");
  for (std::size_t i = 0; i < data.size(); i += 512) data.set(i, i);

  auto& stats = process->dsm().stats();
  const std::uint64_t faults_before = stats.read_faults.load();
  fault_histogram(*process)->reset();
  DexThread scanner = process->spawn([&] {
    migrate(1);
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < data.size(); i += 512) sum += data.get(i);
    (void)sum;
    migrate_back();
  });
  scanner.join();

  ScanResult result;
  result.read_faults = stats.read_faults.load() - faults_before;
  result.issued = stats.prefetch_issued.load();
  result.grants = stats.prefetch_grants.load();
  result.hits = stats.prefetch_hits.load();
  result.wasted = stats.prefetch_wasted.load();
  result.batch_messages =
      cluster.fabric().messages_of(net::MsgType::kPageRequestBatch);
  result.mean_fault_ns = fault_histogram(*process)->mean();
  return result;
}

/// Owner-recall write-fault latency when one page migrates between two
/// remote nodes, with two-hop forwarded grants on or off (the forwarding
/// ablation). Every fault after the first recalls the page from the other
/// remote, the worst case for the classic origin-relayed protocol.
struct MigratoryResult {
  double mean_fault_ns = 0;
  std::uint64_t faults = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t writebacks = 0;
};

MigratoryResult run_migratory(bool forward_grants) {
  using namespace dex;
  ClusterConfig cluster_config;
  cluster_config.num_nodes = 3;
  Cluster cluster(cluster_config);
  ProcessOptions options;
  options.forward_grants = forward_grants;
  options.prefetch_max_pages = 0;
  auto process = cluster.create_process(options);
  GArray<std::uint64_t> data(*process, kPageSize / 8, "migratory");
  data.set(0, 0);  // the origin takes the page exclusive

  constexpr int kRounds = 400;
  fault_histogram(*process)->reset();
  DexThread hopper = process->spawn([&] {
    for (int r = 0; r < kRounds; ++r) {
      migrate(1 + r % 2);
      data.set(0, static_cast<std::uint64_t>(r) + 1);
      migrate_back();
    }
  });
  hopper.join();

  auto& stats = process->dsm().stats();
  MigratoryResult result;
  result.mean_fault_ns = fault_histogram(*process)->mean();
  result.faults = fault_histogram(*process)->count();
  result.forwarded = stats.forwarded_grants.load();
  result.fallbacks = stats.forward_fallbacks.load();
  result.writebacks = stats.writebacks.load();
  return result;
}

/// Steady-state fault latency of the checkpoint pattern — the origin keeps
/// snapshotting a hot range read-only while one remote node rewrites it —
/// with adaptive home migration on or off (the home-migration ablation).
/// Once the entries hand themselves off to the dominant faulter, its
/// faults become intra-node transactions with no wire on the critical
/// path; hints must steer essentially every remote fault straight there.
struct PrivateResult {
  double mean_fault_ns = 0;
  std::uint64_t faults = 0;
  std::uint64_t migrations = 0;
  std::uint64_t chases = 0;
  double hint_hit_ratio = 0;
};

PrivateResult run_private(bool home_migration) {
  using namespace dex;
  ClusterConfig cluster_config;
  cluster_config.num_nodes = 2;
  Cluster cluster(cluster_config);
  ProcessOptions options;
  options.home_migration = home_migration;
  options.prefetch_max_pages = 0;
  auto process = cluster.create_process(options);
  constexpr std::size_t kPages = 8;
  GArray<std::uint64_t> data(*process, kPages * kPageSize / 8, "private");
  for (std::size_t p = 0; p < kPages; ++p) data.set(p * 512, p);

  auto churn = [&](int rounds) {
    DexThread worker = process->spawn([&, rounds] {
      migrate(1);
      for (int r = 1; r <= rounds; ++r) {
        process->mprotect(data.addr(0), kPages * kPageSize, mem::kProtRead);
        process->mprotect(data.addr(0), kPages * kPageSize,
                          mem::kProtReadWrite);
        for (std::size_t p = 0; p < kPages; ++p) {
          data.set(p * 512, static_cast<std::uint64_t>(r) * 100 + p);
        }
      }
      migrate_back();
    });
    worker.join();
  };

  // Warm-up rounds during which the entries hand themselves off (or stay
  // pinned, in the ablation); only steady state is measured.
  churn(5);
  auto& stats = process->dsm().stats();
  const std::uint64_t hits_before = stats.home_hint_hits.load();
  const std::uint64_t remote_before = stats.remote_faults.load();
  fault_histogram(*process)->reset();
  churn(40);

  PrivateResult result;
  result.mean_fault_ns = fault_histogram(*process)->mean();
  result.faults = fault_histogram(*process)->count();
  result.migrations = stats.home_migrations.load();
  result.chases = stats.home_chases.load();
  const double remote =
      static_cast<double>(stats.remote_faults.load() - remote_before);
  if (remote > 0) {
    result.hint_hit_ratio =
        static_cast<double>(stats.home_hint_hits.load() - hits_before) /
        remote;
  }
  return result;
}

/// Directory shard-lock contention (the sharding ablation), measured at
/// the structure itself: raw threads hammer entry() on disjoint pages, the
/// access pattern of concurrent coherence transactions reaching the
/// origin. With one shard every overlapping lookup collides on the single
/// tree mutex just to reach its entry; hash-sharding spreads them out.
struct ShardProbeResult {
  std::uint64_t contention = 0;
  std::uint64_t lookups = 0;
};

ShardProbeResult run_shard_probe(int dir_shards) {
  using namespace dex;
  // Pessimistic on purpose: this ablation isolates SHARDING, so every
  // access must actually take its shard's latch. (Mode 7 below isolates
  // the optimistic-latching axis with the shard count pinned instead.)
  mem::Directory directory(dir_shards, /*optimistic=*/false);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPagesPerThread = 256;
  constexpr int kRounds = 50;

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int r = 0; r < kRounds; ++r) {
        for (std::uint64_t p = 0; p < kPagesPerThread; ++p) {
          const GAddr page = (t * kPagesPerThread + p) * kPageSize;
          (void)directory.entry(page);
        }
      }
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  ShardProbeResult result;
  result.contention = directory.lock_contention();
  result.lookups = kThreads * kPagesPerThread * kRounds;
  return result;
}

/// Read-mostly steady state on ONE hot directory shard plus the fault
/// table, with optimistic versioned latching on or off (the latching
/// ablation). The shard count is pinned to 1 so the two runs differ only
/// in the latch discipline: pessimistic mode takes the shard latch
/// exclusively for every lookup, optimistic mode resolves warm lookups
/// with a validated version read and never touches the latch word
/// exclusively. Timed in wall-clock (std::chrono), not virtual time —
/// latch serialization is a host-side cost the virtual clock deliberately
/// does not model.
struct ContendedReadResult {
  std::uint64_t elapsed_ns = 0;
  std::uint64_t lookups = 0;
  std::uint64_t dir_contention = 0;
  std::uint64_t fault_table_contention = 0;
  std::uint64_t latch_restarts = 0;
  std::uint64_t latch_upgrades = 0;
};

ContendedReadResult run_contended_read(bool optimistic) {
  using namespace dex;
  mem::Directory directory(/*shards=*/1, optimistic);
  // The knob collapses the fault table the same way Dsm's ctor does.
  mem::FaultTable fault_table(optimistic ? mem::FaultTable::kShards : 1);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kHotPages = 256;
  constexpr int kRounds = 400;
  constexpr int kFaultRounds = 20000;

  // Steady state: the hot set already exists; readers only look it up.
  for (std::uint64_t p = 0; p < kHotPages; ++p) {
    (void)directory.entry(p * kPageSize);
  }

  // The home probe of Dsm::home_of_page, per latch discipline: a validated
  // optimistic read, falling back to the exclusive entry latch.
  auto probe_home = [optimistic](mem::DirEntry& entry) {
    if (optimistic) {
      for (int attempt = 0; attempt < 3; ++attempt) {
        GuardO guard(entry.latch, GuardO::kNonBlocking);
        if (!guard.engaged()) break;
        const NodeId home = entry.home.load(std::memory_order_relaxed);
        if (guard.validate()) return home;
      }
    }
    std::lock_guard<HybridLatch> guard(entry.latch);
    return entry.home.load(std::memory_order_relaxed);
  };

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> sink{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t local = 0;
      for (int r = 0; r < kRounds; ++r) {
        for (std::uint64_t p = 0; p < kHotPages; ++p) {
          // One directory reach + the wrong-home and redirect probes: the
          // per-fault latch work of the steady-state read path.
          mem::DirEntry& entry = directory.entry(p * kPageSize);
          local += static_cast<std::uint64_t>(probe_home(entry));
          local += static_cast<std::uint64_t>(probe_home(entry));
        }
      }
      sink.fetch_add(local, std::memory_order_relaxed);
    });
  }
  // One writer keeps minting entries in a disjoint range, so optimistic
  // probes race real shard mutations instead of an idle version counter.
  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    std::uint64_t next = kHotPages + kThreads;
    while (!stop_writer.load(std::memory_order_acquire)) {
      (void)directory.entry(next * kPageSize);
      ++next;
      std::this_thread::yield();
    }
  });

  while (ready.load() < kThreads) std::this_thread::yield();
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();
  stop_writer.store(true, std::memory_order_release);
  writer.join();

  // Fault-table phase, outside the timed read loop (its rounds allocate,
  // which is latch-invariant noise): every thread leads rounds on its own
  // page, so the shard mutex is the only thing they can collide on —
  // exactly the per-node serialization the 64-way split exists to kill.
  {
    std::vector<std::thread> faulters;
    faulters.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      faulters.emplace_back([&, t] {
        const GAddr fpage = static_cast<GAddr>(t) * kPageSize;
        for (int r = 0; r < kFaultRounds; ++r) {
          auto join = fault_table.join(fpage, Access::kRead);
          if (join.is_leader) {
            fault_table.complete(join, fpage, Access::kRead, 0);
          }
        }
      });
    }
    for (auto& t : faulters) t.join();
  }

  ContendedReadResult result;
  result.elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count());
  result.lookups = std::uint64_t{kThreads} * kHotPages * kRounds;
  result.dir_contention = directory.lock_contention();
  result.fault_table_contention = fault_table.contention();
  result.latch_restarts = directory.latch_restarts();
  result.latch_upgrades = directory.latch_upgrades();
  return result;
}

/// Many-thread fault saturation (the async-engine ablation): 16 scanner
/// threads across two remote nodes stream disjoint cold ranges homed at
/// the origin with the stride prefetcher on. Blocking mode parks every
/// faulting thread inside its own batch transaction, so each demand fault
/// pays the wire+copy time of all eight prefetch extras on its critical
/// path; the engine detaches the extras as background transactions that
/// ride the same doorbell batch, and the demand leg completes at its own
/// finish time — in-flight protocol work per node (up to 2x8 transactions)
/// is no longer bounded by what the 8 threads can park on.
struct SaturationResult {
  dex::VirtNs elapsed_ns = 0;
  std::uint64_t faults = 0;  // demand faults that led a protocol round
  std::uint64_t retries = 0;
  double mean_fault_ns = 0;
  /// Page acquisitions per virtual millisecond: every page of the scan is
  /// faulted in exactly once (demand or prefetch), so this is total pages
  /// over elapsed time — the same numerator for both modes, making the
  /// blocking-vs-engine ratio a pure elapsed-time comparison.
  double pages_per_ms = 0;
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_grants = 0;
  std::uint64_t coalesced = 0;  // demand faults absorbed by in-flight rounds
  std::uint64_t engine_submitted = 0;
  std::uint64_t engine_resumes = 0;
  std::uint64_t depth_peak = 0;
  double depth_mean = 0;
  std::uint64_t doorbell_batches = 0;
  std::uint64_t batched_posts = 0;
  std::uint64_t pump_handoffs = 0;
};

SaturationResult run_saturation(bool async_engine, int depth) {
  using namespace dex;
  ClusterConfig cluster_config;
  cluster_config.num_nodes = 3;  // origin home + 2 faulting nodes
  Cluster cluster(cluster_config);
  ProcessOptions options;
  options.prefetch_max_pages = 8;
  options.home_migration = false;  // pin every home at the origin
  options.async_engine = async_engine;
  options.max_inflight_transactions = depth;
  auto process = cluster.create_process(options);
  constexpr std::size_t kPagesPerThread = 120;
  constexpr int kThreadsPerNode = 8;
  constexpr std::size_t kPages = 2 * kThreadsPerNode * kPagesPerThread;
  GArray<std::uint64_t> data(*process, kPages * kPageSize / 8, "scan");
  for (std::size_t p = 0; p < kPages; ++p) data.set(p * 512, p);

  fault_histogram(*process)->reset();
  // All scanners release from a barrier AFTER migrating, and the scan is
  // timed from the barrier release to the last scanner's finish: remote
  // thread setup arrives serially (~225 us apart), and timing from spawn
  // would measure that identical-in-both-modes stagger instead of the
  // saturated scan. The barrier is HOST-side (plain atomics + a
  // gate-excluded spin), not a DexBarrier: bench scaffolding must not
  // ride the DSM, or its own coherence traffic on the barrier words would
  // perturb the protocol under test — and differently in the two modes.
  // Virtual clocks re-align by observing the latest arrival's timestamp.
  std::atomic<int> arrived{0};
  std::atomic<bool> release{false};
  std::atomic<VirtNs> release_vts{0};
  std::atomic<VirtNs> scan_start{std::numeric_limits<VirtNs>::max()};
  std::atomic<VirtNs> scan_end{0};
  {
    ScopedPacing pace(1.0);
    std::vector<DexThread> threads;
    for (int t = 0; t < 2 * kThreadsPerNode; ++t) {
      threads.push_back(process->spawn([&, t] {
        migrate(1 + t % 2);
        const VirtNs me = now();
        VirtNs seen = release_vts.load();
        while (me > seen && !release_vts.compare_exchange_weak(seen, me)) {
        }
        if (arrived.fetch_add(1) + 1 == 2 * kThreadsPerNode) {
          release.store(true, std::memory_order_release);
        } else {
          ScopedGateBlock gate_block("bench_barrier");
          while (!release.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        }
        vclock::observe(release_vts.load());
        const VirtNs start = now();
        // Each scanner streams its own cold slice: a continuous supply of
        // demand faults plus detached prefetch windows from 8 threads per
        // node — the saturation regime.
        const std::size_t base = static_cast<std::size_t>(t) *
                                 kPagesPerThread;
        std::uint64_t sum = 0;
        for (std::size_t p = 0; p < kPagesPerThread; ++p) {
          sum += data.get((base + p) * 512);
          compute(500);
        }
        (void)sum;
        const VirtNs end = now();
        VirtNs cur = scan_start.load();
        while (start < cur &&
               !scan_start.compare_exchange_weak(cur, start)) {
        }
        cur = scan_end.load();
        while (end > cur && !scan_end.compare_exchange_weak(cur, end)) {
        }
        migrate_back();
      }));
    }
    for (auto& th : threads) th.join();
  }
  const VirtNs elapsed = scan_end.load() - scan_start.load();

  auto* hist = fault_histogram(*process);
  auto& stats = process->dsm().stats();
  SaturationResult result;
  result.elapsed_ns = elapsed;
  result.faults = hist->count();
  result.retries = stats.retries.load();
  result.mean_fault_ns = hist->mean();
  if (elapsed > 0) {
    result.pages_per_ms = static_cast<double>(kPages) /
                          (static_cast<double>(elapsed) / 1e6);
  }
  result.prefetch_issued = stats.prefetch_issued.load();
  result.prefetch_grants = stats.prefetch_grants.load();
  for (int n = 0; n < cluster_config.num_nodes; ++n) {
    result.coalesced += process->dsm().fault_table(n).coalesced_count();
  }
  result.engine_submitted = stats.engine_submitted.load();
  result.engine_resumes = stats.engine_resumes.load();
  result.depth_peak = stats.engine_depth_peak.load();
  if (stats.engine_depth_samples.load() > 0) {
    result.depth_mean =
        static_cast<double>(stats.engine_depth_sum.load()) /
        static_cast<double>(stats.engine_depth_samples.load());
  }
  result.doorbell_batches = stats.doorbell_batches.load();
  result.batched_posts = stats.batched_posts.load();
  result.pump_handoffs = stats.engine_pump_handoffs.load();
  return result;
}

/// Host-side generation barrier for lock-stepping bench threads without
/// riding the DSM (same rationale as mode 8's release gate): arrivals
/// CAS-max their virtual timestamps into a shared word, spin gate-excluded
/// until the generation flips, then observe the max so every participant
/// leaves the barrier at the same virtual time.
class HostBarrier {
 public:
  explicit HostBarrier(int n) : n_(n) {}

  void arrive_and_wait() {
    const dex::VirtNs me = dex::vclock::now();
    dex::VirtNs seen = vts_.load();
    while (me > seen && !vts_.compare_exchange_weak(seen, me)) {
    }
    const std::uint64_t gen = gen_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1) + 1 == n_) {
      arrived_.store(0, std::memory_order_relaxed);
      gen_.fetch_add(1, std::memory_order_release);
    } else {
      dex::ScopedGateBlock gate_block("bench_barrier");
      while (gen_.load(std::memory_order_acquire) == gen) {
        std::this_thread::yield();
      }
    }
    dex::vclock::observe(vts_.load());
  }

 private:
  const int n_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint64_t> gen_{0};
  std::atomic<dex::VirtNs> vts_{0};
};

/// Misplaced-thread convergence (the joint thread<->page placement
/// ablation): four writer threads are parked on nodes 1/2 while their
/// disjoint 32-page partitions stay homed at node 0 (home migration off,
/// so pages cannot chase them), and a node-0 anchor re-reads every
/// partition between write rounds so each round's writes fault remotely
/// again. Off, every one of the ~24x32 write upgrades per thread pays the
/// full wire round trip to node 0 forever. On, the advisor sees each
/// thread's fault mass pinned at node 0 within a few 16-fault windows and
/// migrates the thread there; writers and anchor then share node 0's copy
/// and the fault stream dries up. Rounds are lock-stepped with a host
/// barrier so the writer/anchor interleaving — and thus the fault counts —
/// are host-scheduling independent.
struct MisplacedResult {
  dex::VirtNs elapsed_ns = 0;
  std::uint64_t faults = 0;          // demand faults during measured rounds
  std::uint64_t remote_faults = 0;
  double mean_fault_ns = 0;
  std::uint64_t thread_migrations = 0;
  std::uint64_t windows = 0;
  std::uint64_t vetoes = 0;
  std::uint64_t deferrals = 0;
  std::uint64_t hints_warmed = 0;
};

MisplacedResult run_misplaced(bool auto_migration) {
  using namespace dex;
  ClusterConfig cluster_config;
  cluster_config.num_nodes = 3;  // data home + 2 misplaced-thread nodes
  Cluster cluster(cluster_config);
  ProcessOptions options;
  options.home_migration = false;  // pages stay pinned: threads must move
  options.prefetch_max_pages = 0;
  options.auto_thread_migration = auto_migration;
  auto process = cluster.create_process(options);

  constexpr int kWorkers = 4;
  constexpr std::size_t kPartPages = 32;
  constexpr int kRounds = 24;
  constexpr std::size_t kPages = kWorkers * kPartPages;
  GArray<std::uint64_t> data(*process, kPages * kPageSize / 8, "parts");
  for (std::size_t p = 0; p < kPages; ++p) data.set(p * 512, p);

  fault_histogram(*process)->reset();
  auto& stats = process->dsm().stats();
  const std::uint64_t remote_before = stats.remote_faults.load();

  HostBarrier bar(kWorkers + 1);
  std::atomic<VirtNs> span_start{std::numeric_limits<VirtNs>::max()};
  std::atomic<VirtNs> span_end{0};
  std::vector<DexThread> workers;
  workers.reserve(kWorkers);
  for (int t = 0; t < kWorkers; ++t) {
    workers.push_back(process->spawn([&, t] {
      migrate(1 + t % 2);  // the misplaced starting position
      bar.arrive_and_wait();
      const VirtNs start = now();
      const std::size_t base = static_cast<std::size_t>(t) * kPartPages;
      for (int r = 1; r <= kRounds; ++r) {
        for (std::size_t p = 0; p < kPartPages; ++p) {
          data.set((base + p) * 512,
                   static_cast<std::uint64_t>(r) * 1000 + p);
          compute(200);
        }
        bar.arrive_and_wait();  // writes visible; anchor sweeps...
        bar.arrive_and_wait();  // ...and the next round may begin
      }
      const VirtNs end = now();
      VirtNs cur = span_start.load();
      while (start < cur && !span_start.compare_exchange_weak(cur, start)) {
      }
      cur = span_end.load();
      while (end > cur && !span_end.compare_exchange_weak(cur, end)) {
      }
      migrate_back();
    }));
  }
  DexThread anchor = process->spawn([&] {
    bar.arrive_and_wait();
    for (int r = 1; r <= kRounds; ++r) {
      bar.arrive_and_wait();  // workers finished writing round r
      std::uint64_t sum = 0;
      for (std::size_t p = 0; p < kPages; ++p) sum += data.get(p * 512);
      (void)sum;
      bar.arrive_and_wait();  // sweep done: copies downgraded to shared
    }
  });
  for (auto& w : workers) w.join();
  anchor.join();

  MisplacedResult result;
  result.elapsed_ns = span_end.load() - span_start.load();
  result.faults = fault_histogram(*process)->count();
  result.remote_faults = stats.remote_faults.load() - remote_before;
  result.mean_fault_ns = fault_histogram(*process)->mean();
  result.thread_migrations = stats.thread_migrations_auto.load();
  result.windows = stats.placement_windows.load();
  result.vetoes = stats.placement_vetoes.load();
  result.deferrals = stats.placement_deferrals.load();
  result.hints_warmed = stats.placement_hints_warmed.load();
  return result;
}

}  // namespace

int main() {
  using namespace dex;
  using namespace dex::bench;
  JsonDoc json;

  print_header("SV-D: page-fault handling");

  // ---- mode 1: uncontended faults (write upgrade revoking one reader,
  // the common case in the paper's ping-pong) ----
  {
    ClusterConfig cluster_config;
    cluster_config.num_nodes = 3;
    Cluster cluster(cluster_config);
    auto process = cluster.create_process(ProcessOptions{});
    constexpr std::size_t kPages = 2000;
    GArray<std::uint64_t> data(*process, kPages * kPageSize / 8, "cold");
    for (std::size_t i = 0; i < data.size(); i += 512) data.set(i, i);

    // A reader on node 2 replicates every page first, so each write fault
    // below must invalidate one remote copy — the fault shape the paper's
    // 19.3 us corresponds to.
    DexThread reader = process->spawn([&] {
      migrate(2);
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < data.size(); i += 512) sum += data.get(i);
      (void)sum;
      migrate_back();
    });
    reader.join();

    fault_histogram(*process)->reset();
    DexThread t = process->spawn([&] {
      migrate(1);
      for (std::size_t i = 0; i < data.size(); i += 512) {
        data.set(i, i + 1);  // one write fault per page, one revocation
      }
      migrate_back();
    });
    t.join();

    auto* hist = fault_histogram(*process);
    std::printf("uncontended: %llu faults, mean %s us, p50 %s us, p95 %s us"
                "  (paper: ~19.3 us)\n",
                static_cast<unsigned long long>(hist->count()),
                us(static_cast<VirtNs>(hist->mean())).c_str(),
                us(hist->percentile(0.5)).c_str(),
                us(hist->percentile(0.95)).c_str());
    json.set("uncontended", "faults", static_cast<double>(hist->count()));
    json.set("uncontended", "mean_fault_ns", hist->mean());
    json.set("uncontended", "p95_fault_ns",
             static_cast<double>(hist->percentile(0.95)));

    const auto& cost = cluster.cost();
    const VirtNs retrieval =
        cost.verb_msg_ns(sizeof(net::PageRequestPayload) +
                         net::Message::kHeaderBytes) +
        cost.directory_service_ns +
        cost.verb_msg_ns(sizeof(net::PageGrantPayload) +
                         net::Message::kHeaderBytes) +
        cost.rdma_payload_ns(kPageSize);
    std::printf("4 KB page retrieval (wire path): %s us  (paper: 13.6 us)\n",
                us(retrieval).c_str());
  }

  // ---- mode 2: contended ping-pong on one word ----
  {
    ClusterConfig cluster_config;
    cluster_config.num_nodes = 2;
    Cluster cluster(cluster_config);
    auto process = cluster.create_process(ProcessOptions{});
    GCounter shared(*process, "pingpong");
    constexpr int kThreadsPerNode = 8;
    constexpr int kUpdates = 400;

    fault_histogram(*process)->reset();
    {
      ScopedPacing pace(1.0);
      std::vector<DexThread> threads;
      for (int t = 0; t < 2 * kThreadsPerNode; ++t) {
        threads.push_back(process->spawn([&, t] {
          migrate(t % 2);
          for (int i = 0; i < kUpdates; ++i) {
            shared.fetch_add(1);
            compute(3000);
          }
          migrate_back();
        }));
      }
      for (auto& t : threads) t.join();
    }

    auto* hist = fault_histogram(*process);
    auto& stats = process->dsm().stats();
    std::printf(
        "\ncontended:   %llu faults, %llu retries, %llu invalidations, "
        "final count %llu (%s)\n",
        static_cast<unsigned long long>(hist->count()),
        static_cast<unsigned long long>(stats.retries.load()),
        static_cast<unsigned long long>(stats.invalidations.load()),
        static_cast<unsigned long long>(shared.load()),
        shared.load() == 2ull * kThreadsPerNode * kUpdates ? "correct"
                                                           : "WRONG");
    std::printf("             mean %s us, p50 %s us, p95 %s us, max %s us"
                "  (paper: ~158.8 us with retries)\n",
                us(static_cast<VirtNs>(hist->mean())).c_str(),
                us(hist->percentile(0.5)).c_str(),
                us(hist->percentile(0.95)).c_str(),
                us(hist->max()).c_str());
    std::printf("             distribution modes:");
    for (const auto mode : hist->modes(0.02)) {
      std::printf(" ~%s us", us(mode).c_str());
    }
    std::printf("\n");
    json.set("contended", "faults", static_cast<double>(hist->count()));
    json.set("contended", "retries",
             static_cast<double>(stats.retries.load()));
    json.set("contended", "mean_fault_ns", hist->mean());
  }

  // ---- mode 3: write-fault latency vs sharer count — overlapped
  // revocation fan-out against the serial ablation ----
  {
    const FanoutResult overlapped = run_fanout(/*overlapped=*/true);
    const FanoutResult serial = run_fanout(/*overlapped=*/false);
    const double speedup =
        overlapped.mean_fault_ns > 0
            ? serial.mean_fault_ns / overlapped.mean_fault_ns
            : 0.0;
    std::printf(
        "\nfan-out (7 sharers/write): overlapped mean %s us, serial mean "
        "%s us  -> %.2fx\n",
        us(static_cast<VirtNs>(overlapped.mean_fault_ns)).c_str(),
        us(static_cast<VirtNs>(serial.mean_fault_ns)).c_str(), speedup);
    std::printf("             %llu fan-outs, %llu overlapped legs\n",
                static_cast<unsigned long long>(overlapped.fanouts),
                static_cast<unsigned long long>(overlapped.legs_overlapped));
    json.set("fanout", "width", 7.0);
    json.set("fanout", "mean_fault_ns_overlapped", overlapped.mean_fault_ns);
    json.set("fanout", "mean_fault_ns_serial", serial.mean_fault_ns);
    json.set("fanout", "speedup", speedup);
    json.set("fanout", "fanouts",
             static_cast<double>(overlapped.fanouts));
    json.set("fanout", "legs_overlapped",
             static_cast<double>(overlapped.legs_overlapped));
  }

  // ---- mode 4: sequential-scan read faults — stride prefetch against the
  // one-page-per-fault ablation ----
  {
    const ScanResult prefetch = run_scan(/*prefetch_max_pages=*/8);
    const ScanResult baseline = run_scan(/*prefetch_max_pages=*/0);
    const double fault_drop =
        prefetch.read_faults > 0
            ? static_cast<double>(baseline.read_faults) /
                  static_cast<double>(prefetch.read_faults)
            : 0.0;
    const double hit_rate =
        prefetch.grants > 0 ? static_cast<double>(prefetch.hits) /
                                  static_cast<double>(prefetch.grants)
                            : 0.0;
    std::printf(
        "\nprefetch (2000-page scan): %llu faults with prefetch, %llu "
        "without  -> %.1fx fewer\n",
        static_cast<unsigned long long>(prefetch.read_faults),
        static_cast<unsigned long long>(baseline.read_faults), fault_drop);
    std::printf(
        "             %llu extras issued, %llu granted, %llu hits, %llu "
        "wasted (hit rate %.0f%%), %llu batch msgs\n",
        static_cast<unsigned long long>(prefetch.issued),
        static_cast<unsigned long long>(prefetch.grants),
        static_cast<unsigned long long>(prefetch.hits),
        static_cast<unsigned long long>(prefetch.wasted), 100.0 * hit_rate,
        static_cast<unsigned long long>(prefetch.batch_messages));
    json.set("prefetch", "read_faults_prefetch",
             static_cast<double>(prefetch.read_faults));
    json.set("prefetch", "read_faults_no_prefetch",
             static_cast<double>(baseline.read_faults));
    json.set("prefetch", "fault_drop", fault_drop);
    json.set("prefetch", "extras_issued", static_cast<double>(prefetch.issued));
    json.set("prefetch", "extras_granted",
             static_cast<double>(prefetch.grants));
    json.set("prefetch", "hits", static_cast<double>(prefetch.hits));
    json.set("prefetch", "wasted", static_cast<double>(prefetch.wasted));
    json.set("prefetch", "hit_rate", hit_rate);
    json.set("prefetch", "batch_messages",
             static_cast<double>(prefetch.batch_messages));
    json.set("prefetch", "mean_fault_ns_prefetch", prefetch.mean_fault_ns);
    json.set("prefetch", "mean_fault_ns_no_prefetch",
             baseline.mean_fault_ns);
  }

  // ---- mode 5: migratory sharing — two-hop forwarded grants against the
  // classic origin-relayed recall, plus the directory-sharding ablation ----
  {
    const MigratoryResult forwarded = run_migratory(/*forward_grants=*/true);
    const MigratoryResult classic = run_migratory(/*forward_grants=*/false);
    const double speedup = forwarded.mean_fault_ns > 0
                               ? classic.mean_fault_ns / forwarded.mean_fault_ns
                               : 0.0;
    std::printf(
        "\nmigratory (2 remotes, 400 hand-offs): forwarded mean %s us, "
        "classic mean %s us  -> %.2fx\n",
        us(static_cast<VirtNs>(forwarded.mean_fault_ns)).c_str(),
        us(static_cast<VirtNs>(classic.mean_fault_ns)).c_str(), speedup);
    std::printf(
        "             %llu grants forwarded, %llu fallbacks, writebacks "
        "%llu vs %llu classic\n",
        static_cast<unsigned long long>(forwarded.forwarded),
        static_cast<unsigned long long>(forwarded.fallbacks),
        static_cast<unsigned long long>(forwarded.writebacks),
        static_cast<unsigned long long>(classic.writebacks));
    json.set("migratory", "mean_fault_ns_forward", forwarded.mean_fault_ns);
    json.set("migratory", "mean_fault_ns_classic", classic.mean_fault_ns);
    json.set("migratory", "speedup", speedup);
    json.set("migratory", "forwarded_grants",
             static_cast<double>(forwarded.forwarded));
    json.set("migratory", "forward_fallbacks",
             static_cast<double>(forwarded.fallbacks));
    json.set("migratory", "writebacks_forward",
             static_cast<double>(forwarded.writebacks));
    json.set("migratory", "writebacks_classic",
             static_cast<double>(classic.writebacks));

    const ShardProbeResult sharded = run_shard_probe(/*dir_shards=*/64);
    const ShardProbeResult single = run_shard_probe(/*dir_shards=*/1);
    std::printf(
        "shards (8 threads, %llu lookups): %llu lock collisions with 64 "
        "shards vs %llu with 1\n",
        static_cast<unsigned long long>(sharded.lookups),
        static_cast<unsigned long long>(sharded.contention),
        static_cast<unsigned long long>(single.contention));
    json.set("dir_shards", "contention_sharded",
             static_cast<double>(sharded.contention));
    json.set("dir_shards", "contention_single",
             static_cast<double>(single.contention));
    json.set("dir_shards", "lookups",
             static_cast<double>(sharded.lookups));
  }

  // ---- mode 6: private-page checkpoint churn — adaptive home migration
  // against the fixed-origin ablation ----
  {
    const PrivateResult adaptive = run_private(/*home_migration=*/true);
    const PrivateResult fixed = run_private(/*home_migration=*/false);
    const double speedup = adaptive.mean_fault_ns > 0
                               ? fixed.mean_fault_ns / adaptive.mean_fault_ns
                               : 0.0;
    std::printf(
        "\nhome migration (8 pages x 40 checkpoint rounds): adaptive mean "
        "%s us, fixed-origin mean %s us  -> %.2fx\n",
        us(static_cast<VirtNs>(adaptive.mean_fault_ns)).c_str(),
        us(static_cast<VirtNs>(fixed.mean_fault_ns)).c_str(), speedup);
    std::printf(
        "             %llu homes migrated, hint hit ratio %.0f%%, %llu "
        "chases\n",
        static_cast<unsigned long long>(adaptive.migrations),
        100.0 * adaptive.hint_hit_ratio,
        static_cast<unsigned long long>(adaptive.chases));
    json.set("home_migration", "mean_fault_ns_adaptive",
             adaptive.mean_fault_ns);
    json.set("home_migration", "mean_fault_ns_fixed", fixed.mean_fault_ns);
    json.set("home_migration", "speedup", speedup);
    json.set("home_migration", "hint_hit_ratio", adaptive.hint_hit_ratio);

    JsonDoc hm;
    hm.set("private_page", "mean_fault_ns_adaptive", adaptive.mean_fault_ns);
    hm.set("private_page", "mean_fault_ns_fixed", fixed.mean_fault_ns);
    hm.set("private_page", "speedup", speedup);
    hm.set("private_page", "faults_measured",
           static_cast<double>(adaptive.faults));
    hm.set("private_page", "home_migrations",
           static_cast<double>(adaptive.migrations));
    hm.set("private_page", "hint_hit_ratio", adaptive.hint_hit_ratio);
    hm.set("private_page", "home_chases",
           static_cast<double>(adaptive.chases));
    hm.write("BENCH_home_migration.json");
  }

  // ---- mode 7: contended reads on one hot shard — optimistic versioned
  // latching against the all-exclusive seed discipline ----
  {
    const ContendedReadResult on = run_contended_read(/*optimistic=*/true);
    const ContendedReadResult off = run_contended_read(/*optimistic=*/false);
    const std::uint64_t contention_on =
        on.dir_contention + on.fault_table_contention;
    const std::uint64_t contention_off =
        off.dir_contention + off.fault_table_contention;
    const double contention_drop =
        contention_on > 0 ? static_cast<double>(contention_off) /
                                static_cast<double>(contention_on)
                          : static_cast<double>(contention_off);
    const double speedup =
        on.elapsed_ns > 0 ? static_cast<double>(off.elapsed_ns) /
                                static_cast<double>(on.elapsed_ns)
                          : 0.0;
    std::printf(
        "\nlatching (8 readers, 1 hot shard, %llu lookups): optimistic "
        "%.1f ms vs pessimistic %.1f ms wall  -> %.2fx\n",
        static_cast<unsigned long long>(on.lookups),
        static_cast<double>(on.elapsed_ns) / 1e6,
        static_cast<double>(off.elapsed_ns) / 1e6, speedup);
    std::printf(
        "             collisions (dir+fault-table): %llu optimistic vs "
        "%llu pessimistic (%.0fx fewer); %llu restarts, %llu upgrades\n",
        static_cast<unsigned long long>(contention_on),
        static_cast<unsigned long long>(contention_off),
        contention_on > 0 ? contention_drop : contention_drop,
        static_cast<unsigned long long>(on.latch_restarts),
        static_cast<unsigned long long>(on.latch_upgrades));
    json.set("latch", "speedup", speedup);
    json.set("latch", "contention_optimistic",
             static_cast<double>(contention_on));
    json.set("latch", "contention_pessimistic",
             static_cast<double>(contention_off));

    JsonDoc latch;
    latch.set("contended_read", "lookups", static_cast<double>(on.lookups));
    latch.set("contended_read", "elapsed_ns_optimistic",
              static_cast<double>(on.elapsed_ns));
    latch.set("contended_read", "elapsed_ns_pessimistic",
              static_cast<double>(off.elapsed_ns));
    latch.set("contended_read", "speedup", speedup);
    latch.set("contended_read", "dir_contention_optimistic",
              static_cast<double>(on.dir_contention));
    latch.set("contended_read", "dir_contention_pessimistic",
              static_cast<double>(off.dir_contention));
    latch.set("contended_read", "fault_table_contention_optimistic",
              static_cast<double>(on.fault_table_contention));
    latch.set("contended_read", "fault_table_contention_pessimistic",
              static_cast<double>(off.fault_table_contention));
    latch.set("contended_read", "contention_optimistic",
              static_cast<double>(contention_on));
    latch.set("contended_read", "contention_pessimistic",
              static_cast<double>(contention_off));
    latch.set("contended_read", "contention_drop", contention_drop);
    latch.set("contended_read", "latch_restarts",
              static_cast<double>(on.latch_restarts));
    latch.set("contended_read", "latch_upgrades",
              static_cast<double>(on.latch_upgrades));
    latch.write("BENCH_latch.json");
  }

  // ---- mode 8: many-thread saturation — the async protocol engine
  // against the blocking ablation, sweeping the in-flight window ----
  {
    JsonDoc adoc;
    const SaturationResult blocking =
        run_saturation(/*async_engine=*/false, /*depth=*/16);
    std::printf(
        "\nsaturation (3 nodes, 8 scanners/node, 120 cold pages each, "
        "window 8): blocking %s us, %.0f pages/ms, %llu demand faults "
        "(mean %s us), %llu retries\n",
        us(blocking.elapsed_ns).c_str(), blocking.pages_per_ms,
        static_cast<unsigned long long>(blocking.faults),
        us(static_cast<VirtNs>(blocking.mean_fault_ns)).c_str(),
        static_cast<unsigned long long>(blocking.retries));
    adoc.set("blocking", "faults", static_cast<double>(blocking.faults));
    adoc.set("blocking", "retries", static_cast<double>(blocking.retries));
    adoc.set("blocking", "elapsed_ns",
             static_cast<double>(blocking.elapsed_ns));
    adoc.set("blocking", "pages_per_ms", blocking.pages_per_ms);
    adoc.set("blocking", "mean_fault_ns", blocking.mean_fault_ns);
    adoc.set("blocking", "prefetch_issued",
             static_cast<double>(blocking.prefetch_issued));
    adoc.set("blocking", "prefetch_grants",
             static_cast<double>(blocking.prefetch_grants));
    adoc.set("blocking", "coalesced",
             static_cast<double>(blocking.coalesced));

    // Blocking already keeps one window per scanner in flight (8/node), so
    // the engine only pulls ahead once the NIC pipeline ring is deeper
    // than the thread count: the sweep runs well past 8. Engine runs are
    // median-of-3 — pump-thread interleaving with consumers is host
    // scheduling, so single shots scatter where blocking is deterministic.
    double speedup_saturated = 0.0;
    int depth_saturated = 0;
    for (const int depth : {8, 16, 32, 48}) {
      std::vector<SaturationResult> trials;
      for (int trial = 0; trial < 3; ++trial) {
        trials.push_back(run_saturation(/*async_engine=*/true, depth));
      }
      std::sort(trials.begin(), trials.end(),
                [](const SaturationResult& a, const SaturationResult& b) {
                  return a.elapsed_ns < b.elapsed_ns;
                });
      const SaturationResult& on = trials[1];
      const double speedup = blocking.pages_per_ms > 0
                                 ? on.pages_per_ms / blocking.pages_per_ms
                                 : 0.0;
      if (speedup > speedup_saturated) {
        speedup_saturated = speedup;
        depth_saturated = depth;
      }
      const double legs_per_doorbell =
          on.doorbell_batches > 0
              ? static_cast<double>(on.batched_posts) /
                    static_cast<double>(on.doorbell_batches)
              : 0.0;
      std::printf(
          "  depth %2d: %.0f pages/ms  -> %.2fx; %llu demand faults, "
          "%llu coalesced, %llu/%llu prefetch grants, depth peak %llu "
          "mean %.1f, %llu doorbells x %.1f legs, %llu handoffs\n",
          depth, on.pages_per_ms, speedup,
          static_cast<unsigned long long>(on.faults),
          static_cast<unsigned long long>(on.coalesced),
          static_cast<unsigned long long>(on.prefetch_grants),
          static_cast<unsigned long long>(on.prefetch_issued),
          static_cast<unsigned long long>(on.depth_peak), on.depth_mean,
          static_cast<unsigned long long>(on.doorbell_batches),
          legs_per_doorbell,
          static_cast<unsigned long long>(on.pump_handoffs));
      char section[32];
      std::snprintf(section, sizeof(section), "depth_%d", depth);
      adoc.set(section, "faults", static_cast<double>(on.faults));
      adoc.set(section, "retries", static_cast<double>(on.retries));
      adoc.set(section, "elapsed_ns", static_cast<double>(on.elapsed_ns));
      adoc.set(section, "pages_per_ms", on.pages_per_ms);
      adoc.set(section, "mean_fault_ns", on.mean_fault_ns);
      adoc.set(section, "speedup_vs_blocking", speedup);
      adoc.set(section, "prefetch_issued",
               static_cast<double>(on.prefetch_issued));
      adoc.set(section, "prefetch_grants",
               static_cast<double>(on.prefetch_grants));
      adoc.set(section, "coalesced", static_cast<double>(on.coalesced));
      adoc.set(section, "engine_submitted",
               static_cast<double>(on.engine_submitted));
      adoc.set(section, "engine_resumes",
               static_cast<double>(on.engine_resumes));
      adoc.set(section, "depth_peak", static_cast<double>(on.depth_peak));
      adoc.set(section, "depth_mean", on.depth_mean);
      adoc.set(section, "doorbell_batches",
               static_cast<double>(on.doorbell_batches));
      adoc.set(section, "batched_posts",
               static_cast<double>(on.batched_posts));
      adoc.set(section, "legs_per_doorbell", legs_per_doorbell);
      adoc.set(section, "pump_handoffs",
               static_cast<double>(on.pump_handoffs));
    }
    adoc.set("saturation", "nodes", 3.0);
    adoc.set("saturation", "threads_per_node", 8.0);
    adoc.set("saturation", "pages_per_thread", 120.0);
    adoc.set("saturation", "prefetch_window", 8.0);
    adoc.set("saturation", "speedup_saturated", speedup_saturated);
    adoc.set("saturation", "depth_saturated",
             static_cast<double>(depth_saturated));
    adoc.write("BENCH_async.json");
    json.set("async_engine", "speedup_saturated", speedup_saturated);
    json.set("async_engine", "depth_saturated",
             static_cast<double>(depth_saturated));
  }

  // ---- mode 9: misplaced-thread convergence — joint thread<->page
  // placement against the application-directed ablation ----
  {
    const MisplacedResult off = run_misplaced(/*auto_migration=*/false);
    const MisplacedResult on = run_misplaced(/*auto_migration=*/true);
    const double speedup = on.elapsed_ns > 0
                               ? static_cast<double>(off.elapsed_ns) /
                                     static_cast<double>(on.elapsed_ns)
                               : 0.0;
    std::printf(
        "\nthread placement (4 misplaced writers, 32 pages x 24 rounds): "
        "auto %s us vs pinned %s us wall  -> %.2fx\n",
        us(on.elapsed_ns).c_str(), us(off.elapsed_ns).c_str(), speedup);
    std::printf(
        "             %llu threads migrated over %llu windows; remote "
        "faults %llu vs %llu pinned; %llu vetoes, %llu hints warmed\n",
        static_cast<unsigned long long>(on.thread_migrations),
        static_cast<unsigned long long>(on.windows),
        static_cast<unsigned long long>(on.remote_faults),
        static_cast<unsigned long long>(off.remote_faults),
        static_cast<unsigned long long>(on.vetoes),
        static_cast<unsigned long long>(on.hints_warmed));
    json.set("thread_migration", "speedup", speedup);
    json.set("thread_migration", "migrations",
             static_cast<double>(on.thread_migrations));

    JsonDoc tm;
    tm.set("misplaced", "workers", 4.0);
    tm.set("misplaced", "partition_pages", 32.0);
    tm.set("misplaced", "rounds", 24.0);
    tm.set("misplaced", "elapsed_ns_auto", static_cast<double>(on.elapsed_ns));
    tm.set("misplaced", "elapsed_ns_pinned",
           static_cast<double>(off.elapsed_ns));
    tm.set("misplaced", "speedup", speedup);
    tm.set("misplaced", "faults_auto", static_cast<double>(on.faults));
    tm.set("misplaced", "faults_pinned", static_cast<double>(off.faults));
    tm.set("misplaced", "remote_faults_auto",
           static_cast<double>(on.remote_faults));
    tm.set("misplaced", "remote_faults_pinned",
           static_cast<double>(off.remote_faults));
    tm.set("misplaced", "mean_fault_ns_auto", on.mean_fault_ns);
    tm.set("misplaced", "mean_fault_ns_pinned", off.mean_fault_ns);
    tm.set("misplaced", "thread_migrations",
           static_cast<double>(on.thread_migrations));
    tm.set("misplaced", "placement_windows",
           static_cast<double>(on.windows));
    tm.set("misplaced", "placement_vetoes", static_cast<double>(on.vetoes));
    tm.set("misplaced", "placement_deferrals",
           static_cast<double>(on.deferrals));
    tm.set("misplaced", "hints_warmed",
           static_cast<double>(on.hints_warmed));
    tm.set("misplaced", "placement_counters_pinned",
           static_cast<double>(off.thread_migrations + off.windows +
                               off.vetoes + off.deferrals));
    tm.write("BENCH_thread_migration.json");
  }

  json.write("BENCH_pagefault.json");

  std::printf(
      "\nPaper SV-D: bimodal fault handling — ~19.3 us uncontended vs "
      "~158.8 us when a node\nloses the race on a busy directory entry and "
      "retries after backoff.\n");
  return 0;
}
