// §V-D page-fault handling microbenchmark.
//
// The paper forks two threads, migrates one, and has both continually
// update one global variable, forcing the consistency protocol to shuffle
// the page for exclusive ownership. It observes:
//   - the messaging layer takes a constant ~13.6 us to retrieve a 4 KB page,
//   - 27.5% of faults complete in ~19.3 us (uncontended),
//   - contended faults that lose the race and retry average ~158.8 us,
// i.e. a bimodal fault-latency distribution.
//
// We measure the two modes separately so each is statistically clean on
// any host: an uncontended sweep over cold remote pages, and a
// many-thread ping-pong on one word that forces directory-entry races and
// retries (with only two threads a single-core host serializes the
// transactions and the contended path never triggers).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/api.h"

namespace {

dex::LatencyHistogram* fault_histogram(dex::Process& process) {
  return &process.dsm().stats().fault_latency;
}

}  // namespace

int main() {
  using namespace dex;
  using namespace dex::bench;

  print_header("SV-D: page-fault handling");

  // ---- mode 1: uncontended faults (write upgrade revoking one reader,
  // the common case in the paper's ping-pong) ----
  {
    ClusterConfig cluster_config;
    cluster_config.num_nodes = 3;
    Cluster cluster(cluster_config);
    auto process = cluster.create_process(ProcessOptions{});
    constexpr std::size_t kPages = 2000;
    GArray<std::uint64_t> data(*process, kPages * kPageSize / 8, "cold");
    for (std::size_t i = 0; i < data.size(); i += 512) data.set(i, i);

    // A reader on node 2 replicates every page first, so each write fault
    // below must invalidate one remote copy — the fault shape the paper's
    // 19.3 us corresponds to.
    DexThread reader = process->spawn([&] {
      migrate(2);
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < data.size(); i += 512) sum += data.get(i);
      (void)sum;
      migrate_back();
    });
    reader.join();

    fault_histogram(*process)->reset();
    DexThread t = process->spawn([&] {
      migrate(1);
      for (std::size_t i = 0; i < data.size(); i += 512) {
        data.set(i, i + 1);  // one write fault per page, one revocation
      }
      migrate_back();
    });
    t.join();

    auto* hist = fault_histogram(*process);
    std::printf("uncontended: %llu faults, mean %s us, p50 %s us, p95 %s us"
                "  (paper: ~19.3 us)\n",
                static_cast<unsigned long long>(hist->count()),
                us(static_cast<VirtNs>(hist->mean())).c_str(),
                us(hist->percentile(0.5)).c_str(),
                us(hist->percentile(0.95)).c_str());

    const auto& cost = cluster.cost();
    const VirtNs retrieval =
        cost.verb_msg_ns(sizeof(net::PageRequestPayload) +
                         net::Message::kHeaderBytes) +
        cost.directory_service_ns +
        cost.verb_msg_ns(sizeof(net::PageGrantPayload) +
                         net::Message::kHeaderBytes) +
        cost.rdma_payload_ns(kPageSize);
    std::printf("4 KB page retrieval (wire path): %s us  (paper: 13.6 us)\n",
                us(retrieval).c_str());
  }

  // ---- mode 2: contended ping-pong on one word ----
  {
    ClusterConfig cluster_config;
    cluster_config.num_nodes = 2;
    Cluster cluster(cluster_config);
    auto process = cluster.create_process(ProcessOptions{});
    GCounter shared(*process, "pingpong");
    constexpr int kThreadsPerNode = 8;
    constexpr int kUpdates = 400;

    fault_histogram(*process)->reset();
    {
      ScopedPacing pace(1.0);
      std::vector<DexThread> threads;
      for (int t = 0; t < 2 * kThreadsPerNode; ++t) {
        threads.push_back(process->spawn([&, t] {
          migrate(t % 2);
          for (int i = 0; i < kUpdates; ++i) {
            shared.fetch_add(1);
            compute(3000);
          }
          migrate_back();
        }));
      }
      for (auto& t : threads) t.join();
    }

    auto* hist = fault_histogram(*process);
    auto& stats = process->dsm().stats();
    std::printf(
        "\ncontended:   %llu faults, %llu retries, %llu invalidations, "
        "final count %llu (%s)\n",
        static_cast<unsigned long long>(hist->count()),
        static_cast<unsigned long long>(stats.retries.load()),
        static_cast<unsigned long long>(stats.invalidations.load()),
        static_cast<unsigned long long>(shared.load()),
        shared.load() == 2ull * kThreadsPerNode * kUpdates ? "correct"
                                                           : "WRONG");
    std::printf("             mean %s us, p50 %s us, p95 %s us, max %s us"
                "  (paper: ~158.8 us with retries)\n",
                us(static_cast<VirtNs>(hist->mean())).c_str(),
                us(hist->percentile(0.5)).c_str(),
                us(hist->percentile(0.95)).c_str(),
                us(hist->max()).c_str());
    std::printf("             distribution modes:");
    for (const auto mode : hist->modes(0.02)) {
      std::printf(" ~%s us", us(mode).c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper SV-D: bimodal fault handling — ~19.3 us uncontended vs "
      "~158.8 us when a node\nloses the race on a busy directory entry and "
      "retries after backoff.\n");
  return 0;
}
