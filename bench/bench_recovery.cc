// Self-healing recovery bench (DESIGN.md "Self-healing").
//
// Measures the two costs the robustness layer introduces and the one it
// removes: how long the accrual detector takes to declare a silently
// failed node dead (detection latency, in heartbeat rounds and virtual
// time), what the recovery path salvages (journaled pages recovered vs
// dirty pages lost, threads restarted), and the steady-state lease traffic
// that buys the bounded dirty-loss window. Emits BENCH_recovery.json.
#include <atomic>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/virtual_clock.h"
#include "core/api.h"
#include "prof/trace.h"

int main() {
  using namespace dex;
  using namespace dex::bench;

  prof::ChaosCounters::instance().reset();

  core::ClusterConfig cluster_config;
  cluster_config.num_nodes = 4;
  // Generous retries: the writer on the victim must outlast the detection
  // window so the membership fence (not retry exhaustion) ends its run.
  cluster_config.retry.max_attempts = 16;
  cluster_config.detector.enabled = true;
  cluster_config.detector.heartbeat_interval_ns = 50'000;

  core::Cluster cluster(cluster_config);

  core::ProcessOptions options;
  options.lease_ns = 20'000;
  options.restart_lost_threads = true;
  // Pin homes at the origin: a home that migrates onto the victim would die
  // with it, and owner==home pages carry no lease — keep the lease story
  // clean for the measurement.
  options.home_migration = false;
  auto process = cluster.create_process(options);

  constexpr int kPages = 32;
  const GAddr base =
      process->mmap(kPages * kPageSize, mem::kProtReadWrite, "recovery");
  for (int p = 0; p < kPages; ++p) {
    process->store<std::uint64_t>(base + p * kPageSize, 0);
  }

  const NodeId victim = 2;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> writes{0};

  // The writer dirties every page from the victim node; when the victim is
  // fenced its next fault throws and the thread restarts at the origin,
  // where it resumes against the journaled (lease-written-back) image.
  auto writer = process->spawn([&] {
    if (!cluster.node_dead(victim)) process->migrate(victim);
    std::uint64_t value = 1;
    while (!stop.load(std::memory_order_acquire)) {
      for (int p = 0; p < kPages; ++p) {
        process->store<std::uint64_t>(base + p * kPageSize,
                                      value + static_cast<std::uint64_t>(p));
      }
      ++value;
      writes.fetch_add(kPages, std::memory_order_relaxed);
    }
  });

  auto& stats = process->dsm().stats();
  auto& failure = process->dsm().failure_stats();
  auto& chaos = prof::ChaosCounters::instance();

  // Warm-up: pump heartbeat rounds until the detector has inter-arrival
  // history AND the writer has dirtied the working set from the victim and
  // renewed leases (each renewal journals the page image at the home).
  int warmup = 0;
  while (writes.load(std::memory_order_relaxed) <
             static_cast<std::uint64_t>(kPages) * 64 ||
         stats.lease_renewals.load() == 0 || warmup < 12) {
    cluster.run_membership_round();
    if (++warmup > 100'000) break;
  }

  // Silent failure: the victim's links go dark but the oracle does not
  // kill it — only heartbeat silence can reveal the failure.
  const VirtNs isolated_at = vclock::now();
  cluster.fabric().injector().isolate_node(victim);
  int rounds = 1;
  while (cluster.run_membership_round() == 0 && rounds < 64) ++rounds;
  const VirtNs detected_at = vclock::now();
  const VirtNs detection_ns = detected_at - isolated_at;

  // Post-declaration: pump until the writer has restarted at the origin
  // and made progress there, then drain.
  const std::uint64_t writes_at_detect =
      writes.load(std::memory_order_relaxed);
  int drain = 0;
  while (failure.threads_restarted.load() == 0 ||
         writes.load(std::memory_order_relaxed) <= writes_at_detect) {
    cluster.run_membership_round();
    if (++drain > 100'000) break;
  }
  const VirtNs recovered_at = vclock::now();
  stop.store(true, std::memory_order_release);
  writer.join();

  print_header("Self-healing recovery: silent node failure, 4 nodes");
  std::printf("  detection: %d heartbeat rounds, %s us of silence\n", rounds,
              us(detection_ns).c_str());
  std::printf("  membership: epoch=%llu state(victim)=%s heartbeats=%llu\n",
              static_cast<unsigned long long>(cluster.membership_epoch()),
              cluster.member_state(victim) == core::MemberState::kDead
                  ? "dead"
                  : "NOT DEAD",
              static_cast<unsigned long long>(chaos.heartbeats.load()));
  std::printf(
      "  leases: %llu renewals, %llu piggybacked writebacks, %llu recalls\n",
      static_cast<unsigned long long>(stats.lease_renewals.load()),
      static_cast<unsigned long long>(stats.writebacks_piggybacked.load()),
      static_cast<unsigned long long>(stats.lease_recalls.load()));
  std::printf(
      "  recovery: %llu pages recovered from journal, %llu dirty lost, "
      "%llu threads restarted\n",
      static_cast<unsigned long long>(failure.pages_recovered.load()),
      static_cast<unsigned long long>(failure.dirty_pages_lost.load()),
      static_cast<unsigned long long>(failure.threads_restarted.load()));
  std::printf("  writer: %llu total page writes, failed=%s\n",
              static_cast<unsigned long long>(writes.load()),
              writer.failed() ? "YES" : "no");

  JsonDoc doc;
  doc.set("config", "nodes", cluster_config.num_nodes);
  doc.set("config", "heartbeat_interval_ns",
          static_cast<double>(cluster_config.detector.heartbeat_interval_ns));
  doc.set("config", "lease_ns", static_cast<double>(options.lease_ns));
  doc.set("detection", "rounds", rounds);
  doc.set("detection", "latency_ns", static_cast<double>(detection_ns));
  doc.set("detection", "heartbeats",
          static_cast<double>(chaos.heartbeats.load()));
  doc.set("detection", "nodes_suspected",
          static_cast<double>(chaos.nodes_suspected.load()));
  doc.set("detection", "nodes_declared_dead",
          static_cast<double>(chaos.nodes_declared_dead.load()));
  doc.set("recovery", "recovery_window_ns",
          static_cast<double>(recovered_at - detected_at));
  doc.set("recovery", "pages_recovered",
          static_cast<double>(failure.pages_recovered.load()));
  doc.set("recovery", "dirty_pages_lost",
          static_cast<double>(failure.dirty_pages_lost.load()));
  doc.set("recovery", "threads_restarted",
          static_cast<double>(failure.threads_restarted.load()));
  doc.set("leases", "renewals", static_cast<double>(stats.lease_renewals));
  doc.set("leases", "writebacks_piggybacked",
          static_cast<double>(stats.writebacks_piggybacked));
  doc.set("leases", "recalls", static_cast<double>(stats.lease_recalls));
  doc.write("BENCH_recovery.json");
  return 0;
}
