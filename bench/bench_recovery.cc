// Self-healing recovery bench (DESIGN.md "Self-healing").
//
// Two modes, selected by DEX_RECOVERY_ORIGIN:
//
//   (default)              Silent *member* failure: measures how long the
//                          accrual detector takes to declare a silently
//                          failed node dead, what the recovery path salvages
//                          (journaled pages recovered vs dirty pages lost,
//                          threads restarted), and the steady-state lease
//                          traffic that buys the bounded dirty-loss window.
//                          Emits BENCH_recovery.json.
//
//   DEX_RECOVERY_ORIGIN=1  Double failure with origin_failover on: a writer
//                          node dies first (classic journal recovery pulls
//                          its pages back to the origin), then node 0 —
//                          origin, coordinator, every home, and the journal
//                          — goes silently dark. The survivors elect a
//                          successor and the deputy promotes, restoring the
//                          recovered pages from its replicated journal
//                          images. Measures detection and rebuild latency,
//                          pages recovered vs lost, and the replication lag
//                          at the moment of death. Emits
//                          BENCH_origin_failover.json.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench/bench_util.h"
#include "common/virtual_clock.h"
#include "core/api.h"
#include "prof/trace.h"

namespace {

int run_silent_member_failure() {
  using namespace dex;
  using namespace dex::bench;

  prof::ChaosCounters::instance().reset();

  core::ClusterConfig cluster_config;
  cluster_config.num_nodes = 4;
  // Generous retries: the writer on the victim must outlast the detection
  // window so the membership fence (not retry exhaustion) ends its run.
  cluster_config.retry.max_attempts = 16;
  cluster_config.detector.enabled = true;
  cluster_config.detector.heartbeat_interval_ns = 50'000;

  core::Cluster cluster(cluster_config);

  core::ProcessOptions options;
  options.lease_ns = 20'000;
  options.restart_lost_threads = true;
  // Pin homes at the origin: a home that migrates onto the victim would die
  // with it, and owner==home pages carry no lease — keep the lease story
  // clean for the measurement.
  options.home_migration = false;
  auto process = cluster.create_process(options);

  constexpr int kPages = 32;
  const GAddr base =
      process->mmap(kPages * kPageSize, mem::kProtReadWrite, "recovery");
  for (int p = 0; p < kPages; ++p) {
    process->store<std::uint64_t>(base + p * kPageSize, 0);
  }

  const NodeId victim = 2;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> writes{0};

  // The writer dirties every page from the victim node; when the victim is
  // fenced its next fault throws and the thread restarts at the origin,
  // where it resumes against the journaled (lease-written-back) image.
  auto writer = process->spawn([&] {
    if (!cluster.node_dead(victim)) process->migrate(victim);
    std::uint64_t value = 1;
    while (!stop.load(std::memory_order_acquire)) {
      for (int p = 0; p < kPages; ++p) {
        process->store<std::uint64_t>(base + p * kPageSize,
                                      value + static_cast<std::uint64_t>(p));
      }
      ++value;
      writes.fetch_add(kPages, std::memory_order_relaxed);
    }
  });

  auto& stats = process->dsm().stats();
  auto& failure = process->dsm().failure_stats();
  auto& chaos = prof::ChaosCounters::instance();

  // Warm-up: pump heartbeat rounds until the detector has inter-arrival
  // history AND the writer has dirtied the working set from the victim and
  // renewed leases (each renewal journals the page image at the home).
  int warmup = 0;
  while (writes.load(std::memory_order_relaxed) <
             static_cast<std::uint64_t>(kPages) * 64 ||
         stats.lease_renewals.load() == 0 || warmup < 12) {
    cluster.run_membership_round();
    if (++warmup > 100'000) break;
  }

  // Silent failure: the victim's links go dark but the oracle does not
  // kill it — only heartbeat silence can reveal the failure.
  const VirtNs isolated_at = vclock::now();
  cluster.fabric().injector().isolate_node(victim);
  int rounds = 1;
  while (cluster.run_membership_round() == 0 && rounds < 64) ++rounds;
  const VirtNs detected_at = vclock::now();
  const VirtNs detection_ns = detected_at - isolated_at;

  // Post-declaration: pump until the writer has restarted at the origin
  // and made progress there, then drain.
  const std::uint64_t writes_at_detect =
      writes.load(std::memory_order_relaxed);
  int drain = 0;
  while (failure.threads_restarted.load() == 0 ||
         writes.load(std::memory_order_relaxed) <= writes_at_detect) {
    cluster.run_membership_round();
    if (++drain > 100'000) break;
  }
  const VirtNs recovered_at = vclock::now();
  stop.store(true, std::memory_order_release);
  writer.join();

  print_header("Self-healing recovery: silent node failure, 4 nodes");
  std::printf("  detection: %d heartbeat rounds, %s us of silence\n", rounds,
              us(detection_ns).c_str());
  std::printf("  membership: epoch=%llu state(victim)=%s heartbeats=%llu\n",
              static_cast<unsigned long long>(cluster.membership_epoch()),
              cluster.member_state(victim) == core::MemberState::kDead
                  ? "dead"
                  : "NOT DEAD",
              static_cast<unsigned long long>(chaos.heartbeats.load()));
  std::printf(
      "  leases: %llu renewals, %llu piggybacked writebacks, %llu recalls\n",
      static_cast<unsigned long long>(stats.lease_renewals.load()),
      static_cast<unsigned long long>(stats.writebacks_piggybacked.load()),
      static_cast<unsigned long long>(stats.lease_recalls.load()));
  std::printf(
      "  recovery: %llu pages recovered from journal, %llu dirty lost, "
      "%llu threads restarted\n",
      static_cast<unsigned long long>(failure.pages_recovered.load()),
      static_cast<unsigned long long>(failure.dirty_pages_lost.load()),
      static_cast<unsigned long long>(failure.threads_restarted.load()));
  std::printf("  writer: %llu total page writes, failed=%s\n",
              static_cast<unsigned long long>(writes.load()),
              writer.failed() ? "YES" : "no");

  JsonDoc doc;
  doc.set("config", "nodes", cluster_config.num_nodes);
  doc.set("config", "heartbeat_interval_ns",
          static_cast<double>(cluster_config.detector.heartbeat_interval_ns));
  doc.set("config", "lease_ns", static_cast<double>(options.lease_ns));
  doc.set("detection", "rounds", rounds);
  doc.set("detection", "latency_ns", static_cast<double>(detection_ns));
  doc.set("detection", "heartbeats",
          static_cast<double>(chaos.heartbeats.load()));
  doc.set("detection", "nodes_suspected",
          static_cast<double>(chaos.nodes_suspected.load()));
  doc.set("detection", "nodes_declared_dead",
          static_cast<double>(chaos.nodes_declared_dead.load()));
  doc.set("recovery", "recovery_window_ns",
          static_cast<double>(recovered_at - detected_at));
  doc.set("recovery", "pages_recovered",
          static_cast<double>(failure.pages_recovered.load()));
  doc.set("recovery", "dirty_pages_lost",
          static_cast<double>(failure.dirty_pages_lost.load()));
  doc.set("recovery", "threads_restarted",
          static_cast<double>(failure.threads_restarted.load()));
  doc.set("leases", "renewals", static_cast<double>(stats.lease_renewals));
  doc.set("leases", "writebacks_piggybacked",
          static_cast<double>(stats.writebacks_piggybacked));
  doc.set("leases", "recalls", static_cast<double>(stats.lease_recalls));
  doc.write("BENCH_recovery.json");
  return 0;
}

int run_origin_failover() {
  using namespace dex;
  using namespace dex::bench;

  prof::ChaosCounters::instance().reset();

  core::ClusterConfig cluster_config;
  cluster_config.num_nodes = 4;
  cluster_config.retry.max_attempts = 16;
  cluster_config.detector.enabled = true;
  cluster_config.detector.succession = true;
  cluster_config.detector.heartbeat_interval_ns = 50'000;

  core::Cluster cluster(cluster_config);

  core::ProcessOptions options;
  options.origin_failover = true;
  options.lease_ns = 20'000;
  // Homes stay at the origin so its death takes out every home AND the
  // journal at once — the worst case the replica + scavenge rebuild covers.
  options.home_migration = false;
  auto process = cluster.create_process(options);

  constexpr int kPages = 32;
  constexpr std::uint64_t kStamp = 0xBEEF0000u;
  const GAddr base =
      process->mmap(kPages * kPageSize, mem::kProtReadWrite, "failover");
  for (int p = 0; p < kPages; ++p) {
    process->store<std::uint64_t>(base + p * kPageSize, 0);
  }

  // The writer dirties the working set from node 3 (neither the origin nor
  // its deputy, node 1). After warm-up it writes one lease-expired stamped
  // sweep — every store renews, journaling the final image at the origin
  // and replicating it to the deputy — then parks across both failures.
  const NodeId victim = 3;
  std::atomic<bool> warm_done{false};
  std::atomic<bool> do_final{false};
  std::atomic<bool> final_done{false};
  std::atomic<bool> released{false};
  std::atomic<std::uint64_t> writes{0};

  auto writer = process->spawn([&] {
    if (!cluster.node_dead(victim)) process->migrate(victim);
    std::uint64_t value = 1;
    while (!warm_done.load(std::memory_order_acquire)) {
      for (int p = 0; p < kPages; ++p) {
        process->store<std::uint64_t>(base + p * kPageSize,
                                      value + static_cast<std::uint64_t>(p));
      }
      ++value;
      writes.fetch_add(kPages, std::memory_order_relaxed);
    }
    while (!do_final.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // Stamp, expire every lease, then restamp: the second sweep's renewals
    // piggyback the (already stamped) dirty image into the origin journal,
    // so the stamp itself — not a stale warm-up image — is what recovery
    // must reproduce.
    for (int p = 0; p < kPages; ++p) {
      process->store<std::uint64_t>(base + p * kPageSize,
                                    kStamp + static_cast<std::uint64_t>(p));
    }
    vclock::advance(options.lease_ns + 1);
    for (int p = 0; p < kPages; ++p) {
      process->store<std::uint64_t>(base + p * kPageSize,
                                    kStamp + static_cast<std::uint64_t>(p));
    }
    final_done.store(true, std::memory_order_release);
    while (!released.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });

  auto& stats = process->dsm().stats();
  auto& failure = process->dsm().failure_stats();
  auto& chaos = prof::ChaosCounters::instance();

  // Warm-up: detector history, a dirtied working set, and at least one lease
  // renewal so the journal path is exercised before the stamped sweep.
  int warmup = 0;
  while (writes.load(std::memory_order_relaxed) <
             static_cast<std::uint64_t>(kPages) * 64 ||
         stats.lease_renewals.load() == 0 || warmup < 12) {
    cluster.run_membership_round();
    if (++warmup > 100'000) break;
  }
  warm_done.store(true, std::memory_order_release);

  // Run the stamped sweeps, then flush so the deputy's replica is current.
  do_final.store(true, std::memory_order_release);
  while (!final_done.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  process->dsm().flush_replication();
  const std::uint64_t replicated_at_death =
      stats.dir_mutations_replicated.load();

  // First failure: the oracle kills the writer's node. Classic journal
  // recovery restores the stamped pages at the origin.
  cluster.fail_node(victim);
  const std::uint64_t journal_recovered = failure.pages_recovered.load();
  released.store(true, std::memory_order_release);
  writer.join();

  // Re-warm the detector: the free-running writer and the quiesce+reclaim
  // advanced the virtual clock far between heartbeats, leaving inflated
  // inter-arrival samples that would stretch the detection horizon. Enough
  // quiet rounds to cycle the full 16-sample history re-baselines the mean
  // to the configured cadence before the origin's death is scored.
  for (int i = 0; i < 24; ++i) cluster.run_membership_round();

  // Second failure, silent: node 0 — origin, coordinator, every home, and
  // the journal — goes dark. Only heartbeat silence reveals it; succession
  // elects node 1, which promotes and rebuilds from its replica.
  const VirtNs isolated_at = vclock::now();
  cluster.fabric().injector().isolate_node(0);
  int rounds = 1;
  while (cluster.run_membership_round() == 0 && rounds < 64) ++rounds;
  const VirtNs detected_at = vclock::now();
  const VirtNs detection_ns = detected_at - isolated_at;

  // The declaration round ran promotion + rebuild synchronously; a checker
  // at the promoted origin now verifies every stamped page survived both
  // failures, timing the first post-failover reads.
  std::atomic<std::uint64_t> intact{0};
  auto checker = process->spawn([&] {
    for (int p = 0; p < kPages; ++p) {
      if (process->load<std::uint64_t>(base + p * kPageSize) ==
          kStamp + static_cast<std::uint64_t>(p)) {
        intact.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  checker.join();
  const VirtNs recovered_at = vclock::now();

  print_header("Origin failover: writer death, then silent origin death");
  std::printf("  detection: %d heartbeat rounds, %s us of silence\n", rounds,
              us(detection_ns).c_str());
  std::printf(
      "  succession: epoch=%llu coordinator=%d origin=%d failovers=%llu\n",
      static_cast<unsigned long long>(cluster.membership_epoch()),
      static_cast<int>(cluster.coordinator()),
      static_cast<int>(process->origin()),
      static_cast<unsigned long long>(failure.origin_failovers.load()));
  std::printf(
      "  replication: %llu mutations in %llu batches, %llu lagged at death\n",
      static_cast<unsigned long long>(replicated_at_death),
      static_cast<unsigned long long>(stats.replication_batches.load()),
      static_cast<unsigned long long>(stats.replication_lag.load()));
  std::printf(
      "  rebuild: %llu journal-recovered, %llu from the replica journal, "
      "%llu scavenged, %llu dirty lost\n",
      static_cast<unsigned long long>(journal_recovered),
      static_cast<unsigned long long>(stats.replica_journal_pages.load()),
      static_cast<unsigned long long>(stats.scavenge_pages_rebuilt.load()),
      static_cast<unsigned long long>(failure.dirty_pages_lost.load()));
  std::printf("  image: %llu/%d stamped pages intact after both failures\n",
              static_cast<unsigned long long>(intact.load()), kPages);

  JsonDoc doc;
  doc.set("config", "nodes", cluster_config.num_nodes);
  doc.set("config", "heartbeat_interval_ns",
          static_cast<double>(cluster_config.detector.heartbeat_interval_ns));
  doc.set("config", "lease_ns", static_cast<double>(options.lease_ns));
  doc.set("detection", "rounds", rounds);
  doc.set("detection", "latency_ns", static_cast<double>(detection_ns));
  doc.set("detection", "heartbeats",
          static_cast<double>(chaos.heartbeats.load()));
  doc.set("failover", "origin_failovers",
          static_cast<double>(failure.origin_failovers.load()));
  doc.set("failover", "promoted_origin",
          static_cast<double>(process->origin()));
  doc.set("failover", "recovery_window_ns",
          static_cast<double>(recovered_at - detected_at));
  doc.set("replication", "dir_mutations_replicated",
          static_cast<double>(replicated_at_death));
  doc.set("replication", "batches",
          static_cast<double>(stats.replication_batches.load()));
  doc.set("replication", "lag",
          static_cast<double>(stats.replication_lag.load()));
  doc.set("rebuild", "journal_recovered",
          static_cast<double>(journal_recovered));
  doc.set("rebuild", "replica_journal_pages",
          static_cast<double>(stats.replica_journal_pages.load()));
  doc.set("rebuild", "scavenge_pages_rebuilt",
          static_cast<double>(stats.scavenge_pages_rebuilt.load()));
  doc.set("rebuild", "dirty_pages_lost",
          static_cast<double>(failure.dirty_pages_lost.load()));
  doc.set("rebuild", "pages_intact",
          static_cast<double>(intact.load()));
  doc.write("BENCH_origin_failover.json");
  return 0;
}

}  // namespace

int main() {
  const char* origin_mode = std::getenv("DEX_RECOVERY_ORIGIN");
  if (origin_mode != nullptr && origin_mode[0] == '1') {
    return run_origin_failover();
  }
  return run_silent_member_failure();
}
