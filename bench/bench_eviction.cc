// Bounded-memory bench (DESIGN.md "Memory pressure").
//
// Measures what the frame budget costs and what it buys. For each selected
// application: an unbounded run establishes the per-node frame high-water
// mark (the app's true working set), then the same run repeats with the
// budget set to 25% of that peak and the cold tier enabled. The budgeted
// run must produce the identical verified result; the bench reports the
// slowdown, the eviction/spill/backpressure traffic that paid for the 4x
// memory reduction, and whether the peak actually stayed under the budget.
// Emits BENCH_eviction.json.
//
// DEX_EVICTION_SOAK=1 switches to the soak variant: a synthetic streaming
// writer drives a working set 4x over a fixed budget through repeated
// sweeps — run under an address-space cap (ulimit -v) it proves the frame
// manager completes over-budget working sets without OOM.
// DEX_EVICTION_APPS="GRP,KMN" restricts the app set.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/api.h"

namespace {

std::vector<std::string> selected_apps() {
  std::vector<std::string> names;
  if (const char* env = std::getenv("DEX_EVICTION_APPS")) {
    std::string list = env;
    std::size_t pos = 0;
    while (pos < list.size()) {
      const std::size_t comma = list.find(',', pos);
      const std::size_t end = comma == std::string::npos ? list.size() : comma;
      if (end > pos) names.push_back(list.substr(pos, end - pos));
      pos = end + 1;
    }
  }
  if (names.empty()) names = {"GRP", "KMN", "EP", "BFS"};
  return names;
}

int run_soak() {
  using namespace dex;
  using namespace dex::bench;

  constexpr std::size_t kPages = 1024;  // 4 MB working set
  constexpr std::uint64_t kBudget = 256 * kPageSize;  // 4x over budget
  constexpr int kSweeps = 3;
  constexpr std::size_t kWordsPerPage = kPageSize / sizeof(std::uint64_t);

  core::ClusterConfig cluster_config;
  cluster_config.num_nodes = 4;
  core::Cluster cluster(cluster_config);
  core::ProcessOptions options;
  options.frame_budget_bytes = kBudget;
  options.spill_cold_pages = true;
  options.home_migration = false;
  auto process = cluster.create_process(options);

  print_header("Eviction soak: 4 MB working set, 1 MB/node frame budget");
  GArray<std::uint64_t> arr(*process, kPages * kWordsPerPage, "soak");
  std::vector<DexThread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.push_back(process->spawn([&, t] {
      migrate(static_cast<NodeId>(t));
      const std::size_t begin = kPages / 4 * static_cast<std::size_t>(t);
      const std::size_t end = begin + kPages / 4;
      for (int sweep = 1; sweep <= kSweeps; ++sweep) {
        for (std::size_t p = begin; p < end; ++p) {
          arr.set(p * kWordsPerPage,
                  static_cast<std::uint64_t>(sweep) * 100'000 + p);
        }
      }
      migrate_back();
    }));
  }
  for (auto& t : threads) t.join();
  process->dsm().frame_patrol();  // one patrol pass settles the pools

  std::size_t mismatches = 0;
  for (std::size_t p = 0; p < kPages; ++p) {
    if (arr.get(p * kWordsPerPage) !=
        static_cast<std::uint64_t>(kSweeps) * 100'000 + p) {
      ++mismatches;
    }
  }
  auto& stats = process->dsm().stats();
  const std::uint64_t peak = process->dsm().frame_high_water_bytes();
  std::printf("  image: %zu/%zu pages correct\n", kPages - mismatches,
              kPages);
  std::printf("  peak frame bytes: %llu (budget %llu)\n",
              static_cast<unsigned long long>(peak),
              static_cast<unsigned long long>(kBudget));
  std::printf(
      "  evictions: %llu shared, %llu exclusive, %llu local; spills "
      "%llu out / %llu in\n",
      static_cast<unsigned long long>(stats.evictions_shared.load()),
      static_cast<unsigned long long>(stats.evictions_exclusive.load()),
      static_cast<unsigned long long>(stats.evictions_local.load()),
      static_cast<unsigned long long>(stats.spills_out.load()),
      static_cast<unsigned long long>(stats.spills_in.load()));
  std::printf("  backpressure: %llu stalls, %llu overshoots\n",
              static_cast<unsigned long long>(
                  stats.backpressure_stalls.load()),
              static_cast<unsigned long long>(
                  stats.backpressure_overshoots.load()));

  JsonDoc doc;
  doc.set("soak", "pages", static_cast<double>(kPages));
  doc.set("soak", "budget_bytes", static_cast<double>(kBudget));
  doc.set("soak", "peak_frame_bytes", static_cast<double>(peak));
  doc.set("soak", "mismatches", static_cast<double>(mismatches));
  doc.set("soak", "evictions",
          static_cast<double>(stats.evictions_shared.load() +
                              stats.evictions_exclusive.load() +
                              stats.evictions_local.load()));
  doc.set("soak", "spills_out", static_cast<double>(stats.spills_out.load()));
  doc.set("soak", "backpressure_stalls",
          static_cast<double>(stats.backpressure_stalls.load()));
  doc.write("BENCH_eviction.json");
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int main() {
  using namespace dex;
  using namespace dex::bench;

  if (const char* soak = std::getenv("DEX_EVICTION_SOAK")) {
    if (soak[0] == '1') return run_soak();
  }

  JsonDoc json;
  print_header(
      "Bounded frames: 25%-of-peak budget vs unbounded (4 nodes, "
      "Optimized ports)");
  std::printf("  %-5s %12s %12s %9s %9s %9s %9s %7s\n", "app",
              "peak(KB)", "budget(KB)", "slowdown", "evict", "spill",
              "stalls", "image");

  bool all_ok = true;
  for (const std::string& name : selected_apps()) {
    apps::App* app = apps::find_app(name);
    if (app == nullptr) {
      std::printf("unknown app %s\n", name.c_str());
      continue;
    }

    apps::RunConfig base;
    base.nodes = 4;
    base.threads_per_node = 8;
    base.variant = apps::Variant::kOptimized;
    base.scale = bench_scale(name) * 0.25;
    base.seed = 42;
    base.pacing = 0;

    const apps::RunResult unbounded = apps::run_app(*app, base);

    apps::RunConfig budgeted = base;
    budgeted.frame_budget_bytes = unbounded.frame_high_water_bytes / 4;
    budgeted.spill_cold_pages = true;
    const apps::RunResult bounded = apps::run_app(*app, budgeted);

    const bool image_ok = bounded.verified &&
                          bounded.checksum == unbounded.checksum;
    all_ok = all_ok && image_ok;
    const double slowdown =
        unbounded.elapsed_ns > 0
            ? static_cast<double>(bounded.elapsed_ns) /
                  static_cast<double>(unbounded.elapsed_ns)
            : 0.0;
    const std::uint64_t evictions = bounded.evictions_shared +
                                    bounded.evictions_exclusive +
                                    bounded.evictions_local;
    std::printf("  %-5s %12.1f %12.1f %8.2fx %9llu %9llu %9llu %7s\n",
                name.c_str(),
                static_cast<double>(unbounded.frame_high_water_bytes) / 1024,
                static_cast<double>(budgeted.frame_budget_bytes) / 1024,
                slowdown, static_cast<unsigned long long>(evictions),
                static_cast<unsigned long long>(bounded.spills_out),
                static_cast<unsigned long long>(bounded.backpressure_stalls),
                image_ok ? "exact" : "DIFF");

    json.set(name, "peak_unbounded_bytes",
             static_cast<double>(unbounded.frame_high_water_bytes));
    json.set(name, "budget_bytes",
             static_cast<double>(budgeted.frame_budget_bytes));
    json.set(name, "peak_budgeted_bytes",
             static_cast<double>(bounded.frame_high_water_bytes));
    json.set(name, "slowdown", slowdown);
    json.set(name, "evictions_shared",
             static_cast<double>(bounded.evictions_shared));
    json.set(name, "evictions_exclusive",
             static_cast<double>(bounded.evictions_exclusive));
    json.set(name, "evictions_local",
             static_cast<double>(bounded.evictions_local));
    json.set(name, "spills_out", static_cast<double>(bounded.spills_out));
    json.set(name, "spills_in", static_cast<double>(bounded.spills_in));
    json.set(name, "backpressure_stalls",
             static_cast<double>(bounded.backpressure_stalls));
    json.set(name, "backpressure_overshoots",
             static_cast<double>(bounded.backpressure_overshoots));
    json.set(name, "image_match", image_ok ? 1.0 : 0.0);
  }

  json.write("BENCH_eviction.json");
  std::printf(
      "Expected: every app verifies with the identical checksum under a "
      "4x-smaller frame\nfootprint, paying for it in eviction/spill "
      "traffic and backpressure stalls.\n");
  return all_ok ? 0 : 1;
}
