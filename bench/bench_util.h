// Shared helpers for the reproduction benches: fixed-width table printing
// and the standard experiment configurations.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "apps/app.h"

namespace dex::bench {

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

/// Formats virtual nanoseconds as microseconds with one decimal.
inline std::string us(VirtNs ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(ns) / 1000.0);
  return buf;
}

/// Node counts used throughout Figure 2 (the paper sweeps 1..8; we sample
/// the powers of two plus 6 to keep the default run fast).
inline const std::vector<int>& fig2_node_counts() {
  static const std::vector<int> counts = {1, 2, 4, 8};
  return counts;
}

/// Per-app workload scales for the benches: sized so the full Figure 2
/// sweep completes in minutes while keeping every app's characteristic
/// traffic pattern.
inline double bench_scale(const std::string& app) {
  if (app == "GRP") return 4.00;   // 16 MB text
  if (app == "KMN") return 5.00;   // 500k points
  if (app == "BT") return 0.70;    // ~50^3 grid
  if (app == "EP") return 8.00;    // ~2M pairs
  if (app == "FT") return 1.00;    // 64^3 grid
  if (app == "BLK") return 1.00;   // 64k options
  if (app == "BFS") return 2.00;   // 2^17 vertices
  if (app == "BP") return 1.00;    // sized against the LLC model (§V-B)
  return 1.0;
}

}  // namespace dex::bench
