// Shared helpers for the reproduction benches: fixed-width table printing,
// the standard experiment configurations, and the machine-readable
// BENCH_*.json emitter that tracks the perf trajectory across PRs.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "apps/app.h"

namespace dex::bench {

/// Minimal JSON emitter for the BENCH_*.json artifacts: an object of named
/// sections, each a flat object of numeric or string fields, in insertion
/// order. No dependency, no escaping beyond quotes/backslashes (keys and
/// values here are bench-controlled identifiers).
class JsonDoc {
 public:
  void set(const std::string& section, const std::string& key, double value) {
    char buf[64];
    if (value == static_cast<double>(static_cast<long long>(value))) {
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(value));
    } else {
      std::snprintf(buf, sizeof(buf), "%.4f", value);
    }
    fields(section).emplace_back(key, buf);
  }
  void set(const std::string& section, const std::string& key,
           const std::string& value) {
    fields(section).emplace_back(key, "\"" + escaped(value) + "\"");
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n");
    for (std::size_t s = 0; s < sections_.size(); ++s) {
      std::fprintf(f, "  \"%s\": {\n", escaped(sections_[s].first).c_str());
      const auto& kvs = sections_[s].second;
      for (std::size_t i = 0; i < kvs.size(); ++i) {
        std::fprintf(f, "    \"%s\": %s%s\n", escaped(kvs[i].first).c_str(),
                     kvs[i].second.c_str(), i + 1 < kvs.size() ? "," : "");
      }
      std::fprintf(f, "  }%s\n", s + 1 < sections_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  using Fields = std::vector<std::pair<std::string, std::string>>;

  Fields& fields(const std::string& section) {
    for (auto& [name, kvs] : sections_) {
      if (name == section) return kvs;
    }
    sections_.emplace_back(section, Fields{});
    return sections_.back().second;
  }

  static std::string escaped(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (const char c : in) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::vector<std::pair<std::string, Fields>> sections_;
};

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

/// Formats virtual nanoseconds as microseconds with one decimal.
inline std::string us(VirtNs ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(ns) / 1000.0);
  return buf;
}

/// Node counts used throughout Figure 2 (the paper sweeps 1..8; we sample
/// the powers of two plus 6 to keep the default run fast).
inline const std::vector<int>& fig2_node_counts() {
  static const std::vector<int> counts = {1, 2, 4, 8};
  return counts;
}

/// Per-app workload scales for the benches: sized so the full Figure 2
/// sweep completes in minutes while keeping every app's characteristic
/// traffic pattern.
inline double bench_scale(const std::string& app) {
  if (app == "GRP") return 4.00;   // 16 MB text
  if (app == "KMN") return 5.00;   // 500k points
  if (app == "BT") return 0.70;    // ~50^3 grid
  if (app == "EP") return 8.00;    // ~2M pairs
  if (app == "FT") return 1.00;    // 64^3 grid
  if (app == "BLK") return 1.00;   // 64k options
  if (app == "BFS") return 2.00;   // 2^17 vertices
  if (app == "BP") return 1.00;    // sized against the LLC model (§V-B)
  return 1.0;
}

}  // namespace dex::bench
