// Messaging-layer microbenchmarks (google-benchmark).
//
// Measures the *host-side* throughput of the simulated fabric primitives —
// useful for keeping the simulator itself fast — and reports the modeled
// virtual latency of each operation as a counter.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/virtual_clock.h"
#include "net/fabric.h"

namespace {

using namespace dex;

net::Fabric& shared_fabric() {
  static net::Fabric* fabric = [] {
    net::FabricOptions options;
    options.num_nodes = 4;
    auto* f = new net::Fabric(options);
    f->register_handler(net::MsgType::kDelegateFutex,
                        [](const net::Message&) {
                          net::Message reply;
                          reply.type = net::MsgType::kDelegateFutex;
                          return reply;
                        });
    f->register_handler(net::MsgType::kPageGrant, [](const net::Message&) {
      net::Message reply;
      reply.type = net::MsgType::kPageGrant;
      reply.payload.assign(kPageSize, 0x2a);
      return reply;
    });
    return f;
  }();
  return *fabric;
}

void BM_SmallRpc(benchmark::State& state) {
  net::Fabric& fabric = shared_fabric();
  VirtualClock clock;
  ScopedClockBinding bind(&clock);
  net::Message msg;
  msg.type = net::MsgType::kDelegateFutex;
  msg.dst = 1;
  msg.set_payload(std::uint64_t{7});
  std::uint64_t calls = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fabric.call(0, msg));
    ++calls;
  }
  state.counters["virt_us_per_call"] = benchmark::Counter(
      static_cast<double>(clock.now()) / 1000.0 / static_cast<double>(calls));
}
BENCHMARK(BM_SmallRpc);

void BM_PageGrantRpc(benchmark::State& state) {
  net::Fabric& fabric = shared_fabric();
  VirtualClock clock;
  ScopedClockBinding bind(&clock);
  net::Message msg;
  msg.type = net::MsgType::kPageGrant;
  msg.dst = 2;
  msg.set_payload(std::uint64_t{7});
  std::uint64_t calls = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fabric.call(0, msg));
    ++calls;
  }
  state.counters["virt_us_per_call"] = benchmark::Counter(
      static_cast<double>(clock.now()) / 1000.0 / static_cast<double>(calls));
}
BENCHMARK(BM_PageGrantRpc);

void BM_BulkTransfer(benchmark::State& state) {
  net::Fabric& fabric = shared_fabric();
  VirtualClock clock;
  ScopedClockBinding bind(&clock);
  std::vector<std::uint8_t> src(kPageSize, 1), dst(kPageSize);
  std::uint64_t calls = 0;
  for (auto _ : state) {
    fabric.bulk_transfer(0, 3, src.data(), src.size(), dst.data());
    ++calls;
  }
  state.counters["virt_us_per_page"] = benchmark::Counter(
      static_cast<double>(clock.now()) / 1000.0 / static_cast<double>(calls));
  state.SetBytesProcessed(static_cast<std::int64_t>(calls) * kPageSize);
}
BENCHMARK(BM_BulkTransfer);

}  // namespace

BENCHMARK_MAIN();
