// Ablation: §III-C leader-follower fault coalescing on vs off.
//
// Many threads on one node touch the same cold pages simultaneously. With
// coalescing, one leader per (page, access-type) runs the protocol and the
// followers just resume; without it, every thread issues its own protocol
// round trip (and most of them lose the directory-entry race and burn
// retries).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"

namespace {

struct Outcome {
  dex::VirtNs elapsed;
  std::uint64_t faults;
  std::uint64_t coalesced;
  std::uint64_t retries;
  std::uint64_t messages;
};

Outcome run(bool coalesce) {
  using namespace dex;
  ClusterConfig cluster_config;
  cluster_config.num_nodes = 2;
  Cluster cluster(cluster_config);
  ProcessOptions options;
  options.coalesce_faults = coalesce;
  auto process = cluster.create_process(options);

  constexpr std::size_t kPages = 128;
  constexpr int kThreads = 8;
  GArray<std::uint64_t> data(*process, kPages * kPageSize / 8, "shared");
  for (std::size_t i = 0; i < data.size(); i += 512) {
    data.set(i, i);
  }

  DexBarrier barrier(*process, kThreads);
  const VirtNs t0 = vclock::now();
  std::vector<DexThread> threads;
  VirtNs finish = t0;
  {
    ScopedPacing pace(1.0);
    for (int t = 0; t < kThreads; ++t) {
      threads.push_back(process->spawn([&] {
        migrate(1);
        barrier.wait();
        // All threads sweep the same pages in the same order: maximal
        // same-page, same-access concurrency.
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < data.size(); i += 512) {
          sum += data.get(i);
          compute(500);
        }
        (void)sum;
        migrate_back();
      }));
    }
    for (auto& t : threads) {
      t.join();
      finish = std::max(finish, t.final_clock());
    }
  }

  auto& stats = process->dsm().stats();
  return Outcome{finish - t0, stats.total_faults(),
                 process->dsm().fault_table(1).coalesced_count(),
                 stats.retries.load(),
                 cluster.fabric().total_messages()};
}

}  // namespace

int main() {
  using namespace dex::bench;
  print_header(
      "Ablation: SIII-C leader-follower fault coalescing (8 threads read "
      "128 cold remote pages)");
  std::printf("%-24s %12s %10s %10s %10s %10s\n", "mode", "elapsed(us)",
              "faults", "coalesced", "retries", "messages");
  print_rule(84);
  for (const bool coalesce : {true, false}) {
    const Outcome o = run(coalesce);
    std::printf("%-24s %12s %10llu %10llu %10llu %10llu\n",
                coalesce ? "leader-follower (DeX)" : "no coalescing",
                us(o.elapsed).c_str(),
                static_cast<unsigned long long>(o.faults),
                static_cast<unsigned long long>(o.coalesced),
                static_cast<unsigned long long>(o.retries),
                static_cast<unsigned long long>(o.messages));
  }
  std::printf(
      "\nWithout coalescing every thread runs the protocol for the same "
      "page; with it the\nfollowers sleep on the leader and resume with the "
      "installed PTE (SIII-C).\n");
  return 0;
}
