// Table I: "Complexity to apply DeX to existing applications."
//
// Prints, per application, the multithreading implementation, the LoC the
// paper reports for the initial conversion and for the optimized version,
// and the corresponding hand-counted LoC of this repository's variants
// (the lines that differ between the pristine algorithm and each variant:
// migration calls, placement changes, staging code).
#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace dex;
  using namespace dex::bench;

  print_header(
      "Table I: complexity to apply DeX to existing applications (LoC)");
  std::printf("%-6s %-12s %8s | %14s %14s | %14s %14s\n", "App", "Impl",
              "Regions", "paper initial", "paper optim.", "ours initial",
              "ours optim.");
  print_rule(96);

  int paper_initial_total = 0, paper_opt_total = 0;
  int ours_initial_total = 0, ours_opt_total = 0;
  for (apps::App* app : apps::all_apps()) {
    const apps::LocInfo loc = app->loc();
    std::printf("%-6s %-12s %8d | %14d %14d | %14d %14d\n",
                app->name().c_str(), loc.multithread_impl, loc.regions,
                loc.paper_initial, loc.paper_optimized, loc.ours_initial,
                loc.ours_optimized);
    paper_initial_total += loc.paper_initial;
    paper_opt_total += loc.paper_optimized;
    ours_initial_total += loc.ours_initial;
    ours_opt_total += loc.ours_optimized;
  }
  print_rule(96);
  std::printf("%-6s %-12s %8s | %14d %14d | %14d %14d\n", "total", "", "",
              paper_initial_total, paper_opt_total, ours_initial_total,
              ours_opt_total);
  std::printf(
      "\nPaper: ~110 LoC added / 42 removed for all initial ports (~1.1%% "
      "of app code),\n246 LoC modified for all optimizations; we match the "
      "per-app order of magnitude.\n");
  return 0;
}
