// §IV / §V-C: the profiling-driven optimization workflow.
//
// Runs GRP and KMN with fault tracing enabled, Initial vs Optimized, and
// prints what the paper's tool would show a developer: the hottest fault
// sites, the false-sharing suspect pages (with the objects and sites
// involved), and how the optimizations change the fault profile.
#include <cstdio>

#include "bench/bench_util.h"
#include "prof/analysis.h"

int main() {
  using namespace dex;
  using namespace dex::bench;

  for (const char* name : {"GRP", "KMN"}) {
    apps::App* app = apps::find_app(name);
    for (const apps::Variant variant :
         {apps::Variant::kInitial, apps::Variant::kOptimized}) {
      apps::RunConfig config;
      config.nodes = 4;
      config.threads_per_node = 4;
      config.variant = variant;
      config.scale = bench_scale(name) * 0.25;
      config.trace_faults = true;
      const apps::RunResult result = apps::run_app(*app, config);

      char title[128];
      std::snprintf(title, sizeof(title),
                    "%s (%s): %zu traced fault events, %s us, verified=%s",
                    name, apps::to_string(variant), result.trace.size(),
                    us(result.elapsed_ns).c_str(),
                    result.verified ? "yes" : "NO");
      print_header(title);

      prof::TraceAnalysis analysis(result.trace);
      prof::ProtocolCounters counters;
      counters.dir_lock_contention = result.dir_lock_contention;
      counters.latch_restarts = result.latch_restarts;
      counters.latch_upgrades = result.latch_upgrades;
      counters.fault_table_contention = result.fault_table_contention;
      counters.remote_faults = result.remote_faults;
      counters.home_migrations = result.home_migrations;
      counters.home_hint_hits = result.home_hint_hits;
      counters.home_chases = result.home_chases;
      counters.faults_by_home = result.faults_by_home;
      counters.lease_renewals = result.lease_renewals;
      counters.writebacks_piggybacked = result.writebacks_piggybacked;
      counters.lease_recalls = result.lease_recalls;
      counters.pages_recovered = result.pages_recovered;
      counters.dirty_pages_lost = result.dirty_pages_lost;
      counters.threads_restarted = result.threads_restarted;
      counters.frame_budget_bytes = result.frame_budget_bytes;
      counters.frame_high_water_bytes = result.frame_high_water_bytes;
      counters.evictions_shared = result.evictions_shared;
      counters.evictions_exclusive = result.evictions_exclusive;
      counters.evictions_local = result.evictions_local;
      counters.spills_out = result.spills_out;
      counters.spills_in = result.spills_in;
      counters.backpressure_stalls = result.backpressure_stalls;
      counters.backpressure_overshoots = result.backpressure_overshoots;
      counters.journal_bytes = result.journal_bytes;
      counters.journal_gcs = result.journal_gcs;
      counters.engine_submitted = result.engine_submitted;
      counters.engine_resumes = result.engine_resumes;
      counters.async_completions = result.async_completions;
      counters.engine_depth_peak = result.engine_depth_peak;
      counters.engine_depth_sum = result.engine_depth_sum;
      counters.engine_depth_samples = result.engine_depth_samples;
      counters.engine_pump_handoffs = result.engine_pump_handoffs;
      counters.doorbell_batches = result.doorbell_batches;
      counters.batched_posts = result.batched_posts;
      counters.thread_migrations_auto = result.thread_migrations_auto;
      counters.placement_windows = result.placement_windows;
      counters.placement_vetoes = result.placement_vetoes;
      counters.placement_deferrals = result.placement_deferrals;
      counters.placement_arbitrations = result.placement_arbitrations;
      counters.placement_hints_warmed = result.placement_hints_warmed;
      counters.origin_failovers = result.origin_failovers;
      counters.dir_mutations_replicated = result.dir_mutations_replicated;
      counters.replication_batches = result.replication_batches;
      counters.replica_journal_pages = result.replica_journal_pages;
      counters.scavenge_pages_rebuilt = result.scavenge_pages_rebuilt;
      counters.replication_lag = result.replication_lag;
      analysis.set_protocol_counters(counters);
      std::printf("%s\n", analysis.format_report(6).c_str());
    }
  }

  std::printf(
      "Expected: the Initial profiles surface grp:scan_loop / "
      "kmn:assign_loop hammering the\nshared counter/accumulator pages "
      "(CONTENDED, many nodes); the Optimized profiles show\nthose pages "
      "gone from the false-sharing list and far fewer write faults.\n");
  return 0;
}
