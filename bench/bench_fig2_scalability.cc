// Figure 2: "Scalability of applications on DeX."
//
// For every application, sweeps the node count with 8 threads per node and
// reports performance normalized to the original, unmodified application on
// a single machine with 8 threads (higher is better), for both the Initial
// and the Optimized ports — the paper's Figure 2 series.
//
// Expected shape (paper §V-B/§V-C):
//   Initial:   EP, BLK, BP scale (BP super-linearly at 2 nodes);
//              GRP, KMN, BT, FT, BFS fall below 1x.
//   Optimized: GRP and KMN scale, BT exceeds 1x, EP/BFS/BP improve;
//              FT and BFS stay below 1x. Six of eight beat single-machine.
//
// Environment knobs: DEX_FIG2_APPS="GRP,KMN" restricts the app set;
// DEX_FIG2_SCALE=0.5 scales every workload; DEX_FIG2_TPN=8 threads/node.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace {

std::vector<std::string> selected_apps() {
  std::vector<std::string> names;
  if (const char* env = std::getenv("DEX_FIG2_APPS")) {
    std::string list = env;
    std::size_t pos = 0;
    while (pos < list.size()) {
      const std::size_t comma = list.find(',', pos);
      const std::size_t end = comma == std::string::npos ? list.size() : comma;
      if (end > pos) names.push_back(list.substr(pos, end - pos));
      pos = end + 1;
    }
  }
  if (names.empty()) {
    for (dex::apps::App* app : dex::apps::all_apps()) {
      names.push_back(app->name());
    }
  }
  return names;
}

}  // namespace

int main() {
  using namespace dex;
  using namespace dex::bench;
  JsonDoc json;

  const double scale_mult =
      std::getenv("DEX_FIG2_SCALE") ? std::atof(std::getenv("DEX_FIG2_SCALE"))
                                    : 1.0;
  const int threads_per_node =
      std::getenv("DEX_FIG2_TPN") ? std::atoi(std::getenv("DEX_FIG2_TPN")) : 8;

  print_header(
      "Figure 2: scalability on DeX (speedup vs unmodified 1-node run; "
      "8 threads/node)");

  for (const std::string& name : selected_apps()) {
    apps::App* app = apps::find_app(name);
    if (app == nullptr) {
      std::printf("unknown app %s\n", name.c_str());
      continue;
    }

    apps::RunConfig base;
    base.threads_per_node = threads_per_node;
    base.scale = bench_scale(name) * scale_mult;
    base.seed = 42;

    // Baseline: the original single-machine program (no migration calls).
    apps::RunConfig baseline = base;
    baseline.nodes = 1;
    baseline.variant = apps::Variant::kInitial;
    baseline.migrate = false;
    const apps::RunResult ref = apps::run_app(*app, baseline);
    if (!ref.verified) {
      std::printf("%s: BASELINE FAILED VERIFICATION\n", name.c_str());
      continue;
    }

    std::printf("\n%s (%s) baseline 1-node x8: %s us\n", name.c_str(),
                app->description().c_str(), us(ref.elapsed_ns).c_str());
    json.set(name, "baseline_us",
             static_cast<double>(ref.elapsed_ns) / 1000.0);
    std::printf("  %-10s", "nodes:");
    for (const int n : fig2_node_counts()) std::printf("%8d", n);
    std::printf("\n");

    for (const apps::Variant variant :
         {apps::Variant::kInitial, apps::Variant::kOptimized}) {
      std::printf("  %-10s", apps::to_string(variant));
      for (const int nodes : fig2_node_counts()) {
        apps::RunConfig config = base;
        config.nodes = nodes;
        config.variant = variant;
        const apps::RunResult result = apps::run_app(*app, config);
        if (!result.verified) {
          std::printf("%8s", "BAD!");
          continue;
        }
        const double speedup = static_cast<double>(ref.elapsed_ns) /
                               static_cast<double>(result.elapsed_ns);
        std::printf("%8.2f", speedup);
        std::fflush(stdout);
        const std::string key = std::string(apps::to_string(variant)) + "_" +
                                std::to_string(nodes);
        json.set(name, key, speedup);
      }
      std::printf("\n");
    }

    // Ablation row: the optimized port at the largest node count, but with
    // the classic origin-relayed recall (no forwarded grants) and a single
    // directory shard — the protocol before the two-hop hot path.
    {
      const auto counts = fig2_node_counts();
      const int nodes = counts.back();
      apps::RunConfig config = base;
      config.nodes = nodes;
      config.variant = apps::Variant::kOptimized;
      config.forward_grants = false;
      config.dir_shards = 1;
      const apps::RunResult result = apps::run_app(*app, config);
      std::printf("  %-10s", "classic");
      std::printf("%*s", 8 * static_cast<int>(counts.size() - 1), "");
      if (!result.verified) {
        std::printf("%8s\n", "BAD!");
      } else {
        const double speedup = static_cast<double>(ref.elapsed_ns) /
                               static_cast<double>(result.elapsed_ns);
        std::printf("%8.2f\n", speedup);
        json.set(name, "optimized_" + std::to_string(nodes) + "_classic",
                 speedup);
      }
    }

    // Ablation row: the optimized port at the largest node count with
    // adaptive home migration off — every directory entry pinned at its
    // origin, the fixed-home protocol.
    {
      const auto counts = fig2_node_counts();
      const int nodes = counts.back();
      apps::RunConfig config = base;
      config.nodes = nodes;
      config.variant = apps::Variant::kOptimized;
      config.home_migration = false;
      const apps::RunResult result = apps::run_app(*app, config);
      std::printf("  %-10s", "fixed-home");
      std::printf("%*s", 8 * static_cast<int>(counts.size() - 1), "");
      if (!result.verified) {
        std::printf("%8s\n", "BAD!");
      } else {
        const double speedup = static_cast<double>(ref.elapsed_ns) /
                               static_cast<double>(result.elapsed_ns);
        std::printf("%8.2f\n", speedup);
        json.set(name, "optimized_" + std::to_string(nodes) + "_fixed_home",
                 speedup);
      }
    }
  }

  json.write("BENCH_scalability.json");

  std::printf(
      "\nPaper's qualitative result: Initial scales EP/BLK/BP only "
      "(BP super-linear);\noptimization lets GRP/KMN/BT beat single-machine "
      "too (6 of 8); FT and BFS remain\nbelow 1x (all-to-all transposes / "
      "scattered discovery writes).\n");
  return 0;
}
