// Table II: "Migration latency in microseconds" + the repeated-migration
// microbenchmark of §V-D.
//
// The paper's microbenchmark migrates a thread once a second and measures
// forward (origin -> remote) and backward (remote -> origin) latency for
// the 1st and 2nd migration, split into origin-side and remote-side work.
// Expected: 1st forward ~812 us (dominated by remote-worker creation), 2nd
// forward ~237 us, backward ~25 us; later migrations match the 2nd.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/api.h"

int main() {
  using namespace dex;
  using namespace dex::bench;

  ClusterConfig cluster_config;
  cluster_config.num_nodes = 2;
  Cluster cluster(cluster_config);
  auto process = cluster.create_process(ProcessOptions{});

  constexpr int kMigrations = 10;
  DexThread thread = process->spawn([&] {
    for (int i = 0; i < kMigrations; ++i) {
      migrate(1);
      compute(1000);  // touch down briefly at the remote
      migrate_back();
    }
  });
  thread.join();

  const auto log = process->migration_log();

  print_header("Table II: migration latency (microseconds)");
  std::printf("%-22s %12s %12s %12s\n", "migration", "origin-side",
              "remote-side", "total");
  print_rule();

  auto row = [&](const char* label, const core::MigrationRecord& r) {
    const VirtNs remote = r.remote_worker_ns + r.thread_setup_ns +
                          (r.backward ? 0 : 0);
    std::printf("%-22s %12s %12s %12s\n", label,
                us(r.backward ? r.origin_side_ns : r.origin_side_ns).c_str(),
                us(r.backward ? r.total_ns - r.origin_side_ns : remote)
                    .c_str(),
                us(r.total_ns).c_str());
  };

  int forward_seen = 0, backward_seen = 0;
  VirtNs later_forward_sum = 0, later_backward_sum = 0;
  int later_forward = 0, later_backward = 0;
  for (const auto& record : log) {
    if (!record.backward) {
      ++forward_seen;
      if (forward_seen == 1) {
        row("1st forward (O->R)", record);
      } else if (forward_seen == 2) {
        row("2nd forward (O->R)", record);
      } else {
        later_forward_sum += record.total_ns;
        ++later_forward;
      }
    } else {
      ++backward_seen;
      if (backward_seen == 1) {
        row("1st backward (R->O)", record);
      } else if (backward_seen == 2) {
        row("2nd backward (R->O)", record);
      } else {
        later_backward_sum += record.total_ns;
        ++later_backward;
      }
    }
  }
  print_rule();
  if (later_forward > 0) {
    std::printf("%-22s %38s avg of %d\n", "3rd+ forward",
                us(later_forward_sum / static_cast<VirtNs>(later_forward))
                    .c_str(),
                later_forward);
  }
  if (later_backward > 0) {
    std::printf("%-22s %38s avg of %d\n", "3rd+ backward",
                us(later_backward_sum / static_cast<VirtNs>(later_backward))
                    .c_str(),
                later_backward);
  }

  std::printf(
      "\nPaper Table II: 1st forward 12.1 + 800.0 = 812.1 us; 2nd forward "
      "6.6 + 230.0 = 236.6 us;\nbackward ~24.7 us; subsequent migrations "
      "match the 2nd.\n");
  return 0;
}
