// The §IV profiling workflow, end to end.
//
// Deliberately builds a program with a false-sharing bug: per-thread
// accumulator slots packed on one shared page, updated from every node.
// Step 1 runs it with fault tracing and prints the profiler report — the
// contended page tops the false-sharing list with the culprit site.
// Step 2 applies the §IV-B fix (page-aligned per-thread slots) and shows
// the faults collapse and virtual time improve.
//
//   $ ./profiling_tour [nodes]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/api.h"
#include "prof/analysis.h"

namespace {

struct Outcome {
  dex::VirtNs elapsed;
  std::size_t fault_events;
  std::vector<dex::prof::FaultEvent> trace;
};

Outcome run(int nodes, bool aligned) {
  dex::ClusterConfig cluster_config;
  cluster_config.num_nodes = nodes;
  dex::Cluster cluster(cluster_config);
  auto process = cluster.create_process(dex::ProcessOptions{});
  process->trace().enable();

  constexpr int kThreadsPerNode = 2;
  constexpr int kRounds = 400;
  const int nthreads = nodes * kThreadsPerNode;

  // The accumulators: packed (buggy) vs one page each (fixed).
  std::vector<dex::GAddr> slots;
  if (aligned) {
    for (int t = 0; t < nthreads; ++t) {
      slots.push_back(
          process->g_memalign(dex::kPageSize, 8, "accumulators"));
    }
  } else {
    const dex::GAddr base = process->g_malloc(
        8 * static_cast<std::size_t>(nthreads), "accumulators");
    for (int t = 0; t < nthreads; ++t) {
      slots.push_back(base + 8 * static_cast<std::uint64_t>(t));
    }
  }

  const dex::VirtNs t0 = dex::now();
  std::vector<dex::DexThread> workers;
  {
    dex::ScopedPacing pace(1.0);
    for (int tid = 0; tid < nthreads; ++tid) {
      workers.push_back(process->spawn([&, tid] {
        dex::migrate(tid / kThreadsPerNode);
        dex::ScopedSite site("tour:accumulate");
        for (int r = 0; r < kRounds; ++r) {
          process->atomic_fetch_add(slots[static_cast<std::size_t>(tid)],
                                    1);
          dex::compute(3000);
        }
        dex::migrate_back();
      }));
    }
    for (auto& worker : workers) worker.join();
  }

  Outcome outcome;
  outcome.elapsed = dex::now() - t0;
  outcome.trace = process->trace().snapshot();
  outcome.fault_events = outcome.trace.size();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 4;

  std::printf("== step 1: run the buggy version under the profiler ==\n");
  const Outcome buggy = run(nodes, /*aligned=*/false);
  dex::prof::TraceAnalysis analysis(buggy.trace);
  std::printf("%s\n", analysis.format_report(4).c_str());

  std::printf(
      "The false-sharing list points at the 'accumulators' page written "
      "from every node\nby tour:accumulate. Applying the SIV-B fix "
      "(posix_memalign one slot per page)...\n\n");

  std::printf("== step 2: the fixed version ==\n");
  const Outcome fixed = run(nodes, /*aligned=*/true);
  dex::prof::TraceAnalysis fixed_analysis(fixed.trace);
  std::printf("%s\n", fixed_analysis.format_report(4).c_str());

  std::printf("== result ==\n");
  std::printf("  buggy : %8.1f us, %zu traced faults\n",
              static_cast<double>(buggy.elapsed) / 1000.0,
              buggy.fault_events);
  std::printf("  fixed : %8.1f us, %zu traced faults (%.1fx faster)\n",
              static_cast<double>(fixed.elapsed) / 1000.0,
              fixed.fault_events,
              static_cast<double>(buggy.elapsed) /
                  static_cast<double>(fixed.elapsed));
  return fixed.elapsed < buggy.elapsed ? 0 : 1;
}
