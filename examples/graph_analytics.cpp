// Distributed graph analytics on DeX: degree statistics and a k-step
// neighborhood expansion over an R-MAT graph, written directly against the
// public API (the Polymer-style workload of the paper's evaluation).
//
// Shows the recommended structure for graph codes on DeX:
//   - read-only CSR arrays replicate across nodes on demand,
//   - every node works on a page-aligned vertex partition,
//   - per-thread results are staged locally and merged once.
//
//   $ ./graph_analytics [nodes] [rmat_scale]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rmat.h"
#include "core/api.h"

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint32_t rmat_scale =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 14;

  dex::RmatParams params;
  params.scale = rmat_scale;
  params.edge_factor = 8;
  const auto csr =
      dex::build_csr(std::uint32_t{1} << rmat_scale,
                     dex::generate_rmat(params), /*symmetrize=*/true);
  const std::uint32_t V = csr.num_vertices;

  dex::ClusterConfig cluster_config;
  cluster_config.num_nodes = nodes;
  dex::Cluster cluster(cluster_config);
  auto process = cluster.create_process(dex::ProcessOptions{});

  // Load the CSR into distributed memory (read-only afterwards).
  dex::GArray<std::uint64_t> offsets(*process, csr.offsets.size(),
                                     "graph:offsets");
  offsets.write_block(0, csr.offsets.size(), csr.offsets.data());
  dex::GArray<std::uint32_t> targets(*process, csr.targets.size(),
                                     "graph:targets");
  targets.write_block(0, csr.targets.size(), csr.targets.data());

  // Output: per-bucket degree histogram + reachable count from vertex 0.
  constexpr int kBuckets = 16;
  std::vector<dex::GCounter> histogram;
  for (int b = 0; b < kBuckets; ++b) {
    histogram.emplace_back(*process, "histogram");
  }

  constexpr int kThreadsPerNode = 4;
  const int nthreads = nodes * kThreadsPerNode;
  // Page-aligned vertex partition (the §IV-B recipe).
  constexpr std::uint32_t kPerPage = dex::kPageSize / sizeof(std::uint64_t);
  std::uint32_t chunk = (V + static_cast<std::uint32_t>(nthreads) - 1) /
                        static_cast<std::uint32_t>(nthreads);
  chunk = (chunk + kPerPage - 1) / kPerPage * kPerPage;

  std::vector<dex::DexThread> workers;
  for (int tid = 0; tid < nthreads; ++tid) {
    workers.push_back(process->spawn([&, tid, chunk] {
      dex::migrate(tid / kThreadsPerNode);
      const std::uint32_t lo =
          std::min(V, chunk * static_cast<std::uint32_t>(tid));
      const std::uint32_t hi = std::min(V, lo + chunk);

      std::vector<std::uint64_t> offs(hi > lo ? hi - lo + 1 : 0);
      if (!offs.empty()) offsets.read_block(lo, offs.size(), offs.data());

      std::uint64_t local[kBuckets] = {};
      for (std::uint32_t v = lo; v < hi; ++v) {
        const std::uint64_t degree = offs[v - lo + 1] - offs[v - lo];
        int bucket = 0;
        while ((std::uint64_t{1} << (bucket + 1)) <= degree &&
               bucket < kBuckets - 1) {
          ++bucket;
        }
        ++local[bucket];
        dex::compute(12);
      }
      // Staged merge: one shared update per bucket per thread.
      for (int b = 0; b < kBuckets; ++b) {
        if (local[b] != 0) {
          histogram[static_cast<std::size_t>(b)].fetch_add(local[b]);
        }
      }
      dex::migrate_back();
    }));
  }
  for (auto& worker : workers) worker.join();

  std::printf("degree histogram of R-MAT scale %u (%u vertices, %llu "
              "edges) over %d nodes:\n",
              rmat_scale, V,
              static_cast<unsigned long long>(csr.num_edges()), nodes);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const auto count = histogram[static_cast<std::size_t>(b)].load();
    seen += count;
    if (count == 0) continue;
    std::printf("  deg in [%6llu, %6llu): %8llu  ",
                static_cast<unsigned long long>(b == 0 ? 0 : 1ULL << b),
                static_cast<unsigned long long>(1ULL << (b + 1)),
                static_cast<unsigned long long>(count));
    const int bar = static_cast<int>(
        50.0 * static_cast<double>(count) / static_cast<double>(V));
    for (int i = 0; i < bar; ++i) std::putchar('*');
    std::putchar('\n');
  }
  std::printf("vertices binned: %llu / %u (%s)\n",
              static_cast<unsigned long long>(seen), V,
              seen == V ? "correct" : "WRONG");
  std::printf("virtual time %.1f us, %llu protocol faults\n",
              static_cast<double>(dex::now()) / 1000.0,
              static_cast<unsigned long long>(
                  process->dsm().stats().total_faults()));
  return seen == V ? 0 : 1;
}
