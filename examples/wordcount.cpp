// Word-frequency counting across the cluster — the GRP-style workload the
// paper's intro motivates, written against the public API, demonstrating
// the §IV optimization recipes in one file:
//
//   --naive     : thread args packed on one page + a shared counter page
//                 updated on every hit (false sharing, watch the stats)
//   --optimized : page-aligned args (posix_memalign-style) + locally
//                 staged counts flushed once per thread
//
//   $ ./wordcount [nodes] [--naive|--optimized]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/textgen.h"
#include "core/api.h"

namespace {
struct WorkerArgs {
  std::uint64_t start;
  std::uint64_t length;
};
}  // namespace

int main(int argc, char** argv) {
  int nodes = 4;
  bool optimized = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--naive") == 0) optimized = false;
    else if (std::strcmp(argv[i], "--optimized") == 0) optimized = true;
    else nodes = std::atoi(argv[i]);
  }

  // Deterministic text with planted keys (stands in for the paper's 8 GB
  // of Wikipedia).
  dex::TextGenParams params;
  params.bytes = 8 << 20;
  const dex::GeneratedText text = dex::generate_text(params);
  const int nkeys = static_cast<int>(params.keys.size());

  dex::ClusterConfig cluster_config;
  cluster_config.num_nodes = nodes;
  dex::Cluster cluster(cluster_config);
  auto process = cluster.create_process(dex::ProcessOptions{});

  dex::GArray<char> gtext(*process, params.bytes, "text");
  gtext.write_block(0, params.bytes, text.data.data());

  // The shared counters: one heap page, as globals would land.
  std::vector<dex::GCounter> counts;
  for (int k = 0; k < nkeys; ++k) counts.emplace_back(*process, "counts");

  constexpr int kThreadsPerNode = 4;
  const int nthreads = nodes * kThreadsPerNode;

  // Argument placement: the naive port packs them on one page; the
  // optimized port gives each thread its own page (posix_memalign).
  std::vector<dex::GAddr> arg_slots;
  if (optimized) {
    for (int t = 0; t < nthreads; ++t) {
      arg_slots.push_back(
          process->g_memalign(dex::kPageSize, sizeof(WorkerArgs), "args"));
    }
  } else {
    const dex::GAddr base = process->g_malloc(
        sizeof(WorkerArgs) * static_cast<std::size_t>(nthreads), "args");
    for (int t = 0; t < nthreads; ++t) {
      arg_slots.push_back(base + sizeof(WorkerArgs) *
                                     static_cast<std::uint64_t>(t));
    }
  }
  const std::uint64_t chunk = params.bytes / static_cast<std::uint64_t>(
                                                 nthreads);
  for (int t = 0; t < nthreads; ++t) {
    WorkerArgs a{chunk * static_cast<std::uint64_t>(t),
                 t == nthreads - 1 ? params.bytes - chunk * static_cast<
                                         std::uint64_t>(t)
                                   : chunk};
    process->store(arg_slots[static_cast<std::size_t>(t)], a);
  }

  std::vector<dex::DexThread> workers;
  for (int tid = 0; tid < nthreads; ++tid) {
    workers.push_back(process->spawn([&, tid] {
      dex::migrate(tid / kThreadsPerNode);
      const auto args = process->load<WorkerArgs>(
          arg_slots[static_cast<std::size_t>(tid)]);

      std::vector<char> buf(64 * 1024 + 16);
      std::vector<std::uint64_t> local(static_cast<std::size_t>(nkeys), 0);
      std::uint64_t pos = args.start;
      const std::uint64_t end = args.start + args.length;
      while (pos < end) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(64 * 1024, end - pos));
        const std::size_t have = static_cast<std::size_t>(
            std::min<std::uint64_t>(want + 15, params.bytes - pos));
        gtext.read_block(pos, have, buf.data());
        dex::compute(have * 4);
        for (int k = 0; k < nkeys; ++k) {
          const std::string& key = params.keys[static_cast<std::size_t>(k)];
          const std::size_t scan_end =
              have >= key.size()
                  ? std::min(have - key.size() + 1, want)
                  : 0;
          for (std::size_t i = 0; i < scan_end; ++i) {
            if (std::memcmp(buf.data() + i, key.data(), key.size()) == 0) {
              if (optimized) {
                ++local[static_cast<std::size_t>(k)];
              } else {
                counts[static_cast<std::size_t>(k)].fetch_add(1);
              }
            }
          }
        }
        pos += want;
      }
      if (optimized) {
        for (int k = 0; k < nkeys; ++k) {
          if (local[static_cast<std::size_t>(k)]) {
            counts[static_cast<std::size_t>(k)].fetch_add(
                local[static_cast<std::size_t>(k)]);
          }
        }
      }
      dex::migrate_back();
    }));
  }
  for (auto& worker : workers) worker.join();

  bool ok = true;
  for (int k = 0; k < nkeys; ++k) {
    const auto got = counts[static_cast<std::size_t>(k)].load();
    std::printf("%-12s %8llu (expected %llu)\n",
                params.keys[static_cast<std::size_t>(k)].c_str(),
                static_cast<unsigned long long>(got),
                static_cast<unsigned long long>(
                    text.key_counts[static_cast<std::size_t>(k)]));
    ok &= got == text.key_counts[static_cast<std::size_t>(k)];
  }
  const auto& stats = process->dsm().stats();
  std::printf("\n%s mode on %d nodes: %.1f us virtual, %llu faults, "
              "%llu invalidations\n",
              optimized ? "optimized" : "naive", nodes,
              static_cast<double>(dex::now()) / 1000.0,
              static_cast<unsigned long long>(stats.total_faults()),
              static_cast<unsigned long long>(stats.invalidations.load()));
  return ok ? 0 : 1;
}
