// Chaos demo: the quickstart workload on an unreliable rack.
//
// The fabric drops 2% of wire traversals (retried transparently with
// timeout + exponential backoff), and node 2 is failed mid-run: the
// threads parked there unwind with a typed NodeDeadError, the origin
// reclaims the pages the node held (dirty copies are lost and counted),
// and the survivors still finish with exact results. Deterministic under
// the seed: the same invocation always prints the same counters.
//
//   $ ./chaos_demo [seed]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/api.h"

int main(int argc, char** argv) {
  constexpr int kNodes = 4;
  constexpr int kThreads = 6;
  constexpr std::size_t kSlice = 4096;  // u64s per thread: 8 pages

  dex::ClusterConfig config;
  config.num_nodes = kNodes;
  config.faults.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 42;
  dex::net::FaultRule drops;
  drops.drop_prob = 0.02;  // 2% of wire traversals lost, all types/pairs
  config.faults.rules.push_back(drops);
  config.retry.max_attempts = 6;
  dex::Cluster cluster(config);
  auto process = cluster.create_process(dex::ProcessOptions{});

  dex::GArray<std::uint64_t> data(*process, kThreads * kSlice, "chaos:data");
  std::vector<std::atomic<bool>> parked(kThreads);
  std::atomic<bool> release{false};

  std::vector<dex::DexThread> workers;
  for (int tid = 0; tid < kThreads; ++tid) {
    workers.push_back(process->spawn([&, tid] {
      dex::migrate(1 + tid % (kNodes - 1));
      const std::size_t base = static_cast<std::size_t>(tid) * kSlice;
      for (std::size_t i = 0; i < kSlice / 2; ++i) {
        data.set(base + i, base + i + 1);
      }
      parked[static_cast<std::size_t>(tid)] = true;
      while (!release.load()) std::this_thread::yield();
      for (std::size_t i = kSlice / 2; i < kSlice; ++i) {
        data.set(base + i, base + i + 1);
      }
      dex::migrate_back();
    }));
  }
  for (auto& flag : parked) {
    while (!flag.load()) std::this_thread::yield();
  }

  std::printf("halfway there; failing node 2 under everyone...\n");
  cluster.fail_node(2);
  release = true;
  for (auto& worker : workers) worker.join();

  int lost = 0, exact = 0;
  for (int tid = 0; tid < kThreads; ++tid) {
    if (workers[static_cast<std::size_t>(tid)].failed()) {
      ++lost;
      continue;
    }
    const std::size_t base = static_cast<std::size_t>(tid) * kSlice;
    bool ok = true;
    for (std::size_t i = 0; i < kSlice; ++i) {
      if (data.get(base + i) != base + i + 1) ok = false;
    }
    if (ok) ++exact;
  }
  cluster.heal_node(2);

  const auto& failure = process->dsm().failure_stats();
  std::printf("threads lost with node 2: %d; survivors exact: %d/%d\n",
              lost, exact, kThreads - lost);
  std::printf("pages reclaimed: %llu (dirty lost: %llu)\n",
              static_cast<unsigned long long>(failure.pages_reclaimed.load()),
              static_cast<unsigned long long>(
                  failure.dirty_pages_lost.load()));
  std::printf("wire drops: %llu; rpc retries: %llu; dedup suppressed: %llu\n",
              static_cast<unsigned long long>(
                  cluster.fabric().injector().drops()),
              static_cast<unsigned long long>(cluster.fabric().rpc_retries()),
              static_cast<unsigned long long>(
                  cluster.fabric().dedup_suppressed()));
  std::printf("%s\n", dex::prof::ChaosCounters::instance().report().c_str());

  const bool pass = lost == 2 && exact == kThreads - lost &&
                    process->dsm().check_invariants();
  std::printf("%s\n", pass ? "degraded gracefully" : "WRONG");
  return pass ? 0 : 1;
}
