// Quickstart: the two-line DeX conversion.
//
// A single-machine program sums an array with worker threads. Converting
// it to span the cluster is the paper's recipe: add dex::migrate(node) at
// the start of each worker and dex::migrate_back() at the end. Memory,
// atomics and synchronization work unchanged across nodes.
//
//   $ ./quickstart [nodes] [threads_per_node]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/api.h"

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 4;
  const int threads_per_node = argc > 2 ? std::atoi(argv[2]) : 4;

  // A rack of `nodes` machines connected by the simulated InfiniBand
  // fabric, and one process whose origin is node 0.
  dex::ClusterConfig cluster_config;
  cluster_config.num_nodes = nodes;
  dex::Cluster cluster(cluster_config);
  auto process = cluster.create_process(dex::ProcessOptions{});

  // Ordinary-looking shared memory: one big array + one shared counter.
  constexpr std::size_t kElems = 1 << 18;
  dex::GArray<std::uint64_t> data(*process, kElems, "quickstart:data");
  for (std::size_t i = 0; i < kElems; ++i) data.set(i, i);
  dex::GCounter total(*process, "quickstart:total");

  const int nthreads = nodes * threads_per_node;
  const std::size_t chunk = kElems / static_cast<std::size_t>(nthreads);

  std::vector<dex::DexThread> workers;
  for (int tid = 0; tid < nthreads; ++tid) {
    workers.push_back(process->spawn([&, tid] {
      dex::migrate(tid / threads_per_node);  // <-- the conversion, line 1

      std::uint64_t sum = 0;
      std::vector<std::uint64_t> buf(4096);
      const std::size_t lo = chunk * static_cast<std::size_t>(tid);
      const std::size_t hi =
          tid == nthreads - 1 ? kElems : lo + chunk;
      for (std::size_t i = lo; i < hi; i += buf.size()) {
        const std::size_t n = std::min(buf.size(), hi - i);
        data.read_block(i, n, buf.data());
        for (std::size_t k = 0; k < n; ++k) sum += buf[k];
        dex::compute(n * 2);  // model 2 ns/element of real work
      }
      total.fetch_add(sum);

      dex::migrate_back();  // <-- the conversion, line 2
    }));
  }
  for (auto& worker : workers) worker.join();

  const std::uint64_t expect = kElems * (kElems - 1) / 2;
  std::printf("sum over %d node(s) x %d threads = %llu (%s)\n", nodes,
              threads_per_node,
              static_cast<unsigned long long>(total.load()),
              total.load() == expect ? "correct" : "WRONG");
  std::printf("virtual time: %.1f us; protocol faults: %llu; messages: %llu\n",
              static_cast<double>(dex::now()) / 1000.0,
              static_cast<unsigned long long>(
                  process->dsm().stats().total_faults()),
              static_cast<unsigned long long>(
                  cluster.fabric().total_messages()));
  return total.load() == expect ? 0 : 1;
}
