
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cc" "tests/CMakeFiles/dex_tests.dir/test_apps.cc.o" "gcc" "tests/CMakeFiles/dex_tests.dir/test_apps.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/dex_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/dex_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_dsm_protocol.cc" "tests/CMakeFiles/dex_tests.dir/test_dsm_protocol.cc.o" "gcc" "tests/CMakeFiles/dex_tests.dir/test_dsm_protocol.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/dex_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/dex_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_fault_table.cc" "tests/CMakeFiles/dex_tests.dir/test_fault_table.cc.o" "gcc" "tests/CMakeFiles/dex_tests.dir/test_fault_table.cc.o.d"
  "/root/repo/tests/test_migration.cc" "tests/CMakeFiles/dex_tests.dir/test_migration.cc.o" "gcc" "tests/CMakeFiles/dex_tests.dir/test_migration.cc.o.d"
  "/root/repo/tests/test_net.cc" "tests/CMakeFiles/dex_tests.dir/test_net.cc.o" "gcc" "tests/CMakeFiles/dex_tests.dir/test_net.cc.o.d"
  "/root/repo/tests/test_prof.cc" "tests/CMakeFiles/dex_tests.dir/test_prof.cc.o" "gcc" "tests/CMakeFiles/dex_tests.dir/test_prof.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/dex_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/dex_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_sync.cc" "tests/CMakeFiles/dex_tests.dir/test_sync.cc.o" "gcc" "tests/CMakeFiles/dex_tests.dir/test_sync.cc.o.d"
  "/root/repo/tests/test_team.cc" "tests/CMakeFiles/dex_tests.dir/test_team.cc.o" "gcc" "tests/CMakeFiles/dex_tests.dir/test_team.cc.o.d"
  "/root/repo/tests/test_time_gate.cc" "tests/CMakeFiles/dex_tests.dir/test_time_gate.cc.o" "gcc" "tests/CMakeFiles/dex_tests.dir/test_time_gate.cc.o.d"
  "/root/repo/tests/test_vma.cc" "tests/CMakeFiles/dex_tests.dir/test_vma.cc.o" "gcc" "tests/CMakeFiles/dex_tests.dir/test_vma.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/dex_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dex_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dex_net.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/dex_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
