file(REMOVE_RECURSE
  "CMakeFiles/dex_tests.dir/test_apps.cc.o"
  "CMakeFiles/dex_tests.dir/test_apps.cc.o.d"
  "CMakeFiles/dex_tests.dir/test_common.cc.o"
  "CMakeFiles/dex_tests.dir/test_common.cc.o.d"
  "CMakeFiles/dex_tests.dir/test_dsm_protocol.cc.o"
  "CMakeFiles/dex_tests.dir/test_dsm_protocol.cc.o.d"
  "CMakeFiles/dex_tests.dir/test_extensions.cc.o"
  "CMakeFiles/dex_tests.dir/test_extensions.cc.o.d"
  "CMakeFiles/dex_tests.dir/test_fault_table.cc.o"
  "CMakeFiles/dex_tests.dir/test_fault_table.cc.o.d"
  "CMakeFiles/dex_tests.dir/test_migration.cc.o"
  "CMakeFiles/dex_tests.dir/test_migration.cc.o.d"
  "CMakeFiles/dex_tests.dir/test_net.cc.o"
  "CMakeFiles/dex_tests.dir/test_net.cc.o.d"
  "CMakeFiles/dex_tests.dir/test_prof.cc.o"
  "CMakeFiles/dex_tests.dir/test_prof.cc.o.d"
  "CMakeFiles/dex_tests.dir/test_properties.cc.o"
  "CMakeFiles/dex_tests.dir/test_properties.cc.o.d"
  "CMakeFiles/dex_tests.dir/test_sync.cc.o"
  "CMakeFiles/dex_tests.dir/test_sync.cc.o.d"
  "CMakeFiles/dex_tests.dir/test_team.cc.o"
  "CMakeFiles/dex_tests.dir/test_team.cc.o.d"
  "CMakeFiles/dex_tests.dir/test_time_gate.cc.o"
  "CMakeFiles/dex_tests.dir/test_time_gate.cc.o.d"
  "CMakeFiles/dex_tests.dir/test_vma.cc.o"
  "CMakeFiles/dex_tests.dir/test_vma.cc.o.d"
  "dex_tests"
  "dex_tests.pdb"
  "dex_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
