# Empty dependencies file for bench_pagefault.
# This may be replaced when dependencies are built.
