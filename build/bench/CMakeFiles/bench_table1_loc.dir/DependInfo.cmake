
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_loc.cc" "bench/CMakeFiles/bench_table1_loc.dir/bench_table1_loc.cc.o" "gcc" "bench/CMakeFiles/bench_table1_loc.dir/bench_table1_loc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/dex_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dex_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dex_net.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/dex_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
