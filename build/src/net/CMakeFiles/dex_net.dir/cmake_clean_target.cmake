file(REMOVE_RECURSE
  "libdex_net.a"
)
