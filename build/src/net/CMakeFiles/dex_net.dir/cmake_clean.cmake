file(REMOVE_RECURSE
  "CMakeFiles/dex_net.dir/buffer_pool.cc.o"
  "CMakeFiles/dex_net.dir/buffer_pool.cc.o.d"
  "CMakeFiles/dex_net.dir/fabric.cc.o"
  "CMakeFiles/dex_net.dir/fabric.cc.o.d"
  "CMakeFiles/dex_net.dir/rdma_sink.cc.o"
  "CMakeFiles/dex_net.dir/rdma_sink.cc.o.d"
  "libdex_net.a"
  "libdex_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
