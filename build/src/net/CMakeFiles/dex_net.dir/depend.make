# Empty dependencies file for dex_net.
# This may be replaced when dependencies are built.
