file(REMOVE_RECURSE
  "libdex_apps.a"
)
