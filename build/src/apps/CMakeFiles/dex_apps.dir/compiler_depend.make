# Empty compiler generated dependencies file for dex_apps.
# This may be replaced when dependencies are built.
