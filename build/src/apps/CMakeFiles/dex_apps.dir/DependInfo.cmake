
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app.cc" "src/apps/CMakeFiles/dex_apps.dir/app.cc.o" "gcc" "src/apps/CMakeFiles/dex_apps.dir/app.cc.o.d"
  "/root/repo/src/apps/bfs.cc" "src/apps/CMakeFiles/dex_apps.dir/bfs.cc.o" "gcc" "src/apps/CMakeFiles/dex_apps.dir/bfs.cc.o.d"
  "/root/repo/src/apps/blk.cc" "src/apps/CMakeFiles/dex_apps.dir/blk.cc.o" "gcc" "src/apps/CMakeFiles/dex_apps.dir/blk.cc.o.d"
  "/root/repo/src/apps/bp.cc" "src/apps/CMakeFiles/dex_apps.dir/bp.cc.o" "gcc" "src/apps/CMakeFiles/dex_apps.dir/bp.cc.o.d"
  "/root/repo/src/apps/bt.cc" "src/apps/CMakeFiles/dex_apps.dir/bt.cc.o" "gcc" "src/apps/CMakeFiles/dex_apps.dir/bt.cc.o.d"
  "/root/repo/src/apps/ep.cc" "src/apps/CMakeFiles/dex_apps.dir/ep.cc.o" "gcc" "src/apps/CMakeFiles/dex_apps.dir/ep.cc.o.d"
  "/root/repo/src/apps/ft.cc" "src/apps/CMakeFiles/dex_apps.dir/ft.cc.o" "gcc" "src/apps/CMakeFiles/dex_apps.dir/ft.cc.o.d"
  "/root/repo/src/apps/grp.cc" "src/apps/CMakeFiles/dex_apps.dir/grp.cc.o" "gcc" "src/apps/CMakeFiles/dex_apps.dir/grp.cc.o.d"
  "/root/repo/src/apps/kmn.cc" "src/apps/CMakeFiles/dex_apps.dir/kmn.cc.o" "gcc" "src/apps/CMakeFiles/dex_apps.dir/kmn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dex_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dex_net.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/dex_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
