file(REMOVE_RECURSE
  "CMakeFiles/dex_apps.dir/app.cc.o"
  "CMakeFiles/dex_apps.dir/app.cc.o.d"
  "CMakeFiles/dex_apps.dir/bfs.cc.o"
  "CMakeFiles/dex_apps.dir/bfs.cc.o.d"
  "CMakeFiles/dex_apps.dir/blk.cc.o"
  "CMakeFiles/dex_apps.dir/blk.cc.o.d"
  "CMakeFiles/dex_apps.dir/bp.cc.o"
  "CMakeFiles/dex_apps.dir/bp.cc.o.d"
  "CMakeFiles/dex_apps.dir/bt.cc.o"
  "CMakeFiles/dex_apps.dir/bt.cc.o.d"
  "CMakeFiles/dex_apps.dir/ep.cc.o"
  "CMakeFiles/dex_apps.dir/ep.cc.o.d"
  "CMakeFiles/dex_apps.dir/ft.cc.o"
  "CMakeFiles/dex_apps.dir/ft.cc.o.d"
  "CMakeFiles/dex_apps.dir/grp.cc.o"
  "CMakeFiles/dex_apps.dir/grp.cc.o.d"
  "CMakeFiles/dex_apps.dir/kmn.cc.o"
  "CMakeFiles/dex_apps.dir/kmn.cc.o.d"
  "libdex_apps.a"
  "libdex_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
