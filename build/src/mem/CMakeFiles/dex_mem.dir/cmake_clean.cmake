file(REMOVE_RECURSE
  "CMakeFiles/dex_mem.dir/dsm.cc.o"
  "CMakeFiles/dex_mem.dir/dsm.cc.o.d"
  "CMakeFiles/dex_mem.dir/vma.cc.o"
  "CMakeFiles/dex_mem.dir/vma.cc.o.d"
  "libdex_mem.a"
  "libdex_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
