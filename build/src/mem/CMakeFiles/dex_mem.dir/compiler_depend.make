# Empty compiler generated dependencies file for dex_mem.
# This may be replaced when dependencies are built.
