file(REMOVE_RECURSE
  "libdex_mem.a"
)
