
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/dsm.cc" "src/mem/CMakeFiles/dex_mem.dir/dsm.cc.o" "gcc" "src/mem/CMakeFiles/dex_mem.dir/dsm.cc.o.d"
  "/root/repo/src/mem/vma.cc" "src/mem/CMakeFiles/dex_mem.dir/vma.cc.o" "gcc" "src/mem/CMakeFiles/dex_mem.dir/vma.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dex_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dex_net.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/dex_prof.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
