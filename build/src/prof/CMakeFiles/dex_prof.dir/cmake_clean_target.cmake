file(REMOVE_RECURSE
  "libdex_prof.a"
)
