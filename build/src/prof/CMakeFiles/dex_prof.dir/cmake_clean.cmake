file(REMOVE_RECURSE
  "CMakeFiles/dex_prof.dir/analysis.cc.o"
  "CMakeFiles/dex_prof.dir/analysis.cc.o.d"
  "CMakeFiles/dex_prof.dir/trace.cc.o"
  "CMakeFiles/dex_prof.dir/trace.cc.o.d"
  "libdex_prof.a"
  "libdex_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
