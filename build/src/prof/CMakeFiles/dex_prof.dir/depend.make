# Empty dependencies file for dex_prof.
# This may be replaced when dependencies are built.
