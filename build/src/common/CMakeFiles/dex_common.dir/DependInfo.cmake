
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/rmat.cc" "src/common/CMakeFiles/dex_common.dir/rmat.cc.o" "gcc" "src/common/CMakeFiles/dex_common.dir/rmat.cc.o.d"
  "/root/repo/src/common/textgen.cc" "src/common/CMakeFiles/dex_common.dir/textgen.cc.o" "gcc" "src/common/CMakeFiles/dex_common.dir/textgen.cc.o.d"
  "/root/repo/src/common/time_gate.cc" "src/common/CMakeFiles/dex_common.dir/time_gate.cc.o" "gcc" "src/common/CMakeFiles/dex_common.dir/time_gate.cc.o.d"
  "/root/repo/src/common/virtual_clock.cc" "src/common/CMakeFiles/dex_common.dir/virtual_clock.cc.o" "gcc" "src/common/CMakeFiles/dex_common.dir/virtual_clock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
