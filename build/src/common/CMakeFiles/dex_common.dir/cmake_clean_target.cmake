file(REMOVE_RECURSE
  "libdex_common.a"
)
