# Empty compiler generated dependencies file for dex_common.
# This may be replaced when dependencies are built.
