file(REMOVE_RECURSE
  "CMakeFiles/dex_common.dir/rmat.cc.o"
  "CMakeFiles/dex_common.dir/rmat.cc.o.d"
  "CMakeFiles/dex_common.dir/textgen.cc.o"
  "CMakeFiles/dex_common.dir/textgen.cc.o.d"
  "CMakeFiles/dex_common.dir/time_gate.cc.o"
  "CMakeFiles/dex_common.dir/time_gate.cc.o.d"
  "CMakeFiles/dex_common.dir/virtual_clock.cc.o"
  "CMakeFiles/dex_common.dir/virtual_clock.cc.o.d"
  "libdex_common.a"
  "libdex_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
