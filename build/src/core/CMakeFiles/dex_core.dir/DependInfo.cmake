
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/dex_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/context.cc" "src/core/CMakeFiles/dex_core.dir/context.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/context.cc.o.d"
  "/root/repo/src/core/futex.cc" "src/core/CMakeFiles/dex_core.dir/futex.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/futex.cc.o.d"
  "/root/repo/src/core/parallel.cc" "src/core/CMakeFiles/dex_core.dir/parallel.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/parallel.cc.o.d"
  "/root/repo/src/core/process.cc" "src/core/CMakeFiles/dex_core.dir/process.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/process.cc.o.d"
  "/root/repo/src/core/sync.cc" "src/core/CMakeFiles/dex_core.dir/sync.cc.o" "gcc" "src/core/CMakeFiles/dex_core.dir/sync.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dex_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dex_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dex_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/dex_prof.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
