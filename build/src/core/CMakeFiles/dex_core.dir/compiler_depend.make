# Empty compiler generated dependencies file for dex_core.
# This may be replaced when dependencies are built.
