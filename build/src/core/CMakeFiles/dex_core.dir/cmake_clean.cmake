file(REMOVE_RECURSE
  "CMakeFiles/dex_core.dir/cluster.cc.o"
  "CMakeFiles/dex_core.dir/cluster.cc.o.d"
  "CMakeFiles/dex_core.dir/context.cc.o"
  "CMakeFiles/dex_core.dir/context.cc.o.d"
  "CMakeFiles/dex_core.dir/futex.cc.o"
  "CMakeFiles/dex_core.dir/futex.cc.o.d"
  "CMakeFiles/dex_core.dir/parallel.cc.o"
  "CMakeFiles/dex_core.dir/parallel.cc.o.d"
  "CMakeFiles/dex_core.dir/process.cc.o"
  "CMakeFiles/dex_core.dir/process.cc.o.d"
  "CMakeFiles/dex_core.dir/sync.cc.o"
  "CMakeFiles/dex_core.dir/sync.cc.o.d"
  "libdex_core.a"
  "libdex_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
