file(REMOVE_RECURSE
  "libdex_core.a"
)
