// Page-fault tracing (§IV-A).
//
// The paper's profiling tool records a tuple for every fault the memory
// consistency protocol handles: system time, node, task, fault type, the
// faulting instruction address, the faulting memory address, and a
// user-specified identifier. Our userspace analogue of the instruction
// address is a *site*: application code brackets phases/loops with
// ScopedSite("kmn:assign_loop"), standing in for what the paper recovers
// from the binary's debug info. The VMA tag plays the user identifier role.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace dex::prof {

enum class FaultKind : std::uint8_t {
  kRead = 0,
  kWrite = 1,
  kInvalidate = 2,  // ownership revoked from this node
  kRetry = 3,       // lost a race on a busy directory entry
  kReclaim = 4,     // origin reclaimed the page from a dead node
  kNodeDead = 5,    // thread observed a NodeDeadError and was lost
  kPrefetch = 6,    // page installed ahead of demand by the stride prefetcher
  kForward = 7,     // grant forwarded owner->requester past the origin
  kHomeMigrate = 8, // directory entry handed off to the dominant faulter
  kLease = 9,       // writeback-lease event: renewal, patrol recall, recovery
  kEvict = 10,      // copy retired under frame-budget pressure
  kThreadMigrate = 11,  // placement advisor moved the thread to its data
  kFailover = 12,       // origin died; the deputy promoted and rebuilt
};

const char* to_string(FaultKind kind);

/// The six-tuple (plus tag) of §IV-A.
struct FaultEvent {
  VirtNs time = 0;
  NodeId node = kInvalidNode;
  TaskId task = -1;
  FaultKind kind = FaultKind::kRead;
  std::uint32_t site = 0;  // see SiteRegistry
  GAddr addr = 0;
  char tag[24] = {};

  void set_tag(const std::string& t) {
    std::strncpy(tag, t.c_str(), sizeof(tag) - 1);
  }
};

/// Interns human-readable site names to dense ids. Process-wide.
class SiteRegistry {
 public:
  static SiteRegistry& instance();
  std::uint32_t intern(const std::string& name);
  std::string name(std::uint32_t id) const;

 private:
  mutable std::mutex mu_;
  std::vector<std::string> names_{"<unknown>"};
};

/// Thread-local current site, set by application code via ScopedSite.
std::uint32_t current_site();
void set_current_site(std::uint32_t site);

/// Process-wide counters for the chaos/robustness machinery: what the fault
/// injector did to the wire, how the fabric's retry path reacted, and what
/// node-failure recovery cost. Mirrors per-object stats (FaultInjector,
/// Fabric, mem::FailureStats) into one observable place, like the fault
/// trace mirrors per-fault events. Tests reset() between runs.
struct ChaosCounters {
  std::atomic<std::uint64_t> messages_dropped{0};
  std::atomic<std::uint64_t> messages_duplicated{0};
  std::atomic<std::uint64_t> messages_delayed{0};
  std::atomic<std::uint64_t> rpc_timeouts{0};
  std::atomic<std::uint64_t> rpc_retries{0};
  std::atomic<std::uint64_t> dedup_suppressed{0};
  std::atomic<std::uint64_t> node_failures{0};
  std::atomic<std::uint64_t> pages_reclaimed{0};
  std::atomic<std::uint64_t> dirty_pages_lost{0};
  std::atomic<std::uint64_t> threads_lost{0};
  // --- Self-healing layer ---
  /// Heartbeat datagrams scored by the accrual detector.
  std::atomic<std::uint64_t> heartbeats{0};
  /// alive -> suspect transitions at the membership coordinator.
  std::atomic<std::uint64_t> nodes_suspected{0};
  /// suspect -> dead declarations (each bumps the membership epoch).
  std::atomic<std::uint64_t> nodes_declared_dead{0};
  /// Exclusive-grant lease renewals (each piggybacks a writeback).
  std::atomic<std::uint64_t> lease_renewals{0};
  std::atomic<std::uint64_t> writebacks_piggybacked{0};
  /// Dirty pages whose journaled home copy made the loss a non-event.
  std::atomic<std::uint64_t> pages_recovered{0};
  /// Threads lost to node death and re-spawned at the origin.
  std::atomic<std::uint64_t> threads_restarted{0};
  /// Origin deaths survived by deputy promotion (DsmConfig::origin_failover).
  std::atomic<std::uint64_t> origin_failovers{0};

  static ChaosCounters& instance();
  void reset();
  /// One-line human-readable summary for logs and the chaos soak report.
  std::string report() const;
};

class ScopedSite {
 public:
  explicit ScopedSite(const std::string& name)
      : previous_(current_site()) {
    set_current_site(SiteRegistry::instance().intern(name));
  }
  ~ScopedSite() { set_current_site(previous_); }
  ScopedSite(const ScopedSite&) = delete;
  ScopedSite& operator=(const ScopedSite&) = delete;

 private:
  std::uint32_t previous_;
};

/// Per-process fault trace sink. Disabled by default (zero overhead beyond
/// one relaxed atomic load per fault, mirroring the ftrace toggle).
class FaultTrace {
 public:
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void record(const FaultEvent& event) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
  }

  std::vector<FaultEvent> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
  }

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<FaultEvent> events_;
};

}  // namespace dex::prof
