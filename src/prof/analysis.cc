#include "prof/analysis.h"

#include <algorithm>
#include <sstream>

namespace dex::prof {

TraceAnalysis::TraceAnalysis(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  for (const FaultEvent& e : events_) {
    const GAddr page = page_base(e.addr);
    PageReport& pr = pages_[page];
    pr.page = page;
    if (pr.tag.empty() && e.tag[0] != '\0') pr.tag = e.tag;
    SiteReport& sr = sites_[e.site];
    sr.site = e.site;
    if (sr.name.empty()) sr.name = SiteRegistry::instance().name(e.site);

    switch (e.kind) {
      case FaultKind::kRead:
        ++pr.reads;
        ++sr.reads;
        break;
      case FaultKind::kWrite:
        ++pr.writes;
        ++sr.writes;
        break;
      case FaultKind::kInvalidate:
        ++pr.invalidations;
        ++sr.invalidations;
        break;
      case FaultKind::kRetry:
        ++pr.retries;
        ++sr.retries;
        ++retries_;
        break;
      case FaultKind::kReclaim:
      case FaultKind::kNodeDead:
        ++pr.failures;
        ++sr.failures;
        break;
      case FaultKind::kPrefetch:
        // Pages installed ahead of demand: not demand faults, so excluded
        // from total(), but tracked so hot-page reports show coverage.
        ++pr.prefetches;
        ++sr.prefetches;
        break;
      case FaultKind::kForward:
        // The resolving read/write fault is recorded separately; this tag
        // marks that its grant skipped the origin hop.
        ++pr.forwards;
        ++sr.forwards;
        break;
      case FaultKind::kHomeMigrate:
        // The triggering fault is recorded separately; this tag marks
        // that the directory entry moved to the dominant faulter.
        ++pr.home_migrations;
        ++sr.home_migrations;
        break;
      case FaultKind::kLease:
        // Writeback-lease traffic: renewals, patrol recalls and journal
        // recoveries. Not demand faults, so excluded from total().
        ++pr.leases;
        ++sr.leases;
        break;
      case FaultKind::kEvict:
        // Copies retired under frame-budget pressure; the re-fault (if
        // the page comes back) is recorded separately as a demand fault.
        ++pr.evictions;
        ++sr.evictions;
        break;
      case FaultKind::kThreadMigrate:
        // The placement advisor moved a thread to its fault mass. Not a
        // demand fault; the event's addr is unset (the move is per-thread,
        // not per-page), so it lands on the zero page's report.
        ++pr.thread_migrations;
        ++sr.thread_migrations;
        break;
      case FaultKind::kFailover:
        // The origin died and its deputy promoted; accounted with the
        // other failure events (the event's addr is unset — the promotion
        // is per-node, not per-page).
        ++pr.failures;
        ++sr.failures;
        break;
    }
    if (e.node != kInvalidNode) pr.nodes.insert(e.node);
    if (e.task >= 0) pr.tasks.insert(e.task);
    pr.sites.insert(e.site);
  }
}

std::vector<SiteReport> TraceAnalysis::top_sites(std::size_t limit) const {
  std::vector<SiteReport> out;
  out.reserve(sites_.size());
  for (const auto& [_, report] : sites_) out.push_back(report);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.total() > b.total();
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::vector<PageReport> TraceAnalysis::top_pages(std::size_t limit) const {
  std::vector<PageReport> out;
  out.reserve(pages_.size());
  for (const auto& [_, report] : pages_) out.push_back(report);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.total() > b.total();
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::vector<PageReport> TraceAnalysis::false_sharing_suspects(
    std::size_t limit) const {
  std::vector<PageReport> out;
  for (const auto& [_, report] : pages_) {
    if (report.conflicting()) out.push_back(report);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.total() > b.total();
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::vector<std::uint64_t> TraceAnalysis::time_series(
    VirtNs bucket_ns) const {
  std::vector<std::uint64_t> buckets;
  if (bucket_ns == 0) return buckets;
  for (const FaultEvent& e : events_) {
    const std::size_t idx = static_cast<std::size_t>(e.time / bucket_ns);
    if (idx >= buckets.size()) buckets.resize(idx + 1, 0);
    ++buckets[idx];
  }
  return buckets;
}

std::map<TaskId, std::uint64_t> TraceAnalysis::per_task() const {
  std::map<TaskId, std::uint64_t> out;
  for (const FaultEvent& e : events_) {
    if (e.task >= 0) ++out[e.task];
  }
  return out;
}

std::map<std::string, std::uint64_t> TraceAnalysis::per_tag() const {
  std::map<std::string, std::uint64_t> out;
  for (const FaultEvent& e : events_) {
    ++out[e.tag[0] != '\0' ? std::string(e.tag) : std::string("<untagged>")];
  }
  return out;
}

std::string TraceAnalysis::format_report(std::size_t limit) const {
  std::ostringstream os;
  os << "=== DeX page-fault profile: " << events_.size() << " events, "
     << retries_ << " retries ===\n";

  os << "\n-- hottest fault sites --\n";
  for (const SiteReport& s : top_sites(limit)) {
    os << "  " << s.name << ": " << s.total() << " faults (" << s.reads
       << "r/" << s.writes << "w/" << s.retries << " retry)\n";
  }

  os << "\n-- hottest pages --\n";
  for (const PageReport& p : top_pages(limit)) {
    os << "  0x" << std::hex << p.page << std::dec << " ["
       << (p.tag.empty() ? "?" : p.tag) << "]: " << p.total() << " faults, "
       << p.nodes.size() << " nodes, " << p.tasks.size() << " tasks"
       << (p.conflicting() ? "  ** CONTENDED **" : "") << "\n";
  }

  os << "\n-- false-sharing suspects --\n";
  for (const PageReport& p : false_sharing_suspects(limit)) {
    os << "  0x" << std::hex << p.page << std::dec << " ["
       << (p.tag.empty() ? "?" : p.tag) << "]: " << p.writes << " writes / "
       << p.reads << " reads from " << p.nodes.size() << " nodes; sites:";
    for (std::uint32_t site : p.sites) {
      os << " " << SiteRegistry::instance().name(site);
    }
    os << "\n";
  }

  os << "\n-- faults per object (VMA tag) --\n";
  for (const auto& [tag, count] : per_tag()) {
    os << "  " << tag << ": " << count << "\n";
  }

  if (have_counters_) {
    os << "\n-- protocol counters --\n";
    os << "  directory shard-lock collisions: "
       << counters_.dir_lock_contention << "\n";
    os << "  optimistic latching: " << counters_.latch_restarts
       << " restarts, " << counters_.latch_upgrades
       << " upgrades; fault-table collisions: "
       << counters_.fault_table_contention << "\n";
    os << "  home migrations: " << counters_.home_migrations
       << ", hint hits: " << counters_.home_hint_hits << "/"
       << counters_.remote_faults << " remote faults, chases: "
       << counters_.home_chases << "\n";
    os << "  fault distribution by serving home:";
    for (std::size_t n = 0; n < counters_.faults_by_home.size(); ++n) {
      if (counters_.faults_by_home[n] == 0) continue;
      os << " n" << n << "=" << counters_.faults_by_home[n];
    }
    os << "\n";
    if (counters_.placement_windows > 0 ||
        counters_.thread_migrations_auto > 0) {
      os << "  thread placement: " << counters_.thread_migrations_auto
         << " auto migrations over " << counters_.placement_windows
         << " windows; " << counters_.placement_vetoes << " load vetoes, "
         << counters_.placement_deferrals << " engine deferrals, "
         << counters_.placement_arbitrations
         << " ceded to home migration, "
         << counters_.placement_hints_warmed << " hints warmed\n";
    }
    os << "  writeback leases: " << counters_.lease_renewals
       << " renewals (" << counters_.writebacks_piggybacked
       << " piggybacked writebacks), " << counters_.lease_recalls
       << " patrol recalls\n";
    os << "  failure recovery: " << counters_.pages_recovered
       << " pages recovered from journal, " << counters_.dirty_pages_lost
       << " dirty pages lost, " << counters_.threads_restarted
       << " threads restarted\n";
    if (counters_.origin_failovers > 0 ||
        counters_.dir_mutations_replicated > 0) {
      os << "  origin failover: " << counters_.origin_failovers
         << " promotions; " << counters_.dir_mutations_replicated
         << " directory mutations replicated in "
         << counters_.replication_batches << " batches, "
         << counters_.replication_lag << " lagged\n";
      os << "  deputy rebuild: " << counters_.scavenge_pages_rebuilt
         << " pages scavenged from survivors, "
         << counters_.replica_journal_pages
         << " images restored from the replica journal\n";
    }
    if (counters_.frame_budget_bytes > 0) {
      os << "  frame budget: " << counters_.frame_budget_bytes
         << " B/node, peak " << counters_.frame_high_water_bytes << " B\n";
      os << "  evictions: " << counters_.evictions_shared << " shared, "
         << counters_.evictions_exclusive << " exclusive (written back), "
         << counters_.evictions_local << " local\n";
      os << "  cold tier: " << counters_.spills_out << " spills out, "
         << counters_.spills_in << " spills in\n";
      os << "  backpressure: " << counters_.backpressure_stalls
         << " stalls, " << counters_.backpressure_overshoots
         << " over-budget admissions\n";
      os << "  lease journal: " << counters_.journal_bytes
         << " B live, " << counters_.journal_gcs << " entries GCed\n";
    }
    if (counters_.engine_submitted > 0) {
      const double mean_depth =
          counters_.engine_depth_samples > 0
              ? static_cast<double>(counters_.engine_depth_sum) /
                    static_cast<double>(counters_.engine_depth_samples)
              : 0.0;
      os << "  async engine: " << counters_.engine_submitted
         << " transactions, " << counters_.async_completions
         << " completions, " << counters_.engine_resumes << " resumes, "
         << counters_.engine_pump_handoffs << " pump handoffs\n";
      os << "  engine depth: peak " << counters_.engine_depth_peak
         << ", mean " << mean_depth << "\n";
      os << "  doorbell batching: " << counters_.doorbell_batches
         << " batches carrying " << counters_.batched_posts << " posts";
      if (counters_.doorbell_batches > 0) {
        os << " ("
           << static_cast<double>(counters_.batched_posts) /
                  static_cast<double>(counters_.doorbell_batches)
           << " legs/doorbell)";
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace dex::prof
