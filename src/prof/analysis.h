// Post-processing of page-fault traces (§IV-A).
//
// The paper's tool combines the raw ftrace dump with the binary's debug
// info to produce "a rich set of analyses, such as identifying the program
// objects or source code locations that caused the most page faults, page
// fault frequency over time, per-thread memory access patterns, etc.".
// This is that tool over our in-memory trace: hot sites, hot pages,
// false-sharing suspects (pages with conflicting access from multiple
// nodes/sites), fault-rate time series and per-task breakdowns.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "prof/trace.h"

namespace dex::prof {

struct SiteReport {
  std::uint32_t site = 0;
  std::string name;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t retries = 0;
  std::uint64_t failures = 0;  // reclaim / node-death events
  std::uint64_t prefetches = 0;
  std::uint64_t forwards = 0;  // grants forwarded owner->requester
  std::uint64_t home_migrations = 0;  // entry handed to the dominant faulter
  std::uint64_t leases = 0;  // lease renewals / recalls / recoveries
  std::uint64_t evictions = 0;  // copies retired under frame-budget pressure
  std::uint64_t thread_migrations = 0;  // advisor moved a thread to its data
  std::uint64_t total() const { return reads + writes + retries; }
};

struct PageReport {
  GAddr page = 0;
  std::string tag;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t retries = 0;
  std::uint64_t failures = 0;  // reclaim / node-death events
  std::uint64_t prefetches = 0;
  std::uint64_t forwards = 0;  // grants forwarded owner->requester
  std::uint64_t home_migrations = 0;  // entry handed to the dominant faulter
  std::uint64_t leases = 0;  // lease renewals / recalls / recoveries
  std::uint64_t evictions = 0;  // copies retired under frame-budget pressure
  std::uint64_t thread_migrations = 0;  // advisor moved a thread to its data
  std::set<NodeId> nodes;
  std::set<std::uint32_t> sites;
  std::set<TaskId> tasks;

  std::uint64_t total() const { return reads + writes + retries; }
  /// A false-sharing / contention suspect: multiple nodes touch the page
  /// and at least one of them writes (§IV-B's co-located per-node data, or
  /// §IV-C's contended global objects).
  bool conflicting() const { return nodes.size() > 1 && writes > 0; }
};

/// Protocol-wide counters that live outside the fault trace (DsmStats /
/// Directory), attachable to an analysis so the report shows how the
/// serialization layer behaved alongside the per-page fault profile.
struct ProtocolCounters {
  /// Times a thread found its directory shard's tree lock already held
  /// (Directory::lock_contention); sharding should keep this near zero.
  std::uint64_t dir_lock_contention = 0;
  /// Optimistic-latching health (DsmConfig::optimistic_latching): probes
  /// that restarted against a raced mutation, probes that escalated to the
  /// exclusive latch (entry creation), and fault-table shard collisions.
  /// All three are zero when the knob is off.
  std::uint64_t latch_restarts = 0;
  std::uint64_t latch_upgrades = 0;
  std::uint64_t fault_table_contention = 0;
  std::uint64_t remote_faults = 0;
  std::uint64_t home_migrations = 0;
  std::uint64_t home_hint_hits = 0;
  std::uint64_t home_chases = 0;
  /// Granted page transactions by serving home node, indexed by NodeId.
  std::vector<std::uint64_t> faults_by_home;
  // ---- Self-healing (leases + failure recovery; DsmStats/FailureStats) --
  std::uint64_t lease_renewals = 0;
  std::uint64_t writebacks_piggybacked = 0;
  std::uint64_t lease_recalls = 0;
  std::uint64_t pages_recovered = 0;
  std::uint64_t dirty_pages_lost = 0;
  std::uint64_t threads_restarted = 0;
  // ---- Bounded frames (frame_budget_bytes; DsmStats) ----
  std::uint64_t frame_budget_bytes = 0;
  std::uint64_t frame_high_water_bytes = 0;
  std::uint64_t evictions_shared = 0;
  std::uint64_t evictions_exclusive = 0;
  std::uint64_t evictions_local = 0;
  std::uint64_t spills_out = 0;
  std::uint64_t spills_in = 0;
  std::uint64_t backpressure_stalls = 0;
  std::uint64_t backpressure_overshoots = 0;
  std::uint64_t journal_bytes = 0;
  std::uint64_t journal_gcs = 0;
  // ---- Async protocol engine (async_engine; DsmStats/Fabric) ----
  std::uint64_t engine_submitted = 0;
  std::uint64_t engine_resumes = 0;
  std::uint64_t async_completions = 0;
  std::uint64_t engine_depth_peak = 0;
  std::uint64_t engine_depth_sum = 0;
  std::uint64_t engine_depth_samples = 0;
  std::uint64_t engine_pump_handoffs = 0;
  std::uint64_t doorbell_batches = 0;
  std::uint64_t batched_posts = 0;
  // ---- Joint thread<->page placement (auto_thread_migration; DsmStats) --
  std::uint64_t thread_migrations_auto = 0;
  std::uint64_t placement_windows = 0;
  std::uint64_t placement_vetoes = 0;
  std::uint64_t placement_deferrals = 0;
  std::uint64_t placement_arbitrations = 0;
  std::uint64_t placement_hints_warmed = 0;
  // ---- Origin failover (origin_failover; DsmStats/FailureStats) ----
  std::uint64_t origin_failovers = 0;
  std::uint64_t dir_mutations_replicated = 0;
  std::uint64_t replication_batches = 0;
  std::uint64_t replica_journal_pages = 0;
  std::uint64_t scavenge_pages_rebuilt = 0;
  std::uint64_t replication_lag = 0;
};

class TraceAnalysis {
 public:
  explicit TraceAnalysis(std::vector<FaultEvent> events);

  /// Attaches protocol counters; format_report then appends a
  /// serialization-layer section (shard-lock contention, home migration
  /// effectiveness, per-home fault distribution).
  void set_protocol_counters(ProtocolCounters counters) {
    counters_ = std::move(counters);
    have_counters_ = true;
  }

  /// Source locations causing the most protocol faults, descending.
  std::vector<SiteReport> top_sites(std::size_t limit = 10) const;

  /// Pages causing the most protocol faults, descending.
  std::vector<PageReport> top_pages(std::size_t limit = 10) const;

  /// Pages with conflicting cross-node access — the optimization targets
  /// of §IV-B/§IV-C, ranked by fault count.
  std::vector<PageReport> false_sharing_suspects(
      std::size_t limit = 10) const;

  /// Fault counts per `bucket_ns` of virtual time (fault frequency over
  /// time).
  std::vector<std::uint64_t> time_series(VirtNs bucket_ns) const;

  /// Per-task fault counts (per-thread memory access patterns).
  std::map<TaskId, std::uint64_t> per_task() const;

  /// Faults grouped by VMA tag (per program object).
  std::map<std::string, std::uint64_t> per_tag() const;

  std::size_t event_count() const { return events_.size(); }
  std::uint64_t retry_count() const { return retries_; }

  /// Human-readable summary, the tool's CLI-style output.
  std::string format_report(std::size_t limit = 10) const;

 private:
  std::vector<FaultEvent> events_;
  std::map<GAddr, PageReport> pages_;
  std::map<std::uint32_t, SiteReport> sites_;
  std::uint64_t retries_ = 0;
  ProtocolCounters counters_;
  bool have_counters_ = false;
};

}  // namespace dex::prof
