#include "prof/trace.h"

namespace dex::prof {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRead: return "read";
    case FaultKind::kWrite: return "write";
    case FaultKind::kInvalidate: return "invalidate";
    case FaultKind::kRetry: return "retry";
  }
  return "?";
}

SiteRegistry& SiteRegistry::instance() {
  static SiteRegistry registry;
  return registry;
}

std::uint32_t SiteRegistry::intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  names_.push_back(name);
  return static_cast<std::uint32_t>(names_.size() - 1);
}

std::string SiteRegistry::name(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id < names_.size() ? names_[id] : "<invalid>";
}

namespace {
thread_local std::uint32_t tls_site = 0;
}

std::uint32_t current_site() { return tls_site; }
void set_current_site(std::uint32_t site) { tls_site = site; }

}  // namespace dex::prof
