#include "prof/trace.h"

#include <sstream>

namespace dex::prof {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kRead: return "read";
    case FaultKind::kWrite: return "write";
    case FaultKind::kInvalidate: return "invalidate";
    case FaultKind::kRetry: return "retry";
    case FaultKind::kReclaim: return "reclaim";
    case FaultKind::kNodeDead: return "node_dead";
    case FaultKind::kPrefetch: return "prefetch";
    case FaultKind::kForward: return "forward";
    case FaultKind::kHomeMigrate: return "home_migrate";
    case FaultKind::kLease: return "lease";
    case FaultKind::kEvict: return "evict";
    case FaultKind::kThreadMigrate: return "thread_migrate";
    case FaultKind::kFailover: return "failover";
  }
  return "?";
}

ChaosCounters& ChaosCounters::instance() {
  static ChaosCounters counters;
  return counters;
}

void ChaosCounters::reset() {
  messages_dropped.store(0, std::memory_order_relaxed);
  messages_duplicated.store(0, std::memory_order_relaxed);
  messages_delayed.store(0, std::memory_order_relaxed);
  rpc_timeouts.store(0, std::memory_order_relaxed);
  rpc_retries.store(0, std::memory_order_relaxed);
  dedup_suppressed.store(0, std::memory_order_relaxed);
  node_failures.store(0, std::memory_order_relaxed);
  pages_reclaimed.store(0, std::memory_order_relaxed);
  dirty_pages_lost.store(0, std::memory_order_relaxed);
  threads_lost.store(0, std::memory_order_relaxed);
  heartbeats.store(0, std::memory_order_relaxed);
  nodes_suspected.store(0, std::memory_order_relaxed);
  nodes_declared_dead.store(0, std::memory_order_relaxed);
  lease_renewals.store(0, std::memory_order_relaxed);
  writebacks_piggybacked.store(0, std::memory_order_relaxed);
  pages_recovered.store(0, std::memory_order_relaxed);
  threads_restarted.store(0, std::memory_order_relaxed);
  origin_failovers.store(0, std::memory_order_relaxed);
}

std::string ChaosCounters::report() const {
  std::ostringstream os;
  os << "chaos: drops=" << messages_dropped.load()
     << " dups=" << messages_duplicated.load()
     << " delays=" << messages_delayed.load()
     << " timeouts=" << rpc_timeouts.load()
     << " retries=" << rpc_retries.load()
     << " dedup=" << dedup_suppressed.load()
     << " node_failures=" << node_failures.load()
     << " pages_reclaimed=" << pages_reclaimed.load()
     << " dirty_pages_lost=" << dirty_pages_lost.load()
     << " threads_lost=" << threads_lost.load()
     << " heartbeats=" << heartbeats.load()
     << " suspected=" << nodes_suspected.load()
     << " declared_dead=" << nodes_declared_dead.load()
     << " lease_renewals=" << lease_renewals.load()
     << " writebacks_piggybacked=" << writebacks_piggybacked.load()
     << " pages_recovered=" << pages_recovered.load()
     << " threads_restarted=" << threads_restarted.load()
     << " origin_failovers=" << origin_failovers.load();
  return os.str();
}

SiteRegistry& SiteRegistry::instance() {
  static SiteRegistry registry;
  return registry;
}

std::uint32_t SiteRegistry::intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  names_.push_back(name);
  return static_cast<std::uint32_t>(names_.size() - 1);
}

std::string SiteRegistry::name(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id < names_.size() ? names_[id] : "<invalid>";
}

namespace {
thread_local std::uint32_t tls_site = 0;
}

std::uint32_t current_site() { return tls_site; }
void set_current_site(std::uint32_t site) { tls_site = site; }

}  // namespace dex::prof
