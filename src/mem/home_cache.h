// Per-node home-hint cache (adaptive home migration).
//
// Once directory entries can migrate away from the origin, a faulting node
// needs a guess for where a page's entry currently lives. This cache is
// that guess: a small direct-mapped array of {page -> (home, epoch)}
// hints, deliberately shaped like a TLB rather than a coherent table —
// hints are never invalidated remotely, they simply go stale and get
// corrected by a `kWrongHome` redirect or the next grant.
//
// The epoch is the entry's `home_epoch` at the time the hint was minted.
// An update only overwrites a hint for the same page when it carries an
// equal-or-newer epoch, so a delayed redirect from before a migration can
// never clobber fresher information (the "version fence" of the design).
//
// With `optimistic` on (DsmConfig::optimistic_latching), lookups are
// version-validated reads against a per-slot seqcount: writers bump the
// seq odd before mutating and even after, readers snapshot the fields and
// restart when the seq moved — so the fault hot path's hint probe touches
// no lock at all. With it off, every lookup takes the slot spinlock,
// exactly the seed protocol.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/types.h"

namespace dex::mem {

class HomeHintCache {
 public:
  static constexpr std::size_t kDefaultSlots = 1024;

  struct Hint {
    NodeId home = kInvalidNode;
    std::uint64_t epoch = 0;
    bool valid = false;
  };

  explicit HomeHintCache(std::size_t slots = kDefaultSlots,
                         bool optimistic = false)
      : slots_(slots == 0 ? 1 : slots), optimistic_(optimistic) {}

  /// Best guess for `page`'s home, or an invalid hint (caller should fall
  /// back to the origin, which always knows).
  Hint lookup(GAddr page) const {
    const Slot& slot = slot_of(page);
    if (optimistic_) {
      for (int attempt = 0; attempt < kLookupAttempts; ++attempt) {
        const std::uint32_t seq = slot.seq.load(std::memory_order_acquire);
        if ((seq & 1) != 0) {  // a writer is mid-update
          restarts_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const bool valid = slot.valid.load(std::memory_order_relaxed);
        const GAddr base = slot.page.load(std::memory_order_relaxed);
        Hint hint;
        hint.home = slot.home.load(std::memory_order_relaxed);
        hint.epoch = slot.epoch.load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.seq.load(std::memory_order_relaxed) != seq) {
          restarts_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (valid && base == page_base(page)) {
          hint.valid = true;
          return hint;
        }
        return Hint{};
      }
      // Persistently raced: fall through to the locked read.
    }
    std::lock_guard<SpinLock> guard(slot.lock);
    Hint hint;
    if (slot.valid.load(std::memory_order_relaxed) &&
        slot.page.load(std::memory_order_relaxed) == page_base(page)) {
      hint.home = slot.home.load(std::memory_order_relaxed);
      hint.epoch = slot.epoch.load(std::memory_order_relaxed);
      hint.valid = true;
    }
    return hint;
  }

  /// Record that `page`'s entry lives at `home` as of `epoch`. A hint for
  /// the same page is only replaced by an equal-or-newer epoch; a hint for
  /// a different page that collides on the slot is always evicted.
  void update(GAddr page, NodeId home, std::uint64_t epoch) {
    Slot& slot = slot_of(page);
    std::lock_guard<SpinLock> guard(slot.lock);
    const GAddr base = page_base(page);
    if (slot.valid.load(std::memory_order_relaxed) &&
        slot.page.load(std::memory_order_relaxed) == base &&
        slot.epoch.load(std::memory_order_relaxed) > epoch) {
      return;
    }
    SeqWriteScope write(slot);
    slot.page.store(base, std::memory_order_relaxed);
    slot.home.store(home, std::memory_order_relaxed);
    slot.epoch.store(epoch, std::memory_order_relaxed);
    slot.valid.store(true, std::memory_order_relaxed);
  }

  /// Drop hints for pages in [start, end) — wired from munmap, where the
  /// entries themselves are destroyed and epochs restart from zero.
  void invalidate_range(GAddr start, GAddr end) {
    const GAddr lo = page_base(start);
    for (Slot& slot : slots_) {
      std::lock_guard<SpinLock> guard(slot.lock);
      const GAddr base = slot.page.load(std::memory_order_relaxed);
      if (slot.valid.load(std::memory_order_relaxed) && base >= lo &&
          base < end) {
        SeqWriteScope write(slot);
        slot.valid.store(false, std::memory_order_relaxed);
      }
    }
  }

  /// Full reset — used when a node is declared dead so a healed instance
  /// restarts with no stale view of the homes.
  void clear() {
    for (Slot& slot : slots_) {
      std::lock_guard<SpinLock> guard(slot.lock);
      SeqWriteScope write(slot);
      slot.valid.store(false, std::memory_order_relaxed);
    }
  }

  std::size_t size() const { return slots_.size(); }
  bool optimistic() const { return optimistic_; }

  /// Optimistic lookups that restarted against a concurrent slot write.
  std::uint64_t restarts() const {
    return restarts_.load(std::memory_order_relaxed);
  }

 private:
  /// Optimistic lookups retry this many times before taking the slot lock.
  static constexpr int kLookupAttempts = 3;

  struct SpinLock {
    void lock() {
      while (flag.test_and_set(std::memory_order_acquire)) {
      }
    }
    void unlock() { flag.clear(std::memory_order_release); }
    std::atomic_flag flag = ATOMIC_FLAG_INIT;
  };

  struct Slot {
    mutable SpinLock lock;
    /// Seqcount for optimistic readers: odd while a (spinlock-holding)
    /// writer is mid-update. The data fields are atomics so those readers
    /// race the writer's stores without UB; the seq re-check discards any
    /// torn combination.
    std::atomic<std::uint32_t> seq{0};
    std::atomic<GAddr> page{0};
    std::atomic<NodeId> home{kInvalidNode};
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<bool> valid{false};
  };

  /// Brackets a slot mutation with odd/even seq bumps (writer holds the
  /// slot spinlock, so bumps never interleave with another writer's).
  struct SeqWriteScope {
    explicit SeqWriteScope(Slot& s) : slot(s) {
      // acq_rel: the data stores that follow must not hoist above the
      // odd bump, or a reader could pair torn data with an even seq.
      slot.seq.fetch_add(1, std::memory_order_acq_rel);
    }
    ~SeqWriteScope() { slot.seq.fetch_add(1, std::memory_order_release); }
    Slot& slot;
  };

  Slot& slot_of(GAddr page) { return slots_[index_of(page)]; }
  const Slot& slot_of(GAddr page) const { return slots_[index_of(page)]; }

  std::size_t index_of(GAddr page) const {
    // splitmix64 finalizer over the page index, like the directory shards.
    std::uint64_t h = page_index(page);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h % slots_.size();
  }

  std::vector<Slot> slots_;
  const bool optimistic_;
  mutable std::atomic<std::uint64_t> restarts_{0};
};

}  // namespace dex::mem
