// Per-node home-hint cache (adaptive home migration).
//
// Once directory entries can migrate away from the origin, a faulting node
// needs a guess for where a page's entry currently lives. This cache is
// that guess: a small direct-mapped array of {page -> (home, epoch)}
// hints, deliberately shaped like a TLB rather than a coherent table —
// hints are never invalidated remotely, they simply go stale and get
// corrected by a `kWrongHome` redirect or the next grant.
//
// The epoch is the entry's `home_epoch` at the time the hint was minted.
// An update only overwrites a hint for the same page when it carries an
// equal-or-newer epoch, so a delayed redirect from before a migration can
// never clobber fresher information (the "version fence" of the design).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/types.h"

namespace dex::mem {

class HomeHintCache {
 public:
  struct Hint {
    NodeId home = kInvalidNode;
    std::uint64_t epoch = 0;
    bool valid = false;
  };

  explicit HomeHintCache(std::size_t slots = kDefaultSlots)
      : slots_(slots == 0 ? 1 : slots) {}

  /// Best guess for `page`'s home, or an invalid hint (caller should fall
  /// back to the origin, which always knows).
  Hint lookup(GAddr page) const {
    const Slot& slot = slot_of(page);
    std::lock_guard<SpinLock> guard(slot.lock);
    Hint hint;
    if (slot.valid && slot.page == page_base(page)) {
      hint.home = slot.home;
      hint.epoch = slot.epoch;
      hint.valid = true;
    }
    return hint;
  }

  /// Record that `page`'s entry lives at `home` as of `epoch`. A hint for
  /// the same page is only replaced by an equal-or-newer epoch; a hint for
  /// a different page that collides on the slot is always evicted.
  void update(GAddr page, NodeId home, std::uint64_t epoch) {
    Slot& slot = slot_of(page);
    std::lock_guard<SpinLock> guard(slot.lock);
    const GAddr base = page_base(page);
    if (slot.valid && slot.page == base && slot.epoch > epoch) return;
    slot.page = base;
    slot.home = home;
    slot.epoch = epoch;
    slot.valid = true;
  }

  /// Drop hints for pages in [start, end) — wired from munmap, where the
  /// entries themselves are destroyed and epochs restart from zero.
  void invalidate_range(GAddr start, GAddr end) {
    const GAddr lo = page_base(start);
    for (Slot& slot : slots_) {
      std::lock_guard<SpinLock> guard(slot.lock);
      if (slot.valid && slot.page >= lo && slot.page < end) {
        slot.valid = false;
      }
    }
  }

  /// Full reset — used when a node is declared dead so a healed instance
  /// restarts with no stale view of the homes.
  void clear() {
    for (Slot& slot : slots_) {
      std::lock_guard<SpinLock> guard(slot.lock);
      slot.valid = false;
    }
  }

  std::size_t size() const { return slots_.size(); }

 private:
  static constexpr std::size_t kDefaultSlots = 1024;

  struct SpinLock {
    void lock() {
      while (flag.test_and_set(std::memory_order_acquire)) {
      }
    }
    void unlock() { flag.clear(std::memory_order_release); }
    std::atomic_flag flag = ATOMIC_FLAG_INIT;
  };

  struct Slot {
    mutable SpinLock lock;
    GAddr page = 0;
    NodeId home = kInvalidNode;
    std::uint64_t epoch = 0;
    bool valid = false;
  };

  Slot& slot_of(GAddr page) { return slots_[index_of(page)]; }
  const Slot& slot_of(GAddr page) const { return slots_[index_of(page)]; }

  std::size_t index_of(GAddr page) const {
    // splitmix64 finalizer over the page index, like the directory shards.
    std::uint64_t h = page_index(page);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h % slots_.size();
  }

  std::vector<Slot> slots_;
};

}  // namespace dex::mem
