#include "mem/frame_pool.h"

#include <cstring>
#include <mutex>

#include "common/assert.h"
#include "common/virtual_clock.h"
#include "mem/directory.h"

namespace dex::mem {

namespace {

// Per-(thread, pool) admission credit. A faulting thread typically holds
// credit on two pools at once (its own node's and the serving home's), but
// a fault that chases a migrating home admits on every target it visits and
// keeps those credits until the fault completes, so in the worst case one
// thread holds credit on one pool per node.
struct Credit {
  const FramePool* pool = nullptr;
  std::size_t bytes = 0;
};
constexpr int kCreditSlots = kMaxNodes;
thread_local Credit tl_credits[kCreditSlots];

Credit* credit_slot(const FramePool* pool, bool create) {
  Credit* empty = nullptr;
  for (auto& slot : tl_credits) {
    if (slot.pool == pool) return &slot;
    if (empty == nullptr && slot.pool == nullptr) empty = &slot;
  }
  if (!create) return nullptr;
  DEX_CHECK_MSG(empty != nullptr, "admission credit slots exhausted");
  empty->pool = pool;
  empty->bytes = 0;
  return empty;
}

}  // namespace

FramePool::FramePool(std::size_t budget_bytes, bool spill_enabled,
                     VirtNs spill_write_ns, VirtNs spill_read_ns)
    : budget_(budget_bytes),
      spill_enabled_(spill_enabled),
      spill_write_ns_(spill_write_ns),
      spill_read_ns_(spill_read_ns) {}

FramePool::~FramePool() = default;

void FramePool::charge(std::size_t bytes) {
  const std::size_t now =
      used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::size_t peak = high_water_.load(std::memory_order_relaxed);
  while (now > peak &&
         !high_water_.compare_exchange_weak(peak, now,
                                            std::memory_order_relaxed)) {
  }
}

void FramePool::uncharge(std::size_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

std::uint8_t* FramePool::allocate() {
  Credit* credit = credit_slot(this, /*create=*/false);
  if (credit != nullptr && credit->bytes >= kPageSize) {
    credit->bytes -= kPageSize;  // bytes already charged at reservation
    if (credit->bytes == 0) credit->pool = nullptr;
  } else {
    charge(kPageSize);
  }
  std::uint8_t* frame = nullptr;
  free_mu_.lock();
  if (!freelist_.empty()) {
    frame = freelist_.back();
    freelist_.pop_back();
  }
  free_mu_.unlock();
  if (frame != nullptr) {
    // Recycled frames must look like the seed's value-initialized
    // make_unique allocations: zero-filled.
    std::memset(frame, 0, kPageSize);
    return frame;
  }
  auto block = std::make_unique<std::uint8_t[]>(kPageSize);
  frame = block.get();
  free_mu_.lock();
  blocks_.push_back(std::move(block));
  free_mu_.unlock();
  return frame;
}

void FramePool::release(std::uint8_t* frame) {
  DEX_CHECK(frame != nullptr);
  free_mu_.lock();
  freelist_.push_back(frame);
  free_mu_.unlock();
  uncharge(kPageSize);
}

bool FramePool::try_reserve_upto(std::size_t bytes) {
  if (budget_ == 0) return true;
  Credit* credit = credit_slot(this, /*create=*/true);
  if (credit->bytes >= bytes) return true;
  const std::size_t need = bytes - credit->bytes;
  std::size_t cur = used_.load(std::memory_order_relaxed);
  while (cur + need <= budget_) {
    if (used_.compare_exchange_weak(cur, cur + need,
                                    std::memory_order_relaxed)) {
      const std::size_t now = cur + need;
      std::size_t peak = high_water_.load(std::memory_order_relaxed);
      while (now > peak &&
             !high_water_.compare_exchange_weak(peak, now,
                                                std::memory_order_relaxed)) {
      }
      credit->bytes = bytes;
      return true;
    }
  }
  if (credit->bytes == 0) credit->pool = nullptr;
  return false;
}

void FramePool::force_reserve_upto(std::size_t bytes) {
  if (budget_ == 0) return;
  Credit* credit = credit_slot(this, /*create=*/true);
  if (credit->bytes >= bytes) return;
  charge(bytes - credit->bytes);
  credit->bytes = bytes;
}

std::size_t FramePool::credit_bytes() const {
  const Credit* credit = credit_slot(this, /*create=*/false);
  return credit == nullptr ? 0 : credit->bytes;
}

void FramePool::unreserve(std::size_t bytes) {
  if (bytes == 0) return;
  Credit* credit = credit_slot(this, /*create=*/false);
  DEX_CHECK(credit != nullptr && credit->bytes >= bytes);
  credit->bytes -= bytes;
  uncharge(bytes);
  if (credit->bytes == 0) credit->pool = nullptr;
}

void FramePool::drop_credit() {
  Credit* credit = credit_slot(this, /*create=*/false);
  if (credit == nullptr) return;
  uncharge(credit->bytes);
  credit->bytes = 0;
  credit->pool = nullptr;
}

std::uint32_t FramePool::spill_out(const std::uint8_t* frame) {
  const std::uint32_t slot = spill_.write(frame);
  if (slot != SpillFile::kNoSlot) {
    spills_out_.fetch_add(1, std::memory_order_relaxed);
    vclock::advance(spill_write_ns_);
  }
  return slot;
}

void FramePool::spill_in(std::uint32_t slot, std::uint8_t* frame) {
  spill_.read(slot, frame);
  spills_in_.fetch_add(1, std::memory_order_relaxed);
  vclock::advance(spill_read_ns_);
}

void FramePool::drop_slot(std::uint32_t slot) { spill_.drop(slot); }

}  // namespace dex::mem
