// Leader–follower coalescing of concurrent page faults (§III-C).
//
// Several threads on one node frequently fault on the same page at the same
// time. The first becomes the *leader* and runs the protocol; threads that
// arrive while the leader is in flight with the same (page, access-type)
// become *followers*: they sleep, and when the leader has installed the
// updated PTE they simply resume. A per-process hash table tracks all
// ongoing fault handling, exactly as in the paper.
//
// A fault may only coalesce with an *in-flight* handling. A completed entry
// must not absorb new joiners: under ping-pong contention the page can be
// stolen again immediately, and joiners treating a stale completion as
// success would spin forever without anyone re-running the protocol.
// Joiners that find a completed entry replace it and lead a fresh round.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/time_gate.h"
#include "common/types.h"

namespace dex::mem {

class FaultTable {
 public:
  struct Entry {
    std::condition_variable cv;
    bool done = false;
    /// Virtual time at which the leader finished; followers observe it.
    VirtNs completion_ts = 0;
  };

  /// Outcome of joining the table for (page, access).
  struct Join {
    bool is_leader = false;
    /// For followers: the leader's completion timestamp.
    VirtNs completion_ts = 0;
    /// For leaders: the round this thread leads; pass back to complete().
    std::shared_ptr<Entry> token;
  };

  /// Leader path returns is_leader=true immediately; the caller must later
  /// call `complete`. Follower path blocks until that round's leader
  /// completes.
  Join join(GAddr page, Access access) {
    const Key key = make_key(page, access);
    ScopedGateBlock gate_block("fault_table_join");  // followers sleep on the leader
    std::unique_lock<std::mutex> lock(mu_);
    std::shared_ptr<Entry>& slot = table_[key];
    if (!slot || slot->done) {
      // No handling in flight (or only a stale, completed round): lead a
      // fresh one.
      slot = std::make_shared<Entry>();
      return Join{.is_leader = true, .completion_ts = 0, .token = slot};
    }
    const std::shared_ptr<Entry> entry = slot;  // keep alive across wait
    ++coalesced_;
    entry->cv.wait(lock, [&entry] { return entry->done; });
    return Join{.is_leader = false,
                .completion_ts = entry->completion_ts,
                .token = nullptr};
  }

  /// Called by the leader once the PTE is updated. Wakes this round's
  /// followers and retires the entry.
  void complete(const Join& lead, GAddr page, Access access,
                VirtNs completion_ts) {
    const Key key = make_key(page, access);
    std::lock_guard<std::mutex> lock(mu_);
    lead.token->done = true;
    lead.token->completion_ts = completion_ts;
    lead.token->cv.notify_all();
    // Erase only our own round; a newer round may already occupy the slot.
    auto it = table_.find(key);
    if (it != table_.end() && it->second == lead.token) table_.erase(it);
  }

  /// Total faults absorbed as followers (for stats / ablation).
  std::uint64_t coalesced_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return coalesced_;
  }

  std::size_t in_flight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return table_.size();
  }

  /// Debug: one line per entry (page key, done flag, use count).
  std::string debug_dump() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (const auto& [key, entry] : table_) {
      out += "  entry key=" + std::to_string(key) +
             " done=" + std::to_string(entry ? entry->done : -1) +
             " refs=" + std::to_string(entry ? entry.use_count() : 0) + "\n";
    }
    return out;
  }

 private:
  using Key = std::uint64_t;
  static Key make_key(GAddr page, Access access) {
    // Page addresses are 4K-aligned: the low bit is free for access type.
    return page | static_cast<std::uint64_t>(access);
  }

  mutable std::mutex mu_;
  std::unordered_map<Key, std::shared_ptr<Entry>> table_;
  std::uint64_t coalesced_ = 0;
};

}  // namespace dex::mem
