// Leader–follower coalescing of concurrent page faults (§III-C).
//
// Several threads on one node frequently fault on the same page at the same
// time. The first becomes the *leader* and runs the protocol; threads that
// arrive while the leader is in flight with the same (page, access-type)
// become *followers*: they sleep, and when the leader has installed the
// updated PTE they simply resume. A per-process hash table tracks all
// ongoing fault handling, exactly as in the paper.
//
// A fault may only coalesce with an *in-flight* handling. A completed entry
// must not absorb new joiners: under ping-pong contention the page can be
// stolen again immediately, and joiners treating a stale completion as
// success would spin forever without anyone re-running the protocol.
// Joiners that find a completed entry replace it and lead a fresh round.
//
// The table is hash-sharded (splitmix64 over the key, same idiom as the
// Directory) so faults on different pages never serialize on one global
// mutex; `FaultTable(1)` collapses to the original single-table layout
// (the DsmConfig::optimistic_latching = false ablation). Each shard keeps
// a std::mutex — not a HybridLatch — because followers park on a
// condition_variable, which must atomically release the lock guarding the
// done flag. Leader/follower races stay exactly as safe as the global
// table: every (page, access) key maps to one shard, so a round's leader
// election, follower waits, and completion all happen under that shard's
// mutex; sharding only changes WHICH mutex, never splits one key's state.
// The stats counters are atomics maintained outside the shard locks, so
// profiling reads never contend with faulting threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "common/time_gate.h"
#include "common/types.h"

namespace dex::mem {

class FaultTable {
 public:
  static constexpr int kShards = 64;

  struct Entry {
    std::condition_variable cv;
    bool done = false;
    /// Virtual time at which the leader finished; followers observe it.
    VirtNs completion_ts = 0;
  };

  /// Outcome of joining the table for (page, access).
  struct Join {
    bool is_leader = false;
    /// For followers: the leader's completion timestamp.
    VirtNs completion_ts = 0;
    /// For leaders: the round this thread leads; pass back to complete().
    std::shared_ptr<Entry> token;
  };

  explicit FaultTable(int shards = kShards) {
    DEX_CHECK(shards >= 1);
    shards_.reserve(static_cast<std::size_t>(shards));
    for (int i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  /// Leader path returns is_leader=true immediately; the caller must later
  /// call `complete`. Follower path blocks until that round's leader
  /// completes.
  Join join(GAddr page, Access access) {
    const Key key = make_key(page, access);
    Shard& shard = shard_of(key);
    ScopedGateBlock gate_block("fault_table_join");  // followers sleep on the leader
    std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
    if (!lock.owns_lock()) {
      contention_.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
    }
    const auto [it, inserted] = shard.table.try_emplace(key);
    std::shared_ptr<Entry>& slot = it->second;
    if (inserted) in_flight_.fetch_add(1, std::memory_order_relaxed);
    if (!slot || slot->done) {
      // No handling in flight (or only a stale, completed round): lead a
      // fresh one.
      slot = std::make_shared<Entry>();
      return Join{.is_leader = true, .completion_ts = 0, .token = slot};
    }
    const std::shared_ptr<Entry> entry = slot;  // keep alive across wait
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    entry->cv.wait(lock, [&entry] { return entry->done; });
    return Join{.is_leader = false,
                .completion_ts = entry->completion_ts,
                .token = nullptr};
  }

  /// Non-blocking leader attempt for the background prefetch streamer: if
  /// no round is in flight for (page, access), start one and return
  /// is_leader=true (the caller must later `complete` it); if a round IS
  /// in flight, return is_leader=false WITHOUT waiting. The streamer uses
  /// this to register every page of a window it is about to fetch, so a
  /// demand fault on such a page coalesces as a follower of the in-flight
  /// window instead of duplicating the wire transfer — and to truncate
  /// the window at the first page some other round is already fetching.
  Join try_lead(GAddr page, Access access) {
    const Key key = make_key(page, access);
    Shard& shard = shard_of(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto [it, inserted] = shard.table.try_emplace(key);
    std::shared_ptr<Entry>& slot = it->second;
    if (inserted) in_flight_.fetch_add(1, std::memory_order_relaxed);
    if (!slot || slot->done) {
      slot = std::make_shared<Entry>();
      return Join{.is_leader = true, .completion_ts = 0, .token = slot};
    }
    return Join{.is_leader = false, .completion_ts = 0, .token = nullptr};
  }

  /// Called by the leader once the PTE is updated. Wakes this round's
  /// followers and retires the entry.
  void complete(const Join& lead, GAddr page, Access access,
                VirtNs completion_ts) {
    const Key key = make_key(page, access);
    Shard& shard = shard_of(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    lead.token->done = true;
    lead.token->completion_ts = completion_ts;
    lead.token->cv.notify_all();
    // Erase only our own round; a newer round may already occupy the slot.
    auto it = shard.table.find(key);
    if (it != shard.table.end() && it->second == lead.token) {
      shard.table.erase(it);
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  /// Total faults absorbed as followers (for stats / ablation). Lock-free:
  /// the profiler polling this never contends with faulting threads.
  std::uint64_t coalesced_count() const {
    return coalesced_.load(std::memory_order_relaxed);
  }

  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  /// Times a joiner found its shard's mutex held and had to block — the
  /// per-node serialization the sharding exists to kill.
  std::uint64_t contention() const {
    return contention_.load(std::memory_order_relaxed);
  }

  int shards() const { return static_cast<int>(shards_.size()); }

  /// Debug: one line per entry (page key, done flag, use count).
  std::string debug_dump() const {
    std::string out;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (const auto& [key, entry] : shard->table) {
        out += "  entry key=" + std::to_string(key) +
               " done=" + std::to_string(entry ? entry->done : -1) +
               " refs=" + std::to_string(entry ? entry.use_count() : 0) + "\n";
      }
    }
    return out;
  }

 private:
  using Key = std::uint64_t;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, std::shared_ptr<Entry>> table;
  };

  static Key make_key(GAddr page, Access access) {
    // Page addresses are 4K-aligned: the low bit is free for access type.
    return page | static_cast<std::uint64_t>(access);
  }

  Shard& shard_of(Key key) const {
    // splitmix64 finalizer, as in Directory::shard_of.
    std::uint64_t h = key;
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return *shards_[h % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> contention_{0};
  std::atomic<std::size_t> in_flight_{0};
};

}  // namespace dex::mem
