#include "mem/vma.h"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "common/assert.h"

namespace dex::mem {

VmaRecord to_record(const Vma& vma) {
  VmaRecord record{};
  record.start = vma.start;
  record.end = vma.end;
  record.prot = vma.prot;
  record.valid = 1;
  std::strncpy(record.tag, vma.tag.c_str(), sizeof(record.tag) - 1);
  return record;
}

Vma from_record(const VmaRecord& record) {
  Vma vma;
  vma.start = record.start;
  vma.end = record.end;
  vma.prot = record.prot;
  vma.tag = record.tag;
  return vma;
}

namespace {
std::uint64_t round_up_pages(std::uint64_t length) {
  return (length + kPageSize - 1) & ~std::uint64_t{kPageSize - 1};
}
}  // namespace

GAddr AddressSpace::mmap(std::uint64_t length, std::uint8_t prot,
                         std::string tag, GAddr hint) {
  if (length == 0) return kNullGAddr;
  length = round_up_pages(length);
  std::unique_lock lock(mu_);
  GAddr start = kNullGAddr;
  if (hint != 0) {
    DEX_CHECK_MSG(page_offset(hint) == 0, "mmap hint must be page aligned");
    // MAP_FIXED-like: reject overlap instead of clobbering.
    auto it = vmas_.upper_bound(hint);
    if (it != vmas_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.end > hint) return kNullGAddr;
    }
    if (it != vmas_.end() && it->second.start < hint + length) {
      return kNullGAddr;
    }
    start = hint;
  } else {
    start = find_free_range_locked(length);
    if (start == kNullGAddr) return kNullGAddr;
  }
  Vma vma{start, start + length, prot, std::move(tag)};
  vmas_.emplace(start, std::move(vma));
  ++version_;
  return start;
}

GAddr AddressSpace::find_free_range_locked(std::uint64_t length) const {
  // Bump allocation with a gap page between mappings: adjacent VMAs never
  // share a guard boundary, which keeps unrelated allocations off each
  // other's pages (matters for the false-sharing experiments).
  GAddr candidate = cursor_;
  for (;;) {
    if (candidate + length >= kLimit) return kNullGAddr;
    auto it = vmas_.upper_bound(candidate);
    if (it != vmas_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.end > candidate) {
        candidate = prev->second.end + kPageSize;
        continue;
      }
    }
    if (it != vmas_.end() && it->second.start < candidate + length) {
      candidate = it->second.end + kPageSize;
      continue;
    }
    const_cast<AddressSpace*>(this)->cursor_ =
        candidate + length + kPageSize;
    return candidate;
  }
}

void AddressSpace::carve_locked(GAddr start, GAddr end) {
  // Remove/split every VMA overlapping [start, end).
  auto it = vmas_.lower_bound(start);
  if (it != vmas_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > start) it = prev;
  }
  while (it != vmas_.end() && it->second.start < end) {
    Vma vma = it->second;
    it = vmas_.erase(it);
    if (vma.start < start) {
      Vma left = vma;
      left.end = start;
      vmas_.emplace(left.start, left);
    }
    if (vma.end > end) {
      Vma right = vma;
      right.start = end;
      it = vmas_.emplace(right.start, right).first;
      ++it;
    }
  }
}

bool AddressSpace::munmap(GAddr start, std::uint64_t length) {
  if (length == 0 || page_offset(start) != 0) return false;
  length = round_up_pages(length);
  std::unique_lock lock(mu_);
  const GAddr end = start + length;
  bool touched = false;
  auto it = vmas_.lower_bound(start);
  if (it != vmas_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > start) touched = true;
  }
  if (it != vmas_.end() && it->second.start < end) touched = true;
  if (!touched) return false;
  carve_locked(start, end);
  ++version_;
  return true;
}

bool AddressSpace::mprotect(GAddr start, std::uint64_t length,
                            std::uint8_t prot) {
  if (length == 0 || page_offset(start) != 0) return false;
  length = round_up_pages(length);
  std::unique_lock lock(mu_);
  const GAddr end = start + length;

  // Collect the overlapped pieces, then re-insert them with new prot.
  std::vector<Vma> pieces;
  auto it = vmas_.lower_bound(start);
  if (it != vmas_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > start) it = prev;
  }
  for (auto scan = it; scan != vmas_.end() && scan->second.start < end;
       ++scan) {
    const Vma& vma = scan->second;
    Vma piece = vma;
    piece.start = std::max(vma.start, start);
    piece.end = std::min(vma.end, end);
    piece.prot = prot;
    pieces.push_back(std::move(piece));
  }
  if (pieces.empty()) return false;
  carve_locked(start, end);
  for (auto& piece : pieces) {
    GAddr s = piece.start;
    vmas_.emplace(s, std::move(piece));
  }
  ++version_;
  return true;
}

void AddressSpace::install_replica(const Vma& vma) {
  std::unique_lock lock(mu_);
  carve_locked(vma.start, vma.end);
  vmas_.emplace(vma.start, vma);
  ++version_;
}

std::optional<Vma> AddressSpace::find(GAddr addr) const {
  std::shared_lock lock(mu_);
  auto it = vmas_.upper_bound(addr);
  if (it == vmas_.begin()) return std::nullopt;
  --it;
  if (it->second.contains(addr)) return it->second;
  return std::nullopt;
}

std::vector<Vma> AddressSpace::snapshot() const {
  std::shared_lock lock(mu_);
  std::vector<Vma> out;
  out.reserve(vmas_.size());
  for (const auto& [_, vma] : vmas_) out.push_back(vma);
  return out;
}

std::size_t AddressSpace::vma_count() const {
  std::shared_lock lock(mu_);
  return vmas_.size();
}

std::uint64_t AddressSpace::version() const {
  std::shared_lock lock(mu_);
  return version_;
}

void AddressSpace::clear() {
  std::unique_lock lock(mu_);
  vmas_.clear();
  ++version_;
}

}  // namespace dex::mem
