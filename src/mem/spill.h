// File-backed cold tier for evicted page frames.
//
// When a node's FramePool is over budget and the eviction provider runs out
// of droppable copies (shared replicas re-fault from the home; a home's
// authoritative frame cannot be dropped at all), cold frames are written to
// an anonymous temporary file and re-read on the next access. This is the
// "elasticize beyond DRAM" tier: aggregate working sets can exceed cluster
// memory at the cost of a simulated NVMe round-trip per cold page
// (CostModel::spill_write_ns / spill_read_ns, charged by the FramePool).
//
// The file is created lazily with std::tmpfile() — anonymous, unlinked,
// reclaimed by the OS on process exit — and slots are recycled through a
// free list, so the file never outgrows the peak spilled set.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <vector>

#include "common/types.h"

namespace dex::mem {

class SpillFile {
 public:
  /// Sentinel: no spilled image.
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  SpillFile() = default;
  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Writes one page image; returns its slot, or kNoSlot when the backing
  /// file cannot be created (spilling then degrades to "skip the frame").
  std::uint32_t write(const std::uint8_t* page);

  /// Reads slot back into `page` and recycles the slot.
  void read(std::uint32_t slot, std::uint8_t* page);

  /// Discards a spilled image without reading it (teardown, munmap).
  void drop(std::uint32_t slot);

  /// Bytes currently parked in the file (live slots only).
  std::size_t spilled_bytes() const {
    return spilled_bytes_.load(std::memory_order_relaxed);
  }
  std::size_t high_water_bytes() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  bool ensure_open_locked();

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  bool open_failed_ = false;
  std::uint32_t next_slot_ = 0;
  std::vector<std::uint32_t> free_slots_;
  std::atomic<std::size_t> spilled_bytes_{0};
  std::atomic<std::size_t> high_water_{0};
};

}  // namespace dex::mem
