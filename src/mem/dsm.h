// The DeX memory-consistency engine (§III-B/C/D).
//
// One Dsm instance exists per distributed process. It owns:
//   - the authoritative AddressSpace at the origin and per-node replicas,
//   - one PageTable per node (node-local frames + coherence state),
//   - the ownership Directory at the origin,
//   - one FaultTable per node (leader-follower coalescing),
// and implements the read-replicate / write-invalidate protocol over the
// simulated fabric. The protocol is *home-based*: all transactions for a
// page serialize on its directory entry at its current home (the origin by
// default; adaptively migrated to the page's dominant faulter when
// DsmConfig::home_migration is on); dirty data is written back to the home
// frame and granted from there.
//
// Sequential consistency: a page is either writable on exactly one node or
// read-only on many; every transition serializes on the directory entry and
// carries a virtual-clock happens-before edge, so data-race-free programs
// observe a sequentially consistent memory.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"
#include "mem/directory.h"
#include "mem/fault_table.h"
#include "mem/home_cache.h"
#include "mem/page_table.h"
#include "mem/prefetch.h"
#include "mem/vma.h"
#include "net/fabric.h"
#include "prof/trace.h"

namespace dex::core {
class PlacementAdvisor;
class ProtocolEngine;
}

namespace dex::mem {

/// Thrown when an access hits no VMA or violates VMA protection — the
/// userspace analogue of SIGSEGV delivered to the faulting thread.
class SegfaultError : public std::runtime_error {
 public:
  SegfaultError(GAddr addr, Access access)
      : std::runtime_error(describe(addr, access)),
        addr_(addr),
        access_(access) {}
  GAddr addr() const { return addr_; }
  Access access() const { return access_; }

 private:
  static std::string describe(GAddr addr, Access access);
  GAddr addr_;
  Access access_;
};

/// Thrown when the origin node dies and no failover path exists — either
/// DsmConfig::origin_failover is off (the seed posture: origin death is
/// unsupported) or no survivor remains to promote. NodeDeadError-style:
/// callers report the condition and keep running instead of the old
/// process-killing assert, so chaos soaks surface the loss in their stats.
class OriginDeadError : public std::runtime_error {
 public:
  explicit OriginDeadError(NodeId dead)
      : std::runtime_error(describe(dead)), dead_(dead) {}
  NodeId dead() const { return dead_; }

 private:
  static std::string describe(NodeId dead);
  NodeId dead_;
};

/// Per-node count of runnable application threads; feeds the per-node
/// memory-bandwidth model. Owned by the cluster, shared by processes.
struct NodeLoad {
  std::array<std::atomic<int>, kMaxNodes> active{};
  int on(NodeId node) const {
    return active[static_cast<std::size_t>(node)].load(
        std::memory_order_relaxed);
  }
};

struct DsmConfig {
  std::uint64_t process_id = 0;
  NodeId origin = 0;
  int num_nodes = 1;
  /// Fraction of peak per-core streaming bandwidth the workload sustains;
  /// drives the per-node bandwidth wall (BP sets this high).
  double stream_intensity = 0.15;
  /// Disables §III-C coalescing for the ablation bench.
  bool coalesce_faults = true;
  /// Maximum busy-entry retries before falling back to a blocking acquire
  /// (forward-progress guarantee).
  int max_retries = 64;
  /// Extra contiguous pages a detected streaming read may pull in one
  /// kPageRequestBatch transaction (clamped to net::kMaxBatchPages - 1).
  /// 0 disables the stride prefetcher — the ablation reproduces the
  /// one-page-per-fault protocol exactly.
  int prefetch_max_pages = 8;
  /// Two-hop grant forwarding: a recall names the requester and the owner
  /// ships the page straight to it (kForwardGrant) instead of bouncing the
  /// data through the origin frame. Off reproduces the classic
  /// two-transfer recall (kRevokeOwnership) bit-for-bit.
  bool forward_grants = true;
  /// Number of hash shards the ownership directory's radix tree is split
  /// into. 1 collapses to the original single-tree/single-mutex layout.
  int dir_shards = Directory::kDirShards;
  /// Adaptive home migration: a page's directory entry (and authoritative
  /// frame) moves to the node that dominates its faults, turning
  /// single-node-private hot pages into purely local faults. Off reproduces
  /// the fixed-home (origin) protocol bit-for-bit.
  bool home_migration = true;
  /// Consecutive faults one node must take on a page — with no intervening
  /// fault from any other node — before the home hands the entry off.
  /// The home's own local faults reset the run (they are already free, and
  /// counting them would make two-party ping-pong oscillate the home).
  int home_migrate_run = 3;
  /// Writeback lease on remote exclusive grants (virtual ns). A remote
  /// owner whose lease expired renews it before dirtying the page further,
  /// piggybacking a journal writeback of the current contents to the
  /// serving home — so on owner death at most one lease window of writes
  /// is exposed and the journaled home frame is recovered instead of
  /// reporting dirty loss. 0 disables leases and reproduces the unleased
  /// protocol bit-for-bit.
  VirtNs lease_ns = 0;
  /// Per-node frame-memory budget in bytes. Each node's FramePool evicts
  /// cold copies (dropping shared replicas, writing back exclusive pages)
  /// and backpressures faulting threads to stay under it. 0 = unbounded,
  /// reproduces the seed protocol bit-for-bit.
  std::uint64_t frame_budget_bytes = 0;
  /// File-backed cold tier: under pressure a home's authoritative frames
  /// (which cannot be dropped — they are the grant source) are parked in a
  /// SpillFile and re-read on demand, so aggregate working sets can exceed
  /// cluster DRAM. Only meaningful with a frame budget.
  bool spill_cold_pages = false;
  /// Pages the eviction provider tries to free beyond the immediate need
  /// on each pressure pass (amortizes the per-page eviction RPCs).
  int evict_batch_pages = 8;
  /// Bounded backpressure: evict+wait rounds a faulting thread retries
  /// before being admitted over budget (forward progress over strictness;
  /// overshoots are counted in DsmStats::backpressure_overshoots).
  int max_backpressure_rounds = 32;
  /// Optimistic versioned latching on the fault hot path: directory probes
  /// and home-hint lookups validate a version counter instead of locking,
  /// the known-version PTE probe reads against the install seqcount
  /// without the spinlock, and the per-node FaultTable is sharded 64 ways.
  /// Off reproduces the seed pessimistic protocol bit-for-bit (every
  /// access takes its mutex, one global fault table per node).
  bool optimistic_latching = true;
  /// Async protocol engine (core::ProtocolEngine): leader faults become
  /// resumable transactions driven by a cooperative per-node pump that
  /// coalesces adjacent same-destination sends into doorbell batches and
  /// completes parked faulters through a futex wake; lease renewals and
  /// patrol eviction writebacks ride the same queue instead of detouring
  /// synchronously. Off reproduces the blocking protocol bit-for-bit.
  bool async_engine = false;
  /// Transactions one pump keeps in flight per node (engine window depth).
  int max_inflight_transactions = 16;
  /// Joint thread<->page placement (core::PlacementAdvisor): every granted
  /// leader fault also feeds a per-thread per-home fault-mass EWMA, and a
  /// thread whose mass dominates on one remote node for thread_migrate_run
  /// consecutive windows transparently migrates itself there (with load
  /// veto, cooldown, budget, and single-hot-page arbitration against home
  /// migration). Off spawns no advisor and reproduces the application-
  /// directed placement bit-for-bit.
  bool auto_thread_migration = false;
  /// Consecutive dominant decision windows before the thread moves
  /// (mirrors home_migrate_run's anti-ping-pong hysteresis).
  int thread_migrate_run = 3;
  /// Origin failover: the origin streams epoch-stamped directory-mutation
  /// records (owner/sharer/version changes, home moves, lease-journal
  /// images, mmap VMAs) to a deterministic deputy — the next surviving
  /// node id — and on origin death the deputy promotes, re-registers
  /// survivor page state through a scavenge round, and serves as the new
  /// origin for every origin-fallback ladder. Off reproduces the seed
  /// protocol bit-for-bit: origin death remains fatal to the process
  /// (reported gracefully, not aborted) and zero replication traffic
  /// exists on the wire.
  bool origin_failover = false;
};

/// Bounce budget for chasing stale home hints: after this many kWrongHome
/// redirects a fault falls back to the origin, which always knows the
/// current home (its redirect is authoritative).
inline constexpr int kMaxHomeChase = 4;

/// Per-process accounting of node-failure damage and recovery work. Dirty
/// pages whose only up-to-date copy died with a node are *lost* — the
/// origin's last written-back frame becomes authoritative again — and that
/// loss is reported here rather than papered over.
struct FailureStats {
  std::atomic<std::uint64_t> node_failures{0};
  std::atomic<std::uint64_t> pages_reclaimed{0};
  std::atomic<std::uint64_t> dirty_pages_lost{0};
  std::atomic<std::uint64_t> threads_lost{0};
  /// Directory entries a dead node was homing; migrated back to the origin
  /// by reclaim_node.
  std::atomic<std::uint64_t> homes_reclaimed{0};
  /// Dirty pages whose dead owner had a journaled (lease-writeback) copy at
  /// the home: recovered from the journal instead of counted as lost.
  std::atomic<std::uint64_t> pages_recovered{0};
  /// Threads lost to node death and re-spawned at the origin
  /// (ProcessOptions::restart_lost_threads).
  std::atomic<std::uint64_t> threads_restarted{0};
  /// Origin deaths survived by deputy promotion (DsmConfig::origin_failover).
  std::atomic<std::uint64_t> origin_failovers{0};
};

struct DsmStats {
  std::atomic<std::uint64_t> read_faults{0};
  std::atomic<std::uint64_t> write_faults{0};
  std::atomic<std::uint64_t> remote_faults{0};   // required wire traffic
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> invalidations{0};
  std::atomic<std::uint64_t> writebacks{0};
  std::atomic<std::uint64_t> grants_data{0};
  std::atomic<std::uint64_t> grants_ownership_only{0};
  std::atomic<std::uint64_t> vma_syncs{0};
  // ---- Stride prefetcher (kPageRequestBatch) ----
  std::atomic<std::uint64_t> prefetch_issued{0};   // extra pages requested
  std::atomic<std::uint64_t> prefetch_grants{0};   // extra pages granted
  std::atomic<std::uint64_t> prefetch_hits{0};     // prefetched page used
  std::atomic<std::uint64_t> prefetch_wasted{0};   // revoked before any use
  // ---- Overlapped revocation fan-out ----
  std::atomic<std::uint64_t> revoke_fanouts{0};        // call_many batches
  std::atomic<std::uint64_t> revoke_legs_overlapped{0};// legs in them
  /// Revocations whose RPC failed after the retry budget (RpcError): the
  /// unreachable sharer is treated as a dead-sharer reclaim so the entry
  /// stays consistent, and the failure is counted here instead of
  /// unwinding mid-transaction.
  std::atomic<std::uint64_t> revoke_failures{0};
  // ---- Two-hop grant forwarding ----
  /// Recalls resolved by a direct owner->requester push (one bulk transfer
  /// on the critical path instead of two).
  std::atomic<std::uint64_t> forwarded_grants{0};
  /// Forward attempts whose push leg failed (requester dead / drop budget
  /// exhausted); the owner fell back to a full on-path writeback and the
  /// origin granted from its frame, classic-style.
  std::atomic<std::uint64_t> forward_fallbacks{0};
  // ---- Adaptive home migration ----
  /// kHomeMigrate hand-offs that completed (the entry changed home).
  std::atomic<std::uint64_t> home_migrations{0};
  /// Remote leader faults whose first request landed at the current home
  /// (no kWrongHome bounce) — the hint cache, or the origin default, was
  /// right. Steady-state hit ratio is home_hint_hits / remote_faults.
  std::atomic<std::uint64_t> home_hint_hits{0};
  /// Leader faults that needed at least one kWrongHome bounce.
  std::atomic<std::uint64_t> home_chases{0};
  /// Total kWrongHome redirect replies consumed by requesters.
  std::atomic<std::uint64_t> wrong_home_bounces{0};
  // ---- Writeback leases (DsmConfig::lease_ns) ----
  /// kLeaseRenew transactions that extended an owner's write window.
  std::atomic<std::uint64_t> lease_renewals{0};
  /// Journal writebacks piggybacked on renewals (one per accepted renewal;
  /// kept separate so a future delta-encoding can renew without data).
  std::atomic<std::uint64_t> writebacks_piggybacked{0};
  /// Expired leases the patrol recalled (owner demoted to kShared so its
  /// final writes reached the home frame).
  std::atomic<std::uint64_t> lease_recalls{0};
  /// Entries a dead node homed, migrated back to the origin (mirrors
  /// FailureStats::homes_reclaimed for protocol-side visibility).
  std::atomic<std::uint64_t> homes_reclaimed{0};
  // ---- Bounded frames (DsmConfig::frame_budget_bytes) ----
  /// Shared replicas retired via kEvictPage (dropped; re-fault from home).
  std::atomic<std::uint64_t> evictions_shared{0};
  /// Exclusive copies written back to the home and dropped via kEvictPage.
  std::atomic<std::uint64_t> evictions_exclusive{0};
  /// Invalid-state cached frames freed locally (no directory coordination:
  /// the revoked copy was only kept for a possible ownership-only regrant).
  std::atomic<std::uint64_t> evictions_local{0};
  /// Candidates passed over: pinned, referenced (second chance), busy
  /// entry, or an unreachable home.
  std::atomic<std::uint64_t> eviction_skips{0};
  /// kEvictPage transactions that lost a race (copy recalled/re-granted
  /// between the evictor's snapshot and the home's validation).
  std::atomic<std::uint64_t> eviction_stale{0};
  /// Home frames parked in / re-read from the cold tier.
  std::atomic<std::uint64_t> spills_out{0};
  std::atomic<std::uint64_t> spills_in{0};
  /// Faults that had to wait for eviction to make room, and the virtual
  /// time they spent waiting.
  std::atomic<std::uint64_t> backpressure_stalls{0};
  std::atomic<std::uint64_t> backpressure_wait_ns{0};
  /// Faults admitted over budget after exhausting the backpressure rounds
  /// (everything pinned or hot) — forward progress over strictness.
  std::atomic<std::uint64_t> backpressure_overshoots{0};
  /// Gauge: bytes of live journaled lease-writeback images at homes.
  std::atomic<std::uint64_t> journal_bytes{0};
  /// Journal entries pruned by the patrol's GC (owner released or renewed
  /// away; the journaled image was no longer reachable).
  std::atomic<std::uint64_t> journal_gcs{0};
  // ---- Optimistic latching (DsmConfig::optimistic_latching) ----
  /// Version-validated reads that had to restart against a concurrent
  /// writer, summed across the directory shards, the PTE known-version
  /// probes, and the home-hint caches (mirrored at snapshot time by
  /// Dsm::stats(), like the pool gauges).
  std::atomic<std::uint64_t> latch_restarts{0};
  /// Optimistic directory probes that escalated to the exclusive shard
  /// latch (entry creation, or a persistently raced lookup).
  std::atomic<std::uint64_t> latch_upgrades{0};
  /// FaultTable joiners that found their shard's mutex held (summed across
  /// nodes at snapshot time); with one global table per node this is the
  /// per-node fault serialization the sharding removes.
  std::atomic<std::uint64_t> fault_table_contention{0};
  // ---- Async protocol engine (DsmConfig::async_engine) ----
  /// Transactions submitted to the engine (foreground + background);
  /// mirrored from EngineStats at stats() snapshot, like the pool gauges.
  std::atomic<std::uint64_t> engine_submitted{0};
  /// Resume-closure invocations (one per completed doorbell-batch leg).
  std::atomic<std::uint64_t> engine_resumes{0};
  /// Transactions retired through the engine (futex-wake completions for
  /// parked faulters, silent retirement for background work).
  std::atomic<std::uint64_t> async_completions{0};
  /// Outstanding-transaction depth: peak, and sum/samples for the mean.
  std::atomic<std::uint64_t> engine_depth_peak{0};
  std::atomic<std::uint64_t> engine_depth_sum{0};
  std::atomic<std::uint64_t> engine_depth_samples{0};
  /// Pump-role hand-offs to a parked submitter.
  std::atomic<std::uint64_t> engine_pump_handoffs{0};
  /// Doorbell batches posted (Fabric::post_batch with >1 leg charged one
  /// posting gap) and the legs they carried; mirrored from the fabric.
  std::atomic<std::uint64_t> doorbell_batches{0};
  std::atomic<std::uint64_t> batched_posts{0};
  // ---- Joint thread<->page placement (DsmConfig::auto_thread_migration) --
  /// Advisor-triggered transparent Process::migrate calls (the manual
  /// migration log records them too, but these are the automatic ones).
  std::atomic<std::uint64_t> thread_migrations_auto{0};
  /// Completed per-thread decision windows.
  std::atomic<std::uint64_t> placement_windows{0};
  /// Armed migrations rejected by the load veto (target full or dead).
  std::atomic<std::uint64_t> placement_vetoes{0};
  /// Armed migrations postponed behind a non-empty engine queue.
  std::atomic<std::uint64_t> placement_deferrals{0};
  /// Dominant windows ceded to home migration (single-hot-page pattern).
  std::atomic<std::uint64_t> placement_arbitrations{0};
  /// Home hints warmed into a migrating thread's destination cache.
  std::atomic<std::uint64_t> placement_hints_warmed{0};
  // ---- Origin failover (DsmConfig::origin_failover) ----
  /// Directory-mutation records shipped to the deputy (kDirReplicate).
  std::atomic<std::uint64_t> dir_mutations_replicated{0};
  /// kDirReplicate batches posted (records coalesce up to 16 per message).
  std::atomic<std::uint64_t> replication_batches{0};
  /// Pages whose only recoverable image was the deputy's replicated
  /// lease-journal copy, installed during the post-promotion rebuild.
  std::atomic<std::uint64_t> replica_journal_pages{0};
  /// Survivor page registrations confirmed by the promotion scavenge round.
  std::atomic<std::uint64_t> scavenge_pages_rebuilt{0};
  /// Mutation records still unflushed when the origin died — the
  /// replication lag the failover window exposed (those records are lost).
  std::atomic<std::uint64_t> replication_lag{0};
  /// Granted (non-retry) page transactions by serving home node — the
  /// per-home fault distribution the analysis report surfaces.
  std::array<std::atomic<std::uint64_t>, kMaxNodes> faults_by_home{};
  LatencyHistogram fault_latency;

  std::uint64_t total_faults() const {
    return read_faults.load() + write_faults.load();
  }
};

class Dsm {
 public:
  Dsm(net::Fabric& fabric, const DsmConfig& config, NodeLoad* node_load,
      prof::FaultTrace* trace);
  Dsm(const Dsm&) = delete;
  Dsm& operator=(const Dsm&) = delete;

  const DsmConfig& config() const { return config_; }

  /// The node currently playing the origin role. Equals config().origin
  /// until an origin_failover promotion installs the deputy; every
  /// origin-fallback ladder (hint-chase exhaustion, dead-target engine
  /// fallback, reclaim, lease recovery, VMA delegation) resolves through
  /// this instead of the static config value.
  NodeId current_origin() const {
    return current_origin_.load(std::memory_order_relaxed);
  }

  // ---- Address-space management (performed at origin; §III-D) ----
  /// Maps fresh zero pages; returns the global address.
  GAddr mmap(std::uint64_t length, std::uint8_t prot, std::string tag = "",
             GAddr hint = 0);
  /// Unmaps and eagerly broadcasts the shrink to all nodes.
  bool munmap(GAddr start, std::uint64_t length);
  /// Changes protection; downgrades broadcast eagerly, upgrades lazily.
  bool mprotect(GAddr start, std::uint64_t length, std::uint8_t prot);

  // ---- Data access (used by the core runtime's Mmu façade) ----
  /// Ensures `node` may perform `access` on the page containing `addr`,
  /// running the fault path as needed. Returns the node's PTE.
  Pte* ensure(NodeId node, TaskId task, GAddr addr, Access access);

  /// Bulk copy helpers; chunked per page, seqlock-validated reads and
  /// PTE-locked writes. Charge DRAM costs to the caller's virtual clock.
  void read(NodeId node, TaskId task, GAddr addr, void* dst, std::size_t len);
  void write(NodeId node, TaskId task, GAddr addr, const void* src,
             std::size_t len);

  /// Word atomics over distributed memory: exclusive ownership plus the
  /// PTE lock make them globally atomic. `addr` must not straddle a page.
  std::uint64_t atomic_fetch_add_u64(NodeId node, TaskId task, GAddr addr,
                                     std::uint64_t delta);
  std::uint64_t atomic_exchange_u64(NodeId node, TaskId task, GAddr addr,
                                    std::uint64_t desired);
  bool atomic_cas_u64(NodeId node, TaskId task, GAddr addr,
                      std::uint64_t expected, std::uint64_t desired);
  std::uint64_t atomic_load_u64(NodeId node, TaskId task, GAddr addr);
  void atomic_store_u64(NodeId node, TaskId task, GAddr addr,
                        std::uint64_t value);

  // ---- Introspection ----
  AddressSpace& origin_space() { return *spaces_[origin_index()]; }
  AddressSpace& replica_space(NodeId node) {
    return *spaces_[static_cast<std::size_t>(node)];
  }
  PageTable& page_table(NodeId node) {
    return *tables_[static_cast<std::size_t>(node)];
  }
  FaultTable& fault_table(NodeId node) {
    return *fault_tables_[static_cast<std::size_t>(node)];
  }
  Directory& directory() { return directory_; }
  FramePool& frame_pool(NodeId node) {
    return *pools_[static_cast<std::size_t>(node)];
  }
  /// Max frame-byte high-water across the nodes' pools (acceptance metric:
  /// must stay <= frame_budget_bytes when one is set).
  std::uint64_t frame_high_water_bytes() const;
  HomeHintCache& home_cache(NodeId node) {
    return *home_caches_[static_cast<std::size_t>(node)];
  }
  /// Current home of a page's directory entry (the origin until the entry
  /// exists or migrates). Used by data-placement probes and tests.
  NodeId home_of_page(GAddr page);
  DsmStats& stats() {
    // The spill counters live in the pools (the unspill happens inside
    // Pte::ensure_frame, which has no stats access); mirror them into the
    // stats gauges whenever a consumer snapshots.
    std::uint64_t out = 0;
    std::uint64_t in = 0;
    for (const auto& pool : pools_) {
      out += pool->spills_out();
      in += pool->spills_in();
    }
    stats_.spills_out.store(out, std::memory_order_relaxed);
    stats_.spills_in.store(in, std::memory_order_relaxed);
    // Latch counters live in the structures themselves (directory shards,
    // hint caches, fault tables); same mirror-at-snapshot idiom.
    std::uint64_t restarts = latch_restarts_.load(std::memory_order_relaxed) +
                             directory_.latch_restarts();
    std::uint64_t ft_contention = 0;
    for (const auto& cache : home_caches_) restarts += cache->restarts();
    for (const auto& table : fault_tables_) {
      ft_contention += table->contention();
    }
    stats_.latch_restarts.store(restarts, std::memory_order_relaxed);
    stats_.latch_upgrades.store(directory_.latch_upgrades(),
                                std::memory_order_relaxed);
    stats_.fault_table_contention.store(ft_contention,
                                        std::memory_order_relaxed);
    mirror_engine_stats();
    mirror_placement_stats();
    return stats_;
  }
  FailureStats& failure_stats() { return failure_stats_; }
  prof::FaultTrace* trace() { return trace_; }
  net::Fabric& fabric() { return fabric_; }

  /// Wires the async protocol engine in (Process owns it). Installs the
  /// frame-admission hooks — the pump thread admits each doorbell batch's
  /// summed frame needs before posting it — and routes leader faults,
  /// lease renewals and patrol eviction writebacks through the engine when
  /// DsmConfig::async_engine is set. Pass nullptr to detach.
  void set_engine(core::ProtocolEngine* engine);
  core::ProtocolEngine* engine() { return engine_; }

  /// Wires the thread-placement advisor in (Process owns it; nullptr when
  /// DsmConfig::auto_thread_migration is off). Every granted leader fault
  /// then also reports (thread, page, serving home) to the advisor from
  /// the requester side. Pass nullptr to detach.
  void set_placement(core::PlacementAdvisor* placement);
  core::PlacementAdvisor* placement() { return placement_; }

  /// Seeds `node`'s home-hint cache from the directory for `pages` (a
  /// migrating thread's recent working set), so the first post-arrival
  /// faults aim at the right homes instead of chasing kWrongHome redirects
  /// from cold slots. Epoch-fenced like any hint update. Returns the
  /// number of hints actually written.
  int warm_hints(NodeId node, const std::vector<GAddr>& pages);

  void set_stream_intensity(double intensity) {
    config_.stream_intensity = intensity;
  }

  // ---- Fabric handlers (routed by the cluster's dispatcher) ----
  net::Message handle_page_request(const net::Message& msg, Access access);
  /// K-contiguous-page read transaction: the primary page gets the full
  /// handle_page_request semantics (busy-retry, escalation); the extras are
  /// granted kShared opportunistically — only when their entry lock is free
  /// and nobody holds them exclusively — and their data rides one bulk
  /// transfer instead of K.
  net::Message handle_page_request_batch(const net::Message& msg);
  net::Message handle_revoke(const net::Message& msg);
  /// Owner-side half of a two-hop recall: downgrade/invalidate the local
  /// copy, push the page straight to the requester over the bulk path
  /// (Fabric::push_grant) and install it in the requester's PTE, then ack
  /// the origin off the critical path — with writeback data only when the
  /// origin's frame must be refreshed (shared downgrades). A failed push
  /// degrades to a classic full writeback in the (then on-path) reply.
  net::Message handle_forward_recall(const net::Message& msg);
  /// New-home side of a directory-entry hand-off. The old home keeps the
  /// entry locked for the whole exchange, so this only charges the install
  /// cost and seeds the local home hint; re-execution on a duplicate
  /// delivery converges (idempotent).
  net::Message handle_home_migrate(const net::Message& msg);
  net::Message handle_vma_request(const net::Message& msg);
  net::Message handle_vma_update(const net::Message& msg);
  /// Home-side half of a lease renewal: validates that the named owner
  /// still holds the named version exclusively, copies the piggybacked page
  /// image into the home frame as a journal entry (journal_ts = now), and
  /// extends the lease window. A stale renewal (owner or version lost the
  /// race to a recall) replies renewed=0 and the caller drops its lease.
  net::Message handle_lease_renew(const net::Message& msg);
  /// Home-side half of a kEvictPage eviction: validates the evictor's copy
  /// under the directory entry lock, retires it from the sharer set (for an
  /// exclusive copy: installs the piggybacked writeback as the
  /// authoritative home frame first, exactly like the lease journal), and
  /// fences + frees the evictor's PTE. Everything happens under the entry
  /// lock, so eviction serializes against recalls, forwarded grants and
  /// batch installs; a raced (stale) eviction fails closed.
  net::Message handle_evict_page(const net::Message& msg);
  /// Deputy-side half of directory replication: installs each record into
  /// the per-node replica store (version-monotonic, so a delayed duplicate
  /// cannot regress fresher state), erases replicas dropped by munmap, and
  /// mirrors mmap VMAs into the deputy's replica address space so a
  /// promoted deputy can serve VMA lookups without the dead origin.
  net::Message handle_dir_replicate(const net::Message& msg);
  /// Survivor-side half of the promotion rebuild: reports the PTE state
  /// this node holds for pages of the dead origin (cursor-paged), so the
  /// new origin can reconcile its replica against live copies.
  net::Message handle_scavenge(const net::Message& msg);

  /// Ships every pending directory-mutation record to the deputy in
  /// batched kDirReplicate messages (background engine transactions when
  /// the engine is on, single-attempt datagrams otherwise — a lost batch
  /// widens the replication lag, never blocks the protocol). Called from
  /// the membership pump via lease_patrol and from the fault-path tail;
  /// no-op when origin_failover is off or nothing is pending.
  void flush_replication();

  /// Origin-death promotion: pins implicitly-origin-homed entries to the
  /// dead node (so reclaim still finds them), elects the deputy (next
  /// surviving node id), swaps current_origin(), and runs the scavenge
  /// re-registration round against the survivors. Returns false when the
  /// knob is off or no survivor exists — the caller degrades gracefully
  /// instead of reclaiming. Idempotent: a second call for the same dead
  /// node is a no-op returning true.
  bool promote_origin(NodeId dead);

  /// Lease patrol (home-side sweep): recalls any expired remote-exclusive
  /// lease via a shared downgrade, so an idle owner's final writes reach
  /// the home frame within one lease window of their virtual time. Also
  /// GCs journal entries whose owner released (journal_bytes gauge).
  /// Called from the membership pump; also directly by tests. No-op when
  /// lease_ns == 0.
  void lease_patrol();

  /// Frame patrol: brings every node's pool back under its budget by
  /// running the eviction provider (CLOCK scan: drop cold shared replicas,
  /// write back cold exclusive copies, spill cold home frames). Called
  /// from the membership pump and the optional per-process patrol thread;
  /// also directly by tests. No-op when frame_budget_bytes == 0.
  void frame_patrol();

  /// Directory invariant check used by tests: every entry has either one
  /// exclusive owner that is its only sharer, or no owner and >= 0 sharers.
  bool check_invariants() const;

  /// Node-death recovery (graceful degradation): walks the directory and
  /// reclaims every page `dead` holds — a dead exclusive owner's dirty copy
  /// is lost (counted in FailureStats::dirty_pages_lost; the origin frame
  /// becomes authoritative again), dead sharers are dropped, the dead
  /// node's PTEs and VMA replica are wiped so a healed node refaults from
  /// scratch. Idempotent; also safe to run at heal time to sweep grants
  /// that raced the failure.
  void reclaim_node(NodeId dead);

 private:
  std::size_t origin_index() const {
    return static_cast<std::size_t>(current_origin());
  }

  /// How a home transaction was resolved, beyond the grant kind the
  /// requester sees. `forwarded` marks a two-hop recall (the requester's
  /// PTE was installed owner-side); `offpath_ns` is wire work the
  /// requester does not wait for (the owner->origin ack leg), folded into
  /// the entry's release timestamp so the NEXT conflicting transaction
  /// observes its completion.
  struct TransactOutcome {
    net::GrantKind kind = net::GrantKind::kRetry;
    bool forwarded = false;
    VirtNs offpath_ns = 0;
  };

  /// How recall_from_owner resolved the exclusive copy.
  enum class RecallResult {
    kWroteBack,  // classic: data landed in the origin frame (grant source)
    kForwarded,  // two-hop: data pushed owner->requester, PTE installed
    kOwnerLost,  // owner dead/unreachable: origin frame authoritative again
  };

  /// The home transaction: runs at the page's serving home with `entry` (the page's
  /// directory entry, pre-looked-up by the handler so the shard lock is
  /// taken exactly once per transaction) locked by the caller.
  TransactOutcome transact(NodeId requester, TaskId task, GAddr page,
                           Access access, std::uint64_t known_version,
                           DirEntry& entry);

  /// First-touch materialization of the anonymous zero page at the origin.
  /// Directory entry must be locked.
  void materialize_entry(DirEntry& entry, GAddr page);

  /// Pulls the current data out of `owner` (downgrading to shared or
  /// invalidating). Classic path installs it in the home frame; with
  /// forward_grants on and a usable `requester`, the owner instead pushes
  /// it straight to the requester (grant stamped with `grant_version`) and
  /// the off-path ack cost is reported via `offpath_ns`. Pass
  /// kInvalidNode as `requester` to force the classic recall (mprotect
  /// downgrades have no requester). Directory entry must be locked.
  RecallResult recall_from_owner(DirEntry& entry, GAddr page, bool downgrade,
                                 NodeId requester, std::uint64_t grant_version,
                                 VirtNs* offpath_ns);

  /// Invalidates `node`'s copy (no writeback — shared copies are clean).
  /// The revoke RPC originates at `from` (the serving home).
  void invalidate_copy(NodeId node, GAddr page, NodeId from,
                       TaskId requester_task);

  /// Revokes every shared copy except the requester's and the home's in
  /// one overlapped fan-out (Fabric::call_many). A leg that fails after the
  /// retry budget is treated as a dead-sharer reclaim: the copy is fenced
  /// locally and counted in DsmStats::revoke_failures, so the caller can
  /// clear the sharer set unconditionally. Directory entry must be locked.
  void revoke_sharers(DirEntry& entry, GAddr page, NodeId requester,
                      TaskId task);

  /// Origin-side fence of an unreachable sharer's copy: seq-bumped local
  /// invalidate of `node`'s PTE, mirroring what reclaim_node does for dead
  /// nodes, so a revoke RPC failure cannot leave a readable stale copy.
  void fence_copy(NodeId node, GAddr page);

  /// Installs `src` (the serving home's frame, shipped from `from`) into
  /// `node`'s frame with `state`.
  void install_copy(NodeId node, GAddr page, const std::uint8_t* src,
                    PageState state, std::uint64_t version, NodeId from);

  /// Sets the local PTE of `node` to `state` under lock (no data change).
  void set_state(NodeId node, GAddr page, PageState state,
                 std::uint64_t version);

  /// Resolves the entry's home: kInvalidNode (the default) means the
  /// current origin (the deputy after an origin_failover promotion).
  NodeId home_of(const DirEntry& entry) const {
    const NodeId home = entry.home.load(std::memory_order_relaxed);
    return home == kInvalidNode ? current_origin() : home;
  }

  /// Fault-locality bookkeeping + the hand-off itself. Called by the
  /// serving home after a successful (non-retry) transaction, with the
  /// entry still locked. When `requester` reaches the configured
  /// consecutive-fault run, the home offers the entry via kHomeMigrate;
  /// on RPC failure the entry simply stays where it is.
  void maybe_migrate_home(DirEntry& entry, GAddr page, NodeId requester,
                          TaskId task);

  /// Owner-side lease check on the write fast path: when this node holds
  /// `page` exclusively under an expired lease, renew it (piggybacking the
  /// current frame image) before the write proceeds. Best-effort — an
  /// unreachable home leaves the lease expired and the write goes ahead
  /// (the patrol or recovery settles it). No locks held across the RPC.
  void maybe_renew_lease(NodeId node, TaskId task, GAddr page, Pte& pte);

  /// Death-accounting helper: a dead/unreachable exclusive owner's dirty
  /// copy either recovers from the journaled home frame (lease writeback
  /// newer than the grant) or is genuinely lost. Entry must be locked.
  void account_owner_loss(DirEntry& entry, GAddr page);

  /// Journal gauge maintenance: every journal_ts set/clear funnels through
  /// these so DsmStats::journal_bytes tracks the live journaled footprint.
  /// Entry must be locked.
  void set_journal(DirEntry& entry);
  void clear_journal(DirEntry& entry);

  // ---- Bounded frames (DsmConfig::frame_budget_bytes) ----
  /// RAII admission credits held across one fault (see FramePool): drops
  /// whatever the installs did not consume, on every exit path.
  class FrameCredit {
   public:
    explicit FrameCredit(Dsm& dsm) : dsm_(dsm) {}
    ~FrameCredit() { release(); }
    FrameCredit(const FrameCredit&) = delete;
    FrameCredit& operator=(const FrameCredit&) = delete;
    /// Admits `pages` frames on `node`'s pool, evicting/backpressuring as
    /// needed. Idempotent per node (tops the credit up, never stacks).
    void admit(NodeId node, int pages);
    void release();

   private:
    Dsm& dsm_;
    std::vector<NodeId> nodes_;
  };

  /// Makes room for `pages` frames on `node`'s pool: reserve-or-evict in a
  /// bounded backpressure loop (RetryPolicy jitter between rounds). Called
  /// with no locks held.
  void admit_frames(NodeId node, int pages);

  /// One eviction sweep over `node`'s table: CLOCK scan from the pool's
  /// hand, skipping pinned and recently-referenced frames, freeing at
  /// least `target_bytes` if it can. Returns the bytes actually freed.
  /// Called with no locks held.
  std::size_t evict_frames(NodeId node, std::size_t target_bytes);

  /// Tries to retire one candidate frame; returns bytes freed (0 = skip).
  std::size_t evict_candidate(NodeId node, GAddr page, Pte& pte);

  /// Home-side candidate (node homes the page): the frame is the grant
  /// source and can only be parked in the cold tier. Entry locked.
  std::size_t evict_home_frame(NodeId node, GAddr page, Pte& pte,
                               DirEntry& entry);

  /// Fences `node`'s PTE like fence_copy and returns its frame (and any
  /// cold-tier image) to the node's pool. Used by the eviction handler and
  /// the discard paths whose bytes must actually come back.
  void fence_and_free(NodeId node, GAddr page);

  /// Grant-time recheck for the ownership-only fast path: the wire's
  /// known_version was snapshotted before the request, so an eviction that
  /// raced it may have retired the copy since. Re-reads the requester's
  /// PTE under its lock (evictions fence the version there under the same
  /// lock). With no budget this always agrees with the wire value.
  bool copy_current(NodeId node, GAddr page, std::uint64_t version);

  /// Fault-time VMA legitimacy check with on-demand synchronization.
  Vma check_vma(NodeId node, GAddr addr, Access access);

  void record_fault(NodeId node, TaskId task, GAddr addr,
                    prof::FaultKind kind, const char* tag);

  /// The leader's fault-handling body.
  void handle_fault_as_leader(NodeId node, TaskId task, GAddr page,
                              Access access, Pte& pte);

  /// Whether the async engine drives this fault/renewal/eviction.
  bool engine_on() const {
    return config_.async_engine && engine_ != nullptr;
  }

  // ---- Async protocol engine (DsmConfig::async_engine) ----
  /// The leader fault's retry loop as an engine transaction: the same
  /// protocol decisions as the blocking loop (wrong-home chase, retry
  /// backoff + blocking escalation, dead-target fallback to the origin),
  /// expressed as a resume closure over a heap-held state struct so the
  /// transaction survives suspension while siblings share the pump's
  /// doorbell batches. Any stride-prefetch extras are split off as a
  /// fire-and-forget background batch transaction rather than riding the
  /// primary (they are opportunistic either way). Throws the blocking
  /// path's exceptions (NodeDeadError / RpcError) on terminal failure.
  void fault_via_engine(NodeId node, TaskId task, GAddr page, Access access,
                        Pte& pte, int extras, const Vma& vma);

  /// Arms a prefetch stream at `first_page`: submits the first
  /// kPrefetchStreamInflight ladder windows at once, so the stream's wire
  /// legs overlap from the start instead of chaining serially. Engine
  /// mode only; the blocking path keeps extras on the primary.
  void arm_prefetch_stream(NodeId node, TaskId task, GAddr first_page,
                           NodeId target, GAddr limit,
                           const std::string& tag);

  /// One stride-prefetch window [start_page, start_page + count) as a
  /// fire-and-forget background batch transaction — one rung of a
  /// stream's ladder. When the whole window is granted, the resume
  /// submits the window kPrefetchStreamInflight rungs ahead (fixed
  /// spacing, clamped to `ladder_end`), keeping that many round trips of
  /// one stream in flight at once; a tail rung parks the stride detector
  /// at `ladder_end` so the consumer's demand fault there re-arms the
  /// stream. The software analogue of a runahead streamer.
  void submit_prefetch_window(NodeId node, TaskId task, GAddr start_page,
                              int count, NodeId target, GAddr ladder_end,
                              std::string tag);

  /// maybe_renew_lease's RPC leg as a background engine transaction: the
  /// snapshot happens synchronously under the PTE lock, the renewal rides
  /// the engine, and the ack (renewed or stale) is applied in the resume —
  /// the write that triggered the renewal proceeds without waiting.
  void renew_lease_via_engine(NodeId node, TaskId task, GAddr page, Pte& pte,
                              std::uint64_t version,
                              const std::uint8_t* image);

  /// Patrol eviction via the engine: one CLOCK sweep that classifies and
  /// snapshots candidates synchronously (local frees stay synchronous) but
  /// submits the kEvictPage writebacks as background transactions, then
  /// drains the node's queue — evictions to the same home coalesce into
  /// doorbell batches. Only used by the patrol; the allocation-pressure
  /// path keeps the synchronous evict_frames (its caller owns the credit).
  void patrol_evict_via_engine(NodeId node, std::size_t target_bytes);

  /// Mirrors EngineStats + the fabric's doorbell counters into DsmStats
  /// (stats() snapshot idiom).
  void mirror_engine_stats();

  /// Mirrors PlacementStats into DsmStats (same snapshot idiom).
  void mirror_placement_stats();

  /// Requester-side placement feed: no-op unless an advisor is attached.
  void note_placement_fault(NodeId node, TaskId task, GAddr page,
                            NodeId home);

  // ---- Origin failover (DsmConfig::origin_failover) ----
  /// One queued directory-mutation record; kJournal records carry the
  /// kPageSize lease-writeback image alongside.
  struct PendingReplication {
    net::DirReplicateRecord record;
    std::vector<std::uint8_t> image;
  };

  /// Deputy-side replica of one directory entry: version-monotonic
  /// metadata plus (when a kJournal record arrived) the last replicated
  /// lease-writeback image and the exclusive-grant version it is good for.
  struct ReplicaRecord {
    std::uint64_t version = 0;
    NodeId owner = kInvalidNode;
    NodeId home = kInvalidNode;
    std::uint64_t home_epoch = 0;
    std::uint64_t sharers = 0;
    std::uint64_t image_version = 0;
    std::vector<std::uint8_t> image;  // empty = no journal image held
  };

  struct ReplicaStore {
    std::mutex mu;
    std::unordered_map<GAddr, ReplicaRecord> pages;
  };

  /// Whether a mutation performed at `at` must be captured for the deputy:
  /// knob on, a deputy can exist, and the mutation happened at the node
  /// currently playing the origin.
  bool replicating(NodeId at) const {
    return config_.origin_failover && config_.num_nodes > 1 &&
           at == current_origin();
  }

  /// Capture helpers: enqueue-only (the caller typically holds the entry
  /// latch; the actual send happens in flush_replication with no protocol
  /// locks held). Entry must be locked for the entry/journal variants.
  void record_entry_replication(const DirEntry& entry, GAddr page);
  void record_erase_replication(GAddr page);
  void record_vma_replication(GAddr start, std::uint64_t length,
                              std::uint8_t prot);
  void record_journal_replication(const DirEntry& entry, GAddr page,
                                  const std::uint8_t* image);

  /// Flushes when the pending buffer crossed the batching threshold
  /// (called from the fault-path tail; cheap relaxed check when idle).
  void maybe_flush_replication();

  /// The deterministic deputy: the next surviving node id after the
  /// current origin (wrapping), or kInvalidNode when no survivor exists.
  NodeId replication_deputy() const;

  /// Owner re-registration round of the rebuild: the promoted deputy asks
  /// every survivor for its resident (page, version, state) tuples and
  /// folds anything newer than the replica into the store. Best effort —
  /// an unreachable survivor re-registers through its next fault.
  void scavenge_survivors(NodeId dead, NodeId deputy);

  /// Installs the replica's journal image for `page` into `at`'s frame iff
  /// the store holds one at exactly `version`. Returns false (and touches
  /// nothing) otherwise; counts replica_journal_pages on success.
  bool restore_from_replica(NodeId at, GAddr page, std::uint64_t version);

  /// Known-version probe for an outgoing fault request: with optimistic
  /// latching, a seqcount-validated read that skips the PTE spinlock
  /// (restarts counted); otherwise the seed locked read. A stale value is
  /// protocol-safe either way — the home re-validates at grant time.
  std::uint64_t read_known_version(Pte& pte) {
    if (config_.optimistic_latching) {
      std::uint64_t version;
      if (pte.try_read_version(version)) return version;
      latch_restarts_.fetch_add(1, std::memory_order_relaxed);
    }
    pte.lock.lock();
    const std::uint64_t version =
        pte.version.load(std::memory_order_relaxed);
    pte.lock.unlock();
    return version;
  }

  net::Fabric& fabric_;
  DsmConfig config_;
  NodeLoad* node_load_;
  prof::FaultTrace* trace_;
  /// Owned by the Process (constructed only when async_engine is on).
  core::ProtocolEngine* engine_ = nullptr;
  /// Owned by the Process (constructed only when auto_thread_migration is
  /// on); fed from the leader-fault success paths.
  core::PlacementAdvisor* placement_ = nullptr;

  std::vector<std::unique_ptr<AddressSpace>> spaces_;
  /// Declared before tables_: PTE teardown returns frames to the pools.
  std::vector<std::unique_ptr<FramePool>> pools_;
  std::vector<std::unique_ptr<PageTable>> tables_;
  std::vector<std::unique_ptr<FaultTable>> fault_tables_;
  StridePrefetcher prefetcher_;
  /// One hint cache per node: each node's local guess at where pages'
  /// directory entries live (see mem/home_cache.h).
  std::vector<std::unique_ptr<HomeHintCache>> home_caches_;
  Directory directory_;
  /// Optimistic restarts observed on Dsm-side probes (PTE known-version
  /// reads, entry-latch home probes); the structure-side restarts live in
  /// the directory/hint caches and are summed at stats() snapshot.
  std::atomic<std::uint64_t> latch_restarts_{0};
  DsmStats stats_;
  FailureStats failure_stats_;
  /// The node currently playing the origin role; config_.origin until an
  /// origin_failover promotion swaps in the deputy. Atomic because const
  /// probe paths (home_of, origin_index) read it concurrently with the
  /// (rare, failure-time) promotion store.
  std::atomic<NodeId> current_origin_{0};
  /// Pending directory-mutation records awaiting a kDirReplicate flush.
  std::mutex repl_mu_;
  std::vector<PendingReplication> repl_pending_;
  /// Per-node replica stores (indexed by the node acting as deputy).
  std::vector<std::unique_ptr<ReplicaStore>> replica_stores_;
};

}  // namespace dex::mem
