// Per-task sequential-stride detection for the read-fault path.
//
// The paper's protocol moves exactly one 4 KB page per transaction, so a
// streaming scan pays a full round trip per page. A tiny per-task stream
// detector — the software analogue of a next-line prefetcher — watches the
// sequence of read-faulting pages: once a task has faulted on `kTriggerRun`
// consecutive pages, the fault handler asks the origin for up to
// DsmConfig::prefetch_max_pages contiguous pages in one kPageRequestBatch
// transaction instead of one. Detection is requester-side only and purely
// advisory: the origin grants extras only when the directory shows them
// grantable as kShared without stealing exclusivity (see
// Dsm::handle_page_request_batch), and a write fault never widens.
#pragma once

#include <unordered_map>

#include "common/spinlock.h"
#include "common/types.h"

namespace dex::mem {

class StridePrefetcher {
 public:
  /// Consecutive ascending page faults required before batching kicks in;
  /// below this, a scan is indistinguishable from pointer chasing and a
  /// speculative batch would mostly fetch waste.
  static constexpr int kTriggerRun = 3;

  /// Feeds one demand read fault of `task` at page-aligned `page` into the
  /// detector. Returns how many extra contiguous pages (0..max_extras) the
  /// fault handler should request beyond the faulting page.
  int on_read_fault(TaskId task, GAddr page, int max_extras) {
    Shard& shard = shard_for(task);
    shard.lock.lock();
    Stream& stream = shard.streams[task];
    if (page == stream.next_expected && stream.run > 0) {
      ++stream.run;
    } else {
      stream.run = 1;
    }
    const int extras =
        (stream.run >= kTriggerRun && max_extras > 0) ? max_extras : 0;
    // The batch (if granted) covers [page, page + extras]; the stream stays
    // sequential if the task next faults just past that window.
    stream.next_expected =
        page + static_cast<GAddr>(1 + extras) * kPageSize;
    shard.lock.unlock();
    return extras;
  }

  /// A chained engine stream parked at `page`, its next unfetched address
  /// (it reached its runahead distance): prime the detector so the demand
  /// fault that lands there resumes batching immediately instead of
  /// re-proving the stride over kTriggerRun faults.
  void park(TaskId task, GAddr page) {
    Shard& shard = shard_for(task);
    shard.lock.lock();
    Stream& stream = shard.streams[task];
    stream.next_expected = page;
    stream.run = kTriggerRun;
    shard.lock.unlock();
  }

  /// Forgets every stream whose next expected page falls in [start, end).
  /// Wired from Dsm::munmap: stride state learned on a region must not
  /// survive its unmapping, or a future mapping of the same addresses
  /// starts life with a hot run and fires a bogus batch request on its
  /// very first fault.
  void reset(GAddr start, GAddr end) {
    for (Shard& shard : shards_) {
      shard.lock.lock();
      for (auto it = shard.streams.begin(); it != shard.streams.end();) {
        if (it->second.next_expected >= start &&
            it->second.next_expected < end) {
          it = shard.streams.erase(it);
        } else {
          ++it;
        }
      }
      shard.lock.unlock();
    }
  }

 private:
  struct Stream {
    GAddr next_expected = 0;
    int run = 0;
  };
  struct Shard {
    Spinlock lock;
    std::unordered_map<TaskId, Stream> streams;
  };
  static constexpr std::size_t kShards = 16;
  Shard& shard_for(TaskId task) {
    return shards_[static_cast<std::size_t>(task) % kShards];
  }

  Shard shards_[kShards];
};

}  // namespace dex::mem
