// Virtual memory areas (§III-D).
//
// Linux manages memory at two levels: VMAs describe ranges (permissions,
// backing, tags), PTEs describe per-page state. DeX keeps the authoritative
// VMA list at the origin; remote nodes hold lazily synchronized replicas.
// This file implements the VMA level for both roles.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace dex::mem {

/// VMA / PTE protection bits (subset of PROT_*).
enum Prot : std::uint8_t {
  kProtNone = 0,
  kProtRead = 1,
  kProtWrite = 2,
  kProtReadWrite = kProtRead | kProtWrite,
};

struct Vma {
  GAddr start = 0;
  GAddr end = 0;  // exclusive
  std::uint8_t prot = kProtNone;
  /// User-supplied tag (allocation site); flows into the fault trace as the
  /// paper's "user-specified identifier for tagging individual pieces of
  /// the application".
  std::string tag;

  bool contains(GAddr a) const { return a >= start && a < end; }
  std::uint64_t length() const { return end - start; }
};

/// Plain-old-data VMA record used on the wire for on-demand sync and eager
/// shrink/downgrade broadcasts.
struct VmaRecord {
  GAddr start;
  GAddr end;
  std::uint8_t prot;
  std::uint8_t valid;  // 0 in replies for illegal addresses
  char tag[38];
};
static_assert(sizeof(VmaRecord) <= 64);

VmaRecord to_record(const Vma& vma);
Vma from_record(const VmaRecord& record);

/// An ordered collection of non-overlapping VMAs with mmap/munmap/mprotect
/// semantics. Thread-safe. Used both as the origin's authoritative space
/// and as each remote node's partial replica.
class AddressSpace {
 public:
  /// The virtual address range managed for applications. Starts above 0 so
  /// kNullGAddr is never mapped.
  static constexpr GAddr kBase = 0x0000'1000'0000ULL;
  static constexpr GAddr kLimit = 0x7fff'0000'0000ULL;

  /// Maps `length` bytes (rounded up to pages). With hint==0 the space
  /// allocates top-down from a bump cursor like mmap without MAP_FIXED.
  /// Returns kNullGAddr on exhaustion or overlap with an existing mapping.
  GAddr mmap(std::uint64_t length, std::uint8_t prot, std::string tag = "",
             GAddr hint = 0);

  /// Unmaps [start, start+length); splits partially covered VMAs. Returns
  /// false when the range touches no mapping.
  bool munmap(GAddr start, std::uint64_t length);

  /// Changes protection over [start, start+length); splits as needed.
  bool mprotect(GAddr start, std::uint64_t length, std::uint8_t prot);

  /// Inserts a replica VMA received from the origin (remote side of
  /// on-demand sync). Overwrites any overlapping stale replica entries.
  void install_replica(const Vma& vma);

  /// Drops every mapping. Used on node-failure recovery to wipe a dead
  /// node's replica space so a healed node re-syncs on demand; never
  /// called on the origin's authoritative space.
  void clear();

  std::optional<Vma> find(GAddr addr) const;
  std::vector<Vma> snapshot() const;
  std::size_t vma_count() const;
  /// Monotonic counter bumped by every mutation; used by tests and stats.
  std::uint64_t version() const;

 private:
  GAddr find_free_range_locked(std::uint64_t length) const;
  void carve_locked(GAddr start, GAddr end);

  mutable std::shared_mutex mu_;
  std::map<GAddr, Vma> vmas_;  // keyed by start
  GAddr cursor_ = kBase;
  std::uint64_t version_ = 0;
};

}  // namespace dex::mem
