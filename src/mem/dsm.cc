#include "mem/dsm.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <sstream>
#include <thread>

#include "common/assert.h"
#include "common/time_gate.h"
#include "common/virtual_clock.h"
#include "core/engine.h"
#include "core/placement.h"
#include "net/rpc_error.h"

namespace dex::mem {

using net::GrantKind;
using net::Message;
using net::MsgType;

std::string SegfaultError::describe(GAddr addr, Access access) {
  std::ostringstream os;
  os << "segmentation fault: illegal " << to_string(access) << " at 0x"
     << std::hex << addr;
  return os.str();
}

std::string OriginDeadError::describe(NodeId dead) {
  std::ostringstream os;
  os << "origin node " << static_cast<int>(dead)
     << " died with no failover path (origin_failover off or no survivor)";
  return os.str();
}

Dsm::Dsm(net::Fabric& fabric, const DsmConfig& config, NodeLoad* node_load,
         prof::FaultTrace* trace)
    : fabric_(fabric),
      config_(config),
      node_load_(node_load),
      trace_(trace),
      directory_(config.dir_shards, config.optimistic_latching) {
  DEX_CHECK(config.num_nodes >= 1 && config.num_nodes <= kMaxNodes);
  DEX_CHECK(config.origin >= 0 && config.origin < config.num_nodes);
  DEX_CHECK(config.dir_shards >= 1);
  current_origin_.store(config.origin, std::memory_order_relaxed);
  if (config.origin_failover) {
    replica_stores_.reserve(static_cast<std::size_t>(config.num_nodes));
    for (int i = 0; i < config.num_nodes; ++i) {
      replica_stores_.push_back(std::make_unique<ReplicaStore>());
    }
  }
  spaces_.reserve(static_cast<std::size_t>(config.num_nodes));
  pools_.reserve(static_cast<std::size_t>(config.num_nodes));
  tables_.reserve(static_cast<std::size_t>(config.num_nodes));
  fault_tables_.reserve(static_cast<std::size_t>(config.num_nodes));
  home_caches_.reserve(static_cast<std::size_t>(config.num_nodes));
  for (int i = 0; i < config.num_nodes; ++i) {
    spaces_.push_back(std::make_unique<AddressSpace>());
    pools_.push_back(std::make_unique<FramePool>(
        config.frame_budget_bytes, config.spill_cold_pages,
        fabric.cost().spill_write_ns, fabric.cost().spill_read_ns));
    tables_.push_back(std::make_unique<PageTable>(pools_.back().get()));
    // One global table per node (the seed layout) with the knob off;
    // 64-way sharded with it on. The hint caches likewise switch their
    // lookups to seqcount-validated optimistic reads.
    fault_tables_.push_back(std::make_unique<FaultTable>(
        config.optimistic_latching ? FaultTable::kShards : 1));
    home_caches_.push_back(std::make_unique<HomeHintCache>(
        HomeHintCache::kDefaultSlots, config.optimistic_latching));
  }
}

std::uint64_t Dsm::frame_high_water_bytes() const {
  std::uint64_t peak = 0;
  for (const auto& pool : pools_) {
    peak = std::max<std::uint64_t>(peak, pool->high_water_bytes());
  }
  return peak;
}

NodeId Dsm::home_of_page(GAddr page) {
  DirEntry* entry = directory_.find(page_base(page));
  if (entry == nullptr) return current_origin();
  if (config_.optimistic_latching) {
    // Optimistic probe: `home` is atomic and validated against the entry
    // latch version, so placement queries never queue behind an in-flight
    // transaction. Non-blocking — a latch held across an RPC fails the
    // guard immediately and we fall through to the pessimistic acquire.
    for (int attempt = 0; attempt < Directory::kOptimisticAttempts;
         ++attempt) {
      GuardO guard(entry->latch, GuardO::kNonBlocking);
      if (!guard.engaged()) break;
      const NodeId home = entry->home.load(std::memory_order_relaxed);
      if (guard.validate()) {
        return home == kInvalidNode ? current_origin() : home;
      }
      latch_restarts_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ScopedGateBlock gate_block("home_probe_entry_lock");
  std::lock_guard<HybridLatch> lock(entry->latch);
  return home_of(*entry);
}

// ---------------------------------------------------------------------------
// VMA management (§III-D). These entry points run "at the origin": the core
// runtime delegates calls from remote threads before reaching here.
// ---------------------------------------------------------------------------

GAddr Dsm::mmap(std::uint64_t length, std::uint8_t prot, std::string tag,
                GAddr hint) {
  // Permissive operation: no eager synchronization; remotes pull the VMA on
  // demand at fault time. The deputy is the exception: a promoted deputy
  // must serve VMA lookups with the origin dead, so the mapping itself is
  // replicated (batched, off the fault path).
  const GAddr addr = origin_space().mmap(length, prot, std::move(tag), hint);
  if (addr != kNullGAddr) record_vma_replication(addr, length, prot);
  return addr;
}

bool Dsm::munmap(GAddr start, std::uint64_t length) {
  if (!origin_space().munmap(start, length)) return false;
  const GAddr end = page_base(start + length + kPageSize - 1);

  // Shrinking operation: broadcast eagerly so remotes cannot keep accessing
  // the dead range (§III-D). The fan-out overlaps: the unmapper pays
  // max(leg latencies), not one round per node.
  net::VmaUpdatePayload update{config_.process_id, start, end, 0, /*op=*/0};
  std::vector<Message> broadcast;
  for (NodeId node = 0; node < config_.num_nodes; ++node) {
    if (node == current_origin()) continue;
    replica_space(node).munmap(start, length);
    Message msg;
    msg.type = MsgType::kVmaUpdate;
    msg.dst = node;
    msg.set_payload(update);
    broadcast.push_back(std::move(msg));
  }
  fabric_.post_many(current_origin(), broadcast);

  // Retire every page in the range: invalidate all copies — returning
  // every node's frame (and cold-tier image) to its pool; a dead range
  // holding memory is exactly the leak the frame budget exists to rule
  // out — and reset the directory entries so a later mapping of the range
  // starts from zeros.
  for (GAddr page = page_base(start); page < end; page += kPageSize) {
    DirEntry* entry = directory_.find(page);
    if (entry == nullptr) continue;
    ScopedGateBlock gate_block("vma_entry_lock");
    std::lock_guard<HybridLatch> lock(entry->latch);
    for (NodeId node = 0; node < config_.num_nodes; ++node) {
      Pte* pte = page_table(node).find(page);
      if (pte == nullptr) continue;
      pte->lock.lock();
      pte->seq.fetch_add(1, std::memory_order_acq_rel);
      pte->state.store(PageState::kInvalid, std::memory_order_release);
      pte->version = kNoVersion;
      pte->drop_spill();
      pte->drop_frame();
      pte->seq.fetch_add(1, std::memory_order_release);
      pte->lock.unlock();
    }
    entry->sharers.clear();
    entry->exclusive_owner = kInvalidNode;
    entry->materialized = false;
    entry->lease_until = 0;
    clear_journal(*entry);
    ++entry->version;
    // The home returns to the origin with the rest of the entry state; the
    // epoch bump fences any hint minted for the old mapping.
    entry->home = kInvalidNode;
    ++entry->home_epoch;
    entry->hot_node = kInvalidNode;
    entry->hot_run = 0;
    // A replica record for the old mapping must not alias a future mapping
    // of the same address: the erase is a staleness fence at the deputy.
    record_erase_replication(page);
  }

  // Stride state learned on the dead range must not survive into a future
  // mapping of the same addresses (it would fire bogus batch requests on
  // the fresh zero pages); home hints for the range die with the entries.
  prefetcher_.reset(page_base(start), end);
  for (auto& cache : home_caches_) cache->invalidate_range(start, end);
  return true;
}

bool Dsm::mprotect(GAddr start, std::uint64_t length, std::uint8_t prot) {
  if (!origin_space().mprotect(start, length, prot)) return false;
  const GAddr end = page_base(start + length + kPageSize - 1);

  const bool downgrade_write = (prot & kProtWrite) == 0;
  net::VmaUpdatePayload update{config_.process_id, start, end, prot,
                               /*op=*/1};
  std::vector<Message> broadcast;
  for (NodeId node = 0; node < config_.num_nodes; ++node) {
    if (node == current_origin()) continue;
    if (!downgrade_write) continue;  // permissive changes sync on demand
    Message msg;
    msg.type = MsgType::kVmaUpdate;
    msg.dst = node;
    msg.set_payload(update);
    broadcast.push_back(std::move(msg));
  }
  fabric_.post_many(current_origin(), broadcast);

  if (downgrade_write) {
    // Demote exclusive copies so future writes re-fault and hit the VMA
    // permission check.
    for (GAddr page = page_base(start); page < end; page += kPageSize) {
      DirEntry* entry = directory_.find(page);
      if (entry == nullptr) continue;
      ScopedGateBlock gate_block("dir_escalation");
      std::lock_guard<HybridLatch> lock(entry->latch);
      if (entry->exclusive_owner != kInvalidNode) {
        const NodeId home = home_of(*entry);
        if (entry->exclusive_owner == home) {
          set_state(home, page, PageState::kShared, entry->version);
          entry->sharers.add(home);
        } else {
          // No requester to forward to: a protection downgrade always pulls
          // the data back to the home frame (the authoritative one).
          recall_from_owner(*entry, page, /*downgrade=*/true, kInvalidNode,
                            entry->version, nullptr);
        }
        entry->exclusive_owner = kInvalidNode;
        entry->lease_until = 0;
        clear_journal(*entry);
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Fault path (requester side, §III-C)
// ---------------------------------------------------------------------------

namespace {
bool sufficient(PageState state, Access access) {
  return state == PageState::kExclusive ||
         (access == Access::kRead && state == PageState::kShared);
}
}  // namespace

Pte* Dsm::ensure(NodeId node, TaskId task, GAddr addr, Access access) {
  const GAddr page = page_base(addr);
  Pte& pte = page_table(node).get_or_create(page);
  const net::CostModel& cost = fabric_.cost();

  for (;;) {
    if (sufficient(pte.state.load(std::memory_order_acquire), access)) {
      // First demand access to a page the stride prefetcher pulled in
      // ahead of time: the prefetch paid for itself.
      if (pte.prefetched.load(std::memory_order_relaxed) != 0 &&
          pte.prefetched.exchange(0, std::memory_order_relaxed) != 0) {
        stats_.prefetch_hits.fetch_add(1, std::memory_order_relaxed);
      }
      // First touch of a freshly delivered copy joins its arrival time —
      // the bytes cannot be read before the wire shipped them. No-op when
      // this thread's own fault installed the copy.
      if (pte.install_ts.load(std::memory_order_relaxed) != 0) {
        const VirtNs arrived =
            pte.install_ts.exchange(0, std::memory_order_relaxed);
        if (arrived != 0) vclock::observe(arrived);
      }
      if (config_.frame_budget_bytes != 0) {
        pte.referenced.store(1, std::memory_order_relaxed);
      }
      return &pte;
    }
    // --- page fault ---
    vclock::advance(cost.fault_entry_ns);
    if (access == Access::kRead) {
      stats_.read_faults.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.write_faults.fetch_add(1, std::memory_order_relaxed);
    }

    if (config_.coalesce_faults) {
      FaultTable::Join join = fault_table(node).join(page, access);
      if (!join.is_leader) {
        // Follower: the leader already installed the PTE; resume (§III-C).
        vclock::observe(join.completion_ts);
        vclock::advance(cost.follower_wakeup_ns);
        record_fault(node, task, addr,
                     access == Access::kRead ? prof::FaultKind::kRead
                                             : prof::FaultKind::kWrite,
                     nullptr);
        continue;
      }
      try {
        handle_fault_as_leader(node, task, page, access, pte);
      } catch (...) {
        fault_table(node).complete(join, page, access, vclock::now());
        throw;
      }
      fault_table(node).complete(join, page, access, vclock::now());
    } else {
      handle_fault_as_leader(node, task, page, access, pte);
    }
  }
}

void Dsm::handle_fault_as_leader(NodeId node, TaskId task, GAddr page,
                                 Access access, Pte& pte) {
  const net::CostModel& cost = fabric_.cost();
  const VirtNs start = vclock::now();

  // Pin the faulting PTE for the whole transaction so the eviction scan
  // cannot retire the freshly installed frame before the faulting access
  // consumes it (a pathological budget could otherwise livelock a reader).
  PinGuard pin(pte);
  // Admission credits for the frames this fault may install (released at
  // every exit; see FramePool) — this is where budget pressure bites,
  // with no locks held.
  FrameCredit credit(*this);

  const Vma vma = check_vma(node, page, access);
  record_fault(node, task, page,
               access == Access::kRead ? prof::FaultKind::kRead
                                       : prof::FaultKind::kWrite,
               vma.tag.c_str());
  if (node != current_origin()) {
    stats_.remote_faults.fetch_add(1, std::memory_order_relaxed);
  }

  // Stride prefetch (remote read faults only — a write fault never widens,
  // and the origin's faults are local): once the detector sees a streaming
  // scan, widen the request to `extras` contiguous pages, clamped to the
  // VMA so the batch cannot cross into unmapped space.
  int extras = 0;
  if (access == Access::kRead && node != current_origin() &&
      config_.prefetch_max_pages > 0) {
    int max_extras =
        std::min(config_.prefetch_max_pages, net::kMaxBatchPages - 1);
    const GAddr last_page = page_base(vma.end - 1);
    const auto pages_ahead =
        static_cast<std::int64_t>((last_page - page) >> kPageShift);
    max_extras = static_cast<int>(
        std::min<std::int64_t>(max_extras, pages_ahead));
    extras = prefetcher_.on_read_fault(task, page, max_extras);
  }

  if (engine_on()) {
    // Engine path: the same protocol decisions as the blocking loop below,
    // expressed as a resumable transaction — this thread parks instead of
    // owning the wire round-trips, so N faulters no longer bound the
    // node's in-flight protocol work at N. No FrameCredit here: the pump
    // admits each doorbell batch's summed needs in its own thread (the
    // handlers run there and consume that thread's credits).
    fault_via_engine(node, task, page, access, pte, extras, vma);
    vclock::advance(cost.pte_update_ns);
    stats_.fault_latency.record(vclock::now() - start);
    maybe_flush_replication();
    return;
  }

  net::PageRequestPayload request{};
  request.process_id = config_.process_id;
  request.page = page;
  request.task = task;
  request.blocking = 0;

  net::PageBatchRequestPayload batch{};
  batch.process_id = config_.process_id;
  batch.start_page = page;
  batch.task = task;
  batch.count = static_cast<std::uint32_t>(1 + extras);
  batch.blocking = 0;

  // Hint-directed routing: with home migration on, the request goes
  // straight to the node the hint cache believes homes the page (default:
  // the origin). A stale hint is corrected by kWrongHome redirects, chased
  // up to kMaxHomeChase hops before falling back to the origin — whose
  // redirect is authoritative, so the chain is bounded.
  NodeId target = current_origin();
  if (config_.home_migration) {
    const HomeHintCache::Hint hint = home_cache(node).lookup(page);
    if (hint.valid) target = hint.home;
  }
  int bounces = 0;
  int attempts = 0;
  for (;;) {
    // The fault installs up to 1 + extras frames on this node and may
    // materialize as many home frames at the target; admit both pools
    // before the transaction (re-admitted when a redirect moves the
    // target). Handlers run synchronously in this thread, so their
    // allocations consume exactly these credits.
    credit.admit(node, 1 + extras);
    if (target != node) credit.admit(target, 1 + extras);

    Message msg;
    msg.dst = target;
    if (extras > 0) {
      for (std::uint32_t i = 0; i < batch.count; ++i) {
        Pte* known = page_table(node).find(page + i * kPageSize);
        if (known != nullptr) {
          batch.known_versions[i] = read_known_version(*known);
        } else {
          batch.known_versions[i] = kNoVersion;
        }
      }
      msg.type = MsgType::kPageRequestBatch;
      msg.set_payload(batch);
    } else {
      request.known_version = read_known_version(pte);
      msg.type = access == Access::kRead ? MsgType::kPageRequestRead
                                         : MsgType::kPageRequestWrite;
      msg.set_payload(request);
    }
    Message reply;
    try {
      reply = fabric_.call(node, msg);
    } catch (const net::NodeDeadError&) {
      if (target == current_origin()) throw;
      // The hinted home died. The origin reclaims dead homes, so fall
      // back to it; the stale hint dies here rather than via a redirect.
      home_cache(node).invalidate_range(page, page + kPageSize);
      stats_.wrong_home_bounces.fetch_add(1, std::memory_order_relaxed);
      if (++bounces == 1) {
        stats_.home_chases.fetch_add(1, std::memory_order_relaxed);
      }
      target = current_origin();
      continue;
    }
    GrantKind kind;
    VirtNs last_writer_ts;
    NodeId grant_home = current_origin();
    std::uint64_t grant_epoch = 0;
    if (extras > 0) {
      const auto grant = reply.payload_as<net::PageBatchGrantPayload>();
      kind = grant.kind;
      last_writer_ts = grant.last_writer_ts;
      grant_home = grant.home;
      grant_epoch = grant.home_epoch;
      if (kind != GrantKind::kRetry && kind != GrantKind::kWrongHome) {
        const auto granted_extras = static_cast<std::uint64_t>(
            __builtin_popcount(grant.granted_mask >> 1));
        stats_.prefetch_issued.fetch_add(static_cast<std::uint64_t>(extras),
                                         std::memory_order_relaxed);
        stats_.prefetch_grants.fetch_add(granted_extras,
                                         std::memory_order_relaxed);
        if (trace_ != nullptr && trace_->enabled()) {
          for (int i = 1; i <= extras; ++i) {
            if (grant.granted_mask & (1u << i)) {
              record_fault(node, task, page + static_cast<GAddr>(i) * kPageSize,
                           prof::FaultKind::kPrefetch, vma.tag.c_str());
            }
          }
        }
      }
    } else {
      const auto grant = reply.payload_as<net::PageGrantPayload>();
      kind = grant.kind;
      last_writer_ts = grant.last_writer_ts;
      grant_home = grant.home;
      grant_epoch = grant.home_epoch;
    }
    if (kind == GrantKind::kWrongHome) {
      // Stale hint: the node we asked does not home the page. Learn its
      // guess and chase it; after kMaxHomeChase hops give up on hints and
      // ask the origin, whose answer is authoritative.
      stats_.wrong_home_bounces.fetch_add(1, std::memory_order_relaxed);
      if (++bounces == 1) {
        stats_.home_chases.fetch_add(1, std::memory_order_relaxed);
      }
      home_cache(node).update(page, grant_home, grant_epoch);
      const bool authoritative = target == current_origin();
      if (!authoritative && bounces >= kMaxHomeChase) {
        target = current_origin();
      } else {
        target = grant_home;
      }
      continue;
    }
    if (kind != GrantKind::kRetry) {
      vclock::observe(last_writer_ts);
      if (config_.home_migration) {
        home_cache(node).update(page, grant_home, grant_epoch);
        if (node != current_origin() && bounces == 0) {
          stats_.home_hint_hits.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Requester-side placement feed: this thread took a granted fault
      // served by `target` (no-op without an advisor).
      note_placement_fault(node, task, page, target);
      break;
    }
    // Lost a race on a busy directory entry: back off and refault. This is
    // the contended tail of the §V-D bimodal distribution.
    stats_.retries.fetch_add(1, std::memory_order_relaxed);
    record_fault(node, task, page, prof::FaultKind::kRetry, vma.tag.c_str());
    vclock::advance(cost.fault_retry_backoff_ns);
    std::this_thread::yield();
    if (++attempts >= config_.max_retries) {
      request.blocking = 1;
      batch.blocking = 1;
    }
  }

  vclock::advance(cost.pte_update_ns);
  stats_.fault_latency.record(vclock::now() - start);
  // Push accumulated directory-mutation records to the deputy once the
  // batch threshold is reached. Runs with no locks held; a no-op (one
  // relaxed load) when origin failover is off.
  maybe_flush_replication();
}

// ---------------------------------------------------------------------------
// Async protocol engine (DsmConfig::async_engine)
// ---------------------------------------------------------------------------

void Dsm::set_engine(core::ProtocolEngine* engine) {
  engine_ = engine;
  if (engine_ == nullptr) return;
  // Frame-admission hooks: the pump admits the summed needs of each
  // doorbell batch in its own thread (handlers run there and consume that
  // thread's per-pool credits), and drops the leftover after the batch.
  engine_->set_admission(
      [this](NodeId pool, int pages) { admit_frames(pool, pages); },
      [this](NodeId pool) { frame_pool(pool).drop_credit(); });
}

void Dsm::mirror_engine_stats() {
  stats_.doorbell_batches.store(fabric_.doorbell_batches(),
                                std::memory_order_relaxed);
  stats_.batched_posts.store(fabric_.batched_posts(),
                             std::memory_order_relaxed);
  if (engine_ == nullptr) return;
  const core::EngineStats& es = engine_->stats();
  stats_.engine_submitted.store(es.submitted.load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
  stats_.engine_resumes.store(es.resumes.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
  stats_.async_completions.store(
      es.completions.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  stats_.engine_depth_peak.store(
      es.depth_peak.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  stats_.engine_depth_sum.store(es.depth_sum.load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
  stats_.engine_depth_samples.store(
      es.depth_samples.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  stats_.engine_pump_handoffs.store(
      es.pump_handoffs.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Joint thread<->page placement (DsmConfig::auto_thread_migration)
// ---------------------------------------------------------------------------

void Dsm::set_placement(core::PlacementAdvisor* placement) {
  placement_ = placement;
}

void Dsm::note_placement_fault(NodeId node, TaskId task, GAddr page,
                               NodeId home) {
  if (placement_ == nullptr) return;
  placement_->note_fault(node, task, page, home);
}

void Dsm::mirror_placement_stats() {
  if (placement_ == nullptr) return;
  const core::PlacementStats& ps = placement_->stats();
  stats_.thread_migrations_auto.store(
      ps.migrations.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  stats_.placement_windows.store(ps.windows.load(std::memory_order_relaxed),
                                 std::memory_order_relaxed);
  stats_.placement_vetoes.store(ps.vetoes.load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
  stats_.placement_deferrals.store(
      ps.deferrals.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  stats_.placement_arbitrations.store(
      ps.arbitration_skips.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  stats_.placement_hints_warmed.store(
      ps.hints_warmed.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

int Dsm::warm_hints(NodeId node, const std::vector<GAddr>& pages) {
  int warmed = 0;
  for (const GAddr page : pages) {
    DirEntry* entry = directory_.find(page_base(page));
    if (entry == nullptr) continue;
    // Plain atomic reads, no latch: a torn (home, epoch) pair at worst
    // seeds a hint one kWrongHome redirect corrects, and the epoch fence
    // in update() keeps a stale pair from clobbering a newer hint.
    const NodeId home = entry->home.load(std::memory_order_acquire);
    const std::uint64_t epoch =
        entry->home_epoch.load(std::memory_order_acquire);
    if (home == kInvalidNode) continue;
    home_cache(node).update(page_base(page), home, epoch);
    ++warmed;
  }
  return warmed;
}

/// Total ladder windows per armed stream: the runahead distance, after
/// which the stream parks and the consumer's next demand fault re-arms
/// it — a fixed prefetch distance, like a hardware streamer. Unbounded
/// streaming is NOT what a streamer does: it would race to the end of the
/// VMA fetching pages the consumer may never reach (and, with several
/// tasks scanning one region, every stream would redundantly walk every
/// other task's slice on cheap ownership-only grants).
static constexpr int kPrefetchStreamWindows = 16;
/// Ladder windows of ONE stream concurrently in flight. A completion of
/// rung i submits rung i + kPrefetchStreamInflight, so a stream keeps
/// this many round trips overlapped; a serial chain (rung i submitting
/// rung i+1, not-before its own delivery) would space the stream's
/// deliveries a full round trip apart and cap it at one window per RTT —
/// exactly the blocking path's rate, just moved off-thread.
static constexpr int kPrefetchStreamInflight = 8;

void Dsm::arm_prefetch_stream(NodeId node, TaskId task, GAddr first_page,
                              NodeId target, GAddr limit,
                              const std::string& tag) {
  const int window =
      std::min(config_.prefetch_max_pages, net::kMaxBatchPages - 1);
  if (window <= 0 || first_page >= limit) return;
  const GAddr ladder_end = std::min(
      limit, first_page + static_cast<GAddr>(kPrefetchStreamWindows) *
                              static_cast<GAddr>(window) * kPageSize);
  // Park the stride detector at the ladder's end now: the consumer's
  // demand fault there re-arms the stream at full width immediately
  // instead of re-proving the stride over kTriggerRun single-page faults.
  // Done at arm time (not on the tail rung's completion) so a fast
  // consumer that already faulted past the end is never rewound.
  if (ladder_end < limit) prefetcher_.park(task, ladder_end);
  for (int j = 0; j < kPrefetchStreamInflight; ++j) {
    const GAddr start =
        first_page + static_cast<GAddr>(j) *
                         static_cast<GAddr>(window) * kPageSize;
    if (start >= ladder_end) break;
    const auto room =
        static_cast<std::int64_t>((ladder_end - start) >> kPageShift);
    const int count =
        static_cast<int>(std::min<std::int64_t>(window, room));
    submit_prefetch_window(node, task, start, count, target, ladder_end,
                           tag);
  }
}

void Dsm::submit_prefetch_window(NodeId node, TaskId task, GAddr start_page,
                                 int count, NodeId target, GAddr ladder_end,
                                 std::string tag) {
  using Step = core::ProtocolEngine::Step;
  using Status = core::ProtocolEngine::Status;

  // Register the window in the fault table before submitting, one round
  // per page: a demand fault that lands on any of these pages while the
  // window is queued or in flight coalesces as a follower and sleeps
  // until the window installs, instead of re-fetching the page over the
  // wire. The window truncates at the first page some other round is
  // already fetching (typically the consumer caught up to the stream) —
  // fetching past a foreign in-flight round would duplicate its work.
  std::vector<FaultTable::Join> leads;
  if (config_.coalesce_faults) {
    leads.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      FaultTable::Join lead = fault_table(node).try_lead(
          start_page + static_cast<GAddr>(i) * kPageSize, Access::kRead);
      if (!lead.is_leader) break;
      leads.push_back(std::move(lead));
    }
    count = static_cast<int>(leads.size());
    // Fully claimed already (the consumer or a competing stream is
    // fetching right here): drop the rung; its pages arrive through those
    // rounds and the ladder's later rungs keep running ahead.
    if (count == 0) return;
  }

  net::PageBatchRequestPayload batch{};
  batch.process_id = config_.process_id;
  batch.start_page = start_page;
  batch.task = task;
  batch.count = static_cast<std::uint32_t>(count);
  batch.blocking = 0;
  for (std::uint32_t i = 0; i < batch.count; ++i) {
    Pte* known = page_table(node).find(start_page + i * kPageSize);
    batch.known_versions[i] =
        known != nullptr ? read_known_version(*known) : kNoVersion;
  }
  Message msg;
  msg.type = MsgType::kPageRequestBatch;
  msg.dst = target;
  msg.set_payload(batch);

  core::ProtocolEngine::Submit prefetch;
  prefetch.node = node;
  prefetch.request = std::move(msg);
  prefetch.needs.emplace_back(node, count);
  if (target != node) prefetch.needs.emplace_back(target, count);
  // The window may not be posted before the submitting timeline reached
  // this point — for a chained window, before the parent's grant landed.
  prefetch.not_before = vclock::now();
  // Everything the resume touches is captured by value — the background
  // transaction outlives every submitting stack frame.
  prefetch.resume = [this, node, task, start_page, count, target,
                     ladder_end, tag = std::move(tag),
                     leads = std::move(leads)](net::CallOutcome&& out) -> Step {
    Step step;  // always done: prefetch never resends
    // Every terminal path must retire the window's fault-table rounds, or
    // coalesced demand faulters sleep forever. Granted pages were already
    // installed by the batch handler during the leg, so waking followers
    // at the resume clock (leg end) is exactly the data's arrival; holes
    // and dropped windows wake their followers into a fresh demand fault.
    const auto settle_window = [&] {
      const VirtNs ts = vclock::now();
      for (std::size_t i = 0; i < leads.size(); ++i) {
        fault_table(node).complete(
            leads[i], start_page + static_cast<GAddr>(i) * kPageSize,
            Access::kRead, ts);
      }
    };
    if (out.status != Status::kOk) {
      settle_window();
      return step;
    }
    const auto grant = out.reply.payload_as<net::PageBatchGrantPayload>();
    if (grant.kind == GrantKind::kRetry ||
        grant.kind == GrantKind::kWrongHome) {
      settle_window();
      return step;  // opportunistic: a busy or moved home drops the window
    }
    vclock::observe(grant.last_writer_ts);
    stats_.prefetch_issued.fetch_add(static_cast<std::uint64_t>(count),
                                     std::memory_order_relaxed);
    const std::uint32_t mask =
        grant.granted_mask & ((1u << static_cast<std::uint32_t>(count)) - 1u);
    const int granted = __builtin_popcount(mask);
    stats_.prefetch_grants.fetch_add(static_cast<std::uint64_t>(granted),
                                     std::memory_order_relaxed);
    if (trace_ != nullptr && trace_->enabled()) {
      for (int i = 0; i < count; ++i) {
        if (mask & (1u << i)) {
          record_fault(node, task,
                       start_page + static_cast<GAddr>(i) * kPageSize,
                       prof::FaultKind::kPrefetch, tag.c_str());
        }
      }
    }
    // Submit the rung kPrefetchStreamInflight windows ahead while the
    // stream is healthy: a hole in the grant means a busy entry, a
    // competing stream, or an exclusive holder — all reasons to let
    // demand faulting take over instead of fetching blind. Rung spacing
    // is the CONFIG window, not this rung's (possibly truncated) count,
    // so the ladder's fixed positions survive truncation.
    //
    // Order matters: submit the next rung FIRST, wake followers after.
    // The next rung claims its pages in the fault table when it is
    // submitted; if followers woke first, a consumer sleeping on this
    // window could race ahead of the submit, lead a demand round on the
    // rung's first page, and fire a competing stream — the two then
    // truncate each other into one-page windows and the scan degenerates
    // to a round trip per page.
    if (granted == count) {
      const int window =
          std::min(config_.prefetch_max_pages, net::kMaxBatchPages - 1);
      const GAddr next_start =
          start_page + static_cast<GAddr>(kPrefetchStreamInflight) *
                           static_cast<GAddr>(window) * kPageSize;
      if (next_start < ladder_end) {
        const auto room = static_cast<std::int64_t>(
            (ladder_end - next_start) >> kPageShift);
        const int next_count =
            static_cast<int>(std::min<std::int64_t>(window, room));
        submit_prefetch_window(node, task, next_start, next_count, target,
                               ladder_end, tag);
      }
    }
    settle_window();
    return step;
  };
  engine_->submit_background(std::move(prefetch));
}

void Dsm::fault_via_engine(NodeId node, TaskId task, GAddr page,
                           Access access, Pte& pte, int extras,
                           const Vma& vma) {
  using Step = core::ProtocolEngine::Step;
  using Status = core::ProtocolEngine::Status;
  const net::CostModel& cost = fabric_.cost();
  const MsgType req_type = access == Access::kRead
                               ? MsgType::kPageRequestRead
                               : MsgType::kPageRequestWrite;

  // Hint-directed routing, exactly as the blocking loop.
  NodeId target0 = current_origin();
  if (config_.home_migration) {
    const HomeHintCache::Hint hint = home_cache(node).lookup(page);
    if (hint.valid) target0 = hint.home;
  }

  if (extras > 0) {
    // The stride window detaches as a fire-and-forget background stream:
    // the extras are opportunistic in blocking mode too (granted only
    // when their entry is free), and splitting them keeps the primary a
    // single-page request whose retries never replay the batch. The
    // stream runs a ladder of overlapped windows ahead of the consumer
    // instead of stalling a round trip per window.
    arm_prefetch_stream(node, task, page + kPageSize, target0,
                        page_base(vma.end - 1) + kPageSize, vma.tag);
  }

  // The primary transaction's mutable state. Stack storage is safe: the
  // resume closure only runs while run() has this frame parked.
  struct St {
    net::PageRequestPayload request{};
    NodeId target = 0;
    int bounces = 0;
    int attempts = 0;
    VirtNs last_writer_ts = 0;
  };
  St st;
  st.request.process_id = config_.process_id;
  st.request.page = page;
  st.request.task = task;
  st.request.blocking = 0;
  st.target = target0;

  auto build = [this, req_type, &pte, &st]() {
    Message msg;
    msg.type = req_type;
    msg.dst = st.target;
    st.request.known_version = read_known_version(pte);
    msg.set_payload(st.request);
    return msg;
  };
  auto needs = [node, &st]() {
    std::vector<std::pair<NodeId, int>> n;
    n.emplace_back(node, 1);
    if (st.target != node) n.emplace_back(st.target, 1);
    return n;
  };
  auto resend = [&build, &needs](Step& step) {
    step.done = false;
    step.next = build();
    step.needs = needs();
  };

  // The blocking loop's body, one iteration per reply.
  auto resume = [this, node, task, page, &vma, &cost, &st,
                 &resend](net::CallOutcome&& out) -> Step {
    Step step;
    if (out.status == Status::kNodeDead) {
      if (st.target == current_origin()) {
        step.status = Status::kNodeDead;
        return step;
      }
      // The hinted home died; fall back to the origin (it reclaims dead
      // homes), killing the stale hint here rather than via a redirect.
      home_cache(node).invalidate_range(page, page + kPageSize);
      stats_.wrong_home_bounces.fetch_add(1, std::memory_order_relaxed);
      if (++st.bounces == 1) {
        stats_.home_chases.fetch_add(1, std::memory_order_relaxed);
      }
      st.target = current_origin();
      resend(step);
      return step;
    }
    if (out.status == Status::kFailed) {
      step.status = Status::kFailed;
      return step;
    }
    const auto grant = out.reply.payload_as<net::PageGrantPayload>();
    if (grant.kind == GrantKind::kWrongHome) {
      stats_.wrong_home_bounces.fetch_add(1, std::memory_order_relaxed);
      if (++st.bounces == 1) {
        stats_.home_chases.fetch_add(1, std::memory_order_relaxed);
      }
      home_cache(node).update(page, grant.home, grant.home_epoch);
      const bool authoritative = st.target == current_origin();
      if (!authoritative && st.bounces >= kMaxHomeChase) {
        st.target = current_origin();
      } else {
        st.target = grant.home;
      }
      resend(step);
      return step;
    }
    if (grant.kind != GrantKind::kRetry) {
      st.last_writer_ts = grant.last_writer_ts;
      vclock::observe(grant.last_writer_ts);
      if (config_.home_migration) {
        home_cache(node).update(page, grant.home, grant.home_epoch);
        if (node != current_origin() && st.bounces == 0) {
          stats_.home_hint_hits.fetch_add(1, std::memory_order_relaxed);
        }
      }
      return step;  // done, kOk
    }
    // Busy directory entry: instead of a parked thread burning the backoff
    // synchronously, the transaction defers itself — the pump re-posts it
    // once its clock passes the deadline, and siblings keep flowing.
    stats_.retries.fetch_add(1, std::memory_order_relaxed);
    record_fault(node, task, page, prof::FaultKind::kRetry, vma.tag.c_str());
    if (++st.attempts >= config_.max_retries) st.request.blocking = 1;
    resend(step);
    step.not_before = vclock::now() + cost.fault_retry_backoff_ns;
    return step;
  };

  core::ProtocolEngine::Submit submit;
  submit.node = node;
  submit.request = build();
  submit.needs = needs();
  submit.resume = resume;
  const Status status = engine_->run(std::move(submit));
  if (status == Status::kOk) {
    vclock::observe(st.last_writer_ts);
    // Placement feed runs here — after run() returns in the faulting
    // thread — not in the resume closure, which the pump thread executes.
    note_placement_fault(node, task, page, st.target);
    return;
  }
  // Translate the terminal status back into the blocking path's exception
  // discipline (the ensure() loop and the thread runtime own the policy).
  if (status == Status::kNodeDead) {
    throw net::NodeDeadError(current_origin(), req_type, node, current_origin());
  }
  throw net::RpcError(req_type, node, st.target, /*attempts=*/0,
                      net::MsgStatus::kError,
                      "async fault transaction failed");
}

Vma Dsm::check_vma(NodeId node, GAddr addr, Access access) {
  auto segv = [&]() -> Vma { throw SegfaultError(addr, access); };

  auto validate = [&](const Vma& vma) -> Vma {
    const std::uint8_t needed =
        access == Access::kWrite ? kProtWrite : kProtRead;
    if ((vma.prot & needed) == 0) return segv();
    return vma;
  };

  if (node == current_origin()) {
    auto vma = origin_space().find(addr);
    return vma ? validate(*vma) : segv();
  }

  auto cached = replica_space(node).find(addr);
  if (cached) {
    // Shrinks/downgrades were broadcast eagerly (§III-D), but permissive
    // re-upgrades (mprotect RO->RW) sync on demand: a cached prot that
    // forbids the access may be stale in the restrictive direction, so
    // re-ask the origin before declaring a fault illegitimate.
    const std::uint8_t needed =
        access == Access::kWrite ? kProtWrite : kProtRead;
    if ((cached->prot & needed) != 0) return *cached;
  }

  // On-demand VMA synchronization: ask the origin whether the access is
  // legitimate.
  stats_.vma_syncs.fetch_add(1, std::memory_order_relaxed);
  net::VmaRequestPayload request{config_.process_id, addr};
  Message msg;
  msg.type = MsgType::kVmaInfoRequest;
  msg.dst = current_origin();
  msg.set_payload(request);
  const Message reply = fabric_.call(node, msg);
  const auto record = reply.payload_as<VmaRecord>();
  if (!record.valid) return segv();
  const Vma vma = from_record(record);
  replica_space(node).install_replica(vma);
  return validate(vma);
}

void Dsm::record_fault(NodeId node, TaskId task, GAddr addr,
                       prof::FaultKind kind, const char* tag) {
  if (trace_ == nullptr || !trace_->enabled()) return;
  prof::FaultEvent event;
  event.time = vclock::now();
  event.node = node;
  event.task = task;
  event.kind = kind;
  event.site = prof::current_site();
  event.addr = addr;
  if (tag != nullptr) event.set_tag(tag);
  trace_->record(event);
}

// ---------------------------------------------------------------------------
// Home transactions (origin side, §III-B)
// ---------------------------------------------------------------------------

Message Dsm::handle_page_request(const Message& msg, Access access) {
  const auto request = msg.payload_as<net::PageRequestPayload>();
  DEX_CHECK(request.process_id == config_.process_id);

  DirEntry& entry = directory_.entry(request.page);
  std::unique_lock<HybridLatch> lock(entry.latch, std::try_to_lock);
  if (!lock.owns_lock()) {
    if (request.blocking) {
      // Forward-progress escalation. Entry mutexes are held across
      // protocol work, so exclude this thread from the time gate while it
      // sleeps on the holder.
      ScopedGateBlock gate_block("dir_escalation");
      lock.lock();
    } else {
      Message reply;
      reply.type = MsgType::kPageGrant;
      net::PageGrantPayload grant{};
      grant.kind = GrantKind::kRetry;
      reply.set_payload(grant);
      return reply;
    }
  }

  if (config_.home_migration && home_of(entry) != msg.dst) {
    // This node does not home the page (anymore): redirect the requester.
    // The origin answers from the entry itself (authoritative); any other
    // node answers from its own hint cache, origin as the fallback.
    Message reply;
    reply.type = MsgType::kPageGrant;
    net::PageGrantPayload grant{};
    grant.kind = GrantKind::kWrongHome;
    if (msg.dst == current_origin()) {
      grant.home = home_of(entry);
      grant.home_epoch = entry.home_epoch;
    } else {
      const HomeHintCache::Hint hint = home_cache(msg.dst).lookup(
          request.page);
      grant.home = hint.valid ? hint.home : current_origin();
      grant.home_epoch = hint.valid ? hint.epoch : 0;
    }
    lock.unlock();
    vclock::advance(fabric_.cost().wrong_home_service_ns);
    reply.set_payload(grant);
    return reply;
  }

  vclock::advance(fabric_.cost().directory_service_ns);
  vclock::observe(entry.last_release_ts);

  const TransactOutcome outcome = transact(msg.src, request.task,
                                           request.page, access,
                                           request.known_version, entry);
  if (access == Access::kWrite) {
    entry.last_release_ts = std::max(entry.last_release_ts, vclock::now());
  }
  if (outcome.kind != GrantKind::kRetry) {
    stats_.faults_by_home[static_cast<std::size_t>(home_of(entry))]
        .fetch_add(1, std::memory_order_relaxed);
    maybe_migrate_home(entry, request.page, msg.src, request.task);
  }

  Message reply;
  reply.type = MsgType::kPageGrant;
  net::PageGrantPayload grant{};
  grant.kind = outcome.kind;
  grant.version = entry.version;
  grant.last_writer_ts = entry.last_release_ts;
  grant.home = home_of(entry);
  grant.home_epoch = entry.home_epoch;
  reply.set_payload(grant);

  if (outcome.offpath_ns > 0) {
    // The owner->origin ack of a forwarded grant is still in flight when
    // the requester resumes. Fold its arrival into the release timestamp
    // AFTER stamping the grant, so the current requester does not wait for
    // it but the next conflicting transaction (which observes
    // last_release_ts on entry) orders after it.
    entry.last_release_ts = std::max(entry.last_release_ts,
                                     vclock::now() + outcome.offpath_ns);
  }
  if (outcome.forwarded) {
    // The requester's completion signal is the kForwardGrant push landing,
    // not this reply: mark the reply off-path so its wire cost is not
    // charged to the requester's clock.
    reply.offpath_reply = 1;
    record_fault(msg.src, request.task, request.page,
                 prof::FaultKind::kForward, nullptr);
  }

  if (outcome.kind == GrantKind::kDataAndOwnership) {
    stats_.grants_data.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.grants_ownership_only.fetch_add(1, std::memory_order_relaxed);
  }
  return reply;
}

void Dsm::materialize_entry(DirEntry& entry, GAddr page) {
  // First touch anywhere: materialize the anonymous zero page at the home
  // ("initially, the origin exclusively owns all pages" — an unmaterialized
  // entry always homes at the origin, munmap resets the home with the rest
  // of the entry state).
  const NodeId home = home_of(entry);
  Pte& home_pte = page_table(home).get_or_create(page);
  home_pte.lock.lock();
  home_pte.seq.fetch_add(1, std::memory_order_release);
  // Explicit zeroing: a recycled frame (munmap + re-mmap) holds old data.
  std::memset(home_pte.ensure_frame(), 0, kPageSize);
  ++entry.version;
  home_pte.version = entry.version;
  home_pte.state.store(PageState::kShared, std::memory_order_release);
  home_pte.seq.fetch_add(1, std::memory_order_release);
  home_pte.lock.unlock();
  entry.materialized = true;
  entry.sharers.clear();
  entry.sharers.add(home);
  entry.exclusive_owner = kInvalidNode;
}

Message Dsm::handle_page_request_batch(const Message& msg) {
  const auto request = msg.payload_as<net::PageBatchRequestPayload>();
  DEX_CHECK(request.process_id == config_.process_id);
  const NodeId requester = msg.src;
  const NodeId at = msg.dst;  // the node serving this batch
  const GAddr primary = request.start_page;
  const std::uint32_t count = std::min<std::uint32_t>(
      request.count, static_cast<std::uint32_t>(net::kMaxBatchPages));
  DEX_CHECK(count >= 1);

  Message reply;
  reply.type = MsgType::kPageGrantBatch;
  net::PageBatchGrantPayload grant{};

  // The primary (demand) page gets the full handle_page_request semantics:
  // busy-retry, blocking escalation, any grant kind.
  DirEntry& entry = directory_.entry(primary);
  std::unique_lock<HybridLatch> lock(entry.latch, std::try_to_lock);
  if (!lock.owns_lock()) {
    if (request.blocking) {
      ScopedGateBlock gate_block("dir_escalation");
      lock.lock();
    } else {
      grant.kind = GrantKind::kRetry;
      reply.set_payload(grant);
      return reply;
    }
  }

  if (config_.home_migration && home_of(entry) != at) {
    // Wrong home for the primary page: redirect, exactly like the
    // single-page path. Extras are not attempted — the requester refaults
    // at the right home and the batch reforms there.
    grant.kind = GrantKind::kWrongHome;
    if (at == current_origin()) {
      grant.home = home_of(entry);
      grant.home_epoch = entry.home_epoch;
    } else {
      const HomeHintCache::Hint hint = home_cache(at).lookup(primary);
      grant.home = hint.valid ? hint.home : current_origin();
      grant.home_epoch = hint.valid ? hint.epoch : 0;
    }
    lock.unlock();
    vclock::advance(fabric_.cost().wrong_home_service_ns);
    reply.set_payload(grant);
    return reply;
  }

  vclock::advance(fabric_.cost().directory_service_ns);
  vclock::observe(entry.last_release_ts);

  const TransactOutcome primary_outcome =
      transact(requester, request.task, primary, Access::kRead,
               request.known_versions[0], entry);
  grant.kind = primary_outcome.kind;
  grant.granted_mask = 1;
  grant.versions[0] = entry.version;
  VirtNs last_ts = entry.last_release_ts;
  if (primary_outcome.kind != GrantKind::kRetry) {
    stats_.faults_by_home[static_cast<std::size_t>(home_of(entry))]
        .fetch_add(1, std::memory_order_relaxed);
    maybe_migrate_home(entry, primary, requester, request.task);
  }
  grant.home = home_of(entry);
  grant.home_epoch = entry.home_epoch;
  if (primary_outcome.offpath_ns > 0) {
    // Batch replies stay on-path (the extras' data rides them), but the
    // forwarded primary's ack leg still completes after the requester
    // resumes; publish it to the next transaction via the release
    // timestamp, not to `last_ts` (which the current requester observes).
    entry.last_release_ts = std::max(
        entry.last_release_ts, vclock::now() + primary_outcome.offpath_ns);
  }
  if (primary_outcome.forwarded) {
    record_fault(requester, request.task, primary, prof::FaultKind::kForward,
                 nullptr);
  }
  if (grant.kind == GrantKind::kDataAndOwnership) {
    stats_.grants_data.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.grants_ownership_only.fetch_add(1, std::memory_order_relaxed);
  }
  lock.unlock();

  // Extras pass: one directory sweep, opportunistic and strictly
  // non-stealing. Each candidate is granted kShared only when its entry
  // lock is free right now and no remote node holds it exclusively; a
  // write fault elsewhere always wins. Data for all granted extras is
  // staged and shipped in ONE bulk transfer below, so the RDMA post +
  // completion dispatch amortize over the batch.
  std::vector<std::uint8_t> staging;
  staging.reserve(static_cast<std::size_t>(count - 1) * kPageSize);
  std::vector<Pte*> staged_ptes;  // data installs, stamped after the wire
  for (std::uint32_t i = 1; i < count; ++i) {
    const GAddr p = primary + static_cast<GAddr>(i) * kPageSize;
    auto vma = origin_space().find(p);
    if (!vma || (vma->prot & kProtRead) == 0) continue;

    DirEntry& e = directory_.entry(p);
    std::unique_lock<HybridLatch> elock(e.latch, std::try_to_lock);
    if (!elock.owns_lock()) continue;  // busy: a prefetch never waits

    // A prefetch only rides along for pages this node actually homes;
    // anything homed elsewhere is skipped (a hole in granted_mask), the
    // requester demand-faults it at its real home if it ever needs it.
    if (config_.home_migration && home_of(e) != at) continue;

    vclock::advance(fabric_.cost().directory_service_ns);
    if (!e.materialized) materialize_entry(e, p);
    if (e.exclusive_owner != kInvalidNode) {
      // Never steal exclusivity over the wire. The home downgrading its
      // own dirty copy is local and free, though — same as the demand read
      // path — so only a *remote* owner blocks the grant.
      if (e.exclusive_owner != at) continue;
      set_state(at, p, PageState::kShared, e.version);
      e.sharers.add(at);
      e.exclusive_owner = kInvalidNode;
    }
    vclock::observe(e.last_release_ts);
    last_ts = std::max(last_ts, e.last_release_ts);

    Pte& rpte = page_table(requester).get_or_create(p);
    if (request.known_versions[i] == e.version &&
        request.known_versions[i] != kNoVersion &&
        copy_current(requester, p, e.version)) {
      // The requester's stale copy is still current: common ownership
      // without data, like the single-page §III-B fast case.
      set_state(requester, p, PageState::kShared, e.version);
      stats_.grants_ownership_only.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Stage the home frame and install it in the requester's PTE here,
      // under the entry lock — a concurrent write fault then either runs
      // before this grant (sees the old sharer set) or after it (revokes a
      // fully installed copy); there is no window where a granted copy is
      // invisible to revocation.
      Pte& home_pte = page_table(at).get_or_create(p);
      const std::size_t off = staging.size();
      staging.resize(off + kPageSize);
      home_pte.lock.lock();
      std::memcpy(staging.data() + off, home_pte.ensure_frame(), kPageSize);
      home_pte.lock.unlock();
      rpte.lock.lock();
      rpte.seq.fetch_add(1, std::memory_order_release);
      std::memcpy(rpte.ensure_frame(), staging.data() + off, kPageSize);
      rpte.version = e.version;
      rpte.state.store(PageState::kShared, std::memory_order_release);
      rpte.seq.fetch_add(1, std::memory_order_release);
      rpte.lock.unlock();
      staged_ptes.push_back(&rpte);
      stats_.grants_data.fetch_add(1, std::memory_order_relaxed);
    }
    rpte.prefetched.store(1, std::memory_order_relaxed);
    e.sharers.add(requester);
    grant.granted_mask |= 1u << i;
    grant.versions[i] = e.version;
  }

  if (!staging.empty() && requester != at) {
    // The wire charge for every staged extra page, amortized: one RDMA
    // post + one completion dispatch for the whole batch (the per-byte
    // wire/copy costs remain). The data itself was installed above.
    std::vector<std::uint8_t> scratch(staging.size());
    fabric_.bulk_transfer(at, requester, staging.data(), staging.size(),
                          scratch.data());
  }
  // The extras' bytes arrive with the amortized transfer above, not at
  // their per-page install points: stamp the delivery time the consumer's
  // first touch must observe.
  const VirtNs delivered = vclock::now();
  for (Pte* rpte : staged_ptes) {
    rpte->install_ts.store(delivered, std::memory_order_relaxed);
  }

  grant.last_writer_ts = last_ts;
  reply.set_payload(grant);
  return reply;
}

Dsm::TransactOutcome Dsm::transact(NodeId requester, TaskId task, GAddr page,
                                   Access access,
                                   std::uint64_t known_version,
                                   DirEntry& entry) {
  (void)task;
  if (!entry.materialized) materialize_entry(entry, page);

  // Everything below is home-relative: the serving node's frame is the
  // grant source and the writeback target. With home migration off the
  // home is always the origin and this is the classic §III-B transaction
  // verbatim.
  const NodeId home = home_of(entry);
  Pte& home_pte = page_table(home).get_or_create(page);
  TransactOutcome outcome;

  // Ensure the requester's PTE exists before any grant touches it.
  (void)page_table(requester).get_or_create(page);

  // A recall may ship the page straight to the requester when there is one
  // to ship to (mprotect downgrades pass kInvalidNode) and data would have
  // to move anyway. A remote exclusive owner implies the version was
  // bumped at its grant, so a current requester copy cannot exist; the
  // check keeps the ownership-only fast path authoritative regardless.
  const bool data_needed =
      !(known_version == entry.version && known_version != kNoVersion);
  const NodeId forward_to =
      requester != home && data_needed ? requester : kInvalidNode;

  if (access == Access::kRead) {
    if (entry.exclusive_owner == requester) {
      // Sole owner lost local state (should not happen in steady state);
      // reassert it.
      set_state(requester, page, PageState::kExclusive, entry.version);
      outcome.kind = GrantKind::kOwnershipOnly;
      return outcome;
    }
    RecallResult recall = RecallResult::kWroteBack;
    if (entry.exclusive_owner != kInvalidNode) {
      if (entry.exclusive_owner == home) {
        // The home itself holds the dirty copy: downgrade locally.
        set_state(home, page, PageState::kShared, entry.version);
        entry.sharers.add(home);
      } else {
        recall = recall_from_owner(entry, page, /*downgrade=*/true,
                                   forward_to, entry.version,
                                   &outcome.offpath_ns);
      }
      entry.exclusive_owner = kInvalidNode;
      entry.lease_until = 0;
      clear_journal(entry);
    }
    if (recall == RecallResult::kForwarded) {
      // The old owner already pushed the data and installed the
      // requester's PTE (kShared, current version); the writeback rode the
      // off-path ack into the home frame.
      entry.sharers.add(requester);
      outcome.kind = GrantKind::kDataAndOwnership;
      outcome.forwarded = true;
      if (replicating(home)) record_entry_replication(entry, page);
      return outcome;
    }
    // Now: no exclusive owner; home frame holds the current version.
    if (requester == home) {
      set_state(home, page, PageState::kShared, entry.version);
      outcome.kind = GrantKind::kOwnershipOnly;
    } else if (known_version == entry.version && known_version != kNoVersion &&
               copy_current(requester, page, entry.version)) {
      // §III-B: the remote already holds up-to-date data — grant common
      // ownership without transferring the page. copy_current re-reads the
      // requester's PTE under its lock: an eviction that raced the fault's
      // known_version snapshot fenced the version, so a retired frame can
      // never be re-granted as a zeroed alias.
      set_state(requester, page, PageState::kShared, entry.version);
      outcome.kind = GrantKind::kOwnershipOnly;
    } else {
      // Unspill the home frame if the cold tier holds it (the pool never
      // returns frames to the OS, so the pointer stays valid after the
      // unlock; the held entry lock is what keeps eviction away).
      home_pte.lock.lock();
      const std::uint8_t* src = home_pte.ensure_frame();
      home_pte.lock.unlock();
      install_copy(requester, page, src, PageState::kShared, entry.version,
                   home);
      outcome.kind = GrantKind::kDataAndOwnership;
    }
    entry.sharers.add(requester);
    if (replicating(home)) record_entry_replication(entry, page);
    return outcome;
  }

  // --- write request ---
  if (entry.exclusive_owner == requester) {
    set_state(requester, page, PageState::kExclusive, entry.version);
    outcome.kind = GrantKind::kOwnershipOnly;
    return outcome;
  }
  const std::uint64_t granted_version = entry.version + 1;
  RecallResult recall = RecallResult::kWroteBack;
  if (entry.exclusive_owner != kInvalidNode) {
    if (entry.exclusive_owner == home) {
      // The home frame is already current; its PTE is flipped below.
      entry.sharers.add(home);
    } else {
      // Safe to stamp granted_version up front: a remote exclusive owner
      // is the sole sharer, so nothing below can change the version again
      // before the grant commits.
      recall = recall_from_owner(entry, page, /*downgrade=*/false,
                                 forward_to, granted_version,
                                 &outcome.offpath_ns);
    }
    entry.exclusive_owner = kInvalidNode;
  }
  // Revoke all clean shared copies except the requester's and the home's
  // (the home frame is the grant source; its PTE is flipped below), in
  // one overlapped fan-out: the writer pays max(leg latencies), not the
  // sum over sharers.
  revoke_sharers(entry, page, requester, task);

  if (recall == RecallResult::kForwarded) {
    // The old owner pushed its dirty copy straight to the requester and
    // installed the PTE (kExclusive, granted_version). The home frame
    // stays stale — its PTE was already invalid under the old exclusive
    // owner — and the slim ack carried no data.
    outcome.kind = GrantKind::kDataAndOwnership;
    outcome.forwarded = true;
  } else if (requester == home) {
    set_state(home, page, PageState::kExclusive, granted_version);
    outcome.kind = GrantKind::kOwnershipOnly;
  } else {
    // The home must lose access BEFORE its frame is read for the grant:
    // taking the PTE lock drains any in-flight local write, and the
    // invalid state makes later local writes fault. Granting first would
    // let a racing home-side write land in the home frame after the copy
    // was taken — a lost update.
    home_pte.lock.lock();
    home_pte.state.store(PageState::kInvalid, std::memory_order_release);
    const std::uint8_t* src = home_pte.ensure_frame();  // unspill if parked
    home_pte.lock.unlock();

    if (known_version == entry.version && known_version != kNoVersion &&
        copy_current(requester, page, entry.version)) {
      set_state(requester, page, PageState::kExclusive, granted_version);
      outcome.kind = GrantKind::kOwnershipOnly;
    } else {
      install_copy(requester, page, src, PageState::kExclusive,
                   granted_version, home);
      outcome.kind = GrantKind::kDataAndOwnership;
    }
  }
  entry.version = granted_version;
  entry.exclusive_owner = requester;
  entry.sharers.clear();
  entry.sharers.add(requester);
  if (config_.lease_ns > 0) {
    // A fresh exclusive grant starts a fresh journal window: the home
    // frame predates this version until the first piggybacked writeback.
    clear_journal(entry);
    if (requester != home) {
      entry.lease_until = vclock::now() + config_.lease_ns;
      // The grant handler runs in the requester's OS thread, so the
      // owner-side lease mirror can be stamped directly.
      Pte& rpte = page_table(requester).get_or_create(page);
      rpte.lease_until.store(entry.lease_until, std::memory_order_release);
      rpte.lease_home.store(home, std::memory_order_release);
    } else {
      entry.lease_until = 0;  // home writes land in the home frame already
    }
  }
  if (replicating(home)) record_entry_replication(entry, page);
  return outcome;
}

Dsm::RecallResult Dsm::recall_from_owner(DirEntry& entry, GAddr page,
                                         bool downgrade, NodeId requester,
                                         std::uint64_t grant_version,
                                         VirtNs* offpath_ns) {
  const NodeId owner = entry.exclusive_owner;
  const NodeId home = home_of(entry);
  DEX_CHECK(owner != kInvalidNode && owner != home);
  const bool try_forward = config_.forward_grants &&
                           requester != kInvalidNode && requester != owner;

  bool owner_lost = fabric_.injector().node_dead(owner);
  Message reply;
  if (!owner_lost) {
    Message msg;
    msg.dst = owner;
    if (try_forward) {
      net::ForwardRecallPayload payload{};
      payload.process_id = config_.process_id;
      payload.page = page;
      payload.grant_version = grant_version;
      payload.requester = requester;
      payload.downgrade_to_shared = downgrade ? 1 : 0;
      msg.type = MsgType::kForwardRecall;
      msg.set_payload(payload);
    } else {
      net::RevokePayload payload{
          config_.process_id, page,
          static_cast<std::uint8_t>(downgrade ? 1 : 0)};
      msg.type = MsgType::kRevokeOwnership;
      msg.set_payload(payload);
    }
    try {
      reply = fabric_.call(home, msg);
    } catch (const net::NodeDeadError&) {
      owner_lost = true;  // owner died mid-recall (or mid-forward)
    } catch (const net::RpcError&) {
      // Retry budget exhausted against a live owner: unwinding here would
      // leave the entry half-updated. Treat the unreachable owner like a
      // dead one (its dirty copy is lost and reported below) and fence its
      // PTE so no writable stale copy survives origin-side. The failed
      // recall wrote nothing back, so `writebacks` stays untouched.
      stats_.revoke_failures.fetch_add(1, std::memory_order_relaxed);
      fence_copy(owner, page);
      owner_lost = true;
    }
  }

  if (owner_lost) {
    // The only up-to-date copy died with the owner. Degrade gracefully:
    // the home frame — the journaled lease writeback when one exists, the
    // last full writeback otherwise — becomes authoritative again and any
    // dirty loss is *reported* (FailureStats), never silent. Innocent
    // requesters proceed with the stale-but-consistent data.
    account_owner_loss(entry, page);
    failure_stats_.pages_reclaimed.fetch_add(1, std::memory_order_relaxed);
    prof::ChaosCounters::instance().pages_reclaimed.fetch_add(
        1, std::memory_order_relaxed);
    record_fault(owner, /*task=*/-1, page, prof::FaultKind::kReclaim,
                 nullptr);
    // Fence the dead owner's PTE so no stale exclusive copy survives
    // home-side (idempotent when the RpcError path already fenced;
    // heal-time reclaim would otherwise be the first to sweep it).
    fence_copy(owner, page);
    set_state(home, page, PageState::kShared, entry.version);
    entry.sharers.add(home);
    entry.sharers.remove(owner);
    // The requester gets the stale-but-consistent home frame, and if a
    // forward was attempted, no PTE was installed owner-side (the owner
    // never completed the push visibly); classic install follows.
    return RecallResult::kOwnerLost;
  }

  auto install_home_frame = [&](const std::uint8_t* data) {
    Pte& home_pte = page_table(home).get_or_create(page);
    home_pte.lock.lock();
    home_pte.seq.fetch_add(1, std::memory_order_release);
    std::memcpy(home_pte.ensure_frame(), data, kPageSize);
    home_pte.version = entry.version;
    home_pte.state.store(PageState::kShared, std::memory_order_release);
    home_pte.seq.fetch_add(1, std::memory_order_release);
    home_pte.lock.unlock();
    entry.sharers.add(home);
  };

  if (try_forward) {
    const auto ack = reply.payload_prefix_as<net::ForwardRecallAck>();
    if (ack.wrote_back != 0) {
      DEX_CHECK_MSG(
          reply.payload.size() == sizeof(net::ForwardRecallAck) + kPageSize,
          "writeback ack must carry page data");
      stats_.writebacks.fetch_add(1, std::memory_order_relaxed);
      install_home_frame(reply.payload.data() +
                         sizeof(net::ForwardRecallAck));
    }
    if (downgrade) {
      entry.sharers.add(owner);  // owner keeps a read-only copy
    } else {
      entry.sharers.remove(owner);
    }
    if (ack.forwarded != 0) {
      stats_.forwarded_grants.fetch_add(1, std::memory_order_relaxed);
      if (offpath_ns != nullptr) *offpath_ns = reply.offpath_ns;
      return RecallResult::kForwarded;
    }
    // The push leg failed (requester unreachable / drop budget spent): the
    // owner degraded to a classic full writeback in the (on-path) reply;
    // the origin grants from its now-current frame as if forwarding were
    // off.
    stats_.forward_fallbacks.fetch_add(1, std::memory_order_relaxed);
    DEX_CHECK_MSG(ack.wrote_back != 0,
                  "exclusive owner must write back page data");
    return RecallResult::kWroteBack;
  }

  stats_.writebacks.fetch_add(1, std::memory_order_relaxed);

  // Install the written-back data in the home frame.
  DEX_CHECK_MSG(reply.payload.size() == kPageSize,
                "exclusive owner must write back page data");
  install_home_frame(reply.payload.data());
  if (downgrade) {
    entry.sharers.add(owner);  // owner keeps a read-only copy
  } else {
    entry.sharers.remove(owner);
  }
  return RecallResult::kWroteBack;
}

void Dsm::invalidate_copy(NodeId node, GAddr page, NodeId from,
                          TaskId requester_task) {
  (void)requester_task;
  net::RevokePayload payload{config_.process_id, page, /*downgrade=*/0};
  Message msg;
  msg.type = MsgType::kRevokeOwnership;
  msg.dst = node;
  msg.set_payload(payload);
  try {
    (void)fabric_.call(from, msg);
  } catch (const net::NodeDeadError&) {
    // A clean shared copy died with its node; reclaim_node sweeps the
    // sharer bit, and the caller clears the sharer set anyway.
  } catch (const net::RpcError&) {
    // Retry budget exhausted against a live node: the sharer is
    // unreachable but may still hold a readable copy. Letting this unwind
    // mid-transact would leave the directory entry half-updated, so fence
    // the copy origin-side (dead-sharer reclaim) and report the failure.
    stats_.revoke_failures.fetch_add(1, std::memory_order_relaxed);
    fence_copy(node, page);
  }
}

void Dsm::revoke_sharers(DirEntry& entry, GAddr page, NodeId requester,
                         TaskId task) {
  (void)task;
  const NodeId home = home_of(entry);
  std::vector<NodeId> targets;
  entry.sharers.for_each([&](NodeId sharer) {
    if (sharer == requester || sharer == home) return;
    targets.push_back(sharer);
  });
  if (targets.empty()) return;
  if (targets.size() == 1) {
    // One sharer: nothing to overlap; the single-leg helper carries the
    // same failure handling (NodeDead tolerated, RpcError fenced+counted).
    stats_.revoke_fanouts.fetch_add(1, std::memory_order_relaxed);
    invalidate_copy(targets[0], page, home, task);
    return;
  }

  net::RevokePayload payload{config_.process_id, page, /*downgrade=*/0};
  std::vector<Message> requests(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    requests[i].type = MsgType::kRevokeOwnership;
    requests[i].dst = targets[i];
    requests[i].set_payload(payload);
  }

  stats_.revoke_fanouts.fetch_add(1, std::memory_order_relaxed);
  if (targets.size() > 1 && fabric_.options().mode.overlapped_fanout) {
    stats_.revoke_legs_overlapped.fetch_add(targets.size(),
                                            std::memory_order_relaxed);
  }

  const std::vector<net::CallOutcome> outcomes =
      fabric_.call_many(home, requests);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    switch (outcomes[i].status) {
      case net::CallOutcome::Status::kOk:
        break;
      case net::CallOutcome::Status::kNodeDead:
        // The clean copy died with its node; reclaim_node sweeps the
        // sharer bit, and the caller clears the sharer set anyway.
        break;
      case net::CallOutcome::Status::kFailed:
        // Retry budget exhausted against a live node: fence the
        // unreachable sharer's copy origin-side so no readable stale copy
        // survives, and report the failure instead of unwinding
        // mid-transact with the entry half-updated.
        stats_.revoke_failures.fetch_add(1, std::memory_order_relaxed);
        fence_copy(targets[i], page);
        record_fault(targets[i], /*task=*/-1, page, prof::FaultKind::kReclaim,
                     nullptr);
        break;
    }
  }
}

void Dsm::fence_copy(NodeId node, GAddr page) {
  Pte* pte = page_table(node).find(page);
  if (pte == nullptr) return;
  pte->lock.lock();
  pte->seq.fetch_add(1, std::memory_order_release);
  if (pte->prefetched.exchange(0, std::memory_order_relaxed) != 0) {
    stats_.prefetch_wasted.fetch_add(1, std::memory_order_relaxed);
  }
  pte->state.store(PageState::kInvalid, std::memory_order_release);
  pte->version = kNoVersion;
  pte->seq.fetch_add(1, std::memory_order_release);
  pte->lease_until.store(0, std::memory_order_release);
  pte->lease_home.store(kInvalidNode, std::memory_order_release);
  pte->lock.unlock();
}

Message Dsm::handle_revoke(const Message& msg) {
  const auto payload = msg.payload_as<net::RevokePayload>();
  const NodeId node = msg.dst;
  vclock::advance(fabric_.cost().revoke_service_ns);

  Message reply;
  reply.type = MsgType::kRevokeOwnership;

  Pte* pte = page_table(node).find(payload.page);
  if (pte == nullptr) return reply;  // never held: a no-op revoke

  // Count (and trace) only revokes that actually invalidate or downgrade a
  // copy; duplicate deliveries and already-invalid copies used to inflate
  // the invalidation stats the benches report.
  bool invalidated = false;
  pte->lock.lock();
  const PageState state = pte->state.load(std::memory_order_acquire);
  if (state == PageState::kExclusive) {
    // Dirty copy: write the data back in the reply.
    reply.payload.resize(kPageSize);
    std::memcpy(reply.payload.data(), pte->ensure_frame(), kPageSize);
    pte->seq.fetch_add(1, std::memory_order_release);
    pte->state.store(payload.downgrade_to_shared ? PageState::kShared
                                                 : PageState::kInvalid,
                     std::memory_order_release);
    pte->seq.fetch_add(1, std::memory_order_release);
    pte->lease_until.store(0, std::memory_order_release);
    pte->lease_home.store(kInvalidNode, std::memory_order_release);
    invalidated = true;
  } else if (state == PageState::kShared && !payload.downgrade_to_shared) {
    pte->state.store(PageState::kInvalid, std::memory_order_release);
    invalidated = true;
  }
  if (invalidated &&
      pte->prefetched.exchange(0, std::memory_order_relaxed) != 0) {
    // A prefetched copy revoked before any demand access: pure waste.
    stats_.prefetch_wasted.fetch_add(1, std::memory_order_relaxed);
  }
  pte->lock.unlock();

  if (invalidated) {
    stats_.invalidations.fetch_add(1, std::memory_order_relaxed);
    record_fault(node, /*task=*/-1, payload.page,
                 prof::FaultKind::kInvalidate, nullptr);
  }
  return reply;
}

Message Dsm::handle_forward_recall(const Message& msg) {
  const auto payload = msg.payload_as<net::ForwardRecallPayload>();
  DEX_CHECK(payload.process_id == config_.process_id);
  const NodeId owner = msg.dst;
  const net::CostModel& cost = fabric_.cost();
  vclock::advance(cost.revoke_service_ns);

  Message reply;
  reply.type = MsgType::kForwardRecall;
  net::ForwardRecallAck ack{};

  // Snapshot + downgrade/invalidate the local copy under the PTE lock,
  // exactly like handle_revoke — including the invalidation/prefetch-waste
  // accounting the benches report.
  std::uint8_t data[kPageSize];
  bool have_data = false;
  bool invalidated = false;
  Pte* pte = page_table(owner).find(payload.page);
  if (pte != nullptr) {
    pte->lock.lock();
    const PageState state = pte->state.load(std::memory_order_acquire);
    if (state == PageState::kExclusive) {
      std::memcpy(data, pte->ensure_frame(), kPageSize);
      have_data = true;
      pte->seq.fetch_add(1, std::memory_order_release);
      pte->state.store(payload.downgrade_to_shared != 0
                           ? PageState::kShared
                           : PageState::kInvalid,
                       std::memory_order_release);
      pte->seq.fetch_add(1, std::memory_order_release);
      pte->lease_until.store(0, std::memory_order_release);
      pte->lease_home.store(kInvalidNode, std::memory_order_release);
      invalidated = true;
    } else if (state == PageState::kShared &&
               payload.downgrade_to_shared == 0) {
      pte->state.store(PageState::kInvalid, std::memory_order_release);
      invalidated = true;
    }
    if (invalidated &&
        pte->prefetched.exchange(0, std::memory_order_relaxed) != 0) {
      stats_.prefetch_wasted.fetch_add(1, std::memory_order_relaxed);
    }
    pte->lock.unlock();
  }
  if (invalidated) {
    stats_.invalidations.fetch_add(1, std::memory_order_relaxed);
    record_fault(owner, /*task=*/-1, payload.page,
                 prof::FaultKind::kInvalidate, nullptr);
  }
  if (!have_data) {
    // The directory said this node held the page exclusive; losing that
    // state without an origin-driven transaction is a protocol bug the
    // origin-side size check will surface. Slim failure ack.
    reply.set_payload(ack);
    return reply;
  }

  // Two-hop leg: one bulk push straight into the requester's node, then
  // the grant is installed in the requester's PTE — under the origin-held
  // entry lock, so a concurrent conflicting transaction either ordered
  // before this recall or will revoke a fully installed copy.
  std::uint8_t landed[kPageSize];
  const bool pushed = fabric_.push_grant(owner, payload.requester, data,
                                         kPageSize, landed);
  if (pushed) {
    Pte& rpte = page_table(payload.requester).get_or_create(payload.page);
    rpte.lock.lock();
    rpte.seq.fetch_add(1, std::memory_order_release);
    std::memcpy(rpte.ensure_frame(), landed, kPageSize);
    rpte.version = payload.grant_version;
    rpte.prefetched.store(0, std::memory_order_relaxed);
    rpte.state.store(payload.downgrade_to_shared != 0
                         ? PageState::kShared
                         : PageState::kExclusive,
                     std::memory_order_release);
    rpte.seq.fetch_add(1, std::memory_order_release);
    rpte.lock.unlock();
    vclock::advance(cost.forward_install_ns);
    ack.forwarded = 1;
    // An exclusive hand-off leaves the origin frame stale on purpose (the
    // new owner rewrites it anyway); a shared downgrade must refresh it so
    // the origin stays a current-version sharer.
    ack.wrote_back = payload.downgrade_to_shared != 0 ? 1 : 0;
    // The requester resumed when the push landed; the ack back to the
    // origin is concurrent bookkeeping.
    reply.offpath_reply = 1;
  } else {
    // Push leg failed (requester dead or drop budget spent): degrade to
    // the classic recall — full writeback, on the critical path.
    ack.forwarded = 0;
    ack.wrote_back = 1;
  }

  if (ack.wrote_back != 0) {
    reply.payload.resize(sizeof(ack) + kPageSize);
    std::memcpy(reply.payload.data(), &ack, sizeof(ack));
    std::memcpy(reply.payload.data() + sizeof(ack), data, kPageSize);
  } else {
    reply.set_payload(ack);
  }
  return reply;
}

// ---------------------------------------------------------------------------
// Writeback leases (DsmConfig::lease_ns)
// ---------------------------------------------------------------------------

void Dsm::maybe_renew_lease(NodeId node, TaskId task, GAddr page, Pte& pte) {
  if (config_.lease_ns <= 0) return;
  const VirtNs until = pte.lease_until.load(std::memory_order_acquire);
  if (until == 0 || vclock::now() < until) return;
  const NodeId home = pte.lease_home.load(std::memory_order_acquire);
  if (home == kInvalidNode || home == node) return;

  // Snapshot the current frame under the PTE lock — the piggybacked
  // journal image — then renew with no locks held across the RPC, so a
  // concurrent recall (which takes only PTE locks owner-side) can never
  // deadlock against a renewal blocked on the entry mutex home-side.
  std::uint8_t image[kPageSize];
  std::uint64_t version;
  pte.lock.lock();
  if (pte.state.load(std::memory_order_acquire) != PageState::kExclusive) {
    // Revoked between the fault and the write retry; nothing to renew.
    pte.lease_until.store(0, std::memory_order_release);
    pte.lock.unlock();
    return;
  }
  std::memcpy(image, pte.ensure_frame(), kPageSize);
  version = pte.version;
  pte.lock.unlock();

  if (engine_on()) {
    // Engine path: the renewal rides the queue as a background transaction
    // and the write proceeds immediately — the synchronous RPC detour on
    // the write fast path is retired (§ async_engine).
    renew_lease_via_engine(node, task, page, pte, version, image);
    return;
  }

  net::LeaseRenewPayload payload{};
  payload.process_id = config_.process_id;
  payload.page = page;
  payload.version = version;
  payload.owner = node;
  Message msg;
  msg.type = MsgType::kLeaseRenew;
  msg.dst = home;
  msg.payload.resize(sizeof(payload) + kPageSize);
  std::memcpy(msg.payload.data(), &payload, sizeof(payload));
  std::memcpy(msg.payload.data() + sizeof(payload), image, kPageSize);

  // The renewal handler journals into the home frame in this thread, so
  // budget the (rare) home-side frame allocation up front, with no locks
  // held; the unconsumed credit is dropped after the call.
  admit_frames(home, 1);
  Message reply;
  try {
    reply = fabric_.call(node, msg);
  } catch (const net::RpcError&) {
    // Best-effort (NodeDeadError included): an unreachable home leaves the
    // lease expired; the patrol or death recovery settles the page, and
    // the write proceeds on the still-exclusive copy.
    frame_pool(home).drop_credit();
    return;
  }
  frame_pool(home).drop_credit();
  const auto ack = reply.payload_prefix_as<net::LeaseRenewAckPayload>();
  if (ack.renewed != 0) {
    pte.lease_until.store(vclock::now() + config_.lease_ns,
                          std::memory_order_release);
    record_fault(node, task, page, prof::FaultKind::kLease, "renew");
  } else {
    // Stale renewal: a recall or home migration won the race. Drop the
    // lease mirror; the next write faults or re-leases through the grant.
    pte.lease_until.store(0, std::memory_order_release);
    pte.lease_home.store(kInvalidNode, std::memory_order_release);
  }
}

void Dsm::renew_lease_via_engine(NodeId node, TaskId task, GAddr page,
                                 Pte& pte, std::uint64_t version,
                                 const std::uint8_t* image) {
  using Step = core::ProtocolEngine::Step;
  using Status = core::ProtocolEngine::Status;
  const NodeId home = pte.lease_home.load(std::memory_order_acquire);
  if (home == kInvalidNode || home == node) return;

  // Extend the local mirror optimistically so the writes that keep
  // arriving while the renewal is in flight do not each submit another
  // one. The window this exposes is exactly the one-lease-window bound the
  // blocking best-effort path (unreachable home) already accepts; a stale
  // ack claws it back below.
  pte.lease_until.store(vclock::now() + config_.lease_ns,
                        std::memory_order_release);

  net::LeaseRenewPayload payload{};
  payload.process_id = config_.process_id;
  payload.page = page;
  payload.version = version;
  payload.owner = node;
  Message msg;
  msg.type = MsgType::kLeaseRenew;
  msg.dst = home;
  msg.payload.resize(sizeof(payload) + kPageSize);
  std::memcpy(msg.payload.data(), &payload, sizeof(payload));
  std::memcpy(msg.payload.data() + sizeof(payload), image, kPageSize);

  core::ProtocolEngine::Submit submit;
  submit.node = node;
  submit.request = std::move(msg);
  // The renewal handler may materialize the home frame for the journal.
  submit.needs.emplace_back(home, 1);
  // PTE pointers stay stable until table teardown, so the background
  // resume may dereference it after this frame unwinds.
  submit.resume = [this, node, task, page, pte_ptr = &pte,
                   home](net::CallOutcome&& out) -> Step {
    Step step;
    if (out.status != Status::kOk) {
      // Best-effort, like the blocking catch: an unreachable home leaves
      // the lease to the patrol or death recovery.
      return step;
    }
    const auto ack = out.reply.payload_prefix_as<net::LeaseRenewAckPayload>();
    pte_ptr->lock.lock();
    // Apply only if this node still holds the page under the same home —
    // a recall or re-grant may have raced the background renewal.
    const bool still_ours =
        pte_ptr->state.load(std::memory_order_acquire) ==
            PageState::kExclusive &&
        pte_ptr->lease_home.load(std::memory_order_acquire) == home;
    if (still_ours) {
      if (ack.renewed != 0) {
        pte_ptr->lease_until.store(vclock::now() + config_.lease_ns,
                                   std::memory_order_release);
      } else {
        pte_ptr->lease_until.store(0, std::memory_order_release);
        pte_ptr->lease_home.store(kInvalidNode, std::memory_order_release);
      }
    }
    pte_ptr->lock.unlock();
    if (ack.renewed != 0) {
      record_fault(node, task, page, prof::FaultKind::kLease, "renew");
    }
    return step;
  };
  engine_->submit_background(std::move(submit));
}

Message Dsm::handle_lease_renew(const Message& msg) {
  const auto payload = msg.payload_prefix_as<net::LeaseRenewPayload>();
  DEX_CHECK(payload.process_id == config_.process_id);
  DEX_CHECK_MSG(
      msg.payload.size() == sizeof(net::LeaseRenewPayload) + kPageSize,
      "lease renewal must piggyback the page image");
  const NodeId at = msg.dst;
  vclock::advance(fabric_.cost().lease_renew_service_ns);

  Message reply;
  reply.type = MsgType::kLeaseRenew;
  net::LeaseRenewAckPayload ack{};

  DirEntry& entry = directory_.entry(payload.page);
  {
    // Renewals block rather than retry: the owner holds no locks while
    // waiting, and a recall serialized ahead of us flips the ownership so
    // the validation below fails closed (renewed = 0).
    ScopedGateBlock gate_block("lease_renew_entry_lock");
    std::lock_guard<HybridLatch> lock(entry.latch);
    if (config_.lease_ns > 0 && home_of(entry) == at &&
        entry.exclusive_owner == payload.owner &&
        entry.version == payload.version) {
      // Journal the piggybacked image into the home frame. The home PTE
      // stays invalid (the owner remains exclusive); only the bytes and
      // the journal timestamp change, so owner-death recovery can adopt
      // an image at most one lease window stale.
      Pte& home_pte = page_table(at).get_or_create(payload.page);
      home_pte.lock.lock();
      home_pte.seq.fetch_add(1, std::memory_order_release);
      std::memcpy(home_pte.ensure_frame(),
                  msg.payload.data() + sizeof(net::LeaseRenewPayload),
                  kPageSize);
      home_pte.seq.fetch_add(1, std::memory_order_release);
      home_pte.lock.unlock();
      set_journal(entry);
      if (replicating(at)) {
        record_journal_replication(
            entry, payload.page,
            msg.payload.data() + sizeof(net::LeaseRenewPayload));
      }
      entry.lease_until = vclock::now() + config_.lease_ns;
      ack.renewed = 1;
      stats_.lease_renewals.fetch_add(1, std::memory_order_relaxed);
      stats_.writebacks_piggybacked.fetch_add(1, std::memory_order_relaxed);
      auto& chaos = prof::ChaosCounters::instance();
      chaos.lease_renewals.fetch_add(1, std::memory_order_relaxed);
      chaos.writebacks_piggybacked.fetch_add(1, std::memory_order_relaxed);
    }
  }
  reply.set_payload(ack);
  return reply;
}

void Dsm::lease_patrol() {
  // The patrol runs off the fault path on a periodic cadence — exactly the
  // place to drain any directory-replication records a quiet workload has
  // not pushed past the batching threshold.
  flush_replication();
  if (config_.lease_ns <= 0) return;
  // Snapshot entries first — same ABBA avoidance as reclaim_node.
  std::vector<std::pair<GAddr, DirEntry*>> entries;
  directory_.for_each([&](std::uint64_t page_idx, DirEntry& entry) {
    entries.emplace_back(static_cast<GAddr>(page_idx) << kPageShift, &entry);
  });
  for (auto& [page, entry] : entries) {
    ScopedGateBlock gate_block("lease_patrol_entry_lock");
    std::lock_guard<HybridLatch> lock(entry->latch);
    if (!entry->materialized) continue;
    const NodeId home = home_of(*entry);
    const NodeId owner = entry->exclusive_owner;
    if (entry->journal_ts > 0 && (owner == kInvalidNode || owner == home)) {
      // Journal GC: the owner released (or the home reclaimed) the page
      // since the last piggybacked writeback, so the journal entry no
      // longer backs any remote dirty copy. Dropping it bounds the
      // journal_bytes gauge to pages with a live remote exclusive owner.
      clear_journal(*entry);
      stats_.journal_gcs.fetch_add(1, std::memory_order_relaxed);
    }
    if (owner == kInvalidNode || owner == home) continue;
    if (entry->lease_until == 0 || vclock::now() <= entry->lease_until) {
      continue;
    }
    if (fabric_.injector().node_dead(owner)) continue;  // recovery's job
    // Expired lease on an idle owner: recall with a shared downgrade so
    // its final writes land in the home frame. The owner refaults on its
    // next write and receives a fresh lease with the new grant.
    const RecallResult recall = recall_from_owner(
        *entry, page, /*downgrade=*/true, kInvalidNode, entry->version,
        nullptr);
    entry->exclusive_owner = kInvalidNode;
    entry->lease_until = 0;
    clear_journal(*entry);
    entry->last_release_ts =
        std::max(entry->last_release_ts, vclock::now());
    if (recall != RecallResult::kOwnerLost) {
      stats_.lease_recalls.fetch_add(1, std::memory_order_relaxed);
      record_fault(owner, /*task=*/-1, page, prof::FaultKind::kLease,
                   "patrol");
    }
  }
}

void Dsm::account_owner_loss(DirEntry& entry, GAddr page) {
  auto& chaos = prof::ChaosCounters::instance();
  if (config_.lease_ns > 0 && entry.journal_ts > 0) {
    // The home frame holds a journaled image at most one lease window
    // stale: the death is a bounded recovery, not a silent dirty loss.
    failure_stats_.pages_recovered.fetch_add(1, std::memory_order_relaxed);
    chaos.pages_recovered.fetch_add(1, std::memory_order_relaxed);
    record_fault(entry.exclusive_owner, /*task=*/-1, page,
                 prof::FaultKind::kLease, "recover");
  } else {
    failure_stats_.dirty_pages_lost.fetch_add(1, std::memory_order_relaxed);
    chaos.dirty_pages_lost.fetch_add(1, std::memory_order_relaxed);
  }
}

void Dsm::set_journal(DirEntry& entry) {
  if (entry.journal_ts == 0) {
    stats_.journal_bytes.fetch_add(kPageSize, std::memory_order_relaxed);
  }
  entry.journal_ts = vclock::now();
}

void Dsm::clear_journal(DirEntry& entry) {
  if (entry.journal_ts != 0) {
    stats_.journal_bytes.fetch_sub(kPageSize, std::memory_order_relaxed);
  }
  entry.journal_ts = 0;
}

// ---------------------------------------------------------------------------
// Bounded frames (DsmConfig::frame_budget_bytes)
// ---------------------------------------------------------------------------

void Dsm::FrameCredit::admit(NodeId node, int pages) {
  dsm_.admit_frames(node, pages);
  for (NodeId n : nodes_) {
    if (n == node) return;
  }
  nodes_.push_back(node);
}

void Dsm::FrameCredit::release() {
  for (NodeId node : nodes_) dsm_.frame_pool(node).drop_credit();
  nodes_.clear();
}

void Dsm::admit_frames(NodeId node, int pages) {
  FramePool& pool = frame_pool(node);
  if (pool.budget_bytes() == 0) return;
  const std::size_t need = static_cast<std::size_t>(pages) * kPageSize;
  if (pool.try_reserve_upto(need)) return;

  // Budget pressure: evict, re-reserve, and wait with the fabric's
  // jittered backoff between rounds. Bounded — after the retry budget the
  // fault is admitted over budget (counted) rather than aborted.
  const net::RetryPolicy& retry = fabric_.retry_policy();
  const std::uint64_t salt =
      net::RetryPolicy::salt_of(node, node, MsgType::kEvictPage);
  const std::size_t batch =
      static_cast<std::size_t>(std::max(1, config_.evict_batch_pages)) *
      kPageSize;
  const VirtNs start = vclock::now();
  stats_.backpressure_stalls.fetch_add(1, std::memory_order_relaxed);
  for (int round = 0; round < config_.max_backpressure_rounds; ++round) {
    evict_frames(node, need + batch);
    if (pool.try_reserve_upto(need)) {
      stats_.backpressure_wait_ns.fetch_add(vclock::now() - start,
                                            std::memory_order_relaxed);
      return;
    }
    vclock::advance(retry.backoff_for(round, salt));
    std::this_thread::yield();
  }
  // Everything is pinned or hot: forward progress over strictness.
  pool.force_reserve_upto(need);
  stats_.backpressure_overshoots.fetch_add(1, std::memory_order_relaxed);
  stats_.backpressure_wait_ns.fetch_add(vclock::now() - start,
                                        std::memory_order_relaxed);
}

std::size_t Dsm::evict_frames(NodeId node, std::size_t target_bytes) {
  FramePool& pool = frame_pool(node);

  // Snapshot the resident candidates (PTE pointers stay valid until
  // zap/teardown), sort by address and rotate to the CLOCK hand so
  // successive sweeps rotate through the table.
  std::vector<std::pair<GAddr, Pte*>> candidates;
  page_table(node).for_each([&](GAddr page, Pte& pte) {
    if (pte.data() != nullptr) candidates.emplace_back(page, &pte);
  });
  if (candidates.empty()) return 0;
  std::sort(candidates.begin(), candidates.end());
  const GAddr hand = pool.clock_hand();
  const auto pivot = std::upper_bound(
      candidates.begin(), candidates.end(), hand,
      [](GAddr h, const std::pair<GAddr, Pte*>& c) { return h < c.first; });
  std::rotate(candidates.begin(), pivot, candidates.end());

  // Two rotations: the first clears reference bits (second chance) and
  // takes what was already cold; the second takes what stayed cold.
  std::size_t freed = 0;
  for (int pass = 0; pass < 2 && freed < target_bytes; ++pass) {
    for (auto& [page, pte] : candidates) {
      if (freed >= target_bytes) break;
      if (pte->data() == nullptr) continue;  // already retired
      if (pte->pinned()) {
        stats_.eviction_skips.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (pte->referenced.exchange(0, std::memory_order_relaxed) != 0) {
        stats_.eviction_skips.fetch_add(1, std::memory_order_relaxed);
        continue;  // second chance
      }
      const std::size_t got = evict_candidate(node, page, *pte);
      if (got != 0) {
        freed += got;
        pool.set_clock_hand(page);
      }
    }
  }
  return freed;
}

std::size_t Dsm::evict_candidate(NodeId node, GAddr page, Pte& pte) {
  DirEntry* entry = directory_.find(page);

  // Classify the copy under the entry lock (try_lock only: a busy entry
  // means an in-flight transaction — skip, don't queue). The lock is
  // released before any RPC; the kEvictPage handler re-validates under it,
  // so a raced eviction fails closed home-side.
  bool local_free = false;
  bool exclusive = false;
  NodeId home = current_origin();
  if (entry == nullptr) {
    local_free = true;  // never materialized: a leftover invalid frame
  } else {
    if (!entry->latch.try_lock()) {
      stats_.eviction_skips.fetch_add(1, std::memory_order_relaxed);
      return 0;
    }
    std::lock_guard<HybridLatch> lock(entry->latch, std::adopt_lock);
    home = home_of(*entry);
    if (!entry->materialized) {
      local_free = true;
    } else if (home == node) {
      // This node serves the page: the frame is the grant source and only
      // the cold tier may take it (entry lock still held here).
      return evict_home_frame(node, page, pte, *entry);
    } else {
      const PageState s = pte.state.load(std::memory_order_acquire);
      if (s == PageState::kInvalid) {
        // Kept only for a possible ownership-only regrant: free it with
        // no directory coordination (the fence makes the version stale).
        local_free = true;
      } else {
        exclusive = s == PageState::kExclusive;
      }
    }
  }

  if (local_free) {
    pte.lock.lock();
    if (pte.state.load(std::memory_order_acquire) != PageState::kInvalid ||
        pte.data() == nullptr) {
      pte.lock.unlock();  // re-granted (or already freed) since classify
      return 0;
    }
    pte.seq.fetch_add(1, std::memory_order_release);
    pte.version = kNoVersion;
    pte.drop_spill();
    pte.drop_frame();
    pte.seq.fetch_add(1, std::memory_order_release);
    pte.lock.unlock();
    stats_.evictions_local.fetch_add(1, std::memory_order_relaxed);
    return kPageSize;
  }

  // Remote copy: snapshot (version [+ image for a dirty copy]) under the
  // PTE lock, then notify the home with no locks held.
  net::EvictPagePayload payload{};
  payload.process_id = config_.process_id;
  payload.page = page;
  payload.node = node;
  std::uint8_t image[kPageSize];
  pte.lock.lock();
  const PageState s = pte.state.load(std::memory_order_acquire);
  if (pte.data() == nullptr ||
      (s == PageState::kExclusive) != exclusive ||
      (!exclusive && s != PageState::kShared)) {
    pte.lock.unlock();
    return 0;  // transitioned since classify; let a later sweep re-see it
  }
  payload.version = pte.version;
  payload.exclusive = exclusive ? 1 : 0;
  if (exclusive) std::memcpy(image, pte.data(), kPageSize);
  pte.lock.unlock();

  // A dirty writeback may materialize the home frame in this thread (the
  // handler runs here): reserve that frame on the home's pool up front,
  // and hand back whatever the install did not consume. No room at the
  // home means this candidate is skipped, not forced.
  FramePool& hpool = frame_pool(home);
  std::size_t before = 0;
  bool reserved = false;
  if (exclusive) {
    Pte* home_pte = page_table(home).find(page);
    bool resident = false;
    if (home_pte != nullptr) {
      home_pte->lock.lock();
      resident = home_pte->data() != nullptr;
      home_pte->lock.unlock();
    }
    if (!resident) {
      before = hpool.credit_bytes();
      if (!hpool.try_reserve_upto(before + kPageSize)) {
        stats_.eviction_skips.fetch_add(1, std::memory_order_relaxed);
        return 0;
      }
      reserved = true;
    }
  }

  Message msg;
  msg.type = MsgType::kEvictPage;
  msg.dst = home;
  if (exclusive) {
    msg.payload.resize(sizeof(payload) + kPageSize);
    std::memcpy(msg.payload.data(), &payload, sizeof(payload));
    std::memcpy(msg.payload.data() + sizeof(payload), image, kPageSize);
  } else {
    msg.set_payload(payload);
  }

  std::size_t freed = 0;
  try {
    const Message reply = fabric_.call(node, msg);
    const auto ack = reply.payload_as<net::EvictPageAckPayload>();
    switch (static_cast<net::EvictResult>(ack.result)) {
      case net::EvictResult::kEvicted:
        if (exclusive) {
          stats_.evictions_exclusive.fetch_add(1, std::memory_order_relaxed);
        } else {
          stats_.evictions_shared.fetch_add(1, std::memory_order_relaxed);
        }
        record_fault(node, /*task=*/-1, page, prof::FaultKind::kEvict,
                     nullptr);
        freed = kPageSize;
        break;
      case net::EvictResult::kStale:
        stats_.eviction_stale.fetch_add(1, std::memory_order_relaxed);
        break;
      case net::EvictResult::kBusy:
      case net::EvictResult::kWrongHome:
        stats_.eviction_skips.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  } catch (const net::RpcError&) {
    // Home dead or unreachable: eviction is best-effort and the copy is
    // intact — skip with NO loss accounting (membership recovery owns the
    // dead-home bookkeeping; double-counting here would corrupt it).
    stats_.eviction_skips.fetch_add(1, std::memory_order_relaxed);
  }
  if (reserved) {
    const std::size_t after = hpool.credit_bytes();
    if (after > before) hpool.unreserve(after - before);
  }
  return freed;
}

std::size_t Dsm::evict_home_frame(NodeId node, GAddr /*page*/, Pte& pte,
                                  DirEntry& entry) {
  DEX_CHECK(home_of(entry) == node);
  FramePool& pool = frame_pool(node);
  if (!pool.spill_enabled()) return 0;  // home frames never drop outright
  if (pte.pinned()) {
    stats_.eviction_skips.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  pte.lock.lock();
  std::uint8_t* frame = pte.data();
  if (frame == nullptr || pte.spill_slot != SpillFile::kNoSlot) {
    pte.lock.unlock();
    return 0;
  }
  pte.seq.fetch_add(1, std::memory_order_release);
  const std::uint32_t slot = pool.spill_out(frame);
  if (slot == SpillFile::kNoSlot) {
    // Cold tier unavailable (disk failure latch): keep the frame.
    pte.seq.fetch_add(1, std::memory_order_release);
    pte.lock.unlock();
    stats_.eviction_skips.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  // State, version and the sharer bit stay: the copy still exists, its
  // bytes just live in the cold tier until a grant path ensure_frame()s
  // it back in under this entry's lock.
  pte.spill_slot = slot;
  pte.drop_frame();
  pte.seq.fetch_add(1, std::memory_order_release);
  pte.lock.unlock();
  return kPageSize;
}

void Dsm::fence_and_free(NodeId node, GAddr page) {
  Pte* pte = page_table(node).find(page);
  if (pte == nullptr) return;
  pte->lock.lock();
  pte->seq.fetch_add(1, std::memory_order_release);
  pte->state.store(PageState::kInvalid, std::memory_order_release);
  pte->version = kNoVersion;
  pte->drop_spill();
  pte->drop_frame();
  pte->seq.fetch_add(1, std::memory_order_release);
  pte->lease_until.store(0, std::memory_order_release);
  pte->lease_home.store(kInvalidNode, std::memory_order_release);
  pte->lock.unlock();
}

bool Dsm::copy_current(NodeId node, GAddr page, std::uint64_t version) {
  Pte* pte = page_table(node).find(page);
  if (pte == nullptr) return false;
  pte->lock.lock();
  const bool current = pte->version == version &&
                       (pte->data() != nullptr ||
                        pte->spill_slot != SpillFile::kNoSlot);
  pte->lock.unlock();
  return current;
}

Message Dsm::handle_evict_page(const Message& msg) {
  const auto payload = msg.payload_prefix_as<net::EvictPagePayload>();
  DEX_CHECK(payload.process_id == config_.process_id);
  const NodeId at = msg.dst;
  const NodeId evictor = payload.node;
  vclock::advance(fabric_.cost().evict_service_ns);

  Message reply;
  reply.type = MsgType::kEvictPage;
  net::EvictPageAckPayload ack{};
  ack.home = at;
  auto respond = [&](net::EvictResult result) {
    ack.result = static_cast<std::uint8_t>(result);
    reply.set_payload(ack);
    return reply;
  };

  DirEntry* entry = directory_.find(payload.page);
  if (entry == nullptr) return respond(net::EvictResult::kStale);
  if (!entry->latch.try_lock()) {
    // An in-flight transaction owns the entry; eviction is best-effort,
    // so the evictor skips rather than queueing behind it.
    return respond(net::EvictResult::kBusy);
  }
  std::lock_guard<HybridLatch> lock(entry->latch, std::adopt_lock);

  if (!entry->materialized) return respond(net::EvictResult::kStale);
  if (home_of(*entry) != at) {
    ack.home = home_of(*entry);
    return respond(net::EvictResult::kWrongHome);
  }
  if (entry->version != payload.version || evictor == at) {
    return respond(net::EvictResult::kStale);
  }
  // A pinned evictor PTE means a fault transaction for this page is in
  // flight from that very node (the leader pins before reading its
  // known_version): retiring the frame now could alias its grant.
  Pte* epte = page_table(evictor).find(payload.page);
  if (epte == nullptr) return respond(net::EvictResult::kStale);
  if (epte->pinned()) return respond(net::EvictResult::kBusy);

  if (payload.exclusive != 0) {
    if (entry->exclusive_owner != evictor) {
      return respond(net::EvictResult::kStale);
    }
    DEX_CHECK_MSG(
        msg.payload.size() == sizeof(net::EvictPagePayload) + kPageSize,
        "dirty eviction must carry the page image");
    // Write the dirty image through to the home frame — the same
    // install the lease-journal writeback uses — before the only other
    // copy disappears.
    Pte& home_pte = page_table(at).get_or_create(payload.page);
    home_pte.lock.lock();
    home_pte.seq.fetch_add(1, std::memory_order_release);
    std::memcpy(home_pte.ensure_frame(),
                msg.payload.data() + sizeof(net::EvictPagePayload),
                kPageSize);
    home_pte.version = entry->version;
    home_pte.state.store(PageState::kShared, std::memory_order_release);
    home_pte.seq.fetch_add(1, std::memory_order_release);
    home_pte.lock.unlock();
    stats_.writebacks.fetch_add(1, std::memory_order_relaxed);
    entry->exclusive_owner = kInvalidNode;
    entry->lease_until = 0;
    clear_journal(*entry);
    entry->sharers.remove(evictor);
    entry->sharers.add(at);
    entry->last_release_ts = std::max(entry->last_release_ts, vclock::now());
  } else {
    if (entry->exclusive_owner != kInvalidNode ||
        !entry->sharers.contains(evictor)) {
      return respond(net::EvictResult::kStale);
    }
    entry->sharers.remove(evictor);
  }
  // Retire the evictor's copy. The handler runs in the evictor's own
  // thread, so the frame goes back to the pressured pool right here.
  fence_and_free(evictor, payload.page);
  return respond(net::EvictResult::kEvicted);
}

void Dsm::frame_patrol() {
  for (NodeId node = 0; node < config_.num_nodes; ++node) {
    FramePool& pool = frame_pool(node);
    if (pool.budget_bytes() == 0) continue;
    const std::size_t used = pool.used_bytes();
    if (used <= pool.budget_bytes()) continue;
    const std::size_t batch =
        static_cast<std::size_t>(std::max(1, config_.evict_batch_pages)) *
        kPageSize;
    const std::size_t target = used - pool.budget_bytes() + batch;
    if (engine_on()) {
      patrol_evict_via_engine(node, target);
    } else {
      evict_frames(node, target);
    }
  }
}

void Dsm::patrol_evict_via_engine(NodeId node, std::size_t target_bytes) {
  using Step = core::ProtocolEngine::Step;
  using Status = core::ProtocolEngine::Status;
  FramePool& pool = frame_pool(node);

  // Same CLOCK sweep as evict_frames; only the kEvictPage round-trip
  // changes shape — each remote candidate becomes a background engine
  // transaction, so writebacks to the same home leave in one doorbell
  // batch when the queue drains below. Local frees and home-frame spills
  // stay synchronous (no wire work). Submissions count optimistically
  // toward the target; a stale/busy ack just leaves the frame for the
  // next patrol round.
  std::vector<std::pair<GAddr, Pte*>> candidates;
  page_table(node).for_each([&](GAddr page, Pte& pte) {
    if (pte.data() != nullptr) candidates.emplace_back(page, &pte);
  });
  if (candidates.empty()) return;
  std::sort(candidates.begin(), candidates.end());
  const GAddr hand = pool.clock_hand();
  const auto pivot = std::upper_bound(
      candidates.begin(), candidates.end(), hand,
      [](GAddr h, const std::pair<GAddr, Pte*>& c) { return h < c.first; });
  std::rotate(candidates.begin(), pivot, candidates.end());

  // Classify + snapshot one candidate and submit its eviction; returns the
  // bytes this candidate is expected to free (0 = skipped).
  auto submit_candidate = [&](GAddr page, Pte& pte) -> std::size_t {
    DirEntry* entry = directory_.find(page);
    bool local_free = false;
    bool exclusive = false;
    NodeId home = current_origin();
    if (entry == nullptr) {
      local_free = true;
    } else {
      if (!entry->latch.try_lock()) {
        stats_.eviction_skips.fetch_add(1, std::memory_order_relaxed);
        return 0;
      }
      std::lock_guard<HybridLatch> lock(entry->latch, std::adopt_lock);
      home = home_of(*entry);
      if (!entry->materialized) {
        local_free = true;
      } else if (home == node) {
        return evict_home_frame(node, page, pte, *entry);
      } else {
        const PageState s = pte.state.load(std::memory_order_acquire);
        if (s == PageState::kInvalid) {
          local_free = true;
        } else {
          exclusive = s == PageState::kExclusive;
        }
      }
    }

    if (local_free) {
      pte.lock.lock();
      if (pte.state.load(std::memory_order_acquire) != PageState::kInvalid ||
          pte.data() == nullptr) {
        pte.lock.unlock();
        return 0;
      }
      pte.seq.fetch_add(1, std::memory_order_release);
      pte.version = kNoVersion;
      pte.drop_spill();
      pte.drop_frame();
      pte.seq.fetch_add(1, std::memory_order_release);
      pte.lock.unlock();
      stats_.evictions_local.fetch_add(1, std::memory_order_relaxed);
      return kPageSize;
    }

    // Remote copy: snapshot under the PTE lock, then let the engine carry
    // the kEvictPage notification. The home re-validates under its entry
    // lock, so a raced eviction fails closed exactly as in the
    // synchronous path.
    net::EvictPagePayload payload{};
    payload.process_id = config_.process_id;
    payload.page = page;
    payload.node = node;
    std::uint8_t image[kPageSize];
    pte.lock.lock();
    const PageState s = pte.state.load(std::memory_order_acquire);
    if (pte.data() == nullptr ||
        (s == PageState::kExclusive) != exclusive ||
        (!exclusive && s != PageState::kShared)) {
      pte.lock.unlock();
      return 0;
    }
    payload.version = pte.version;
    payload.exclusive = exclusive ? 1 : 0;
    if (exclusive) std::memcpy(image, pte.data(), kPageSize);
    pte.lock.unlock();

    Message msg;
    msg.type = MsgType::kEvictPage;
    msg.dst = home;
    if (exclusive) {
      msg.payload.resize(sizeof(payload) + kPageSize);
      std::memcpy(msg.payload.data(), &payload, sizeof(payload));
      std::memcpy(msg.payload.data() + sizeof(payload), image, kPageSize);
    } else {
      msg.set_payload(payload);
    }

    core::ProtocolEngine::Submit submit;
    submit.node = node;
    submit.request = std::move(msg);
    if (exclusive) {
      // A dirty writeback may materialize the home frame in the pump's
      // thread; the pump's batch admission replaces the synchronous
      // reserve-or-skip dance.
      Pte* home_pte = page_table(home).find(page);
      bool resident = false;
      if (home_pte != nullptr) {
        home_pte->lock.lock();
        resident = home_pte->data() != nullptr;
        home_pte->lock.unlock();
      }
      if (!resident) submit.needs.emplace_back(home, 1);
    }
    submit.resume = [this, node, page,
                     exclusive](net::CallOutcome&& out) -> Step {
      Step step;  // always done: eviction is best-effort, never resent
      if (out.status != Status::kOk) {
        stats_.eviction_skips.fetch_add(1, std::memory_order_relaxed);
        return step;
      }
      const auto ack = out.reply.payload_as<net::EvictPageAckPayload>();
      switch (static_cast<net::EvictResult>(ack.result)) {
        case net::EvictResult::kEvicted:
          if (exclusive) {
            stats_.evictions_exclusive.fetch_add(1,
                                                 std::memory_order_relaxed);
          } else {
            stats_.evictions_shared.fetch_add(1, std::memory_order_relaxed);
          }
          record_fault(node, /*task=*/-1, page, prof::FaultKind::kEvict,
                       nullptr);
          break;
        case net::EvictResult::kStale:
          stats_.eviction_stale.fetch_add(1, std::memory_order_relaxed);
          break;
        case net::EvictResult::kBusy:
        case net::EvictResult::kWrongHome:
          stats_.eviction_skips.fetch_add(1, std::memory_order_relaxed);
          break;
      }
      return step;
    };
    engine_->submit_background(std::move(submit));
    return kPageSize;
  };

  std::size_t expected = 0;
  for (int pass = 0; pass < 2 && expected < target_bytes; ++pass) {
    for (auto& [page, pte] : candidates) {
      if (expected >= target_bytes) break;
      if (pte->data() == nullptr) continue;
      if (pte->pinned()) {
        stats_.eviction_skips.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (pte->referenced.exchange(0, std::memory_order_relaxed) != 0) {
        stats_.eviction_skips.fetch_add(1, std::memory_order_relaxed);
        continue;  // second chance
      }
      const std::size_t got = submit_candidate(page, *pte);
      if (got != 0) {
        expected += got;
        pool.set_clock_hand(page);
      }
    }
  }
  // Drive the submissions now — same-home writebacks coalesce into
  // doorbell batches here.
  engine_->drain(node);
}

// ---------------------------------------------------------------------------
// Adaptive home migration
// ---------------------------------------------------------------------------

void Dsm::maybe_migrate_home(DirEntry& entry, GAddr page, NodeId requester,
                             TaskId task) {
  if (!config_.home_migration) return;
  const NodeId home = home_of(entry);
  if (requester == home || requester == kInvalidNode) {
    // The home's own faults are already local (free); a run that survives
    // them would oscillate the entry between two active nodes, paying a
    // hand-off each swing for no locality gain. Reset instead.
    entry.hot_node = kInvalidNode;
    entry.hot_run = 0;
    return;
  }
  if (entry.hot_node == requester) {
    if (entry.hot_run < std::numeric_limits<std::uint16_t>::max()) {
      ++entry.hot_run;
    }
  } else {
    entry.hot_node = requester;
    entry.hot_run = 1;
  }
  if (entry.hot_run < static_cast<std::uint16_t>(
                          std::max(1, config_.home_migrate_run))) {
    return;
  }

  // The requester dominates this page's faults: hand the entry off. The
  // entry mutex stays held across the RPC (exactly like a recall), so the
  // hand-off is atomic with respect to the protocol — in-flight requests
  // serialize behind it and then see the new home via kWrongHome. The new
  // home already holds a current copy: the transaction that tripped this
  // threshold just granted it data or confirmed its version.
  net::HomeMigratePayload payload{};
  payload.process_id = config_.process_id;
  payload.page = page;
  payload.old_home = home;
  payload.new_home = requester;
  payload.home_epoch = entry.home_epoch + 1;
  payload.version = entry.version;
  Message msg;
  msg.type = MsgType::kHomeMigrate;
  msg.dst = requester;
  msg.set_payload(payload);
  try {
    const Message reply = fabric_.call(home, msg);
    const auto ack = reply.payload_as<net::HomeMigrateAckPayload>();
    if (ack.accepted == 0) return;
  } catch (const net::NodeDeadError&) {
    return;  // candidate died: the entry stays at the old home
  } catch (const net::RpcError&) {
    // Hand-off lost on the wire after the retry budget: nothing moved.
    // The entry stays at the old home — the requester keeps faulting here
    // and the run re-arms, so a later attempt can still succeed.
    return;
  }

  entry.home = requester;
  ++entry.home_epoch;
  entry.hot_node = kInvalidNode;
  entry.hot_run = 0;
  // The old home remembers where it sent the entry, so requests landing
  // here out of inertia get a correct (not merely probable) redirect.
  home_cache(home).update(page, requester, entry.home_epoch);
  // A home move in either direction changes what the deputy must know:
  // away from the origin (the page stops being origin-homed) or back to it.
  if (replicating(home) || replicating(requester)) {
    record_entry_replication(entry, page);
  }
  stats_.home_migrations.fetch_add(1, std::memory_order_relaxed);
  record_fault(requester, task, page, prof::FaultKind::kHomeMigrate,
               nullptr);
}

Message Dsm::handle_home_migrate(const Message& msg) {
  const auto payload = msg.payload_as<net::HomeMigratePayload>();
  DEX_CHECK(payload.process_id == config_.process_id);
  const NodeId node = msg.dst;
  vclock::advance(fabric_.cost().home_migrate_service_ns);

  Message reply;
  reply.type = MsgType::kHomeMigrate;
  net::HomeMigrateAckPayload ack{};
  // The entry mutex is held by the old home for the whole hand-off, so
  // there is nothing to install here beyond the new home's own hint:
  // accepting is unconditional, and re-running on a duplicate delivery
  // converges (idempotent).
  ack.accepted = payload.new_home == node ? 1 : 0;
  if (ack.accepted != 0) {
    home_cache(node).update(payload.page, node, payload.home_epoch);
  }
  reply.set_payload(ack);
  return reply;
}

void Dsm::install_copy(NodeId node, GAddr page, const std::uint8_t* src,
                       PageState state, std::uint64_t version, NodeId from) {
  // Stage through a bounce buffer so the fabric's (potentially blocking)
  // sink reservation never happens under the PTE spinlock.
  std::uint8_t bounce[kPageSize];
  fabric_.bulk_transfer(from, node, src, kPageSize, bounce);

  Pte& pte = page_table(node).get_or_create(page);
  pte.lock.lock();
  pte.seq.fetch_add(1, std::memory_order_release);
  std::memcpy(pte.ensure_frame(), bounce, kPageSize);
  pte.version = version;
  pte.prefetched.store(0, std::memory_order_relaxed);  // a demand install
  pte.install_ts.store(vclock::now(), std::memory_order_relaxed);
  pte.state.store(state, std::memory_order_release);
  pte.seq.fetch_add(1, std::memory_order_release);
  pte.lock.unlock();
}

void Dsm::set_state(NodeId node, GAddr page, PageState state,
                    std::uint64_t version) {
  Pte& pte = page_table(node).get_or_create(page);
  pte.lock.lock();
  if (state != PageState::kInvalid) pte.ensure_frame();
  pte.version = version;
  pte.state.store(state, std::memory_order_release);
  pte.lock.unlock();
}

// ---------------------------------------------------------------------------
// VMA sync handlers
// ---------------------------------------------------------------------------

Message Dsm::handle_vma_request(const Message& msg) {
  const auto request = msg.payload_as<net::VmaRequestPayload>();
  DEX_CHECK(request.process_id == config_.process_id);
  Message reply;
  reply.type = MsgType::kVmaInfoReply;
  auto vma = origin_space().find(request.addr);
  VmaRecord record{};
  if (vma) {
    record = to_record(*vma);
  } else {
    record.valid = 0;
  }
  reply.set_payload(record);
  return reply;
}

Message Dsm::handle_vma_update(const Message& msg) {
  const auto update = msg.payload_as<net::VmaUpdatePayload>();
  DEX_CHECK(update.process_id == config_.process_id);
  const NodeId node = msg.dst;
  if (update.op == 0) {
    replica_space(node).munmap(update.start, update.end - update.start);
  } else {
    replica_space(node).mprotect(update.start, update.end - update.start,
                                 update.prot);
  }
  Message reply;
  reply.type = MsgType::kVmaUpdate;
  return reply;
}

// ---------------------------------------------------------------------------
// Bulk data access (the Mmu surface)
// ---------------------------------------------------------------------------

void Dsm::read(NodeId node, TaskId task, GAddr addr, void* dst,
               std::size_t len) {
  auto* out = static_cast<std::uint8_t*>(dst);
  const net::CostModel& cost = fabric_.cost();
  while (len > 0) {
    const std::size_t off = page_offset(addr);
    const std::size_t n = std::min(len, kPageSize - off);
    for (;;) {
      Pte* pte = ensure(node, task, addr, Access::kRead);
      const std::uint32_t s1 = pte->seq.load(std::memory_order_acquire);
      if (s1 & 1) {  // install in flight
        std::this_thread::yield();
        continue;
      }
      if (!sufficient(pte->state.load(std::memory_order_acquire),
                      Access::kRead)) {
        continue;  // revoked between ensure and read
      }
      const std::uint8_t* frame = pte->data();
      if (frame == nullptr) {
        // Evicted (or parked in the cold tier) under budget pressure:
        // admit a frame with no locks held, make the image resident, and
        // retry the seqlock read.
        admit_frames(node, 1);
        pte->lock.lock();
        if (pte->state.load(std::memory_order_acquire) !=
            PageState::kInvalid) {
          pte->ensure_frame();
        }
        pte->lock.unlock();
        frame_pool(node).drop_credit();
        continue;
      }
      std::memcpy(out, frame + off, n);
      const std::uint32_t s2 = pte->seq.load(std::memory_order_acquire);
      if (s1 == s2) break;
    }
    vclock::advance(cost.dram_ns(n, node_load_ ? node_load_->on(node) : 1,
                                 config_.stream_intensity));
    addr += n;
    out += n;
    len -= n;
  }
}

void Dsm::write(NodeId node, TaskId task, GAddr addr, const void* src,
                std::size_t len) {
  const auto* in = static_cast<const std::uint8_t*>(src);
  const net::CostModel& cost = fabric_.cost();
  while (len > 0) {
    const std::size_t off = page_offset(addr);
    const std::size_t n = std::min(len, kPageSize - off);
    for (;;) {
      Pte* pte = ensure(node, task, addr, Access::kWrite);
      if (config_.lease_ns > 0) {
        maybe_renew_lease(node, task, page_base(addr), *pte);
      }
      if (pte->data() == nullptr) {
        // A home-exclusive frame parked in the cold tier: admit a frame
        // with no locks held before faulting the image back in.
        admit_frames(node, 1);
        pte->lock.lock();
        if (pte->state.load(std::memory_order_acquire) !=
            PageState::kInvalid) {
          pte->ensure_frame();
        }
        pte->lock.unlock();
        frame_pool(node).drop_credit();
      }
      pte->lock.lock();
      if (pte->state.load(std::memory_order_acquire) !=
              PageState::kExclusive ||
          pte->data() == nullptr) {
        pte->lock.unlock();
        continue;  // revoked (or re-evicted) between ensure and write
      }
      std::memcpy(pte->data() + off, in, n);
      pte->lock.unlock();
      break;
    }
    vclock::advance(cost.dram_ns(n, node_load_ ? node_load_->on(node) : 1,
                                 config_.stream_intensity));
    addr += n;
    in += n;
    len -= n;
  }
}

std::uint64_t Dsm::atomic_fetch_add_u64(NodeId node, TaskId task, GAddr addr,
                                        std::uint64_t delta) {
  DEX_CHECK_MSG(page_offset(addr) + 8 <= kPageSize,
                "atomic straddles a page");
  for (;;) {
    Pte* pte = ensure(node, task, addr, Access::kWrite);
    if (config_.lease_ns > 0) {
      maybe_renew_lease(node, task, page_base(addr), *pte);
    }
    pte->lock.lock();
    if (pte->state.load(std::memory_order_acquire) != PageState::kExclusive) {
      pte->lock.unlock();
      continue;
    }
    std::uint8_t* frame = pte->data();
    if (frame == nullptr) {  // parked in the cold tier: fault it back in
      pte->lock.unlock();
      admit_frames(node, 1);
      pte->lock.lock();
      if (pte->state.load(std::memory_order_acquire) !=
          PageState::kInvalid) {
        pte->ensure_frame();
      }
      pte->lock.unlock();
      frame_pool(node).drop_credit();
      continue;
    }
    std::uint64_t old;
    std::memcpy(&old, frame + page_offset(addr), 8);
    const std::uint64_t updated = old + delta;
    std::memcpy(frame + page_offset(addr), &updated, 8);
    pte->lock.unlock();
    return old;
  }
}

std::uint64_t Dsm::atomic_exchange_u64(NodeId node, TaskId task, GAddr addr,
                                       std::uint64_t desired) {
  DEX_CHECK_MSG(page_offset(addr) + 8 <= kPageSize,
                "atomic straddles a page");
  for (;;) {
    Pte* pte = ensure(node, task, addr, Access::kWrite);
    if (config_.lease_ns > 0) {
      maybe_renew_lease(node, task, page_base(addr), *pte);
    }
    pte->lock.lock();
    if (pte->state.load(std::memory_order_acquire) != PageState::kExclusive) {
      pte->lock.unlock();
      continue;
    }
    std::uint8_t* frame = pte->data();
    if (frame == nullptr) {  // parked in the cold tier: fault it back in
      pte->lock.unlock();
      admit_frames(node, 1);
      pte->lock.lock();
      if (pte->state.load(std::memory_order_acquire) !=
          PageState::kInvalid) {
        pte->ensure_frame();
      }
      pte->lock.unlock();
      frame_pool(node).drop_credit();
      continue;
    }
    std::uint64_t old;
    std::memcpy(&old, frame + page_offset(addr), 8);
    std::memcpy(frame + page_offset(addr), &desired, 8);
    pte->lock.unlock();
    return old;
  }
}

bool Dsm::atomic_cas_u64(NodeId node, TaskId task, GAddr addr,
                         std::uint64_t expected, std::uint64_t desired) {
  DEX_CHECK_MSG(page_offset(addr) + 8 <= kPageSize,
                "atomic straddles a page");
  for (;;) {
    Pte* pte = ensure(node, task, addr, Access::kWrite);
    if (config_.lease_ns > 0) {
      maybe_renew_lease(node, task, page_base(addr), *pte);
    }
    pte->lock.lock();
    if (pte->state.load(std::memory_order_acquire) != PageState::kExclusive) {
      pte->lock.unlock();
      continue;
    }
    std::uint8_t* frame = pte->data();
    if (frame == nullptr) {  // parked in the cold tier: fault it back in
      pte->lock.unlock();
      admit_frames(node, 1);
      pte->lock.lock();
      if (pte->state.load(std::memory_order_acquire) !=
          PageState::kInvalid) {
        pte->ensure_frame();
      }
      pte->lock.unlock();
      frame_pool(node).drop_credit();
      continue;
    }
    std::uint64_t current;
    std::memcpy(&current, frame + page_offset(addr), 8);
    const bool success = current == expected;
    if (success) {
      std::memcpy(frame + page_offset(addr), &desired, 8);
    }
    pte->lock.unlock();
    return success;
  }
}

std::uint64_t Dsm::atomic_load_u64(NodeId node, TaskId task, GAddr addr) {
  DEX_CHECK_MSG(page_offset(addr) + 8 <= kPageSize,
                "atomic straddles a page");
  // Unlike plain reads (which tolerate the brief stale window a hardware
  // TLB shootdown also has), atomic loads must be linearizable: take the
  // PTE lock and re-check the state so a concurrent revocation either
  // orders after this read or forces a refault. Futex wait depends on it.
  for (;;) {
    Pte* pte = ensure(node, task, addr, Access::kRead);
    pte->lock.lock();
    const PageState s = pte->state.load(std::memory_order_acquire);
    if (s == PageState::kInvalid) {
      pte->lock.unlock();
      continue;
    }
    std::uint8_t* frame = pte->data();
    if (frame == nullptr) {  // parked in the cold tier: fault it back in
      pte->lock.unlock();
      admit_frames(node, 1);
      pte->lock.lock();
      if (pte->state.load(std::memory_order_acquire) !=
          PageState::kInvalid) {
        pte->ensure_frame();
      }
      pte->lock.unlock();
      frame_pool(node).drop_credit();
      continue;
    }
    std::uint64_t value;
    std::memcpy(&value, frame + page_offset(addr), 8);
    pte->lock.unlock();
    return value;
  }
}

void Dsm::atomic_store_u64(NodeId node, TaskId task, GAddr addr,
                           std::uint64_t value) {
  write(node, task, addr, &value, 8);
}

// ---------------------------------------------------------------------------
// Node-failure recovery
// ---------------------------------------------------------------------------

void Dsm::reclaim_node(NodeId dead) {
  if (dead == current_origin() && !promote_origin(dead)) {
    // Origin death without a failover path (knob off, or no survivor to
    // promote): surface a typed error instead of the old hard abort, so
    // chaos soaks report the unsupported death and keep running.
    throw OriginDeadError(dead);
  }
  const NodeId origin = current_origin();

  // Snapshot entry pointers first: transact() re-enters the directory
  // (tree lock) while holding an entry mutex, so locking entries inside
  // for_each — which holds the tree lock — would ABBA-deadlock against
  // in-flight transactions. Entry references stay valid outside munmap.
  std::vector<std::pair<GAddr, DirEntry*>> entries;
  directory_.for_each([&](std::uint64_t page_idx, DirEntry& entry) {
    entries.emplace_back(static_cast<GAddr>(page_idx) << kPageShift, &entry);
  });

  auto& chaos = prof::ChaosCounters::instance();
  for (auto& [page, entry] : entries) {
    ScopedGateBlock gate_block("reclaim_entry_lock");
    std::lock_guard<HybridLatch> lock(entry->latch);
    if (!entry->materialized) continue;
    bool reclaimed = false;
    if (home_of(*entry) == dead) {
      // The dead node homed this entry: the entry itself survives (it
      // lives in the shared directory structure), but its authority —
      // serialization point and authoritative frame — migrates back to
      // the origin. The epoch bump fences every hint minted for the dead
      // home; requesters chasing one get redirected and re-learn.
      entry->home = kInvalidNode;
      ++entry->home_epoch;
      entry->hot_node = kInvalidNode;
      entry->hot_run = 0;
      failure_stats_.homes_reclaimed.fetch_add(1, std::memory_order_relaxed);
      stats_.homes_reclaimed.fetch_add(1, std::memory_order_relaxed);
      reclaimed = true;
      if (entry->exclusive_owner != dead &&
          entry->exclusive_owner == kInvalidNode) {
        // Shared mode under a dead home: the home's frame (the grant
        // source) died too. Refresh the origin frame from a surviving
        // current-version sharer if one exists; otherwise the origin's
        // stale frame becomes authoritative and the loss is reported.
        entry->sharers.remove(dead);
        NodeId donor = kInvalidNode;
        entry->sharers.for_each([&](NodeId n) {
          if (donor != kInvalidNode || n == origin) return;
          Pte* p = page_table(n).find(page);
          if (p != nullptr && p->version == entry->version &&
              p->state.load(std::memory_order_acquire) ==
                  PageState::kShared) {
            donor = n;
          }
        });
        Pte* origin_pte = page_table(origin).find(page);
        const bool origin_current =
            origin_pte != nullptr && origin_pte->version == entry->version;
        if (!origin_current && donor != kInvalidNode) {
          Pte& src = *page_table(donor).find(page);
          Pte& dst = page_table(origin).get_or_create(page);
          std::uint8_t bounce[kPageSize];
          src.lock.lock();
          const std::uint8_t* donor_frame = src.ensure_frame();
          src.lock.unlock();
          fabric_.bulk_transfer(donor, origin, donor_frame, kPageSize,
                                bounce);
          dst.lock.lock();
          dst.seq.fetch_add(1, std::memory_order_release);
          std::memcpy(dst.ensure_frame(), bounce, kPageSize);
          dst.version = entry->version;
          dst.state.store(PageState::kShared, std::memory_order_release);
          dst.seq.fetch_add(1, std::memory_order_release);
          dst.lock.unlock();
        } else if (!origin_current) {
          // Last resort before declaring loss: the deputy's replicated
          // journal may hold the page image at exactly this version (the
          // dead home was the old origin and a lease writeback was
          // replicated before the death).
          if (!restore_from_replica(origin, page, entry->version)) {
            failure_stats_.dirty_pages_lost.fetch_add(
                1, std::memory_order_relaxed);
            chaos.dirty_pages_lost.fetch_add(1, std::memory_order_relaxed);
            // Drop every surviving stale copy: versions can restart only
            // from the (now authoritative) origin frame.
            entry->sharers.for_each([&](NodeId n) {
              if (n != origin) fence_copy(n, page);
            });
            entry->sharers.clear();
          }
        }
        set_state(origin, page, PageState::kShared, entry->version);
        entry->sharers.add(origin);
      }
    }
    if (entry->exclusive_owner == dead) {
      // The dirty copy died with the node. With a journaled lease
      // writeback the home frame is at most one lease window stale and the
      // page *recovers*; otherwise the last full writeback becomes
      // authoritative again and the loss is reported.
      const NodeId authoritative =
          home_of(*entry) == dead ? origin : home_of(*entry);
      if (home_of(*entry) == dead) {
        // The journal frame died *with* the home: journal_ts alone proves
        // nothing. Recovery is real only when the deputy's replica holds
        // the journaled image at the grant version.
        if (restore_from_replica(authoritative, page, entry->version)) {
          failure_stats_.pages_recovered.fetch_add(1,
                                                   std::memory_order_relaxed);
          chaos.pages_recovered.fetch_add(1, std::memory_order_relaxed);
          record_fault(entry->exclusive_owner, /*task=*/-1, page,
                       prof::FaultKind::kLease, "recover");
        } else {
          failure_stats_.dirty_pages_lost.fetch_add(
              1, std::memory_order_relaxed);
          chaos.dirty_pages_lost.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        account_owner_loss(*entry, page);
      }
      entry->exclusive_owner = kInvalidNode;
      entry->lease_until = 0;
      clear_journal(*entry);
      entry->sharers.clear();
      set_state(authoritative, page, PageState::kShared, entry->version);
      entry->sharers.add(authoritative);
      reclaimed = true;
    } else if (entry->sharers.contains(dead)) {
      entry->sharers.remove(dead);
      reclaimed = true;
    }
    // Wipe the dead node's PTE so local accesses there refault (and learn
    // of the death from the fabric), and so a healed node starts clean.
    // The seqcount bump forces concurrent seqlock readers to retry.
    Pte* pte = page_table(dead).find(page);
    if (pte != nullptr) {
      pte->lock.lock();
      pte->seq.fetch_add(1, std::memory_order_release);
      pte->state.store(PageState::kInvalid, std::memory_order_release);
      pte->version = kNoVersion;
      // A dead node's frames go back to its pool: the copies are gone with
      // the node, and a healed node must re-fault (and re-budget) them.
      pte->drop_spill();
      pte->drop_frame();
      pte->seq.fetch_add(1, std::memory_order_release);
      pte->lease_until.store(0, std::memory_order_release);
      pte->lease_home.store(kInvalidNode, std::memory_order_release);
      pte->lock.unlock();
    }
    if (reclaimed) {
      failure_stats_.pages_reclaimed.fetch_add(1, std::memory_order_relaxed);
      chaos.pages_reclaimed.fetch_add(1, std::memory_order_relaxed);
      record_fault(dead, /*task=*/-1, page, prof::FaultKind::kReclaim,
                   nullptr);
    }
  }

  // A healed node must not trust VMA replicas from its previous life; it
  // re-syncs on demand like a fresh node (§III-D). Same for its home
  // hints: they reflect a cluster the node is no longer part of — and for
  // any directory replica it held as deputy.
  replica_space(dead).clear();
  home_cache(dead).clear();
  if (!replica_stores_.empty()) {
    auto& store = *replica_stores_[dead];
    std::lock_guard<std::mutex> lock(store.mu);
    store.pages.clear();
  }
}

// ---------------------------------------------------------------------------
// Origin failover (DsmConfig::origin_failover)
// ---------------------------------------------------------------------------

namespace {
/// Pending directory-mutation records are pushed to the deputy once this
/// many have accumulated (or at the next patrol tick, whichever is first).
constexpr std::size_t kReplicationFlushThreshold = 8;
}  // namespace

NodeId Dsm::replication_deputy() const {
  // Deterministic: the next surviving node id after the current origin,
  // wrapping. Every node computes the same answer from the same liveness
  // view, so there is never a question of *which* replica is authoritative.
  const NodeId origin = current_origin();
  for (int step = 1; step < config_.num_nodes; ++step) {
    const NodeId n = static_cast<NodeId>(
        (static_cast<int>(origin) + step) % config_.num_nodes);
    if (!fabric_.injector().node_dead(n)) return n;
  }
  return kInvalidNode;
}

void Dsm::record_entry_replication(const DirEntry& entry, GAddr page) {
  if (!config_.origin_failover || config_.num_nodes <= 1) return;
  net::DirReplicateRecord rec{};
  rec.page = page;
  rec.version = entry.version;
  rec.sharers = entry.sharers.raw();
  rec.home_epoch = entry.home_epoch;
  rec.owner = entry.exclusive_owner;
  rec.home = entry.home;
  rec.op = net::DirReplicateOp::kEntry;
  std::lock_guard<std::mutex> lock(repl_mu_);
  repl_pending_.push_back(PendingReplication{rec, {}});
}

void Dsm::record_erase_replication(GAddr page) {
  if (!config_.origin_failover || config_.num_nodes <= 1) return;
  net::DirReplicateRecord rec{};
  rec.page = page;
  rec.op = net::DirReplicateOp::kErase;
  std::lock_guard<std::mutex> lock(repl_mu_);
  repl_pending_.push_back(PendingReplication{rec, {}});
}

void Dsm::record_vma_replication(GAddr start, std::uint64_t length,
                                 std::uint8_t prot) {
  if (!config_.origin_failover || config_.num_nodes <= 1) return;
  net::DirReplicateRecord rec{};
  rec.page = start;
  rec.version = length;  // kVma reuses the version field for the byte length
  rec.prot = prot;
  rec.op = net::DirReplicateOp::kVma;
  std::lock_guard<std::mutex> lock(repl_mu_);
  repl_pending_.push_back(PendingReplication{rec, {}});
}

void Dsm::record_journal_replication(const DirEntry& entry, GAddr page,
                                     const std::uint8_t* image) {
  if (!config_.origin_failover || config_.num_nodes <= 1) return;
  net::DirReplicateRecord rec{};
  rec.page = page;
  rec.version = entry.version;
  rec.sharers = entry.sharers.raw();
  rec.home_epoch = entry.home_epoch;
  rec.owner = entry.exclusive_owner;
  rec.home = entry.home;
  rec.op = net::DirReplicateOp::kJournal;
  PendingReplication pending{rec, {}};
  pending.image.assign(image, image + kPageSize);
  std::lock_guard<std::mutex> lock(repl_mu_);
  repl_pending_.push_back(std::move(pending));
}

void Dsm::maybe_flush_replication() {
  if (!config_.origin_failover) return;
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    if (repl_pending_.size() < kReplicationFlushThreshold) return;
  }
  flush_replication();
}

void Dsm::flush_replication() {
  if (!config_.origin_failover || config_.num_nodes <= 1) return;
  std::vector<PendingReplication> pending;
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    if (repl_pending_.empty()) return;
    pending.swap(repl_pending_);
  }
  const NodeId origin = current_origin();
  const NodeId deputy = replication_deputy();
  if (deputy == kInvalidNode) {
    // No survivor to replicate to: the records describe state only this
    // node holds anyway. Account the drop so the bench can see it.
    stats_.replication_lag.fetch_add(pending.size(),
                                     std::memory_order_relaxed);
    return;
  }
  std::size_t i = 0;
  while (i < pending.size()) {
    net::DirReplicatePayload payload{};
    payload.process_id = config_.process_id;
    payload.origin = origin;
    std::vector<const std::vector<std::uint8_t>*> images;
    while (i < pending.size() &&
           payload.count <
               static_cast<std::uint32_t>(net::kMaxDirReplicateRecords)) {
      payload.records[payload.count] = pending[i].record;
      if (pending[i].record.op == net::DirReplicateOp::kJournal) {
        images.push_back(&pending[i].image);
      }
      ++payload.count;
      ++i;
    }
    Message msg;
    msg.type = MsgType::kDirReplicate;
    msg.dst = deputy;
    msg.payload.resize(sizeof(payload) + images.size() * kPageSize);
    std::memcpy(msg.payload.data(), &payload, sizeof(payload));
    std::uint8_t* cursor = msg.payload.data() + sizeof(payload);
    for (const auto* img : images) {
      std::memcpy(cursor, img->data(), kPageSize);
      cursor += kPageSize;
    }
    stats_.replication_batches.fetch_add(1, std::memory_order_relaxed);
    stats_.dir_mutations_replicated.fetch_add(payload.count,
                                              std::memory_order_relaxed);
    if (engine_on()) {
      // Ride the background engine like lease renewals: the pump owns the
      // wire round trip, the mutating thread pays nothing.
      core::ProtocolEngine::Submit submit;
      submit.node = origin;
      submit.request = std::move(msg);
      submit.resume = [](net::CallOutcome&&) -> core::ProtocolEngine::Step {
        // Fire-and-forget: a lost batch surfaces as replication lag at
        // failover time, exactly like an unflushed one.
        return core::ProtocolEngine::Step{};
      };
      engine_->submit_background(std::move(submit));
    } else {
      try {
        fabric_.post_datagram(origin, msg);
      } catch (const net::NodeDeadError&) {
        return;  // this node is dying; its pending records die with it
      }
    }
  }
}

Message Dsm::handle_dir_replicate(const Message& msg) {
  const auto payload = msg.payload_prefix_as<net::DirReplicatePayload>();
  DEX_CHECK(payload.process_id == config_.process_id);
  Message reply;
  reply.type = MsgType::kDirReplicate;
  if (replica_stores_.empty()) return reply;  // knob off at the receiver
  const NodeId at = msg.dst;
  const std::uint8_t* image_cursor =
      msg.payload.data() + sizeof(net::DirReplicatePayload);
  const std::uint8_t* payload_end = msg.payload.data() + msg.payload.size();
  auto& store = *replica_stores_[at];
  std::lock_guard<std::mutex> lock(store.mu);
  const std::uint32_t count = std::min<std::uint32_t>(
      payload.count, static_cast<std::uint32_t>(net::kMaxDirReplicateRecords));
  for (std::uint32_t i = 0; i < count; ++i) {
    const net::DirReplicateRecord& rec = payload.records[i];
    switch (rec.op) {
      case net::DirReplicateOp::kErase:
        // Staleness fence: the mapping (and any journal image) for this
        // page is gone; a future mapping of the address starts clean.
        store.pages.erase(rec.page);
        break;
      case net::DirReplicateOp::kVma: {
        const GAddr end = page_base(rec.page + rec.version + kPageSize - 1);
        replica_space(at).install_replica(
            Vma{rec.page, end, rec.prot, std::string()});
        break;
      }
      case net::DirReplicateOp::kJournal: {
        if (image_cursor + kPageSize > payload_end) break;  // malformed
        ReplicaRecord& r = store.pages[rec.page];
        r.version = rec.version;
        r.owner = rec.owner;
        r.home = rec.home;
        r.home_epoch = rec.home_epoch;
        r.sharers = rec.sharers;
        r.image.assign(image_cursor, image_cursor + kPageSize);
        r.image_version = rec.version;
        image_cursor += kPageSize;
        break;
      }
      case net::DirReplicateOp::kEntry: {
        ReplicaRecord& r = store.pages[rec.page];
        // Monotonic adoption: replication batches can reorder across the
        // engine, so an older version must never clobber a newer record.
        if (rec.version >= r.version) {
          r.version = rec.version;
          r.owner = rec.owner;
          r.home = rec.home;
          r.home_epoch = std::max(r.home_epoch, rec.home_epoch);
          r.sharers = rec.sharers;
        }
        break;
      }
    }
  }
  return reply;
}

Message Dsm::handle_scavenge(const Message& msg) {
  const auto req = msg.payload_as<net::ScavengeRequestPayload>();
  DEX_CHECK(req.process_id == config_.process_id);
  const NodeId at = msg.dst;
  // Report this node's resident copies (page, version, state) above the
  // cursor — the re-registration half of the rebuild: the new origin
  // reconciles these against its replica so survivor state the replication
  // stream missed is still represented.
  std::vector<net::ScavengeRecord> found;
  page_table(at).for_each([&](GAddr page, Pte& pte) {
    if (page < req.cursor) return;
    const PageState s = pte.state.load(std::memory_order_acquire);
    if (s == PageState::kInvalid) return;
    net::ScavengeRecord rec{};
    rec.page = page;
    rec.version = pte.version.load(std::memory_order_relaxed);
    rec.state = static_cast<std::uint8_t>(s);
    found.push_back(rec);
  });
  std::sort(found.begin(), found.end(),
            [](const net::ScavengeRecord& a, const net::ScavengeRecord& b) {
              return a.page < b.page;
            });
  net::ScavengeReplyPayload rep{};
  const std::size_t take = std::min<std::size_t>(
      found.size(), static_cast<std::size_t>(net::kMaxScavengeRecords));
  for (std::size_t i = 0; i < take; ++i) rep.records[i] = found[i];
  rep.count = static_cast<std::uint32_t>(take);
  rep.done = take == found.size() ? 1 : 0;
  rep.next_cursor = take > 0 ? found[take - 1].page + kPageSize : req.cursor;
  Message reply;
  reply.type = MsgType::kScavengeRequest;
  reply.set_payload(rep);
  return reply;
}

void Dsm::scavenge_survivors(NodeId dead, NodeId deputy) {
  if (replica_stores_.empty()) return;
  auto& store = *replica_stores_[deputy];
  for (NodeId n = 0; n < config_.num_nodes; ++n) {
    if (n == deputy || n == dead) continue;
    if (fabric_.injector().node_dead(n)) continue;
    GAddr cursor = 0;
    for (;;) {
      net::ScavengeRequestPayload req{};
      req.process_id = config_.process_id;
      req.dead = dead;
      req.cursor = cursor;
      Message msg;
      msg.type = MsgType::kScavengeRequest;
      msg.dst = n;
      msg.set_payload(req);
      Message reply;
      try {
        reply = fabric_.call(deputy, msg);
      } catch (const net::NodeDeadError&) {
        break;  // the survivor died mid-round; its loss is reclaimed later
      } catch (const net::RpcError&) {
        break;  // best effort: an unreachable survivor re-registers on fault
      }
      const auto rep = reply.payload_prefix_as<net::ScavengeReplyPayload>();
      {
        std::lock_guard<std::mutex> lock(store.mu);
        const std::uint32_t count = std::min<std::uint32_t>(
            rep.count, static_cast<std::uint32_t>(net::kMaxScavengeRecords));
        for (std::uint32_t i = 0; i < count; ++i) {
          const net::ScavengeRecord& rec = rep.records[i];
          if (rec.version == kNoVersion) continue;
          auto [it, inserted] = store.pages.try_emplace(rec.page);
          ReplicaRecord& r = it->second;
          if (inserted || rec.version > r.version) {
            r.version = rec.version;
            r.owner =
                rec.state == static_cast<std::uint8_t>(PageState::kExclusive)
                    ? n
                    : r.owner;
            stats_.scavenge_pages_rebuilt.fetch_add(
                1, std::memory_order_relaxed);
          }
        }
      }
      if (rep.done != 0) break;
      cursor = rep.next_cursor;
    }
  }
}

bool Dsm::restore_from_replica(NodeId at, GAddr page, std::uint64_t version) {
  if (replica_stores_.empty()) return false;
  auto& store = *replica_stores_[at];
  std::lock_guard<std::mutex> lock(store.mu);
  auto it = store.pages.find(page);
  if (it == store.pages.end()) return false;
  const ReplicaRecord& rec = it->second;
  if (rec.image.empty() || rec.image_version != version) return false;
  Pte& dst = page_table(at).get_or_create(page);
  dst.lock.lock();
  dst.seq.fetch_add(1, std::memory_order_release);
  std::memcpy(dst.ensure_frame(), rec.image.data(), kPageSize);
  dst.version = version;
  dst.state.store(PageState::kShared, std::memory_order_release);
  dst.seq.fetch_add(1, std::memory_order_release);
  dst.lock.unlock();
  stats_.replica_journal_pages.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Dsm::promote_origin(NodeId dead) {
  if (!config_.origin_failover) return false;
  if (dead != current_origin()) return true;  // already promoted: no-op

  // Pin implicit homes to the dead origin BEFORE the swap: entries homed
  // "at the origin" (home == kInvalidNode) must keep resolving to the dead
  // node so the reclaim pass can see and rebuild them — after the swap,
  // kInvalidNode would resolve to the deputy and the dead frames would
  // silently leak out of recovery.
  std::vector<std::pair<GAddr, DirEntry*>> entries;
  directory_.for_each([&](std::uint64_t page_idx, DirEntry& entry) {
    entries.emplace_back(static_cast<GAddr>(page_idx) << kPageShift, &entry);
  });
  for (auto& [page, entry] : entries) {
    (void)page;
    ScopedGateBlock gate_block("promote_entry_lock");
    std::lock_guard<HybridLatch> lock(entry->latch);
    if (entry->home == kInvalidNode) {
      entry->home = dead;
      ++entry->home_epoch;
    }
  }

  const NodeId deputy = replication_deputy();
  if (deputy == kInvalidNode) return false;  // last node standing died

  // Records captured but never flushed die with the origin; account them
  // as lag so the bench (and post-mortems) can see the replication debt.
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    stats_.replication_lag.fetch_add(repl_pending_.size(),
                                     std::memory_order_relaxed);
    repl_pending_.clear();
  }

  current_origin_.store(deputy, std::memory_order_release);
  failure_stats_.origin_failovers.fetch_add(1, std::memory_order_relaxed);
  prof::ChaosCounters::instance().origin_failovers.fetch_add(
      1, std::memory_order_relaxed);
  record_fault(deputy, /*task=*/-1, 0, prof::FaultKind::kFailover,
               "promote");

  // Owner re-registration round: every survivor reports its resident
  // copies so the deputy's replica covers state the batched stream missed.
  scavenge_survivors(dead, deputy);
  return true;
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

bool Dsm::check_invariants() const {
  bool ok = true;
  auto& self = const_cast<Dsm&>(*this);
  // Snapshot entries before locking them: transact() takes the tree lock
  // while holding entry.latch, so locking entries under for_each's tree lock
  // would invert the order against in-flight transactions (see
  // reclaim_node).
  std::vector<std::pair<std::uint64_t, DirEntry*>> entries;
  self.directory_.for_each([&](std::uint64_t page_idx, DirEntry& entry) {
    entries.emplace_back(page_idx, &entry);
  });
  for (auto& [page_idx, entry_ptr] : entries) {
    DirEntry& entry = *entry_ptr;
    std::lock_guard<HybridLatch> lock(entry.latch);
    const GAddr page = static_cast<GAddr>(page_idx) << kPageShift;
    if (!entry.materialized) continue;
    if (entry.exclusive_owner != kInvalidNode) {
      // Single-writer: the owner is the only sharer and holds kExclusive.
      if (entry.sharers.count() != 1 ||
          !entry.sharers.contains(entry.exclusive_owner)) {
        ok = false;
      }
      Pte* pte = self.page_table(entry.exclusive_owner).find(page);
      if (pte == nullptr ||
          pte->state.load(std::memory_order_acquire) !=
              PageState::kExclusive) {
        ok = false;
      }
      // No other node may hold a readable state.
      for (NodeId n = 0; n < self.config_.num_nodes; ++n) {
        if (n == entry.exclusive_owner) continue;
        Pte* other = self.page_table(n).find(page);
        if (other != nullptr &&
            other->state.load(std::memory_order_acquire) !=
                PageState::kInvalid) {
          ok = false;
        }
      }
    } else {
      // Multi-reader: every sharer is at most kShared, versions current,
      // and the home (the grant source) holds a copy.
      if (!entry.sharers.contains(home_of(entry))) ok = false;
      entry.sharers.for_each([&](NodeId n) {
        Pte* pte = self.page_table(n).find(page);
        if (pte == nullptr) {
          ok = false;
          return;
        }
        const PageState s = pte->state.load(std::memory_order_acquire);
        if (s == PageState::kExclusive) ok = false;
        if (s == PageState::kShared && pte->version != entry.version) {
          ok = false;
        }
      });
      // Nobody outside the sharer set may hold a readable copy.
      for (NodeId n = 0; n < self.config_.num_nodes; ++n) {
        if (entry.sharers.contains(n)) continue;
        Pte* pte = self.page_table(n).find(page);
        if (pte != nullptr &&
            pte->state.load(std::memory_order_acquire) !=
                PageState::kInvalid) {
          ok = false;
        }
      }
    }
  }
  return ok;
}

}  // namespace dex::mem
