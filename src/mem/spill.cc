#include "mem/spill.h"

#include <cstring>

#include "common/assert.h"

namespace dex::mem {

SpillFile::~SpillFile() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

bool SpillFile::ensure_open_locked() {
  if (file_ != nullptr) return true;
  if (open_failed_) return false;
  file_ = std::tmpfile();
  if (file_ == nullptr) {
    // No scratch space (sandbox, read-only /tmp): spilling degrades to
    // "frame stays resident"; the caller just skips the candidate.
    open_failed_ = true;
    return false;
  }
  return true;
}

std::uint32_t SpillFile::write(const std::uint8_t* page) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ensure_open_locked()) return kNoSlot;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = next_slot_++;
  }
  if (std::fseek(file_, static_cast<long>(slot) * static_cast<long>(kPageSize),
                 SEEK_SET) != 0 ||
      std::fwrite(page, 1, kPageSize, file_) != kPageSize) {
    // Disk full: recycle the slot and fail the spill gracefully.
    free_slots_.push_back(slot);
    return kNoSlot;
  }
  const std::size_t now =
      spilled_bytes_.fetch_add(kPageSize, std::memory_order_relaxed) +
      kPageSize;
  std::size_t peak = high_water_.load(std::memory_order_relaxed);
  while (now > peak &&
         !high_water_.compare_exchange_weak(peak, now,
                                            std::memory_order_relaxed)) {
  }
  return slot;
}

void SpillFile::read(std::uint32_t slot, std::uint8_t* page) {
  std::lock_guard<std::mutex> lock(mu_);
  DEX_CHECK(slot != kNoSlot && file_ != nullptr);
  DEX_CHECK(std::fseek(file_, static_cast<long>(slot) *
                                  static_cast<long>(kPageSize),
                       SEEK_SET) == 0);
  DEX_CHECK(std::fread(page, 1, kPageSize, file_) == kPageSize);
  free_slots_.push_back(slot);
  spilled_bytes_.fetch_sub(kPageSize, std::memory_order_relaxed);
}

void SpillFile::drop(std::uint32_t slot) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot == kNoSlot) return;
  free_slots_.push_back(slot);
  spilled_bytes_.fetch_sub(kPageSize, std::memory_order_relaxed);
}

}  // namespace dex::mem
