// Per-node bounded frame manager (ScaleStore-style buffer manager).
//
// Every (process, node) pair owns one FramePool; all of the node's page
// frames are leased from it. The pool enforces `budget_bytes` (0 =
// unbounded): the DSM's eviction provider keeps `used_bytes()` under the
// budget by dropping cold shared replicas, writing back cold exclusive
// copies, and — when the spill tier is enabled — parking a home's
// authoritative frames in a SpillFile.
//
// Two properties matter for the protocol's lock-free readers:
//
//   - Freed frames go to a free list and are NEVER returned to the OS
//     mid-run. A reader that snapshotted a frame pointer just before an
//     eviction can still dereference it safely; the PTE seqcount it
//     re-checks afterwards tells it the bytes were garbage.
//   - allocate() never blocks and never runs eviction. It is called deep
//     inside protocol handlers holding directory-entry locks; blocking
//     there could deadlock two entries against each other. Budget pressure
//     is applied at fault *admission* (no locks held) via the reservation
//     credits below.
//
// Admission credits: a faulting thread reserves its worst-case frame need
// up front with try_reserve() — a CAS on used_bytes against the budget —
// and the reservation is remembered per (thread, pool). allocate() then
// consumes the caller's credit instead of charging again, so concurrent
// faulting threads cannot collectively overshoot the budget between the
// admission check and the installs. Unused credit is returned by
// drop_credit() when the fault completes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/spinlock.h"
#include "common/types.h"
#include "mem/spill.h"

namespace dex::mem {

class FramePool {
 public:
  /// `budget_bytes` 0 means unbounded (the seed behavior, bit-for-bit).
  /// The spill costs are the simulated NVMe round-trips charged to the
  /// calling thread's virtual clock on spill_out / spill_in.
  FramePool(std::size_t budget_bytes, bool spill_enabled,
            VirtNs spill_write_ns, VirtNs spill_read_ns);
  ~FramePool();
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  /// A zero-filled kPageSize frame. Non-blocking; consumes the calling
  /// thread's reservation credit when one is held, otherwise charges
  /// used_bytes directly (over-budget grace — the patrol settles it).
  std::uint8_t* allocate();

  /// Returns a frame to the free list and uncharges its bytes.
  void release(std::uint8_t* frame);

  // ---- Admission credits ----
  /// Tops this thread's credit for this pool up to `bytes`, admitting only
  /// while the pool stays under budget. Returns false when the budget has
  /// no room (caller evicts / backpresses and retries). With budget 0 this
  /// is a no-op success.
  bool try_reserve_upto(std::size_t bytes);
  /// Unconditional top-up (bounded-backpressure escape hatch: forward
  /// progress over strictness once the retry budget is exhausted).
  void force_reserve_upto(std::size_t bytes);
  /// This thread's outstanding credit for this pool.
  std::size_t credit_bytes() const;
  /// Returns `bytes` of this thread's credit (used by the eviction
  /// provider to hand back a writeback reservation it did not consume).
  void unreserve(std::size_t bytes);
  /// Returns all of this thread's credit for this pool.
  void drop_credit();

  // ---- Spill tier ----
  bool spill_enabled() const { return spill_enabled_; }
  /// Parks a frame image in the cold tier; kNoSlot when unavailable.
  std::uint32_t spill_out(const std::uint8_t* frame);
  /// Reads a spilled image back into `frame` and frees the slot.
  void spill_in(std::uint32_t slot, std::uint8_t* frame);
  /// Discards a spilled image (munmap / teardown).
  void drop_slot(std::uint32_t slot);

  // ---- Accounting ----
  std::size_t budget_bytes() const { return budget_; }
  std::size_t used_bytes() const {
    return used_.load(std::memory_order_relaxed);
  }
  std::size_t high_water_bytes() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  std::size_t spilled_bytes() const { return spill_.spilled_bytes(); }
  bool over_budget() const { return budget_ != 0 && used_bytes() > budget_; }

  /// CLOCK hand: the page address the eviction scan resumes after, so
  /// successive sweeps rotate through the table instead of re-punishing
  /// the lowest addresses.
  GAddr clock_hand() const {
    return clock_hand_.load(std::memory_order_relaxed);
  }
  void set_clock_hand(GAddr page) {
    clock_hand_.store(page, std::memory_order_relaxed);
  }

  std::uint64_t spills_out() const {
    return spills_out_.load(std::memory_order_relaxed);
  }
  std::uint64_t spills_in() const {
    return spills_in_.load(std::memory_order_relaxed);
  }

 private:
  void charge(std::size_t bytes);
  void uncharge(std::size_t bytes);

  const std::size_t budget_;
  const bool spill_enabled_;
  const VirtNs spill_write_ns_;
  const VirtNs spill_read_ns_;
  std::atomic<std::size_t> used_{0};
  std::atomic<std::size_t> high_water_{0};
  std::atomic<GAddr> clock_hand_{0};
  std::atomic<std::uint64_t> spills_out_{0};
  std::atomic<std::uint64_t> spills_in_{0};

  Spinlock free_mu_;
  std::vector<std::uint8_t*> freelist_;
  std::vector<std::unique_ptr<std::uint8_t[]>> blocks_;

  SpillFile spill_;
};

}  // namespace dex::mem
