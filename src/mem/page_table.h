// Per-node software page table.
//
// Each (process, node) pair owns one PageTable mapping virtual pages to
// node-local frames plus the per-page coherence state. The fast access path
// is one sharded hash lookup + one atomic load (hardware would do this in
// the TLB); all state transitions happen under the per-PTE spinlock, which
// stands in for the kernel's PTE lock in the paper's fault path (§III-C).
//
// Reads use a seqcount: the protocol bumps `seq` to odd before replacing
// frame contents and to even after, so lock-free readers can detect a
// concurrent install/revoke and retry. Writes take the PTE spinlock so a
// concurrent revocation can never tear a write-back (the kernel gets this
// for free because revocation unmaps the page from the hardware MMU).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "common/assert.h"
#include "common/spinlock.h"
#include "common/types.h"

namespace dex::mem {

enum class PageState : std::uint8_t {
  kInvalid = 0,   // no valid local copy; any access faults
  kShared = 1,    // read-only copy (common ownership, §III-B)
  kExclusive = 2, // sole up-to-date copy; reads and writes allowed
};

inline const char* to_string(PageState s) {
  switch (s) {
    case PageState::kInvalid: return "invalid";
    case PageState::kShared: return "shared";
    case PageState::kExclusive: return "exclusive";
  }
  return "?";
}

/// Sentinel: this node has never held a copy of the page.
inline constexpr std::uint64_t kNoVersion = ~std::uint64_t{0};

struct Pte {
  /// Coherence state; the lock-free fast-path permission check.
  std::atomic<PageState> state{PageState::kInvalid};
  /// Seqcount for lock-free readers (odd = frame contents in flux).
  std::atomic<std::uint32_t> seq{0};
  /// Directory version of the copy this node last held. Lets the origin
  /// grant ownership without data when the copy is still current.
  std::uint64_t version = kNoVersion;
  /// Set when the copy was installed ahead of demand by the stride
  /// prefetcher and not yet touched; the fault fast path clears it and
  /// counts a prefetch hit, a revocation of a still-set flag counts waste.
  std::atomic<std::uint8_t> prefetched{0};
  /// Node-local physical frame; allocated on first grant.
  std::unique_ptr<std::uint8_t[]> frame;
  /// Writeback lease on an exclusive copy (DsmConfig::lease_ns > 0 only).
  /// Owner-side mirror of the directory's lease: when a write finds the
  /// window expired, the owner renews via kLeaseRenew (piggybacking the
  /// page) before dirtying further. 0 = no lease held.
  std::atomic<VirtNs> lease_until{0};
  /// The home that granted the lease — the kLeaseRenew destination.
  std::atomic<NodeId> lease_home{kInvalidNode};
  /// Guards frame contents + state transitions.
  Spinlock lock;

  std::uint8_t* ensure_frame() {
    if (!frame) frame = std::make_unique<std::uint8_t[]>(kPageSize);
    return frame.get();
  }
};

class PageTable {
 public:
  PageTable() = default;
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  /// Returns the PTE for `page` (a page-aligned GAddr), or nullptr if never
  /// touched on this node. PTE pointers stay valid until zap/teardown.
  Pte* find(GAddr page) {
    Shard& shard = shard_for(page);
    std::shared_lock lock(shard.mu);
    auto it = shard.map.find(page);
    return it == shard.map.end() ? nullptr : it->second.get();
  }

  /// Returns the PTE for `page`, creating an invalid one if absent.
  Pte& get_or_create(GAddr page) {
    DEX_CHECK(page_offset(page) == 0);
    Shard& shard = shard_for(page);
    {
      std::shared_lock lock(shard.mu);
      auto it = shard.map.find(page);
      if (it != shard.map.end()) return *it->second;
    }
    std::unique_lock lock(shard.mu);
    auto [it, _] = shard.map.try_emplace(page, std::make_unique<Pte>());
    return *it->second;
  }

  /// Drops every PTE in [start, end) — used by munmap teardown. Callers
  /// must guarantee no concurrent access to the range (the directory
  /// serializes this via the VMA-op delegation path).
  void zap_range(GAddr start, GAddr end) {
    for (auto& shard : shards_) {
      std::unique_lock lock(shard.mu);
      for (auto it = shard.map.begin(); it != shard.map.end();) {
        if (it->first >= start && it->first < end) {
          it = shard.map.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  std::size_t resident_pages() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      std::shared_lock lock(shard.mu);
      total += shard.map.size();
    }
    return total;
  }

  /// Bytes of frame memory currently owned by this node's table.
  std::size_t resident_bytes() const { return resident_pages() * kPageSize; }

 private:
  static constexpr std::size_t kShards = 64;
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<GAddr, std::unique_ptr<Pte>> map;
  };
  Shard& shard_for(GAddr page) {
    return shards_[(page >> kPageShift) % kShards];
  }

  Shard shards_[kShards];
};

}  // namespace dex::mem
