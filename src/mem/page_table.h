// Per-node software page table.
//
// Each (process, node) pair owns one PageTable mapping virtual pages to
// node-local frames plus the per-page coherence state. The fast access path
// is one sharded hash lookup + one atomic load (hardware would do this in
// the TLB); all state transitions happen under the per-PTE spinlock, which
// stands in for the kernel's PTE lock in the paper's fault path (§III-C).
//
// Reads use a seqcount: the protocol bumps `seq` to odd before replacing
// frame contents and to even after, so lock-free readers can detect a
// concurrent install/revoke and retry. Writes take the PTE spinlock so a
// concurrent revocation can never tear a write-back (the kernel gets this
// for free because revocation unmaps the page from the hardware MMU).
//
// Frames are leased from the node's FramePool (mem/frame_pool.h) instead of
// being owned by the PTE, so a bounded node can evict cold copies: `frame`
// is an atomic pointer (lock-free readers snapshot it and retry on null),
// mutated only under the PTE lock. The pool retains freed frames for the
// run, so a reader's stale snapshot is always dereferenceable — the
// seqcount recheck is what rejects the bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "common/assert.h"
#include "common/spinlock.h"
#include "common/types.h"
#include "mem/frame_pool.h"

namespace dex::mem {

enum class PageState : std::uint8_t {
  kInvalid = 0,   // no valid local copy; any access faults
  kShared = 1,    // read-only copy (common ownership, §III-B)
  kExclusive = 2, // sole up-to-date copy; reads and writes allowed
};

inline const char* to_string(PageState s) {
  switch (s) {
    case PageState::kInvalid: return "invalid";
    case PageState::kShared: return "shared";
    case PageState::kExclusive: return "exclusive";
  }
  return "?";
}

/// Sentinel: this node has never held a copy of the page.
inline constexpr std::uint64_t kNoVersion = ~std::uint64_t{0};

struct Pte {
  /// Coherence state; the lock-free fast-path permission check.
  std::atomic<PageState> state{PageState::kInvalid};
  /// Seqcount for lock-free readers (odd = frame contents in flux).
  std::atomic<std::uint32_t> seq{0};
  /// Directory version of the copy this node last held. Lets the origin
  /// grant ownership without data when the copy is still current. Atomic
  /// because the known-version fault probe (DsmConfig::optimistic_latching)
  /// reads it against `seq` without the PTE lock; a concurrent writer can
  /// only make the probe report a version the PTE really held, and the
  /// home re-validates at grant time anyway (copy_current), so a stale
  /// probe costs one redundant data transfer, never correctness.
  std::atomic<std::uint64_t> version{kNoVersion};
  /// Set when the copy was installed ahead of demand by the stride
  /// prefetcher and not yet touched; the fault fast path clears it and
  /// counts a prefetch hit, a revocation of a still-set flag counts waste.
  std::atomic<std::uint8_t> prefetched{0};
  /// Virtual arrival time of the last data install, observed (and cleared)
  /// by the first demand access: a consumer cannot read bytes before the
  /// wire delivered them. A no-op for the blocking path (the faulter's
  /// clock already passed the install when it resumes), it is what
  /// throttles a scan consuming engine-prefetched pages to the pipeline's
  /// real delivery schedule rather than racing ahead of physics.
  std::atomic<VirtNs> install_ts{0};
  /// CLOCK reference bit: stamped on access when the node has a frame
  /// budget, cleared (second chance) by the eviction scan.
  std::atomic<std::uint8_t> referenced{0};
  /// Pin count: nonzero while a fault transaction is installing/consuming
  /// this frame (leader faults, forward-grant pushes, batch installs). The
  /// eviction provider skips pinned frames.
  std::atomic<std::uint32_t> pins{0};
  /// Node-local physical frame, leased from the node's FramePool on first
  /// grant. Null when never granted, evicted, or parked in the cold tier.
  /// Mutated only under `lock`; atomic so lock-free readers can snapshot.
  std::atomic<std::uint8_t*> frame{nullptr};
  /// Cold-tier slot when the frame image lives in the SpillFile; guarded
  /// by `lock`.
  std::uint32_t spill_slot = SpillFile::kNoSlot;
  /// The node's frame pool; set once by PageTable at PTE creation.
  FramePool* pool = nullptr;
  /// Writeback lease on an exclusive copy (DsmConfig::lease_ns > 0 only).
  /// Owner-side mirror of the directory's lease: when a write finds the
  /// window expired, the owner renews via kLeaseRenew (piggybacking the
  /// page) before dirtying further. 0 = no lease held.
  std::atomic<VirtNs> lease_until{0};
  /// The home that granted the lease — the kLeaseRenew destination.
  std::atomic<NodeId> lease_home{kInvalidNode};
  /// Guards frame contents + state transitions.
  Spinlock lock;

  /// Lock-free snapshot of the frame pointer (may be null mid-eviction;
  /// readers retry through the fault path).
  std::uint8_t* data() const { return frame.load(std::memory_order_acquire); }

  /// Makes the frame resident, re-reading the cold tier when the image was
  /// spilled. Must be called under `lock`.
  std::uint8_t* ensure_frame() {
    std::uint8_t* f = frame.load(std::memory_order_relaxed);
    if (f == nullptr) {
      f = pool->allocate();
      if (spill_slot != SpillFile::kNoSlot) {
        pool->spill_in(spill_slot, f);
        spill_slot = SpillFile::kNoSlot;
      }
      frame.store(f, std::memory_order_release);
    }
    return f;
  }

  /// Returns the frame (if any) to the pool. Must be called under `lock`
  /// (or with the table quiesced, e.g. zap/teardown).
  void drop_frame() {
    std::uint8_t* f = frame.exchange(nullptr, std::memory_order_release);
    if (f != nullptr) pool->release(f);
  }

  /// Discards a parked cold-tier image. Same locking rule as drop_frame.
  void drop_spill() {
    if (spill_slot != SpillFile::kNoSlot) {
      pool->drop_slot(spill_slot);
      spill_slot = SpillFile::kNoSlot;
    }
  }

  void pin() { pins.fetch_add(1, std::memory_order_relaxed); }
  void unpin() { pins.fetch_sub(1, std::memory_order_relaxed); }
  bool pinned() const { return pins.load(std::memory_order_relaxed) != 0; }

  /// Optimistic read of `version` against the install seqcount: succeeds
  /// only when no install/revoke was in flight across the read, so the
  /// fault path's known-version probe skips the PTE spinlock entirely.
  /// On failure the caller falls back to the locked read.
  [[nodiscard]] bool try_read_version(std::uint64_t& out) const {
    const std::uint32_t s1 = seq.load(std::memory_order_acquire);
    if ((s1 & 1) != 0) return false;
    const std::uint64_t v = version.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq.load(std::memory_order_relaxed) != s1) return false;
    out = v;
    return true;
  }
};

/// RAII pin (exception-safe across the fault path's RPCs).
class PinGuard {
 public:
  explicit PinGuard(Pte& pte) : pte_(pte) { pte_.pin(); }
  ~PinGuard() { pte_.unpin(); }
  PinGuard(const PinGuard&) = delete;
  PinGuard& operator=(const PinGuard&) = delete;

 private:
  Pte& pte_;
};

class PageTable {
 public:
  explicit PageTable(FramePool* pool) : pool_(pool) { DEX_CHECK(pool_); }
  ~PageTable() {
    // Return every frame (and parked cold-tier image) to the pool so its
    // byte accounting ends at zero — teardown is a discard path too.
    for (auto& shard : shards_) {
      std::unique_lock lock(shard.mu);
      for (auto& [page, pte] : shard.map) {
        pte->drop_spill();
        pte->drop_frame();
      }
      shard.map.clear();
    }
  }
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  /// Returns the PTE for `page` (a page-aligned GAddr), or nullptr if never
  /// touched on this node. PTE pointers stay valid until zap/teardown.
  Pte* find(GAddr page) {
    Shard& shard = shard_for(page);
    std::shared_lock lock(shard.mu);
    auto it = shard.map.find(page);
    return it == shard.map.end() ? nullptr : it->second.get();
  }

  /// Returns the PTE for `page`, creating an invalid one if absent.
  Pte& get_or_create(GAddr page) {
    DEX_CHECK(page_offset(page) == 0);
    Shard& shard = shard_for(page);
    {
      std::shared_lock lock(shard.mu);
      auto it = shard.map.find(page);
      if (it != shard.map.end()) return *it->second;
    }
    std::unique_lock lock(shard.mu);
    auto [it, inserted] = shard.map.try_emplace(page, nullptr);
    if (inserted) {
      it->second = std::make_unique<Pte>();
      it->second->pool = pool_;
    }
    return *it->second;
  }

  /// Drops every PTE in [start, end) — used by munmap teardown — returning
  /// their frames to the pool. Callers must guarantee no concurrent access
  /// to the range (the directory serializes this via the VMA-op delegation
  /// path).
  void zap_range(GAddr start, GAddr end) {
    for (auto& shard : shards_) {
      std::unique_lock lock(shard.mu);
      for (auto it = shard.map.begin(); it != shard.map.end();) {
        if (it->first >= start && it->first < end) {
          it->second->drop_spill();
          it->second->drop_frame();
          it = shard.map.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  /// Visits every PTE (shard by shard, under the shard's read lock). Used
  /// by the eviction scan to snapshot candidates.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& shard : shards_) {
      std::shared_lock lock(shard.mu);
      for (auto& [page, pte] : shard.map) fn(page, *pte);
    }
  }

  FramePool& pool() { return *pool_; }

  std::size_t resident_pages() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      std::shared_lock lock(shard.mu);
      total += shard.map.size();
    }
    return total;
  }

  /// Bytes of frame memory currently leased from the node's pool (the
  /// per-node footprint the frame budget bounds). Unlike resident_pages,
  /// evicted and spilled PTEs do not count.
  std::size_t resident_bytes() const { return pool_->used_bytes(); }

 private:
  static constexpr std::size_t kShards = 64;
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<GAddr, std::unique_ptr<Pte>> map;
  };
  Shard& shard_for(GAddr page) {
    return shards_[(page >> kPageShift) % kShards];
  }

  FramePool* pool_;
  Shard shards_[kShards];
};

}  // namespace dex::mem
