// Page-ownership directory (§III-B).
//
// Lives at the origin node of each process. Tracks, per page, which nodes
// hold copies and who (if anyone) holds exclusive ownership, indexed by a
// radix tree over the virtual page address — the same structure the paper
// uses inside the kernel. Every coherence transaction for a page serializes
// on that page's entry latch; a transaction that finds the entry busy
// returns "retry" to the requester, producing the contended-fault tail the
// paper measures in §V-D.
//
// The tree itself is hash-sharded (kDirShards trees, each under its own
// latch) so that concurrent transactions on different pages do not serialize
// on a single tree mutex just to reach their entries — the Mitosis
// observation that centralized translation metadata is the bottleneck, not
// the per-page work. `Directory(1)` collapses to the original single-tree
// layout for ablations.
//
// With `optimistic` on (DsmConfig::optimistic_latching), steady-state entry
// lookups are version-validated optimistic reads against the shard latch:
// the radix tree publishes leaves with release stores, so a validated (or
// even merely non-null) hit is a fully constructed entry and the shard
// latch is taken exclusively only to CREATE an entry — counted as a latch
// upgrade. With it off, every access takes the latch exclusively, exactly
// the seed pessimistic protocol.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/assert.h"
#include "common/hybrid_latch.h"
#include "common/radix_tree.h"
#include "common/types.h"

namespace dex::mem {

inline constexpr int kMaxNodes = 64;

/// Set of nodes holding a valid copy of a page.
class NodeSet {
 public:
  void add(NodeId node) {
    DEX_CHECK(node >= 0 && node < kMaxNodes);
    bits_ |= std::uint64_t{1} << node;
  }
  void remove(NodeId node) {
    DEX_CHECK(node >= 0 && node < kMaxNodes);
    bits_ &= ~(std::uint64_t{1} << node);
  }
  bool contains(NodeId node) const {
    DEX_CHECK(node >= 0 && node < kMaxNodes);
    return (bits_ >> node) & std::uint64_t{1};
  }
  void clear() { bits_ = 0; }
  bool empty() const { return bits_ == 0; }
  int count() const { return __builtin_popcountll(bits_); }
  std::uint64_t raw() const { return bits_; }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::uint64_t bits = bits_;
    while (bits != 0) {
      const int node = __builtin_ctzll(bits);
      fn(static_cast<NodeId>(node));
      bits &= bits - 1;
    }
  }

 private:
  std::uint64_t bits_ = 0;
};

struct DirEntry {
  /// Serializes all protocol transactions touching this page (exclusive
  /// mode). Probe paths (home_of_page, wrong-home checks) read `home` /
  /// `home_epoch` under an optimistic GuardO validated against this
  /// latch's version — which is why those two fields are atomics: the
  /// optimistic read races the exclusive holder's store by design and the
  /// validation discards the torn case.
  HybridLatch latch;
  /// Nodes holding a valid copy. Empty until the first access anywhere.
  NodeSet sharers;
  /// Valid when exactly one node holds the page with write permission.
  NodeId exclusive_owner = kInvalidNode;
  /// Bumped on every exclusive (write) grant. Lets the origin grant
  /// ownership without re-sending data to a node whose copy is current.
  std::uint64_t version = 0;
  /// Virtual time at which the last exclusive holder's transaction
  /// completed; readers observe this to inherit the happens-before edge.
  VirtNs last_release_ts = 0;
  /// False until the first access materializes the zero page at the
  /// origin; reset by munmap so stale versions can never match.
  bool materialized = false;
  /// Node whose frame is authoritative and which serializes transactions
  /// for this page. `kInvalidNode` means "the origin" (the static default),
  /// so a default-constructed entry behaves exactly like the classic
  /// protocol until a migration rewrites it.
  std::atomic<NodeId> home{kInvalidNode};
  /// Bumped on every home migration (and on munmap). Acts as a version
  /// fence for home-hint caches: a hint is only overwritten by information
  /// carrying a newer epoch, so a late stale redirect cannot regress a
  /// fresher hint.
  std::atomic<std::uint64_t> home_epoch{0};
  /// Fault-locality tracker: `hot_node` faulted `hot_run` consecutive
  /// times with no intervening fault from any other node (the home's own
  /// local faults reset the run — they are already free). When the run
  /// reaches the configured threshold the home hands the entry off.
  NodeId hot_node = kInvalidNode;
  std::uint16_t hot_run = 0;
  /// Writeback lease (DsmConfig::lease_ns > 0 only; 0 = no lease granted).
  /// Virtual time until which the current remote exclusive owner may write
  /// without renewing. The lease patrol recalls expired leases so an idle
  /// owner's final writes reach the home frame.
  VirtNs lease_until = 0;
  /// Virtual time of the last journaled writeback for the CURRENT exclusive
  /// grant (kLeaseRenew piggyback). 0 = the home frame predates this grant;
  /// nonzero = the home frame is at most one lease window stale, so owner
  /// death recovers the journaled copy instead of reporting dirty loss.
  VirtNs journal_ts = 0;
};

/// The per-process directory. Entry references remain valid until
/// `erase_range` (munmap) or destruction.
class Directory {
 public:
  static constexpr int kDirShards = 64;
  /// Optimistic probes restart this many times on a raced shard mutation
  /// before giving up and taking the latch.
  static constexpr int kOptimisticAttempts = 3;

  explicit Directory(int shards = kDirShards, bool optimistic = true)
      : optimistic_(optimistic) {
    DEX_CHECK(shards >= 1);
    shards_.reserve(static_cast<std::size_t>(shards));
    for (int i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  DirEntry& entry(GAddr page) {
    const std::uint64_t idx = page_index(page);
    Shard& shard = shard_of(idx);
    if (optimistic_) {
      for (int attempt = 0; attempt < kOptimisticAttempts; ++attempt) {
        GuardO guard(shard.latch, GuardO::kNonBlocking);
        if (!guard.engaged()) break;  // creator in: join the latch queue
        DirEntry* hit = shard.tree.lookup(idx);
        // A published leaf is stable for the entry's lifetime, so a hit
        // needs no validation; only a miss must be re-checked against a
        // concurrent create.
        if (hit != nullptr) return *hit;
        if (guard.validate()) break;  // a true miss: create below
        latch_restarts_.fetch_add(1, std::memory_order_relaxed);
      }
      latch_upgrades_.fetch_add(1, std::memory_order_relaxed);
    }
    auto lock = lock_shard(shard);
    return shard.tree.get_or_create(idx);
  }

  DirEntry* find(GAddr page) {
    const std::uint64_t idx = page_index(page);
    Shard& shard = shard_of(idx);
    if (optimistic_) {
      for (int attempt = 0; attempt < kOptimisticAttempts; ++attempt) {
        GuardO guard(shard.latch, GuardO::kNonBlocking);
        if (!guard.engaged()) break;
        DirEntry* hit = shard.tree.lookup(idx);
        if (hit != nullptr) return hit;
        if (guard.validate()) return nullptr;
        latch_restarts_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    auto lock = lock_shard(shard);
    return shard.tree.lookup(idx);
  }

  /// Drops entries for pages in [start, end). Caller must have quiesced
  /// protocol traffic on the range (VMA-op delegation does).
  void erase_range(GAddr start, GAddr end) {
    for (GAddr page = page_base(start); page < end; page += kPageSize) {
      const std::uint64_t idx = page_index(page);
      Shard& shard = shard_of(idx);
      auto lock = lock_shard(shard);
      shard.tree.erase(idx);
    }
  }

  std::size_t tracked_pages() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      auto lock = lock_shard(*shard);
      total += shard->tree.size();
    }
    return total;
  }

  /// Snapshot walk for invariant checks: fn(page_index, entry).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& shard : shards_) {
      auto lock = lock_shard(*shard);
      shard->tree.for_each(
          [&](std::uint64_t key, DirEntry& entry) { fn(key, entry); });
    }
  }

  int shards() const { return static_cast<int>(shards_.size()); }
  bool optimistic() const { return optimistic_; }

  /// Times a thread found a shard's tree latch held by another thread and
  /// had to block — counted uniformly on every entry point (get-or-create,
  /// lookup, erase, walks), so the number is trustworthy for the sharding
  /// ablation. With one shard this counts every collision on the old
  /// global tree mutex; sharding should drive it toward zero, and the
  /// optimistic mode removes even the lookup-side acquisitions.
  std::uint64_t lock_contention() const {
    return lock_contention_.load(std::memory_order_relaxed);
  }

  /// Optimistic probes that had to restart because a shard mutation raced
  /// their traversal (DsmConfig::optimistic_latching only).
  std::uint64_t latch_restarts() const {
    return latch_restarts_.load(std::memory_order_relaxed);
  }

  /// Optimistic probes that escalated to the exclusive latch (entry
  /// creation, or a persistently raced probe).
  std::uint64_t latch_upgrades() const {
    return latch_upgrades_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    mutable HybridLatch latch;
    RadixTree<DirEntry> tree;
  };

  /// Exclusive shard acquisition with uniform contention accounting: a
  /// failed try-lock counts one collision, then blocks.
  std::unique_lock<HybridLatch> lock_shard(Shard& shard) const {
    std::unique_lock<HybridLatch> lock(shard.latch, std::try_to_lock);
    if (!lock.owns_lock()) {
      lock_contention_.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
    }
    return lock;
  }

  Shard& shard_of(std::uint64_t page_idx) const {
    // splitmix64 finalizer: adjacent page indices land on distinct shards
    // with no pathological striding.
    std::uint64_t h = page_idx;
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return *shards_[h % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  const bool optimistic_;
  mutable std::atomic<std::uint64_t> lock_contention_{0};
  mutable std::atomic<std::uint64_t> latch_restarts_{0};
  mutable std::atomic<std::uint64_t> latch_upgrades_{0};
};

}  // namespace dex::mem
