// Page-ownership directory (§III-B).
//
// Lives at the origin node of each process. Tracks, per page, which nodes
// hold copies and who (if anyone) holds exclusive ownership, indexed by a
// radix tree over the virtual page address — the same structure the paper
// uses inside the kernel. Every coherence transaction for a page serializes
// on that page's entry mutex; a transaction that finds the entry busy
// returns "retry" to the requester, producing the contended-fault tail the
// paper measures in §V-D.
#pragma once

#include <cstdint>
#include <mutex>

#include "common/radix_tree.h"
#include "common/types.h"

namespace dex::mem {

inline constexpr int kMaxNodes = 64;

/// Set of nodes holding a valid copy of a page.
class NodeSet {
 public:
  void add(NodeId node) { bits_ |= std::uint64_t{1} << node; }
  void remove(NodeId node) { bits_ &= ~(std::uint64_t{1} << node); }
  bool contains(NodeId node) const {
    return (bits_ >> node) & std::uint64_t{1};
  }
  void clear() { bits_ = 0; }
  bool empty() const { return bits_ == 0; }
  int count() const { return __builtin_popcountll(bits_); }
  std::uint64_t raw() const { return bits_; }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::uint64_t bits = bits_;
    while (bits != 0) {
      const int node = __builtin_ctzll(bits);
      fn(static_cast<NodeId>(node));
      bits &= bits - 1;
    }
  }

 private:
  std::uint64_t bits_ = 0;
};

struct DirEntry {
  /// Serializes all protocol transactions touching this page.
  std::mutex mu;
  /// Nodes holding a valid copy. Empty until the first access anywhere.
  NodeSet sharers;
  /// Valid when exactly one node holds the page with write permission.
  NodeId exclusive_owner = kInvalidNode;
  /// Bumped on every exclusive (write) grant. Lets the origin grant
  /// ownership without re-sending data to a node whose copy is current.
  std::uint64_t version = 0;
  /// Virtual time at which the last exclusive holder's transaction
  /// completed; readers observe this to inherit the happens-before edge.
  VirtNs last_release_ts = 0;
  /// False until the first access materializes the zero page at the
  /// origin; reset by munmap so stale versions can never match.
  bool materialized = false;
};

/// The per-process directory. Entry references remain valid until
/// `erase_range` (munmap) or destruction.
class Directory {
 public:
  DirEntry& entry(GAddr page) {
    std::lock_guard<std::mutex> lock(tree_mu_);
    return tree_.get_or_create(page_index(page));
  }

  DirEntry* find(GAddr page) {
    std::lock_guard<std::mutex> lock(tree_mu_);
    return tree_.lookup(page_index(page));
  }

  /// Drops entries for pages in [start, end). Caller must have quiesced
  /// protocol traffic on the range (VMA-op delegation does).
  void erase_range(GAddr start, GAddr end) {
    std::lock_guard<std::mutex> lock(tree_mu_);
    for (GAddr page = page_base(start); page < end; page += kPageSize) {
      tree_.erase(page_index(page));
    }
  }

  std::size_t tracked_pages() const {
    std::lock_guard<std::mutex> lock(tree_mu_);
    return tree_.size();
  }

  /// Snapshot walk for invariant checks: fn(page_index, entry).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(tree_mu_);
    tree_.for_each(
        [&](std::uint64_t key, DirEntry& entry) { fn(key, entry); });
  }

 private:
  mutable std::mutex tree_mu_;
  RadixTree<DirEntry> tree_;
};

}  // namespace dex::mem
