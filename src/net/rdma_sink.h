// The RDMA sink (§III-E): a per-connection pool of pre-registered,
// physically contiguous chunks into which the peer RDMA-writes bulk payloads
// (page data). The receiver copies the payload from the sink to its final
// destination and releases the chunk. This hybrid (one extra memcpy instead
// of a per-page RDMA memory-region registration) is the paper's answer to
// arbitrary, dynamically changing application address spaces.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace dex::net {

class RdmaSink;

/// RAII handle to a sink chunk "posted" for one RDMA write.
class SinkBuffer {
 public:
  SinkBuffer() = default;
  SinkBuffer(RdmaSink* sink, int chunk, std::uint8_t* data, std::size_t size)
      : sink_(sink), chunk_(chunk), data_(data), size_(size) {}
  SinkBuffer(SinkBuffer&& other) noexcept { *this = std::move(other); }
  SinkBuffer& operator=(SinkBuffer&& other) noexcept {
    release();
    sink_ = other.sink_;
    chunk_ = other.chunk_;
    data_ = other.data_;
    size_ = other.size_;
    other.sink_ = nullptr;
    return *this;
  }
  SinkBuffer(const SinkBuffer&) = delete;
  SinkBuffer& operator=(const SinkBuffer&) = delete;
  ~SinkBuffer() { release(); }

  bool valid() const { return sink_ != nullptr; }
  std::uint8_t* data() { return data_; }
  std::size_t size() const { return size_; }

  /// Copies the received payload to `dst` and releases the chunk, returning
  /// the number of bytes copied. This is the "one memory copy" of the
  /// hybrid scheme.
  std::size_t copy_out_and_release(void* dst, std::size_t len);

  void release();

 private:
  RdmaSink* sink_ = nullptr;
  int chunk_ = -1;
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

class RdmaSink {
 public:
  RdmaSink(std::size_t num_chunks, std::size_t chunk_size);
  RdmaSink(const RdmaSink&) = delete;
  RdmaSink& operator=(const RdmaSink&) = delete;

  /// Reserves a chunk for an incoming RDMA write; blocks when all chunks
  /// are in flight.
  SinkBuffer reserve(bool* stalled = nullptr);

  std::size_t capacity() const { return num_chunks_; }
  std::size_t chunk_size() const { return chunk_size_; }
  std::size_t available() const;
  std::uint64_t total_reserved() const {
    return reserved_.load(std::memory_order_relaxed);
  }
  std::uint64_t stall_count() const {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  friend class SinkBuffer;
  void release_chunk(int chunk);

  const std::size_t num_chunks_;
  const std::size_t chunk_size_;
  std::unique_ptr<std::uint8_t[]> storage_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<int> free_chunks_;
  std::atomic<std::uint64_t> reserved_{0};
  std::atomic<std::uint64_t> stalls_{0};
};

}  // namespace dex::net
