// Deterministic chaos for the simulated fabric.
//
// Replaces the old ad-hoc DelayInjector hook with a policy object that can,
// per message type / node pair, drop a message, duplicate its delivery,
// add latency, or declare a whole node dead. Every decision is a pure
// function of (seed, src, dst, type, per-stream message index), so a chaos
// run is reproducible regardless of host-thread interleaving: the N-th
// kPageRequestWrite from node 2 to node 0 always suffers the same fate
// under the same seed.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "common/types.h"
#include "net/message.h"

namespace dex::net {

/// One match-and-fault clause. Wildcards: `type == kInvalid` matches every
/// message type, `src/dst == kInvalidNode` match every node. The first
/// matching rule wins; probabilities within a rule are exclusive bands of a
/// single uniform draw (drop, then duplicate, then delay).
struct FaultRule {
  MsgType type = MsgType::kInvalid;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double delay_prob = 0.0;
  VirtNs delay_ns = 0;
  /// Total faults this rule may inject before disarming; lets tests force
  /// exact schedules ("drop the first two, then deliver").
  std::uint64_t max_faults = std::numeric_limits<std::uint64_t>::max();
};

struct FaultPolicy {
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;
};

/// What the injector decided for one wire traversal.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  VirtNs delay_ns = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(int num_nodes);

  /// Installs a policy. Not thread-safe against in-flight traffic: call
  /// before the workload starts (tests reconfigure between phases).
  void configure(const FaultPolicy& policy);

  /// Fast-path check: false when no rules are installed, so un-chaosed
  /// runs pay one relaxed load per message and nothing else.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Decides the fate of one src->dst traversal of a `type` message and
  /// advances that stream's deterministic counter.
  FaultDecision decide(MsgType type, NodeId src, NodeId dst);

  // ---- Node liveness ----
  void fail_node(NodeId node);
  void heal_node(NodeId node);
  bool node_dead(NodeId node) const {
    return (dead_mask_.load(std::memory_order_acquire) >>
            static_cast<unsigned>(node)) &
           1u;
  }

  // ---- Network partition ----
  /// Cuts every link to and from `node` without marking it dead: its
  /// messages are silently dropped on the wire (counted as drops), so the
  /// node looks *crashed* to its peers while it still burns retry budgets
  /// locally. This is the "silent failure" a heartbeat-based detector must
  /// catch — as opposed to fail_node, whose death is visible to callers as
  /// NodeDeadError right at the send.
  void isolate_node(NodeId node);
  /// Heals every partition touching `node` — the full cut and both one-way
  /// cuts (isolate_outbound / isolate_inbound).
  void rejoin_node(NodeId node);
  bool node_isolated(NodeId node) const {
    return (isolated_mask_.load(std::memory_order_acquire) >>
            static_cast<unsigned>(node)) &
           1u;
  }

  // ---- Asymmetric (one-way) partition ----
  /// Gray failure: cuts only the messages `node` *sends* — peers' traffic
  /// still reaches it, so it keeps processing requests while its replies
  /// and heartbeats vanish. To the accrual detector the node is
  /// indistinguishable from a crash; the detector test proves a gray-failed
  /// origin is still declared dead and succeeded.
  void isolate_outbound(NodeId node);
  /// The mirror image: cuts only the messages `node` *receives*.
  void isolate_inbound(NodeId node);
  bool outbound_cut(NodeId node) const {
    return (outbound_cut_mask_.load(std::memory_order_acquire) >>
            static_cast<unsigned>(node)) &
           1u;
  }
  bool inbound_cut(NodeId node) const {
    return (inbound_cut_mask_.load(std::memory_order_acquire) >>
            static_cast<unsigned>(node)) &
           1u;
  }

  // ---- Injection statistics ----
  std::uint64_t drops() const {
    return drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t duplicates() const {
    return duplicates_.load(std::memory_order_relaxed);
  }
  std::uint64_t delays() const {
    return delays_.load(std::memory_order_relaxed);
  }
  void reset_stats();

 private:
  struct ArmedRule {
    FaultRule spec;
    std::atomic<std::uint64_t> used{0};
  };

  std::size_t stream_index(MsgType type, NodeId src, NodeId dst) const;

  int num_nodes_;
  std::uint64_t seed_ = 0;
  std::atomic<bool> armed_{false};
  /// deque: ArmedRule holds an atomic and must never be moved.
  std::deque<ArmedRule> rules_;
  /// Per (src, dst, type) message counters — the deterministic streams.
  std::vector<std::atomic<std::uint64_t>> stream_counts_;
  std::atomic<std::uint64_t> dead_mask_{0};
  std::atomic<std::uint64_t> isolated_mask_{0};
  std::atomic<std::uint64_t> outbound_cut_mask_{0};
  std::atomic<std::uint64_t> inbound_cut_mask_{0};

  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> delays_{0};
};

}  // namespace dex::net
