// Calibrated virtual-time cost model for the simulated InfiniBand fabric
// and the DeX kernel paths.
//
// The paper's testbed: Mellanox ConnectX-4 VPI HCAs on an SX6012 switch
// (56 Gbps), Xeon Silver 4110 nodes. We charge virtual nanoseconds for each
// mechanical step of the paper's §III-E messaging layer and §III-A/§III-C
// kernel paths; the constants below are calibrated once so that the paper's
// measured micro-costs emerge from the sum of their parts:
//
//   - 4 KB page retrieval ............ ~13.6 us   (§V-D)
//   - uncontended remote fault ....... ~19.3 us   (§V-D)
//   - contended fault w/ retry ....... ~158.8 us  (§V-D)
//   - 1st forward migration .......... ~812 us    (Table II)
//   - 2nd forward migration .......... ~237 us    (Table II)
//   - backward migration ............. ~25 us     (Table II)
//
// Nothing in the protocol layer hardcodes those totals: they are sums of the
// step costs here, so ablations (e.g. disabling the buffer pools) shift them
// the way real code changes would.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace dex::net {

struct CostModel {
  // ---- Wire / HCA ----
  /// One-way latency of a small VERB message (post send -> remote CQE):
  /// switch + HCA + PCIe.
  VirtNs verb_oneway_ns = 2500;
  /// Per-byte wire cost at 56 Gbps = 7 GB/s.
  double wire_ns_per_byte = 1.0 / 7.0;
  /// Posting an RDMA write + completion handling (control path, §III-E).
  VirtNs rdma_post_ns = 1200;
  /// Local memcpy bandwidth for the sink -> final destination copy
  /// (~20 GB/s single threaded).
  double copy_ns_per_byte = 0.05;

  // ---- Costs the pool design avoids (charged only in ablation modes) ----
  /// Mapping an I/O buffer to a DMA-capable range per message.
  VirtNs dma_map_ns = 2200;
  /// Registering an RDMA memory region (costly per [20]-[22]).
  VirtNs mr_register_ns = 45000;

  // ---- Message handling ----
  /// Handler dispatch at the receiver (CQE poll + demux).
  VirtNs handler_dispatch_ns = 1500;
  /// Composing a message into a pooled send buffer.
  VirtNs compose_ns = 300;
  /// Serial gap between posting consecutive legs of a scatter-gather
  /// fan-out (Fabric::call_many): the sender's CPU posts work requests one
  /// at a time even though the wire legs then overlap.
  VirtNs fanout_post_gap_ns = 300;
  /// Waiting for a pooled buffer when the ring is exhausted.
  VirtNs pool_stall_ns = 4000;

  // ---- Memory-consistency protocol (§III-B/C) ----
  /// Fault-handler entry: trap, leader election in the ongoing-fault table.
  VirtNs fault_entry_ns = 900;
  /// Directory lookup + ownership bookkeeping at the origin.
  VirtNs directory_service_ns = 1100;
  /// PTE update under the page-table spinlock.
  VirtNs pte_update_ns = 500;
  /// Invalidating one remote copy (handler-side work; wire cost separate).
  VirtNs revoke_service_ns = 700;
  /// Requester-side stamping of a forwarded grant: consuming the RDMA
  /// write-with-immediate completion and versioning the landed page.
  VirtNs forward_install_ns = 400;
  /// Follower cost: sleep on the leader + resume with the updated PTE.
  VirtNs follower_wakeup_ns = 1800;
  /// New-home side of a kHomeMigrate hand-off: accepting the directory
  /// entry and seeding the local home hint (wire cost separate).
  VirtNs home_migrate_service_ns = 900;
  /// A node consulting its directory/hint state only to discover it does
  /// not home the page (the kWrongHome redirect's handler-side cost).
  VirtNs wrong_home_service_ns = 400;
  /// Backoff before retrying a fault that lost a race on a busy directory
  /// entry. The paper observes contended faults averaging ~158.8 us vs
  /// ~19.3 us uncontended; retries dominate that tail.
  VirtNs fault_retry_backoff_ns = 120000;

  // ---- Thread migration (§III-A, Table II / Figure 3) ----
  /// Collecting pt_regs + mm state at the origin, 1st migration of a thread.
  VirtNs migrate_collect_first_ns = 12100;
  /// Subsequent collections are cheaper (structures already primed).
  VirtNs migrate_collect_next_ns = 6600;
  /// Creating the per-process remote worker + address-space skeleton on a
  /// node that sees this process for the first time ("Remote Worker" bar in
  /// Figure 3).
  VirtNs remote_worker_setup_ns = 620000;
  /// Forking the remote thread from the remote worker and loading the
  /// received context, first time on a node.
  VirtNs remote_thread_setup_first_ns = 168000;
  /// Same, when the remote worker already exists (Figure 3, "2nd").
  VirtNs remote_thread_setup_next_ns = 225000;
  /// Backward migration: update the original thread's context and wake it.
  VirtNs backmigrate_origin_ns = 13000;
  VirtNs backmigrate_remote_ns = 3000;
  /// Local thread creation (pthread_create / kthread fork).
  VirtNs thread_spawn_ns = 12000;

  // ---- Work delegation (§III-A) ----
  /// Waking the sleeping origin thread and running a delegated operation.
  VirtNs delegation_service_ns = 2500;

  // ---- Self-healing (failure detection + writeback leases) ----
  /// Receiver-side cost of scoring one heartbeat arrival in the accrual
  /// detector's inter-arrival history.
  VirtNs heartbeat_service_ns = 300;
  /// Applying an epoch-stamped membership broadcast at a member node.
  VirtNs membership_service_ns = 600;
  /// Home-side cost of a lease renewal: validating the owner's grant and
  /// journaling the piggybacked page into the home frame (wire + copy costs
  /// are charged separately by the fabric).
  VirtNs lease_renew_service_ns = 800;

  // ---- Bounded frames (frame_budget_bytes) ----
  /// Home-side cost of an eviction notice: validating the evictor's copy
  /// and retiring it from the sharer set (writeback wire/copy costs are
  /// charged separately by the fabric).
  VirtNs evict_service_ns = 600;
  /// Cold-tier (SpillFile) page write / read — charged to the calling
  /// thread's clock when a frame is parked or faulted back in. Ballpark
  /// NVMe 4 KB round-trips.
  VirtNs spill_write_ns = 10000;
  VirtNs spill_read_ns = 12000;

  // ---- Async protocol engine (DsmConfig::async_engine) ----
  /// Handing a prepared transaction to the engine's run queue (enqueue +
  /// completion-word setup) on the submitting thread.
  VirtNs engine_submit_ns = 400;
  /// Resuming one suspended transaction when its reply arrives: popping the
  /// run queue and re-entering the state machine.
  VirtNs engine_resume_ns = 300;

  // ---- Local machine ----
  /// Fast-path software-MMU access check (amortized; real HW does this in
  /// the TLB for free, we keep it tiny so local runs aren't penalized).
  VirtNs access_check_ns = 0;
  /// DRAM streaming cost per byte per core (~12 GB/s per core uncontended).
  double dram_ns_per_byte = 1.0 / 12.0;
  /// Aggregate per-node memory bandwidth in GB/s. Six channels of DDR4-2400
  /// on the paper's Xeon Silver ~ 60 GB/s, but the achievable stream
  /// bandwidth that BP saturates is lower; this cap produces the paper's
  /// super-linear BP scaling (§V-B).
  double node_mem_bw_gbps = 50.0;

  // ---- Derived helpers ----
  VirtNs wire_ns(std::size_t bytes) const {
    return static_cast<VirtNs>(wire_ns_per_byte * static_cast<double>(bytes));
  }
  VirtNs copy_ns(std::size_t bytes) const {
    return static_cast<VirtNs>(copy_ns_per_byte * static_cast<double>(bytes));
  }
  /// Small message over VERB: compose in a pooled buffer, wire, dispatch.
  VirtNs verb_msg_ns(std::size_t bytes) const {
    return compose_ns + verb_oneway_ns + wire_ns(bytes) + handler_dispatch_ns;
  }
  /// Page-sized payload over the RDMA sink path: post, wire, completion
  /// dispatch, copy out of the sink.
  VirtNs rdma_payload_ns(std::size_t bytes) const {
    return rdma_post_ns + wire_ns(bytes) + handler_dispatch_ns +
           copy_ns(bytes);
  }

  /// DRAM cost of touching `bytes` on a node where `active_threads` threads
  /// stream concurrently with intensity `intensity` in [0,1] (fraction of
  /// peak per-core streaming each thread sustains). Models the per-node
  /// bandwidth wall behind BP's super-linear scaling.
  VirtNs dram_ns(std::size_t bytes, int active_threads,
                 double intensity) const {
    const double per_core_gbps = 1.0 / dram_ns_per_byte;  // GB/s
    const double demand = per_core_gbps * intensity *
                          static_cast<double>(active_threads > 0
                                                  ? active_threads
                                                  : 1);
    const double slowdown =
        demand > node_mem_bw_gbps ? demand / node_mem_bw_gbps : 1.0;
    return static_cast<VirtNs>(dram_ns_per_byte * slowdown *
                               static_cast<double>(bytes));
  }
};

}  // namespace dex::net
