#include "net/buffer_pool.h"

#include "common/time_gate.h"

namespace dex::net {

BufferPool::BufferPool(std::size_t num_buffers, std::size_t buffer_size)
    : num_buffers_(num_buffers),
      buffer_size_(buffer_size),
      storage_(std::make_unique<std::uint8_t[]>(num_buffers * buffer_size)) {
  DEX_CHECK(num_buffers > 0 && buffer_size > 0);
  free_slots_.reserve(num_buffers);
  for (std::size_t i = 0; i < num_buffers; ++i) {
    free_slots_.push_back(static_cast<int>(i));
  }
}

PooledBuffer BufferPool::acquire(bool* stalled) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stalled != nullptr) *stalled = free_slots_.empty();
  if (free_slots_.empty()) {
    stalls_.fetch_add(1, std::memory_order_relaxed);
    ScopedGateBlock gate_block("buffer_pool");
    cv_.wait(lock, [&] { return !free_slots_.empty(); });
  }
  const int slot = free_slots_.back();
  free_slots_.pop_back();
  acquired_.fetch_add(1, std::memory_order_relaxed);
  return PooledBuffer(this, slot,
                      storage_.get() + static_cast<std::size_t>(slot) *
                                           buffer_size_,
                      buffer_size_);
}

PooledBuffer BufferPool::try_acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_slots_.empty()) return PooledBuffer();
  const int slot = free_slots_.back();
  free_slots_.pop_back();
  acquired_.fetch_add(1, std::memory_order_relaxed);
  return PooledBuffer(this, slot,
                      storage_.get() + static_cast<std::size_t>(slot) *
                                           buffer_size_,
                      buffer_size_);
}

std::size_t BufferPool::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_slots_.size();
}

void BufferPool::release_slot(int slot) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    free_slots_.push_back(slot);
  }
  cv_.notify_one();
}

void PooledBuffer::release() {
  if (pool_ != nullptr) {
    pool_->release_slot(slot_);
    pool_ = nullptr;
  }
}

}  // namespace dex::net
