// The simulated rack interconnect.
//
// Role in the paper: §III-E's custom messaging layer over InfiniBand —
// RC connections per node pair, VERB send/recv with pre-mapped buffer
// pools for small control messages, and RDMA writes into a pre-registered
// sink for page-sized payloads.
//
// Simulation model: RPCs are executed synchronously in the caller's OS
// thread (the faulting/migrating thread blocks for the round trip in the
// real system too), the registered handler runs against the destination
// node's data structures under that node's locks (so cross-node races are
// real), and every mechanical step charges the calibrated CostModel to the
// caller's virtual clock. Buffer pools and the RDMA sink are fully
// exercised: slots are acquired, filled, drained and recycled per message.
#pragma once

#include <array>
#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "net/connection.h"
#include "net/cost_model.h"
#include "net/fault_injector.h"
#include "net/message.h"

namespace dex::net {

/// Ablation switches for the §III-E design choices. Defaults match the
/// paper's design; benches flip them to quantify each choice.
struct FabricMode {
  /// Pre-mapped send/receive buffer pools; off = per-message DMA mapping.
  bool use_buffer_pools = true;
  /// Scatter-gather fan-out: call_many()/post_many() post all legs before
  /// waiting any, so the caller is charged max(leg latencies) plus a serial
  /// per-leg posting gap instead of the sum. Off = legs run serially on the
  /// caller's clock (the pre-fan-out behavior, kept for ablations).
  bool overlapped_fanout = true;
  /// Bulk payload strategy.
  enum class BulkPath {
    kRdmaSink,          // paper's hybrid: pre-registered sink + one memcpy
    kRdmaPerPageReg,    // register an RDMA region per transfer
    kVerbFragmented,    // chop bulk data into VERB-sized control messages
  };
  BulkPath bulk_path = BulkPath::kRdmaSink;
};

/// Timeout + bounded-exponential-backoff schedule for RPC delivery. A lost
/// leg (request or reply, as decided by the FaultInjector) costs the caller
/// one timeout plus the attempt's backoff on its virtual clock; after
/// `max_attempts` the call surfaces RpcError instead of hanging.
struct RetryPolicy {
  int max_attempts = 4;
  VirtNs timeout_ns = 50'000;
  VirtNs backoff_base_ns = 10'000;
  VirtNs backoff_max_ns = 400'000;
  /// Jitter fraction in [0, 1): each attempt's backoff is stretched by a
  /// deterministic pseudo-random factor in [1, 1 + jitter) keyed on
  /// (seed, salt, attempt). Pure exponential backoff resynchronizes
  /// colliding retriers into storms after a blip; jitter desynchronizes
  /// them. 0 (the default) reproduces the seed schedule bit-for-bit.
  double jitter = 0.0;
  std::uint64_t seed = 0;

  VirtNs backoff_for(int attempt) const {
    VirtNs backoff = backoff_base_ns;
    for (int i = 1; i < attempt && backoff < backoff_max_ns; ++i) {
      backoff *= 2;
    }
    return backoff < backoff_max_ns ? backoff : backoff_max_ns;
  }

  /// Salted variant: same bounded-exponential base, plus the deterministic
  /// jitter band. Distinct salts (the fabric mixes src/dst/type) give
  /// colliding retriers distinct schedules under the same seed.
  VirtNs backoff_for(int attempt, std::uint64_t salt) const {
    const VirtNs base = backoff_for(attempt);
    if (jitter <= 0.0) return base;
    // splitmix64 finalizer over the mixed key: decision is a pure function
    // of (seed, salt, attempt) — reproducible regardless of interleaving.
    std::uint64_t z = seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^
                      (static_cast<std::uint64_t>(attempt) + 1) *
                          0xbf58476d1ce4e5b9ULL;
    z ^= z >> 30;
    z *= 0xbf58476d1ce4e5b9ULL;
    z ^= z >> 27;
    z *= 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0, 1)
    return base + static_cast<VirtNs>(jitter * u *
                                      static_cast<double>(base));
  }

  /// The per-stream salt the fabric feeds into backoff_for: one value per
  /// (src, dst, type) so two nodes retrying against the same destination
  /// never share a schedule.
  static std::uint64_t salt_of(NodeId src, NodeId dst, MsgType type) {
    return 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(src) + 1) ^
           0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(dst) + 1) ^
           0x94d049bb133111ebULL * (static_cast<std::uint64_t>(type) + 1);
  }
};

struct FabricOptions {
  int num_nodes = 2;
  CostModel cost;
  ConnectionConfig connection;
  FabricMode mode;
  /// Payloads at or above this size take the bulk (RDMA) path.
  std::size_t bulk_threshold = 2048;
  RetryPolicy retry;
  /// Chaos schedule installed at construction (reconfigurable via
  /// injector().configure()).
  FaultPolicy faults;
};

/// Per-leg result of a scatter-gather fan-out. Unlike call(), which throws,
/// call_many() reports each leg's fate so the caller can finish the other
/// legs and then decide (a write fault must revoke every live sharer even
/// when one of them is dead or unreachable).
struct CallOutcome {
  enum class Status {
    kOk,        // reply is valid
    kNodeDead,  // destination declared dead (NodeDeadError)
    kFailed,    // retry budget exhausted / error reply (RpcError)
  };
  Status status = Status::kOk;
  Message reply;
};

class Fabric {
 public:
  using Handler = std::function<Message(const Message&)>;

  explicit Fabric(const FabricOptions& options);

  int num_nodes() const { return options_.num_nodes; }
  const CostModel& cost() const { return options_.cost; }
  const FabricOptions& options() const { return options_; }

  /// Registers the handler for one message type. Handlers run in the
  /// calling thread against destination-node state; they must synchronize
  /// access themselves (they do, via directory/PTE locks).
  void register_handler(MsgType type, Handler handler);

  /// Synchronous RPC from `src` to `dst`: charges request wire costs,
  /// dispatches to the handler, charges reply costs (bulk replies take the
  /// RDMA-sink path), and returns the reply. Intra-node calls short-circuit
  /// the wire but still run the handler.
  ///
  /// Failure semantics: a leg the FaultInjector drops costs the caller one
  /// RPC timeout plus exponential backoff and is retried; idempotent
  /// message types simply re-execute, non-idempotent ones carry a sequence
  /// number and are duplicate-suppressed at the receiver (the cached reply
  /// is returned). After RetryPolicy::max_attempts the call throws
  /// RpcError; a dead src or dst throws NodeDeadError. An error-status
  /// reply (the kAck convention) also throws RpcError. call() never hangs
  /// on a lost message and never silently drops a failure.
  Message call(NodeId src, const Message& request);

  /// Scatter-gather RPC: posts every leg before waiting for any, so the
  /// caller's virtual clock is charged max(leg round trips) plus a serial
  /// per-leg posting gap (CostModel::fanout_post_gap_ns) — not the sum.
  /// Each leg keeps call()'s full semantics (retry, backoff, dedup for
  /// non-idempotent types); a leg's failure is reported in its CallOutcome
  /// instead of thrown, except that the caller's own node being dead still
  /// throws NodeDeadError (there is no point finishing the other legs).
  /// With FabricMode::overlapped_fanout off, legs run serially on the
  /// caller's clock — exactly the old cost, for ablations.
  std::vector<CallOutcome> call_many(NodeId src,
                                     const std::vector<Message>& requests);

  /// Doorbell batch: `requests` all target the SAME destination and are
  /// posted as one work-request chain with a single doorbell ring (SMART's
  /// read_batches_sync) — the caller is charged ONE posting gap for the
  /// whole batch instead of one per leg, and the legs' round trips overlap
  /// like call_many(). Each leg keeps call()'s full semantics (retry,
  /// backoff, dedup, error capture); unlike call_many(), a dead *source* is
  /// also reported per-leg (kNodeDead) instead of thrown — the async engine
  /// owns the unwind policy, not the posting thread. With
  /// FabricMode::overlapped_fanout off, legs run serially (ablation).
  /// When `leg_done` is non-null it receives each leg's completion time, so
  /// the engine can wake a transaction at its own leg's finish instead of
  /// the batch's max — a short demand leg is not delayed by a long
  /// prefetch-payload leg sharing its doorbell. When `leg_floor` is
  /// non-null, leg i may not start before (*leg_floor)[i]: the engine
  /// passes the finish times of the legs posted max_inflight earlier, so a
  /// depth-D NIC queue never has more than D transfers virtually in flight
  /// no matter how fast the pump posts.
  std::vector<CallOutcome> post_batch(
      NodeId src, const std::vector<Message>& requests,
      std::vector<VirtNs>* leg_done = nullptr,
      const std::vector<VirtNs>* leg_floor = nullptr);

  /// Fan-out of one-way posts (eager VMA broadcasts, reclaim sweeps) with
  /// the same overlap accounting as call_many(). Posts to dead nodes are
  /// discarded and counted, matching post().
  void post_many(NodeId src, const std::vector<Message>& requests);

  /// One-way message (eager VMA update broadcasts, teardown). Charges the
  /// send path only; the handler's reply is discarded. Drops are retried on
  /// the same backoff schedule (RC transports retransmit); a post to a dead
  /// node is silently discarded (counted), since there is nobody to tell.
  void post(NodeId src, const Message& request);

  /// Moves `len` bytes of bulk payload (page data) from `src` to `dst`
  /// over the configured bulk path, charging the caller's virtual clock.
  /// Intra-node transfers degrade to a memcpy. Returns the charged cost.
  VirtNs bulk_transfer(NodeId src, NodeId dst, const std::uint8_t* data,
                       std::size_t len, std::uint8_t* out);

  /// Single-attempt unreliable datagram (UD-style): charges the send path
  /// and dispatches at most once. A drop decided by the FaultInjector is
  /// final — no timeout, no retransmit; the silence *is* the signal the
  /// accrual failure detector consumes. A dead destination discards the
  /// datagram (counted with posts_to_dead); a dead source throws
  /// NodeDeadError so the caller learns its own node is gone. Returns true
  /// when the datagram was delivered and dispatched.
  bool post_datagram(NodeId src, const Message& request);

  /// One-way RDMA push of a forwarded grant (kForwardGrant): bulk path
  /// only, no VERB control round trip — the immediate data of the RDMA
  /// write is the completion signal at the requester. Drops retransmit on
  /// the post() backoff schedule; returns false when the retry budget is
  /// spent or `dst` is (or dies) dead, so the caller can fall back to the
  /// classic two-transfer recall. A dead `src` throws NodeDeadError.
  bool push_grant(NodeId src, NodeId dst, const std::uint8_t* data,
                  std::size_t len, std::uint8_t* out);

  RcConnection& connection(NodeId src, NodeId dst);

  /// The chaos policy object: drop/duplicate/delay schedules and node
  /// liveness. Replaces the old ad-hoc DelayInjector hook.
  FaultInjector& injector() { return injector_; }
  const FaultInjector& injector() const { return injector_; }
  const RetryPolicy& retry_policy() const { return options_.retry; }

  // ---- Aggregate statistics ----
  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;
  std::uint64_t total_rdma_ops() const;
  std::uint64_t messages_of(MsgType type) const {
    return type_counts_[static_cast<std::size_t>(type)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t pool_stalls() const;
  std::uint64_t rpc_timeouts() const {
    return rpc_timeouts_.load(std::memory_order_relaxed);
  }
  std::uint64_t rpc_retries() const {
    return rpc_retries_.load(std::memory_order_relaxed);
  }
  std::uint64_t dedup_suppressed() const {
    return dedup_suppressed_.load(std::memory_order_relaxed);
  }
  std::uint64_t posts_to_dead() const {
    return posts_to_dead_.load(std::memory_order_relaxed);
  }
  std::uint64_t fanout_calls() const {
    return fanout_calls_.load(std::memory_order_relaxed);
  }
  std::uint64_t fanout_legs() const {
    return fanout_legs_.load(std::memory_order_relaxed);
  }
  std::uint64_t doorbell_batches() const {
    return doorbell_batches_.load(std::memory_order_relaxed);
  }
  std::uint64_t batched_posts() const {
    return batched_posts_.load(std::memory_order_relaxed);
  }
  void reset_counters();

 private:
  /// Per-destination cache of replies to non-idempotent RPCs, keyed by
  /// sequence number. A retried (or injector-duplicated) delivery whose
  /// first execution already ran gets the cached reply instead of a second
  /// execution — at-least-once delivery, exactly-once execution. Bounded
  /// FIFO, standing in for the receive-window bookkeeping an RC transport
  /// keeps per queue pair.
  struct DedupCache {
    static constexpr std::size_t kCapacity = 4096;
    std::mutex mu;
    std::unordered_map<std::uint64_t, Message> replies;
    std::deque<std::uint64_t> order;
  };

  /// Models moving `msg` src->dst over VERB using the pooled buffers;
  /// returns the virtual cost charged.
  VirtNs transmit_small(RcConnection& conn, const Message& msg);
  /// Models moving a bulk payload over the configured bulk path into the
  /// destination; returns the virtual cost charged.
  VirtNs transmit_bulk(RcConnection& conn, const std::uint8_t* data,
                       std::size_t len, std::uint8_t* out);

  /// Runs the handler at the destination, consulting/populating the dedup
  /// cache when `deduplicate` is set.
  Message dispatch(const Message& msg, bool deduplicate);

  /// Charges one timed-out attempt (timeout + backoff); throws RpcError
  /// once the retry budget is spent.
  void charge_timeout(const Message& msg, int attempt);

  /// Throws NodeDeadError when either endpoint has been declared dead.
  void check_liveness(NodeId src, const Message& msg) const;

  /// One leg of call_many(): call() with leg-local failure capture. Only a
  /// dead *source* node propagates as NodeDeadError.
  CallOutcome call_one(NodeId src, const Message& request);

  /// Runs `legs.size()` closures with overlap accounting: each leg gets a
  /// scratch clock starting at now + i * fanout_post_gap_ns; afterwards the
  /// caller's clock observes the latest leg finish time.
  void run_overlapped(const std::vector<std::function<void()>>& legs);

  FabricOptions options_;
  // connections_[src * n + dst], src != dst.
  std::vector<std::unique_ptr<RcConnection>> connections_;
  std::array<Handler, static_cast<std::size_t>(MsgType::kMaxType)> handlers_;
  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(MsgType::kMaxType)>
      type_counts_{};
  FaultInjector injector_;
  std::vector<std::unique_ptr<DedupCache>> dedup_;  // per destination node
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<std::uint64_t> rpc_timeouts_{0};
  std::atomic<std::uint64_t> rpc_retries_{0};
  std::atomic<std::uint64_t> dedup_suppressed_{0};
  std::atomic<std::uint64_t> posts_to_dead_{0};
  std::atomic<std::uint64_t> fanout_calls_{0};
  std::atomic<std::uint64_t> fanout_legs_{0};
  std::atomic<std::uint64_t> doorbell_batches_{0};
  std::atomic<std::uint64_t> batched_posts_{0};
};

}  // namespace dex::net
