// The simulated rack interconnect.
//
// Role in the paper: §III-E's custom messaging layer over InfiniBand —
// RC connections per node pair, VERB send/recv with pre-mapped buffer
// pools for small control messages, and RDMA writes into a pre-registered
// sink for page-sized payloads.
//
// Simulation model: RPCs are executed synchronously in the caller's OS
// thread (the faulting/migrating thread blocks for the round trip in the
// real system too), the registered handler runs against the destination
// node's data structures under that node's locks (so cross-node races are
// real), and every mechanical step charges the calibrated CostModel to the
// caller's virtual clock. Buffer pools and the RDMA sink are fully
// exercised: slots are acquired, filled, drained and recycled per message.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"
#include "net/connection.h"
#include "net/cost_model.h"
#include "net/message.h"

namespace dex::net {

/// Ablation switches for the §III-E design choices. Defaults match the
/// paper's design; benches flip them to quantify each choice.
struct FabricMode {
  /// Pre-mapped send/receive buffer pools; off = per-message DMA mapping.
  bool use_buffer_pools = true;
  /// Bulk payload strategy.
  enum class BulkPath {
    kRdmaSink,          // paper's hybrid: pre-registered sink + one memcpy
    kRdmaPerPageReg,    // register an RDMA region per transfer
    kVerbFragmented,    // chop bulk data into VERB-sized control messages
  };
  BulkPath bulk_path = BulkPath::kRdmaSink;
};

struct FabricOptions {
  int num_nodes = 2;
  CostModel cost;
  ConnectionConfig connection;
  FabricMode mode;
  /// Payloads at or above this size take the bulk (RDMA) path.
  std::size_t bulk_threshold = 2048;
};

class Fabric {
 public:
  using Handler = std::function<Message(const Message&)>;

  explicit Fabric(const FabricOptions& options);

  int num_nodes() const { return options_.num_nodes; }
  const CostModel& cost() const { return options_.cost; }
  const FabricOptions& options() const { return options_; }

  /// Registers the handler for one message type. Handlers run in the
  /// calling thread against destination-node state; they must synchronize
  /// access themselves (they do, via directory/PTE locks).
  void register_handler(MsgType type, Handler handler);

  /// Synchronous RPC from `src` to `dst`: charges request wire costs,
  /// dispatches to the handler, charges reply costs (bulk replies take the
  /// RDMA-sink path), and returns the reply. Intra-node calls short-circuit
  /// the wire but still run the handler.
  Message call(NodeId src, const Message& request);

  /// One-way message (eager VMA update broadcasts, teardown). Charges the
  /// send path only; the handler's reply is discarded.
  void post(NodeId src, const Message& request);

  /// Moves `len` bytes of bulk payload (page data) from `src` to `dst`
  /// over the configured bulk path, charging the caller's virtual clock.
  /// Intra-node transfers degrade to a memcpy. Returns the charged cost.
  VirtNs bulk_transfer(NodeId src, NodeId dst, const std::uint8_t* data,
                       std::size_t len, std::uint8_t* out);

  RcConnection& connection(NodeId src, NodeId dst);

  /// Optional per-message extra latency for fault-injection tests.
  using DelayInjector = std::function<VirtNs(const Message&)>;
  void set_delay_injector(DelayInjector injector) {
    delay_injector_ = std::move(injector);
  }

  // ---- Aggregate statistics ----
  std::uint64_t total_messages() const;
  std::uint64_t total_bytes() const;
  std::uint64_t total_rdma_ops() const;
  std::uint64_t messages_of(MsgType type) const {
    return type_counts_[static_cast<std::size_t>(type)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t pool_stalls() const;
  void reset_counters();

 private:
  /// Models moving `msg` src->dst over VERB using the pooled buffers;
  /// returns the virtual cost charged.
  VirtNs transmit_small(RcConnection& conn, const Message& msg);
  /// Models moving a bulk payload over the configured bulk path into the
  /// destination; returns the virtual cost charged.
  VirtNs transmit_bulk(RcConnection& conn, const std::uint8_t* data,
                       std::size_t len, std::uint8_t* out);

  FabricOptions options_;
  // connections_[src * n + dst], src != dst.
  std::vector<std::unique_ptr<RcConnection>> connections_;
  std::array<Handler, static_cast<std::size_t>(MsgType::kMaxType)> handlers_;
  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(MsgType::kMaxType)>
      type_counts_{};
  DelayInjector delay_injector_;
};

}  // namespace dex::net
