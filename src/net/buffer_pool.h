// Pooled, pre-"DMA-mapped" message buffers (§III-E).
//
// The paper avoids per-message DMA mapping by carving each connection's send
// and receive buffers out of rings of physically contiguous, pre-mapped
// chunks. We model the same lifecycle: acquire a slot (blocking when the
// ring is exhausted, which charges the stall cost and bumps a counter),
// compose/consume the message in the slot, release it back to the ring.
// Ablation benches bypass the pool to show the per-message mapping cost the
// design eliminates.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace dex::net {

class BufferPool;

/// RAII handle to one pooled buffer slot.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(BufferPool* pool, int slot, std::uint8_t* data,
               std::size_t size)
      : pool_(pool), slot_(slot), data_(data), size_(size) {}
  PooledBuffer(PooledBuffer&& other) noexcept { *this = std::move(other); }
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    release();
    pool_ = other.pool_;
    slot_ = other.slot_;
    data_ = other.data_;
    size_ = other.size_;
    other.pool_ = nullptr;
    return *this;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  ~PooledBuffer() { release(); }

  bool valid() const { return pool_ != nullptr; }
  std::uint8_t* data() { return data_; }
  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  void release();

 private:
  BufferPool* pool_ = nullptr;
  int slot_ = -1;
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Fixed ring of equally sized buffers. `acquire` blocks when empty, which
/// models back-pressure from a full send queue.
class BufferPool {
 public:
  BufferPool(std::size_t num_buffers, std::size_t buffer_size);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Blocks until a buffer is free. Returns the buffer and reports (via
  /// `stalled`, if non-null) whether the caller had to wait.
  PooledBuffer acquire(bool* stalled = nullptr);

  /// Non-blocking variant; returns an invalid handle when exhausted.
  PooledBuffer try_acquire();

  std::size_t capacity() const { return num_buffers_; }
  std::size_t buffer_size() const { return buffer_size_; }
  std::size_t available() const;
  std::uint64_t total_acquired() const {
    return acquired_.load(std::memory_order_relaxed);
  }
  std::uint64_t stall_count() const {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  friend class PooledBuffer;
  void release_slot(int slot);

  const std::size_t num_buffers_;
  const std::size_t buffer_size_;
  std::unique_ptr<std::uint8_t[]> storage_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<int> free_slots_;
  std::atomic<std::uint64_t> acquired_{0};
  std::atomic<std::uint64_t> stalls_{0};
};

}  // namespace dex::net
