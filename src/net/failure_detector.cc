#include "net/failure_detector.h"

#include <cmath>

#include "common/assert.h"

namespace dex::net {

namespace {
// 1 / ln(10): converts "silence in mean intervals" into -log10 of the
// exponential tail probability.
constexpr double kInvLn10 = 0.43429448190325176;
}  // namespace

AccrualDetector::AccrualDetector(int num_nodes, VirtNs interval_ns)
    : num_nodes_(num_nodes), interval_ns_(interval_ns) {
  DEX_CHECK(num_nodes >= 1 && num_nodes <= kMaxNodes);
  DEX_CHECK(interval_ns > 0);
}

void AccrualDetector::record_heartbeat(NodeId node, VirtNs at) {
  DEX_CHECK(node >= 0 && node < num_nodes_);
  std::lock_guard<std::mutex> lock(mu_);
  History& h = history_[static_cast<std::size_t>(node)];
  ++h.seen;
  if (h.last == 0) {
    // First arrival: establishes the freshness point, no interval yet.
    h.last = at;
    return;
  }
  if (at <= h.last) return;  // late or duplicated delivery: only freshness
  h.intervals[static_cast<std::size_t>(h.next)] = at - h.last;
  h.next = (h.next + 1) % kHistory;
  if (h.count < kHistory) ++h.count;
  h.last = at;
}

VirtNs AccrualDetector::mean_interval(NodeId node) const {
  DEX_CHECK(node >= 0 && node < num_nodes_);
  std::lock_guard<std::mutex> lock(mu_);
  const History& h = history_[static_cast<std::size_t>(node)];
  if (h.count == 0) return interval_ns_;
  VirtNs sum = 0;
  for (int i = 0; i < h.count; ++i) {
    sum += h.intervals[static_cast<std::size_t>(i)];
  }
  const VirtNs mean = sum / h.count;
  return mean > 0 ? mean : 1;
}

double AccrualDetector::phi(NodeId node, VirtNs now) const {
  DEX_CHECK(node >= 0 && node < num_nodes_);
  VirtNs last;
  {
    std::lock_guard<std::mutex> lock(mu_);
    last = history_[static_cast<std::size_t>(node)].last;
  }
  if (last == 0 || now <= last) return 0.0;
  const double silence = static_cast<double>(now - last);
  const double mean = static_cast<double>(mean_interval(node));
  return kInvLn10 * silence / mean;
}

VirtNs AccrualDetector::last_arrival(NodeId node) const {
  DEX_CHECK(node >= 0 && node < num_nodes_);
  std::lock_guard<std::mutex> lock(mu_);
  return history_[static_cast<std::size_t>(node)].last;
}

std::uint64_t AccrualDetector::heartbeats_from(NodeId node) const {
  DEX_CHECK(node >= 0 && node < num_nodes_);
  std::lock_guard<std::mutex> lock(mu_);
  return history_[static_cast<std::size_t>(node)].seen;
}

void AccrualDetector::reset_node(NodeId node, VirtNs now) {
  DEX_CHECK(node >= 0 && node < num_nodes_);
  std::lock_guard<std::mutex> lock(mu_);
  History& h = history_[static_cast<std::size_t>(node)];
  h.intervals.fill(0);
  h.count = 0;
  h.next = 0;
  h.last = now;
  h.seen = 0;
}

}  // namespace dex::net
