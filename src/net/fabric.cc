#include "net/fabric.h"

#include <cstring>
#include <string>

#include <algorithm>

#include "common/assert.h"
#include "common/time_gate.h"
#include "common/virtual_clock.h"
#include "net/rpc_error.h"
#include "prof/trace.h"

namespace dex::net {

std::string RpcError::describe(MsgType type, NodeId src, NodeId dst,
                               int attempts, const std::string& reason) {
  std::string what = "rpc ";
  what += to_string(type);
  what += " " + std::to_string(src) + "->" + std::to_string(dst);
  what += " failed";
  if (attempts > 0) {
    what += " after " + std::to_string(attempts) + " attempts";
  }
  what += ": " + reason;
  return what;
}

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kInvalid: return "invalid";
    case MsgType::kPageRequestRead: return "page_request_read";
    case MsgType::kPageRequestWrite: return "page_request_write";
    case MsgType::kPageGrant: return "page_grant";
    case MsgType::kPageRetry: return "page_retry";
    case MsgType::kRevokeOwnership: return "revoke_ownership";
    case MsgType::kPageRequestBatch: return "page_request_batch";
    case MsgType::kPageGrantBatch: return "page_grant_batch";
    case MsgType::kForwardRecall: return "forward_recall";
    case MsgType::kForwardGrant: return "forward_grant";
    case MsgType::kHomeMigrate: return "home_migrate";
    case MsgType::kVmaInfoRequest: return "vma_info_request";
    case MsgType::kVmaInfoReply: return "vma_info_reply";
    case MsgType::kVmaUpdate: return "vma_update";
    case MsgType::kMigrateThread: return "migrate_thread";
    case MsgType::kMigrateBack: return "migrate_back";
    case MsgType::kRemoteWorkerSetup: return "remote_worker_setup";
    case MsgType::kDelegateFutex: return "delegate_futex";
    case MsgType::kDelegateVmaOp: return "delegate_vma_op";
    case MsgType::kDelegateExit: return "delegate_exit";
    case MsgType::kAck: return "ack";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kMembershipUpdate: return "membership_update";
    case MsgType::kLeaseRenew: return "lease_renew";
    case MsgType::kEvictPage: return "evict_page";
    case MsgType::kDirReplicate: return "dir_replicate";
    case MsgType::kScavengeRequest: return "scavenge_request";
    case MsgType::kMaxType: return "max_type";
  }
  return "?";
}

const char* to_string(MsgStatus status) {
  switch (status) {
    case MsgStatus::kOk: return "ok";
    case MsgStatus::kError: return "error";
    case MsgStatus::kBadPayload: return "bad_payload";
    case MsgStatus::kUnknownProcess: return "unknown_process";
  }
  return "?";
}

Fabric::Fabric(const FabricOptions& options)
    : options_(options), injector_(options.num_nodes) {
  DEX_CHECK(options.num_nodes >= 1);
  DEX_CHECK(options.retry.max_attempts >= 1);
  const int n = options.num_nodes;
  connections_.resize(static_cast<std::size_t>(n) * n);
  dedup_.reserve(static_cast<std::size_t>(n));
  for (int dst = 0; dst < n; ++dst) {
    dedup_.push_back(std::make_unique<DedupCache>());
  }
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      connections_[static_cast<std::size_t>(src) * n + dst] =
          std::make_unique<RcConnection>(src, dst, options.connection);
    }
  }
  injector_.configure(options.faults);
}

void Fabric::register_handler(MsgType type, Handler handler) {
  const auto idx = static_cast<std::size_t>(type);
  DEX_CHECK(idx < handlers_.size());
  handlers_[idx] = std::move(handler);
}

RcConnection& Fabric::connection(NodeId src, NodeId dst) {
  DEX_CHECK(src != dst);
  DEX_CHECK(src >= 0 && src < options_.num_nodes);
  DEX_CHECK(dst >= 0 && dst < options_.num_nodes);
  return *connections_[static_cast<std::size_t>(src) * options_.num_nodes +
                       dst];
}

VirtNs Fabric::transmit_small(RcConnection& conn, const Message& msg) {
  const CostModel& cost = options_.cost;
  const std::size_t bytes = msg.wire_size();
  VirtNs charged = 0;

  if (options_.mode.use_buffer_pools) {
    // Compose the outbound message in a pooled, pre-DMA-mapped buffer.
    bool stalled = false;
    PooledBuffer send_buf = conn.send_pool().acquire(&stalled);
    if (stalled) charged += cost.pool_stall_ns;
    const std::size_t n = bytes < send_buf.size() ? bytes : send_buf.size();
    if (!msg.payload.empty()) {
      std::memcpy(send_buf.data(), msg.payload.data(),
                  n < msg.payload.size() ? n : msg.payload.size());
    }
    charged += cost.verb_msg_ns(bytes);
    // The HCA DMA-writes into a pre-posted receive buffer at the peer; the
    // receiver consumes it and reposts the work request (recycling).
    bool recv_stalled = false;
    PooledBuffer recv_buf = conn.recv_pool().acquire(&recv_stalled);
    if (recv_stalled) charged += cost.pool_stall_ns;
    if (!msg.payload.empty()) {
      std::memcpy(recv_buf.data(), msg.payload.data(),
                  msg.payload.size() < recv_buf.size() ? msg.payload.size()
                                                       : recv_buf.size());
    }
    // Buffers return to their rings when the handles go out of scope.
  } else {
    // Ablation: no pools — every message pays DMA mapping on both sides.
    charged += 2 * cost.dma_map_ns + cost.verb_msg_ns(bytes);
  }

  conn.count_message(bytes);
  return charged;
}

VirtNs Fabric::transmit_bulk(RcConnection& conn, const std::uint8_t* data,
                             std::size_t len, std::uint8_t* out) {
  const CostModel& cost = options_.cost;
  VirtNs charged = 0;

  switch (options_.mode.bulk_path) {
    case FabricMode::BulkPath::kRdmaSink: {
      // The receiver reserves a sink chunk and tells the sender where to
      // RDMA-write; on completion it copies the data to its final
      // destination and recycles the chunk. One posted work request covers
      // the whole transfer (chained chunks), so the post + completion
      // dispatch are paid once and amortize over multi-page batches; wire
      // time and the sink->destination copy stay per byte.
      charged += cost.rdma_post_ns + cost.handler_dispatch_ns;
      std::size_t done = 0;
      while (done < len) {
        bool stalled = false;
        SinkBuffer chunk = conn.sink().reserve(&stalled);
        if (stalled) charged += cost.pool_stall_ns;
        const std::size_t n =
            len - done < chunk.size() ? len - done : chunk.size();
        std::memcpy(chunk.data(), data + done, n);  // the RDMA write
        charged += cost.wire_ns(n) + cost.copy_ns(n);
        chunk.copy_out_and_release(out + done, n);
        conn.count_rdma(n);
        done += n;
      }
      break;
    }
    case FabricMode::BulkPath::kRdmaPerPageReg: {
      // Ablation: register the destination buffer as an RDMA region for
      // every transfer. No extra copy, but the registration dominates.
      charged += cost.mr_register_ns + cost.rdma_post_ns + cost.wire_ns(len) +
                 cost.handler_dispatch_ns;
      std::memcpy(out, data, len);
      conn.count_rdma(len);
      break;
    }
    case FabricMode::BulkPath::kVerbFragmented: {
      // Ablation: fragment the payload into control-message-sized VERB
      // sends through the pools.
      const std::size_t frag = conn.send_pool().buffer_size();
      std::size_t done = 0;
      while (done < len) {
        const std::size_t n = len - done < frag ? len - done : frag;
        bool stalled = false;
        PooledBuffer buf = conn.send_pool().acquire(&stalled);
        if (stalled) charged += cost.pool_stall_ns;
        std::memcpy(buf.data(), data + done, n);
        charged += cost.verb_msg_ns(n + Message::kHeaderBytes);
        std::memcpy(out + done, buf.data(), n);
        conn.count_message(n + Message::kHeaderBytes);
        done += n;
      }
      break;
    }
  }
  return charged;
}

VirtNs Fabric::bulk_transfer(NodeId src, NodeId dst, const std::uint8_t* data,
                             std::size_t len, std::uint8_t* out) {
  VirtNs charged;
  if (src == dst) {
    std::memcpy(out, data, len);
    charged = options_.cost.copy_ns(len);
  } else {
    charged = transmit_bulk(connection(src, dst), data, len, out);
  }
  vclock::advance(charged);
  return charged;
}

void Fabric::check_liveness(NodeId src, const Message& msg) const {
  if (injector_.node_dead(msg.dst)) {
    throw NodeDeadError(msg.dst, msg.type, src, msg.dst);
  }
  if (injector_.node_dead(src)) {
    // The caller's own node died (a migrated thread racing fail_node): its
    // next fabric interaction is where it finds out.
    throw NodeDeadError(src, msg.type, src, msg.dst);
  }
}

Message Fabric::dispatch(const Message& msg, bool deduplicate) {
  const auto idx = static_cast<std::size_t>(msg.type);
  if (!deduplicate || msg.seq == 0) return handlers_[idx](msg);

  DedupCache& cache = *dedup_[static_cast<std::size_t>(msg.dst)];
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.replies.find(msg.seq);
    if (it != cache.replies.end()) {
      dedup_suppressed_.fetch_add(1, std::memory_order_relaxed);
      prof::ChaosCounters::instance().dedup_suppressed.fetch_add(
          1, std::memory_order_relaxed);
      return it->second;
    }
  }
  Message reply = handlers_[idx](msg);
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    if (cache.replies.emplace(msg.seq, reply).second) {
      cache.order.push_back(msg.seq);
      while (cache.order.size() > DedupCache::kCapacity) {
        cache.replies.erase(cache.order.front());
        cache.order.pop_front();
      }
    }
  }
  return reply;
}

void Fabric::charge_timeout(const Message& msg, int attempt) {
  auto& chaos = prof::ChaosCounters::instance();
  rpc_timeouts_.fetch_add(1, std::memory_order_relaxed);
  chaos.rpc_timeouts.fetch_add(1, std::memory_order_relaxed);
  const RetryPolicy& retry = options_.retry;
  vclock::advance(retry.timeout_ns +
                  retry.backoff_for(attempt, RetryPolicy::salt_of(
                                                 msg.src, msg.dst, msg.type)));
  if (attempt >= retry.max_attempts) {
    throw RpcError(msg.type, msg.src, msg.dst, attempt, MsgStatus::kError,
                   "timed out (message lost)");
  }
  rpc_retries_.fetch_add(1, std::memory_order_relaxed);
  chaos.rpc_retries.fetch_add(1, std::memory_order_relaxed);
}

Message Fabric::call(NodeId src, const Message& request) {
  const auto idx = static_cast<std::size_t>(request.type);
  DEX_CHECK(idx < handlers_.size());
  DEX_CHECK_MSG(static_cast<bool>(handlers_[idx]), "no handler registered");
  type_counts_[idx].fetch_add(1, std::memory_order_relaxed);

  Message msg = request;
  msg.src = src;
  const bool cross_node = src != msg.dst;
  // Sequence numbers make non-idempotent RPCs safe to retry: the number is
  // assigned once per logical call and reused across retransmissions, so
  // the receiver recognizes (and suppresses) re-deliveries.
  const bool deduplicate = cross_node && !is_idempotent(msg.type);
  if (deduplicate && msg.seq == 0) {
    msg.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  }

  for (int attempt = 1;; ++attempt) {
    check_liveness(src, msg);

    if (!cross_node) {
      // Intra-node: no wire, no faults, no retries.
      msg.sent_at = vclock::now();
      Message reply = handlers_[idx](msg);
      reply.src = msg.dst;
      reply.dst = src;
      reply.sent_at = vclock::now();
      if (reply.status != MsgStatus::kOk) {
        throw RpcError(msg.type, src, msg.dst, attempt, reply.status,
                       to_string(reply.status));
      }
      return reply;
    }

    // --- request leg ---
    const FaultDecision request_fate =
        injector_.decide(msg.type, src, msg.dst);
    if (request_fate.drop) {
      charge_timeout(msg, attempt);
      continue;
    }
    VirtNs charged = request_fate.delay_ns;
    charged += transmit_small(connection(src, msg.dst), msg);
    vclock::advance(charged);
    msg.sent_at = vclock::now();

    Message reply = dispatch(msg, deduplicate);
    if (request_fate.duplicate) {
      // The wire delivered the request twice. Idempotent handlers re-run
      // and converge; non-idempotent ones hit the dedup cache.
      (void)dispatch(msg, deduplicate);
    }
    reply.src = msg.dst;
    reply.dst = src;

    // --- reply leg ---
    const FaultDecision reply_fate =
        injector_.decide(reply.type, msg.dst, src);
    if (reply_fate.drop) {
      // The handler ran but the caller cannot know: burn the timeout and
      // retransmit the request (dedup keeps the re-execution safe).
      charge_timeout(msg, attempt);
      continue;
    }
    VirtNs reply_cost = reply_fate.delay_ns;
    RcConnection& back = connection(msg.dst, src);
    if (reply.payload.size() >= options_.bulk_threshold) {
      // Control part of the reply goes over VERB, payload over the bulk
      // path into the requester's sink.
      Message control = reply;
      std::vector<std::uint8_t> bulk;
      bulk.swap(control.payload);
      reply_cost += transmit_small(back, control);
      std::vector<std::uint8_t> received(bulk.size());
      reply_cost +=
          transmit_bulk(back, bulk.data(), bulk.size(), received.data());
      reply.payload = std::move(received);
    } else {
      reply_cost += transmit_small(back, reply);
    }
    if (reply.offpath_reply != 0) {
      // The caller's logical completion does not wait for this reply leg
      // (forwarded-grant acks: the requester resumed when the kForwardGrant
      // push landed). The wire work is fully simulated above; its cost is
      // reported for the caller to fold into the page's release timestamp
      // instead of advancing the caller's clock here.
      reply.offpath_ns = reply_cost;
    } else {
      vclock::advance(reply_cost);
    }
    reply.sent_at = vclock::now();
    if (reply.status != MsgStatus::kOk) {
      throw RpcError(msg.type, src, msg.dst, attempt, reply.status,
                     to_string(reply.status));
    }
    return reply;
  }
}

CallOutcome Fabric::call_one(NodeId src, const Message& request) {
  CallOutcome outcome;
  try {
    outcome.reply = call(src, request);
    outcome.status = CallOutcome::Status::kOk;
  } catch (const NodeDeadError& dead) {
    // A dead destination is a per-leg outcome; a dead *caller* aborts the
    // whole fan-out, as it would abort a plain call().
    if (dead.dead_node() == src) throw;
    outcome.status = CallOutcome::Status::kNodeDead;
  } catch (const RpcError&) {
    outcome.status = CallOutcome::Status::kFailed;
  }
  return outcome;
}

void Fabric::run_overlapped(const std::vector<std::function<void()>>& legs) {
  // Each leg runs on a scratch clock starting at the caller's current time
  // plus the serial posting gap; the caller then observes the latest leg
  // finish, so its charge is max(leg latencies) + per-leg posting overhead.
  // The real clock is parked for the gate meanwhile (the caller is waiting
  // on completions, not advancing), and scratch clocks are detached from
  // the gate after their leg so they cannot wedge coupled runs.
  const VirtNs t0 = vclock::now();
  VirtNs latest = t0;
  {
    ScopedGateBlock parked("fanout_wait");
    for (std::size_t i = 0; i < legs.size(); ++i) {
      VirtualClock leg_clock(
          t0 + static_cast<VirtNs>(i) * options_.cost.fanout_post_gap_ns);
      {
        ScopedClockBinding bind(&leg_clock);
        try {
          legs[i]();
        } catch (...) {
          if (vclock::coupling_enabled()) {
            TimeGate::instance().leave(&leg_clock);
          }
          throw;
        }
      }
      if (vclock::coupling_enabled()) TimeGate::instance().leave(&leg_clock);
      latest = std::max(latest, leg_clock.now());
    }
  }
  vclock::observe(latest);
}

std::vector<CallOutcome> Fabric::call_many(
    NodeId src, const std::vector<Message>& requests) {
  std::vector<CallOutcome> outcomes(requests.size());
  if (requests.size() <= 1 || !options_.mode.overlapped_fanout) {
    // Serial fallback (and the ablation): exactly the old cost.
    for (std::size_t i = 0; i < requests.size(); ++i) {
      outcomes[i] = call_one(src, requests[i]);
    }
    return outcomes;
  }
  fanout_calls_.fetch_add(1, std::memory_order_relaxed);
  fanout_legs_.fetch_add(requests.size(), std::memory_order_relaxed);
  std::vector<std::function<void()>> legs;
  legs.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    legs.push_back([this, src, &requests, &outcomes, i] {
      outcomes[i] = call_one(src, requests[i]);
    });
  }
  run_overlapped(legs);
  return outcomes;
}

std::vector<CallOutcome> Fabric::post_batch(
    NodeId src, const std::vector<Message>& requests,
    std::vector<VirtNs>* leg_done, const std::vector<VirtNs>* leg_floor) {
  std::vector<CallOutcome> outcomes(requests.size());
  if (leg_done != nullptr) leg_done->assign(requests.size(), 0);
  if (requests.empty()) return outcomes;
  const NodeId dst = requests.front().dst;
  for (const Message& request : requests) {
    DEX_CHECK_MSG(request.dst == dst,
                  "post_batch legs must share a destination");
  }
  // Unlike call_one(), a dead source is captured per-leg too: the posting
  // thread is the engine's pump, not the transaction's submitter, and the
  // engine decides who unwinds.
  auto leg = [this, src](const Message& request, CallOutcome& out) {
    try {
      out.reply = call(src, request);
      out.status = CallOutcome::Status::kOk;
    } catch (const NodeDeadError&) {
      out.status = CallOutcome::Status::kNodeDead;
    } catch (const RpcError&) {
      out.status = CallOutcome::Status::kFailed;
    }
  };
  if (requests.size() <= 1 || !options_.mode.overlapped_fanout) {
    // Serial fallback (and the ablation): one post gap per leg, like a
    // driver that rings the doorbell per work request.
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (leg_floor != nullptr) vclock::observe((*leg_floor)[i]);
      leg(requests[i], outcomes[i]);
      if (leg_done != nullptr) (*leg_done)[i] = vclock::now();
    }
    return outcomes;
  }
  doorbell_batches_.fetch_add(1, std::memory_order_relaxed);
  batched_posts_.fetch_add(requests.size(), std::memory_order_relaxed);
  // The sender chains all work requests and rings the doorbell ONCE
  // (SMART's read_batches_sync): every leg's scratch clock starts after a
  // single posting gap, not call_many's i-th multiple, and the caller
  // observes the latest leg finish.
  const VirtNs t0 = vclock::now();
  VirtNs latest = t0;
  {
    ScopedGateBlock parked("doorbell_wait");
    for (std::size_t i = 0; i < requests.size(); ++i) {
      VirtNs start = t0 + options_.cost.fanout_post_gap_ns;
      if (leg_floor != nullptr) start = std::max(start, (*leg_floor)[i]);
      VirtualClock leg_clock(start);
      {
        ScopedClockBinding bind(&leg_clock);
        leg(requests[i], outcomes[i]);
      }
      if (vclock::coupling_enabled()) TimeGate::instance().leave(&leg_clock);
      if (leg_done != nullptr) (*leg_done)[i] = leg_clock.now();
      latest = std::max(latest, leg_clock.now());
    }
  }
  vclock::observe(latest);
  return outcomes;
}

void Fabric::post_many(NodeId src, const std::vector<Message>& requests) {
  if (requests.size() <= 1 || !options_.mode.overlapped_fanout) {
    for (const Message& request : requests) post(src, request);
    return;
  }
  fanout_calls_.fetch_add(1, std::memory_order_relaxed);
  fanout_legs_.fetch_add(requests.size(), std::memory_order_relaxed);
  std::vector<std::function<void()>> legs;
  legs.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    legs.push_back([this, src, &requests, i] { post(src, requests[i]); });
  }
  run_overlapped(legs);
}

void Fabric::post(NodeId src, const Message& request) {
  const auto idx = static_cast<std::size_t>(request.type);
  DEX_CHECK(idx < handlers_.size());
  DEX_CHECK_MSG(static_cast<bool>(handlers_[idx]), "no handler registered");
  type_counts_[idx].fetch_add(1, std::memory_order_relaxed);

  Message msg = request;
  msg.src = src;
  if (injector_.node_dead(src)) {
    throw NodeDeadError(src, msg.type, src, msg.dst);
  }
  if (src != msg.dst && injector_.node_dead(msg.dst)) {
    // Fire-and-forget to a dead peer: nothing to deliver, nobody to tell.
    posts_to_dead_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  for (int attempt = 1;; ++attempt) {
    VirtNs charged = 0;
    FaultDecision fate;
    if (src != msg.dst) {
      fate = injector_.decide(msg.type, src, msg.dst);
      if (fate.drop) {
        // One-way sends ride the RC transport's retransmission: charge the
        // backoff and try again until the budget runs out, then count the
        // loss (protocol-level posts tolerate at-most-once only under
        // adversarial schedules; see DESIGN.md "Failure model").
        vclock::advance(options_.retry.backoff_for(
            attempt, RetryPolicy::salt_of(src, msg.dst, msg.type)));
        if (attempt >= options_.retry.max_attempts) return;
        rpc_retries_.fetch_add(1, std::memory_order_relaxed);
        prof::ChaosCounters::instance().rpc_retries.fetch_add(
            1, std::memory_order_relaxed);
        continue;
      }
      charged += fate.delay_ns;
      charged += transmit_small(connection(src, msg.dst), msg);
    }
    vclock::advance(charged);
    msg.sent_at = vclock::now();
    (void)handlers_[idx](msg);
    if (fate.duplicate) (void)handlers_[idx](msg);
    return;
  }
}

bool Fabric::post_datagram(NodeId src, const Message& request) {
  const auto idx = static_cast<std::size_t>(request.type);
  DEX_CHECK(idx < handlers_.size());
  DEX_CHECK_MSG(static_cast<bool>(handlers_[idx]), "no handler registered");
  type_counts_[idx].fetch_add(1, std::memory_order_relaxed);

  Message msg = request;
  msg.src = src;
  if (injector_.node_dead(src)) {
    throw NodeDeadError(src, msg.type, src, msg.dst);
  }
  if (src != msg.dst && injector_.node_dead(msg.dst)) {
    posts_to_dead_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  VirtNs charged = 0;
  if (src != msg.dst) {
    const FaultDecision fate = injector_.decide(msg.type, src, msg.dst);
    if (fate.drop) {
      // Unreliable by design: the send cost was paid, the datagram is gone,
      // and nobody retransmits. The receiver's accrual detector turns the
      // silence into suspicion.
      vclock::advance(options_.cost.compose_ns);
      return false;
    }
    charged += fate.delay_ns;
    charged += transmit_small(connection(src, msg.dst), msg);
  }
  vclock::advance(charged);
  msg.sent_at = vclock::now();
  (void)handlers_[idx](msg);
  return true;
}

bool Fabric::push_grant(NodeId src, NodeId dst, const std::uint8_t* data,
                        std::size_t len, std::uint8_t* out) {
  type_counts_[static_cast<std::size_t>(MsgType::kForwardGrant)].fetch_add(
      1, std::memory_order_relaxed);
  if (injector_.node_dead(src)) {
    throw NodeDeadError(src, MsgType::kForwardGrant, src, dst);
  }
  if (src == dst) {
    std::memcpy(out, data, len);
    vclock::advance(options_.cost.copy_ns(len));
    return true;
  }
  for (int attempt = 1;; ++attempt) {
    if (injector_.node_dead(dst)) {
      posts_to_dead_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const FaultDecision fate = injector_.decide(MsgType::kForwardGrant, src,
                                                dst);
    if (fate.drop) {
      // RC retransmission, same schedule as post(): burn the backoff, try
      // again, and report failure once the budget is spent so the caller
      // can fall back to the classic recall.
      vclock::advance(options_.retry.backoff_for(
          attempt,
          RetryPolicy::salt_of(src, dst, MsgType::kForwardGrant)));
      if (attempt >= options_.retry.max_attempts) return false;
      rpc_retries_.fetch_add(1, std::memory_order_relaxed);
      prof::ChaosCounters::instance().rpc_retries.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    VirtNs charged = fate.delay_ns;
    charged += transmit_bulk(connection(src, dst), data, len, out);
    vclock::advance(charged);
    // A duplicated delivery overwrites the sink with identical bytes; the
    // push is idempotent by construction, so nothing further to model.
    return true;
  }
}

std::uint64_t Fabric::total_messages() const {
  std::uint64_t total = 0;
  for (const auto& conn : connections_) {
    if (conn) total += conn->messages();
  }
  return total;
}

std::uint64_t Fabric::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& conn : connections_) {
    if (conn) total += conn->bytes() + conn->rdma_bytes();
  }
  return total;
}

std::uint64_t Fabric::total_rdma_ops() const {
  std::uint64_t total = 0;
  for (const auto& conn : connections_) {
    if (conn) total += conn->rdma_ops();
  }
  return total;
}

std::uint64_t Fabric::pool_stalls() const {
  std::uint64_t total = 0;
  for (const auto& conn : connections_) {
    if (conn) {
      total += conn->send_pool().stall_count() +
               conn->recv_pool().stall_count() + conn->sink().stall_count();
    }
  }
  return total;
}

void Fabric::reset_counters() {
  for (auto& count : type_counts_) count.store(0, std::memory_order_relaxed);
}

}  // namespace dex::net
