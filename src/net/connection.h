// One direction of an InfiniBand RC connection between a node pair
// (§III-E). Each direction owns the sender-side send-buffer pool, the
// receiver-side receive-buffer pool, and the receiver-side RDMA sink for
// bulk payloads flowing this way, plus traffic counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/types.h"
#include "net/buffer_pool.h"
#include "net/rdma_sink.h"

namespace dex::net {

struct ConnectionConfig {
  std::size_t send_pool_buffers = 128;
  std::size_t recv_pool_buffers = 128;
  std::size_t buffer_bytes = 256;   // small control messages
  std::size_t sink_chunks = 64;
  std::size_t sink_chunk_bytes = kPageSize;
};

class RcConnection {
 public:
  RcConnection(NodeId src, NodeId dst, const ConnectionConfig& config)
      : src_(src),
        dst_(dst),
        send_pool_(config.send_pool_buffers, config.buffer_bytes),
        recv_pool_(config.recv_pool_buffers, config.buffer_bytes),
        sink_(config.sink_chunks, config.sink_chunk_bytes) {}

  NodeId src() const { return src_; }
  NodeId dst() const { return dst_; }

  BufferPool& send_pool() { return send_pool_; }
  BufferPool& recv_pool() { return recv_pool_; }
  RdmaSink& sink() { return sink_; }

  void count_message(std::size_t bytes) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void count_rdma(std::size_t bytes) {
    rdma_ops_.fetch_add(1, std::memory_order_relaxed);
    rdma_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  std::uint64_t messages() const {
    return messages_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  std::uint64_t rdma_ops() const {
    return rdma_ops_.load(std::memory_order_relaxed);
  }
  std::uint64_t rdma_bytes() const {
    return rdma_bytes_.load(std::memory_order_relaxed);
  }

 private:
  const NodeId src_;
  const NodeId dst_;
  BufferPool send_pool_;
  BufferPool recv_pool_;
  RdmaSink sink_;

  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> rdma_ops_{0};
  std::atomic<std::uint64_t> rdma_bytes_{0};
};

}  // namespace dex::net
