// Accrual failure detection over heartbeat datagrams (the φ detector of
// Hayashibara et al., adapted to the simulated fabric's virtual clock).
//
// Each monitored node emits periodic kHeartbeat datagrams over the
// single-attempt Fabric::post_datagram path; the monitor records the
// virtual-time inter-arrival history and turns *silence* into a continuous
// suspicion score instead of a binary timeout:
//
//   phi(now) = (now - last_arrival) / (mean_interarrival * ln 10)
//
// i.e. -log10 of the tail probability of the observed silence under an
// exponential inter-arrival model. Unlike a fixed timeout, the score adapts
// to the actual heartbeat cadence (including injected delays and drops) and
// gives the membership layer two thresholds — suspect and dead — with a
// computable detection bound: silence of phi_dead * ln(10) * mean intervals
// crosses the dead threshold, so with defaults a crashed node is declared
// within ~7 heartbeat intervals and a single dropped heartbeat (one
// interval of silence, phi ~= 0.43) never comes close.
//
// Determinism: the detector is pure arithmetic over arrival timestamps. All
// stochastic inputs (drops, per-node phase jitter) come from seeded sources
// upstream, so a chaos run reproduces the same suspicion trajectory.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>

#include "common/types.h"

namespace dex::net {

class AccrualDetector {
 public:
  static constexpr int kMaxNodes = 64;
  static constexpr int kHistory = 16;

  /// `interval_ns` seeds the history so the very first silence is scored
  /// against the configured cadence instead of dividing by zero.
  AccrualDetector(int num_nodes, VirtNs interval_ns);

  /// Records one heartbeat arrival from `node` at virtual time `at`.
  /// Out-of-order arrivals (at <= last) only refresh the freshness point.
  void record_heartbeat(NodeId node, VirtNs at);

  /// The suspicion score for `node` at virtual time `now`. 0 when a
  /// heartbeat just arrived; grows linearly with silence, normalized by
  /// the observed mean inter-arrival.
  double phi(NodeId node, VirtNs now) const;

  /// Observed mean inter-arrival (the configured interval until the first
  /// real sample lands).
  VirtNs mean_interval(NodeId node) const;

  VirtNs last_arrival(NodeId node) const;
  std::uint64_t heartbeats_from(NodeId node) const;

  /// Starts (or restarts, after a heal) monitoring `node` as of `now`:
  /// clears the inter-arrival history back to the configured cadence and
  /// pretends a heartbeat just arrived, so a re-admitted node gets a full
  /// detection window before suspicion accrues again.
  void reset_node(NodeId node, VirtNs now);

 private:
  struct History {
    std::array<VirtNs, kHistory> intervals{};
    int count = 0;       // samples recorded, saturates at kHistory
    int next = 0;        // ring cursor
    VirtNs last = 0;     // virtual time of the freshest heartbeat
    std::uint64_t seen = 0;
  };

  int num_nodes_;
  VirtNs interval_ns_;
  mutable std::mutex mu_;
  std::array<History, kMaxNodes> history_;
};

}  // namespace dex::net
