// Typed failures of the simulated fabric.
//
// The paper's kernel messaging layer assumes a reliable rack and simply
// blocks forever on a lost completion; a chaos-tested reproduction cannot.
// When the retry budget of Fabric::call()/post() is exhausted, or when the
// destination (or the caller's own node) has been declared dead by the
// FaultInjector, the fabric raises one of these instead of hanging. The
// core runtime catches them at thread granularity and reports the thread
// as failed rather than deadlocking the process.
#pragma once

#include <stdexcept>
#include <string>

#include "common/types.h"
#include "net/message.h"

namespace dex::net {

/// An RPC that could not be completed: every attempt timed out, or the
/// handler replied with an error status. Carries enough context to log and
/// to decide whether the operation is safely retryable at a higher level.
class RpcError : public std::runtime_error {
 public:
  RpcError(MsgType type, NodeId src, NodeId dst, int attempts,
           MsgStatus status, const std::string& reason)
      : std::runtime_error(describe(type, src, dst, attempts, reason)),
        type_(type),
        src_(src),
        dst_(dst),
        attempts_(attempts),
        status_(status) {}

  MsgType type() const { return type_; }
  NodeId src() const { return src_; }
  NodeId dst() const { return dst_; }
  int attempts() const { return attempts_; }
  MsgStatus status() const { return status_; }

 private:
  static std::string describe(MsgType type, NodeId src, NodeId dst,
                              int attempts, const std::string& reason);

  MsgType type_;
  NodeId src_;
  NodeId dst_;
  int attempts_;
  MsgStatus status_;
};

/// The peer (or the caller's own node) has been declared dead. Subclasses
/// RpcError so `catch (const RpcError&)` covers both failure shapes.
class NodeDeadError : public RpcError {
 public:
  explicit NodeDeadError(NodeId dead, MsgType type = MsgType::kInvalid,
                         NodeId src = kInvalidNode, NodeId dst = kInvalidNode)
      : RpcError(type, src, dst, /*attempts=*/0, MsgStatus::kError,
                 "node " + std::to_string(dead) + " is dead"),
        dead_node_(dead) {}

  NodeId dead_node() const { return dead_node_; }

 private:
  NodeId dead_node_;
};

}  // namespace dex::net
