#include "net/fault_injector.h"

#include "common/assert.h"
#include "common/rand.h"
#include "prof/trace.h"

namespace dex::net {

FaultInjector::FaultInjector(int num_nodes) : num_nodes_(num_nodes) {
  DEX_CHECK(num_nodes >= 1 && num_nodes <= 64);
  stream_counts_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(num_nodes) * num_nodes *
      static_cast<std::size_t>(MsgType::kMaxType));
}

void FaultInjector::configure(const FaultPolicy& policy) {
  seed_ = policy.seed;
  rules_.clear();
  for (const FaultRule& rule : policy.rules) {
    rules_.emplace_back().spec = rule;
  }
  for (auto& count : stream_counts_) {
    count.store(0, std::memory_order_relaxed);
  }
  armed_.store(!rules_.empty(), std::memory_order_release);
}

std::size_t FaultInjector::stream_index(MsgType type, NodeId src,
                                        NodeId dst) const {
  return (static_cast<std::size_t>(src) * num_nodes_ +
          static_cast<std::size_t>(dst)) *
             static_cast<std::size_t>(MsgType::kMaxType) +
         static_cast<std::size_t>(type);
}

FaultDecision FaultInjector::decide(MsgType type, NodeId src, NodeId dst) {
  FaultDecision decision;
  const std::uint64_t isolated =
      isolated_mask_.load(std::memory_order_acquire);
  const std::uint64_t out_cut =
      outbound_cut_mask_.load(std::memory_order_acquire);
  const std::uint64_t in_cut =
      inbound_cut_mask_.load(std::memory_order_acquire);
  if ((isolated != 0 &&
       (((isolated >> static_cast<unsigned>(src)) |
         (isolated >> static_cast<unsigned>(dst))) &
        1u)) ||
      ((out_cut >> static_cast<unsigned>(src)) & 1u) ||
      ((in_cut >> static_cast<unsigned>(dst)) & 1u)) {
    // A partitioned endpoint (full cut, or the one-way leg of a gray
    // failure): the wire eats the message, deterministically, regardless
    // of any probabilistic rules.
    decision.drop = true;
    drops_.fetch_add(1, std::memory_order_relaxed);
    prof::ChaosCounters::instance().messages_dropped.fetch_add(
        1, std::memory_order_relaxed);
    return decision;
  }
  if (!armed()) return decision;

  const std::uint64_t n =
      stream_counts_[stream_index(type, src, dst)].fetch_add(
          1, std::memory_order_relaxed);

  for (ArmedRule& rule : rules_) {
    const FaultRule& spec = rule.spec;
    if (spec.type != MsgType::kInvalid && spec.type != type) continue;
    if (spec.src != kInvalidNode && spec.src != src) continue;
    if (spec.dst != kInvalidNode && spec.dst != dst) continue;

    // One uniform draw per traversal, keyed by the stream identity and the
    // message's index within the stream — deterministic under the seed no
    // matter how host threads interleave.
    std::uint64_t key = seed_;
    key ^= 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(src) + 1);
    key ^= 0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(dst) + 1);
    key ^= 0x94d049bb133111ebULL * (static_cast<std::uint64_t>(type) + 1);
    SplitMix64 gen(key + n * 0x2545f4914f6cdd1dULL);
    const double u = static_cast<double>(gen.next() >> 11) * 0x1.0p-53;

    auto& chaos = prof::ChaosCounters::instance();
    if (u < spec.drop_prob) {
      if (rule.used.fetch_add(1, std::memory_order_relaxed) >=
          spec.max_faults) {
        return decision;  // budget exhausted: deliver untouched
      }
      decision.drop = true;
      drops_.fetch_add(1, std::memory_order_relaxed);
      chaos.messages_dropped.fetch_add(1, std::memory_order_relaxed);
    } else if (u < spec.drop_prob + spec.dup_prob) {
      if (rule.used.fetch_add(1, std::memory_order_relaxed) >=
          spec.max_faults) {
        return decision;
      }
      decision.duplicate = true;
      duplicates_.fetch_add(1, std::memory_order_relaxed);
      chaos.messages_duplicated.fetch_add(1, std::memory_order_relaxed);
    } else if (u < spec.drop_prob + spec.dup_prob + spec.delay_prob) {
      if (rule.used.fetch_add(1, std::memory_order_relaxed) >=
          spec.max_faults) {
        return decision;
      }
      decision.delay_ns = spec.delay_ns;
      delays_.fetch_add(1, std::memory_order_relaxed);
      chaos.messages_delayed.fetch_add(1, std::memory_order_relaxed);
    }
    return decision;  // first matching rule wins, faulting or not
  }
  return decision;
}

void FaultInjector::fail_node(NodeId node) {
  DEX_CHECK(node >= 0 && node < num_nodes_);
  dead_mask_.fetch_or(std::uint64_t{1} << static_cast<unsigned>(node),
                      std::memory_order_acq_rel);
}

void FaultInjector::heal_node(NodeId node) {
  DEX_CHECK(node >= 0 && node < num_nodes_);
  dead_mask_.fetch_and(~(std::uint64_t{1} << static_cast<unsigned>(node)),
                       std::memory_order_acq_rel);
}

void FaultInjector::isolate_node(NodeId node) {
  DEX_CHECK(node >= 0 && node < num_nodes_);
  isolated_mask_.fetch_or(std::uint64_t{1} << static_cast<unsigned>(node),
                          std::memory_order_acq_rel);
}

void FaultInjector::rejoin_node(NodeId node) {
  DEX_CHECK(node >= 0 && node < num_nodes_);
  const std::uint64_t clear =
      ~(std::uint64_t{1} << static_cast<unsigned>(node));
  isolated_mask_.fetch_and(clear, std::memory_order_acq_rel);
  outbound_cut_mask_.fetch_and(clear, std::memory_order_acq_rel);
  inbound_cut_mask_.fetch_and(clear, std::memory_order_acq_rel);
}

void FaultInjector::isolate_outbound(NodeId node) {
  DEX_CHECK(node >= 0 && node < num_nodes_);
  outbound_cut_mask_.fetch_or(std::uint64_t{1} << static_cast<unsigned>(node),
                              std::memory_order_acq_rel);
}

void FaultInjector::isolate_inbound(NodeId node) {
  DEX_CHECK(node >= 0 && node < num_nodes_);
  inbound_cut_mask_.fetch_or(std::uint64_t{1} << static_cast<unsigned>(node),
                             std::memory_order_acq_rel);
}

void FaultInjector::reset_stats() {
  drops_.store(0, std::memory_order_relaxed);
  duplicates_.store(0, std::memory_order_relaxed);
  delays_.store(0, std::memory_order_relaxed);
}

}  // namespace dex::net
