// Wire messages of the DeX protocol. In the paper these travel over
// InfiniBand RC connections; here they travel through the simulated fabric,
// but the set of message types and their payloads mirror the kernel
// implementation.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace dex::net {

enum class MsgType : std::uint16_t {
  kInvalid = 0,

  // --- Memory consistency protocol (§III-B) ---
  kPageRequestRead,   // remote -> origin: fetch page + common ownership
  kPageRequestWrite,  // remote -> origin: fetch page + exclusive ownership
  kPageGrant,         // origin -> remote: ownership (+ data unless clean)
  kPageRetry,         // origin -> remote: directory entry busy, back off
  kRevokeOwnership,   // origin -> owner: invalidate/downgrade + write back
  kPageRequestBatch,  // remote -> origin: K contiguous pages, one transaction
  kPageGrantBatch,    // origin -> remote: per-page grants + one bulk transfer
  kForwardRecall,     // origin -> owner: recall + forward grant to requester
  kForwardGrant,      // owner -> requester: direct page push (RDMA sink)
  kHomeMigrate,       // old home -> new home: directory-entry hand-off

  // --- VMA synchronization (§III-D) ---
  kVmaInfoRequest,  // remote -> origin: on-demand VMA lookup
  kVmaInfoReply,
  kVmaUpdate,       // origin -> remotes: eager shrink/downgrade broadcast

  // --- Thread migration (§III-A) ---
  kMigrateThread,      // origin -> remote: execution context
  kMigrateBack,        // remote -> origin: updated context
  kRemoteWorkerSetup,  // origin -> remote: per-process bring-up

  // --- Work delegation (§III-A) ---
  kDelegateFutex,  // remote -> origin: futex_wait / futex_wake
  kDelegateVmaOp,  // remote -> origin: mmap/munmap/mprotect at origin
  kDelegateExit,   // origin -> remotes: process teardown

  // --- Control plane ---
  kAck,  // bare status reply: lets handlers signal failure without a payload

  // --- Self-healing (failure detection + writeback leases) ---
  // Appended after kAck so the numeric values of the seed types — which key
  // the FaultInjector's deterministic per-type streams — never change.
  kHeartbeat,         // node -> origin: unreliable liveness datagram
  kMembershipUpdate,  // origin -> nodes: epoch-stamped membership view
  kLeaseRenew,        // owner -> home: lease renewal + piggybacked writeback

  // --- Bounded frames (DsmConfig::frame_budget_bytes) ---
  kEvictPage,  // pressured node -> home: retire my copy (+ writeback if dirty)

  // --- Origin failover (DsmConfig::origin_failover) ---
  kDirReplicate,     // origin -> deputy: batched directory-mutation records
  kScavengeRequest,  // new origin -> survivor: report your PTE/frame state

  kMaxType,
};

const char* to_string(MsgType type);

/// Handler-level result carried in every reply header. Anything but kOk
/// makes Fabric::call() raise RpcError at the requester instead of letting
/// the caller parse a payload that is not there — the replacement for the
/// old convention of DEX_CHECK-aborting the whole simulation inside the
/// dispatcher.
enum class MsgStatus : std::uint16_t {
  kOk = 0,
  kError = 1,
  kBadPayload = 2,      // payload too small / malformed for the type
  kUnknownProcess = 3,  // no process registered under the leading id
};

const char* to_string(MsgStatus status);

/// True when re-executing the handler for a duplicate delivery converges to
/// the same protocol state (so lost-reply retries may simply re-run it).
/// Non-idempotent messages carry a sequence number and are deduplicated at
/// the receiver:
///   - kRevokeOwnership / kForwardRecall: the first execution writes back
///     (or forwards) and invalidates the owner's copy; a re-run would
///     return an empty writeback.
///   - kMigrateThread / kMigrateBack-adjacent bookkeeping and
///     kDelegateFutex / kDelegateVmaOp: wait/wake and VMA mutations must
///     take effect exactly once.
///   - kLeaseRenew: the renewal extends the lease window and stamps the
///     journal timestamp; a re-run after the entry moved on would journal
///     stale bytes over a newer writeback.
constexpr bool is_idempotent(MsgType type) {
  switch (type) {
    case MsgType::kRevokeOwnership:
    case MsgType::kForwardRecall:
    case MsgType::kMigrateThread:
    case MsgType::kDelegateFutex:
    case MsgType::kDelegateVmaOp:
    case MsgType::kLeaseRenew:
      return false;
    default:
      return true;
  }
}

/// A message: fixed header + POD payload bytes. Payloads are packed/unpacked
/// with the trivially-copyable helpers below, standing in for the kernel's
/// struct-over-the-wire layouts.
struct Message {
  MsgType type = MsgType::kInvalid;
  MsgStatus status = MsgStatus::kOk;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  /// Sequence number for non-idempotent messages; 0 means "no dedup".
  /// Assigned once per logical RPC by the fabric, reused across retries, so
  /// the receiver can suppress duplicate deliveries.
  std::uint64_t seq = 0;
  /// Virtual timestamp at which the message was sent; the receiver's clock
  /// observes (joins) this value.
  VirtNs sent_at = 0;
  /// Off-critical-path reply: the handler marks its reply with this flag
  /// when the requester's logical completion does not wait for it (e.g. the
  /// slim ack of a forwarded grant — the faulting thread resumes when the
  /// kForwardGrant push lands, not when the owner->origin ack does). The
  /// fabric then reports the reply leg's wire cost in `offpath_ns` instead
  /// of advancing the caller's clock; the caller folds it into the page's
  /// release timestamp so the NEXT conflicting transaction observes it.
  std::uint8_t offpath_reply = 0;
  VirtNs offpath_ns = 0;
  std::vector<std::uint8_t> payload;

  std::size_t wire_size() const { return kHeaderBytes + payload.size(); }
  static constexpr std::size_t kHeaderBytes = 32;

  template <typename T>
  void set_payload(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    payload.resize(sizeof(T));
    std::memcpy(payload.data(), &value, sizeof(T));
  }

  /// Exact-size unpack: the wire type and the expected struct must agree.
  /// An oversized payload is as much of a framing bug as a truncated one.
  template <typename T>
  T payload_as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    DEX_CHECK_MSG(payload.size() == sizeof(T), "payload size mismatch");
    T value;
    std::memcpy(&value, payload.data(), sizeof(T));
    return value;
  }

  /// Reads a leading field out of a larger payload (the dispatcher peeks at
  /// the 64-bit process id every DeX payload starts with).
  template <typename T>
  T payload_prefix_as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    DEX_CHECK_MSG(payload.size() >= sizeof(T), "payload too small");
    T value;
    std::memcpy(&value, payload.data(), sizeof(T));
    return value;
  }

  void set_bytes(const void* data, std::size_t len) {
    payload.resize(len);
    if (len != 0) std::memcpy(payload.data(), data, len);
  }

  /// A bare failure reply (the kAck/error-status convention).
  static Message error_reply(MsgStatus error) {
    Message reply;
    reply.type = MsgType::kAck;
    reply.status = error;
    return reply;
  }
};

// ---- Payload structs (trivially copyable, fixed layout) ----

struct PageRequestPayload {
  std::uint64_t process_id;
  GAddr page;
  std::uint64_t known_version;  // version of the copy the requester holds
  TaskId task;
  /// After too many busy-entry retries the requester escalates to a
  /// blocking acquire of the directory entry (forward progress).
  std::uint8_t blocking;
};

enum class GrantKind : std::uint8_t {
  kDataAndOwnership = 0,  // page data follows via the RDMA sink
  kOwnershipOnly = 1,     // requester's copy is up to date (§III-B)
  kRetry = 2,             // directory entry busy; back off and refault
  kWrongHome = 3,         // this node does not home the page; chase `home`
};

struct PageGrantPayload {
  GrantKind kind;
  std::uint8_t padding[7];
  std::uint64_t version;
  VirtNs last_writer_ts;  // happens-before edge from the previous writer
  /// Where the page's directory entry lives as of this reply, plus the
  /// entry's home epoch. On a grant this confirms the serving home; on a
  /// kWrongHome redirect it is the replier's best guess at the real home
  /// (authoritative when the replier is the origin). Requesters feed it
  /// into their HomeHintCache.
  NodeId home;
  std::uint8_t pad2[4];
  std::uint64_t home_epoch;
};

/// Upper bound on pages per kPageRequestBatch transaction. Keeps the
/// payload fixed-layout (trivially copyable) and bounds the time the
/// origin spends holding per-entry locks in one handler pass.
inline constexpr int kMaxBatchPages = 16;

/// K contiguous pages in one transaction: the primary (faulting) page at
/// `start_page` plus `count - 1` prefetch candidates behind it. Only read
/// faults batch — a write fault never widens (§III-B exclusivity).
struct PageBatchRequestPayload {
  std::uint64_t process_id;
  GAddr start_page;
  TaskId task;
  std::uint32_t count;   // total pages requested, 1..kMaxBatchPages
  std::uint8_t blocking; // escalation applies to the primary page only
  std::uint8_t pad[3];
  std::uint64_t known_versions[kMaxBatchPages];
};

/// Per-page grant decisions for a batch. Bit i of `granted_mask` set means
/// page start_page + i*kPageSize was granted kShared (data installed
/// origin-side or version-matched); holes are pages the origin skipped
/// (busy entry, exclusive elsewhere, out of VMA). The primary page's
/// outcome travels in `kind` with the usual GrantKind semantics.
struct PageBatchGrantPayload {
  GrantKind kind;  // primary page outcome (kRetry => nothing granted)
  std::uint8_t padding[3];
  std::uint32_t granted_mask;
  std::uint64_t versions[kMaxBatchPages];
  VirtNs last_writer_ts;
  /// Home of the primary page as of this reply (see PageGrantPayload).
  /// Extra pages homed elsewhere are simply skipped by the serving node
  /// (holes in granted_mask), so one home per batch suffices.
  NodeId home;
  std::uint8_t pad2[4];
  std::uint64_t home_epoch;
};

/// kForwardRecall: like RevokePayload, but names the requester so the owner
/// can ship the page straight to it (one bulk transfer instead of the
/// owner->origin->requester double crossing). `grant_version` is the version
/// the origin stamps on the forwarded copy; the entry stays locked at the
/// origin for the whole transaction, so the number is final by construction.
struct ForwardRecallPayload {
  std::uint64_t process_id;
  GAddr page;
  std::uint64_t grant_version;
  NodeId requester;
  std::uint8_t downgrade_to_shared;  // 0: invalidate owner, 1: keep read copy
  std::uint8_t pad[3];
};

/// Leading struct of the kForwardRecall reply. Page data follows iff
/// `wrote_back` (shared downgrades refresh the origin frame; an exclusive
/// hand-off sends this slim data-free ack and nothing else on-path).
struct ForwardRecallAck {
  std::uint8_t forwarded;   // 1: kForwardGrant push reached the requester
  std::uint8_t wrote_back;  // 1: kPageSize of page data follows this struct
  std::uint8_t pad[6];
};

/// kHomeMigrate: the current home offers the directory entry to the node
/// that has been dominating the page's faults. The entry's mutex stays held
/// at the old home for the whole hand-off, so the entry state named here is
/// final; the new home only has to accept (charge the install cost and seed
/// its own hint). If the RPC fails the old home simply keeps the entry —
/// there is no state at the new home to roll back, hence no split brain.
struct HomeMigratePayload {
  std::uint64_t process_id;
  GAddr page;
  NodeId old_home;
  NodeId new_home;
  std::uint64_t home_epoch;  // epoch the entry will carry after the move
  std::uint64_t version;     // entry version at hand-off (diagnostics)
};

struct HomeMigrateAckPayload {
  std::uint8_t accepted;
};

struct RevokePayload {
  std::uint64_t process_id;
  GAddr page;
  std::uint8_t downgrade_to_shared;  // 0: invalidate, 1: keep read copy
};

struct VmaRequestPayload {
  std::uint64_t process_id;
  GAddr addr;
};

struct VmaUpdatePayload {
  std::uint64_t process_id;
  GAddr start;
  GAddr end;
  std::uint8_t prot;
  std::uint8_t op;  // 0 = remove (munmap), 1 = reprotect
};

struct FutexPayload {
  std::uint64_t process_id;
  GAddr addr;
  std::uint32_t op;       // 0 = wait, 1 = wake
  std::uint32_t pad;
  std::uint64_t val;      // expected value / wake count
  TaskId task;
};

struct FutexReplyPayload {
  std::int32_t result;  // woken count for wake; 0/-EAGAIN style for wait
};

/// Execution context shipped on migration: the essentials of pt_regs plus
/// task metadata. The register file is opaque payload from the fabric's
/// point of view; its size drives the wire cost.
struct MigratePayload {
  std::uint64_t process_id;
  TaskId task;
  std::int32_t first_for_thread;
  std::uint8_t regs[19 * 8];   // rax..r15, rip, rflags, fs_base
  std::uint8_t fpstate[64];    // xsave header stand-in
};

struct MigrateAckPayload {
  VirtNs remote_worker_ns;  // per-process bring-up charged at the remote
  VirtNs thread_setup_ns;   // remote thread fork + context load
};

struct VmaOpPayload {
  std::uint64_t process_id;
  std::uint32_t op;  // 0 = mmap, 1 = munmap, 2 = mprotect
  std::uint8_t prot;
  std::uint8_t pad[3];
  GAddr addr;
  std::uint64_t length;
  char tag[32];
};

struct VmaOpReplyPayload {
  GAddr result;      // mmap: address
  std::uint8_t ok;   // munmap/mprotect: success
};

/// kHeartbeat: a single-attempt liveness datagram (Fabric::post_datagram —
/// no retransmit; a drop IS the signal the accrual detector scores).
struct HeartbeatPayload {
  NodeId node;            // sender, for when the datagram is forwarded
  std::uint8_t pad[4];
  std::uint64_t sequence; // per-sender heartbeat counter
};

/// kMembershipUpdate: the origin's epoch-stamped membership view. Receivers
/// adopt the view iff `epoch` is newer than what they hold, so a delayed or
/// duplicated broadcast can never roll a node's view backwards (no split
/// brain: every view at epoch E is byte-identical).
struct MembershipUpdatePayload {
  std::uint64_t epoch;
  std::uint64_t dead_mask;  // bit n set = node n is declared dead
};

/// kLeaseRenew: the exclusive owner of `page` extends its writeback lease
/// and piggybacks the current page contents (kPageSize bytes follow this
/// struct) so the home's journaled frame is at most one lease window stale.
struct LeaseRenewPayload {
  std::uint64_t process_id;
  GAddr page;
  std::uint64_t version;  // the version the owner's exclusive grant carries
  NodeId owner;
  std::uint8_t pad[4];
};

/// Slim kLeaseRenew reply. `renewed == 0` means the owner's grant is stale
/// (the page was recalled or migrated concurrently); the owner just drops
/// its lease state and refaults on the next access.
struct LeaseRenewAckPayload {
  std::uint8_t renewed;
};

/// kEvictPage: a node under frame-budget pressure asks the page's home to
/// retire its local copy. For a shared replica the home just drops the
/// evictor from the sharer set (the copy re-faults from the home frame
/// later); for an exclusive copy, kPageSize bytes of page image follow this
/// struct and the home installs them as the authoritative frame — the same
/// writeback the lease journal performs — before releasing the grant. The
/// home does all the work (including fencing the evictor's PTE) under the
/// directory entry's lock, so eviction serializes against recalls,
/// forwarded grants and batch installs like any other transaction.
/// Idempotent: a duplicate delivery re-validates owner/version and
/// fails closed (kStale).
struct EvictPagePayload {
  std::uint64_t process_id;
  GAddr page;
  std::uint64_t version;   // version of the copy being retired
  NodeId node;             // the evicting node
  std::uint8_t exclusive;  // 1: page image follows this struct
  std::uint8_t pad[3];
};

enum class EvictResult : std::uint8_t {
  kEvicted = 0,    // copy retired; the evictor's frame was freed
  kStale = 1,      // the copy lost a race (recalled/re-granted); no-op
  kBusy = 2,       // entry locked by a transaction; try another page
  kWrongHome = 3,  // this node does not home the page; chase `home`
};

struct EvictPageAckPayload {
  std::uint8_t result;  // EvictResult
  std::uint8_t pad[3];
  NodeId home;  // redirect target when result == kWrongHome
};

/// One replicated directory mutation (kDirReplicate). The origin streams
/// these to its deputy so a promoted deputy can serve directory lookups
/// without the dead origin's radix tree.
enum class DirReplicateOp : std::uint8_t {
  kEntry = 0,    // owner/sharer/version/home snapshot for `page`
  kErase = 1,    // munmap dropped the entry; forget any replica (staleness
                 // fence: a re-mmapped generation restarts versions)
  kJournal = 2,  // lease-journal writeback: kPageSize of image data rides
                 // in the message body after all records
  kVma = 3,      // mmap at the origin: page = start, version = length
};

struct DirReplicateRecord {
  GAddr page;
  std::uint64_t version;
  std::uint64_t sharers;     // NodeSet::raw()
  std::uint64_t home_epoch;
  NodeId owner;              // exclusive owner (kInvalidNode = none)
  NodeId home;               // serving home (kInvalidNode = the origin)
  DirReplicateOp op;
  std::uint8_t prot;         // kVma only
  std::uint8_t pad[6];
};

inline constexpr int kMaxDirReplicateRecords = 16;

/// Batched replication: `count` records follow the header fields inside the
/// fixed struct; every kJournal record contributes kPageSize image bytes
/// appended after the struct, in record order.
struct DirReplicatePayload {
  std::uint64_t process_id;
  NodeId origin;  // replicating origin; the deputy ignores stale senders
  std::uint32_t count;
  DirReplicateRecord records[kMaxDirReplicateRecords];
};

/// kScavengeRequest: the promoted deputy asks a survivor to re-register the
/// origin-homed pages it holds. Cursor-paged so one reply stays bounded.
struct ScavengeRequestPayload {
  std::uint64_t process_id;
  NodeId dead;  // the dead origin whose pages we are rebuilding
  std::uint8_t pad[4];
  GAddr cursor;  // report pages strictly above this address
};

struct ScavengeRecord {
  GAddr page;
  std::uint64_t version;
  std::uint8_t state;  // mem::PageState of the survivor's copy
  std::uint8_t pad[7];
};

inline constexpr int kMaxScavengeRecords = 32;

struct ScavengeReplyPayload {
  std::uint32_t count;
  std::uint8_t done;  // 1: no pages above next_cursor remain
  std::uint8_t pad[3];
  GAddr next_cursor;
  ScavengeRecord records[kMaxScavengeRecords];
};

}  // namespace dex::net
