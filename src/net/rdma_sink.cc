#include "net/rdma_sink.h"

#include <cstring>

#include "common/time_gate.h"

namespace dex::net {

RdmaSink::RdmaSink(std::size_t num_chunks, std::size_t chunk_size)
    : num_chunks_(num_chunks),
      chunk_size_(chunk_size),
      storage_(std::make_unique<std::uint8_t[]>(num_chunks * chunk_size)) {
  DEX_CHECK(num_chunks > 0 && chunk_size > 0);
  free_chunks_.reserve(num_chunks);
  for (std::size_t i = 0; i < num_chunks; ++i) {
    free_chunks_.push_back(static_cast<int>(i));
  }
}

SinkBuffer RdmaSink::reserve(bool* stalled) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stalled != nullptr) *stalled = free_chunks_.empty();
  if (free_chunks_.empty()) {
    stalls_.fetch_add(1, std::memory_order_relaxed);
    ScopedGateBlock gate_block("rdma_sink");
    cv_.wait(lock, [&] { return !free_chunks_.empty(); });
  }
  const int chunk = free_chunks_.back();
  free_chunks_.pop_back();
  reserved_.fetch_add(1, std::memory_order_relaxed);
  return SinkBuffer(this, chunk,
                    storage_.get() + static_cast<std::size_t>(chunk) *
                                         chunk_size_,
                    chunk_size_);
}

std::size_t RdmaSink::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_chunks_.size();
}

void RdmaSink::release_chunk(int chunk) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    free_chunks_.push_back(chunk);
  }
  cv_.notify_one();
}

std::size_t SinkBuffer::copy_out_and_release(void* dst, std::size_t len) {
  DEX_CHECK(valid());
  const std::size_t n = len < size_ ? len : size_;
  std::memcpy(dst, data_, n);
  release();
  return n;
}

void SinkBuffer::release() {
  if (sink_ != nullptr) {
    sink_->release_chunk(chunk_);
    sink_ = nullptr;
  }
}

}  // namespace dex::net
