// Shared graph substrate for the Polymer applications (BFS, BP).
//
// The paper synthesizes its graph with the Ligra R-MAT generator using the
// Graph500 parameters (a=0.57, b=0.19); we do the same (common/rmat.h) and
// place the CSR in distributed memory: offsets and targets are read-only
// after construction, so they replicate on demand across nodes.
#pragma once

#include "apps/app.h"
#include "common/rmat.h"

namespace dex::apps {

struct DexGraph {
  std::uint32_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  GArray<std::uint64_t> offsets;  // V + 1
  GArray<std::uint32_t> targets;  // E

  static DexGraph build(core::Process& process, const Csr& csr) {
    DexGraph g;
    g.num_vertices = csr.num_vertices;
    g.num_edges = csr.num_edges();
    g.offsets = GArray<std::uint64_t>(process, csr.offsets.size(),
                                      "graph:offsets");
    g.offsets.write_block(0, csr.offsets.size(), csr.offsets.data());
    g.targets = GArray<std::uint32_t>(process, csr.targets.size(),
                                      "graph:targets");
    g.targets.write_block(0, csr.targets.size(), csr.targets.data());
    return g;
  }
};

/// Deterministic R-MAT graph at the paper's Graph500 parameters, sized by
/// `scale_factor` (1.0 = the library default).
inline Csr make_polymer_graph(double scale_factor, std::uint64_t seed,
                              std::uint64_t edge_factor = 8) {
  RmatParams params;
  params.scale = 12;
  double budget = scale_factor * 16.0;  // vertices = budget * 2^12
  while (budget >= 2.0 && params.scale < 24) {
    ++params.scale;
    budget /= 2.0;
  }
  params.edge_factor = edge_factor;
  params.seed = seed;
  const auto edges = generate_rmat(params);
  return build_csr(std::uint32_t{1} << params.scale, edges,
                   /*symmetrize=*/true);
}

}  // namespace dex::apps
