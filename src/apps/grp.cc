// GRP — string match (§V, "Simple" category).
//
// Looks up key strings in a text and counts their occurrences; the input is
// divided into per-thread partitions. The paper uses 8 GB of Wikipedia text
// and four 7-10 byte keys; we generate deterministic synthetic text with
// planted keys so the expected counts are exact.
//
// Initial port (2 LoC in the paper): thread arguments live packed on a
// single page, and every match increments a shared global counter — both
// §IV false-sharing patterns.
// Optimized (§V-C): page-aligned argument blocks, match counts staged in
// thread-local storage and flushed once per thread.
#include <cstring>
#include <vector>

#include "apps/app.h"
#include "common/textgen.h"

namespace dex::apps {
namespace {

constexpr double kScanNsPerByte = 8.0;  // naive 4-key scan throughput
constexpr std::size_t kChunkBytes = 64 * 1024;

struct GrpArgs {
  std::uint64_t start;
  std::uint64_t length;
};

class GrpApp final : public App {
 public:
  std::string name() const override { return "GRP"; }
  std::string description() const override {
    return "string match over partitioned text";
  }
  LocInfo loc() const override {
    return LocInfo{"Pthread", 0, /*paper_initial=*/2, /*paper_optimized=*/26,
                   /*ours_initial=*/2, /*ours_optimized=*/24};
  }
  double stream_intensity(const RunConfig&) const override { return 0.30; }

  RunResult run(core::Cluster& cluster, const RunConfig& config) override {
    const auto bytes = static_cast<std::size_t>(
        config.scale * 4.0 * 1024 * 1024);
    TextGenParams params;
    params.bytes = bytes;
    params.seed = config.seed;
    const GeneratedText text = generate_text(params);
    const int nkeys = static_cast<int>(params.keys.size());
    std::size_t max_key = 0;
    for (const auto& k : params.keys) max_key = std::max(max_key, k.size());

    ProcessOptions popt = process_options(config);
    auto process = cluster.create_process(popt);
    if (config.trace_faults) process->trace().enable();

    // ---- setup at the origin (untimed, as in the paper) ----
    GArray<char> gtext(*process, bytes, "grp:text");
    gtext.write_block(0, bytes, text.data.data());

    // Global match counters. In both variants they sit packed on one heap
    // page next to each other (they are globals in the original program);
    // the optimized variant just stops hammering them.
    std::vector<GCounter> counters;
    counters.reserve(static_cast<std::size_t>(nkeys));
    for (int k = 0; k < nkeys; ++k) {
      counters.emplace_back(*process, "grp:counts");
    }

    core::TeamOptions topt;
    topt.nodes = config.nodes;
    topt.threads_per_node = config.threads_per_node;
    topt.migrate = config.migrate;
    const int nthreads = topt.total_threads();

    ArgsBlock args(*process, nthreads, sizeof(GrpArgs), config.variant,
                   "grp:args");
    {
      const std::uint64_t chunk =
          (bytes + static_cast<std::size_t>(nthreads) - 1) /
          static_cast<std::size_t>(nthreads);
      for (int tid = 0; tid < nthreads; ++tid) {
        GrpArgs a;
        a.start = std::min<std::uint64_t>(
            chunk * static_cast<std::uint64_t>(tid), bytes);
        a.length = std::min<std::uint64_t>(chunk, bytes - a.start);
        args.set(tid, a);
      }
    }

    // ---- measured parallel phase ----
    ScopedPacing pace_scope(config.pacing);
    const VirtNs t0 = dex::now();
    run_team(*process, topt, [&](int tid, int) {
      ScopedSite site("grp:scan_loop");
      const GrpArgs a = args.get<GrpArgs>(tid);
      std::vector<std::uint64_t> local(static_cast<std::size_t>(nkeys), 0);
      std::vector<char> buffer(kChunkBytes + max_key);

      std::uint64_t pos = a.start;
      const std::uint64_t limit = a.start + a.length;
      // Scan in small windows and charge the scan cost as the cursor
      // moves, the way the real code's time is spent: matches (and their
      // shared-counter updates in the Initial port) are then spread over
      // the scan instead of bursting at chunk ends.
      constexpr std::size_t kWindow = 2048;
      while (pos < limit) {
        const std::size_t want =
            std::min<std::uint64_t>(kChunkBytes, limit - pos);
        // Read past the chunk end so matches straddling the boundary are
        // seen; only matches *starting* inside [pos, pos+want) count.
        const std::size_t have = std::min<std::uint64_t>(
            want + max_key - 1, bytes - pos);
        gtext.read_block(pos, have, buffer.data());

        for (std::size_t wbase = 0; wbase < want; wbase += kWindow) {
          const std::size_t wlen = std::min(kWindow, want - wbase);
          dex::compute(static_cast<VirtNs>(kScanNsPerByte *
                                           static_cast<double>(wlen)));
          for (int k = 0; k < nkeys; ++k) {
            const std::string& key =
                params.keys[static_cast<std::size_t>(k)];
            if (have < key.size()) continue;
            const std::size_t scan_end =
                std::min(have - key.size() + 1, wbase + wlen);
            for (std::size_t i = wbase; i < scan_end; ++i) {
              if (buffer[i] == key[0] &&
                  std::memcmp(buffer.data() + i, key.data(), key.size()) ==
                      0) {
                if (config.variant == Variant::kInitial) {
                  // Original behaviour: bump the shared global counter on
                  // every match (§V-C: "GRP updates a global variable when
                  // it finds an occurrence of a key").
                  counters[static_cast<std::size_t>(k)].fetch_add(1);
                } else {
                  ++local[static_cast<std::size_t>(k)];
                }
              }
            }
          }
        }
        pos += want;
      }
      if (config.variant == Variant::kOptimized) {
        ScopedSite flush_site("grp:flush_counts");
        for (int k = 0; k < nkeys; ++k) {
          if (local[static_cast<std::size_t>(k)] != 0) {
            counters[static_cast<std::size_t>(k)].fetch_add(
                local[static_cast<std::size_t>(k)]);
          }
        }
      }
    });
    const VirtNs elapsed = dex::now() - t0;

    // ---- verification against the generator's exact counts ----
    RunResult result;
    result.elapsed_ns = elapsed;
    result.verified = true;
    for (int k = 0; k < nkeys; ++k) {
      const std::uint64_t got = counters[static_cast<std::size_t>(k)].load();
      result.checksum = result.checksum * 1000003 + got;
      if (got != text.key_counts[static_cast<std::size_t>(k)]) {
        result.verified = false;
      }
    }
    snapshot_stats(*process, result);
    return result;
  }
};

}  // namespace

App* grp_app() {
  static GrpApp app;
  return &app;
}

}  // namespace dex::apps
