// EP — NPB "Embarrassingly Parallel" kernel (§V, NPB category).
//
// Generates pairs of uniform deviates with the NPB randlc recurrence,
// accepts pairs inside the unit circle, forms Gaussian deviates
// (Marsaglia), counts them per concentric annulus q[0..9] and sums them.
// Each thread jumps its RNG to its batch offsets, so the result is
// independent of the partition — the reference is the same stream run
// sequentially.
//
// EP has one OpenMP parallel region; the paper converts it with 2 LoC and
// it scales immediately. The Initial port still pays for the paper's NPB
// finding: read-only loop parameters co-located on a page with a
// frequently written global (a progress counter), so parameter re-reads
// keep getting invalidated. The Optimized port isolates the read-only
// parameters on their own page and drops the shared progress updates.
#include <cmath>
#include <vector>

#include "apps/app.h"
#include "common/rand.h"
#include "core/parallel.h"

namespace dex::apps {
namespace {

constexpr int kAnnuli = 10;
constexpr int kBatches = 256;
constexpr double kPairNs = 60.0;  // randlc + log/sqrt per generated pair

struct EpParams {
  std::uint64_t total_pairs;
  std::uint64_t pairs_per_batch;
  double seed;
};

struct EpAccum {
  std::uint64_t q[kAnnuli] = {};
  std::uint64_t sx_fix = 0;  // fixed-point sums (exact, order-independent)
  std::uint64_t sy_fix = 0;
};

constexpr double kFix = 1048576.0;
std::uint64_t to_fix(double v) {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(v * kFix));
}

/// Generates one batch; accumulates into `acc`.
void run_batch(const EpParams& params, std::uint64_t batch, EpAccum& acc) {
  NpbRand rng(params.seed);
  rng.skip(2 * params.pairs_per_batch * batch);
  for (std::uint64_t i = 0; i < params.pairs_per_batch; ++i) {
    const double x = 2.0 * rng.next() - 1.0;
    const double y = 2.0 * rng.next() - 1.0;
    const double t = x * x + y * y;
    if (t > 1.0) continue;
    const double f = std::sqrt(-2.0 * std::log(t) / t);
    const double gx = x * f;
    const double gy = y * f;
    const double m = std::max(std::fabs(gx), std::fabs(gy));
    const int annulus = std::min(kAnnuli - 1, static_cast<int>(m));
    ++acc.q[annulus];
    acc.sx_fix += to_fix(gx);
    acc.sy_fix += to_fix(gy);
  }
}

std::uint64_t checksum_of(const EpAccum& acc) {
  std::uint64_t checksum = acc.sx_fix * 31 + acc.sy_fix;
  for (const std::uint64_t q : acc.q) checksum = checksum * 1000003 + q;
  return checksum;
}

class EpApp final : public App {
 public:
  std::string name() const override { return "EP"; }
  std::string description() const override {
    return "NPB EP: Gaussian deviates by acceptance-rejection";
  }
  LocInfo loc() const override {
    return LocInfo{"OpenMP (1)", 1, /*paper_initial=*/2,
                   /*paper_optimized=*/10, /*ours_initial=*/2,
                   /*ours_optimized=*/8};
  }
  double stream_intensity(const RunConfig&) const override { return 0.05; }

  RunResult run(core::Cluster& cluster, const RunConfig& config) override {
    EpParams params;
    params.pairs_per_batch = std::max<std::uint64_t>(
        16, static_cast<std::uint64_t>(config.scale * 262144.0) / kBatches);
    params.total_pairs = params.pairs_per_batch * kBatches;
    params.seed = 271828183.0;

    ProcessOptions popt = process_options(config);
    auto process = cluster.create_process(popt);
    if (config.trace_faults) process->trace().enable();

    // Parameter placement is the whole Initial-vs-Optimized story here.
    // Initial: params share a heap page with the progress counter below.
    // Optimized: params isolated on a read-only-in-practice page.
    GVar<EpParams> gparams(*process, "ep:params",
                           config.variant == Variant::kOptimized);
    gparams.store(params);
    GCounter progress(*process, "ep:progress");

    GArray<std::uint64_t> gq(*process, kAnnuli, "ep:q");
    GCounter gsx(*process, "ep:sx");
    GCounter gsy(*process, "ep:sy");

    core::TeamOptions topt;
    topt.nodes = config.nodes;
    topt.threads_per_node = config.threads_per_node;
    topt.migrate = config.migrate;
    core::Team team(*process, topt);
    const int nthreads = topt.total_threads();

    ScopedPacing pace_scope(config.pacing);
    const VirtNs t0 = dex::now();
    team.run_region([&](int tid, int) {
      EpAccum local;
      for (int batch = tid; batch < kBatches; batch += nthreads) {
        // NPB-style: re-read the loop parameters per batch (the original
        // reads its global problem constants inside the loop).
        EpParams p;
        {
          ScopedSite site("ep:read_params");
          p = gparams.load();
        }
        if (config.variant == Variant::kInitial) {
          // Original: tick a shared progress counter — which lives on the
          // same page as the parameters, invalidating every reader.
          ScopedSite site("ep:progress_tick");
          progress.fetch_add(1);
        }
        run_batch(p, static_cast<std::uint64_t>(batch), local);
        dex::compute(static_cast<VirtNs>(
            kPairNs * static_cast<double>(p.pairs_per_batch)));
      }
      // Both variants merge once at the end (as NPB EP does).
      ScopedSite site("ep:merge");
      for (int a = 0; a < kAnnuli; ++a) {
        if (local.q[a] != 0) {
          process->atomic_fetch_add(gq.addr(static_cast<std::size_t>(a)),
                                    local.q[a]);
        }
      }
      gsx.fetch_add(local.sx_fix);
      gsy.fetch_add(local.sy_fix);
    });
    const VirtNs elapsed = dex::now() - t0;

    // ---- verification: same stream, sequential ----
    EpAccum reference;
    for (std::uint64_t b = 0; b < kBatches; ++b) {
      run_batch(params, b, reference);
    }
    EpAccum measured;
    for (int a = 0; a < kAnnuli; ++a) {
      measured.q[a] = process->atomic_load(gq.addr(
          static_cast<std::size_t>(a)));
    }
    measured.sx_fix = gsx.load();
    measured.sy_fix = gsy.load();

    RunResult result;
    result.elapsed_ns = elapsed;
    result.checksum = checksum_of(measured);
    result.verified = result.checksum == checksum_of(reference);
    snapshot_stats(*process, result);
    return result;
  }
};

}  // namespace

App* ep_app() {
  static EpApp app;
  return &app;
}

}  // namespace dex::apps
