// BT — NPB Block-Tridiagonal pseudo-application (reduced form).
//
// The real BT iterates: compute the right-hand side with 3-D stencils, then
// perform line solves along x, y and z, then add the correction to the
// solution. We keep exactly that structure — 15 OpenMP parallel regions per
// iteration (the count the paper converts, Table I) with BT's
// characteristic access patterns:
//   - rhs stencils and x/y line solves parallelize over k-slabs,
//   - the z line solve parallelizes over j (the recurrence runs along k),
//     so its partition *differs* from the others and data reshuffles
//     between nodes every iteration — the reason BT stresses the DSM.
// The per-cell arithmetic is a simplified (scalar, 5-component) stand-in
// for the 5x5 block operations; its virtual cost models the real flop
// count. Both variants and the sequential reference run the same code, so
// results are bit-identical and verification is exact.
//
// Initial port: the region parameters live on the master's "stack page"
// which the master also scribbles on before every region (the
// pthread_create/OpenMP shared-variable pattern of §IV-B), and the k-slab
// partition boundaries are not page aligned, so neighboring threads on
// different nodes write-share boundary pages.
// Optimized: parameters are passed in page-aligned per-thread args, planes
// are padded to page boundaries so slab boundaries never share a page.
#include <cstring>
#include <vector>

#include "apps/app.h"
#include "core/parallel.h"

namespace dex::apps {
namespace {

constexpr int kComponents = 5;
constexpr double kCellNsPerRegion = 150.0;  // ~5x5 block ops per cell
constexpr int kIterations = 3;

/// Row = all i cells of one (k, j) line: S * 5 doubles, contiguous.
template <typename Grid>
void read_row(const Grid& g, int k, int j, double* out) {
  g.read(g.row_index(k, j), g.row_elems(), out);
}
template <typename Grid>
void write_row(Grid& g, int k, int j, const double* in) {
  g.write(g.row_index(k, j), g.row_elems(), in);
}

struct GridShape {
  int S = 0;                        // cells per dimension
  std::size_t plane_stride = 0;     // elements between k-planes

  std::size_t row_elems() const {
    return static_cast<std::size_t>(S) * kComponents;
  }
  std::size_t row_index(int k, int j) const {
    return static_cast<std::size_t>(k) * plane_stride +
           static_cast<std::size_t>(j) * row_elems();
  }
  std::size_t total_elems() const {
    return static_cast<std::size_t>(S) * plane_stride;
  }
};

/// Host-side grid for the sequential reference.
struct HostGrid : GridShape {
  std::vector<double> v;
  void read(std::size_t at, std::size_t n, double* out) const {
    std::memcpy(out, v.data() + at, n * sizeof(double));
  }
  void write(std::size_t at, std::size_t n, const double* in) {
    std::memcpy(v.data() + at, in, n * sizeof(double));
  }
};

/// Distributed grid. Writes carry the region's per-cell flop cost so
/// compute time accrues as the sweep progresses (each region writes every
/// owned row exactly once), keeping cross-thread interleavings — and the
/// boundary false sharing they produce — spread over the region.
struct DexGrid : GridShape {
  GArray<double>* arr = nullptr;
  void read(std::size_t at, std::size_t n, double* out) const {
    arr->read_block(at, n, out);
  }
  void write(std::size_t at, std::size_t n, const double* in) {
    dex::compute(static_cast<VirtNs>(
        kCellNsPerRegion * static_cast<double>(n) / kComponents));
    arr->write_block(at, n, in);
  }
};

// ---------------------------------------------------------------------------
// The 15 regions. Each is parameterized by the slab/stripe [lo, hi) the
// calling thread owns; `u` and `rhs` are grids of the same shape.
// ---------------------------------------------------------------------------

/// Region 1 (txinvr): rhs = u * 0.95, k-partition.
template <typename G>
void region_txinvr(const G& u, G& rhs, int klo, int khi) {
  std::vector<double> row(u.row_elems());
  for (int k = klo; k < khi; ++k) {
    for (int j = 0; j < u.S; ++j) {
      read_row(u, k, j, row.data());
      for (auto& x : row) x *= 0.95;
      write_row(rhs, k, j, row.data());
    }
  }
}

/// Regions 2-4 (rhs stencils along k, j, i), k-partition. The k stencil
/// reads neighbor planes — the halo exchange.
template <typename G>
void region_rhs_k(const G& u, G& rhs, int klo, int khi) {
  std::vector<double> row(u.row_elems()), lo(u.row_elems()),
      hi(u.row_elems()), r(u.row_elems());
  for (int k = klo; k < khi; ++k) {
    const int km = k > 0 ? k - 1 : k;
    const int kp = k < u.S - 1 ? k + 1 : k;
    for (int j = 0; j < u.S; ++j) {
      read_row(u, k, j, row.data());
      read_row(u, km, j, lo.data());
      read_row(u, kp, j, hi.data());
      read_row(rhs, k, j, r.data());
      for (std::size_t i = 0; i < row.size(); ++i) {
        r[i] += 0.1 * (lo[i] + hi[i] - 2.0 * row[i]);
      }
      write_row(rhs, k, j, r.data());
    }
  }
}

template <typename G>
void region_rhs_j(const G& u, G& rhs, int klo, int khi) {
  std::vector<double> row(u.row_elems()), lo(u.row_elems()),
      hi(u.row_elems()), r(u.row_elems());
  for (int k = klo; k < khi; ++k) {
    for (int j = 0; j < u.S; ++j) {
      const int jm = j > 0 ? j - 1 : j;
      const int jp = j < u.S - 1 ? j + 1 : j;
      read_row(u, k, j, row.data());
      read_row(u, k, jm, lo.data());
      read_row(u, k, jp, hi.data());
      read_row(rhs, k, j, r.data());
      for (std::size_t i = 0; i < row.size(); ++i) {
        r[i] += 0.1 * (lo[i] + hi[i] - 2.0 * row[i]);
      }
      write_row(rhs, k, j, r.data());
    }
  }
}

template <typename G>
void region_rhs_i(const G& u, G& rhs, int klo, int khi) {
  std::vector<double> row(u.row_elems()), r(u.row_elems());
  for (int k = klo; k < khi; ++k) {
    for (int j = 0; j < u.S; ++j) {
      read_row(u, k, j, row.data());
      read_row(rhs, k, j, r.data());
      for (int i = 0; i < u.S; ++i) {
        const int im = i > 0 ? i - 1 : i;
        const int ip = i < u.S - 1 ? i + 1 : i;
        for (int m = 0; m < kComponents; ++m) {
          const std::size_t c =
              static_cast<std::size_t>(i) * kComponents +
              static_cast<std::size_t>(m);
          const std::size_t cm =
              static_cast<std::size_t>(im) * kComponents +
              static_cast<std::size_t>(m);
          const std::size_t cp =
              static_cast<std::size_t>(ip) * kComponents +
              static_cast<std::size_t>(m);
          r[c] += 0.1 * (row[cm] + row[cp] - 2.0 * row[c]);
        }
      }
      write_row(rhs, k, j, r.data());
    }
  }
}

/// x-solve (3 sub-regions): forward/backward recurrence along i, then fold
/// into u. k-partition; fully slab-local.
template <typename G>
void region_x_forward(G& rhs, int klo, int khi) {
  std::vector<double> r(rhs.row_elems());
  for (int k = klo; k < khi; ++k) {
    for (int j = 0; j < rhs.S; ++j) {
      read_row(rhs, k, j, r.data());
      for (int i = 1; i < rhs.S; ++i) {
        for (int m = 0; m < kComponents; ++m) {
          const std::size_t c =
              static_cast<std::size_t>(i) * kComponents +
              static_cast<std::size_t>(m);
          r[c] += 0.25 * r[c - kComponents];
        }
      }
      write_row(rhs, k, j, r.data());
    }
  }
}

template <typename G>
void region_x_backward(G& rhs, int klo, int khi) {
  std::vector<double> r(rhs.row_elems());
  for (int k = klo; k < khi; ++k) {
    for (int j = 0; j < rhs.S; ++j) {
      read_row(rhs, k, j, r.data());
      for (int i = rhs.S - 2; i >= 0; --i) {
        for (int m = 0; m < kComponents; ++m) {
          const std::size_t c =
              static_cast<std::size_t>(i) * kComponents +
              static_cast<std::size_t>(m);
          r[c] += 0.25 * r[c + kComponents];
        }
      }
      write_row(rhs, k, j, r.data());
    }
  }
}

template <typename G>
void region_fold(const G& rhs, G& u, int klo, int khi) {
  std::vector<double> row(u.row_elems()), r(u.row_elems());
  for (int k = klo; k < khi; ++k) {
    for (int j = 0; j < u.S; ++j) {
      read_row(u, k, j, row.data());
      read_row(rhs, k, j, r.data());
      for (std::size_t i = 0; i < row.size(); ++i) {
        row[i] = row[i] * 0.99 + r[i] * 0.005;
      }
      write_row(u, k, j, row.data());
    }
  }
}

/// y-solve recurrences along j; k-partition, slab-local.
template <typename G>
void region_y_forward(G& rhs, int klo, int khi) {
  std::vector<double> prev(rhs.row_elems()), cur(rhs.row_elems());
  for (int k = klo; k < khi; ++k) {
    read_row(rhs, k, 0, prev.data());
    for (int j = 1; j < rhs.S; ++j) {
      read_row(rhs, k, j, cur.data());
      for (std::size_t i = 0; i < cur.size(); ++i) cur[i] += 0.25 * prev[i];
      write_row(rhs, k, j, cur.data());
      std::swap(prev, cur);
    }
  }
}

template <typename G>
void region_y_backward(G& rhs, int klo, int khi) {
  std::vector<double> prev(rhs.row_elems()), cur(rhs.row_elems());
  for (int k = klo; k < khi; ++k) {
    read_row(rhs, k, rhs.S - 1, prev.data());
    for (int j = rhs.S - 2; j >= 0; --j) {
      read_row(rhs, k, j, cur.data());
      for (std::size_t i = 0; i < cur.size(); ++i) cur[i] += 0.25 * prev[i];
      write_row(rhs, k, j, cur.data());
      std::swap(prev, cur);
    }
  }
}

/// z-solve recurrences along k; parallelized over j (different partition!),
/// so each thread touches every k-plane in its j-stripe.
template <typename G>
void region_z_forward(G& rhs, int jlo, int jhi) {
  std::vector<double> prev(rhs.row_elems()), cur(rhs.row_elems());
  for (int j = jlo; j < jhi; ++j) {
    read_row(rhs, 0, j, prev.data());
    for (int k = 1; k < rhs.S; ++k) {
      read_row(rhs, k, j, cur.data());
      for (std::size_t i = 0; i < cur.size(); ++i) cur[i] += 0.25 * prev[i];
      write_row(rhs, k, j, cur.data());
      std::swap(prev, cur);
    }
  }
}

template <typename G>
void region_z_backward(G& rhs, int jlo, int jhi) {
  std::vector<double> prev(rhs.row_elems()), cur(rhs.row_elems());
  for (int j = jlo; j < jhi; ++j) {
    read_row(rhs, rhs.S - 1, j, prev.data());
    for (int k = rhs.S - 2; k >= 0; --k) {
      read_row(rhs, k, j, cur.data());
      for (std::size_t i = 0; i < cur.size(); ++i) cur[i] += 0.25 * prev[i];
      write_row(rhs, k, j, cur.data());
      std::swap(prev, cur);
    }
  }
}

template <typename G>
void region_fold_j(const G& rhs, G& u, int jlo, int jhi) {
  std::vector<double> row(u.row_elems()), r(u.row_elems());
  for (int j = jlo; j < jhi; ++j) {
    for (int k = 0; k < u.S; ++k) {
      read_row(u, k, j, row.data());
      read_row(rhs, k, j, r.data());
      for (std::size_t i = 0; i < row.size(); ++i) {
        row[i] = row[i] * 0.99 + r[i] * 0.005;
      }
      write_row(u, k, j, row.data());
    }
  }
}

/// Region 15 (add): u += rhs * 0.01, k-partition.
template <typename G>
void region_add(const G& rhs, G& u, int klo, int khi) {
  std::vector<double> row(u.row_elems()), r(u.row_elems());
  for (int k = klo; k < khi; ++k) {
    for (int j = 0; j < u.S; ++j) {
      read_row(u, k, j, row.data());
      read_row(rhs, k, j, r.data());
      for (std::size_t i = 0; i < row.size(); ++i) row[i] += 0.01 * r[i];
      write_row(u, k, j, row.data());
    }
  }
}

/// Runs one full iteration (15 regions) sequentially on host grids — the
/// verification reference.
void reference_iteration(HostGrid& u, HostGrid& rhs) {
  const int S = u.S;
  region_txinvr(u, rhs, 0, S);
  region_rhs_k(u, rhs, 0, S);
  region_rhs_j(u, rhs, 0, S);
  region_rhs_i(u, rhs, 0, S);
  region_x_forward(rhs, 0, S);
  region_x_backward(rhs, 0, S);
  region_fold(rhs, u, 0, S);
  region_y_forward(rhs, 0, S);
  region_y_backward(rhs, 0, S);
  region_fold(rhs, u, 0, S);
  region_z_forward(rhs, 0, S);
  region_z_backward(rhs, 0, S);
  region_fold_j(rhs, u, 0, S);
  region_add(rhs, u, 0, S);
  region_txinvr(u, rhs, 0, S);  // 15th: prime rhs for the next iteration
}

std::uint64_t checksum_grid(const GridShape& shape,
                            const std::function<double(std::size_t)>& at) {
  std::uint64_t h = 1469598103934665603ULL;
  for (int k = 0; k < shape.S; ++k) {
    const std::size_t base = shape.row_index(k, 0);
    for (std::size_t e = 0; e < shape.row_elems() *
                                     static_cast<std::size_t>(shape.S);
         e += 97) {
      std::uint64_t bits;
      const double v = at(base + e);
      std::memcpy(&bits, &v, 8);
      h = (h ^ bits) * 1099511628211ULL;
    }
  }
  return h;
}

class BtApp final : public App {
 public:
  std::string name() const override { return "BT"; }
  std::string description() const override {
    return "NPB BT: stencil RHS + x/y/z line solves";
  }
  LocInfo loc() const override {
    return LocInfo{"OpenMP (15)", 15, /*paper_initial=*/44,
                   /*paper_optimized=*/60, /*ours_initial=*/30,
                   /*ours_optimized=*/36};
  }
  double stream_intensity(const RunConfig&) const override { return 0.35; }

  RunResult run(core::Cluster& cluster, const RunConfig& config) override {
    // scale multiplies the cell count; S is the cube root.
    const int S = std::max(
        8, static_cast<int>(std::lround(56.0 * std::cbrt(config.scale))));

    ProcessOptions popt = process_options(config);
    auto process = cluster.create_process(popt);
    if (config.trace_faults) process->trace().enable();

    // Plane stride: exact (Initial — slab boundaries share pages) or
    // padded to page multiples (Optimized §IV-B alignment).
    GridShape shape;
    shape.S = S;
    const std::size_t exact =
        static_cast<std::size_t>(S) * static_cast<std::size_t>(S) *
        kComponents;
    if (config.variant == Variant::kOptimized) {
      const std::size_t per_page = kPageSize / sizeof(double);
      shape.plane_stride = (exact + per_page - 1) / per_page * per_page;
    } else {
      shape.plane_stride = exact;
    }

    GArray<double> gu(*process, shape.total_elems(), "bt:u");
    GArray<double> grhs(*process, shape.total_elems(), "bt:rhs");

    // Deterministic initial condition.
    HostGrid ref_u;
    static_cast<GridShape&>(ref_u) = shape;
    ref_u.v.assign(shape.total_elems(), 0.0);
    for (int k = 0; k < S; ++k) {
      for (int j = 0; j < S; ++j) {
        for (int i = 0; i < S * kComponents; ++i) {
          ref_u.v[shape.row_index(k, j) + static_cast<std::size_t>(i)] =
              0.01 * (k + 1) + 0.001 * (j + 1) + 0.0001 * (i + 1);
        }
      }
    }
    gu.write_block(0, shape.total_elems(), ref_u.v.data());

    HostGrid ref_rhs;
    static_cast<GridShape&>(ref_rhs) = shape;
    ref_rhs.v.assign(shape.total_elems(), 0.0);

    DexGrid u;
    static_cast<GridShape&>(u) = shape;
    u.arr = &gu;
    DexGrid rhs;
    static_cast<GridShape&>(rhs) = shape;
    rhs.arr = &grhs;

    // The master's "stack page": region parameters that children read. In
    // the Initial port the master also writes scratch values to the same
    // page before every region (the §IV-B stack-sharing pattern).
    struct StackArgs {
      std::int32_t S;
      std::int32_t iteration;
    };
    GVar<StackArgs> stack_args(*process, "bt:stack_args",
                               config.variant == Variant::kOptimized);
    GCounter master_scratch(*process, "bt:master_scratch");
    stack_args.store(StackArgs{S, 0});

    core::TeamOptions topt;
    topt.nodes = config.nodes;
    topt.threads_per_node = config.threads_per_node;
    topt.migrate = config.migrate;
    core::Team team(*process, topt);
    const int nthreads = topt.total_threads();

    auto kslab = [&](int tid, int* lo, int* hi) {
      const int chunk = (S + nthreads - 1) / nthreads;
      *lo = std::min(S, tid * chunk);
      *hi = std::min(S, *lo + chunk);
    };

    auto run_bt_region = [&](const char* site_name,
                             const std::function<void(int lo, int hi)>& fn,
                             bool j_partition) {
      if (config.variant == Variant::kInitial) {
        // Master updates its stack right before forking the region,
        // invalidating every node's copy of the shared-args page.
        master_scratch.fetch_add(1);
        stack_args.store(StackArgs{S, 0});
      }
      team.run_region([&](int tid, int) {
        ScopedSite site(site_name);
        // Children read the region parameters from the master's stack.
        const StackArgs a = stack_args.load();
        (void)a;
        int lo, hi;
        if (j_partition) {
          kslab(tid, &lo, &hi);  // stripes over j have the same shape
        } else {
          kslab(tid, &lo, &hi);
        }
        fn(lo, hi);
        if (config.variant == Variant::kInitial) {
          // SIV-C's correlated-fault pattern, as profiled in the NPB apps:
          // the sweep re-reads loop-range globals that share a page with a
          // residual counter other threads keep updating, so every re-read
          // faults and every update invalidates all readers.
          ScopedSite scratch_site("bt:param_reread");
          const int rows = (hi - lo) * S;
          for (int r = 0; r < rows; ++r) {
            master_scratch.fetch_add(1);
            (void)stack_args.load();
          }
        }
      });
    };

    // ---- measured phase ----
    ScopedPacing pace_scope(config.pacing);
    const VirtNs t0 = dex::now();
    for (int iter = 0; iter < kIterations; ++iter) {
      run_bt_region("bt:txinvr",
                    [&](int lo, int hi) { region_txinvr(u, rhs, lo, hi); },
                    false);
      run_bt_region("bt:rhs_k",
                    [&](int lo, int hi) { region_rhs_k(u, rhs, lo, hi); },
                    false);
      run_bt_region("bt:rhs_j",
                    [&](int lo, int hi) { region_rhs_j(u, rhs, lo, hi); },
                    false);
      run_bt_region("bt:rhs_i",
                    [&](int lo, int hi) { region_rhs_i(u, rhs, lo, hi); },
                    false);
      run_bt_region("bt:x_fwd",
                    [&](int lo, int hi) { region_x_forward(rhs, lo, hi); },
                    false);
      run_bt_region("bt:x_back",
                    [&](int lo, int hi) { region_x_backward(rhs, lo, hi); },
                    false);
      run_bt_region("bt:x_fold",
                    [&](int lo, int hi) { region_fold(rhs, u, lo, hi); },
                    false);
      run_bt_region("bt:y_fwd",
                    [&](int lo, int hi) { region_y_forward(rhs, lo, hi); },
                    false);
      run_bt_region("bt:y_back",
                    [&](int lo, int hi) { region_y_backward(rhs, lo, hi); },
                    false);
      run_bt_region("bt:y_fold",
                    [&](int lo, int hi) { region_fold(rhs, u, lo, hi); },
                    false);
      run_bt_region("bt:z_fwd",
                    [&](int lo, int hi) { region_z_forward(rhs, lo, hi); },
                    true);
      run_bt_region("bt:z_back",
                    [&](int lo, int hi) { region_z_backward(rhs, lo, hi); },
                    true);
      run_bt_region("bt:z_fold",
                    [&](int lo, int hi) { region_fold_j(rhs, u, lo, hi); },
                    true);
      run_bt_region("bt:add",
                    [&](int lo, int hi) { region_add(rhs, u, lo, hi); },
                    false);
      run_bt_region("bt:reprime",
                    [&](int lo, int hi) { region_txinvr(u, rhs, lo, hi); },
                    false);
    }
    const VirtNs elapsed = dex::now() - t0;

    // ---- verification ----
    for (int iter = 0; iter < kIterations; ++iter) {
      reference_iteration(ref_u, ref_rhs);
    }
    std::vector<double> got(shape.total_elems());
    gu.read_block(0, shape.total_elems(), got.data());

    RunResult result;
    result.elapsed_ns = elapsed;
    result.checksum = checksum_grid(
        shape, [&](std::size_t e) { return got[e]; });
    const std::uint64_t expect = checksum_grid(
        shape, [&](std::size_t e) { return ref_u.v[e]; });
    result.verified = result.checksum == expect;
    snapshot_stats(*process, result);
    return result;
  }
};

}  // namespace

App* bt_app() {
  static BtApp app;
  return &app;
}

}  // namespace dex::apps
