// BP — belief propagation from Polymer (§V, NUMA-aware category).
//
// Iterative damped belief updates over the R-MAT graph with 8-state belief
// vectors and double buffering: iteration t reads neighbors' beliefs from
// buffer t%2 and writes its own partition of buffer (t+1)%2. Writes stay
// partition-local; reads gather neighbor vectors from everywhere.
//
// BP is memory-latency/bandwidth-bound: each edge is a dependent random
// 64-byte gather. On one node the 12 MB working set thrashes the LLC and
// eight threads contend for the memory channels, so per-edge cost more
// than doubles — the paper's §V-B finding that single-node BP left the
// CPUs underutilized, and the cause of its *super-linear* scaling (3.84x
// at 2 nodes): distributing the threads also distributes the working set
// into per-node shares that fit in cache.
//
// Initial port: partition boundaries not page aligned (boundary pages are
// write-shared between neighboring nodes) and a shared convergence
// accumulator updated by every thread each iteration. It still scales —
// Polymer applications are NUMA-optimized already. Optimized: page-aligned
// partitions and one staged convergence update per thread.
#include <cmath>
#include <cstring>
#include <vector>

#include "apps/app.h"
#include "apps/graph.h"
#include "core/sync.h"

namespace dex::apps {
namespace {

constexpr int kStates = 4;  // belief vector width (half a cache line)
constexpr int kIterations = 4;
/// Per-edge cost when the per-node working set misses the LLC: a dependent
/// DRAM gather plus channel congestion from 8 streaming threads.
constexpr double kEdgeMissNs = 260.0;
/// Per-edge cost once the per-node share fits the LLC.
constexpr double kEdgeHitNs = 130.0;
constexpr double kFix = 1048576.0;

std::uint64_t to_fix(double v) {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(v * kFix));
}

void update_vertex(const double* old_self, double deg,
                   const double* neighbor_sum, double* out) {
  for (int s = 0; s < kStates; ++s) {
    out[s] = deg > 0 ? 0.3 * old_self[s] + 0.7 * (neighbor_sum[s] / deg)
                     : old_self[s];
  }
}

/// Sequential reference; returns the belief checksum after kIterations.
std::uint64_t reference_bp(const Csr& csr) {
  const std::uint32_t V = csr.num_vertices;
  std::vector<double> bufs[2];
  bufs[0].assign(static_cast<std::size_t>(V) * kStates, 1.0 / kStates);
  bufs[1].assign(static_cast<std::size_t>(V) * kStates, 0.0);
  double sum[kStates];
  for (int iter = 0; iter < kIterations; ++iter) {
    const auto& old_b = bufs[iter % 2];
    auto& new_b = bufs[(iter + 1) % 2];
    for (std::uint32_t v = 0; v < V; ++v) {
      std::memset(sum, 0, sizeof(sum));
      for (std::uint64_t e = csr.offsets[v]; e < csr.offsets[v + 1]; ++e) {
        const double* nb =
            old_b.data() + static_cast<std::size_t>(csr.targets[e]) * kStates;
        for (int s = 0; s < kStates; ++s) sum[s] += nb[s];
      }
      update_vertex(old_b.data() + static_cast<std::size_t>(v) * kStates,
                    static_cast<double>(csr.degree(v)), sum,
                    new_b.data() + static_cast<std::size_t>(v) * kStates);
    }
  }
  std::uint64_t checksum = 0;
  const auto& final_b = bufs[kIterations % 2];
  for (std::size_t i = 0; i < final_b.size(); i += 7) {
    checksum = checksum * 1000003 + to_fix(final_b[i]);
  }
  return checksum;
}

class BpApp final : public App {
 public:
  std::string name() const override { return "BP"; }
  std::string description() const override {
    return "Polymer belief propagation on an R-MAT graph";
  }
  LocInfo loc() const override {
    return LocInfo{"Pthread", 0, /*paper_initial=*/12,
                   /*paper_optimized=*/34, /*ours_initial=*/10,
                   /*ours_optimized=*/28};
  }
  double stream_intensity(const RunConfig&) const override { return 0.2; }

  static std::size_t default_llc_bytes() { return std::size_t{8} << 20; }

  /// Per-node share of the BP working set (two belief buffers + CSR).
  static double workset_bytes(const Csr& csr, int nodes) {
    const double workset =
        2.0 * static_cast<double>(csr.num_vertices) * kStates * 8.0 +
        static_cast<double>(csr.num_edges()) * 4.0;
    return workset / std::max(1, nodes);
  }

  RunResult run(core::Cluster& cluster, const RunConfig& config) override {
    const Csr csr = make_polymer_graph(config.scale, config.seed,
                                       /*edge_factor=*/16);
    const std::uint32_t V = csr.num_vertices;

    ProcessOptions popt = process_options(config);
    auto process = cluster.create_process(popt);
    if (config.trace_faults) process->trace().enable();

    DexGraph graph = DexGraph::build(*process, csr);
    const std::size_t belief_elems = static_cast<std::size_t>(V) * kStates;
    GArray<double> beliefs[2] = {
        GArray<double>(*process, belief_elems, "bp:beliefs0"),
        GArray<double>(*process, belief_elems, "bp:beliefs1"),
    };
    {
      std::vector<double> init(belief_elems, 1.0 / kStates);
      beliefs[0].write_block(0, belief_elems, init.data());
    }
    GCounter convergence(*process, "bp:convergence");

    core::TeamOptions topt;
    topt.nodes = config.nodes;
    topt.threads_per_node = config.threads_per_node;
    topt.migrate = config.migrate;
    const int nthreads = topt.total_threads();
    DexBarrier barrier(*process, nthreads);

    const bool llc_miss =
        workset_bytes(csr, config.nodes) >
        static_cast<double>(default_llc_bytes());
    const double edge_ns = llc_miss ? kEdgeMissNs : kEdgeHitNs;

    // Vertex partition: exact split (Initial: boundary belief pages shared
    // between threads/nodes) or page-aligned split (Optimized §IV-B).
    auto partition = [&](int tid, std::uint32_t* lo, std::uint32_t* hi) {
      std::uint64_t chunk = (V + static_cast<std::uint32_t>(nthreads) - 1) /
                            static_cast<std::uint32_t>(nthreads);
      if (config.variant == Variant::kOptimized) {
        constexpr std::uint64_t kPerPage =
            kPageSize / (sizeof(double) * kStates);
        chunk = (chunk + kPerPage - 1) / kPerPage * kPerPage;
      }
      *lo = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(chunk * static_cast<std::uint64_t>(tid),
                                  V));
      *hi = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(*lo + chunk, V));
    };

    // ---- measured phase ----
    ScopedPacing pace_scope(config.pacing);
    const VirtNs t0 = dex::now();
    run_team(*process, topt, [&](int tid, int) {
      std::uint32_t lo, hi;
      partition(tid, &lo, &hi);
      std::vector<double> out(static_cast<std::size_t>(hi > lo ? hi - lo
                                                               : 0) *
                              kStates);
      std::vector<std::uint64_t> offs(hi > lo ? hi - lo + 1 : 0);
      std::vector<std::uint32_t> targets;
      double nb[kStates], self[kStates], sum[kStates];

      for (int iter = 0; iter < kIterations; ++iter) {
        auto& old_b = beliefs[iter % 2];
        auto& new_b = beliefs[(iter + 1) % 2];
        std::uint64_t local_delta = 0;
        {
          ScopedSite site("bp:update_loop");
          if (!offs.empty()) {
            graph.offsets.read_block(lo, offs.size(), offs.data());
          }
          for (std::uint32_t v = lo; v < hi; ++v) {
            const std::uint64_t e0 = offs[v - lo];
            const std::uint64_t e1 = offs[v - lo + 1];
            std::memset(sum, 0, sizeof(sum));
            targets.resize(e1 - e0);
            if (e1 > e0) {
              graph.targets.read_block(e0, e1 - e0, targets.data());
            }
            for (const std::uint32_t w : targets) {
              old_b.read_block(static_cast<std::size_t>(w) * kStates,
                               kStates, nb);
              for (int s = 0; s < kStates; ++s) sum[s] += nb[s];
            }
            // The per-edge cost: dependent random gathers, LLC-resident or
            // not per the working-set model above.
            dex::compute(static_cast<VirtNs>(
                edge_ns * static_cast<double>(e1 - e0 + 1)));
            old_b.read_block(static_cast<std::size_t>(v) * kStates, kStates,
                             self);
            const double deg = static_cast<double>(e1 - e0);
            double* dst =
                out.data() + static_cast<std::size_t>(v - lo) * kStates;
            update_vertex(self, deg, sum, dst);
            local_delta += to_fix(std::fabs(dst[0] - self[0]));
          }
          if (hi > lo) {
            new_b.write_block(static_cast<std::size_t>(lo) * kStates,
                              static_cast<std::size_t>(hi - lo) * kStates,
                              out.data());
          }
        }
        if (config.variant == Variant::kInitial) {
          // Original: every thread folds its delta into the shared
          // accumulator every iteration (write-contended page).
          ScopedSite site("bp:convergence");
          convergence.fetch_add(local_delta);
        } else if (iter == kIterations - 1) {
          // Optimized: one staged update at the very end.
          convergence.fetch_add(local_delta);
        }
        barrier.wait();
      }
    });
    const VirtNs elapsed = dex::now() - t0;

    // ---- verification ----
    auto& final_b = beliefs[kIterations % 2];
    std::vector<double> got(belief_elems);
    final_b.read_block(0, belief_elems, got.data());
    std::uint64_t checksum = 0;
    for (std::size_t i = 0; i < got.size(); i += 7) {
      checksum = checksum * 1000003 + to_fix(got[i]);
    }

    RunResult result;
    result.elapsed_ns = elapsed;
    result.checksum = checksum;
    result.verified = checksum == reference_bp(csr);
    snapshot_stats(*process, result);
    return result;
  }
};

}  // namespace

App* bp_app() {
  static BpApp app;
  return &app;
}

}  // namespace dex::apps
