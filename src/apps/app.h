// Application framework for the paper's eight evaluation workloads (§V).
//
// Every application implements two variants of the same computation:
//   kInitial   — the paper's "Initial" port: migration calls inserted, no
//                other changes; keeps the original false-sharing patterns
//                (packed thread-argument pages, contended global counters
//                and flags, unaligned partitions).
//   kOptimized — the §IV/§V-C optimizations applied: page-aligned per-node
//                data (posix_memalign), read-only globals isolated on their
//                own pages, locally staged flag/counter updates.
// Both variants must produce the same verified result.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/api.h"

namespace dex::apps {

enum class Variant { kInitial, kOptimized };

inline const char* to_string(Variant v) {
  return v == Variant::kInitial ? "initial" : "optimized";
}

struct RunConfig {
  int nodes = 1;
  int threads_per_node = 8;
  Variant variant = Variant::kInitial;
  /// Workload scale factor (1.0 = the library's default size; benches use
  /// smaller values to keep the full Figure 2 sweep fast).
  double scale = 1.0;
  /// false = the single-machine baseline: no migration, everything at the
  /// origin. With nodes=1 this is the Figure 2 normalization denominator.
  bool migrate = true;
  std::uint64_t seed = 42;
  /// Enable page-fault tracing for this run (profiling workflow, §IV-A).
  bool trace_faults = false;
  /// Real-seconds-per-virtual-second coupling during the measured phase
  /// (see vclock::set_pacing): keeps thread interleavings virtual-time
  /// faithful so contention (page ping-pong) materializes as it would on
  /// the paper's cluster. 0 disables (fast, for correctness-only tests).
  double pacing = 0.05;
  /// Protocol ablation knobs, forwarded into ProcessOptions by every app:
  /// two-hop owner->requester grant forwarding, the directory shard count
  /// (1 = the original single-mutex tree), and adaptive home migration
  /// (off = every entry stays pinned at the origin).
  bool forward_grants = true;
  int dir_shards = mem::Directory::kDirShards;
  bool home_migration = true;
  /// Writeback-lease window (0 = leases off, the unleased protocol).
  VirtNs lease_ns = 0;
  /// Re-run threads lost to node death at the origin (self-healing).
  bool restart_lost_threads = false;
  /// Per-node frame-memory budget (0 = unbounded, no eviction).
  std::uint64_t frame_budget_bytes = 0;
  /// File-backed cold tier for evicted home/exclusive frames.
  bool spill_cold_pages = false;
  /// Optimistic versioned latching on the fault hot path (off takes every
  /// lock pessimistically, the seed protocol).
  bool optimistic_latching = true;
  /// Async protocol engine: resumable fault transactions, doorbell-batched
  /// sends, futex-wake completion (off = the blocking protocol).
  bool async_engine = false;
  /// Engine window depth (transactions one pump keeps in flight per node).
  int max_inflight_transactions = 16;
  /// Joint thread<->page placement: threads whose fault mass dominates on
  /// one remote node transparently migrate there (off = application-
  /// directed placement only, the seed behavior).
  bool auto_thread_migration = false;
  /// Consecutive dominant decision windows before a thread moves.
  int thread_migrate_run = 3;
  /// Origin failover: directory metadata replicates to a deputy that
  /// promotes itself when the origin dies (off = the seed protocol, origin
  /// death unsurvivable).
  bool origin_failover = false;
};

struct RunResult {
  VirtNs elapsed_ns = 0;   // virtual time of the measured compute phase
  std::uint64_t checksum = 0;
  bool verified = false;   // matches the sequential reference
  // Protocol statistics snapshot for the run.
  std::uint64_t faults = 0;
  std::uint64_t remote_faults = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t retries = 0;
  std::uint64_t messages = 0;
  /// Directory shard-lock collisions (Directory::lock_contention).
  std::uint64_t dir_lock_contention = 0;
  /// Optimistic-latching counters (zero when the knob is off): probes that
  /// restarted against a raced mutation, probes that escalated to the
  /// exclusive latch, and fault-table shard-mutex collisions.
  std::uint64_t latch_restarts = 0;
  std::uint64_t latch_upgrades = 0;
  std::uint64_t fault_table_contention = 0;
  /// Adaptive home migration counters (zero when the knob is off).
  std::uint64_t home_migrations = 0;
  std::uint64_t home_hint_hits = 0;
  std::uint64_t home_chases = 0;
  /// Granted page transactions by serving home node, origin first.
  std::vector<std::uint64_t> faults_by_home;
  /// Self-healing counters (zero unless leases / restarts are on and a
  /// failure was injected).
  std::uint64_t lease_renewals = 0;
  std::uint64_t writebacks_piggybacked = 0;
  std::uint64_t lease_recalls = 0;
  std::uint64_t pages_recovered = 0;
  std::uint64_t dirty_pages_lost = 0;
  std::uint64_t threads_restarted = 0;
  /// Bounded-frame counters (zero unless frame_budget_bytes was set).
  std::uint64_t frame_budget_bytes = 0;
  std::uint64_t frame_high_water_bytes = 0;
  std::uint64_t evictions_shared = 0;
  std::uint64_t evictions_exclusive = 0;
  std::uint64_t evictions_local = 0;
  std::uint64_t spills_out = 0;
  std::uint64_t spills_in = 0;
  std::uint64_t backpressure_stalls = 0;
  std::uint64_t backpressure_overshoots = 0;
  std::uint64_t journal_bytes = 0;
  std::uint64_t journal_gcs = 0;
  /// Async-engine counters (zero unless async_engine was on).
  std::uint64_t engine_submitted = 0;
  std::uint64_t engine_resumes = 0;
  std::uint64_t async_completions = 0;
  std::uint64_t engine_depth_peak = 0;
  std::uint64_t engine_depth_sum = 0;
  std::uint64_t engine_depth_samples = 0;
  std::uint64_t engine_pump_handoffs = 0;
  std::uint64_t doorbell_batches = 0;
  std::uint64_t batched_posts = 0;
  /// Placement counters (zero unless auto_thread_migration was on).
  std::uint64_t thread_migrations_auto = 0;
  std::uint64_t placement_windows = 0;
  std::uint64_t placement_vetoes = 0;
  std::uint64_t placement_deferrals = 0;
  std::uint64_t placement_arbitrations = 0;
  std::uint64_t placement_hints_warmed = 0;
  /// Origin-failover counters (zero unless origin_failover was on).
  std::uint64_t origin_failovers = 0;
  std::uint64_t dir_mutations_replicated = 0;
  std::uint64_t replication_batches = 0;
  std::uint64_t replica_journal_pages = 0;
  std::uint64_t scavenge_pages_rebuilt = 0;
  std::uint64_t replication_lag = 0;
  std::vector<prof::FaultEvent> trace;  // when trace_faults was set
};

/// Conversion-effort record (Table I). `paper_*` are the paper's reported
/// line counts; `ours_*` are hand-counted from this repo's variants (the
/// lines that differ between the pristine algorithm and each variant).
struct LocInfo {
  const char* multithread_impl;  // "Pthread" / "OpenMP (n)"
  int regions;                   // OpenMP parallel regions converted
  int paper_initial;             // LoC changed for the initial port
  int paper_optimized;           // additional LoC for the optimized port
  int ours_initial;
  int ours_optimized;
};

class App {
 public:
  virtual ~App() = default;
  virtual std::string name() const = 0;         // e.g. "GRP"
  virtual std::string description() const = 0;
  virtual LocInfo loc() const = 0;
  /// Memory-streaming intensity for the bandwidth model (§V-B's BP is the
  /// heavy one). May depend on the per-node working set.
  virtual double stream_intensity(const RunConfig& config) const {
    (void)config;
    return 0.15;
  }
  virtual RunResult run(core::Cluster& cluster, const RunConfig& config) = 0;

 protected:
  /// ProcessOptions for this app under `config`: stream intensity plus the
  /// protocol ablation knobs. Apps start from this instead of a default-
  /// constructed block so RunConfig ablations reach the DSM.
  core::ProcessOptions process_options(const RunConfig& config) const {
    core::ProcessOptions popt;
    popt.stream_intensity = stream_intensity(config);
    popt.forward_grants = config.forward_grants;
    popt.dir_shards = config.dir_shards;
    popt.home_migration = config.home_migration;
    popt.lease_ns = config.lease_ns;
    popt.restart_lost_threads = config.restart_lost_threads;
    popt.frame_budget_bytes = config.frame_budget_bytes;
    popt.spill_cold_pages = config.spill_cold_pages;
    popt.optimistic_latching = config.optimistic_latching;
    popt.async_engine = config.async_engine;
    popt.max_inflight_transactions = config.max_inflight_transactions;
    popt.auto_thread_migration = config.auto_thread_migration;
    popt.thread_migrate_run = config.thread_migrate_run;
    popt.origin_failover = config.origin_failover;
    return popt;
  }
};

/// Registry of the eight paper applications, in Table I order:
/// GRP, KMN, BT, EP, FT, BLK, BFS, BP.
const std::vector<App*>& all_apps();
App* find_app(const std::string& name);

/// Convenience: builds a cluster sized for `config` and runs the app.
RunResult run_app(App& app, const RunConfig& config,
                  const core::ClusterConfig& base = {});

/// Fills the protocol-statistics fields of `result` from `process`.
void snapshot_stats(core::Process& process, RunResult& result);

/// Per-thread argument blocks with variant-dependent placement: packed on
/// one page (Initial: the pthread_create-args false-sharing pattern) or
/// one page per thread (Optimized).
class ArgsBlock {
 public:
  ArgsBlock() = default;
  ArgsBlock(core::Process& process, int nthreads, std::size_t bytes_each,
            Variant variant, const std::string& tag)
      : process_(&process),
        stride_(variant == Variant::kOptimized
                    ? (bytes_each + kPageSize - 1) & ~(kPageSize - 1)
                    : bytes_each) {
    base_ = process.mmap(static_cast<std::uint64_t>(nthreads) * stride_,
                         mem::kProtReadWrite, tag);
    DEX_CHECK(base_ != kNullGAddr);
  }

  GAddr slot(int tid) const {
    return base_ + static_cast<std::uint64_t>(tid) * stride_;
  }
  template <typename T>
  T get(int tid) const {
    return process_->load<T>(slot(tid));
  }
  template <typename T>
  void set(int tid, const T& value) {
    process_->store<T>(slot(tid), value);
  }

 private:
  core::Process* process_ = nullptr;
  GAddr base_ = kNullGAddr;
  std::uint64_t stride_ = 0;
};

}  // namespace dex::apps
