// BLK — PARSEC blackscholes (pthread variant, 'native'-style input).
//
// Prices a portfolio of European options with the Black-Scholes
// closed-form solution, repeatedly (PARSEC runs NUM_RUNS=100 passes; we
// scale that down). Option data is read-only after setup and partitions
// are disjoint, so the paper finds BLK scale-ready: the Initial port
// already scales. The Optimized port page-aligns the per-thread argument
// blocks and partition boundaries, trimming residual boundary sharing.
#include <cmath>
#include <vector>

#include "apps/app.h"
#include "common/rand.h"
#include "core/parallel.h"

namespace dex::apps {
namespace {

constexpr int kPasses = 4;
constexpr double kOptionNs = 220.0;  // CNDF-based pricing per option

struct OptionData {
  double spot, strike, rate, volatility, time;
  std::int32_t type;  // 0 = call, 1 = put
  std::int32_t pad;
};

struct BlkArgs {
  std::uint64_t begin;
  std::uint64_t end;
};

double cndf(double x) {
  const double sign = x < 0 ? -1.0 : 1.0;
  x = std::fabs(x) * M_SQRT1_2;
  const double t = 1.0 / (1.0 + 0.3275911 * x);
  const double y =
      1.0 - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t -
              0.284496736) *
                 t +
             0.254829592) *
                t * std::exp(-x * x);
  return 0.5 * (1.0 + sign * y);
}

double price_option(const OptionData& o) {
  const double sqrt_t = std::sqrt(o.time);
  const double d1 =
      (std::log(o.spot / o.strike) +
       (o.rate + 0.5 * o.volatility * o.volatility) * o.time) /
      (o.volatility * sqrt_t);
  const double d2 = d1 - o.volatility * sqrt_t;
  const double call = o.spot * cndf(d1) -
                      o.strike * std::exp(-o.rate * o.time) * cndf(d2);
  if (o.type == 0) return call;
  // put via parity
  return call - o.spot + o.strike * std::exp(-o.rate * o.time);
}

class BlkApp final : public App {
 public:
  std::string name() const override { return "BLK"; }
  std::string description() const override {
    return "PARSEC blackscholes option pricing";
  }
  LocInfo loc() const override {
    return LocInfo{"Pthread", 0, /*paper_initial=*/2, /*paper_optimized=*/12,
                   /*ours_initial=*/2, /*ours_optimized=*/10};
  }
  double stream_intensity(const RunConfig&) const override { return 0.10; }

  RunResult run(core::Cluster& cluster, const RunConfig& config) override {
    const auto num_options =
        static_cast<std::size_t>(config.scale * 65536.0);

    std::vector<OptionData> host(num_options);
    Xoshiro256 rng(config.seed);
    for (auto& o : host) {
      o.spot = 10.0 + rng.next_double() * 90.0;
      o.strike = 10.0 + rng.next_double() * 90.0;
      o.rate = 0.01 + rng.next_double() * 0.09;
      o.volatility = 0.05 + rng.next_double() * 0.55;
      o.time = 0.1 + rng.next_double() * 2.9;
      o.type = static_cast<std::int32_t>(rng.next_below(2));
      o.pad = 0;
    }

    ProcessOptions popt = process_options(config);
    auto process = cluster.create_process(popt);
    if (config.trace_faults) process->trace().enable();

    GArray<OptionData> options(*process, num_options, "blk:options");
    options.write_block(0, num_options, host.data());
    GArray<double> prices(*process, num_options, "blk:prices");

    core::TeamOptions topt;
    topt.nodes = config.nodes;
    topt.threads_per_node = config.threads_per_node;
    topt.migrate = config.migrate;
    const int nthreads = topt.total_threads();

    ArgsBlock args(*process, nthreads, sizeof(BlkArgs), config.variant,
                   "blk:args");
    {
      std::uint64_t chunk =
          (num_options + static_cast<std::size_t>(nthreads) - 1) /
          static_cast<std::size_t>(nthreads);
      if (config.variant == Variant::kOptimized) {
        // Page-align partition boundaries (prices: 512 doubles per page).
        constexpr std::uint64_t kPerPage = kPageSize / sizeof(double);
        chunk = (chunk + kPerPage - 1) / kPerPage * kPerPage;
      }
      for (int tid = 0; tid < nthreads; ++tid) {
        BlkArgs a;
        a.begin = std::min<std::uint64_t>(
            chunk * static_cast<std::uint64_t>(tid), num_options);
        a.end = std::min<std::uint64_t>(a.begin + chunk, num_options);
        args.set(tid, a);
      }
    }

    // ---- measured phase: one pthread region over all passes ----
    ScopedPacing pace_scope(config.pacing);
    const VirtNs t0 = dex::now();
    run_team(*process, topt, [&](int tid, int) {
      ScopedSite site("blk:price_loop");
      const BlkArgs a = args.get<BlkArgs>(tid);
      std::vector<OptionData> batch(512);
      std::vector<double> out(512);
      for (int pass = 0; pass < kPasses; ++pass) {
        for (std::uint64_t base = a.begin; base < a.end;
             base += batch.size()) {
          const std::size_t n =
              std::min<std::uint64_t>(batch.size(), a.end - base);
          options.read_block(base, n, batch.data());
          for (std::size_t i = 0; i < n; ++i) {
            out[i] = price_option(batch[i]);
          }
          dex::compute(
              static_cast<VirtNs>(kOptionNs * static_cast<double>(n)));
          prices.write_block(base, n, out.data());
        }
      }
    });
    const VirtNs elapsed = dex::now() - t0;

    // ---- verification ----
    std::uint64_t checksum = 0, expect = 0;
    std::vector<double> got(num_options);
    prices.read_block(0, num_options, got.data());
    for (std::size_t i = 0; i < num_options; ++i) {
      std::uint64_t bits_got, bits_ref;
      const double ref = price_option(host[i]);
      std::memcpy(&bits_got, &got[i], 8);
      std::memcpy(&bits_ref, &ref, 8);
      checksum = (checksum ^ bits_got) * 1099511628211ULL;
      expect = (expect ^ bits_ref) * 1099511628211ULL;
    }

    RunResult result;
    result.elapsed_ns = elapsed;
    result.checksum = checksum;
    result.verified = checksum == expect;
    snapshot_stats(*process, result);
    return result;
  }
};

}  // namespace

App* blk_app() {
  static BlkApp app;
  return &app;
}

}  // namespace dex::apps
