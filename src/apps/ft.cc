// FT — NPB 3-D FFT kernel (reduced form).
//
// The paper converts FT's 7 OpenMP parallel regions. We keep the structure:
// two setup regions (index map, initial conditions) and, per iteration,
// evolve + three 1-D FFT passes (cffts1/2/3) + a checksum reduction. The
// FFTs along i and j are local to the k-slab partition; the FFT along k is
// parallelized over j, so every thread gathers rows from every k-plane —
// the all-to-all "transpose" traffic that makes FT the worst case for
// page-granularity DSM (it stays below single-machine performance in the
// paper even after optimization).
//
// The per-line transform is a real iterative radix-2 complex FFT, so the
// distributed result is verified bit-for-bit against a sequential run.
#include <cmath>
#include <cstring>
#include <vector>

#include "apps/app.h"
#include "core/parallel.h"

namespace dex::apps {
namespace {

constexpr double kFftNsPerElem = 25.0;  // per element per 1-D FFT pass
constexpr int kIterations = 3;
constexpr double kFix = 1048576.0;

/// In-place iterative radix-2 FFT over `n` complex values (interleaved
/// re/im). n must be a power of two. Deterministic operation order.
void fft_line(double* data, int n) {
  // Bit-reversal permutation.
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      std::swap(data[2 * i], data[2 * j]);
      std::swap(data[2 * i + 1], data[2 * j + 1]);
    }
  }
  for (int len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * M_PI / len;
    const double wr = std::cos(angle), wi = std::sin(angle);
    for (int i = 0; i < n; i += len) {
      double cr = 1.0, ci = 0.0;
      for (int k = 0; k < len / 2; ++k) {
        const int a = 2 * (i + k), b = 2 * (i + k + len / 2);
        const double tr = data[b] * cr - data[b + 1] * ci;
        const double ti = data[b] * ci + data[b + 1] * cr;
        data[b] = data[a] - tr;
        data[b + 1] = data[a + 1] - ti;
        data[a] += tr;
        data[a + 1] += ti;
        const double ncr = cr * wr - ci * wi;
        ci = cr * wi + ci * wr;
        cr = ncr;
      }
    }
  }
}

struct FtShape {
  int S = 0;
  std::size_t plane_stride = 0;  // doubles between k-planes
  std::size_t row_elems() const {
    return static_cast<std::size_t>(S) * 2;
  }
  std::size_t row_index(int k, int j) const {
    return static_cast<std::size_t>(k) * plane_stride +
           static_cast<std::size_t>(j) * row_elems();
  }
  std::size_t total() const {
    return static_cast<std::size_t>(S) * plane_stride;
  }
};

class FtApp final : public App {
 public:
  std::string name() const override { return "FT"; }
  std::string description() const override {
    return "NPB FT: 3-D FFT with all-to-all z pass";
  }
  LocInfo loc() const override {
    return LocInfo{"OpenMP (7)", 7, /*paper_initial=*/21,
                   /*paper_optimized=*/30, /*ours_initial=*/16,
                   /*ours_optimized=*/20};
  }
  double stream_intensity(const RunConfig&) const override { return 0.45; }

  RunResult run(core::Cluster& cluster, const RunConfig& config) override {
    int S = 16;
    while (2 * S <= static_cast<int>(64.0 * std::cbrt(config.scale))) {
      S *= 2;
    }

    ProcessOptions popt = process_options(config);
    auto process = cluster.create_process(popt);
    if (config.trace_faults) process->trace().enable();

    FtShape shape;
    shape.S = S;
    const std::size_t exact = static_cast<std::size_t>(S) * S * 2;
    if (config.variant == Variant::kOptimized) {
      const std::size_t per_page = kPageSize / sizeof(double);
      shape.plane_stride = (exact + per_page - 1) / per_page * per_page;
    } else {
      shape.plane_stride = exact;
    }

    GArray<double> gdata(*process, shape.total(), "ft:data");
    GCounter gchecksum(*process, "ft:checksum");

    core::TeamOptions topt;
    topt.nodes = config.nodes;
    topt.threads_per_node = config.threads_per_node;
    topt.migrate = config.migrate;
    core::Team team(*process, topt);
    const int nthreads = topt.total_threads();

    auto slab = [&](int tid, int* lo, int* hi) {
      const int chunk = (S + nthreads - 1) / nthreads;
      *lo = std::min(S, tid * chunk);
      *hi = std::min(S, *lo + chunk);
    };

    // Reference state, evolved in lockstep by the same region functions.
    std::vector<double> ref(shape.total(), 0.0);

    auto initial_value = [S](int k, int j, int i, int comp) {
      return 0.001 * ((k * S + j) * S + i + 1) + 0.0005 * comp;
    };

    // ---- setup regions (2 of the 7 converted regions) ----
    team.run_region([&](int tid, int) {
      ScopedSite site("ft:indexmap");
      int lo, hi;
      slab(tid, &lo, &hi);
      dex::compute(static_cast<VirtNs>(
          10.0 * S * S * (hi - lo)));  // index-map arithmetic
    });
    team.run_region([&](int tid, int) {
      ScopedSite site("ft:init_conditions");
      int lo, hi;
      slab(tid, &lo, &hi);
      std::vector<double> row(shape.row_elems());
      for (int k = lo; k < hi; ++k) {
        for (int j = 0; j < S; ++j) {
          for (int i = 0; i < S; ++i) {
            row[2 * static_cast<std::size_t>(i)] = initial_value(k, j, i, 0);
            row[2 * static_cast<std::size_t>(i) + 1] =
                initial_value(k, j, i, 1);
          }
          gdata.write_block(shape.row_index(k, j), shape.row_elems(),
                            row.data());
        }
      }
    });
    for (int k = 0; k < S; ++k) {
      for (int j = 0; j < S; ++j) {
        for (int i = 0; i < S; ++i) {
          ref[shape.row_index(k, j) + 2 * static_cast<std::size_t>(i)] =
              initial_value(k, j, i, 0);
          ref[shape.row_index(k, j) + 2 * static_cast<std::size_t>(i) + 1] =
              initial_value(k, j, i, 1);
        }
      }
    }

    const VirtNs fft_cost_per_thread = static_cast<VirtNs>(
        kFftNsPerElem * static_cast<double>(S) * S * S /
        static_cast<double>(nthreads));

    std::uint64_t reference_checksum_acc = 0;

    // ---- measured phase ----
    ScopedPacing pace_scope(config.pacing);
    const VirtNs t0 = dex::now();
    for (int iter = 0; iter < kIterations; ++iter) {
      // Region: evolve (scale by a per-cell factor), k-partition.
      team.run_region([&](int tid, int) {
        ScopedSite site("ft:evolve");
        int lo, hi;
        slab(tid, &lo, &hi);
        std::vector<double> row(shape.row_elems());
        for (int k = lo; k < hi; ++k) {
          for (int j = 0; j < S; ++j) {
            gdata.read_block(shape.row_index(k, j), shape.row_elems(),
                             row.data());
            for (auto& x : row) x *= 0.9995;
            dex::compute(static_cast<VirtNs>(kFftNsPerElem / 4 * S));
            gdata.write_block(shape.row_index(k, j), shape.row_elems(),
                              row.data());
          }
        }
      });

      // Region cffts1: FFT along i — rows are contiguous, slab-local.
      team.run_region([&](int tid, int) {
        ScopedSite site("ft:cffts1");
        int lo, hi;
        slab(tid, &lo, &hi);
        std::vector<double> row(shape.row_elems());
        for (int k = lo; k < hi; ++k) {
          for (int j = 0; j < S; ++j) {
            gdata.read_block(shape.row_index(k, j), shape.row_elems(),
                             row.data());
            fft_line(row.data(), S);
            dex::compute(static_cast<VirtNs>(kFftNsPerElem * S));
            gdata.write_block(shape.row_index(k, j), shape.row_elems(),
                              row.data());
          }
        }
      });

      // Region cffts2: FFT along j — whole plane staged locally, slab-local.
      team.run_region([&](int tid, int) {
        ScopedSite site("ft:cffts2");
        int lo, hi;
        slab(tid, &lo, &hi);
        std::vector<double> plane(static_cast<std::size_t>(S) *
                                  shape.row_elems());
        std::vector<double> line(shape.row_elems());
        for (int k = lo; k < hi; ++k) {
          for (int j = 0; j < S; ++j) {
            gdata.read_block(shape.row_index(k, j), shape.row_elems(),
                             plane.data() +
                                 static_cast<std::size_t>(j) *
                                     shape.row_elems());
          }
          for (int i = 0; i < S; ++i) {
            for (int j = 0; j < S; ++j) {
              line[2 * static_cast<std::size_t>(j)] =
                  plane[static_cast<std::size_t>(j) * shape.row_elems() +
                        2 * static_cast<std::size_t>(i)];
              line[2 * static_cast<std::size_t>(j) + 1] =
                  plane[static_cast<std::size_t>(j) * shape.row_elems() +
                        2 * static_cast<std::size_t>(i) + 1];
            }
            fft_line(line.data(), S);
            for (int j = 0; j < S; ++j) {
              plane[static_cast<std::size_t>(j) * shape.row_elems() +
                    2 * static_cast<std::size_t>(i)] =
                  line[2 * static_cast<std::size_t>(j)];
              plane[static_cast<std::size_t>(j) * shape.row_elems() +
                    2 * static_cast<std::size_t>(i) + 1] =
                  line[2 * static_cast<std::size_t>(j) + 1];
            }
          }
          for (int j = 0; j < S; ++j) {
            dex::compute(static_cast<VirtNs>(kFftNsPerElem * S));
            gdata.write_block(shape.row_index(k, j), shape.row_elems(),
                              plane.data() +
                                  static_cast<std::size_t>(j) *
                                      shape.row_elems());
          }
        }
      });

      // Region cffts3: FFT along k — j-partition; gathers one row from
      // EVERY k-plane per (j, column): the all-to-all transpose.
      team.run_region([&](int tid, int) {
        ScopedSite site("ft:cffts3");
        int lo, hi;
        slab(tid, &lo, &hi);  // reused as the j-stripe
        std::vector<double> stack(static_cast<std::size_t>(S) *
                                  shape.row_elems());
        std::vector<double> line(shape.row_elems());
        for (int j = lo; j < hi; ++j) {
          for (int k = 0; k < S; ++k) {
            gdata.read_block(shape.row_index(k, j), shape.row_elems(),
                             stack.data() +
                                 static_cast<std::size_t>(k) *
                                     shape.row_elems());
          }
          for (int i = 0; i < S; ++i) {
            for (int k = 0; k < S; ++k) {
              line[2 * static_cast<std::size_t>(k)] =
                  stack[static_cast<std::size_t>(k) * shape.row_elems() +
                        2 * static_cast<std::size_t>(i)];
              line[2 * static_cast<std::size_t>(k) + 1] =
                  stack[static_cast<std::size_t>(k) * shape.row_elems() +
                        2 * static_cast<std::size_t>(i) + 1];
            }
            fft_line(line.data(), S);
            for (int k = 0; k < S; ++k) {
              stack[static_cast<std::size_t>(k) * shape.row_elems() +
                    2 * static_cast<std::size_t>(i)] =
                  line[2 * static_cast<std::size_t>(k)];
              stack[static_cast<std::size_t>(k) * shape.row_elems() +
                    2 * static_cast<std::size_t>(i) + 1] =
                  line[2 * static_cast<std::size_t>(k) + 1];
            }
          }
          for (int k = 0; k < S; ++k) {
            dex::compute(static_cast<VirtNs>(kFftNsPerElem * S));
            gdata.write_block(shape.row_index(k, j), shape.row_elems(),
                              stack.data() +
                                  static_cast<std::size_t>(k) *
                                      shape.row_elems());
          }
        }
      });

      // Region: checksum reduction. Initial flushes per plane; Optimized
      // stages per thread (§V-C's staged global updates).
      team.run_region([&](int tid, int) {
        ScopedSite site("ft:checksum");
        int lo, hi;
        slab(tid, &lo, &hi);
        std::vector<double> row(shape.row_elems());
        std::uint64_t local = 0;
        for (int k = lo; k < hi; ++k) {
          std::uint64_t plane_sum = 0;
          for (int j = 0; j < S; ++j) {
            gdata.read_block(shape.row_index(k, j), shape.row_elems(),
                             row.data());
            for (std::size_t i = 0; i < row.size(); i += 16) {
              plane_sum += static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(row[i] * kFix));
            }
          }
          if (config.variant == Variant::kInitial) {
            gchecksum.fetch_add(plane_sum);  // shared counter per plane
          } else {
            local += plane_sum;
          }
        }
        if (config.variant == Variant::kOptimized && local != 0) {
          gchecksum.fetch_add(local);
        }
        dex::compute(fft_cost_per_thread / 8);
      });
    }
    const VirtNs elapsed = dex::now() - t0;

    // ---- sequential reference (same region math, same order per line) ----
    for (int iter = 0; iter < kIterations; ++iter) {
      for (auto& x : ref) {
        // evolve applies only to populated elements; padding stays zero and
        // scaling zero is zero, so scaling everything is equivalent.
        x *= 0.9995;
      }
      std::vector<double> line(shape.row_elems());
      for (int k = 0; k < S; ++k) {  // cffts1
        for (int j = 0; j < S; ++j) {
          fft_line(ref.data() + shape.row_index(k, j), S);
        }
      }
      for (int k = 0; k < S; ++k) {  // cffts2
        for (int i = 0; i < S; ++i) {
          for (int j = 0; j < S; ++j) {
            line[2 * static_cast<std::size_t>(j)] =
                ref[shape.row_index(k, j) + 2 * static_cast<std::size_t>(i)];
            line[2 * static_cast<std::size_t>(j) + 1] =
                ref[shape.row_index(k, j) + 2 * static_cast<std::size_t>(i) +
                    1];
          }
          fft_line(line.data(), S);
          for (int j = 0; j < S; ++j) {
            ref[shape.row_index(k, j) + 2 * static_cast<std::size_t>(i)] =
                line[2 * static_cast<std::size_t>(j)];
            ref[shape.row_index(k, j) + 2 * static_cast<std::size_t>(i) +
                1] = line[2 * static_cast<std::size_t>(j) + 1];
          }
        }
      }
      for (int j = 0; j < S; ++j) {  // cffts3
        for (int i = 0; i < S; ++i) {
          for (int k = 0; k < S; ++k) {
            line[2 * static_cast<std::size_t>(k)] =
                ref[shape.row_index(k, j) + 2 * static_cast<std::size_t>(i)];
            line[2 * static_cast<std::size_t>(k) + 1] =
                ref[shape.row_index(k, j) + 2 * static_cast<std::size_t>(i) +
                    1];
          }
          fft_line(line.data(), S);
          for (int k = 0; k < S; ++k) {
            ref[shape.row_index(k, j) + 2 * static_cast<std::size_t>(i)] =
                line[2 * static_cast<std::size_t>(k)];
            ref[shape.row_index(k, j) + 2 * static_cast<std::size_t>(i) +
                1] = line[2 * static_cast<std::size_t>(k) + 1];
          }
        }
      }
      for (int k = 0; k < S; ++k) {  // checksum
        for (int j = 0; j < S; ++j) {
          const std::size_t base = shape.row_index(k, j);
          for (std::size_t i = 0; i < shape.row_elems(); i += 16) {
            reference_checksum_acc += static_cast<std::uint64_t>(
                static_cast<std::int64_t>(ref[base + i] * kFix));
          }
        }
      }
    }

    RunResult result;
    result.elapsed_ns = elapsed;
    result.checksum = gchecksum.load();
    result.verified = result.checksum == reference_checksum_acc;
    snapshot_stats(*process, result);
    return result;
  }
};

}  // namespace

App* ft_app() {
  static FtApp app;
  return &app;
}

}  // namespace dex::apps
