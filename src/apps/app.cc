#include "apps/app.h"

#include "common/assert.h"

namespace dex::apps {

// Defined in the per-application translation units.
App* grp_app();
App* kmn_app();
App* bt_app();
App* ep_app();
App* ft_app();
App* blk_app();
App* bfs_app();
App* bp_app();

const std::vector<App*>& all_apps() {
  static const std::vector<App*> apps = {
      grp_app(), kmn_app(), bt_app(), ep_app(),
      ft_app(),  blk_app(), bfs_app(), bp_app(),
  };
  return apps;
}

App* find_app(const std::string& name) {
  for (App* app : all_apps()) {
    if (app->name() == name) return app;
  }
  return nullptr;
}

RunResult run_app(App& app, const RunConfig& config,
                  const core::ClusterConfig& base) {
  core::ClusterConfig cluster_config = base;
  cluster_config.num_nodes = config.nodes;
  core::Cluster cluster(cluster_config);
  return app.run(cluster, config);
}

void snapshot_stats(core::Process& process, RunResult& result) {
  auto& stats = process.dsm().stats();
  result.faults = stats.total_faults();
  result.remote_faults = stats.remote_faults.load();
  result.invalidations = stats.invalidations.load();
  result.retries = stats.retries.load();
  result.messages = process.cluster().fabric().total_messages();
  result.dir_lock_contention = process.dsm().directory().lock_contention();
  result.latch_restarts = stats.latch_restarts.load();
  result.latch_upgrades = stats.latch_upgrades.load();
  result.fault_table_contention = stats.fault_table_contention.load();
  result.home_migrations = stats.home_migrations.load();
  result.home_hint_hits = stats.home_hint_hits.load();
  result.home_chases = stats.home_chases.load();
  const int nodes = process.cluster().num_nodes();
  result.faults_by_home.assign(static_cast<std::size_t>(nodes), 0);
  for (int n = 0; n < nodes; ++n) {
    result.faults_by_home[static_cast<std::size_t>(n)] =
        stats.faults_by_home[static_cast<std::size_t>(n)].load();
  }
  result.lease_renewals = stats.lease_renewals.load();
  result.writebacks_piggybacked = stats.writebacks_piggybacked.load();
  result.lease_recalls = stats.lease_recalls.load();
  auto& failure = process.dsm().failure_stats();
  result.pages_recovered = failure.pages_recovered.load();
  result.dirty_pages_lost = failure.dirty_pages_lost.load();
  result.threads_restarted = failure.threads_restarted.load();
  result.frame_budget_bytes = process.dsm().config().frame_budget_bytes;
  result.frame_high_water_bytes = process.dsm().frame_high_water_bytes();
  result.evictions_shared = stats.evictions_shared.load();
  result.evictions_exclusive = stats.evictions_exclusive.load();
  result.evictions_local = stats.evictions_local.load();
  result.spills_out = stats.spills_out.load();
  result.spills_in = stats.spills_in.load();
  result.backpressure_stalls = stats.backpressure_stalls.load();
  result.backpressure_overshoots = stats.backpressure_overshoots.load();
  result.journal_bytes = stats.journal_bytes.load();
  result.journal_gcs = stats.journal_gcs.load();
  result.engine_submitted = stats.engine_submitted.load();
  result.engine_resumes = stats.engine_resumes.load();
  result.async_completions = stats.async_completions.load();
  result.engine_depth_peak = stats.engine_depth_peak.load();
  result.engine_depth_sum = stats.engine_depth_sum.load();
  result.engine_depth_samples = stats.engine_depth_samples.load();
  result.engine_pump_handoffs = stats.engine_pump_handoffs.load();
  result.doorbell_batches = stats.doorbell_batches.load();
  result.batched_posts = stats.batched_posts.load();
  result.thread_migrations_auto = stats.thread_migrations_auto.load();
  result.placement_windows = stats.placement_windows.load();
  result.placement_vetoes = stats.placement_vetoes.load();
  result.placement_deferrals = stats.placement_deferrals.load();
  result.placement_arbitrations = stats.placement_arbitrations.load();
  result.placement_hints_warmed = stats.placement_hints_warmed.load();
  result.origin_failovers = failure.origin_failovers.load();
  result.dir_mutations_replicated = stats.dir_mutations_replicated.load();
  result.replication_batches = stats.replication_batches.load();
  result.replica_journal_pages = stats.replica_journal_pages.load();
  result.scavenge_pages_rebuilt = stats.scavenge_pages_rebuilt.load();
  result.replication_lag = stats.replication_lag.load();
  if (process.trace().enabled()) {
    result.trace = process.trace().snapshot();
  }
}

}  // namespace dex::apps
