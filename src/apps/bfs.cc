// BFS — breadth-first search from Polymer (§V, NUMA-aware category).
//
// Level-synchronous BFS over the R-MAT graph. Discovery writes dist[w] for
// arbitrary destination vertices, so writes scatter across every node's
// partition — page-granularity DSM's hard case. The paper's BFS does not
// beat single-machine performance even after optimization, but the
// optimized port improves substantially.
//
// Initial port: a single shared next-frontier bitmap that every node ORs
// into bit by bit, per-discovery writes of dist[w] to arbitrary partitions,
// and a shared discovered-counter bumped on every discovery (the global
// flag pattern of SV-C).
// Optimized (Polymer-style): visited checks go through a compact bitmap
// that is re-replicated once per level; discoveries are staged per thread
// and merged with whole-word ORs; dist[] and the visited bitmap are written
// only by each vertex stripe's owner at the end of the level, so those
// writes stay partition-local. BFS still does not beat single-machine
// performance (the frontier pages and per-level re-replication dominate
// the shrinking per-level work), matching the paper.
#include <vector>

#include "apps/app.h"
#include "apps/graph.h"
#include "core/sync.h"

namespace dex::apps {
namespace {

constexpr double kEdgeNs = 60.0;  // pointer-chasing random access
constexpr std::uint32_t kInf = 0xffffffffu;

/// Sequential reference BFS: returns the dist-array checksum.
std::uint64_t reference_bfs(const Csr& csr, std::uint32_t source) {
  std::vector<std::uint32_t> dist(csr.num_vertices, kInf);
  std::vector<std::uint32_t> frontier{source};
  dist[source] = 0;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    std::vector<std::uint32_t> next;
    for (const std::uint32_t v : frontier) {
      for (std::uint64_t e = csr.offsets[v]; e < csr.offsets[v + 1]; ++e) {
        const std::uint32_t w = csr.targets[e];
        if (dist[w] == kInf) {
          dist[w] = level + 1;
          next.push_back(w);
        }
      }
    }
    frontier = std::move(next);
    ++level;
  }
  std::uint64_t checksum = 0;
  for (const std::uint32_t d : dist) {
    checksum = checksum * 1000003 + (d == kInf ? 0 : d + 1);
  }
  return checksum;
}

class BfsApp final : public App {
 public:
  std::string name() const override { return "BFS"; }
  std::string description() const override {
    return "Polymer breadth-first search on an R-MAT graph";
  }
  LocInfo loc() const override {
    return LocInfo{"Pthread", 0, /*paper_initial=*/12,
                   /*paper_optimized=*/36, /*ours_initial=*/10,
                   /*ours_optimized=*/30};
  }
  double stream_intensity(const RunConfig&) const override { return 0.50; }

  RunResult run(core::Cluster& cluster, const RunConfig& config) override {
    const Csr csr = make_polymer_graph(config.scale, config.seed);
    const std::uint32_t V = csr.num_vertices;
    // Deterministic non-isolated source.
    std::uint32_t source = 0;
    while (source + 1 < V && csr.degree(source) == 0) ++source;

    ProcessOptions popt = process_options(config);
    auto process = cluster.create_process(popt);
    if (config.trace_faults) process->trace().enable();

    DexGraph graph = DexGraph::build(*process, csr);
    GArray<std::uint32_t> dist(*process, V, "bfs:dist");
    dist.fill(kInf);
    dist.set(source, 0);

    const std::size_t words = (V + 63) / 64;
    GArray<std::uint64_t> cur_frontier(*process, words, "bfs:frontier");
    GArray<std::uint64_t> next_frontier(*process, words, "bfs:next");
    cur_frontier.set(source / 64, std::uint64_t{1} << (source % 64));
    GCounter discovered(*process, "bfs:discovered");

    core::TeamOptions topt;
    topt.nodes = config.nodes;
    topt.threads_per_node = config.threads_per_node;
    topt.migrate = config.migrate;
    const int nthreads = topt.total_threads();
    DexBarrier barrier(*process, nthreads);

    auto atomic_or = [&](GAddr addr, std::uint64_t bits) {
      for (;;) {
        const std::uint64_t old = process->atomic_load(addr);
        if ((old | bits) == old) return;
        if (process->atomic_cas(addr, old, old | bits)) return;
      }
    };

    // Optimized: accumulated visited bitmap (checked during the edge loop,
    // updated stripe-locally at level end).
    GArray<std::uint64_t> visited(*process, words, "bfs:visited");
    visited.set(source / 64, std::uint64_t{1} << (source % 64));

    // ---- measured phase: one pthread region over all levels ----
    ScopedPacing pace_scope(config.pacing);
    const VirtNs t0 = dex::now();
    run_team(*process, topt, [&](int tid, int) {
      const std::size_t word_chunk =
          (words + static_cast<std::size_t>(nthreads) - 1) /
          static_cast<std::size_t>(nthreads);
      const std::size_t wlo = std::min(
          words, word_chunk * static_cast<std::size_t>(tid));
      const std::size_t whi = std::min(words, wlo + word_chunk);

      std::vector<std::uint64_t> frontier_words(whi > wlo ? whi - wlo : 0);
      std::vector<std::uint64_t> visited_cache(
          config.variant == Variant::kOptimized ? words : 0);
      std::uint32_t level = 0;
      for (;;) {
        std::uint64_t local_discovered = 0;
        std::vector<std::pair<std::size_t, std::uint64_t>> staged;
        {
          ScopedSite site("bfs:edge_loop");
          if (!frontier_words.empty()) {
            cur_frontier.read_block(wlo, frontier_words.size(),
                                    frontier_words.data());
          }
          if (config.variant == Variant::kOptimized) {
            // One bulk refresh of the visited bitmap per level.
            visited.read_block(0, words, visited_cache.data());
          }
          for (std::size_t w = 0; w < frontier_words.size(); ++w) {
            std::uint64_t bits = frontier_words[w];
            while (bits != 0) {
              const int bit = __builtin_ctzll(bits);
              bits &= bits - 1;
              const auto v = static_cast<std::uint32_t>(
                  (wlo + w) * 64 + static_cast<std::size_t>(bit));
              if (v >= V) continue;
              const std::uint64_t e0 = graph.offsets.get(v);
              const std::uint64_t e1 = graph.offsets.get(v + 1);
              dex::compute(static_cast<VirtNs>(
                  kEdgeNs * static_cast<double>(e1 - e0 + 1)));
              for (std::uint64_t e = e0; e < e1; ++e) {
                const std::uint32_t dst = graph.targets.get(e);
                const std::size_t dw = dst / 64;
                const std::uint64_t dbit = std::uint64_t{1} << (dst % 64);
                if (config.variant == Variant::kInitial) {
                  // Original: check + write dist and the shared bitmap and
                  // bump the shared counter on every discovery.
                  if (dist.get(dst) != kInf) continue;
                  dist.set(dst, level + 1);
                  atomic_or(next_frontier.addr(dw), dbit);
                  discovered.fetch_add(1);
                } else {
                  if (visited_cache[dw] & dbit) continue;
                  staged.emplace_back(dw, dbit);
                }
              }
            }
          }
        }
        if (config.variant == Variant::kOptimized) {
          // Merge staged discoveries: coalesce per word, then one OR each.
          ScopedSite site("bfs:merge_frontier");
          std::sort(staged.begin(), staged.end());
          std::size_t i = 0;
          while (i < staged.size()) {
            std::uint64_t bits = 0;
            const std::size_t w = staged[i].first;
            while (i < staged.size() && staged[i].first == w) {
              bits |= staged[i].second;
              ++i;
            }
            atomic_or(next_frontier.addr(w), bits);
          }
        }

        barrier.wait();  // all discoveries merged

        if (config.variant == Variant::kOptimized) {
          // Stripe owners claim the new vertices: dist and visited writes
          // are partition-local (the SIV "per-node data" discipline).
          ScopedSite site("bfs:claim_stripe");
          for (std::size_t w = wlo; w < whi; ++w) {
            const std::uint64_t new_bits =
                next_frontier.get(w) & ~visited.get(w);
            if (new_bits == 0) continue;
            std::uint64_t bits = new_bits;
            while (bits != 0) {
              const int bit = __builtin_ctzll(bits);
              bits &= bits - 1;
              const auto v = static_cast<std::uint32_t>(
                  w * 64 + static_cast<std::size_t>(bit));
              if (v < V) dist.set(v, level + 1);
            }
            visited.set(w, visited.get(w) | new_bits);
            local_discovered += static_cast<std::uint64_t>(
                __builtin_popcountll(new_bits));
          }
          if (local_discovered != 0) discovered.fetch_add(local_discovered);
        }

        barrier.wait();  // counts final
        const bool done = discovered.load() == 0;
        barrier.wait();
        if (done) break;
        // Advance to the next level: swap bitmaps (thread-striped).
        {
          ScopedSite site("bfs:advance_level");
          for (std::size_t w = wlo; w < whi; ++w) {
            cur_frontier.set(w, next_frontier.get(w));
            next_frontier.set(w, 0);
          }
          if (tid == 0) discovered.store(0);
        }
        barrier.wait();
        ++level;
      }
    });
    const VirtNs elapsed = dex::now() - t0;

    // ---- verification ----
    std::uint64_t checksum = 0;
    std::vector<std::uint32_t> got(V);
    dist.read_block(0, V, got.data());
    for (const std::uint32_t d : got) {
      checksum = checksum * 1000003 + (d == kInf ? 0 : d + 1);
    }

    RunResult result;
    result.elapsed_ns = elapsed;
    result.checksum = checksum;
    result.verified = checksum == reference_bfs(csr, source);
    snapshot_stats(*process, result);
    return result;
  }
};

}  // namespace

App* bfs_app() {
  static BfsApp app;
  return &app;
}

}  // namespace dex::apps
