// KMN — k-means clustering (§V, "Simple" category).
//
// Finds k centers of N points in 3-D by Lloyd iterations. The paper runs
// 100 centers over 5 million points; the library default is scaled down but
// keeps the structure: an assignment pass (read points, pick the nearest
// center) and an update pass (recompute centers), repeated until no point
// changes cluster or the iteration cap is hit.
//
// Initial port: per-point atomic accumulation into the shared new-center
// arrays and a shared "changed" flag written on every reassignment — the
// §V-C global-variable interference pattern — plus packed thread args and
// per-thread scratch from plain malloc.
// Optimized: thread-local accumulators merged once per iteration under a
// mutex, locally staged change flags, page-aligned args.
#include <cmath>
#include <vector>

#include "apps/app.h"
#include "common/rand.h"
#include "core/sync.h"

namespace dex::apps {
namespace {

constexpr int kClusters = 100;
constexpr int kMaxIterations = 8;
constexpr double kDistanceNsPerCenter = 3.0;  // 3-D distance + compare

struct Point {
  double x, y, z;
};

struct KmnArgs {
  std::uint64_t begin;
  std::uint64_t end;
};

// Fixed-point accumulation (doubles scaled by 2^20, truncated per point) so
// sums are exact integers: every execution order — sequential reference,
// Initial's shared atomics, Optimized's staged merge — yields bit-identical
// centers and therefore identical assignments.
constexpr double kFix = 1048576.0;
inline std::uint64_t to_fix(double v) {
  return static_cast<std::uint64_t>(static_cast<std::int64_t>(v * kFix));
}
inline double from_fix(std::uint64_t v) {
  return static_cast<double>(static_cast<std::int64_t>(v)) / kFix;
}

/// Sequential reference: returns final assignment checksum.
std::uint64_t reference_kmeans(const std::vector<Point>& points,
                               std::vector<Point> centers) {
  std::vector<int> assign(points.size(), -1);
  for (int iter = 0; iter < kMaxIterations; ++iter) {
    bool changed = false;
    std::vector<std::uint64_t> sums(kClusters * 3, 0);
    std::vector<std::uint64_t> counts(kClusters, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      int best = 0;
      double best_d = 1e300;
      for (int c = 0; c < kClusters; ++c) {
        const double dx = p.x - centers[static_cast<std::size_t>(c)].x;
        const double dy = p.y - centers[static_cast<std::size_t>(c)].y;
        const double dz = p.z - centers[static_cast<std::size_t>(c)].z;
        const double d = dx * dx + dy * dy + dz * dz;
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (assign[i] != best) {
        assign[i] = best;
        changed = true;
      }
      const auto ci = static_cast<std::size_t>(best);
      sums[ci * 3 + 0] += to_fix(p.x);
      sums[ci * 3 + 1] += to_fix(p.y);
      sums[ci * 3 + 2] += to_fix(p.z);
      ++counts[ci];
    }
    for (int c = 0; c < kClusters; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      if (counts[ci] > 0) {
        const auto n = static_cast<double>(counts[ci]);
        centers[ci] = Point{from_fix(sums[ci * 3 + 0]) / n,
                            from_fix(sums[ci * 3 + 1]) / n,
                            from_fix(sums[ci * 3 + 2]) / n};
      }
    }
    if (!changed) break;
  }
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < assign.size(); ++i) {
    checksum = checksum * 1000003 +
               static_cast<std::uint64_t>(assign[i] + 1);
  }
  return checksum;
}

class KmnApp final : public App {
 public:
  std::string name() const override { return "KMN"; }
  std::string description() const override {
    return "k-means clustering of 3-D points";
  }
  LocInfo loc() const override {
    return LocInfo{"Pthread", 0, /*paper_initial=*/2, /*paper_optimized=*/38,
                   /*ours_initial=*/2, /*ours_optimized=*/34};
  }
  double stream_intensity(const RunConfig&) const override { return 0.25; }

  RunResult run(core::Cluster& cluster, const RunConfig& config) override {
    const auto num_points =
        static_cast<std::size_t>(config.scale * 100000.0);

    // Deterministic input.
    std::vector<Point> host_points(num_points);
    std::vector<Point> host_centers(kClusters);
    Xoshiro256 rng(config.seed);
    for (auto& p : host_points) {
      p = Point{rng.next_double() * 100, rng.next_double() * 100,
                rng.next_double() * 100};
    }
    for (auto& c : host_centers) {
      c = Point{rng.next_double() * 100, rng.next_double() * 100,
                rng.next_double() * 100};
    }

    ProcessOptions popt = process_options(config);
    auto process = cluster.create_process(popt);
    if (config.trace_faults) process->trace().enable();

    // ---- setup at the origin ----
    GArray<Point> points(*process, num_points, "kmn:points");
    points.write_block(0, num_points, host_points.data());
    GArray<Point> centers(*process, kClusters, "kmn:centers");
    centers.write_block(0, kClusters, host_centers.data());
    GArray<int> assignment(*process, num_points, "kmn:assignment");
    assignment.fill(-1);

    // Shared accumulators: the Initial variant's per-point atomic targets.
    GArray<std::uint64_t> gsums(*process, kClusters * 3, "kmn:sums");
    GArray<std::uint64_t> gcounts(*process, kClusters, "kmn:counts");
    GCounter changed_flag(*process, "kmn:changed");

    core::TeamOptions topt;
    topt.nodes = config.nodes;
    topt.threads_per_node = config.threads_per_node;
    topt.migrate = config.migrate;
    const int nthreads = topt.total_threads();

    ArgsBlock args(*process, nthreads, sizeof(KmnArgs), config.variant,
                   "kmn:args");
    const std::uint64_t chunk =
        (num_points + static_cast<std::size_t>(nthreads) - 1) /
        static_cast<std::size_t>(nthreads);
    for (int tid = 0; tid < nthreads; ++tid) {
      KmnArgs a;
      a.begin = std::min<std::uint64_t>(
          chunk * static_cast<std::uint64_t>(tid), num_points);
      a.end = std::min<std::uint64_t>(a.begin + chunk, num_points);
      args.set(tid, a);
    }

    DexBarrier barrier(*process, nthreads);

    // Optimized variant: per-thread, page-isolated staging blocks
    // ([changed, counts[k], sums[3k]] as fixed-point words). Threads write
    // only their own block; thread 0 reduces them once per iteration —
    // the paper's "per-node data" recipe (SIV-A).
    constexpr std::size_t kStageWords =
        1 + kClusters + static_cast<std::size_t>(kClusters) * 3;
    std::vector<GAddr> staging;
    if (config.variant == Variant::kOptimized) {
      for (int t = 0; t < nthreads; ++t) {
        staging.push_back(process->g_memalign(kPageSize, kStageWords * 8,
                                              "kmn:staging"));
      }
    }
    GCounter run_flag(*process, "kmn:run_flag");

    // ---- measured phase: one long pthread region over all iterations ----
    ScopedPacing pace_scope(config.pacing);
    const VirtNs t0 = dex::now();
    run_team(*process, topt, [&](int tid, int) {
      const KmnArgs a = args.get<KmnArgs>(tid);
      std::vector<Point> center_cache(kClusters);
      std::vector<Point> local_pts(1024);
      std::vector<std::uint64_t> stage(kStageWords);

      for (int iter = 0; iter < kMaxIterations; ++iter) {
        // Phase 1: read the (possibly updated) centers.
        {
          ScopedSite site("kmn:load_centers");
          centers.read_block(0, kClusters, center_cache.data());
        }
        std::fill(stage.begin(), stage.end(), 0);
        bool local_changed = false;

        {
          ScopedSite site("kmn:assign_loop");
          for (std::uint64_t base = a.begin; base < a.end;
               base += local_pts.size()) {
            const std::size_t n = std::min<std::uint64_t>(
                local_pts.size(), a.end - base);
            points.read_block(base, n, local_pts.data());
            for (std::size_t i = 0; i < n; ++i) {
              // Charge the distance computation per point so the Initial
              // port's shared-array updates are spread over the pass.
              dex::compute(
                  static_cast<VirtNs>(kDistanceNsPerCenter * kClusters));
              const Point& p = local_pts[i];
              int best = 0;
              double best_d = 1e300;
              for (int c = 0; c < kClusters; ++c) {
                const double dx = p.x - center_cache[
                    static_cast<std::size_t>(c)].x;
                const double dy = p.y - center_cache[
                    static_cast<std::size_t>(c)].y;
                const double dz = p.z - center_cache[
                    static_cast<std::size_t>(c)].z;
                const double d = dx * dx + dy * dy + dz * dz;
                if (d < best_d) {
                  best_d = d;
                  best = c;
                }
              }
              const std::uint64_t idx = base + i;
              if (assignment.get(idx) != best) {
                assignment.set(idx, best);
                if (config.variant == Variant::kInitial) {
                  // Original: set the shared flag on every reassignment.
                  changed_flag.store(1);
                } else {
                  local_changed = true;
                }
              }
              const auto c = static_cast<std::size_t>(best);
              if (config.variant == Variant::kInitial) {
                // Original: accumulate straight into the shared arrays
                // (atomically — as the pthread original does with a CAS
                // loop; exact thanks to fixed-point).
                process->atomic_fetch_add(gsums.addr(c * 3 + 0),
                                          to_fix(p.x));
                process->atomic_fetch_add(gsums.addr(c * 3 + 1),
                                          to_fix(p.y));
                process->atomic_fetch_add(gsums.addr(c * 3 + 2),
                                          to_fix(p.z));
                process->atomic_fetch_add(gcounts.addr(c), 1);
              } else {
                ++stage[1 + c];
                stage[1 + kClusters + c * 3 + 0] += to_fix(p.x);
                stage[1 + kClusters + c * 3 + 1] += to_fix(p.y);
                stage[1 + kClusters + c * 3 + 2] += to_fix(p.z);
              }
            }
          }
        }

        if (config.variant == Variant::kOptimized) {
          // One write to the thread's own page-isolated staging block.
          ScopedSite site("kmn:merge");
          stage[0] = local_changed ? 1 : 0;
          process->write(staging[static_cast<std::size_t>(tid)],
                         stage.data(), kStageWords * 8);
        }

        barrier.wait();  // all contributions visible

        // Thread 0 reduces, recomputes the centers and publishes whether
        // another iteration is needed.
        if (tid == 0) {
          ScopedSite site("kmn:update_centers");
          bool any_changed = false;
          std::vector<std::uint64_t> sums(kClusters * 3, 0);
          std::vector<std::uint64_t> counts(kClusters, 0);
          if (config.variant == Variant::kOptimized) {
            std::vector<std::uint64_t> remote_stage(kStageWords);
            for (int t = 0; t < nthreads; ++t) {
              process->read(staging[static_cast<std::size_t>(t)],
                            remote_stage.data(), kStageWords * 8);
              any_changed |= remote_stage[0] != 0;
              for (int c = 0; c < kClusters; ++c) {
                const auto ci = static_cast<std::size_t>(c);
                counts[ci] += remote_stage[1 + ci];
                for (int d = 0; d < 3; ++d) {
                  sums[ci * 3 + static_cast<std::size_t>(d)] +=
                      remote_stage[1 + kClusters + ci * 3 +
                                   static_cast<std::size_t>(d)];
                }
              }
            }
          } else {
            any_changed = changed_flag.load() != 0;
            for (int c = 0; c < kClusters; ++c) {
              const auto ci = static_cast<std::size_t>(c);
              counts[ci] = process->atomic_load(gcounts.addr(ci));
              sums[ci * 3 + 0] = process->atomic_load(gsums.addr(ci * 3));
              sums[ci * 3 + 1] =
                  process->atomic_load(gsums.addr(ci * 3 + 1));
              sums[ci * 3 + 2] =
                  process->atomic_load(gsums.addr(ci * 3 + 2));
              process->atomic_store(gcounts.addr(ci), 0);
              process->atomic_store(gsums.addr(ci * 3 + 0), 0);
              process->atomic_store(gsums.addr(ci * 3 + 1), 0);
              process->atomic_store(gsums.addr(ci * 3 + 2), 0);
            }
            changed_flag.store(0);
          }
          for (int c = 0; c < kClusters; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            if (counts[ci] > 0) {
              const auto n = static_cast<double>(counts[ci]);
              centers.set(ci, Point{from_fix(sums[ci * 3 + 0]) / n,
                                    from_fix(sums[ci * 3 + 1]) / n,
                                    from_fix(sums[ci * 3 + 2]) / n});
            }
          }
          run_flag.store(any_changed ? 1 : 0);
          dex::compute(kClusters * 20);
        }
        barrier.wait();  // centers + run_flag published
        if (run_flag.load() == 0) break;
      }
    });
    const VirtNs elapsed = dex::now() - t0;

    // ---- verification ----
    RunResult result;
    result.elapsed_ns = elapsed;
    std::uint64_t checksum = 0;
    for (std::size_t i = 0; i < num_points; ++i) {
      checksum = checksum * 1000003 +
                 static_cast<std::uint64_t>(assignment.get(i) + 1);
    }
    result.checksum = checksum;
    result.verified = checksum == reference_kmeans(host_points, host_centers);
    snapshot_stats(*process, result);
    return result;
  }
};

}  // namespace

App* kmn_app() {
  static KmnApp app;
  return &app;
}

}  // namespace dex::apps
