#include "core/sync.h"

#include "common/assert.h"

namespace dex::core {

// ---------------------------------------------------------------------------
// DexMutex
// ---------------------------------------------------------------------------

DexMutex::DexMutex(Process& process, const std::string& tag)
    : process_(&process), word_(process.g_malloc(sizeof(std::uint64_t), tag)) {
  DEX_CHECK(word_ != kNullGAddr);
  process.atomic_store(word_, 0);
}

void DexMutex::lock() {
  // Fast path: uncontended acquire.
  if (process_->atomic_cas(word_, 0, 1)) {
    vclock::observe(release_ts_.now());
    return;
  }
  // Slow path: advertise contention and sleep on the futex.
  for (;;) {
    if (process_->atomic_cas(word_, 1, 2) ||
        process_->atomic_load(word_) == 2) {
      process_->futex_wait(word_, 2);
    }
    if (process_->atomic_cas(word_, 0, 2)) break;
  }
  vclock::observe(release_ts_.now());
}

bool DexMutex::try_lock() {
  if (process_->atomic_cas(word_, 0, 1)) {
    vclock::observe(release_ts_.now());
    return true;
  }
  return false;
}

void DexMutex::unlock() {
  release_ts_.observe(vclock::now());
  const std::uint64_t old = process_->atomic_exchange(word_, 0);
  DEX_CHECK_MSG(old != 0, "unlock of unlocked DexMutex");
  if (old == 2) process_->futex_wake(word_, 1);
}

// ---------------------------------------------------------------------------
// DexBarrier
// ---------------------------------------------------------------------------

DexBarrier::DexBarrier(Process& process, int participants,
                       const std::string& tag)
    : process_(&process), participants_(participants) {
  DEX_CHECK(participants >= 1);
  // Both words on one (page-aligned) allocation: barrier state is shared by
  // design, so page locality is intentional.
  const GAddr base = process.g_memalign(kPageSize, 2 * sizeof(std::uint64_t),
                                        tag);
  DEX_CHECK(base != kNullGAddr);
  count_addr_ = base;
  seq_addr_ = base + sizeof(std::uint64_t);
  process.atomic_store(count_addr_, 0);
  process.atomic_store(seq_addr_, 0);
}

bool DexBarrier::wait() {
  // Contribute this thread's time to the round's release timestamp.
  release_ts_.observe(vclock::now());

  const std::uint64_t seq = process_->atomic_load(seq_addr_);
  const std::uint64_t arrived =
      process_->atomic_fetch_add(count_addr_, 1) + 1;
  if (arrived == static_cast<std::uint64_t>(participants_)) {
    // Serial thread: reset and release the round.
    process_->atomic_store(count_addr_, 0);
    process_->atomic_fetch_add(seq_addr_, 1);
    process_->futex_wake(seq_addr_, INT_MAX);
    vclock::observe(release_ts_.now());
    return true;
  }
  while (process_->atomic_load(seq_addr_) == seq) {
    process_->futex_wait(seq_addr_, seq);
  }
  vclock::observe(release_ts_.now());
  return false;
}

// ---------------------------------------------------------------------------
// DexCondVar
// ---------------------------------------------------------------------------

DexCondVar::DexCondVar(Process& process, const std::string& tag)
    : process_(&process),
      seq_addr_(process.g_malloc(sizeof(std::uint64_t), tag)) {
  DEX_CHECK(seq_addr_ != kNullGAddr);
  process.atomic_store(seq_addr_, 0);
}

void DexCondVar::wait(DexMutex& mutex) {
  const std::uint64_t seq = process_->atomic_load(seq_addr_);
  mutex.unlock();
  process_->futex_wait(seq_addr_, seq);
  vclock::observe(release_ts_.now());
  mutex.lock();
}

void DexCondVar::notify_one() {
  release_ts_.observe(vclock::now());
  process_->atomic_fetch_add(seq_addr_, 1);
  process_->futex_wake(seq_addr_, 1);
}

void DexCondVar::notify_all() {
  release_ts_.observe(vclock::now());
  process_->atomic_fetch_add(seq_addr_, 1);
  process_->futex_wake(seq_addr_, INT_MAX);
}

}  // namespace dex::core
