// Thread-local execution context of a DeX thread.
//
// In the kernel, a migrated thread's identity (its pt_regs, mm, node) is
// carried by task_struct; here every OS thread participating in a DeX
// process carries a ThreadContext: which process it belongs to, which node
// it is currently executing on, its task id, and its virtual clock. The
// public API reads this context implicitly, so application code looks like
// ordinary shared-memory code plus migrate() calls.
#pragma once

#include "common/types.h"
#include "common/virtual_clock.h"

namespace dex::core {

class Process;

struct ThreadContext {
  Process* process = nullptr;
  NodeId node = 0;
  TaskId task = 0;
  VirtualClock* clock = nullptr;
};

/// Returns the calling thread's context (null fields when the thread is not
/// part of a DeX process).
ThreadContext& tls_context();

/// RAII: binds `ctx` (and its clock) to the calling OS thread.
class ScopedContext {
 public:
  explicit ScopedContext(const ThreadContext& ctx)
      : saved_(tls_context()), clock_binding_(ctx.clock) {
    tls_context() = ctx;
  }
  ~ScopedContext() { tls_context() = saved_; }
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  ThreadContext saved_;
  ScopedClockBinding clock_binding_;
};

}  // namespace dex::core
