#include "core/parallel.h"

#include <vector>

#include "common/assert.h"
#include "common/time_gate.h"
#include "common/virtual_clock.h"

namespace dex::core {

VirtNs run_team(Process& process, const TeamOptions& options,
                const std::function<void(int tid, int nthreads)>& body) {
  DEX_CHECK(options.nodes >= 1 && options.threads_per_node >= 1);
  const int nthreads = options.total_threads();
  const VirtNs start = vclock::now();

  std::vector<DexThread> workers;
  workers.reserve(static_cast<std::size_t>(nthreads));
  for (int tid = 0; tid < nthreads; ++tid) {
    const NodeId node = options.node_of(tid);
    workers.push_back(process.spawn([&process, &options, &body, tid,
                                     nthreads, node] {
      if (options.migrate && node != tls_context().node) {
        process.migrate(node);
      }
      body(tid, nthreads);
      if (options.migrate) process.migrate_back();
    }));
  }

  VirtNs finish = start;
  for (auto& worker : workers) {
    worker.join();
    finish = std::max(finish, worker.final_clock());
  }
  return finish - start;
}

VirtNs parallel_for(
    Process& process, const TeamOptions& options, std::uint64_t begin,
    std::uint64_t end,
    const std::function<void(std::uint64_t lo, std::uint64_t hi, int tid)>&
        body) {
  const std::uint64_t n = end > begin ? end - begin : 0;
  const auto nthreads = static_cast<std::uint64_t>(options.total_threads());
  return run_team(process, options, [&](int tid, int total) {
    (void)total;
    const std::uint64_t chunk = (n + nthreads - 1) / nthreads;
    const std::uint64_t lo = begin + chunk * static_cast<std::uint64_t>(tid);
    const std::uint64_t hi = std::min(end, lo + chunk);
    if (lo < hi) body(lo, hi, tid);
  });
}

// ---------------------------------------------------------------------------
// Team
// ---------------------------------------------------------------------------

namespace {
/// Dispatch cost of waking a docked OpenMP worker for a region.
constexpr VirtNs kRegionDispatchNs = 1500;
}  // namespace

Team::Team(Process& process, const TeamOptions& options)
    : process_(process), options_(options) {
  const int n = options.total_threads();
  workers_.reserve(static_cast<std::size_t>(n));
  for (int tid = 0; tid < n; ++tid) {
    workers_.push_back(process_.spawn([this, tid] { worker_loop(tid); }));
  }
}

Team::~Team() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    ++generation_;
  }
  start_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void Team::worker_loop(int tid) {
  const NodeId node = options_.node_of(tid);
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int, int)>* body = nullptr;
    VirtNs start_ts = 0;
    {
      ScopedGateBlock gate_block("team_dock");
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return generation_ > seen_generation; });
      seen_generation = generation_;
      if (shutdown_) return;
      body = body_;
      start_ts = region_start_ts_;
    }
    // The worker resumes at the region's fork point.
    vclock::observe(start_ts);
    vclock::advance(kRegionDispatchNs);

    if (options_.migrate && node != tls_context().node) {
      process_.migrate(node);
    }
    (*body)(tid, options_.total_threads());
    if (options_.migrate) process_.migrate_back();

    region_end_ts_.observe(vclock::now());
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++done_count_;
    }
    done_cv_.notify_one();
  }
}

VirtNs Team::run_region(const std::function<void(int, int)>& body) {
  const VirtNs start = vclock::now();
  // The pool may have been spawned before the time gate was enabled
  // (teams outlive experiment scopes): (re-)register every worker so none
  // can burst ahead while its siblings are still waking up.
  for (auto& worker : workers_) {
    TimeGate::instance().add(worker.clock());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    region_start_ts_ = start;
    region_end_ts_.reset(start);
    done_count_ = 0;
    ++generation_;
  }
  start_cv_.notify_all();
  {
    ScopedGateBlock gate_block("team_join");
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock,
                  [&] { return done_count_ == options_.total_threads(); });
  }
  // Join: the master resumes when the slowest worker is done.
  vclock::observe(region_end_ts_.now());
  return vclock::now() - start;
}

VirtNs Team::for_region(
    std::uint64_t begin, std::uint64_t end,
    const std::function<void(std::uint64_t lo, std::uint64_t hi, int tid)>&
        body) {
  const std::uint64_t n = end > begin ? end - begin : 0;
  const auto nthreads = static_cast<std::uint64_t>(options_.total_threads());
  return run_region([&](int tid, int total) {
    (void)total;
    const std::uint64_t chunk = (n + nthreads - 1) / nthreads;
    const std::uint64_t lo = begin + chunk * static_cast<std::uint64_t>(tid);
    const std::uint64_t hi = std::min(end, lo + chunk);
    if (lo < hi) body(lo, hi, tid);
  });
}

}  // namespace dex::core
