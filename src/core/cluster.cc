#include "core/cluster.h"

#include "common/assert.h"
#include "core/process.h"

namespace dex::core {

using net::Message;
using net::MsgType;

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  DEX_CHECK(config.num_nodes >= 1 && config.num_nodes <= mem::kMaxNodes);
  net::FabricOptions options;
  options.num_nodes = config.num_nodes;
  options.cost = config.cost;
  options.mode = config.mode;
  options.connection = config.connection;
  fabric_ = std::make_unique<net::Fabric>(options);
  install_handlers();
}

Cluster::~Cluster() = default;

std::unique_ptr<Process> Cluster::create_process(
    const ProcessOptions& options) {
  std::uint64_t id;
  {
    std::unique_lock lock(processes_mu_);
    id = next_process_id_++;
  }
  auto process = std::make_unique<Process>(*this, id, options);
  register_process(process.get());
  return process;
}

void Cluster::register_process(Process* process) {
  std::unique_lock lock(processes_mu_);
  processes_[process->id()] = process;
}

void Cluster::unregister_process(std::uint64_t id) {
  std::unique_lock lock(processes_mu_);
  processes_.erase(id);
}

Process* Cluster::find_process(std::uint64_t id) const {
  std::shared_lock lock(processes_mu_);
  auto it = processes_.find(id);
  DEX_CHECK_MSG(it != processes_.end(), "message for unknown process");
  return it->second;
}

void Cluster::install_handlers() {
  // Every DeX payload leads with the 64-bit process id; the dispatcher
  // demultiplexes on it, like the kernel's per-process message routing.
  auto pid_of = [](const Message& msg) {
    return msg.payload_as<std::uint64_t>();
  };

  fabric_->register_handler(
      MsgType::kPageRequestRead, [this, pid_of](const Message& msg) {
        return find_process(pid_of(msg))->dsm().handle_page_request(
            msg, Access::kRead);
      });
  fabric_->register_handler(
      MsgType::kPageRequestWrite, [this, pid_of](const Message& msg) {
        return find_process(pid_of(msg))->dsm().handle_page_request(
            msg, Access::kWrite);
      });
  fabric_->register_handler(
      MsgType::kRevokeOwnership, [this, pid_of](const Message& msg) {
        return find_process(pid_of(msg))->dsm().handle_revoke(msg);
      });
  fabric_->register_handler(
      MsgType::kVmaInfoRequest, [this, pid_of](const Message& msg) {
        return find_process(pid_of(msg))->dsm().handle_vma_request(msg);
      });
  fabric_->register_handler(
      MsgType::kVmaUpdate, [this, pid_of](const Message& msg) {
        return find_process(pid_of(msg))->dsm().handle_vma_update(msg);
      });
  fabric_->register_handler(
      MsgType::kMigrateThread, [this, pid_of](const Message& msg) {
        return find_process(pid_of(msg))->handle_migrate(msg);
      });
  fabric_->register_handler(
      MsgType::kMigrateBack, [this, pid_of](const Message& msg) {
        return find_process(pid_of(msg))->handle_migrate_back(msg);
      });
  fabric_->register_handler(
      MsgType::kDelegateFutex, [this, pid_of](const Message& msg) {
        return find_process(pid_of(msg))->handle_delegate_futex(msg);
      });
  fabric_->register_handler(
      MsgType::kDelegateVmaOp, [this, pid_of](const Message& msg) {
        return find_process(pid_of(msg))->handle_delegate_vma(msg);
      });
}

}  // namespace dex::core
