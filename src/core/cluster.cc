#include "core/cluster.h"

#include <vector>

#include "common/assert.h"
#include "common/virtual_clock.h"
#include "core/engine.h"
#include "core/process.h"
#include "net/rpc_error.h"
#include "prof/trace.h"

namespace dex::core {

using net::Message;
using net::MsgType;

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  DEX_CHECK(config.num_nodes >= 1 && config.num_nodes <= mem::kMaxNodes);
  net::FabricOptions options;
  options.num_nodes = config.num_nodes;
  options.cost = config.cost;
  options.mode = config.mode;
  options.connection = config.connection;
  options.retry = config.retry;
  options.faults = config.faults;
  fabric_ = std::make_unique<net::Fabric>(options);
  if (config.detector.enabled) {
    detector_ = std::make_unique<net::AccrualDetector>(
        config.num_nodes, config.detector.heartbeat_interval_ns);
  }
  install_handlers();
}

Cluster::~Cluster() = default;

std::unique_ptr<Process> Cluster::create_process(
    const ProcessOptions& options) {
  std::uint64_t id;
  {
    std::unique_lock lock(processes_mu_);
    id = next_process_id_++;
  }
  auto process = std::make_unique<Process>(*this, id, options);
  register_process(process.get());
  return process;
}

void Cluster::register_process(Process* process) {
  std::unique_lock lock(processes_mu_);
  processes_[process->id()] = process;
}

void Cluster::unregister_process(std::uint64_t id) {
  std::unique_lock lock(processes_mu_);
  processes_.erase(id);
}

Process* Cluster::find_process(std::uint64_t id) const {
  std::shared_lock lock(processes_mu_);
  auto it = processes_.find(id);
  return it == processes_.end() ? nullptr : it->second;
}

void Cluster::fail_node(NodeId node) {
  DEX_CHECK(node >= 0 && node < config_.num_nodes);
  // Mark dead first so in-flight RPCs touching the node start failing,
  // then reclaim per process. Transactions that raced past the liveness
  // check are swept again at heal time (reclaim is idempotent).
  fabric_->injector().fail_node(node);
  prof::ChaosCounters::instance().node_failures.fetch_add(
      1, std::memory_order_relaxed);
  std::vector<Process*> victims;
  {
    std::shared_lock lock(processes_mu_);
    victims.reserve(processes_.size());
    for (const auto& [id, process] : processes_) victims.push_back(process);
  }
  for (Process* process : victims) process->on_node_failure(node);
}

void Cluster::heal_node(NodeId node) {
  DEX_CHECK(node >= 0 && node < config_.num_nodes);
  if (!fabric_->injector().node_dead(node)) return;
  // Sweep any grants that raced fail_node's reclaim before re-admitting.
  std::vector<Process*> survivors;
  {
    std::shared_lock lock(processes_mu_);
    survivors.reserve(processes_.size());
    for (const auto& [id, process] : processes_) survivors.push_back(process);
  }
  for (Process* process : survivors) process->dsm().reclaim_node(node);
  fabric_->injector().heal_node(node);
  // Re-admit the node in the membership layer too: clear its death record,
  // forget stale heartbeat history (old inter-arrival samples would declare
  // it dead again immediately), and announce the rejoin.
  std::uint64_t epoch = 0;
  std::uint64_t mask = 0;
  bool rejoined = false;
  {
    std::lock_guard<std::mutex> lock(membership_mu_);
    member_state_[static_cast<std::size_t>(node)] = MemberState::kAlive;
    if ((dead_mask_ >> node) & 1u) {
      dead_mask_ &= ~(std::uint64_t{1} << node);
      epoch = ++membership_epoch_;
      mask = dead_mask_;
      rejoined = true;
    }
  }
  if (detector_) detector_->reset_node(node, vclock::now());
  if (rejoined) broadcast_membership(epoch, mask, coordinator_of(mask));
}

// ---------------------------------------------------------------------------
// Membership / failure detection
// ---------------------------------------------------------------------------

int Cluster::run_membership_round() {
  if (!detector_) return 0;

  // 1. Heartbeats: every node not yet *declared* dead pings the
  //    coordinator. Oracle-killed and isolated nodes go silent here — the
  //    post either throws (dead source), is discarded (dead destination)
  //    or is dropped by the injector; silence is exactly the signal the
  //    detector scores. With succession off the coordinator is the seed's
  //    pinned node 0 and the loop below is the seed loop verbatim.
  std::uint64_t declared;
  {
    std::lock_guard<std::mutex> lock(membership_mu_);
    declared = dead_mask_;
  }
  const NodeId coord = coordinator_of(declared);
  for (NodeId n = 0; n < config_.num_nodes; ++n) {
    if (n == coord) continue;
    if ((declared >> n) & 1u) continue;
    net::HeartbeatPayload payload{};
    payload.node = n;
    payload.sequence = ++heartbeat_seq_[static_cast<std::size_t>(n)];
    Message msg;
    msg.type = MsgType::kHeartbeat;
    msg.dst = coord;
    msg.set_payload(payload);
    try {
      (void)fabric_->post_datagram(n, msg);
    } catch (const net::NodeDeadError&) {
      // Dead source: stays silent; the detector notices below.
    }
  }
  if (config_.detector.succession && !((declared >> coord) & 1u)) {
    // The coordinator heartbeats its standby so its own silence can be
    // scored: the heartbeat handler records every arrival regardless of
    // destination, so the shared detector has coordinator history the
    // moment a successor needs it.
    const NodeId standby = next_survivor(declared, coord);
    if (standby != kInvalidNode) {
      net::HeartbeatPayload payload{};
      payload.node = coord;
      payload.sequence = ++heartbeat_seq_[static_cast<std::size_t>(coord)];
      Message msg;
      msg.type = MsgType::kHeartbeat;
      msg.dst = standby;
      msg.set_payload(payload);
      try {
        (void)fabric_->post_datagram(coord, msg);
      } catch (const net::NodeDeadError&) {
        // Dead coordinator: stays silent; succession fires below.
      }
    }
  }

  // 2. One heartbeat interval elapses on the pump's clock.
  vclock::advance(config_.detector.heartbeat_interval_ns);
  const VirtNs now = vclock::now();

  // 3. Score silence and transition the membership state machine. The
  //    observations are the coordinator's (heartbeats are addressed to
  //    it), so when succession is on and the coordinator itself has gone
  //    quiet — its standby-bound heartbeats score as suspect — a cut
  //    coordinator eats everyone's heartbeats and would have the sick
  //    observer declare the whole healthy cluster dead. Don't trust a
  //    suspect observer: skip ordinary declarations until succession
  //    resolves (3b) and arrivals resume at the successor.
  int newly_dead = 0;
  const bool observer_suspect =
      config_.detector.succession && !((declared >> coord) & 1u) &&
      detector_->phi(coord, now) >= config_.detector.phi_suspect;
  const NodeId score_limit = observer_suspect ? 0 : config_.num_nodes;
  for (NodeId n = 0; n < score_limit; ++n) {
    if (n == coord) continue;
    const double phi = detector_->phi(n, now);
    bool declare = false;
    std::uint64_t epoch = 0;
    std::uint64_t mask = 0;
    {
      std::lock_guard<std::mutex> lock(membership_mu_);
      auto& state = member_state_[static_cast<std::size_t>(n)];
      if (state == MemberState::kDead) continue;
      if (phi >= config_.detector.phi_dead) {
        state = MemberState::kDead;
        dead_mask_ |= std::uint64_t{1} << n;
        epoch = ++membership_epoch_;
        mask = dead_mask_;
        declare = true;
      } else if (phi >= config_.detector.phi_suspect) {
        if (state == MemberState::kAlive) {
          state = MemberState::kSuspect;
          prof::ChaosCounters::instance().nodes_suspected.fetch_add(
              1, std::memory_order_relaxed);
        }
      } else if (state == MemberState::kSuspect) {
        // Heartbeats resumed; the suspicion was transient.
        state = MemberState::kAlive;
      }
    }
    if (!declare) continue;
    prof::ChaosCounters::instance().nodes_declared_dead.fetch_add(
        1, std::memory_order_relaxed);
    // Everyone agrees before anyone recovers: broadcast the epoch-stamped
    // verdict, then fence + reclaim (unless the oracle already did).
    broadcast_membership(epoch, mask, coord);
    if (!fabric_->injector().node_dead(n)) {
      fail_node(n);
    }
    ++newly_dead;
  }

  // 3b. Coordinator succession: the standby scores the coordinator's own
  //     silence, and on phi_dead the lowest-id survivor self-elects by
  //     declaring the old coordinator under a fresh epoch. Adoption stays
  //     monotonic, so survivors converge on exactly one successor view.
  if (config_.detector.succession && !((declared >> coord) & 1u)) {
    const double phi = detector_->phi(coord, now);
    bool declare = false;
    std::uint64_t epoch = 0;
    std::uint64_t mask = 0;
    {
      std::lock_guard<std::mutex> lock(membership_mu_);
      auto& state = member_state_[static_cast<std::size_t>(coord)];
      if (state != MemberState::kDead && phi >= config_.detector.phi_dead) {
        state = MemberState::kDead;
        dead_mask_ |= std::uint64_t{1} << coord;
        epoch = ++membership_epoch_;
        mask = dead_mask_;
        declare = true;
      }
    }
    if (declare) {
      prof::ChaosCounters::instance().nodes_declared_dead.fetch_add(
          1, std::memory_order_relaxed);
      const NodeId successor = coordinator_of(mask);
      broadcast_membership(epoch, mask, successor);
      // The successor opens a fresh observation epoch: the dead
      // coordinator's final window starved every heartbeat stream (they
      // were all addressed to it), so survivors' histories are uniformly
      // stale. Each gets a full detection window — and a clean slate —
      // before suspicion accrues at the new observer.
      {
        std::lock_guard<std::mutex> lock(membership_mu_);
        for (NodeId n = 0; n < config_.num_nodes; ++n) {
          if ((mask >> n) & 1u) continue;
          detector_->reset_node(n, now);
          auto& state = member_state_[static_cast<std::size_t>(n)];
          if (state == MemberState::kSuspect) state = MemberState::kAlive;
        }
      }
      if (!fabric_->injector().node_dead(coord)) {
        fail_node(coord);
      }
      ++newly_dead;
    }
  }

  // 4. Lease patrol: recall expired writeback leases so dirty exposure
  //    stays bounded even for owners that stopped writing.
  std::vector<Process*> patrol;
  {
    std::shared_lock lock(processes_mu_);
    patrol.reserve(processes_.size());
    for (const auto& [id, process] : processes_) patrol.push_back(process);
  }
  for (Process* process : patrol) process->dsm().lease_patrol();

  // 5. Frame patrol: background eviction pressure so budgeted nodes drain
  //    back under budget even when no fault is applying pressure.
  for (Process* process : patrol) process->dsm().frame_patrol();

  // 6. Engine drain: background transactions (lease renewals, eviction
  //    writebacks) submitted while no faulter was pumping would otherwise
  //    linger queued forever once the workload quiesces.
  for (Process* process : patrol) {
    ProtocolEngine* engine = process->engine();
    if (engine == nullptr) continue;
    for (NodeId n = 0; n < config_.num_nodes; ++n) engine->drain(n);
  }
  return newly_dead;
}

MemberState Cluster::member_state(NodeId node) const {
  std::lock_guard<std::mutex> lock(membership_mu_);
  return member_state_[static_cast<std::size_t>(node)];
}

std::uint64_t Cluster::membership_epoch() const {
  std::lock_guard<std::mutex> lock(membership_mu_);
  return membership_epoch_;
}

std::uint64_t Cluster::view_epoch(NodeId node) const {
  std::lock_guard<std::mutex> lock(membership_mu_);
  return view_epoch_[static_cast<std::size_t>(node)];
}

std::uint64_t Cluster::view_dead_mask(NodeId node) const {
  std::lock_guard<std::mutex> lock(membership_mu_);
  return view_dead_mask_[static_cast<std::size_t>(node)];
}

void Cluster::broadcast_membership(std::uint64_t epoch,
                                   std::uint64_t dead_mask, NodeId src) {
  net::MembershipUpdatePayload payload{};
  payload.epoch = epoch;
  payload.dead_mask = dead_mask;
  // The announcing coordinator adopts its own verdict directly...
  {
    std::lock_guard<std::mutex> lock(membership_mu_);
    auto& self_epoch = view_epoch_[static_cast<std::size_t>(src)];
    if (epoch > self_epoch) {
      self_epoch = epoch;
      view_dead_mask_[static_cast<std::size_t>(src)] = dead_mask;
    }
  }
  // ...and announces it to every node not in the mask. Unreliable
  // datagrams suffice: a dropped update is superseded by the next higher
  // epoch, and adoption is monotonic, so views never diverge permanently.
  for (NodeId n = 0; n < config_.num_nodes; ++n) {
    if (n == src) continue;
    if ((dead_mask >> n) & 1u) continue;
    Message msg;
    msg.type = MsgType::kMembershipUpdate;
    msg.dst = n;
    msg.set_payload(payload);
    try {
      (void)fabric_->post_datagram(src, msg);
    } catch (const net::NodeDeadError&) {
      // Coordinator fenced mid-broadcast; nothing to announce to.
      return;
    }
  }
}

NodeId Cluster::coordinator() const {
  std::lock_guard<std::mutex> lock(membership_mu_);
  return coordinator_of(dead_mask_);
}

NodeId Cluster::coordinator_of(std::uint64_t dead_mask) const {
  if (!config_.detector.succession) return 0;  // the seed's pinned node 0
  for (NodeId n = 0; n < config_.num_nodes; ++n) {
    if (!((dead_mask >> n) & 1u)) return n;
  }
  return 0;
}

NodeId Cluster::next_survivor(std::uint64_t dead_mask, NodeId after) const {
  for (NodeId n = static_cast<NodeId>(after + 1); n < config_.num_nodes;
       ++n) {
    if (!((dead_mask >> n) & 1u)) return n;
  }
  return kInvalidNode;
}

Message Cluster::handle_heartbeat(const Message& msg) {
  vclock::advance(cost().heartbeat_service_ns);
  const auto payload = msg.payload_as<net::HeartbeatPayload>();
  if (detector_) detector_->record_heartbeat(payload.node, msg.sent_at);
  prof::ChaosCounters::instance().heartbeats.fetch_add(
      1, std::memory_order_relaxed);
  Message reply;
  reply.type = MsgType::kHeartbeat;
  return reply;
}

Message Cluster::handle_membership_update(const Message& msg) {
  vclock::advance(cost().membership_service_ns);
  const auto payload = msg.payload_as<net::MembershipUpdatePayload>();
  std::lock_guard<std::mutex> lock(membership_mu_);
  auto& epoch = view_epoch_[static_cast<std::size_t>(msg.dst)];
  // Monotonic adoption: a node only ever moves to a newer epoch, so
  // reordered or duplicated updates cannot roll a view back (split-brain
  // safety).
  if (payload.epoch > epoch) {
    epoch = payload.epoch;
    view_dead_mask_[static_cast<std::size_t>(msg.dst)] = payload.dead_mask;
  }
  Message reply;
  reply.type = MsgType::kMembershipUpdate;
  return reply;
}

void Cluster::install_handlers() {
  // Every DeX payload leads with the 64-bit process id; the dispatcher
  // demultiplexes on it, like the kernel's per-process message routing.
  // Malformed payloads and unknown processes yield an error-status reply
  // (surfaced as RpcError at the caller) instead of aborting the rack.
  auto route = [this](const Message& msg, auto&& fn) -> Message {
    if (msg.payload.size() < sizeof(std::uint64_t)) {
      return Message::error_reply(net::MsgStatus::kBadPayload);
    }
    Process* process = find_process(msg.payload_prefix_as<std::uint64_t>());
    if (process == nullptr) {
      return Message::error_reply(net::MsgStatus::kUnknownProcess);
    }
    return fn(*process);
  };

  fabric_->register_handler(
      MsgType::kPageRequestRead, [route](const Message& msg) {
        return route(msg, [&](Process& p) {
          return p.dsm().handle_page_request(msg, Access::kRead);
        });
      });
  fabric_->register_handler(
      MsgType::kPageRequestWrite, [route](const Message& msg) {
        return route(msg, [&](Process& p) {
          return p.dsm().handle_page_request(msg, Access::kWrite);
        });
      });
  fabric_->register_handler(
      MsgType::kPageRequestBatch, [route](const Message& msg) {
        return route(msg, [&](Process& p) {
          return p.dsm().handle_page_request_batch(msg);
        });
      });
  fabric_->register_handler(
      MsgType::kRevokeOwnership, [route](const Message& msg) {
        return route(msg,
                     [&](Process& p) { return p.dsm().handle_revoke(msg); });
      });
  fabric_->register_handler(
      MsgType::kForwardRecall, [route](const Message& msg) {
        return route(msg, [&](Process& p) {
          return p.dsm().handle_forward_recall(msg);
        });
      });
  fabric_->register_handler(
      MsgType::kHomeMigrate, [route](const Message& msg) {
        return route(msg, [&](Process& p) {
          return p.dsm().handle_home_migrate(msg);
        });
      });
  fabric_->register_handler(
      MsgType::kVmaInfoRequest, [route](const Message& msg) {
        return route(
            msg, [&](Process& p) { return p.dsm().handle_vma_request(msg); });
      });
  fabric_->register_handler(
      MsgType::kVmaUpdate, [route](const Message& msg) {
        return route(
            msg, [&](Process& p) { return p.dsm().handle_vma_update(msg); });
      });
  fabric_->register_handler(
      MsgType::kMigrateThread, [route](const Message& msg) {
        return route(msg, [&](Process& p) { return p.handle_migrate(msg); });
      });
  fabric_->register_handler(
      MsgType::kMigrateBack, [route](const Message& msg) {
        return route(msg,
                     [&](Process& p) { return p.handle_migrate_back(msg); });
      });
  fabric_->register_handler(
      MsgType::kDelegateFutex, [route](const Message& msg) {
        return route(
            msg, [&](Process& p) { return p.handle_delegate_futex(msg); });
      });
  fabric_->register_handler(
      MsgType::kDelegateVmaOp, [route](const Message& msg) {
        return route(msg,
                     [&](Process& p) { return p.handle_delegate_vma(msg); });
      });
  fabric_->register_handler(
      MsgType::kLeaseRenew, [route](const Message& msg) {
        return route(
            msg, [&](Process& p) { return p.dsm().handle_lease_renew(msg); });
      });
  fabric_->register_handler(
      MsgType::kEvictPage, [route](const Message& msg) {
        return route(
            msg, [&](Process& p) { return p.dsm().handle_evict_page(msg); });
      });
  fabric_->register_handler(
      MsgType::kDirReplicate, [route](const Message& msg) {
        return route(msg, [&](Process& p) {
          return p.dsm().handle_dir_replicate(msg);
        });
      });
  fabric_->register_handler(
      MsgType::kScavengeRequest, [route](const Message& msg) {
        return route(
            msg, [&](Process& p) { return p.dsm().handle_scavenge(msg); });
      });
  // Heartbeats and membership updates are cluster-level (no process-id
  // prefix); they bypass the process router.
  fabric_->register_handler(MsgType::kHeartbeat, [this](const Message& msg) {
    return handle_heartbeat(msg);
  });
  fabric_->register_handler(
      MsgType::kMembershipUpdate,
      [this](const Message& msg) { return handle_membership_update(msg); });
}

}  // namespace dex::core
