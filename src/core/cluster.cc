#include "core/cluster.h"

#include <vector>

#include "common/assert.h"
#include "core/process.h"
#include "prof/trace.h"

namespace dex::core {

using net::Message;
using net::MsgType;

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  DEX_CHECK(config.num_nodes >= 1 && config.num_nodes <= mem::kMaxNodes);
  net::FabricOptions options;
  options.num_nodes = config.num_nodes;
  options.cost = config.cost;
  options.mode = config.mode;
  options.connection = config.connection;
  options.retry = config.retry;
  options.faults = config.faults;
  fabric_ = std::make_unique<net::Fabric>(options);
  install_handlers();
}

Cluster::~Cluster() = default;

std::unique_ptr<Process> Cluster::create_process(
    const ProcessOptions& options) {
  std::uint64_t id;
  {
    std::unique_lock lock(processes_mu_);
    id = next_process_id_++;
  }
  auto process = std::make_unique<Process>(*this, id, options);
  register_process(process.get());
  return process;
}

void Cluster::register_process(Process* process) {
  std::unique_lock lock(processes_mu_);
  processes_[process->id()] = process;
}

void Cluster::unregister_process(std::uint64_t id) {
  std::unique_lock lock(processes_mu_);
  processes_.erase(id);
}

Process* Cluster::find_process(std::uint64_t id) const {
  std::shared_lock lock(processes_mu_);
  auto it = processes_.find(id);
  return it == processes_.end() ? nullptr : it->second;
}

void Cluster::fail_node(NodeId node) {
  DEX_CHECK(node >= 0 && node < config_.num_nodes);
  // Mark dead first so in-flight RPCs touching the node start failing,
  // then reclaim per process. Transactions that raced past the liveness
  // check are swept again at heal time (reclaim is idempotent).
  fabric_->injector().fail_node(node);
  prof::ChaosCounters::instance().node_failures.fetch_add(
      1, std::memory_order_relaxed);
  std::vector<Process*> victims;
  {
    std::shared_lock lock(processes_mu_);
    victims.reserve(processes_.size());
    for (const auto& [id, process] : processes_) victims.push_back(process);
  }
  for (Process* process : victims) process->on_node_failure(node);
}

void Cluster::heal_node(NodeId node) {
  DEX_CHECK(node >= 0 && node < config_.num_nodes);
  if (!fabric_->injector().node_dead(node)) return;
  // Sweep any grants that raced fail_node's reclaim before re-admitting.
  std::vector<Process*> survivors;
  {
    std::shared_lock lock(processes_mu_);
    survivors.reserve(processes_.size());
    for (const auto& [id, process] : processes_) survivors.push_back(process);
  }
  for (Process* process : survivors) process->dsm().reclaim_node(node);
  fabric_->injector().heal_node(node);
}

void Cluster::install_handlers() {
  // Every DeX payload leads with the 64-bit process id; the dispatcher
  // demultiplexes on it, like the kernel's per-process message routing.
  // Malformed payloads and unknown processes yield an error-status reply
  // (surfaced as RpcError at the caller) instead of aborting the rack.
  auto route = [this](const Message& msg, auto&& fn) -> Message {
    if (msg.payload.size() < sizeof(std::uint64_t)) {
      return Message::error_reply(net::MsgStatus::kBadPayload);
    }
    Process* process = find_process(msg.payload_prefix_as<std::uint64_t>());
    if (process == nullptr) {
      return Message::error_reply(net::MsgStatus::kUnknownProcess);
    }
    return fn(*process);
  };

  fabric_->register_handler(
      MsgType::kPageRequestRead, [route](const Message& msg) {
        return route(msg, [&](Process& p) {
          return p.dsm().handle_page_request(msg, Access::kRead);
        });
      });
  fabric_->register_handler(
      MsgType::kPageRequestWrite, [route](const Message& msg) {
        return route(msg, [&](Process& p) {
          return p.dsm().handle_page_request(msg, Access::kWrite);
        });
      });
  fabric_->register_handler(
      MsgType::kPageRequestBatch, [route](const Message& msg) {
        return route(msg, [&](Process& p) {
          return p.dsm().handle_page_request_batch(msg);
        });
      });
  fabric_->register_handler(
      MsgType::kRevokeOwnership, [route](const Message& msg) {
        return route(msg,
                     [&](Process& p) { return p.dsm().handle_revoke(msg); });
      });
  fabric_->register_handler(
      MsgType::kForwardRecall, [route](const Message& msg) {
        return route(msg, [&](Process& p) {
          return p.dsm().handle_forward_recall(msg);
        });
      });
  fabric_->register_handler(
      MsgType::kHomeMigrate, [route](const Message& msg) {
        return route(msg, [&](Process& p) {
          return p.dsm().handle_home_migrate(msg);
        });
      });
  fabric_->register_handler(
      MsgType::kVmaInfoRequest, [route](const Message& msg) {
        return route(
            msg, [&](Process& p) { return p.dsm().handle_vma_request(msg); });
      });
  fabric_->register_handler(
      MsgType::kVmaUpdate, [route](const Message& msg) {
        return route(
            msg, [&](Process& p) { return p.dsm().handle_vma_update(msg); });
      });
  fabric_->register_handler(
      MsgType::kMigrateThread, [route](const Message& msg) {
        return route(msg, [&](Process& p) { return p.handle_migrate(msg); });
      });
  fabric_->register_handler(
      MsgType::kMigrateBack, [route](const Message& msg) {
        return route(msg,
                     [&](Process& p) { return p.handle_migrate_back(msg); });
      });
  fabric_->register_handler(
      MsgType::kDelegateFutex, [route](const Message& msg) {
        return route(
            msg, [&](Process& p) { return p.handle_delegate_futex(msg); });
      });
  fabric_->register_handler(
      MsgType::kDelegateVmaOp, [route](const Message& msg) {
        return route(msg,
                     [&](Process& p) { return p.handle_delegate_vma(msg); });
      });
}

}  // namespace dex::core
