// A DeX distributed process (§III-A).
//
// One Process owns the distributed address space (via mem::Dsm), the
// origin-side futex table, the global heap allocator, and the migration
// machinery: per-node remote-worker state, per-thread migration counts and
// the migration log that feeds Table II / Figure 3.
//
// Threads are real std::threads carrying a ThreadContext; migrate() rebinds
// the context's node after charging the paper's migration steps and moving
// the execution context over the fabric.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "common/virtual_clock.h"
#include "core/context.h"
#include "core/futex.h"
#include "mem/dsm.h"
#include "net/fabric.h"
#include "prof/trace.h"

namespace dex::core {

class Cluster;
class PlacementAdvisor;
class ProtocolEngine;

/// Handle to a spawned DeX thread. Joining observes the thread's final
/// virtual clock (happens-before edge of pthread_join).
class DexThread {
 public:
  DexThread() = default;
  DexThread(DexThread&&) = default;
  DexThread& operator=(DexThread&&) = default;
  ~DexThread();

  void join();
  bool joinable() const { return thread_ && thread_->joinable(); }
  TaskId task() const { return task_; }
  VirtNs final_clock() const { return clock_ ? clock_->now() : 0; }
  VirtualClock* clock() { return clock_.get(); }
  /// True when the thread's body was terminated by an unrecoverable fabric
  /// failure (RpcError/NodeDeadError) — e.g. it was migrated to a node
  /// that died. Such threads are reported back instead of deadlocking.
  bool failed() const {
    return failed_ && failed_->load(std::memory_order_acquire);
  }

 private:
  friend class Process;
  std::unique_ptr<std::thread> thread_;
  std::shared_ptr<VirtualClock> clock_;
  std::shared_ptr<std::atomic<bool>> failed_;
  TaskId task_ = -1;
};

struct ProcessOptions {
  NodeId origin = 0;
  /// Memory-streaming intensity of this workload (see CostModel::dram_ns).
  double stream_intensity = 0.15;
  /// §III-C fault coalescing (ablation switch).
  bool coalesce_faults = true;
  /// Busy-entry retries before escalating to a blocking directory acquire
  /// (DsmConfig::max_retries passthrough).
  int max_retries = 64;
  /// Extra contiguous pages a streaming read fault may pull in one batch
  /// (DsmConfig::prefetch_max_pages passthrough; 0 disables prefetch).
  int prefetch_max_pages = 8;
  /// Two-hop owner->requester grant forwarding (DsmConfig::forward_grants
  /// passthrough; off reproduces the classic two-transfer recall).
  bool forward_grants = true;
  /// Directory shard count (DsmConfig::dir_shards passthrough; 1 collapses
  /// to the original single-mutex tree).
  int dir_shards = mem::Directory::kDirShards;
  /// Adaptive home migration (DsmConfig::home_migration passthrough; off
  /// pins every directory entry at the origin, classic-style).
  bool home_migration = true;
  /// Consecutive one-node fault run that triggers a home hand-off
  /// (DsmConfig::home_migrate_run passthrough).
  int home_migrate_run = 3;
  /// Writeback-lease window (DsmConfig::lease_ns passthrough; 0 disables
  /// leases and reproduces the unleased protocol bit-for-bit).
  VirtNs lease_ns = 0;
  /// Re-run a thread's entry closure at the origin when its node dies
  /// instead of reporting it permanently failed. Each thread restarts at
  /// most once, and a process-wide budget caps restart storms.
  bool restart_lost_threads = false;
  /// Per-node frame-memory budget (DsmConfig::frame_budget_bytes
  /// passthrough; 0 disables eviction and reproduces the unbounded
  /// protocol bit-for-bit).
  std::uint64_t frame_budget_bytes = 0;
  /// File-backed cold tier for evicted home/exclusive frames
  /// (DsmConfig::spill_cold_pages passthrough).
  bool spill_cold_pages = false;
  /// Pages the eviction provider frees beyond the immediate need per
  /// pressure pass (DsmConfig::evict_batch_pages passthrough).
  int evict_batch_pages = 8;
  /// Backpressure rounds before a fault is admitted over budget
  /// (DsmConfig::max_backpressure_rounds passthrough).
  int max_backpressure_rounds = 32;
  /// Optimistic versioned latching on the fault hot path
  /// (DsmConfig::optimistic_latching passthrough; off takes every lock
  /// pessimistically and reproduces the seed protocol bit-for-bit).
  bool optimistic_latching = true;
  /// Wall-clock period of this process's own frame-patrol thread. 0 (the
  /// default) spawns no thread: patrol then runs only on the cluster's
  /// membership rounds and under allocation pressure.
  int frame_patrol_ms = 0;
  /// Async protocol engine (DsmConfig::async_engine passthrough): leader
  /// faults, lease renewals and patrol eviction writebacks become
  /// resumable engine transactions with doorbell-batched sends; off
  /// reproduces the blocking protocol bit-for-bit.
  bool async_engine = false;
  /// Engine window depth (DsmConfig::max_inflight_transactions
  /// passthrough).
  int max_inflight_transactions = 16;
  /// Joint thread<->page placement (DsmConfig::auto_thread_migration
  /// passthrough): threads whose fault mass dominates on one remote node
  /// transparently migrate() themselves there, with anti-ping-pong
  /// hysteresis, a load veto, and arbitration against home migration. Off
  /// reproduces application-directed placement bit-for-bit.
  bool auto_thread_migration = false;
  /// Consecutive dominant decision windows before the thread moves
  /// (DsmConfig::thread_migrate_run passthrough).
  int thread_migrate_run = 3;
  /// Origin failover (DsmConfig::origin_failover passthrough): directory
  /// mutations replicate to a deterministic deputy that promotes itself
  /// when the origin dies. Off reproduces the seed protocol bit-for-bit
  /// (origin death reported as mem::OriginDeadError, not survived).
  bool origin_failover = false;
};

/// One entry of the migration log (Table II / Figure 3 raw data).
struct MigrationRecord {
  TaskId task = -1;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  bool backward = false;
  bool first_for_thread = false;  // 1st vs subsequent context collection
  bool first_on_node = false;     // remote worker had to be created
  VirtNs origin_side_ns = 0;      // context collection / context update
  VirtNs remote_worker_ns = 0;    // per-process bring-up at the remote
  VirtNs thread_setup_ns = 0;     // fork-from-worker + context load
  VirtNs transfer_ns = 0;         // wire time
  VirtNs total_ns = 0;
};

class Process {
 public:
  Process(Cluster& cluster, std::uint64_t id, const ProcessOptions& options);
  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  std::uint64_t id() const { return id_; }
  /// The node currently playing the origin role. options_.origin until an
  /// origin failover promotes the deputy (DsmConfig::origin_failover); every
  /// delegation ladder and origin fallback resolves this dynamically.
  NodeId origin() const { return dsm_->current_origin(); }
  Cluster& cluster() { return cluster_; }
  mem::Dsm& dsm() { return *dsm_; }
  FutexTable& futex_table() { return futex_; }
  prof::FaultTrace& trace() { return trace_; }
  /// The async protocol engine, or nullptr when ProcessOptions::
  /// async_engine is off.
  ProtocolEngine* engine() { return engine_.get(); }
  /// The thread-placement advisor, or nullptr when ProcessOptions::
  /// auto_thread_migration is off.
  PlacementAdvisor* placement() { return placement_.get(); }

  // ---- Threads ----
  /// Spawns a DeX thread at the creator's current node. The body runs with
  /// a bound ThreadContext; its clock starts at the creator's time plus the
  /// thread-spawn cost.
  DexThread spawn(std::function<void()> body);

  // ---- Migration (§III-A). Callable only from a DeX thread. ----
  void migrate(NodeId destination);
  void migrate_back();

  // ---- §VII extensions: automatic placement ----
  /// Migrates the calling thread to the least-loaded node (the paper's
  /// "easily extended so that OS schedulers ... automatically initiate the
  /// migration"). Returns the chosen node.
  NodeId migrate_to_least_loaded();
  /// The node holding the up-to-date copy of `addr` (its exclusive owner,
  /// or the origin for shared/untouched pages). Lets applications migrate
  /// the computation to the data ("relocating the computation near data",
  /// §VII).
  NodeId probe_data_location(GAddr addr);
  /// Migrates the calling thread next to the data at `addr`.
  NodeId migrate_to_data(GAddr addr);

  // ---- Memory management. Remote callers are delegated to the origin. ----
  GAddr mmap(std::uint64_t length, std::uint8_t prot, std::string tag = "",
             GAddr hint = 0);
  bool munmap(GAddr start, std::uint64_t length);
  bool mprotect(GAddr start, std::uint64_t length, std::uint8_t prot);

  /// Heap allocation over the distributed address space. g_malloc packs
  /// objects tightly (so unrelated objects share pages, as glibc malloc
  /// does); g_memalign(kPageSize, ...) is the posix_memalign-based
  /// page-isolation fix of §IV-B.
  GAddr g_malloc(std::uint64_t size, const std::string& tag = "heap");
  GAddr g_memalign(std::uint64_t alignment, std::uint64_t size,
                   const std::string& tag = "heap");
  void g_free(GAddr addr);

  // ---- Futex (§III-A work delegation) ----
  void futex_wait(GAddr addr, std::uint64_t expected);
  int futex_wake(GAddr addr, int count);

  // ---- Context-aware data access (implicit node/task from the caller) ----
  void read(GAddr addr, void* dst, std::size_t len);
  void write(GAddr addr, const void* src, std::size_t len);
  template <typename T>
  T load(GAddr addr) {
    T value;
    read(addr, &value, sizeof(T));
    return value;
  }
  template <typename T>
  void store(GAddr addr, const T& value) {
    write(addr, &value, sizeof(T));
  }
  std::uint64_t atomic_fetch_add(GAddr addr, std::uint64_t delta);
  std::uint64_t atomic_exchange(GAddr addr, std::uint64_t desired);
  bool atomic_cas(GAddr addr, std::uint64_t expected, std::uint64_t desired);
  std::uint64_t atomic_load(GAddr addr);
  void atomic_store(GAddr addr, std::uint64_t value);

  // ---- Introspection ----
  std::vector<MigrationRecord> migration_log() const;
  void clear_migration_log();
  std::uint64_t delegation_count() const {
    return delegations_.load(std::memory_order_relaxed);
  }
  bool remote_worker_exists(NodeId node) const;

  // ---- Fabric handlers (dispatched by the Cluster) ----
  net::Message handle_migrate(const net::Message& msg);
  net::Message handle_migrate_back(const net::Message& msg);
  net::Message handle_delegate_futex(const net::Message& msg);
  net::Message handle_delegate_vma(const net::Message& msg);

  /// Node-failure notification from Cluster::fail_node(): forgets the
  /// remote worker on `node` and reclaims every page it held. Threads
  /// currently on the dead node discover the failure at their next fabric
  /// interaction and unwind as failed (see DexThread::failed()).
  void on_node_failure(NodeId node);

 private:
  struct CallerGuard;  // validates tls context

  void record_migration(const MigrationRecord& record);

  /// Placement safe point, called after every data-access wrapper: when the
  /// advisor armed a migration for the calling thread, apply the load veto
  /// and the engine-queue deferral, then transparently migrate() there.
  /// A single null check when auto_thread_migration is off.
  void maybe_auto_migrate() {
    if (placement_) auto_migrate_checkpoint();
  }
  void auto_migrate_checkpoint();

  Cluster& cluster_;
  const std::uint64_t id_;
  ProcessOptions options_;
  prof::FaultTrace trace_;
  std::unique_ptr<mem::Dsm> dsm_;
  FutexTable futex_;
  /// The engine parks faulters on its own table, never on futex_: an app
  /// futex wait holds futex_'s lock across a DSM word read, and in async
  /// mode that read can itself fault — parking the faulter on futex_
  /// would self-deadlock on the held lock.
  FutexTable engine_futex_;
  /// Constructed only when options.async_engine; the Dsm holds a raw
  /// pointer (detached in ~Process before the Dsm goes).
  std::unique_ptr<ProtocolEngine> engine_;
  /// Constructed only when options.auto_thread_migration; the Dsm holds a
  /// raw pointer (detached in ~Process before the Dsm goes).
  std::unique_ptr<PlacementAdvisor> placement_;

  std::atomic<TaskId> next_task_{0};
  std::atomic<std::uint64_t> delegations_{0};
  /// Remaining lost-thread restarts (storm guard); 0 when restarts are off.
  std::atomic<int> restart_budget_{0};

  mutable std::mutex mig_mu_;
  std::array<bool, mem::kMaxNodes> worker_exists_{};
  std::unordered_map<TaskId, int> thread_migrations_;
  std::vector<MigrationRecord> migration_log_;

  mutable std::mutex alloc_mu_;
  struct Arena {
    GAddr base = 0;
    std::uint64_t size = 0;
    std::uint64_t used = 0;
  };
  Arena small_arena_;
  std::unordered_map<GAddr, std::uint64_t> alloc_sizes_;

  /// Optional dedicated frame-patrol thread (ProcessOptions::
  /// frame_patrol_ms > 0 with a budget set). Joined FIRST in ~Process so
  /// it can never touch a half-torn-down Dsm.
  std::atomic<bool> patrol_stop_{false};
  std::thread patrol_thread_;
};

}  // namespace dex::core
